package sprout

import (
	"strings"
	"testing"
)

// fig1DB rebuilds the paper's Fig. 1 database through the public API.
func fig1DB(t testing.TB) *DB {
	db := NewDB()
	cust := db.MustCreateTable("Cust", IntCol("ckey"), StringCol("cname"))
	for i, n := range []string{"Joe", "Dan", "Li", "Mo"} {
		cust.MustInsert(0.1*float64(i+1), Int(int64(i+1)), String(n))
	}
	ord := db.MustCreateTable("Ord", IntCol("okey"), IntCol("ckey"), StringCol("odate"))
	ordRows := []struct {
		okey, ckey int64
		date       string
		p          float64
	}{
		{1, 1, "1995-01-10", 0.1}, {2, 1, "1996-01-09", 0.2}, {3, 2, "1994-11-11", 0.3},
		{4, 2, "1993-01-08", 0.4}, {5, 3, "1995-08-15", 0.5}, {6, 3, "1996-12-25", 0.6},
	}
	for _, r := range ordRows {
		ord.MustInsert(r.p, Int(r.okey), Int(r.ckey), String(r.date))
	}
	item := db.MustCreateTable("Item", IntCol("okey"), FloatCol("discount"), IntCol("ckey"))
	itemRows := []struct {
		okey int64
		disc float64
		ckey int64
		p    float64
	}{
		{1, 0.1, 1, 0.1}, {1, 0.2, 1, 0.2}, {3, 0.4, 2, 0.3},
		{3, 0.1, 2, 0.4}, {4, 0.4, 2, 0.5}, {5, 0.1, 3, 0.6},
	}
	for _, r := range itemRows {
		item.MustInsert(r.p, Int(r.okey), Float(r.disc), Int(r.ckey))
	}
	db.DeclareKey("Cust", []string{"ckey"}, []string{"ckey", "cname"})
	db.DeclareKey("Ord", []string{"okey"}, []string{"okey", "ckey", "odate"})
	return db
}

func introQuery() *Query {
	return NewQuery("Q").
		Select("odate").
		From("Cust", "ckey", "cname").
		From("Ord", "okey", "ckey", "odate").
		From("Item", "okey", "discount", "ckey").
		Where("Cust", "cname", Eq, String("Joe")).
		Where("Item", "discount", Gt, Float(0))
}

// TestQuickstartPaperExample is the end-to-end check of the paper's running
// example through the public API: one answer, 1995-01-10, confidence 0.0028.
func TestQuickstartPaperExample(t *testing.T) {
	db := fig1DB(t)
	for _, style := range []PlanStyle{Lazy, Eager, Hybrid, MystiQ} {
		res, err := db.Run(introQuery(), style)
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("%v: %d rows", style, len(res.Rows))
		}
		if got := res.Rows[0].Values[0].String(); got != "1995-01-10" {
			t.Errorf("%v: odate = %s", style, got)
		}
		c := res.Rows[0].Confidence
		eps := 1e-9
		if style == MystiQ {
			eps = 0.01 // MystiQ's 1.001 fudge factor
		}
		if d := c - 0.0028; d > eps || d < -eps {
			t.Errorf("%v: confidence %g, want 0.0028", style, c)
		}
	}
}

func TestSignatureAndScans(t *testing.T) {
	db := fig1DB(t)
	sig, err := db.Signature(introQuery())
	if err != nil {
		t.Fatal(err)
	}
	if strings.ReplaceAll(sig, " ", "") != "(Cust(OrdItem*)*)*" {
		t.Errorf("signature = %s", sig)
	}
	n, err := db.NumScans(introQuery())
	if err != nil || n != 1 {
		t.Errorf("NumScans = %d, %v (want 1 under the keys)", n, err)
	}

	db3 := NewDB()
	c := db3.MustCreateTable("Cust", IntCol("ckey"), StringCol("cname"))
	c.MustInsert(0.1, Int(1), String("Joe"))
	o := db3.MustCreateTable("Ord", IntCol("okey"), IntCol("ckey"), StringCol("odate"))
	o.MustInsert(0.1, Int(1), Int(1), String("d"))
	i := db3.MustCreateTable("Item", IntCol("okey"), FloatCol("discount"), IntCol("ckey"))
	i.MustInsert(0.1, Int(1), Float(0.1), Int(1))
	// Without declared FDs the signature is (Cust*(Ord Item*)*)*: the
	// Σ=∅ FD-reduct already fixes odate per bag of duplicates, so Ord
	// loses its star and only two scans remain (the paper's conservative
	// plain signature (Cust*(Ord*Item*)*)* would need three, Ex. V.11).
	n, err = db3.NumScans(introQuery())
	if err != nil || n != 2 {
		t.Errorf("NumScans without FDs = %d, %v (want 2)", n, err)
	}
}

func TestBooleanQuery(t *testing.T) {
	db := fig1DB(t)
	q := introQuery()
	q.q.Head = nil
	res, err := db.Run(q, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].Values) != 0 {
		t.Fatalf("Boolean query should give one valueless row: %+v", res.Rows)
	}
	if res.Rows[0].Confidence <= 0 {
		t.Error("Boolean confidence should be positive")
	}
}

func TestIntractableFallsThroughChain(t *testing.T) {
	db := NewDB()
	r := db.MustCreateTable("R", IntCol("a"))
	s := db.MustCreateTable("S", IntCol("a"), IntCol("b"))
	u := db.MustCreateTable("T", IntCol("b"))
	r.MustInsert(0.5, Int(1))
	s.MustInsert(0.5, Int(1), Int(2))
	u.MustInsert(0.5, Int(2))
	q := NewQuery("hard").From("R", "a").From("S", "a", "b").From("T", "b")

	// RequireExact restores the pre-estimator behaviour: the prototypical
	// hard query R(a) ⋈ S(a,b) ⋈ T(b) is rejected.
	if _, err := db.Run(q, Lazy, RequireExact()); err == nil {
		t.Fatal("the prototypical hard query must be rejected under RequireExact")
	}
	// Without it, the exact style falls through the chain: the single
	// answer's lineage (one clause, 0.5³) compiles into a three-node OBDD,
	// so the result stays exact.
	res, err := db.Run(q, Lazy)
	if err != nil {
		t.Fatalf("OBDD fallback failed: %v", err)
	}
	if res.Stats.Approximate {
		t.Error("OBDD fallback under budget must stay exact")
	}
	if res.Stats.OBDDNodes == 0 {
		t.Error("OBDD fallback should report diagram nodes")
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if d := res.Rows[0].Confidence - 0.125; d > 1e-9 || d < -1e-9 {
		t.Errorf("confidence = %g, want 0.125", res.Rows[0].Confidence)
	}

	// Densify the instance (shared variables across clauses, so not even
	// the anytime mode's cheap bounds resolve it) and starve the node
	// budget: the chain falls through to Monte Carlo.
	r.MustInsert(0.5, Int(2))
	u.MustInsert(0.5, Int(3))
	s.MustInsert(0.5, Int(1), Int(3))
	s.MustInsert(0.5, Int(2), Int(2))
	s.MustInsert(0.5, Int(2), Int(3))
	res, err = db.Run(q, Lazy, WithNodeBudget(1), WithSeed(3))
	if err != nil {
		t.Fatalf("Monte Carlo fallback failed: %v", err)
	}
	if !res.Stats.Approximate || res.Stats.Samples == 0 {
		t.Errorf("Monte Carlo fallback must be an approximate, sampled run: %+v", res.Stats)
	}

	// Declaring a → b (a key of S) rescues exactness.
	db.DeclareFD("S", []string{"a"}, []string{"b"})
	res, err = db.Run(q, Lazy, RequireExact())
	if err != nil {
		t.Fatalf("with a→b the query is tractable: %v", err)
	}
	if res.Stats.Approximate {
		t.Error("with a→b the result must be exact")
	}
}

func TestDuplicateTableRejected(t *testing.T) {
	db := NewDB()
	db.MustCreateTable("R", IntCol("a"))
	if _, err := db.CreateTable("R", IntCol("a")); err == nil {
		t.Error("duplicate table should be rejected")
	}
}

func TestInsertValidation(t *testing.T) {
	db := NewDB()
	r := db.MustCreateTable("R", IntCol("a"))
	if err := r.Insert(1.5, Int(1)); err == nil {
		t.Error("probability > 1 should be rejected")
	}
	if err := r.Insert(0.5, Int(1), Int(2)); err == nil {
		t.Error("arity mismatch should be rejected")
	}
	if r.Name() != "R" || r.Len() != 0 {
		t.Error("metadata accessors wrong")
	}
}

func TestExplainAndFormat(t *testing.T) {
	db := fig1DB(t)
	desc, err := db.Explain(introQuery(), Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "lazy") || !strings.Contains(desc, "Cust") {
		t.Errorf("Explain = %q", desc)
	}
	res, err := db.Run(introQuery(), Lazy)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Format()
	if !strings.Contains(f, "odate") || !strings.Contains(f, "0.0028") {
		t.Errorf("Format = %q", f)
	}
}

func TestAliasSelfJoin(t *testing.T) {
	// Two mutually exclusive selections over the same base table via
	// aliases (the §IV self-join device).
	db := NewDB()
	nation := db.MustCreateTable("Nation", IntCol("nkey"), StringCol("nname"))
	nation.MustInsert(0.5, Int(1), String("FRANCE"))
	nation.MustInsert(0.5, Int(2), String("GERMANY"))
	link := db.MustCreateTable("Link", IntCol("n1key"), IntCol("n2key"))
	link.MustInsert(0.5, Int(1), Int(2))
	q := NewQuery("pairs").
		FromAlias("Nation1", "Nation", "n1key", "n1name").
		From("Link", "n1key", "n2key").
		FromAlias("Nation2", "Nation", "n2key", "n2name").
		Where("Nation1", "n1name", Eq, String("FRANCE")).
		Where("Nation2", "n2name", Eq, String("GERMANY"))
	// Nation1 ⋈ Link ⋈ Nation2 is the prototypical hard pattern without
	// FDs (Link joins both sides on different attributes): exact styles
	// reject it under RequireExact and fall through the OBDD tier
	// otherwise — which compiles the single-clause lineage exactly.
	if _, err := db.Run(q, Lazy, RequireExact()); err == nil {
		t.Fatal("link query without FDs must be rejected under RequireExact")
	}
	want := 0.5 * 0.5 * 0.5
	res, err := db.Run(q, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Approximate || len(res.Rows) != 1 {
		t.Fatalf("fallback: approximate=%v rows=%+v", res.Stats.Approximate, res.Rows)
	}
	if d := res.Rows[0].Confidence - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("fallback confidence = %g, want %g (single-clause lineage is exact)", res.Rows[0].Confidence, want)
	}
	// Declaring n1key → n2key (Link keyed by its left endpoint) makes it
	// exactly tractable, mirroring how TPC-H Q7 is rescued.
	db.DeclareFD("Link", []string{"n1key"}, []string{"n2key"})
	res, err = db.Run(q, Lazy, RequireExact())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Approximate || len(res.Rows) != 1 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if d := res.Rows[0].Confidence - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("confidence = %g, want %g", res.Rows[0].Confidence, want)
	}
}

// TestMonteCarloStyle runs the paper's running example under the explicit
// MonteCarlo style: the estimate must land within ε of the exact confidence
// (0.0028), and the same seed must reproduce it exactly.
func TestMonteCarloStyle(t *testing.T) {
	db := fig1DB(t)
	const eps = 0.01
	res, err := db.Run(introQuery(), MonteCarlo, WithEpsilonDelta(eps, 1e-4), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Approximate {
		t.Error("MonteCarlo style must mark results approximate")
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0].String() != "1995-01-10" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if d := res.Rows[0].Confidence - 0.0028; d > eps || d < -eps {
		t.Errorf("estimate %g not within ε=%g of 0.0028", res.Rows[0].Confidence, eps)
	}
	again, err := db.Run(introQuery(), MonteCarlo, WithEpsilonDelta(eps, 1e-4), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if again.Rows[0].Confidence != res.Rows[0].Confidence {
		t.Errorf("same seed gave %g then %g", res.Rows[0].Confidence, again.Rows[0].Confidence)
	}
}

// TestOBDDStyle runs the paper's running example under the explicit OBDD
// style: hierarchical lineage compiles exactly, reproducing the paper's
// 0.0028 to full precision.
func TestOBDDStyle(t *testing.T) {
	db := fig1DB(t)
	res, err := db.Run(introQuery(), OBDD)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Approximate {
		t.Errorf("hierarchical lineage must compile exactly: %+v", res.Stats)
	}
	if res.Stats.OBDDNodes == 0 {
		t.Error("Stats.OBDDNodes should report the compilation effort")
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0].String() != "1995-01-10" {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if d := res.Rows[0].Confidence - 0.0028; d > 1e-9 || d < -1e-9 {
		t.Errorf("confidence = %g, want 0.0028", res.Rows[0].Confidence)
	}
}

// TestOBDDStyleBounds: starving the node budget yields certified bounds —
// Stats.LowerBound ≤ truth ≤ Stats.UpperBound with the confidence at the
// midpoint — deterministic across runs, and WithTargetWidth caps the
// interval when the budget allows.
func TestOBDDStyleBounds(t *testing.T) {
	db := NewDB()
	r := db.MustCreateTable("R", IntCol("a"))
	s := db.MustCreateTable("S", IntCol("a"), IntCol("b"))
	u := db.MustCreateTable("T", IntCol("b"))
	for a := 1; a <= 3; a++ {
		r.MustInsert(0.4, Int(int64(a)))
	}
	for b := 1; b <= 3; b++ {
		u.MustInsert(0.6, Int(int64(b)))
	}
	for a := 1; a <= 3; a++ {
		for b := 1; b <= 3; b++ {
			s.MustInsert(0.5, Int(int64(a)), Int(int64(b)))
		}
	}
	q := NewQuery("hard").From("R", "a").From("S", "a", "b").From("T", "b")

	// Exact value of this 3×3 bipartite lineage, from the OBDD run with an
	// ample budget (cross-checked against enumeration at the plan layer).
	exact, err := db.Run(q, OBDD)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats.Approximate {
		t.Fatalf("ample budget should be exact: %+v", exact.Stats)
	}
	truth := exact.Rows[0].Confidence

	res, err := db.Run(q, OBDD, WithNodeBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if !st.Approximate {
		t.Fatalf("budget 3 should force bounds: %+v", st)
	}
	if st.LowerBound > truth+1e-9 || truth > st.UpperBound+1e-9 {
		t.Errorf("truth %g outside certified [%g, %g]", truth, st.LowerBound, st.UpperBound)
	}
	mid := res.Rows[0].Confidence
	if d := mid - (st.LowerBound+st.UpperBound)/2; d > 1e-9 || d < -1e-9 {
		t.Errorf("confidence %g is not the bound midpoint of [%g, %g]", mid, st.LowerBound, st.UpperBound)
	}
	again, err := db.Run(q, OBDD, WithNodeBudget(3))
	if err != nil {
		t.Fatal(err)
	}
	if again.Rows[0].Confidence != mid || again.Stats.LowerBound != st.LowerBound {
		t.Error("bound-mode runs must be deterministic for a fixed budget")
	}

	wide, err := db.Run(q, OBDD, WithTargetWidth(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if w := wide.Stats.UpperBound - wide.Stats.LowerBound; wide.Stats.Approximate && w > 0.2 {
		t.Errorf("target width 0.2 exceeded: %g", w)
	}
	if wide.Stats.Approximate {
		if wide.Stats.LowerBound > truth+1e-9 || truth > wide.Stats.UpperBound+1e-9 {
			t.Errorf("truth %g outside certified [%g, %g]", truth, wide.Stats.LowerBound, wide.Stats.UpperBound)
		}
	}
}
