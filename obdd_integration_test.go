// End-to-end OBDD checks on generated TPC-H data: on hierarchical catalog
// queries the OBDD style (signature-derived variable order) must agree with
// the exact sort+scan operator of the Lazy plan to 1e-9 — the lineage-
// compilation tier computes the same probabilities by a different engine.
package sprout_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/conf"
	"repro/internal/plan"
	"repro/internal/tpch"
)

var (
	obddOnce sync.Once
	obddData *tpch.Data
)

func obddTestData() *tpch.Data {
	obddOnce.Do(func() {
		obddData = tpch.Generate(tpch.Config{SF: 0.002, Seed: 1})
	})
	return obddData
}

// TestOBDDAgreesWithLazyOnTPCH cross-validates the OBDD style against the
// Lazy plan on hierarchical TPC-H catalog queries.
func TestOBDDAgreesWithLazyOnTPCH(t *testing.T) {
	d := obddTestData()
	catalog := d.Catalog()
	for _, name := range []string{"18", "2", "11", "B17"} {
		e := tpch.Catalog()[name]
		if e == nil || e.Q == nil {
			t.Fatalf("catalog query %s missing", name)
		}
		sigma := tpch.FDsFor(e)
		lazy, err := plan.Run(catalog, e.Q.Clone(), sigma, plan.Spec{Style: plan.Lazy})
		if err != nil {
			t.Fatalf("%s lazy: %v", name, err)
		}
		viaOBDD, err := plan.Run(catalog, e.Q.Clone(), sigma, plan.Spec{Style: plan.OBDD})
		if err != nil {
			t.Fatalf("%s obdd: %v", name, err)
		}
		if viaOBDD.Stats.Approximate {
			t.Errorf("%s: hierarchical lineage should compile exactly: %+v", name, viaOBDD.Stats)
			continue
		}
		if lazy.Rows.Len() != viaOBDD.Rows.Len() {
			t.Errorf("%s: %d lazy rows vs %d obdd rows", name, lazy.Rows.Len(), viaOBDD.Rows.Len())
			continue
		}
		ci := lazy.Rows.Schema.MustColIndex(conf.ConfCol)
		for i := range lazy.Rows.Rows {
			l, o := lazy.Rows.Rows[i][ci].F, viaOBDD.Rows.Rows[i][ci].F
			if math.Abs(l-o) > 1e-9 {
				t.Errorf("%s row %d: lazy %g, obdd %g", name, i, l, o)
			}
		}
	}
}
