package sprout

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/benchutil"
	"repro/internal/difftest"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/fd"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/table"
	"repro/internal/tpch"
)

// tpchDB wraps freshly generated TPC-H data in the public DB type so the
// Engine facade can serve the paper's workload. sigma may be nil for the
// no-FDs (unsafe-query) setup.
func tpchDB(sigma *fd.Set) *DB {
	d := tpch.Generate(tpch.Config{SF: 0.002, Seed: 1})
	if sigma == nil {
		sigma = fd.NewSet()
	}
	return &DB{catalog: d.Catalog(), sigma: sigma}
}

// wrapQuery lifts an internal query AST into the facade type (tests live in
// the sprout package, so they can do what the builder does).
func wrapQuery(q *query.Query) *Query { return &Query{q: q} }

// custOrd is π{ckey,cname}(Cust ⋈ σ{odate<'1996-09-01'}(Ord)) —
// hierarchical without any FDs.
func custOrd() *query.Query {
	return &query.Query{
		Name: "custOrd",
		Head: []string{"ckey", "cname"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname", "nkey", "cacctbal", "mkt"),
			query.Rel("Ord", "okey", "ckey", "odate", "oprice", "opri"),
		},
		Sels: []query.Selection{
			{Rel: "Ord", Attr: "odate", Op: engine.OpLt, Val: table.Str("1996-09-01")},
		},
	}
}

// confMap indexes a result's confidences by rendered answer tuple.
func confMap(t *testing.T, res *Result) map[string]float64 {
	t.Helper()
	m := make(map[string]float64, len(res.Rows))
	for _, r := range res.Rows {
		key := ""
		for _, v := range r.Values {
			key += v.String() + "|"
		}
		if _, dup := m[key]; dup {
			t.Fatalf("duplicate answer %q", key)
		}
		m[key] = r.Confidence
	}
	return m
}

func mustSameConfidences(t *testing.T, label string, got, want map[string]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, want %d", label, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("%s: answer %q missing", label, k)
		}
		if g != w {
			t.Fatalf("%s: answer %q confidence %v, want %v (bit-identical required)", label, k, g, w)
		}
	}
}

// workload is the mixed style/query matrix of the stress tests: exact
// sort+scan styles and the OBDD and d-tree tiers on a hierarchical query,
// plus the compilation and Monte Carlo tiers on the unsafe query (which has
// no hierarchical signature under an empty FD set).
func workload() []struct {
	name  string
	q     *query.Query
	style PlanStyle
} {
	return []struct {
		name  string
		q     *query.Query
		style PlanStyle
	}{
		{"custOrd/lazy", custOrd(), Lazy},
		{"custOrd/eager", custOrd(), Eager},
		{"custOrd/hybrid", custOrd(), Hybrid},
		{"custOrd/obdd", custOrd(), OBDD},
		{"custOrd/dtree", custOrd(), DTree},
		{"unsafe/mc", benchutil.UnsafeQuery(), MonteCarlo},
		{"unsafe/obdd", benchutil.UnsafeQuery(), OBDD},
		{"unsafe/dtree", benchutil.UnsafeQuery(), DTree},
		{"unsafe/lazy-fallback", benchutil.UnsafeQuery(), Lazy},
	}
}

// TestEngineConcurrentMixedStyles: many goroutines hammer one shared Engine
// with a mix of exact, OBDD and Monte Carlo runs over the TPC-H catalog;
// every result must equal the serial single-threaded evaluation bit for
// bit.
func TestEngineConcurrentMixedStyles(t *testing.T) {
	difftest.LeakCheck(t)
	db := tpchDB(nil)
	items := workload()

	// Serial reference: classic single-threaded executor.
	want := make([]map[string]float64, len(items))
	for i, it := range items {
		res, err := db.Run(wrapQuery(it.q), it.style, WithWorkers(1), WithSeed(1))
		if err != nil {
			t.Fatalf("serial %s: %v", it.name, err)
		}
		want[i] = confMap(t, res)
	}

	e, err := db.NewEngine(WithWorkers(4), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				it := items[(g+n)%len(items)]
				res, err := e.Run(context.Background(), wrapQuery(it.q), it.style)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", it.name, err)
					return
				}
				got := confMap(t, res)
				w := want[(g+n)%len(items)]
				if len(got) != len(w) {
					errs <- fmt.Errorf("%s: %d answers, want %d", it.name, len(got), len(w))
					return
				}
				for k, wv := range w {
					if gv, ok := got[k]; !ok || gv != wv {
						errs <- fmt.Errorf("%s: answer %q = %v, want %v", it.name, k, gv, wv)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEngineRunBatch: a batch of mixed requests returns every result in
// request order, equal to serial evaluation, with no cross-talk.
func TestEngineRunBatch(t *testing.T) {
	db := tpchDB(nil)
	items := workload()

	batch := make([]BatchItem, len(items))
	for i, it := range items {
		batch[i] = BatchItem{Query: wrapQuery(it.q), Style: it.style}
	}
	e, err := db.NewEngine(WithWorkers(4), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	results := e.RunBatch(context.Background(), batch)
	if len(results) != len(items) {
		t.Fatalf("got %d results, want %d", len(results), len(items))
	}
	for i, it := range items {
		if results[i].Err != nil {
			t.Fatalf("%s: %v", it.name, results[i].Err)
		}
		serial, err := db.Run(wrapQuery(it.q), it.style, WithWorkers(1), WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		mustSameConfidences(t, it.name, confMap(t, results[i].Result), confMap(t, serial))
	}
}

// TestEngineCancellation: cancelling the context aborts an expensive Monte
// Carlo run promptly with the context's error.
func TestEngineCancellation(t *testing.T) {
	difftest.LeakCheck(t)
	db := tpchDB(nil)
	e, err := db.NewEngine(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	// ε = 0.003 needs ~300k samples per answer over ~1700 answers: minutes
	// of work when not cancelled.
	_, err = e.Run(ctx, wrapQuery(benchutil.UnsafeQuery()), MonteCarlo,
		WithSeed(1), WithEpsilonDelta(0.003, 0.01))
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
	// Cancelled batches mark unfinished items with the context error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	results := e.RunBatch(ctx2, []BatchItem{{Query: wrapQuery(custOrd()), Style: Lazy}})
	if results[0].Err == nil {
		t.Fatal("cancelled batch item must carry an error")
	}
}

// TestWorkerCountBitIdentical: every style returns bit-identical
// confidences for workers=1 and workers=N — the engine's determinism
// contract, pinned across the exact sort+scan styles, the safe-plan
// baseline, the OBDD and d-tree tiers, Monte Carlo, and the unsafe-query
// fallback chain. The structural execution trace (Trace.Fingerprint: row
// counts, lineage shape, compilation and sampler detail — everything but
// timings and the loose scheduling-dependent attributes) is part of the
// same contract and must also match across worker counts. Since the
// vectorized tier landed, the execution strategy is a third axis of the
// same contract: every case also runs with WithRowExecution (forcing the
// classic tuple-at-a-time path) and must return the same confidences and
// the same structural trace as the default columnar-capable run.
func TestWorkerCountBitIdentical(t *testing.T) {
	difftest.LeakCheck(t)
	db := tpchDB(nil)
	styles := []struct {
		name  string
		q     *query.Query
		style PlanStyle
	}{
		{"lazy", custOrd(), Lazy},
		{"eager", custOrd(), Eager},
		{"hybrid", custOrd(), Hybrid},
		{"mystiq", custOrd(), MystiQ},
		{"obdd", custOrd(), OBDD},
		{"dtree", custOrd(), DTree},
		{"mc", custOrd(), MonteCarlo},
		{"unsafe-mc", benchutil.UnsafeQuery(), MonteCarlo},
		{"unsafe-obdd", benchutil.UnsafeQuery(), OBDD},
		{"unsafe-dtree", benchutil.UnsafeQuery(), DTree},
		{"unsafe-fallback", benchutil.UnsafeQuery(), Eager},
		{"auto", custOrd(), Auto},
		{"unsafe-auto", benchutil.UnsafeQuery(), Auto},
	}
	for _, tc := range styles {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := db.Run(wrapQuery(tc.q), tc.style, WithWorkers(1), WithSeed(1), WithTrace())
			if err != nil {
				t.Fatal(err)
			}
			want := confMap(t, ref)
			if ref.Stats.Trace == nil {
				t.Fatal("WithTrace: no trace collected")
			}
			wantTrace := ref.Stats.Trace.Fingerprint()
			for _, workers := range []int{2, 4, 8} {
				res, err := db.Run(wrapQuery(tc.q), tc.style, WithWorkers(workers), WithSeed(1), WithTrace())
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				mustSameConfidences(t, fmt.Sprintf("%s workers=%d", tc.name, workers), confMap(t, res), want)
				if got := res.Stats.Trace.Fingerprint(); got != wantTrace {
					t.Errorf("workers=%d: structural trace diverged\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						workers, wantTrace, workers, got)
				}
			}
			for _, workers := range []int{1, 4} {
				res, err := db.Run(wrapQuery(tc.q), tc.style,
					WithWorkers(workers), WithSeed(1), WithTrace(), WithRowExecution())
				if err != nil {
					t.Fatalf("row exec workers=%d: %v", workers, err)
				}
				mustSameConfidences(t, fmt.Sprintf("%s row-exec workers=%d", tc.name, workers), confMap(t, res), want)
				if got := res.Stats.Trace.Fingerprint(); got != wantTrace {
					t.Errorf("row exec workers=%d: structural trace diverged\n--- columnar ---\n%s\n--- row ---\n%s",
						workers, wantTrace, got)
				}
			}
		})
	}
}

// transientFaultIO builds a fresh injector whose faults are all transient
// and all absorbed by the storage-level retry policy — a faulted run must
// behave observably like a fault-free one.
func transientFaultIO() *fault.IO {
	return &fault.IO{
		Plan: fault.NewPlan(7,
			fault.Rule{Op: fault.OpCreate, Kind: fault.KindErr, Nth: 2, Transient: true},
			fault.Rule{Op: fault.OpWrite, Kind: fault.KindErr, Nth: 3, Count: 2, Transient: true},
			fault.Rule{Op: fault.OpRead, Kind: fault.KindErr, Nth: 2, Count: 2, Transient: true},
			fault.Rule{Op: fault.OpSync, Kind: fault.KindErr, Nth: 1, Transient: true},
		),
		Retry: fault.Retry{MaxAttempts: 3, Base: time.Microsecond, Max: time.Millisecond},
		Sleep: func(time.Duration) {},
	}
}

// TestFaultedRunsBitIdentical is the faulted-but-recovered axis of the
// determinism contract: transient injected I/O faults, absorbed inside the
// storage wrappers by the retry policy, must leave confidences bit-identical
// to the fault-free run — across worker counts. The spill budget is starved
// so the runs actually exercise the fault plane (the in-memory catalog only
// touches storage through external-sort spills).
func TestFaultedRunsBitIdentical(t *testing.T) {
	difftest.LeakCheck(t)
	db := tpchDB(nil)
	spec := func(workers int) plan.Spec {
		s := plan.Spec{Style: Lazy, Workers: workers}
		s.Conf.SortBudget = 64
		s.Conf.TmpDir = t.TempDir()
		return s
	}
	ref, err := db.RunSpec(wrapQuery(custOrd()), spec(1))
	if err != nil {
		t.Fatal(err)
	}
	want := confMap(t, ref)

	for _, workers := range []int{1, 2, 4} {
		io := transientFaultIO()
		storage.SetIO(io)
		res, err := db.RunSpec(wrapQuery(custOrd()), spec(workers))
		storage.SetIO(nil)
		if err != nil {
			t.Fatalf("workers=%d: transient faults must be absorbed: %v", workers, err)
		}
		if io.Plan.Injected() == 0 {
			t.Fatalf("workers=%d: no fault fired — the run did not exercise the fault plane", workers)
		}
		if io.Retries() == 0 {
			t.Fatalf("workers=%d: faults fired but nothing retried", workers)
		}
		mustSameConfidences(t, fmt.Sprintf("faulted workers=%d", workers), confMap(t, res), want)
	}
}
