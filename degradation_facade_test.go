package sprout

import (
	"context"
	"strings"
	"testing"
)

// TestMemoryBudgetDegradesGracefully drives the paper's running example
// through the public facade under a starvation-level memory budget: the
// governor denies reservations, sorts spill early and the join falls back
// to grace mode — yet the confidence is unchanged and the run reports
// memory degradation rather than failing.
func TestMemoryBudgetDegradesGracefully(t *testing.T) {
	db := fig1DB(t)
	want, err := db.Run(introQuery(), Lazy)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := db.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), introQuery(), Lazy, WithMemoryBudget(1))
	if err != nil {
		t.Fatalf("budget starvation must degrade, not fail: %v", err)
	}
	if !res.Stats.Degraded || !strings.Contains(res.Stats.DegradeReason, "memory") {
		t.Fatalf("Degraded=%v reason=%q, want memory degradation", res.Stats.Degraded, res.Stats.DegradeReason)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("%d rows vs ungoverned %d", len(res.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if g, w := res.Rows[i].Confidence, want.Rows[i].Confidence; g != w {
			t.Errorf("row %d: governed confidence %g != ungoverned %g", i, g, w)
		}
	}
	if used := eng.MemoryInUse(); used != 0 {
		t.Errorf("governed run left %d bytes reserved", used)
	}

	// A generous budget must neither degrade nor change anything.
	res, err = eng.Run(context.Background(), introQuery(), Lazy, WithMemoryBudget(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Degraded {
		t.Errorf("generous budget must not degrade: %+v", res.Stats)
	}
	if eng.MemoryHighWater() == 0 {
		t.Error("a governed run should have accounted some memory")
	}
}
