// TPC-H scenario: generate a probabilistic TPC-H instance and run the
// paper's headline query 18 (large-volume customer: Cust ⋈ Ord ⋈ Item with
// a very selective customer condition) under all three plan styles plus the
// MystiQ baseline — the comparison at the heart of the paper's Fig. 9.
//
// Run with: go run ./examples/tpch [-sf 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/plan"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	flag.Parse()

	fmt.Printf("generating probabilistic TPC-H at SF %g ...\n", *sf)
	d := tpch.Generate(tpch.Config{SF: *sf, Seed: 1})
	fmt.Printf("  %d customers, %d orders, %d lineitems (%d random variables)\n\n",
		d.Cust.Rel.Len(), d.Ord.Rel.Len(), d.Item.Rel.Len(), d.NumVars)

	catalog := d.Catalog()
	e := tpch.Catalog()["18"]
	sigma := tpch.FDsFor(e)
	fmt.Printf("query 18: %s\n", e.Q)
	fmt.Printf("derivation note: %s\n\n", e.Note)

	for _, style := range []plan.Style{plan.Lazy, plan.Hybrid, plan.Eager, plan.SafeMystiQ} {
		res, err := plan.Run(catalog, e.Q.Clone(), sigma, plan.Spec{Style: style})
		if err != nil {
			log.Fatalf("%v: %v", style, err)
		}
		fmt.Printf("%-7v total %8.4fs  (tuples %8.4fs, prob %8.4fs)  answers=%d distinct=%d\n",
			style, res.Stats.Total().Seconds(),
			res.Stats.TupleTime.Seconds(), res.Stats.ProbTime.Seconds(),
			res.Stats.AnswerTuples, res.Stats.DistinctTuples)
		fmt.Printf("        plan: %s\n", res.Stats.Plan)
	}

	fmt.Println("\nexpected shape (paper Fig. 9): lazy clearly fastest — its join order")
	fmt.Println("starts from the single selected customer, while the hierarchy-bound")
	fmt.Println("eager/MystiQ plans first join all orders with all lineitems.")
}
