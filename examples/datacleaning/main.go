// Data-cleaning scenario: probabilistic deduplication (one of the
// applications motivating probabilistic databases in the paper's
// introduction: "data cleaning, data integration, and scientific
// databases").
//
// An entity-resolution stage has matched dirty CRM records against a master
// customer list; each candidate link carries a match probability. Shipping
// events reference the dirty records. The question "which master customers
// probably received a shipment over 500kg?" is a conjunctive query whose
// answer confidences combine the independent match and event probabilities.
//
// Run with: go run ./examples/datacleaning
package main

import (
	"fmt"
	"log"

	sprout "repro"
)

func main() {
	db := sprout.NewDB()

	// MasterCust is the cleaned customer list; the master records
	// themselves are (nearly) certain.
	master := db.MustCreateTable("MasterCust",
		sprout.IntCol("mkey"), sprout.StringCol("mname"), sprout.StringCol("city"))
	master.MustInsert(0.99, sprout.Int(1), sprout.String("ACME GmbH"), sprout.String("Berlin"))
	master.MustInsert(0.99, sprout.Int(2), sprout.String("Globex Ltd"), sprout.String("London"))
	master.MustInsert(0.99, sprout.Int(3), sprout.String("Initech SA"), sprout.String("Paris"))

	// Link(dkey, mkey): the matcher's best identification per dirty record
	// with its match probability — mutually independent by assumption of
	// the tuple-independent model. Keeping only the best candidate per
	// dirty record gives the functional dependency dkey → mkey, which is
	// exactly what makes the 3-way query below tractable (without it,
	// Master—Link—Shipment is the prototypical #P-hard join pattern of
	// paper §I).
	link := db.MustCreateTable("Link", sprout.IntCol("dkey"), sprout.IntCol("mkey"))
	link.MustInsert(0.90, sprout.Int(101), sprout.Int(1)) // "Acme Gmbh."  -> ACME
	link.MustInsert(0.80, sprout.Int(102), sprout.Int(2)) // "globex ltd"  -> Globex
	link.MustInsert(0.70, sprout.Int(103), sprout.Int(1)) // "ACME Berlin" -> ACME
	link.MustInsert(0.60, sprout.Int(104), sprout.Int(3)) // "initech"     -> Initech

	// Shipment(shipkey, dkey, weight): events referencing dirty records;
	// probabilities reflect sensor/log reliability.
	ship := db.MustCreateTable("Shipment",
		sprout.IntCol("shipkey"), sprout.IntCol("dkey"), sprout.FloatCol("weight"))
	ship.MustInsert(0.95, sprout.Int(1001), sprout.Int(101), sprout.Float(820))
	ship.MustInsert(0.95, sprout.Int(1002), sprout.Int(101), sprout.Float(120))
	ship.MustInsert(0.90, sprout.Int(1003), sprout.Int(102), sprout.Float(640))
	ship.MustInsert(0.85, sprout.Int(1004), sprout.Int(103), sprout.Float(555))
	ship.MustInsert(0.80, sprout.Int(1005), sprout.Int(104), sprout.Float(310))

	// mkey is a key of MasterCust; dkey → mkey is the best-match property;
	// shipkey is a key of Shipment.
	db.DeclareKey("MasterCust", []string{"mkey"}, []string{"mkey", "mname", "city"})
	db.DeclareFD("Link", []string{"dkey"}, []string{"mkey"})
	db.DeclareKey("Shipment", []string{"shipkey"}, []string{"shipkey", "dkey", "weight"})

	// Which master customers probably received a heavy (>500kg) shipment?
	q := sprout.NewQuery("heavy-shippers").
		Select("mname").
		From("MasterCust", "mkey", "mname", "city").
		From("Link", "dkey", "mkey").
		From("Shipment", "shipkey", "dkey", "weight").
		Where("Shipment", "weight", sprout.Gt, sprout.Float(500))

	if !q.IsHierarchical() {
		fmt.Println("(query is non-hierarchical as written; the declared keys rescue it)")
	}
	sig, err := db.Signature(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query:     %s\nsignature: %s\n\n", q, sig)

	res, err := db.Run(q, sprout.Lazy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("master customers with a probable heavy shipment:")
	fmt.Print(res.Format())

	// Cross-check one confidence by hand: ACME receives a heavy shipment
	// iff (link101→1 ∧ ship1001) ∨ (link103→1 ∧ ship1004), all scaled by
	// the master tuple's own 0.99.
	p1 := 0.90 * 0.95
	p2 := 0.70 * 0.85
	manual := 0.99 * (1 - (1-p1)*(1-p2))
	fmt.Printf("\nhand-computed ACME confidence: %.6f\n", manual)
}
