// FD-rewriting scenario: a non-hierarchical (#P-hard in general) query made
// tractable by functional dependencies — the paper's Example IV.3 / the
// Introduction's query Q'.
//
// Q' asks for the dates of discounted orders shipped to 'Joe' when Item has
// no ckey attribute (as in real TPC-H): Ord then joins Cust and Item on
// different attributes, the prototypical hard pattern. Under the natural
// TPC-H key okey → ckey odate, the FD-reduct is a Boolean hierarchical
// query whose signature (Cust(Ord Item*)*)* evaluates Q' exactly.
//
// Run with: go run ./examples/fdrewrite
package main

import (
	"fmt"
	"log"

	sprout "repro"
)

func main() {
	build := func(declareKeys bool) (*sprout.DB, *sprout.Query) {
		db := sprout.NewDB()
		cust := db.MustCreateTable("Cust", sprout.IntCol("ckey"), sprout.StringCol("cname"))
		for i, name := range []string{"Joe", "Dan", "Li", "Mo"} {
			cust.MustInsert(0.1*float64(i+1), sprout.Int(int64(i+1)), sprout.String(name))
		}
		ord := db.MustCreateTable("Ord", sprout.IntCol("okey"), sprout.IntCol("ckey"), sprout.StringCol("odate"))
		for _, r := range []struct {
			okey, ckey int64
			odate      string
			p          float64
		}{
			{1, 1, "1995-01-10", 0.1}, {2, 1, "1996-01-09", 0.2}, {3, 2, "1994-11-11", 0.3},
			{4, 2, "1993-01-08", 0.4}, {5, 3, "1995-08-15", 0.5}, {6, 3, "1996-12-25", 0.6},
		} {
			ord.MustInsert(r.p, sprout.Int(r.okey), sprout.Int(r.ckey), sprout.String(r.odate))
		}
		// Item WITHOUT a ckey attribute — the crucial difference to the
		// quickstart example.
		item := db.MustCreateTable("Item", sprout.IntCol("okey"), sprout.FloatCol("discount"))
		for _, r := range []struct {
			okey int64
			disc float64
			p    float64
		}{
			{1, 0.1, 0.1}, {1, 0.2, 0.2}, {3, 0.4, 0.3}, {3, 0.1, 0.4}, {4, 0.4, 0.5}, {5, 0.1, 0.6},
		} {
			item.MustInsert(r.p, sprout.Int(r.okey), sprout.Float(r.disc))
		}
		if declareKeys {
			db.DeclareKey("Cust", []string{"ckey"}, []string{"ckey", "cname"})
			db.DeclareKey("Ord", []string{"okey"}, []string{"okey", "ckey", "odate"})
		}
		q := sprout.NewQuery("Q'").
			Select("odate").
			From("Cust", "ckey", "cname").
			From("Ord", "okey", "ckey", "odate").
			From("Item", "okey", "discount").
			Where("Cust", "cname", sprout.Eq, sprout.String("Joe")).
			Where("Item", "discount", sprout.Gt, sprout.Float(0))
		return db, q
	}

	// Without FDs: Q' is non-hierarchical — exact computation is off the
	// table (RequireExact rejects it), and a plain Run answers it with the
	// Monte Carlo fallback instead.
	db, q := build(false)
	fmt.Printf("query Q': %s\n", q)
	fmt.Printf("hierarchical (Def. II.1)? %v\n", q.IsHierarchical())
	if _, err := db.Run(q, sprout.Lazy, sprout.RequireExact()); err != nil {
		fmt.Printf("without FDs, exact: %v\n\n", err)
	} else {
		log.Fatal("Q' unexpectedly ran exactly without FDs")
	}
	approx, err := db.Run(q, sprout.Lazy,
		sprout.WithEpsilonDelta(0.01, 0.001), sprout.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without FDs, Monte Carlo fallback (approximate=%v):\n%s\n",
		approx.Stats.Approximate, approx.Format())

	// With the TPC-H keys: the FD-reduct is hierarchical and Q' runs.
	db, q = build(true)
	sig, err := db.Signature(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with okey→ckey,odate and ckey→cname declared:\n")
	fmt.Printf("signature of the FD-reduct: %s\n\n", sig)
	res, err := db.Run(q, sprout.Lazy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Println("\nthe answer matches the quickstart's query Q — under the FD, Q and Q'")
	fmt.Println("are equivalent (paper §I), and the confidence of 1995-01-10 is 0.0028.")
}
