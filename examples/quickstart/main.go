// Quickstart: the paper's running example (Fig. 1) end to end.
//
// We build the tuple-independent TPC-H-like database of Fig. 1, ask for the
// dates of discounted orders shipped to customer 'Joe', and compute the
// exact confidence of each answer. The paper's worked result: one distinct
// answer, 1995-01-10, with confidence 0.1·0.1·(1-(1-0.1)(1-0.2)) = 0.0028.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	sprout "repro"
)

func main() {
	db := sprout.NewDB()

	// Cust(ckey, cname) with variables x1..x4 (probabilities 0.1..0.4).
	cust := db.MustCreateTable("Cust", sprout.IntCol("ckey"), sprout.StringCol("cname"))
	for i, name := range []string{"Joe", "Dan", "Li", "Mo"} {
		cust.MustInsert(0.1*float64(i+1), sprout.Int(int64(i+1)), sprout.String(name))
	}

	// Ord(okey, ckey, odate) with variables y1..y6.
	ord := db.MustCreateTable("Ord", sprout.IntCol("okey"), sprout.IntCol("ckey"), sprout.StringCol("odate"))
	for _, r := range []struct {
		okey, ckey int64
		odate      string
		p          float64
	}{
		{1, 1, "1995-01-10", 0.1}, {2, 1, "1996-01-09", 0.2}, {3, 2, "1994-11-11", 0.3},
		{4, 2, "1993-01-08", 0.4}, {5, 3, "1995-08-15", 0.5}, {6, 3, "1996-12-25", 0.6},
	} {
		ord.MustInsert(r.p, sprout.Int(r.okey), sprout.Int(r.ckey), sprout.String(r.odate))
	}

	// Item(okey, discount, ckey) with variables z1..z6.
	item := db.MustCreateTable("Item", sprout.IntCol("okey"), sprout.FloatCol("discount"), sprout.IntCol("ckey"))
	for _, r := range []struct {
		okey int64
		disc float64
		ckey int64
		p    float64
	}{
		{1, 0.1, 1, 0.1}, {1, 0.2, 1, 0.2}, {3, 0.4, 2, 0.3},
		{3, 0.1, 2, 0.4}, {4, 0.4, 2, 0.5}, {5, 0.1, 3, 0.6},
	} {
		item.MustInsert(r.p, sprout.Int(r.okey), sprout.Float(r.disc), sprout.Int(r.ckey))
	}

	// The TPC-H keys: okey is a key of Ord, ckey of Cust. These refine the
	// query signature from (Cust*(Ord*Item*)*)* (three scans) to
	// (Cust(Ord Item*)*)* (a single scan), §III/§IV.
	db.DeclareKey("Cust", []string{"ckey"}, []string{"ckey", "cname"})
	db.DeclareKey("Ord", []string{"okey"}, []string{"okey", "ckey", "odate"})

	// Q = π_odate σ_{cname='Joe', discount>0} (Cust ⋈ Ord ⋈ Item).
	q := sprout.NewQuery("Q").
		Select("odate").
		From("Cust", "ckey", "cname").
		From("Ord", "okey", "ckey", "odate").
		From("Item", "okey", "discount", "ckey").
		Where("Cust", "cname", sprout.Eq, sprout.String("Joe")).
		Where("Item", "discount", sprout.Gt, sprout.Float(0))

	sig, err := db.Signature(q)
	if err != nil {
		log.Fatal(err)
	}
	scans, _ := db.NumScans(q)
	fmt.Printf("query:     %s\n", q)
	fmt.Printf("signature: %s  (%d scan(s))\n\n", sig, scans)

	for _, style := range []sprout.PlanStyle{sprout.Lazy, sprout.Eager, sprout.MystiQ} {
		res, err := db.Run(q, style)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %v plan: %s\n", style, res.Stats.Plan)
		fmt.Print(res.Format())
		fmt.Println()
	}
	fmt.Println("expected confidence per the paper: 0.0028")
	fmt.Println("(MystiQ's value deviates: its log-based probability aggregate")
	fmt.Println(" 1-POWER(10, SUM(log10(1.001-p))) is an approximation, §VII)")
}
