package table

import (
	"fmt"
	"math/rand"
	"testing"
)

// colBatchSchema covers every kind the columnar layouts specialize on.
func colBatchSchema() *Schema {
	return NewSchema(
		DataCol("i", KindInt),
		DataCol("f", KindFloat),
		DataCol("s", KindString),
		DataCol("b", KindBool),
	)
}

// randomColTuple draws a tuple over colBatchSchema, with occasional NULLs and
// a string pool sized by card (card > DictMaxCard exercises the spill).
func randomColTuple(rng *rand.Rand, card int) Tuple {
	t := Tuple{
		Int(rng.Int63n(1000) - 500),
		Float(rng.Float64()*10 - 5),
		Str(fmt.Sprintf("s-%04d", rng.Intn(card))),
		Bool(rng.Intn(2) == 0),
	}
	if rng.Intn(10) == 0 {
		t[rng.Intn(len(t))] = Null()
	}
	return t
}

// TestColBatchRowRoundTrip: AppendRow → WriteRow/Value reproduces every cell
// bit-identically across all layouts, including NULLs and a dictionary that
// spills to the flat layout mid-batch.
func TestColBatchRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, card := range []int{8, DictMaxCard + 50} {
		sch := colBatchSchema()
		b := NewColBatch(sch)
		var rows []Tuple
		for i := 0; i < 700; i++ {
			tu := randomColTuple(rng, card)
			rows = append(rows, tu)
			b.AppendRow(tu)
		}
		if b.Rows() != len(rows) {
			t.Fatalf("card=%d: %d live rows, want %d", card, b.Rows(), len(rows))
		}
		dst := make(Tuple, sch.Len())
		for i, want := range rows {
			b.WriteRow(i, dst)
			for c := range want {
				if dst[c] != want[c] {
					t.Fatalf("card=%d: row %d col %d = %v, want %v", card, i, c, dst[c], want[c])
				}
				if got := b.Cols[c].Value(i); got != want[c] {
					t.Fatalf("card=%d: Value(%d) col %d = %v, want %v", card, i, c, got, want[c])
				}
			}
		}
	}
}

// TestColBatchStrBytesLayouts: the heap-scan byte append uses the dictionary
// under DictMaxCard distinct values and spills to flat beyond it, preserving
// every cell, and a reset column remembers the spill (stays flat).
func TestColBatchStrBytesLayouts(t *testing.T) {
	sch := NewSchema(DataCol("s", KindString))
	b := NewColBatch(sch)
	var want []string
	for i := 0; i < 64; i++ {
		s := fmt.Sprintf("dict-%02d", i%8)
		b.Cols[0].AppendStrBytes(b.N, []byte(s))
		want = append(want, s)
		b.N++
	}
	if b.Cols[0].Mode != StrDict {
		t.Fatalf("low-cardinality column mode = %v, want StrDict", b.Cols[0].Mode)
	}
	for i := DictMaxCard; i >= 0; i-- { // push past the cardinality limit
		s := fmt.Sprintf("wide-%04d", i)
		b.Cols[0].AppendStrBytes(b.N, []byte(s))
		want = append(want, s)
		b.N++
	}
	if b.Cols[0].Mode != StrFlat {
		t.Fatalf("post-spill mode = %v, want StrFlat", b.Cols[0].Mode)
	}
	for i, s := range want {
		if got := b.Cols[0].Value(i); got.S != s {
			t.Fatalf("cell %d = %q, want %q", i, got.S, s)
		}
	}
	b.Reset(sch)
	b.Cols[0].AppendStrBytes(0, []byte("after"))
	b.N = 1
	if b.Cols[0].Mode != StrFlat {
		t.Fatalf("reset after spill: mode = %v, want StrFlat (noDict persists)", b.Cols[0].Mode)
	}
	if got := b.Cols[0].Value(0); got.S != "after" {
		t.Fatalf("reset after spill: cell = %q, want %q", got.S, "after")
	}
}

// TestColVecTypedAppends: the unboxed appends land in typed storage on the
// matching column kind and fall back to AppendValue semantics (degrade)
// elsewhere.
func TestColVecTypedAppends(t *testing.T) {
	sch := NewSchema(DataCol("i", KindInt), DataCol("f", KindFloat), DataCol("b", KindBool))
	b := NewColBatch(sch)
	b.Cols[0].AppendInt(0, 42)
	b.Cols[1].AppendFloat(0, 2.5)
	b.Cols[2].AppendBool(0, 1)
	b.N = 1
	for c, want := range []Value{Int(42), Float(2.5), Bool(true)} {
		if got := b.Cols[c].Value(0); got != want {
			t.Fatalf("col %d = %v, want %v", c, got, want)
		}
		if b.Cols[c].Values != nil {
			t.Fatalf("col %d degraded on a matching typed append", c)
		}
	}
	// Kind mismatch: the typed append must degrade like AppendValue would.
	b.Cols[0].AppendFloat(1, 1.5)
	b.N = 2
	if b.Cols[0].Values == nil {
		t.Fatal("mismatched typed append did not degrade the column")
	}
	if got := b.Cols[0].Value(0); got != Int(42) {
		t.Fatalf("degraded col cell 0 = %v, want %v", got, Int(42))
	}
	if got := b.Cols[0].Value(1); got != Float(1.5) {
		t.Fatalf("degraded col cell 1 = %v, want %v", got, Float(1.5))
	}
}

// TestColVecCompareValueMatchesCompare: CompareValue must order any cell
// against any constant exactly as Compare orders the materialized values —
// the property the vectorized filter's correctness rests on.
func TestColVecCompareValueMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	consts := []Value{
		Null(), Int(0), Int(-3), Float(0.25), Float(-2), Str(""), Str("s-0100"),
		Str("zzz"), Bool(true), Bool(false),
	}
	for _, card := range []int{8, DictMaxCard + 50} {
		b := NewColBatch(colBatchSchema())
		var rows []Tuple
		for i := 0; i < 400; i++ {
			tu := randomColTuple(rng, card)
			rows = append(rows, tu)
			b.AppendRow(tu)
		}
		for i, row := range rows {
			for c := range row {
				for _, k := range consts {
					want := Compare(row[c], k)
					if got := b.Cols[c].CompareValue(i, k); got != want {
						t.Fatalf("card=%d row %d col %d vs %v: CompareValue=%d, Compare=%d",
							card, i, c, k, got, want)
					}
				}
			}
		}
	}
}

// TestColBatchHashIntoMatchesHashOn: batch hashing feeds FNV-1a the exact
// byte sequence HashOn feeds it — with and without a selection vector — so
// vectorized joins share hash tables with the row engine bit-identically.
func TestColBatchHashIntoMatchesHashOn(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, card := range []int{8, DictMaxCard + 50} {
		b := NewColBatch(colBatchSchema())
		var rows []Tuple
		for i := 0; i < 500; i++ {
			tu := randomColTuple(rng, card)
			rows = append(rows, tu)
			b.AppendRow(tu)
		}
		idxSets := [][]int{{0}, {2}, {1, 3}, {0, 1, 2, 3}}
		check := func(label string) {
			for _, idx := range idxSets {
				hs := b.HashInto(idx, nil)
				if len(hs) != b.Rows() {
					t.Fatalf("%s idx=%v: %d hashes, want %d", label, idx, len(hs), b.Rows())
				}
				for i := range hs {
					want := HashOn(rows[b.RowID(i)], idx)
					if hs[i] != want {
						t.Fatalf("%s idx=%v live row %d: hash %#x, want %#x", label, idx, i, hs[i], want)
					}
				}
			}
		}
		check("full")
		sel := b.SelBuf(b.N)[:0]
		for i := 0; i < b.N; i += 3 {
			sel = append(sel, int32(i))
		}
		b.Sel = sel
		check("selected")
	}
}

// TestColVecAppendCell: gathering cells across batches (the join output path)
// reproduces the source cells for every layout, including flat-string
// byte-wise moves and NULLs.
func TestColVecAppendCell(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	src := NewColBatch(colBatchSchema())
	var rows []Tuple
	for i := 0; i < 300; i++ {
		tu := randomColTuple(rng, DictMaxCard+40) // force a spill in the string column
		rows = append(rows, tu)
		src.AppendRow(tu)
	}
	out := NewColBatch(colBatchSchema())
	for i := len(rows) - 1; i >= 0; i-- { // gather in reverse order
		for c := range out.Cols {
			out.Cols[c].AppendCell(out.N, &src.Cols[c], i)
		}
		out.N++
	}
	dst := make(Tuple, len(rows[0]))
	for i := 0; i < out.N; i++ {
		out.WriteRow(i, dst)
		want := rows[len(rows)-1-i]
		for c := range want {
			if dst[c] != want[c] {
				t.Fatalf("gathered row %d col %d = %v, want %v", i, c, dst[c], want[c])
			}
		}
	}
}
