package table

import (
	"math"

	"repro/internal/prob"
)

// This file is the columnar side of the data model: a ColBatch carries up to
// a batch's worth of tuples as per-column typed vectors — []int64, []float64,
// strings as shared headers, flat bytes-with-offsets, or a low-cardinality
// byte-code dictionary — plus a selection vector and a null bitmap, in the
// MonetDB/X100 vectorized-execution tradition. The engine's columnar
// operators (engine.ColOperator) move ColBatches through reused storage the
// same way the row engine moves []Tuple batches: the contents of a batch
// (column slices included) are valid only until the next NextColBatch call
// on its producer, so consumers that retain column slices or cells across
// batches must copy them.

// StrMode names the storage layout of a string column's cells within one
// batch.
type StrMode uint8

// String column layouts.
const (
	// StrNone: no string cell appended yet this batch (layout undecided).
	StrNone StrMode = iota
	// StrHeader: Strs holds shared string headers — the zero-copy
	// transposition of in-memory Values.
	StrHeader
	// StrDict: Codes holds one byte per cell indexing Dict — the
	// low-cardinality layout (at most DictMaxCard distinct values); the
	// dictionary persists across batches of the same producer.
	StrDict
	// StrFlat: cell i is Bytes[Offs[i]:Offs[i+1]] — concatenated raw
	// bytes, the heap-scan decode layout that avoids a per-row string
	// allocation.
	StrFlat
)

// DictMaxCard is the dictionary cardinality limit: a string column whose
// distinct count stays under it is dictionary-encoded with one byte code per
// cell; beyond it the column spills to the flat layout for good.
const DictMaxCard = 256

// ColVec is one column of a ColBatch: N cell values in one typed layout,
// plus an optional null bitmap.
//
//   - Values non-nil: the generic row-value fallback — authoritative for
//     every cell, used when a column's cells do not all match its declared
//     kind. All other storage is ignored.
//   - KindInt, KindBool: Ints (bools store 0/1, as Value.I does).
//   - KindFloat: Floats.
//   - KindString: Strs, Codes+Dict, or Bytes+Offs according to Mode.
//
// NULL cells set their bit in Nulls and append a zero placeholder to the
// typed storage so indexes stay aligned; Nulls is empty while a column has
// no NULL cells.
type ColVec struct {
	Kind   Kind    // declared column kind the typed layouts assume
	Mode   StrMode // string layout in use (string columns only)
	Ints   []int64
	Floats []float64
	Strs   []string
	Bytes  []byte
	Offs   []int32
	Dict   []string
	Codes  []byte
	Nulls  []uint64
	Values []Value

	dict   map[string]int // dictionary builder, persists across Reset
	noDict bool           // cardinality blew DictMaxCard: stay flat
}

// ColBatch is a columnar batch of up to engine.BatchSize tuples: one ColVec
// per schema column, N physical rows, and an optional selection vector. When
// Sel is non-nil, only the physical rows it lists (strictly increasing) are
// live — filters qualify rows by writing Sel instead of moving any cell.
type ColBatch struct {
	Schema *Schema
	N      int
	Sel    []int32
	Cols   []ColVec

	selBuf []int32 // reusable Sel storage for operators that filter in place
}

// NewColBatch returns an empty batch shaped for the schema.
func NewColBatch(s *Schema) *ColBatch {
	b := &ColBatch{}
	b.Reset(s)
	return b
}

// Reset clears the batch for refilling under the given schema, keeping the
// column storage (and any built dictionaries) for reuse.
func (b *ColBatch) Reset(s *Schema) {
	if len(b.Cols) != s.Len() {
		b.Cols = make([]ColVec, s.Len())
	}
	b.Schema = s
	b.N = 0
	b.Sel = nil
	for i := range b.Cols {
		b.Cols[i].reset(s.Cols[i].Kind)
	}
}

func (v *ColVec) reset(kind Kind) {
	v.Kind = kind
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
	v.Bytes = v.Bytes[:0]
	v.Offs = v.Offs[:0]
	v.Codes = v.Codes[:0]
	v.Nulls = v.Nulls[:0]
	v.Values = nil
	// A live dictionary carries over: the next batch of the same column
	// keeps encoding against it.
	if v.dict != nil && !v.noDict {
		v.Mode = StrDict
	} else {
		v.Mode = StrNone
	}
}

// Rows returns the number of live rows (selection applied).
func (b *ColBatch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// RowID maps live row i to its physical row.
func (b *ColBatch) RowID(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// SelBuf returns the batch's reusable selection storage with room for n
// entries; the caller fills a prefix and assigns it to Sel.
func (b *ColBatch) SelBuf(n int) []int32 {
	if cap(b.selBuf) < n {
		b.selBuf = make([]int32, n)
	}
	return b.selBuf[:n]
}

// AppendRow transposes one tuple onto the batch columns.
func (b *ColBatch) AppendRow(t Tuple) {
	for i := range t {
		b.Cols[i].AppendValue(b.N, t[i])
	}
	b.N++
}

// WriteRow materializes live row i into dst (len b.Schema.Len()). String
// cells in the flat layout allocate their string here; every other layout
// shares storage.
func (b *ColBatch) WriteRow(i int, dst Tuple) {
	row := b.RowID(i)
	for c := range b.Cols {
		dst[c] = b.Cols[c].Value(row)
	}
}

// null reports whether physical row i is NULL in this column. The bitmap
// only grows to the last word with a NULL set, so rows past its end are
// non-NULL by construction.
func (v *ColVec) null(i int) bool {
	w := i >> 6
	if w >= len(v.Nulls) {
		return false
	}
	return v.Nulls[w]&(1<<uint(i&63)) != 0
}

// setNull marks physical row i NULL, growing the bitmap on demand.
func (v *ColVec) setNull(i int) {
	word := i >> 6
	for word >= len(v.Nulls) {
		v.Nulls = append(v.Nulls, 0)
	}
	v.Nulls[word] |= 1 << uint(i&63)
}

// degrade converts the column to the generic Values layout, materializing
// the n cells appended so far — the escape hatch for columns whose cells do
// not all match the declared kind.
func (v *ColVec) degrade(n int) {
	vals := make([]Value, n, n+1)
	for i := 0; i < n; i++ {
		vals[i] = v.Value(i)
	}
	v.Values = vals
}

// AppendValue appends one cell value as physical row n (the batch's current
// N). Cells of the declared kind land in typed storage — strings following
// the column's established layout, shared headers by default — NULLs set the
// bitmap, and any other kind degrades the column to the generic layout.
func (v *ColVec) AppendValue(n int, val Value) {
	if v.Values != nil {
		v.Values = append(v.Values, val)
		return
	}
	if val.Kind == KindNull {
		v.setNull(n)
		v.appendZero()
		return
	}
	if val.Kind != v.Kind {
		v.degrade(n)
		v.Values = append(v.Values, val)
		return
	}
	switch v.Kind {
	case KindInt, KindBool:
		v.Ints = append(v.Ints, val.I)
	case KindFloat:
		v.Floats = append(v.Floats, val.F)
	case KindString:
		switch v.Mode {
		case StrNone:
			v.Mode = StrHeader
			v.Strs = append(v.Strs, val.S)
		case StrHeader:
			v.Strs = append(v.Strs, val.S)
		case StrDict:
			v.appendDict(val.S)
		case StrFlat:
			if len(v.Offs) == 0 {
				v.Offs = append(v.Offs, 0)
			}
			v.Bytes = append(v.Bytes, val.S...)
			v.Offs = append(v.Offs, int32(len(v.Bytes)))
		}
	default:
		v.degrade(n)
		v.Values = append(v.Values, val)
	}
}

// appendZero appends a placeholder cell to the typed storage so physical row
// indexes stay aligned with N.
func (v *ColVec) appendZero() {
	switch v.Kind {
	case KindInt, KindBool:
		v.Ints = append(v.Ints, 0)
	case KindFloat:
		v.Floats = append(v.Floats, 0)
	case KindString:
		switch v.Mode {
		case StrNone:
			v.Mode = StrHeader
			v.Strs = append(v.Strs, "")
		case StrHeader:
			v.Strs = append(v.Strs, "")
		case StrDict:
			v.appendDict("")
		case StrFlat:
			if len(v.Offs) == 0 {
				v.Offs = append(v.Offs, 0)
			}
			v.Offs = append(v.Offs, int32(len(v.Bytes)))
		}
	}
}

// AppendInt appends a non-null int cell as physical row n without boxing a
// Value — the heap-scan decode fast path.
func (v *ColVec) AppendInt(n int, x int64) {
	if v.Values == nil && v.Kind == KindInt {
		v.Ints = append(v.Ints, x)
		return
	}
	v.AppendValue(n, Value{Kind: KindInt, I: x})
}

// AppendFloat is AppendInt for float cells.
func (v *ColVec) AppendFloat(n int, x float64) {
	if v.Values == nil && v.Kind == KindFloat {
		v.Floats = append(v.Floats, x)
		return
	}
	v.AppendValue(n, Value{Kind: KindFloat, F: x})
}

// AppendBool is AppendInt for bool cells (stored in the int storage).
func (v *ColVec) AppendBool(n int, x int64) {
	if v.Values == nil && v.Kind == KindBool {
		v.Ints = append(v.Ints, x)
		return
	}
	v.AppendValue(n, Value{Kind: KindBool, I: x})
}

// AppendStrBytes appends raw string bytes as physical row n, preferring the
// dictionary layout while the column's cardinality stays under DictMaxCard
// and spilling to flat bytes beyond it. This is the heap-scan decode path:
// no per-row string allocation in either layout (the dictionary allocates
// once per distinct value).
func (v *ColVec) AppendStrBytes(n int, s []byte) {
	if v.Values != nil {
		v.Values = append(v.Values, Str(string(s)))
		return
	}
	if v.Kind != KindString {
		v.degrade(n)
		v.Values = append(v.Values, Str(string(s)))
		return
	}
	switch v.Mode {
	case StrNone:
		if v.noDict {
			v.Mode = StrFlat
			v.Offs = append(v.Offs, 0)
			v.Bytes = append(v.Bytes, s...)
			v.Offs = append(v.Offs, int32(len(v.Bytes)))
			return
		}
		v.Mode = StrDict
		v.appendDictBytes(s)
	case StrDict:
		v.appendDictBytes(s)
	case StrFlat:
		if len(v.Offs) == 0 {
			v.Offs = append(v.Offs, 0)
		}
		v.Bytes = append(v.Bytes, s...)
		v.Offs = append(v.Offs, int32(len(v.Bytes)))
	case StrHeader:
		v.Strs = append(v.Strs, string(s))
	}
}

// appendDictBytes encodes raw bytes against the dictionary; the map lookup
// with a string([]byte) key does not allocate.
func (v *ColVec) appendDictBytes(s []byte) {
	if v.dict == nil {
		v.dict = make(map[string]int)
	}
	code, ok := v.dict[string(s)]
	if !ok {
		if len(v.Dict) >= DictMaxCard {
			v.spillDict()
			v.Bytes = append(v.Bytes, s...)
			v.Offs = append(v.Offs, int32(len(v.Bytes)))
			return
		}
		str := string(s)
		code = len(v.Dict)
		v.Dict = append(v.Dict, str)
		v.dict[str] = code
	}
	v.Codes = append(v.Codes, byte(code))
}

// appendDict is appendDictBytes for an existing string.
func (v *ColVec) appendDict(s string) {
	if v.dict == nil {
		v.dict = make(map[string]int)
	}
	code, ok := v.dict[s]
	if !ok {
		if len(v.Dict) >= DictMaxCard {
			v.spillDict()
			v.Bytes = append(v.Bytes, s...)
			v.Offs = append(v.Offs, int32(len(v.Bytes)))
			return
		}
		code = len(v.Dict)
		v.Dict = append(v.Dict, s)
		v.dict[s] = code
	}
	v.Codes = append(v.Codes, byte(code))
}

// spillDict rewrites this batch's dictionary-coded cells into the flat
// layout: the column's cardinality outgrew the dictionary.
func (v *ColVec) spillDict() {
	v.Mode = StrFlat
	v.noDict = true
	v.Offs = append(v.Offs[:0], 0)
	v.Bytes = v.Bytes[:0]
	for _, code := range v.Codes {
		v.Bytes = append(v.Bytes, v.Dict[code]...)
		v.Offs = append(v.Offs, int32(len(v.Bytes)))
	}
	v.Codes = v.Codes[:0]
	v.Dict = nil
	v.dict = nil
}

// AppendCell appends src's cell at physical row `row` as this column's
// physical row n, staying typed without materializing the cell: flat string
// bytes move byte-wise (no per-cell string allocation) and every other
// layout shares storage. The vectorized join's output gather is built on it.
func (v *ColVec) AppendCell(n int, src *ColVec, row int) {
	if src.Values != nil {
		v.AppendValue(n, src.Values[row])
		return
	}
	if src.null(row) {
		v.AppendValue(n, Null())
		return
	}
	if src.Kind == KindString && src.Mode == StrFlat {
		v.AppendStrBytes(n, src.Bytes[src.Offs[row]:src.Offs[row+1]])
		return
	}
	v.AppendValue(n, src.Value(row))
}

// Value materializes the cell at physical row i.
func (v *ColVec) Value(i int) Value {
	if v.Values != nil {
		return v.Values[i]
	}
	if v.null(i) {
		return Null()
	}
	switch v.Kind {
	case KindInt:
		return Value{Kind: KindInt, I: v.Ints[i]}
	case KindBool:
		return Value{Kind: KindBool, I: v.Ints[i]}
	case KindFloat:
		return Value{Kind: KindFloat, F: v.Floats[i]}
	case KindString:
		switch v.Mode {
		case StrDict:
			return Value{Kind: KindString, S: v.Dict[v.Codes[i]]}
		case StrHeader:
			return Value{Kind: KindString, S: v.Strs[i]}
		default:
			return Value{Kind: KindString, S: string(v.Bytes[v.Offs[i]:v.Offs[i+1]])}
		}
	default:
		return Null()
	}
}

// CompareValue orders cell i against a constant under Compare semantics
// without materializing the cell — flat string cells compare byte-wise with
// no allocation.
func (v *ColVec) CompareValue(i int, c Value) int {
	if v.Values != nil {
		return Compare(v.Values[i], c)
	}
	if v.null(i) {
		if c.Kind == KindNull {
			return 0
		}
		return -1
	}
	if c.Kind == KindNull {
		return 1
	}
	switch v.Kind {
	case KindInt:
		switch c.Kind {
		case KindInt:
			return cmpInt(v.Ints[i], c.I)
		case KindFloat:
			return cmpFloat(float64(v.Ints[i]), c.F)
		}
		return cmpKind(KindInt, c.Kind)
	case KindFloat:
		switch c.Kind {
		case KindFloat:
			return cmpFloat(v.Floats[i], c.F)
		case KindInt:
			return cmpFloat(v.Floats[i], float64(c.I))
		}
		return cmpKind(KindFloat, c.Kind)
	case KindBool:
		if c.Kind == KindBool {
			return cmpInt(v.Ints[i], c.I)
		}
		return cmpKind(KindBool, c.Kind)
	case KindString:
		if c.Kind != KindString {
			return cmpKind(KindString, c.Kind)
		}
		switch v.Mode {
		case StrDict:
			return cmpStr(v.Dict[v.Codes[i]], c.S)
		case StrHeader:
			return cmpStr(v.Strs[i], c.S)
		default:
			return cmpBytesStr(v.Bytes[v.Offs[i]:v.Offs[i+1]], c.S)
		}
	default:
		return Compare(v.Value(i), c)
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpBytesStr orders raw cell bytes against a constant string without
// converting either side (a []byte(s) conversion would allocate per row).
func cmpBytesStr(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	default:
		return 0
	}
}

// cmpKind replicates Compare's cross-kind fallback for cells of the
// column's declared kind against a constant of a different, non-comparable
// kind (never both numeric, never NULL — those are handled before).
func cmpKind(a, b Kind) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// HashInto computes the HashOn hash of every live row over the key columns,
// column by column in tight per-layout loops, and returns dst[:Rows()]. The
// per-row byte sequence fed to FNV-1a is exactly HashOn's (columns in idx
// order), so the hashes are bit-identical to hashing the materialized rows —
// the property that lets vectorized join builds and probes share a TupleMap
// with the row engine.
func (b *ColBatch) HashInto(idx []int, dst []uint64) []uint64 {
	n := b.Rows()
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	init := prob.FNVInit()
	for i := range dst {
		dst[i] = init
	}
	for _, c := range idx {
		b.Cols[c].hashInto(b.Sel, b.N, dst)
	}
	return dst
}

// hashInto mixes this column's cells into the running per-row hashes. The
// null-free numeric layouts get direct loops; everything else goes through
// hashCell.
func (v *ColVec) hashInto(sel []int32, n int, dst []uint64) {
	if v.Values == nil && len(v.Nulls) == 0 {
		switch v.Kind {
		case KindInt:
			if sel == nil {
				for i, x := range v.Ints[:n] {
					h := prob.FNVByte(dst[i], 1)
					dst[i] = prob.FNVUint64(h, math.Float64bits(float64(x)))
				}
			} else {
				for i, row := range sel {
					h := prob.FNVByte(dst[i], 1)
					dst[i] = prob.FNVUint64(h, math.Float64bits(float64(v.Ints[row])))
				}
			}
			return
		case KindFloat:
			if sel == nil {
				for i, f := range v.Floats[:n] {
					if f == 0 {
						f = 0 // normalize -0, as HashOn does
					}
					h := prob.FNVByte(dst[i], 1)
					dst[i] = prob.FNVUint64(h, math.Float64bits(f))
				}
			} else {
				for i, row := range sel {
					f := v.Floats[row]
					if f == 0 {
						f = 0
					}
					h := prob.FNVByte(dst[i], 1)
					dst[i] = prob.FNVUint64(h, math.Float64bits(f))
				}
			}
			return
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			dst[i] = v.hashCell(dst[i], i)
		}
		return
	}
	for i, row := range sel {
		dst[i] = v.hashCell(dst[i], int(row))
	}
}

// hashCell mixes physical row i's cell into h, layout by layout.
func (v *ColVec) hashCell(h uint64, i int) uint64 {
	if v.Values != nil {
		return hashValue(h, v.Values[i])
	}
	if v.null(i) {
		return prob.FNVByte(h, 0)
	}
	switch v.Kind {
	case KindInt:
		h = prob.FNVByte(h, 1)
		return prob.FNVUint64(h, math.Float64bits(float64(v.Ints[i])))
	case KindFloat:
		f := v.Floats[i]
		if f == 0 {
			f = 0
		}
		h = prob.FNVByte(h, 1)
		return prob.FNVUint64(h, math.Float64bits(f))
	case KindBool:
		h = prob.FNVByte(h, 2)
		return prob.FNVByte(h, byte(v.Ints[i]&1))
	case KindString:
		switch v.Mode {
		case StrDict:
			return hashStr(h, v.Dict[v.Codes[i]])
		case StrHeader:
			return hashStr(h, v.Strs[i])
		default:
			b := v.Bytes[v.Offs[i]:v.Offs[i+1]]
			h = prob.FNVByte(h, 3)
			h = prob.FNVUint64(h, uint64(len(b)))
			for _, c := range b {
				h = prob.FNVByte(h, c)
			}
			return h
		}
	default:
		return hashValue(h, v.Value(i))
	}
}

// hashStr mixes one string cell with HashOn's string byte sequence.
func hashStr(h uint64, s string) uint64 {
	h = prob.FNVByte(h, 3)
	h = prob.FNVUint64(h, uint64(len(s)))
	for k := 0; k < len(s); k++ {
		h = prob.FNVByte(h, s[k])
	}
	return h
}

// hashValue mixes one Value into h with HashOn's per-value byte sequence.
func hashValue(h uint64, v Value) uint64 {
	switch v.Kind {
	case KindNull:
		return prob.FNVByte(h, 0)
	case KindInt, KindFloat:
		f := v.numeric()
		if f == 0 {
			f = 0
		}
		h = prob.FNVByte(h, 1)
		return prob.FNVUint64(h, math.Float64bits(f))
	case KindBool:
		h = prob.FNVByte(h, 2)
		return prob.FNVByte(h, byte(v.I&1))
	case KindString:
		h = prob.FNVByte(h, 3)
		h = prob.FNVUint64(h, uint64(len(v.S)))
		for k := 0; k < len(v.S); k++ {
			h = prob.FNVByte(h, v.S[k])
		}
		return h
	}
	return h
}
