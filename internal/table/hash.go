package table

import (
	"math"

	"repro/internal/prob"
)

// HashOn hashes the values at the given column indexes with FNV-1a — the
// partitioning hash of the parallel execution layer (hash-partitioned joins
// and group-key-partitioned aggregation scans). Values that compare equal
// under Compare hash equally: numeric kinds are hashed through their float64
// image so an int join key matches a float one, mirroring Compare's
// cross-kind numeric semantics.
func HashOn(t Tuple, idx []int) uint64 {
	h := prob.FNVInit()
	mix := func(b byte) { h = prob.FNVByte(h, b) }
	mix64 := func(v uint64) { h = prob.FNVUint64(h, v) }
	for _, j := range idx {
		v := t[j]
		switch v.Kind {
		case KindNull:
			mix(0)
		case KindInt, KindFloat:
			// Hash through the numeric image; normalize -0 so that values
			// equal under Compare collide.
			f := v.numeric()
			if f == 0 {
				f = 0
			}
			mix(1)
			mix64(math.Float64bits(f))
		case KindBool:
			mix(2)
			mix(byte(v.I & 1))
		case KindString:
			mix(3)
			mix64(uint64(len(v.S)))
			for k := 0; k < len(v.S); k++ {
				mix(v.S[k])
			}
		}
	}
	return h
}

// PartitionOn buckets rows by HashOn over the key columns — the one
// partitioning scheme shared by the hash-partitioned joins and the
// partition-parallel aggregation scans, so rows equal on the keys always
// land in the same bucket of both. Rows keep their relative order within a
// bucket.
func PartitionOn(rows []Tuple, idx []int, n int) [][]Tuple {
	parts := make([][]Tuple, n)
	for _, t := range rows {
		p := int(HashOn(t, idx) % uint64(n))
		parts[p] = append(parts[p], t)
	}
	return parts
}
