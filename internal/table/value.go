// Package table defines the tuple-level data model shared by the whole
// system: typed values, tuples, schemas that know which columns carry
// Boolean random variables and probabilities (the V- and P-columns of the
// paper's tuple-independent tables, §II.A), and in-memory relations. The
// columnar side of the model (colbatch.go) carries the same tuples as
// per-column typed vectors — ColBatch/ColVec with a selection vector, a
// null bitmap, and dictionary/flat string layouts — for the engine's
// vectorized execution tier.
package table

import (
	"fmt"
	"strconv"

	"repro/internal/prob"
)

// Kind enumerates the value types supported by the engine. The paper's data
// columns are standard SQL types; variables are integers and probabilities
// floats ("variables ... can be represented as integers", §V).
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of a kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a tagged union holding one field of a tuple. The zero Value is
// NULL. Values are small and copied by value throughout the engine.
type Value struct {
	S    string
	I    int64
	F    float64
	Kind Kind
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float wraps a float64.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str wraps a string.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool wraps a bool.
func Bool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// VarValue wraps a random variable as an integer value (how SPROUT stores
// V-columns).
func VarValue(v prob.Var) Value { return Int(int64(v)) }

// AsVar interprets an integer value as a random variable.
func (v Value) AsVar() prob.Var { return prob.Var(v.I) }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsBool reports the truth of a bool value.
func (v Value) AsBool() bool { return v.Kind == KindBool && v.I != 0 }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values: NULL sorts first, then by kind, then by value.
// Cross-kind numeric comparison (int vs float) compares numerically, which
// the expression evaluator relies on for predicates like price < 100.5.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == KindNull && b.Kind == KindNull:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if isNumeric(a.Kind) && isNumeric(b.Kind) && a.Kind != b.Kind {
		af, bf := a.numeric(), b.numeric()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	switch a.Kind {
	case KindInt, KindBool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	case KindFloat:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		default:
			return 0
		}
	case KindString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

func (v Value) numeric() float64 {
	if v.Kind == KindInt {
		return float64(v.I)
	}
	return v.F
}

// Equal reports value equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }
