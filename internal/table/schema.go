package table

import (
	"fmt"
	"strings"

	"repro/internal/prob"
)

// Role classifies a column of a probabilistic relation. Data columns hold
// ordinary values; Var and Prob columns hold the Boolean random variable and
// its marginal probability for the tuple contributed by one source table
// (the V and P columns of §II.A, propagated through joins per §II.C).
type Role uint8

// Column roles.
const (
	RoleData Role = iota
	RoleVar
	RoleProb
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleData:
		return "data"
	case RoleVar:
		return "var"
	case RoleProb:
		return "prob"
	default:
		return "?"
	}
}

// Column describes one attribute of a relation. For Var/Prob columns, Source
// names the base table whose tuple the variable/probability belongs to; the
// display name is derived as V(Source) / P(Source), matching the paper.
type Column struct {
	Name   string
	Source string // base table for Var/Prob columns; "" for data columns
	Kind   Kind
	Role   Role
}

// DataCol builds a data column.
func DataCol(name string, kind Kind) Column {
	return Column{Name: name, Kind: kind, Role: RoleData}
}

// VarCol builds the variable column of a source table.
func VarCol(source string) Column {
	return Column{Name: "V(" + source + ")", Source: source, Kind: KindInt, Role: RoleVar}
}

// ProbCol builds the probability column of a source table.
func ProbCol(source string) Column {
	return Column{Name: "P(" + source + ")", Source: source, Kind: KindFloat, Role: RoleProb}
}

// Schema is an ordered list of columns. Schemas are immutable by convention:
// operators derive new schemas rather than mutating existing ones.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// ColIndex returns the index of the column with the given name, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustColIndex is ColIndex that panics on unknown columns — used when the
// planner has already validated names.
func (s *Schema) MustColIndex(name string) int {
	i := s.ColIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("table: schema %v has no column %q", s.Names(), name))
	}
	return i
}

// VarIndex returns the index of V(source), or -1.
func (s *Schema) VarIndex(source string) int {
	for i, c := range s.Cols {
		if c.Role == RoleVar && c.Source == source {
			return i
		}
	}
	return -1
}

// ProbIndex returns the index of P(source), or -1.
func (s *Schema) ProbIndex(source string) int {
	for i, c := range s.Cols {
		if c.Role == RoleProb && c.Source == source {
			return i
		}
	}
	return -1
}

// DataIndexes returns the indexes of all data columns, in schema order.
func (s *Schema) DataIndexes() []int {
	var out []int
	for i, c := range s.Cols {
		if c.Role == RoleData {
			out = append(out, i)
		}
	}
	return out
}

// Sources returns the distinct base tables that contribute Var columns, in
// schema order.
func (s *Schema) Sources() []string {
	var out []string
	for _, c := range s.Cols {
		if c.Role == RoleVar {
			out = append(out, c.Source)
		}
	}
	return out
}

// Names returns all column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Project returns a new schema with the columns at the given indexes.
func (s *Schema) Project(idx []int) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Cols[j]
	}
	return &Schema{Cols: cols}
}

// Concat returns the schema of a join result: the columns of s followed by
// the columns of t. Duplicate data-column names are allowed transiently; the
// planner projects them away (the paper assumes join attributes share names,
// so a join keeps one copy — handled at plan compilation).
func (s *Schema) Concat(t *Schema) *Schema {
	cols := make([]Column, 0, len(s.Cols)+len(t.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, t.Cols...)
	return &Schema{Cols: cols}
}

// Equal reports structural schema equality.
func (s *Schema) Equal(t *Schema) bool {
	if len(s.Cols) != len(t.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != t.Cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as (name:kind, ...).
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is one row: a flat slice of values aligned with a schema.
type Tuple []Value

// Clone copies a tuple; operators that buffer tuples across Next calls must
// clone because upstream operators reuse slot storage.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Project extracts the values at the given indexes into a fresh tuple.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// CompareOn orders two tuples by the columns at the given indexes.
func CompareOn(a, b Tuple, idx []int) int {
	for _, i := range idx {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// EqualOn reports whether two tuples agree on the columns at the indexes.
func EqualOn(a, b Tuple, idx []int) bool { return CompareOn(a, b, idx) == 0 }

// String renders a tuple.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is an in-memory table: a schema plus rows. It doubles as the
// materialized intermediate format of the executor.
type Relation struct {
	Schema *Schema
	Rows   []Tuple
}

// NewRelation builds an empty relation over a schema.
func NewRelation(s *Schema) *Relation { return &Relation{Schema: s} }

// Append adds a row after arity-checking it against the schema.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("table: arity mismatch: tuple has %d values, schema %d columns", len(t), r.Schema.Len())
	}
	r.Rows = append(r.Rows, t)
	return nil
}

// MustAppend is Append for fixtures; panics on arity mismatch.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// ProbTable is a base tuple-independent probabilistic table: a relation of
// schema (A, V, P) with the functional dependency A → V P (§II.A). Data
// columns come first, then V(Name), P(Name).
type ProbTable struct {
	Name string
	Rel  *Relation
}

// NewProbTable creates a tuple-independent table with the given data
// columns; the V and P columns are appended automatically.
func NewProbTable(name string, dataCols ...Column) *ProbTable {
	cols := make([]Column, 0, len(dataCols)+2)
	cols = append(cols, dataCols...)
	cols = append(cols, VarCol(name), ProbCol(name))
	return &ProbTable{Name: name, Rel: NewRelation(NewSchema(cols...))}
}

// AddRow appends a data tuple with its random variable and probability.
func (p *ProbTable) AddRow(v prob.Var, pr float64, data ...Value) error {
	if !(pr > 0 && pr <= 1) {
		return fmt.Errorf("table: probability %g outside (0,1] for table %s", pr, p.Name)
	}
	t := make(Tuple, 0, len(data)+2)
	t = append(t, data...)
	t = append(t, VarValue(v), Float(pr))
	return p.Rel.Append(t)
}

// MustAddRow is AddRow for fixtures.
func (p *ProbTable) MustAddRow(v prob.Var, pr float64, data ...Value) {
	if err := p.AddRow(v, pr, data...); err != nil {
		panic(err)
	}
}

// Assignment collects the variable→probability mapping of the table's rows.
func (p *ProbTable) Assignment(into *prob.Assignment) error {
	vi := p.Rel.Schema.VarIndex(p.Name)
	pi := p.Rel.Schema.ProbIndex(p.Name)
	for _, row := range p.Rel.Rows {
		v := row[vi].AsVar()
		if !v.Valid() {
			continue
		}
		if err := into.Set(v, row[pi].F); err != nil {
			return err
		}
	}
	return nil
}
