package table

// Hash-keyed tuple containers: the equality structures behind the engine's
// hash join build side, duplicate elimination, and answer dedup. Keys are
// HashOn hashes (uint64) with Compare-based collision chains, so inserting
// or probing an existing key never allocates — unlike a map[string] keyed by
// a rendered key, which pays one string build per row. Values equal under
// Compare hash equally (see HashOn), so cross-kind numeric keys (int vs
// float join attributes) land in the same bucket and chain-compare equal.

// EqualOn2 reports whether a's values at aIdx equal b's values at bIdx
// pairwise under Compare semantics — the cross-schema key equality of a hash
// join probe (left key columns against right key columns).
func EqualOn2(a Tuple, aIdx []int, b Tuple, bIdx []int) bool {
	for i := range aIdx {
		if Compare(a[aIdx[i]], b[bIdx[i]]) != 0 {
			return false
		}
	}
	return true
}

// tmGroup holds the rows sharing one exact key value: the first row inline
// (the representative the probe compares against) and any further rows in
// rest — so a unique key never allocates a per-group slice.
type tmGroup struct {
	first Tuple
	rest  []Tuple
}

// TupleMap is a multimap from key columns to tuples — the build side of a
// hash equi-join. Groups live inline in a map keyed by the tuple hash;
// distinct keys that collide on the hash (rare) spill to an overflow chain.
// Stored tuples must be stable: the map retains them.
type TupleMap struct {
	keyIdx   []int
	buckets  map[uint64]tmGroup
	overflow map[uint64][]tmGroup
}

// NewTupleMap builds an empty map keyed on the given column indexes.
func NewTupleMap(keyIdx []int, sizeHint int) *TupleMap {
	return &TupleMap{keyIdx: keyIdx, buckets: make(map[uint64]tmGroup, sizeHint)}
}

// Add inserts t under its key columns.
func (m *TupleMap) Add(t Tuple) {
	h := HashOn(t, m.keyIdx)
	g, ok := m.buckets[h]
	if !ok {
		m.buckets[h] = tmGroup{first: t}
		return
	}
	if EqualOn2(t, m.keyIdx, g.first, m.keyIdx) {
		g.rest = append(g.rest, t)
		m.buckets[h] = g
		return
	}
	if m.overflow == nil {
		m.overflow = make(map[uint64][]tmGroup)
	}
	chain := m.overflow[h]
	for i := range chain {
		if EqualOn2(t, m.keyIdx, chain[i].first, m.keyIdx) {
			chain[i].rest = append(chain[i].rest, t)
			return
		}
	}
	m.overflow[h] = append(chain, tmGroup{first: t})
}

// AddHashed is Add with a precomputed HashOn hash over the key columns —
// the vectorized build path, where the columnar engine hashes whole column
// slices at once (ColBatch.HashInto) before materializing the rows.
func (m *TupleMap) AddHashed(h uint64, t Tuple) {
	g, ok := m.buckets[h]
	if !ok {
		m.buckets[h] = tmGroup{first: t}
		return
	}
	if EqualOn2(t, m.keyIdx, g.first, m.keyIdx) {
		g.rest = append(g.rest, t)
		m.buckets[h] = g
		return
	}
	if m.overflow == nil {
		m.overflow = make(map[uint64][]tmGroup)
	}
	chain := m.overflow[h]
	for i := range chain {
		if EqualOn2(t, m.keyIdx, chain[i].first, m.keyIdx) {
			chain[i].rest = append(chain[i].rest, t)
			return
		}
	}
	m.overflow[h] = append(chain, tmGroup{first: t})
}

// Group names one key's rows: First, then Rest in insertion order.
type Group struct {
	First Tuple
	Rest  []Tuple
}

// Lookup returns the group of stored tuples whose key columns equal probe's
// values at probeIdx (ok=false when none). The probe allocates nothing.
func (m *TupleMap) Lookup(probe Tuple, probeIdx []int) (Group, bool) {
	h := HashOn(probe, probeIdx)
	g, found := m.buckets[h]
	if !found {
		return Group{}, false
	}
	if EqualOn2(probe, probeIdx, g.first, m.keyIdx) {
		return Group{First: g.first, Rest: g.rest}, true
	}
	for _, o := range m.overflow[h] {
		if EqualOn2(probe, probeIdx, o.first, m.keyIdx) {
			return Group{First: o.first, Rest: o.rest}, true
		}
	}
	return Group{}, false
}

// LookupHashed is Lookup with a precomputed HashOn hash over the probe's
// key columns — the partitioned join's probe path, which carries each row's
// partition hash (the same HashOn value) into the per-partition joins
// instead of rehashing it.
func (m *TupleMap) LookupHashed(h uint64, probe Tuple, probeIdx []int) (Group, bool) {
	g, found := m.buckets[h]
	if !found {
		return Group{}, false
	}
	if EqualOn2(probe, probeIdx, g.first, m.keyIdx) {
		return Group{First: g.first, Rest: g.rest}, true
	}
	for _, o := range m.overflow[h] {
		if EqualOn2(probe, probeIdx, o.first, m.keyIdx) {
			return Group{First: o.first, Rest: o.rest}, true
		}
	}
	return Group{}, false
}

// LookupHashedCols is Lookup probing directly from a columnar batch: the
// hash is precomputed (ColBatch.HashInto) and key equality compares the
// stored tuples' key cells against physical row `row` of the batch without
// materializing it. Values equal under Compare hash equally, so the
// vectorized probe finds exactly the groups the row probe would.
func (m *TupleMap) LookupHashedCols(h uint64, b *ColBatch, probeIdx []int, row int) (Group, bool) {
	g, found := m.buckets[h]
	if !found {
		return Group{}, false
	}
	if equalColsTuple(b, probeIdx, row, g.first, m.keyIdx) {
		return Group{First: g.first, Rest: g.rest}, true
	}
	for _, o := range m.overflow[h] {
		if equalColsTuple(b, probeIdx, row, o.first, m.keyIdx) {
			return Group{First: o.first, Rest: o.rest}, true
		}
	}
	return Group{}, false
}

// equalColsTuple reports pairwise key equality between a batch row's cells
// and a stored tuple under Compare semantics.
func equalColsTuple(b *ColBatch, bIdx []int, row int, t Tuple, tIdx []int) bool {
	for k := range bIdx {
		if b.Cols[bIdx[k]].CompareValue(row, t[tIdx[k]]) != 0 {
			return false
		}
	}
	return true
}

// TupleSet is a set of tuples keyed on a fixed column subset — duplicate
// elimination without per-row key strings.
type TupleSet struct {
	keyIdx  []int
	buckets map[uint64][]Tuple
	len     int
}

// NewTupleSet builds an empty set keyed on the given column indexes.
func NewTupleSet(keyIdx []int, sizeHint int) *TupleSet {
	return &TupleSet{keyIdx: keyIdx, buckets: make(map[uint64][]Tuple, sizeHint)}
}

// Len returns the number of distinct keys inserted.
func (s *TupleSet) Len() int { return s.len }

// Add inserts t's key if absent, returning the retained tuple and whether
// it was new (on a duplicate, the previously stored tuple). Probing an
// existing key allocates nothing. When clone is set, a newly inserted tuple
// is cloned before the set retains it — pass clone=false only for tuples
// that are already stable (owned by the caller, never overwritten).
func (s *TupleSet) Add(t Tuple, clone bool) (Tuple, bool) {
	h := HashOn(t, s.keyIdx)
	chain := s.buckets[h]
	for _, e := range chain {
		if EqualOn2(t, s.keyIdx, e, s.keyIdx) {
			return e, false
		}
	}
	if clone {
		t = t.Clone()
	}
	s.buckets[h] = append(chain, t)
	s.len++
	return t, true
}

// slabBlock is how many values a Slab allocates per backing array.
const slabBlock = 4096

// Slab clones tuples out of large shared backing arrays: one allocation per
// slabBlock values instead of one per tuple. Cloned tuples stay valid
// forever (blocks are never reused), so a Slab suits materialization —
// collectors, hash join builds — where every tuple is retained anyway.
type Slab struct {
	vals []Value
}

// Alloc carves a zeroed n-value tuple out of slab storage.
func (s *Slab) Alloc(n int) Tuple {
	if n > len(s.vals) {
		size := slabBlock
		if n > size {
			size = n
		}
		s.vals = make([]Value, size)
	}
	c := Tuple(s.vals[:n:n])
	s.vals = s.vals[n:]
	return c
}

// Clone copies t into slab storage.
func (s *Slab) Clone(t Tuple) Tuple {
	c := s.Alloc(len(t))
	copy(c, t)
	return c
}
