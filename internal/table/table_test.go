package table

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/prob"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Str("Joe"), "Joe"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareSameKind(t *testing.T) {
	if Compare(Int(1), Int(2)) >= 0 {
		t.Error("1 < 2 failed")
	}
	if Compare(Str("a"), Str("b")) >= 0 {
		t.Error("a < b failed")
	}
	if Compare(Float(1.5), Float(1.5)) != 0 {
		t.Error("1.5 == 1.5 failed")
	}
	if Compare(Bool(false), Bool(true)) >= 0 {
		t.Error("false < true failed")
	}
}

func TestCompareCrossNumeric(t *testing.T) {
	if Compare(Int(1), Float(1.5)) >= 0 {
		t.Error("1 < 1.5 failed")
	}
	if Compare(Float(2.0), Int(2)) != 0 {
		t.Error("2.0 == 2 failed")
	}
	if Compare(Int(3), Float(2.5)) <= 0 {
		t.Error("3 > 2.5 failed")
	}
}

func TestCompareNulls(t *testing.T) {
	if Compare(Null(), Int(0)) >= 0 {
		t.Error("NULL should sort before values")
	}
	if Compare(Int(0), Null()) <= 0 {
		t.Error("values should sort after NULL")
	}
	if Compare(Null(), Null()) != 0 {
		t.Error("NULL == NULL failed")
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	vals := []Value{Null(), Int(-1), Int(7), Float(0.5), Float(7), Str(""), Str("z"), Bool(true)}
	for _, a := range vals {
		for _, b := range vals {
			if Compare(a, b) != -Compare(b, a) {
				t.Errorf("Compare(%v,%v) not antisymmetric", a, b)
			}
		}
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	gen := func(r *rand.Rand) Value {
		switch r.Intn(4) {
		case 0:
			return Int(int64(r.Intn(20) - 10))
		case 1:
			return Float(float64(r.Intn(40))/4 - 5)
		case 2:
			return Str(string(rune('a' + r.Intn(5))))
		default:
			return Null()
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSchemaLookups(t *testing.T) {
	s := NewSchema(DataCol("ckey", KindInt), DataCol("cname", KindString), VarCol("Cust"), ProbCol("Cust"))
	if s.ColIndex("cname") != 1 {
		t.Error("ColIndex(cname) wrong")
	}
	if s.ColIndex("missing") != -1 {
		t.Error("ColIndex(missing) should be -1")
	}
	if s.VarIndex("Cust") != 2 || s.ProbIndex("Cust") != 3 {
		t.Error("Var/ProbIndex wrong")
	}
	if s.VarIndex("Ord") != -1 {
		t.Error("VarIndex of absent source should be -1")
	}
	if got := s.DataIndexes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("DataIndexes = %v", got)
	}
	if got := s.Sources(); len(got) != 1 || got[0] != "Cust" {
		t.Errorf("Sources = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColIndex should panic on unknown column")
		}
	}()
	s.MustColIndex("nope")
}

func TestSchemaProjectConcat(t *testing.T) {
	s := NewSchema(DataCol("a", KindInt), DataCol("b", KindString))
	u := NewSchema(DataCol("c", KindFloat))
	j := s.Concat(u)
	if j.Len() != 3 || j.ColIndex("c") != 2 {
		t.Errorf("Concat wrong: %v", j)
	}
	p := j.Project([]int{2, 0})
	if p.Len() != 2 || p.Cols[0].Name != "c" || p.Cols[1].Name != "a" {
		t.Errorf("Project wrong: %v", p)
	}
	if !s.Equal(s) || s.Equal(u) {
		t.Error("Equal wrong")
	}
}

func TestTupleOps(t *testing.T) {
	tu := Tuple{Int(1), Str("x"), Float(2)}
	cl := tu.Clone()
	cl[0] = Int(9)
	if tu[0].I != 1 {
		t.Error("Clone must not alias")
	}
	pr := tu.Project([]int{2, 0})
	if pr[0].F != 2 || pr[1].I != 1 {
		t.Errorf("Project = %v", pr)
	}
	a := Tuple{Int(1), Int(2)}
	b := Tuple{Int(1), Int(3)}
	if CompareOn(a, b, []int{0}) != 0 {
		t.Error("CompareOn on equal prefix should be 0")
	}
	if CompareOn(a, b, []int{0, 1}) >= 0 {
		t.Error("CompareOn should order by second column")
	}
	if !EqualOn(a, b, []int{0}) || EqualOn(a, b, []int{1}) {
		t.Error("EqualOn wrong")
	}
}

func TestRelationArityCheck(t *testing.T) {
	r := NewRelation(NewSchema(DataCol("a", KindInt)))
	if err := r.Append(Tuple{Int(1), Int(2)}); err == nil {
		t.Error("arity mismatch should error")
	}
	if err := r.Append(Tuple{Int(1)}); err != nil {
		t.Error(err)
	}
	if r.Len() != 1 {
		t.Error("Len wrong")
	}
}

func TestProbTable(t *testing.T) {
	ct := NewProbTable("Cust", DataCol("ckey", KindInt), DataCol("cname", KindString))
	if ct.Rel.Schema.Len() != 4 {
		t.Fatalf("ProbTable schema should have data+V+P columns, got %v", ct.Rel.Schema)
	}
	ct.MustAddRow(1, 0.1, Int(1), Str("Joe"))
	ct.MustAddRow(2, 0.2, Int(2), Str("Dan"))
	if err := ct.AddRow(3, 1.5, Int(3), Str("Li")); err == nil {
		t.Error("out-of-range probability should be rejected")
	}
	a := prob.NewAssignment()
	if err := ct.Assignment(a); err != nil {
		t.Fatal(err)
	}
	if a.P(1) != 0.1 || a.P(2) != 0.2 {
		t.Errorf("Assignment wrong: p1=%g p2=%g", a.P(1), a.P(2))
	}
}

func TestVarValueRoundTrip(t *testing.T) {
	v := VarValue(7)
	if v.AsVar() != 7 {
		t.Error("VarValue/AsVar round trip failed")
	}
}
