// Package fd implements functional dependencies and the query rewriting of
// paper §IV: attribute closure (the chase), key declarations, and the
// FD-reduct (Def. IV.1) that turns (possibly non-Boolean, possibly
// non-hierarchical) conjunctive queries into Boolean queries whose signature
// factors the lineage of the original query. Proposition IV.5 guarantees
// that computing the full closure fixpoint never misses a hierarchical
// rewriting.
package fd

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/query"
)

// FD is a functional dependency LHS → RHS over (globally named) attributes.
// Rel records which relation declared it, for display only: since tuple
// independence makes an FD hold in the database iff it holds in every world
// (§IV), closures chase all FDs regardless of origin.
type FD struct {
	Rel string
	LHS []string
	RHS []string
}

// String renders the dependency in the paper's "Rel: A → B" notation.
func (f FD) String() string {
	prefix := ""
	if f.Rel != "" {
		prefix = f.Rel + ": "
	}
	return prefix + strings.Join(f.LHS, " ") + " → " + strings.Join(f.RHS, " ")
}

// Set is a collection of functional dependencies (the Σ of §IV).
type Set struct {
	FDs []FD
}

// NewSet builds a set from dependencies.
func NewSet(fds ...FD) *Set { return &Set{FDs: fds} }

// Empty reports whether the set has no dependencies.
func (s *Set) Empty() bool { return s == nil || len(s.FDs) == 0 }

// Add appends a dependency.
func (s *Set) Add(f FD) { s.FDs = append(s.FDs, f) }

// AddKey declares key → (other attributes) for a relation, the ubiquitous
// schema knowledge ("okey is a key in Ord") the paper exploits.
func (s *Set) AddKey(rel string, key []string, others []string) {
	var rhs []string
	keySet := make(map[string]bool, len(key))
	for _, k := range key {
		keySet[k] = true
	}
	for _, a := range others {
		if !keySet[a] {
			rhs = append(rhs, a)
		}
	}
	if len(rhs) > 0 {
		s.Add(FD{Rel: rel, LHS: append([]string(nil), key...), RHS: rhs})
	}
}

// Closure computes CLOSUREΣ(attrs): the fixpoint of chasing every FD whose
// LHS is contained in the current set (§IV). The result is sorted.
func (s *Set) Closure(attrs []string) []string {
	cur := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		cur[a] = true
	}
	if s != nil {
		for changed := true; changed; {
			changed = false
			for _, f := range s.FDs {
				applies := true
				for _, l := range f.LHS {
					if !cur[l] {
						applies = false
						break
					}
				}
				if !applies {
					continue
				}
				for _, r := range f.RHS {
					if !cur[r] {
						cur[r] = true
						changed = true
					}
				}
			}
		}
	}
	out := make([]string, 0, len(cur))
	for a := range cur {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// Implies reports whether Σ ⊨ lhs → rhs.
func (s *Set) Implies(lhs, rhs []string) bool {
	cl := s.Closure(lhs)
	in := make(map[string]bool, len(cl))
	for _, a := range cl {
		in[a] = true
	}
	for _, a := range rhs {
		if !in[a] {
			return false
		}
	}
	return true
}

// String renders the set.
func (s *Set) String() string {
	if s.Empty() {
		return "{}"
	}
	parts := make([]string, len(s.FDs))
	for i, f := range s.FDs {
		parts[i] = f.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// Reduct computes the FD-reduct of q under Σ (Def. IV.1): the Boolean query
// whose i-th relation has attributes CLOSUREΣ(Ai) − CLOSUREΣ(A0). Selections
// are preserved (φ is a conjunction of unary predicates and untouched by the
// rewriting). The reduct's signature factors the DNF associated with each
// bag of duplicates of q.
func Reduct(q *query.Query, sigma *Set) *query.Query {
	headClosure := sigma.Closure(q.Head)
	drop := make(map[string]bool, len(headClosure))
	for _, a := range headClosure {
		drop[a] = true
	}
	out := &query.Query{Name: q.Name + "_fd", Sels: append([]query.Selection(nil), q.Sels...)}
	for _, r := range q.Rels {
		var attrs []string
		for _, a := range sigma.Closure(r.Attrs) {
			if !drop[a] {
				attrs = append(attrs, a)
			}
		}
		out.Rels = append(out.Rels, query.RelRef{Name: r.Name, Base: r.Base, Attrs: attrs})
	}
	return out
}

// HierarchicalReduct computes the FD-reduct and checks it is hierarchical,
// returning the reduct and its tree. By Prop. IV.5, if any chase sequence
// yields a hierarchical query, the fixpoint reduct is hierarchical — so
// this single check is complete.
func HierarchicalReduct(q *query.Query, sigma *Set) (*query.Query, *query.Tree, error) {
	red := Reduct(q, sigma)
	if !red.IsHierarchical() {
		return nil, nil, fmt.Errorf("fd: FD-reduct of %s under %s is not hierarchical", q.Name, sigma)
	}
	tree, err := query.TreeFor(red)
	if err != nil {
		return nil, nil, err
	}
	return red, tree, nil
}
