package fd

import (
	"slices"
	"strings"
	"testing"

	"repro/internal/query"
)

func TestClosureSimple(t *testing.T) {
	// CLOSURE{A→D; BD→E}(ABC) = ABCDE (paper §IV example).
	s := NewSet(
		FD{LHS: []string{"A"}, RHS: []string{"D"}},
		FD{LHS: []string{"B", "D"}, RHS: []string{"E"}},
	)
	got := s.Closure([]string{"A", "B", "C"})
	want := []string{"A", "B", "C", "D", "E"}
	if strings.Join(got, "") != strings.Join(want, "") {
		t.Errorf("Closure = %v, want %v", got, want)
	}
}

func TestClosureEmptySet(t *testing.T) {
	var s *Set
	got := s.Closure([]string{"b", "a"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("nil-set closure = %v", got)
	}
	if !s.Empty() {
		t.Error("nil set should be empty")
	}
}

func TestImplies(t *testing.T) {
	s := NewSet(FD{LHS: []string{"okey"}, RHS: []string{"ckey", "odate"}})
	if !s.Implies([]string{"okey"}, []string{"odate"}) {
		t.Error("okey → odate should hold")
	}
	if s.Implies([]string{"ckey"}, []string{"okey"}) {
		t.Error("ckey → okey should not hold")
	}
}

func TestAddKey(t *testing.T) {
	s := NewSet()
	s.AddKey("Ord", []string{"okey"}, []string{"okey", "ckey", "odate"})
	if len(s.FDs) != 1 {
		t.Fatalf("AddKey should add one FD, got %v", s)
	}
	f := s.FDs[0]
	if len(f.RHS) != 2 {
		t.Errorf("key attr must not appear in RHS: %v", f)
	}
	// A key over all attributes adds nothing.
	s2 := NewSet()
	s2.AddKey("R", []string{"a"}, []string{"a"})
	if len(s2.FDs) != 0 {
		t.Errorf("trivial key should add no FD: %v", s2)
	}
}

// TestReductExIV3 reproduces Example IV.3: the FD-reduct of
// π_cname(Item(okey,discount) ⋈ Ord(okey,ckey,odate) ⋈ Cust(ckey,cname))
// under Ord: okey→ckey,odate (plus Cust: ckey→cname, the TPC-H key that the
// example implicitly uses when it keeps cname out of the reduct — cname is
// in CLOSURE(A0) only via the head itself, which is always dropped).
func TestReductExIV3(t *testing.T) {
	q := &query.Query{
		Name: "ExIV3",
		Head: []string{"cname"},
		Rels: []query.RelRef{
			query.Rel("Item", "okey", "discount"),
			query.Rel("Ord", "okey", "ckey", "odate"),
			query.Rel("Cust", "ckey", "cname"),
		},
	}
	if q.IsHierarchical() {
		t.Fatal("the original query is non-hierarchical")
	}
	sigma := NewSet(FD{Rel: "Ord", LHS: []string{"okey"}, RHS: []string{"ckey", "odate"}})
	red := Reduct(q, sigma)
	if !red.IsBoolean() {
		t.Error("reduct must be Boolean")
	}
	attrsOf := func(name string) []string {
		r, ok := red.RelByName(name)
		if !ok {
			t.Fatalf("relation %s missing from reduct", name)
		}
		out := append([]string(nil), r.Attrs...)
		slices.Sort(out)
		return out
	}
	// Item(okey,discount,ckey,odate), Ord(okey,ckey,odate), Cust(ckey).
	if got := strings.Join(attrsOf("Item"), ","); got != "ckey,discount,odate,okey" {
		t.Errorf("Item attrs = %v", got)
	}
	if got := strings.Join(attrsOf("Ord"), ","); got != "ckey,odate,okey" {
		t.Errorf("Ord attrs = %v", got)
	}
	if got := strings.Join(attrsOf("Cust"), ","); got != "ckey" {
		t.Errorf("Cust attrs = %v", got)
	}
	if !red.IsHierarchical() {
		t.Error("the FD-reduct must be hierarchical (paper: 'Whereas the latter is a Boolean hierarchical query')")
	}
	if _, _, err := HierarchicalReduct(q, sigma); err != nil {
		t.Errorf("HierarchicalReduct: %v", err)
	}
}

// TestReductExIV4 reproduces Example IV.4: the FD-reduct of
// π_okey(Item(ckey,okey,discount) ⋈ Ord(okey,ckey,odate) ⋈ Cust(ckey,cname))
// under okey→ckey,odate and ckey→cname is
// π_∅(Item(discount) ⋈ Ord() ⋈ Cust()).
func TestReductExIV4(t *testing.T) {
	q := &query.Query{
		Name: "ExIV4",
		Head: []string{"okey"},
		Rels: []query.RelRef{
			query.Rel("Item", "ckey", "okey", "discount"),
			query.Rel("Ord", "okey", "ckey", "odate"),
			query.Rel("Cust", "ckey", "cname"),
		},
	}
	sigma := NewSet(
		FD{Rel: "Ord", LHS: []string{"okey"}, RHS: []string{"ckey", "odate"}},
		FD{Rel: "Cust", LHS: []string{"ckey"}, RHS: []string{"cname"}},
	)
	red := Reduct(q, sigma)
	item, _ := red.RelByName("Item")
	ord, _ := red.RelByName("Ord")
	cust, _ := red.RelByName("Cust")
	if len(item.Attrs) != 1 || item.Attrs[0] != "discount" {
		t.Errorf("Item attrs = %v, want [discount]", item.Attrs)
	}
	if len(ord.Attrs) != 0 {
		t.Errorf("Ord attrs = %v, want []", ord.Attrs)
	}
	if len(cust.Attrs) != 0 {
		t.Errorf("Cust attrs = %v, want []", cust.Attrs)
	}
}

// TestReductIntroQPrime: Q' from the Introduction becomes hierarchical
// under the TPC-H FD okey → ckey odate.
func TestReductIntroQPrime(t *testing.T) {
	q := &query.Query{
		Name: "Q'",
		Head: []string{"odate"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname"),
			query.Rel("Ord", "okey", "ckey", "odate"),
			query.Rel("Item", "okey", "discount"),
		},
	}
	if q.IsHierarchical() {
		t.Fatal("Q' must be non-hierarchical without FDs")
	}
	sigma := NewSet(
		FD{Rel: "Ord", LHS: []string{"okey"}, RHS: []string{"ckey", "odate"}},
		FD{Rel: "Cust", LHS: []string{"ckey"}, RHS: []string{"cname"}},
	)
	red, tree, err := HierarchicalReduct(q, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if red == nil || tree == nil {
		t.Fatal("expected reduct and tree")
	}
	// Structure (Cust(Ord Item*)*)*: root over Cust + {Ord,Item} node.
	if tree.IsLeaf() || len(tree.Children) != 2 {
		t.Fatalf("unexpected tree shape: %v", tree)
	}
}

// TestChaseNeverBreaksHierarchy is Prop. IV.5's invariant on a concrete
// family: starting from a hierarchical query, reducts under arbitrary key
// FDs remain hierarchical.
func TestChaseNeverBreaksHierarchy(t *testing.T) {
	base := &query.Query{
		Head: []string{"odate"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname"),
			query.Rel("Ord", "okey", "ckey", "odate"),
			query.Rel("Item", "okey", "ckey", "discount"),
		},
	}
	if !base.IsHierarchical() {
		t.Fatal("base must be hierarchical")
	}
	sets := []*Set{
		NewSet(),
		NewSet(FD{LHS: []string{"okey"}, RHS: []string{"ckey", "odate"}}),
		NewSet(FD{LHS: []string{"ckey"}, RHS: []string{"cname"}}),
		NewSet(
			FD{LHS: []string{"okey"}, RHS: []string{"ckey", "odate"}},
			FD{LHS: []string{"ckey"}, RHS: []string{"cname"}},
		),
	}
	for i, s := range sets {
		if red := Reduct(base, s); !red.IsHierarchical() {
			t.Errorf("set %d: reduct became non-hierarchical: %v", i, red)
		}
	}
}

func TestNonHierarchicalReductReported(t *testing.T) {
	// The prototypical hard query with no helpful FDs stays hard.
	q := &query.Query{
		Name: "hard",
		Rels: []query.RelRef{
			query.Rel("R", "a"),
			query.Rel("S", "a", "b"),
			query.Rel("T", "b"),
		},
	}
	if _, _, err := HierarchicalReduct(q, NewSet()); err == nil {
		t.Error("R(a) ⋈ S(a,b) ⋈ T(b) must not admit a hierarchical reduct without FDs")
	}
	// With a → b (S's a is a key), it becomes hierarchical.
	if _, _, err := HierarchicalReduct(q, NewSet(FD{LHS: []string{"a"}, RHS: []string{"b"}})); err != nil {
		t.Errorf("a→b should rescue the query: %v", err)
	}
}

func TestFDStrings(t *testing.T) {
	f := FD{Rel: "Ord", LHS: []string{"okey"}, RHS: []string{"ckey"}}
	if got := f.String(); got != "Ord: okey → ckey" {
		t.Errorf("FD.String() = %q", got)
	}
	s := NewSet(f)
	if got := s.String(); !strings.Contains(got, "Ord: okey → ckey") {
		t.Errorf("Set.String() = %q", got)
	}
	if NewSet().String() != "{}" {
		t.Error("empty set string wrong")
	}
}
