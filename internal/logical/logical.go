// Package logical defines the planner's logical plan IR: a typed operator
// tree of scans, selections, projections, joins and confidence-placement
// points that every plan style — lazy, eager, hybrid, the MystiQ safe-plan
// baseline, OBDD compilation and Monte Carlo estimation — lowers from. The
// IR separates *what* a plan does (its operator tree, printable by EXPLAIN)
// from *how* internal/plan executes it (pipelined engine operators,
// materialization points, the confidence tiers), so the per-style builders
// share one construction path and the cost model can price a plan without
// running it.
package logical

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/query"
	"repro/internal/signature"
)

// Mode selects how tuple uncertainty flows through the plan.
type Mode int

// Plan modes.
const (
	// ModeLineage carries one V/P column pair per source table through
	// every operator — SPROUT's data model (§II.A), required by the
	// sort+scan confidence operator and by lineage collection.
	ModeLineage Mode = iota
	// ModeProb carries a single probability column and no variables —
	// MystiQ's model, where correctness rests on the safe join order.
	ModeProb
)

// Alg identifies the algorithm of a confidence-placement point.
type Alg int

// Confidence algorithms.
const (
	// AlgSortScan is the paper's sort+scan confidence operator driven by a
	// hierarchical signature (final) or a list of valid
	// probability-computation operators (eager placement points).
	AlgSortScan Alg = iota
	// AlgIndProject is MystiQ's independent projection π^ind: group by the
	// kept attributes and OR the probabilities of the assumed-independent
	// duplicates.
	AlgIndProject
	// AlgOBDD compiles each answer's lineage DNF into a reduced OBDD.
	AlgOBDD
	// AlgDTree decomposes each answer's lineage DNF into a d-tree
	// (independent-AND / independent-OR / Shannon as last resort) — exact
	// without needing a variable order, budgeted bounds beyond.
	AlgDTree
	// AlgMC estimates each answer's confidence with an (ε, δ) Monte Carlo
	// sampler over its lineage DNF.
	AlgMC
	// AlgLadder is the exact styles' fallback chain on queries without a
	// hierarchical signature: OBDD compilation under the node budget,
	// d-tree decomposition when the diagram blows up, Monte Carlo when the
	// decomposition budget is exceeded too.
	AlgLadder
)

// String names the algorithm as printed by EXPLAIN.
func (a Alg) String() string {
	switch a {
	case AlgSortScan:
		return "sort+scan"
	case AlgIndProject:
		return "π^ind"
	case AlgOBDD:
		return "obdd"
	case AlgDTree:
		return "dtree"
	case AlgMC:
		return "mc"
	case AlgLadder:
		return "obdd→dtree→mc"
	default:
		return "?"
	}
}

// Node is one operator of the logical plan tree.
type Node interface {
	// Inputs returns the child operators (left before right).
	Inputs() []Node
	// Label renders the operator for the EXPLAIN tree, one line, no
	// indentation.
	Label() string
}

// Scan reads one relation occurrence of the query: the base table under the
// occurrence renaming.
type Scan struct {
	Ref query.RelRef
}

// Inputs returns no children; scans are leaves.
func (s *Scan) Inputs() []Node { return nil }

// Label renders the scan.
func (s *Scan) Label() string {
	name := s.Ref.Name
	if s.Ref.Base != s.Ref.Name {
		name = s.Ref.Name + "=" + s.Ref.Base
	}
	return fmt.Sprintf("scan %s(%s)", name, strings.Join(s.Ref.Attrs, ","))
}

// Select filters its input by a conjunction of attribute–constant
// predicates.
type Select struct {
	Input Node
	Sels  []query.Selection
}

// Inputs returns the filtered input.
func (s *Select) Inputs() []Node { return []Node{s.Input} }

// Label renders the selection.
func (s *Select) Label() string {
	parts := make([]string, len(s.Sels))
	for i, sel := range s.Sels {
		parts[i] = sel.String()
	}
	return "σ[" + strings.Join(parts, " ∧ ") + "]"
}

// Project keeps the named data attributes. Uncertainty columns ride along
// according to the plan mode: every V/P pair under ModeLineage, the single
// probability column under ModeProb.
type Project struct {
	Input Node
	Attrs []string
}

// Inputs returns the projected input.
func (p *Project) Inputs() []Node { return []Node{p.Input} }

// Label renders the projection.
func (p *Project) Label() string { return "π[" + strings.Join(p.Attrs, ",") + "]" }

// Join is a natural equi-join on the data attributes shared by its inputs.
type Join struct {
	Left, Right Node
	// On lists the join attributes (shared data columns), for display and
	// costing; the lowering recomputes them from the physical schemas.
	On []string
}

// Inputs returns left then right.
func (j *Join) Inputs() []Node { return []Node{j.Left, j.Right} }

// Label renders the join.
func (j *Join) Label() string { return "⋈[" + strings.Join(j.On, ",") + "]" }

// Conf is a confidence-placement point: the position in the plan where
// probability computation happens. A final Conf produces the answer
// relation (distinct head tuples + confidence); a non-final Conf is an
// eager placement that aggregates some sources away and leaves a smaller
// lineage behind (§V.B).
type Conf struct {
	Input Node
	Alg   Alg
	// Ops lists the probability-computation operators applied at an eager
	// placement point ([Item*], [(Ord Item)*], …); empty for final points
	// and the lineage algorithms.
	Ops []signature.Sig
	// Sig is the signature evaluated by a final AlgSortScan point.
	Sig signature.Sig
	// Keep lists the group-by attributes of an AlgIndProject point.
	Keep []string
	// Final marks the top confidence computation producing the answer.
	Final bool
}

// Inputs returns the input relation.
func (c *Conf) Inputs() []Node { return []Node{c.Input} }

// Label renders the placement point.
func (c *Conf) Label() string {
	switch c.Alg {
	case AlgIndProject:
		return "π^ind[" + strings.Join(c.Keep, ",") + "]"
	case AlgSortScan:
		if c.Final {
			sig := "?"
			if c.Sig != nil {
				sig = c.Sig.String()
			}
			return "conf[sort+scan: " + sig + "]"
		}
		parts := make([]string, len(c.Ops))
		for i, op := range c.Ops {
			parts[i] = "[" + op.String() + "]"
		}
		return "agg" + strings.Join(parts, "")
	default:
		return "conf[" + c.Alg.String() + "]"
	}
}

// Plan is a complete logical plan: the operator tree plus the global facts
// the lowering needs (mode, style name, fallback annotation).
type Plan struct {
	// Style names the plan family ("lazy", "eager", …) for display.
	Style string
	Mode  Mode
	Root  Node
	// Note annotates unusual plans (fallback chains) for display.
	Note string
}

// String renders the plan as an indented operator tree, top operator first —
// the EXPLAIN format pinned by golden tests.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "style: %s", p.Style)
	if p.Note != "" {
		fmt.Fprintf(&b, " (%s)", p.Note)
	}
	b.WriteString("\n")
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label())
		b.WriteString("\n")
		for _, in := range n.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(p.Root, 0)
	return strings.TrimRight(b.String(), "\n")
}

// Relations returns the scanned relation occurrences in tree order (left
// before right) — the join order of left-deep plans.
func (p *Plan) Relations() []query.RelRef {
	var out []query.RelRef
	var walk func(n Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			out = append(out, s.Ref)
		}
		for _, in := range n.Inputs() {
			walk(in)
		}
	}
	walk(p.Root)
	return out
}

// LeafKeep returns the data attributes one relation occurrence must carry
// out of its leaf pipeline: head attributes plus every attribute shared
// with another occurrence (§V.B's projection rule). The order follows the
// occurrence's attribute list.
func LeafKeep(q *query.Query, ref query.RelRef) []string {
	need := make(map[string]bool)
	for _, h := range q.Head {
		need[h] = true
	}
	for _, a := range ref.Attrs {
		for _, other := range q.Rels {
			if other.Name != ref.Name && other.HasAttr(a) {
				need[a] = true
			}
		}
	}
	var names []string
	for _, a := range ref.Attrs {
		if need[a] {
			names = append(names, a)
		}
	}
	return names
}

// JoinKeep returns the data attributes an intermediate over the joined
// occurrence set must keep: head attributes plus every attribute shared
// with a not-yet-joined relation.
func JoinKeep(q *query.Query, joined map[string]bool) map[string]bool {
	need := make(map[string]bool)
	for _, h := range q.Head {
		need[h] = true
	}
	for _, r := range q.Rels {
		if joined[r.Name] {
			continue
		}
		for _, a := range r.Attrs {
			for _, jr := range q.Rels {
				if joined[jr.Name] && jr.HasAttr(a) {
					need[a] = true
				}
			}
		}
	}
	return need
}

// joinAttrsBetween lists the attributes shared between the already-joined
// set and the incoming occurrence, in the occurrence's attribute order.
func joinAttrsBetween(q *query.Query, joined map[string]bool, ref query.RelRef) []string {
	var on []string
	for _, a := range ref.Attrs {
		for _, jr := range q.Rels {
			if jr.Name != ref.Name && joined[jr.Name] && jr.HasAttr(a) {
				on = append(on, a)
				break
			}
		}
	}
	return on
}

// Leaf builds the leaf pipeline of one occurrence: scan → σ (when the query
// selects on it) → π to the attributes the leaf must carry.
func Leaf(q *query.Query, ref query.RelRef) Node {
	var n Node = &Scan{Ref: ref}
	var sels []query.Selection
	for _, s := range q.Sels {
		if s.Rel == ref.Name {
			sels = append(sels, s)
		}
	}
	if len(sels) > 0 {
		n = &Select{Input: n, Sels: sels}
	}
	return &Project{Input: n, Attrs: LeafKeep(q, ref)}
}

// JoinStep extends a left-deep plan by one occurrence: join the
// accumulated plan with the occurrence's leaf and project to the attributes
// still needed. joined must already include the new occurrence.
func JoinStep(q *query.Query, left Node, ref query.RelRef, joined map[string]bool) Node {
	j := &Join{Left: left, Right: Leaf(q, ref), On: joinAttrsBetween(q, joined, ref)}
	need := JoinKeep(q, joined)
	var attrs []string
	seen := make(map[string]bool)
	for _, r := range q.Rels {
		if !joined[r.Name] {
			continue
		}
		for _, a := range r.Attrs {
			if need[a] && !seen[a] {
				attrs = append(attrs, a)
				seen[a] = true
			}
		}
	}
	slices.Sort(attrs)
	return &Project{Input: j, Attrs: attrs}
}

// AnswerTree builds the left-deep scan/select/project/join tree that
// materializes the answer tuples of q in the given join order — the shared
// skeleton of the lazy, OBDD and Monte Carlo plans, and of the hybrid
// plan's lazy suffix.
func AnswerTree(q *query.Query, order []query.RelRef) Node {
	joined := make(map[string]bool)
	var n Node
	for i, ref := range order {
		joined[ref.Name] = true
		if i == 0 {
			n = Leaf(q, ref)
			continue
		}
		n = JoinStep(q, n, ref, joined)
	}
	return n
}
