package logical

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/table"
)

func q2() *query.Query {
	return &query.Query{
		Name: "q",
		Head: []string{"cname"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname"),
			query.Rel("Ord", "okey", "ckey", "odate"),
		},
		Sels: []query.Selection{
			{Rel: "Ord", Attr: "odate", Op: engine.OpLt, Val: table.Str("1996-01-01")},
		},
	}
}

func TestLeafKeep(t *testing.T) {
	q := q2()
	if got := LeafKeep(q, q.Rels[0]); strings.Join(got, ",") != "ckey,cname" {
		t.Errorf("LeafKeep(Cust) = %v", got)
	}
	// Ord keeps only the join attribute; odate is neither head nor shared.
	if got := LeafKeep(q, q.Rels[1]); strings.Join(got, ",") != "ckey" {
		t.Errorf("LeafKeep(Ord) = %v", got)
	}
}

func TestJoinKeep(t *testing.T) {
	q := q2()
	need := JoinKeep(q, map[string]bool{"Cust": true, "Ord": true})
	if !need["cname"] || need["odate"] || need["okey"] {
		t.Errorf("JoinKeep = %v", need)
	}
}

func TestAnswerTreeShapeAndRendering(t *testing.T) {
	q := q2()
	root := AnswerTree(q, q.Rels)
	p := &Plan{Style: "lazy", Root: root}
	out := p.String()
	for _, want := range []string{
		"style: lazy",
		"⋈[ckey]",
		"σ[Ord.odate<1996-01-01]",
		"scan Cust(ckey,cname)",
		"scan Ord(okey,ckey,odate)",
		"π[cname]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	rels := p.Relations()
	if len(rels) != 2 || rels[0].Name != "Cust" || rels[1].Name != "Ord" {
		t.Errorf("Relations() = %v", rels)
	}
	// Rendering is deterministic.
	if again := (&Plan{Style: "lazy", Root: AnswerTree(q2(), q2().Rels)}).String(); again != out {
		t.Error("rendering not deterministic")
	}
}

func TestConfLabels(t *testing.T) {
	leaf := Leaf(q2(), q2().Rels[0])
	if got := (&Conf{Input: leaf, Alg: AlgLadder, Final: true}).Label(); got != "conf[obdd→dtree→mc]" {
		t.Errorf("label = %q", got)
	}
	if got := (&Conf{Input: leaf, Alg: AlgDTree, Final: true}).Label(); got != "conf[dtree]" {
		t.Errorf("label = %q", got)
	}
	if got := (&Conf{Input: leaf, Alg: AlgIndProject, Keep: []string{"a", "b"}}).Label(); got != "π^ind[a,b]" {
		t.Errorf("label = %q", got)
	}
}
