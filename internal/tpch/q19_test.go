package tpch

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/prob"
)

// TestQ19ConjunctsHierarchical: each of the three conjunctions of query 19
// is hierarchical on its own (§VI: "a disjunction of three hierarchical
// conjunctions that are mutually exclusive").
func TestQ19ConjunctsHierarchical(t *testing.T) {
	cs := Q19Conjuncts()
	if len(cs) != 3 {
		t.Fatalf("got %d conjuncts", len(cs))
	}
	for _, q := range cs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if !q.IsHierarchical() {
			t.Errorf("%s must be hierarchical", q.Name)
		}
	}
	// Mutual exclusion: the brand selections differ pairwise.
	brands := make(map[string]bool)
	for _, q := range cs {
		for _, s := range q.Sels {
			if s.Attr == "brand" {
				brands[s.Val.S] = true
			}
		}
	}
	if len(brands) != 3 {
		t.Errorf("conjuncts must select three distinct brands, got %v", brands)
	}
}

// TestRunQ19MatchesDirectOr: combining the conjunct confidences with the
// independent OR equals evaluating each conjunct and OR-ing by hand.
func TestRunQ19MatchesDirectOr(t *testing.T) {
	d := Generate(Config{SF: 0.004, Seed: 21})
	catalog := d.Catalog()
	sigma := FDs()
	got, err := RunQ19(catalog, sigma, plan.Spec{Style: plan.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || got > 1 {
		t.Fatalf("Q19 confidence %g outside [0,1]", got)
	}
	var ps []float64
	for _, q := range Q19Conjuncts() {
		res, err := plan.Run(catalog, q, sigma, plan.Spec{Style: plan.Lazy})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows.Len() == 1 {
			ps = append(ps, res.Rows.Rows[0][0].F)
		}
	}
	want := prob.OrAll(ps)
	if !prob.ApproxEqual(got, want, 1e-12) {
		t.Errorf("RunQ19 = %g, direct OR = %g", got, want)
	}
	// Plan styles agree on the disjunction too.
	eager, err := RunQ19(catalog, sigma, plan.Spec{Style: plan.Eager})
	if err != nil {
		t.Fatal(err)
	}
	if !prob.ApproxEqual(got, eager, 1e-9) {
		t.Errorf("lazy %g vs eager %g on Q19", got, eager)
	}
}
