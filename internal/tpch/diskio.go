package tpch

import (
	"fmt"
	"path/filepath"

	"repro/internal/storage"
	"repro/internal/table"
)

// WriteHeapFiles persists every generated table as a page-structured heap
// file under dir (one <Table>.heap per table), exercising the
// secondary-storage layer on the write path. cmd/sprout-gen is a thin
// wrapper around this.
func (d *Data) WriteHeapFiles(dir string) error {
	for _, tb := range d.Tables() {
		path := filepath.Join(dir, tb.Name+".heap")
		h, err := storage.CreateHeapFile(path)
		if err != nil {
			return err
		}
		for _, row := range tb.Rel.Rows {
			if err := h.Append(row); err != nil {
				h.Close()
				return fmt.Errorf("tpch: writing %s: %w", tb.Name, err)
			}
		}
		if err := h.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadHeapFiles reads a directory produced by WriteHeapFiles back into
// probabilistic tables, scanning each heap file through a shared buffer
// pool. The schemas come from a reference instance (Generate with any
// config yields the same schemas), so only tuple data lives on disk.
func LoadHeapFiles(dir string, poolPages int) (*Data, error) {
	ref := Generate(Config{SF: 0.0001, Seed: 0}) // schema donor only
	pool := storage.NewBufferPool(poolPages)
	out := &Data{}
	load := func(dst **table.ProbTable, refTable *table.ProbTable) error {
		path := filepath.Join(dir, refTable.Name+".heap")
		h, err := storage.OpenHeapFile(path)
		if err != nil {
			return err
		}
		defer h.Close()
		pt := &table.ProbTable{Name: refTable.Name, Rel: table.NewRelation(refTable.Rel.Schema)}
		sc := h.NewScanner(pool)
		defer sc.Close()
		maxVar := 0
		for {
			t, ok, err := sc.Next()
			if err != nil {
				return fmt.Errorf("tpch: loading %s: %w", refTable.Name, err)
			}
			if !ok {
				break
			}
			if err := pt.Rel.Append(t); err != nil {
				return fmt.Errorf("tpch: loading %s: %w", refTable.Name, err)
			}
			vi := pt.Rel.Schema.VarIndex(pt.Name)
			if v := int(t[vi].I); v > maxVar {
				maxVar = v
			}
		}
		if maxVar > out.NumVars {
			out.NumVars = maxVar
		}
		*dst = pt
		return nil
	}
	for _, pair := range []struct {
		dst *(*table.ProbTable)
		ref *table.ProbTable
	}{
		{&out.Region, ref.Region}, {&out.Nation, ref.Nation}, {&out.Supp, ref.Supp},
		{&out.Part, ref.Part}, {&out.Psupp, ref.Psupp}, {&out.Cust, ref.Cust},
		{&out.Ord, ref.Ord}, {&out.Item, ref.Item},
	} {
		if err := load(pair.dst, pair.ref); err != nil {
			return nil, err
		}
	}
	return out, nil
}
