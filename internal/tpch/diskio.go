package tpch

import (
	"fmt"
	"path/filepath"

	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/table"
)

// WriteHeapFiles persists every generated table as a page-structured heap
// file under dir (one <Table>.heap per table), exercising the
// secondary-storage layer on the write path, and drops a stats.json sidecar
// next to them so loaders skip the first-query ANALYZE. cmd/sprout-gen is a
// thin wrapper around this.
func (d *Data) WriteHeapFiles(dir string) error {
	for _, tb := range d.Tables() {
		path := filepath.Join(dir, tb.Name+".heap")
		h, err := storage.CreateHeapFile(path)
		if err != nil {
			return err
		}
		for _, row := range tb.Rel.Rows {
			if err := h.Append(row); err != nil {
				h.Close()
				return fmt.Errorf("tpch: writing %s: %w", tb.Name, err)
			}
		}
		if err := h.Close(); err != nil {
			return err
		}
	}
	// Analyze the still-in-memory tables (cheaper than rescanning the files
	// just written) and persist the snapshot alongside them.
	return stats.SaveSidecar(dir, d.Sidecar())
}

// Sidecar builds the statistics sidecar of a generated instance from its
// in-memory tables.
func (d *Data) Sidecar() *stats.Sidecar {
	sc := &stats.Sidecar{Tables: make(map[string]*stats.TableStats), MaxVar: d.NumVars}
	for _, tb := range d.Tables() {
		sc.Tables[tb.Name] = stats.Analyze(tb)
	}
	return sc
}

// LoadHeapFiles reads a directory produced by WriteHeapFiles back into
// probabilistic tables, scanning each heap file through a shared buffer
// pool. The schemas come from a reference instance (Generate with any
// config yields the same schemas), so only tuple data lives on disk.
func LoadHeapFiles(dir string, poolPages int) (*Data, error) {
	ref := Generate(Config{SF: 0.0001, Seed: 0}) // schema donor only
	pool := storage.NewBufferPool(poolPages)
	out := &Data{}
	load := func(dst **table.ProbTable, refTable *table.ProbTable) error {
		path := filepath.Join(dir, refTable.Name+".heap")
		h, err := storage.OpenHeapFile(path)
		if err != nil {
			return err
		}
		defer h.Close()
		pt := &table.ProbTable{Name: refTable.Name, Rel: table.NewRelation(refTable.Rel.Schema)}
		sc := h.NewScanner(pool)
		defer sc.Close()
		maxVar := 0
		for {
			t, ok, err := sc.Next()
			if err != nil {
				return fmt.Errorf("tpch: loading %s: %w", refTable.Name, err)
			}
			if !ok {
				break
			}
			if err := pt.Rel.Append(t); err != nil {
				return fmt.Errorf("tpch: loading %s: %w", refTable.Name, err)
			}
			vi := pt.Rel.Schema.VarIndex(pt.Name)
			if v := int(t[vi].I); v > maxVar {
				maxVar = v
			}
		}
		if maxVar > out.NumVars {
			out.NumVars = maxVar
		}
		*dst = pt
		return nil
	}
	for _, pair := range []struct {
		dst *(*table.ProbTable)
		ref *table.ProbTable
	}{
		{&out.Region, ref.Region}, {&out.Nation, ref.Nation}, {&out.Supp, ref.Supp},
		{&out.Part, ref.Part}, {&out.Psupp, ref.Psupp}, {&out.Cust, ref.Cust},
		{&out.Ord, ref.Ord}, {&out.Item, ref.Item},
	} {
		if err := load(pair.dst, pair.ref); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// OpenDiskCatalog builds a planner catalog whose tables stay on disk: each
// heap file is opened (not loaded) and bound to the catalog through the
// shared buffer pool, so scans page in tuples on demand and queries run
// through the storage layer end to end. The second return value is the
// instance's world-variable count. When the directory carries a stats.json
// sidecar (WriteHeapFiles writes one), its ANALYZE snapshot and variable
// ceiling are installed directly; otherwise each heap file is analyzed with
// one scan through the pool. The caller owns the returned closer, which
// releases every opened heap file.
func OpenDiskCatalog(dir string, poolPages int) (*plan.Catalog, int, func() error, error) {
	ref := Generate(Config{SF: 0.0001, Seed: 0}) // schema donor only
	pool := storage.NewBufferPool(poolPages)
	c := plan.NewCatalog()

	sc, scErr := stats.LoadSidecar(dir)
	var files []*storage.HeapFile
	closeAll := func() error {
		var first error
		for _, h := range files {
			if err := h.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	numVars := 0
	statsMap := make(map[string]*stats.TableStats)
	for _, refTable := range ref.Tables() {
		h, err := storage.OpenHeapFile(filepath.Join(dir, refTable.Name+".heap"))
		if err != nil {
			closeAll()
			return nil, 0, nil, err
		}
		files = append(files, h)
		schema := refTable.Rel.Schema
		c.MustAdd(&table.ProbTable{Name: refTable.Name, Rel: table.NewRelation(schema)})
		var ts *stats.TableStats
		if scErr == nil {
			ts = sc.Tables[refTable.Name]
		}
		if ts == nil {
			ts, err = stats.AnalyzeHeapFile(h.Path(), refTable.Name, schema, pool)
			if err != nil {
				closeAll()
				return nil, 0, nil, fmt.Errorf("tpch: analyzing %s: %w", refTable.Name, err)
			}
		}
		statsMap[refTable.Name] = ts
		if ts.MaxVar > numVars {
			numVars = ts.MaxVar
		}
		if err := c.BindDisk(refTable.Name, &plan.DiskBinding{File: h, Pool: pool, Rows: ts.Rows}); err != nil {
			closeAll()
			return nil, 0, nil, err
		}
	}
	if scErr == nil && sc.MaxVar > numVars {
		numVars = sc.MaxVar
	}
	c.SetStats(statsMap)
	return c, numVars, closeAll, nil
}
