package tpch

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/table"
)

// Q19Conjuncts returns the three hierarchical conjunctive queries whose
// disjunction is TPC-H query 19 ("discounted revenue"). The paper (§VI)
// observes that the three conjunctions are mutually exclusive — each selects
// a different brand and container class, hence disjoint sets of independent
// tuples — so the disjunction's confidence is the independent OR of the
// three conjunct confidences.
func Q19Conjuncts() []*query.Query {
	mk := func(i int, brand, container string, qlo, qhi int64, mode string) *query.Query {
		return &query.Query{
			Name: fmt.Sprintf("19c%d", i),
			Rels: []query.RelRef{relItem(), relPart()},
			Sels: []query.Selection{
				sel("Part", "brand", engine.OpEq, table.Str(brand)),
				sel("Part", "container", engine.OpEq, table.Str(container)),
				sel("Item", "qty", engine.OpGe, table.Int(qlo)),
				sel("Item", "qty", engine.OpLe, table.Int(qhi)),
				sel("Item", "smode", engine.OpEq, table.Str(mode)),
			},
		}
	}
	return []*query.Query{
		mk(1, "Brand#12", "SM CASE", 1, 11, "AIR"),
		mk(2, "Brand#23", "MED BOX", 10, 20, "AIR"),
		mk(3, "Brand#34", "LG CASE", 20, 30, "AIR"),
	}
}

// RunQ19 evaluates the Boolean query 19 as the paper prescribes: each
// conjunct separately (each is hierarchical), then the confidences combined
// with the independent-OR formula, which is exact because the conjuncts'
// selections are mutually exclusive on Part (different brands) and
// therefore use disjoint variable sets.
func RunQ19(catalog *plan.Catalog, sigma *fd.Set, spec plan.Spec) (float64, error) {
	var ps []float64
	for _, q := range Q19Conjuncts() {
		res, err := plan.Run(catalog, q, sigma, spec)
		if err != nil {
			return 0, fmt.Errorf("tpch: Q19 conjunct %s: %w", q.Name, err)
		}
		switch res.Rows.Len() {
		case 0:
			// Empty conjunct: contributes probability 0.
		case 1:
			ps = append(ps, res.Rows.Rows[0][0].F)
		default:
			return 0, fmt.Errorf("tpch: Q19 conjunct %s returned %d rows for a Boolean query", q.Name, res.Rows.Len())
		}
	}
	return prob.OrAll(ps), nil
}
