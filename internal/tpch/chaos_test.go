package tpch

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/difftest"
	"repro/internal/fault"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/table"
)

// The chaos harness: replay randomized-but-seeded fault schedules against
// disk-resident TPC-H queries and assert the engine's robustness contract
// on every one of them — a faulted run either returns bit-identical
// confidences (the fault was absorbed by a storage-level retry or hit an
// idle path) or a cleanly typed injected error; it never corrupts results,
// leaks spill files, strands pinned buffer-pool pages, or leaks
// goroutines. Every failure reproduces from its seed alone.

// chaosSeeds is the schedule count the acceptance bar asks for; -short
// trims it for the inner development loop.
const chaosSeeds = 200

// chaosQueries rotates styles and shapes across seeds: lazy sort+scan
// (spill-heavy), the OBDD compilation tier, and the hierarchical
// multi-join.
var chaosQueries = []struct {
	name  string
	style plan.Style
}{
	{"1", plan.Lazy},
	{"15", plan.OBDD},
	{"18", plan.Lazy},
}

// confKey renders an answer row for exact (bit-identical) comparison.
func confKey(row []table.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

// confMapOf collects answer-row → confidence strings; confidences are
// formatted with %x so comparison is bit-exact.
func confMapOf(rows []table.Tuple) map[string]string {
	m := make(map[string]string, len(rows))
	for _, r := range rows {
		n := len(r)
		m[confKey(r[:n-1])] = fmt.Sprintf("%x", r[n-1].F)
	}
	return m
}

func TestChaosFaultSchedules(t *testing.T) {
	difftest.LeakCheck(t)
	dir := t.TempDir()
	mem := Generate(Config{SF: 0.001, Seed: 1})
	if err := mem.WriteHeapFiles(dir); err != nil {
		t.Fatal(err)
	}
	heapFiles, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	spec := func(style plan.Style, spill string) plan.Spec {
		s := plan.Spec{Style: style}
		s.Conf.SortBudget = 64 // force spills so the fault plane sees writes
		s.Conf.TmpDir = spill
		return s
	}

	// Fault-free baselines, computed on the same disk catalog layout.
	baseline := make(map[string]map[string]string)
	baseSpill := t.TempDir()
	cat, _, closeFiles, err := OpenDiskCatalog(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, cq := range chaosQueries {
		e := Catalog()[cq.name]
		res, err := plan.Run(cat, e.Q.Clone(), FDsFor(e), spec(cq.style, baseSpill))
		if err != nil {
			t.Fatalf("baseline %s: %v", cq.name, err)
		}
		baseline[cq.name] = confMapOf(res.Rows.Rows)
	}
	if err := closeFiles(); err != nil {
		t.Fatal(err)
	}

	seeds := chaosSeeds
	if testing.Short() {
		seeds = 25
	}
	spill := filepath.Join(dir, "chaos-spill")
	if err := os.MkdirAll(spill, 0755); err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < seeds; seed++ {
		cq := chaosQueries[seed%len(chaosQueries)]
		runChaosSeed(t, dir, spill, int64(seed), cq.name, cq.style,
			spec(cq.style, spill), baseline[cq.name], len(heapFiles))
	}
}

// runChaosSeed replays one seeded fault schedule against one query and
// asserts the full robustness contract.
func runChaosSeed(t *testing.T, dir, spill string, seed int64, qname string, style plan.Style, sp plan.Spec, want map[string]string, nHeapFiles int) {
	t.Helper()
	storage.SetIO(&fault.IO{
		Plan:  fault.RandomPlan(seed),
		Retry: fault.Retry{MaxAttempts: 2, Base: time.Microsecond, Max: time.Millisecond},
		Sleep: func(time.Duration) {}, // latency faults must not slow the suite
	})
	defer storage.SetIO(nil)

	cat, _, closeFiles, err := OpenDiskCatalog(dir, 32)
	if err != nil {
		if !fault.IsInjected(err) {
			t.Errorf("seed %d: catalog open failed with untyped error: %v", seed, err)
		}
		return
	}
	defer func() {
		storage.SetIO(nil) // close must not re-fault
		if err := closeFiles(); err != nil {
			t.Errorf("seed %d: closing heap files: %v", seed, err)
		}
	}()

	e := Catalog()[qname]
	res, err := plan.Run(cat, e.Q.Clone(), FDsFor(e), sp)
	switch {
	case err != nil:
		if !fault.IsInjected(err) {
			t.Errorf("seed %d (%s): failed with untyped error: %v", seed, qname, err)
		}
	default:
		got := confMapOf(res.Rows.Rows)
		if len(got) != len(want) {
			t.Errorf("seed %d (%s): %d answers, want %d", seed, qname, len(got), len(want))
			return
		}
		for k, w := range want {
			if got[k] != w {
				t.Errorf("seed %d (%s): answer %q conf %s, want bit-identical %s", seed, qname, k, got[k], w)
			}
		}
	}

	// Quiescence invariants hold on every path, success or typed failure.
	if db := cat.Disk("Item"); db != nil {
		if n := db.Pool.Pinned(); n != 0 {
			t.Errorf("seed %d (%s): %d buffer-pool frames still pinned", seed, qname, n)
		}
	}
	if entries, err := os.ReadDir(spill); err != nil {
		t.Errorf("seed %d: reading spill dir: %v", seed, err)
	} else if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, en := range entries {
			names[i] = en.Name()
		}
		t.Errorf("seed %d (%s): leaked spill files: %v", seed, qname, names)
	}
	if entries, err := os.ReadDir(dir); err != nil {
		t.Errorf("seed %d: reading data dir: %v", seed, err)
	} else if len(entries) != nHeapFiles+1 { // +1 for the spill subdir
		t.Errorf("seed %d (%s): data dir grew to %d entries", seed, qname, len(entries))
	}
}

// TestChaosGovernedAndDegraded replays a band of schedules with the memory
// governor and deadline watermark armed on top of the fault plane — the
// degraded paths (early spill, grace join, stopped tiers) must uphold the
// same no-leak, typed-error contract. Confidence identity is NOT asserted
// here: governed runs may legitimately degrade to certified bounds.
func TestChaosGovernedAndDegraded(t *testing.T) {
	difftest.LeakCheck(t)
	dir := t.TempDir()
	mem := Generate(Config{SF: 0.001, Seed: 1})
	if err := mem.WriteHeapFiles(dir); err != nil {
		t.Fatal(err)
	}
	spill := filepath.Join(dir, "chaos-spill")
	if err := os.MkdirAll(spill, 0755); err != nil {
		t.Fatal(err)
	}
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		func() {
			storage.SetIO(&fault.IO{Plan: fault.RandomPlan(int64(1000 + seed)), Sleep: func(time.Duration) {}})
			defer storage.SetIO(nil)
			cat, _, closeFiles, err := OpenDiskCatalog(dir, 32)
			if err != nil {
				if !fault.IsInjected(err) {
					t.Errorf("seed %d: catalog open: %v", seed, err)
				}
				return
			}
			defer func() {
				storage.SetIO(nil)
				closeFiles()
			}()
			e := Catalog()["18"]
			sp := plan.Spec{Style: plan.Lazy, MemBudget: 96 << 10}
			sp.Conf.SortBudget = 64
			sp.Conf.TmpDir = spill
			res, err := plan.Run(cat, e.Q.Clone(), FDsFor(e), sp)
			if err != nil && !fault.IsInjected(err) {
				t.Errorf("seed %d: untyped error: %v", seed, err)
			}
			if err == nil && res.Stats.Degraded && res.Stats.DegradeReason == "" {
				t.Errorf("seed %d: degraded without a reason", seed)
			}
			if entries, _ := os.ReadDir(spill); len(entries) != 0 {
				t.Errorf("seed %d: leaked spill files: %d", seed, len(entries))
			}
			if db := cat.Disk("Item"); db != nil && db.Pool.Pinned() != 0 {
				t.Errorf("seed %d: pinned frames leaked", seed)
			}
		}()
	}
}
