package tpch

import (
	"fmt"
	"slices"

	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/query"
	"repro/internal/signature"
	"repro/internal/table"
)

// Entry is one catalog query: a conjunctive subquery of a TPC-H query (with
// aggregations and inequality joins dropped, per §VI) plus metadata for the
// case study.
type Entry struct {
	Name string
	Q    *query.Query
	// Boolean marks the Boolean variants (B-prefixed in the paper's
	// figures).
	Boolean bool
	// Note documents how the conjunctive subquery was derived from the
	// original TPC-H query.
	Note string
	// Unsupported marks queries outside the framework entirely (Q13's
	// outer join); Q stays nil for them.
	Unsupported string
	// ExtraFDs supplies key dependencies under the query's renamed
	// attributes (needed when aliases rename key columns, e.g. Q7's two
	// Nation copies).
	ExtraFDs []fd.FD
}

// FDsFor returns the TPC-H keys plus the entry's alias-renamed keys.
func FDsFor(e *Entry) *fd.Set {
	s := FDs()
	for _, f := range e.ExtraFDs {
		s.Add(f)
	}
	return s
}

func sel(rel, attr string, op engine.CmpOp, v table.Value) query.Selection {
	return query.Selection{Rel: rel, Attr: attr, Op: op, Val: v}
}

// relItem returns the Item relation reference with all attributes.
func relItem() query.RelRef {
	return query.Rel("Item", "okey", "pkey", "skey", "qty", "price", "discount", "sdate", "smode", "rflag")
}

func relOrd() query.RelRef  { return query.Rel("Ord", "okey", "ckey", "odate", "oprice", "opri") }
func relCust() query.RelRef { return query.Rel("Cust", "ckey", "cname", "nkey", "cacctbal", "mkt") }
func relSupp() query.RelRef { return query.Rel("Supp", "skey", "sname", "nkey", "sacctbal") }
func relPart() query.RelRef {
	return query.Rel("Part", "pkey", "pname", "brand", "container", "psize", "rprice")
}
func relPsupp() query.RelRef  { return query.Rel("Psupp", "pkey", "skey", "scost", "aqty") }
func relNation() query.RelRef { return query.Rel("Nation", "nkey", "nname", "rkey") }
func relRegion() query.RelRef { return query.Rel("Region", "rkey", "rname") }

// Catalog returns the full query catalog, keyed by the names used in the
// paper's figures ("3", "B17", ...). Boolean variants share the relations
// and selections of their non-Boolean counterpart with an empty head.
func Catalog() map[string]*Entry {
	m := make(map[string]*Entry)
	add := func(e *Entry) {
		if _, dup := m[e.Name]; dup {
			panic("tpch: duplicate catalog entry " + e.Name)
		}
		if e.Q != nil {
			e.Q.Name = e.Name
			if err := e.Q.Validate(); err != nil {
				panic(fmt.Sprintf("tpch: catalog entry %s invalid: %v", e.Name, err))
			}
		}
		m[e.Name] = e
	}
	boolean := func(name string, base *Entry, note string) {
		q := base.Q.Clone()
		q.Head = nil
		add(&Entry{Name: name, Q: q, Boolean: true, Note: note})
	}

	// Q1: pricing summary report — single-table selection on Item.
	q1 := &Entry{Name: "1", Q: &query.Query{
		Head: []string{"rflag", "smode"},
		Rels: []query.RelRef{relItem()},
		Sels: []query.Selection{sel("Item", "sdate", engine.OpLe, table.Str("1998-09-02"))},
	}, Note: "aggregations dropped; grouping attributes as head"}
	add(q1)
	boolean("B1", q1, "Boolean variant of 1")

	// Q2: minimum-cost supplier — 5-way join; hierarchical only under the
	// TPC-H keys (§VI: "for the queries 2, 11, and 18 we use the existing
	// TPC-H keys to derive hierarchical FD-reducts").
	q2 := &Entry{Name: "2", Q: &query.Query{
		Head: []string{"sacctbal", "sname", "nname", "pkey", "pname"},
		Rels: []query.RelRef{relPart(), relPsupp(), relSupp(), relNation(), relRegion()},
		Sels: []query.Selection{
			sel("Part", "psize", engine.OpEq, table.Int(15)),
			sel("Region", "rname", engine.OpEq, table.Str("EUROPE")),
		},
	}, Note: "min-cost subquery dropped; needs keys for the FD-reduct"}
	add(q2)

	// Q3: shipping priority — same joins as 18 but okey in the head, which
	// drops the safe-plan join-order restriction (§VII).
	q3 := &Entry{Name: "3", Q: &query.Query{
		Head: []string{"okey", "odate", "opri"},
		Rels: []query.RelRef{relCust(), relOrd(), itemNoCkey()},
		Sels: []query.Selection{
			sel("Cust", "mkt", engine.OpEq, table.Str("BUILDING")),
			sel("Ord", "odate", engine.OpLt, table.Str("1995-03-15")),
			sel("Item", "sdate", engine.OpGt, table.Str("1995-03-15")),
		},
	}, Note: "revenue aggregation dropped"}
	add(q3)
	boolean("B3", q3, "Boolean variant of 3")

	// Q4: order priority checking — EXISTS with the receipt/commit
	// inequality dropped leaves Ord ⋈ Item.
	q4 := &Entry{Name: "4", Q: &query.Query{
		Head: []string{"opri"},
		Rels: []query.RelRef{relOrd(), relItem()},
		Sels: []query.Selection{
			sel("Ord", "odate", engine.OpGe, table.Str("1993-07-01")),
			sel("Ord", "odate", engine.OpLt, table.Str("1993-10-01")),
		},
	}, Note: "inequality join receiptdate>commitdate dropped"}
	add(q4)
	boolean("B4", q4, "Boolean variant of 4")

	// Q5: local supplier volume — Item joins Ord, Supp on different
	// non-key, non-head attributes: no hierarchical FD-reduct (§VI).
	add(&Entry{Name: "5", Q: &query.Query{
		Head: []string{"nname"},
		Rels: []query.RelRef{relCust(), relOrd(), relItem(), relSupp(), relNation(), relRegion()},
		Sels: []query.Selection{
			sel("Region", "rname", engine.OpEq, table.Str("ASIA")),
			sel("Ord", "odate", engine.OpGe, table.Str("1994-01-01")),
			sel("Ord", "odate", engine.OpLt, table.Str("1995-01-01")),
		},
	}, Note: "intractable: Item joins Ord (okey) and Supp (skey) with incomparable relation sets"})

	// Q6: forecasting revenue change — single-table; Boolean only in the
	// figures.
	b6 := &query.Query{
		Rels: []query.RelRef{relItem()},
		Sels: []query.Selection{
			sel("Item", "sdate", engine.OpGe, table.Str("1994-01-01")),
			sel("Item", "sdate", engine.OpLt, table.Str("1995-01-01")),
			sel("Item", "discount", engine.OpGe, table.Float(0.05)),
			sel("Item", "discount", engine.OpLe, table.Float(0.07)),
			sel("Item", "qty", engine.OpLt, table.Int(24)),
		},
	}
	add(&Entry{Name: "B6", Q: b6, Boolean: true, Note: "revenue aggregation dropped"})

	// Q7: volume shipping — six tables with two copies of Nation (the
	// self-join is harmless because the two copies select disjoint tuples,
	// §IV/§VI). With skey in the head, the FD-reduct yields exactly the
	// paper's signature Nation1 Supp (Nation2(Cust(Ord Item*)*)*)*.
	q7 := &Entry{Name: "7", Q: &query.Query{
		Head: []string{"skey", "sdate"},
		Rels: []query.RelRef{
			query.Alias("Nation1", "Nation", "n1key", "n1name", "r1key"),
			query.Rel("Supp", "skey", "sname", "n1key", "sacctbal"),
			relItem(), relOrd(),
			query.Rel("Cust", "ckey", "cname", "n2key", "cacctbal", "mkt"),
			query.Alias("Nation2", "Nation", "n2key", "n2name", "r2key"),
		},
		Sels: []query.Selection{
			sel("Nation1", "n1name", engine.OpEq, table.Str("FRANCE")),
			sel("Nation2", "n2name", engine.OpEq, table.Str("GERMANY")),
			sel("Item", "sdate", engine.OpGe, table.Str("1995-01-01")),
			sel("Item", "sdate", engine.OpLe, table.Str("1996-12-31")),
		},
	}, Note: "two Nation copies with mutually exclusive selections",
		ExtraFDs: []fd.FD{
			{Rel: "Supp", LHS: []string{"skey"}, RHS: []string{"sname", "n1key", "sacctbal"}},
			{Rel: "Nation1", LHS: []string{"n1key"}, RHS: []string{"n1name", "r1key"}},
			{Rel: "Nation2", LHS: []string{"n2key"}, RHS: []string{"n2name", "r2key"}},
			{Rel: "Cust", LHS: []string{"ckey"}, RHS: []string{"cname", "n2key", "cacctbal", "mkt"}},
		}}
	add(q7)

	// Q8: national market share — Item joins Part, Supp, Ord on three
	// pairwise-incomparable attributes: intractable (§VI).
	add(&Entry{Name: "8", Q: &query.Query{
		Head: []string{"odate"},
		Rels: []query.RelRef{relPart(), relSupp(), relItem(), relOrd(), relCust(), relNation(), relRegion()},
		Sels: []query.Selection{
			sel("Region", "rname", engine.OpEq, table.Str("AMERICA")),
			sel("Part", "container", engine.OpEq, table.Str("MED BOX")),
		},
	}, Note: "intractable: Item joins Part/Supp/Ord on incomparable attributes"})

	// Q9: product type profit — same obstruction as Q8 (§VI).
	add(&Entry{Name: "9", Q: &query.Query{
		Head: []string{"nname", "odate"},
		Rels: []query.RelRef{relPart(), relSupp(), relItem(), relPsupp(), relOrd(), relNation()},
		Sels: []query.Selection{sel("Part", "brand", engine.OpEq, table.Str("Brand#12"))},
	}, Note: "intractable: Item joins Part/Supp/Psupp/Ord on incomparable attributes"})

	// Q10: returned item reporting.
	q10 := &Entry{Name: "10", Q: &query.Query{
		Head: []string{"ckey", "cname", "cacctbal", "nname", "mkt"},
		Rels: []query.RelRef{relCust(), relOrd(), itemNoCkey(), relNation()},
		Sels: []query.Selection{
			sel("Ord", "odate", engine.OpGe, table.Str("1993-10-01")),
			sel("Ord", "odate", engine.OpLt, table.Str("1994-01-01")),
			sel("Item", "rflag", engine.OpEq, table.Str("R")),
		},
	}, Note: "revenue aggregation dropped; ckey in head keeps it hierarchical"}
	add(q10)
	boolean("B10", q10, "Boolean variant of 10")

	// Q11: important stock identification — needs keys (§VI).
	q11 := &Entry{Name: "11", Q: &query.Query{
		Head: []string{"pkey"},
		Rels: []query.RelRef{relPsupp(), relSupp(), relNation()},
		Sels: []query.Selection{sel("Nation", "nname", engine.OpEq, table.Str("GERMANY"))},
	}, Note: "value aggregation dropped; needs keys for the FD-reduct"}
	add(q11)
	boolean("B11", q11, "Boolean variant of 11")

	// Q12: shipping modes and order priority.
	q12 := &Entry{Name: "12", Q: &query.Query{
		Head: []string{"smode"},
		Rels: []query.RelRef{relOrd(), relItem()},
		Sels: []query.Selection{
			sel("Item", "smode", engine.OpEq, table.Str("MAIL")),
			sel("Item", "sdate", engine.OpGe, table.Str("1994-01-01")),
			sel("Item", "sdate", engine.OpLt, table.Str("1995-01-01")),
		},
	}, Note: "receipt/commit inequalities dropped"}
	add(q12)
	boolean("B12", q12, "Boolean variant of 12")

	// Q13: customer distribution — left outer join, outside the framework
	// (§VI).
	add(&Entry{Name: "13", Unsupported: "left outer join on customer and orders (§VI)"})

	// Q14: promotion effect — Boolean variant in the figures.
	q14 := &query.Query{
		Rels: []query.RelRef{relItem(), relPart()},
		Sels: []query.Selection{
			sel("Item", "sdate", engine.OpGe, table.Str("1995-09-01")),
			sel("Item", "sdate", engine.OpLt, table.Str("1995-10-01")),
		},
	}
	add(&Entry{Name: "B14", Q: q14, Boolean: true, Note: "promo-revenue aggregation dropped"})

	// Q15: top supplier.
	q15 := &Entry{Name: "15", Q: &query.Query{
		Head: []string{"skey", "sname", "sacctbal"},
		Rels: []query.RelRef{relSupp(), relItem()},
		Sels: []query.Selection{
			sel("Item", "sdate", engine.OpGe, table.Str("1996-01-01")),
			sel("Item", "sdate", engine.OpLt, table.Str("1996-04-01")),
		},
	}, Note: "revenue view aggregation dropped"}
	add(q15)
	boolean("B15", q15, "Boolean variant of 15")

	// Q16: parts/supplier relationship.
	q16 := &Entry{Name: "16", Q: &query.Query{
		Head: []string{"brand", "container", "psize"},
		Rels: []query.RelRef{relPsupp(), relPart()},
		Sels: []query.Selection{
			sel("Part", "brand", engine.OpNe, table.Str("Brand#45")),
			sel("Part", "psize", engine.OpEq, table.Int(49)),
		},
	}, Note: "supplier-count aggregation and NOT IN dropped"}
	add(q16)
	boolean("B16", q16, "Boolean variant of 16")

	// Q17: small-quantity-order revenue — Boolean in the figures. "B17 is
	// a join of Item and a rather small subset of Part on the key pkey"
	// (§VII).
	q17 := &query.Query{
		Rels: []query.RelRef{relItem(), relPart()},
		Sels: []query.Selection{
			sel("Part", "brand", engine.OpEq, table.Str("Brand#23")),
			sel("Part", "container", engine.OpEq, table.Str("MED BOX")),
		},
	}
	add(&Entry{Name: "B17", Q: q17, Boolean: true, Note: "avg-quantity subquery dropped"})

	// Q18: large volume customer — "very similar to our query from the
	// Introduction" (§VII): Cust ⋈ Ord ⋈ Item on ckey and okey with a very
	// selective condition on Cust; hierarchical only under okey → ckey.
	q18 := &Entry{Name: "18", Q: &query.Query{
		Head: []string{"cname", "odate", "oprice"},
		Rels: []query.RelRef{relCust(), relOrd(), itemNoCkey()},
		Sels: []query.Selection{sel("Cust", "cname", engine.OpEq, table.Str("Customer#000000001"))},
	}, Note: "sum(qty) HAVING dropped; keys okey/ckey removed from head; needs the FD okey→ckey"}
	add(q18)
	boolean("B18", q18, "Boolean variant of 18")

	// Q19: discounted revenue — a disjunction of three mutually exclusive
	// hierarchical conjunctions (§VI); the catalog carries the first
	// conjunct, the harness may evaluate all three and combine.
	q19 := &query.Query{
		Rels: []query.RelRef{relItem(), relPart()},
		Sels: []query.Selection{
			sel("Part", "brand", engine.OpEq, table.Str("Brand#12")),
			sel("Part", "container", engine.OpEq, table.Str("SM CASE")),
			sel("Item", "qty", engine.OpGe, table.Int(1)),
			sel("Item", "qty", engine.OpLe, table.Int(11)),
			sel("Item", "smode", engine.OpEq, table.Str("AIR")),
		},
	}
	add(&Entry{Name: "B19", Q: q19, Boolean: true, Note: "first of three mutually exclusive conjunctions"})

	// Q20: potential part promotion — Supp ⋈ Nation ⋈ Psupp; hierarchical
	// only under skey → nkey.
	q20 := &Entry{Name: "20", Q: &query.Query{
		Head: []string{"sname"},
		Rels: []query.RelRef{relSupp(), relNation(), relPsupp()},
		Sels: []query.Selection{sel("Nation", "nname", engine.OpEq, table.Str("CANADA"))},
	}, Note: "nested availability subqueries dropped; needs keys"}
	add(q20)

	// Q21: suppliers who kept orders waiting — Supp ⋈ Item ⋈ Nation (the
	// EXISTS/NOT EXISTS copies of Item are dropped with their inequality
	// joins); hierarchical under skey → nkey with skey kept in the head.
	q21 := &Entry{Name: "21", Q: &query.Query{
		Head: []string{"skey", "sname"},
		Rels: []query.RelRef{relSupp(), relItem(), relNation()},
		Sels: []query.Selection{sel("Nation", "nname", engine.OpEq, table.Str("SAUDI ARABIA"))},
	}, Note: "waiting-order EXISTS subqueries dropped"}
	add(q21)

	// Q22: global sales opportunity — removing its aggregations and
	// inequality subqueries leaves a simple selection on Cust (§VI).
	add(&Entry{Name: "22", Q: &query.Query{
		Head: []string{"ckey", "cacctbal"},
		Rels: []query.RelRef{relCust()},
		Sels: []query.Selection{sel("Cust", "cacctbal", engine.OpGt, table.Float(0))},
	}, Note: "reduces to a simple selection (§VI)"})

	return m
}

// itemNoCkey returns Item as used by queries joining it only through okey —
// real TPC-H lineitem has no custkey column (§I: "the table Item has no
// ckey attribute (as it is the case in real TPC-H)").
func itemNoCkey() query.RelRef { return relItem() }

// Fig9Queries lists the catalog names of the paper's Fig. 9 comparison.
func Fig9Queries() []string {
	return []string{"3", "10", "15", "16", "B17", "18", "20", "21"}
}

// Fig10Queries lists the catalog names of the paper's Fig. 10 lazy-plan
// timings.
func Fig10Queries() []string {
	return []string{"1", "B1", "2", "B3", "4", "B4", "B6", "7", "B10", "11", "B11", "12", "B12", "B14", "B15", "B16", "B18", "B19"}
}

// Classification summarizes the §VI case study for one query.
type Classification struct {
	Name             string
	Unsupported      string
	HierNoFDs        bool   // hierarchical signature exists without FDs
	HierWithFDs      bool   // hierarchical FD-reduct under the TPC-H keys
	SignatureNoFDs   string // "-" when none
	SignatureWithFDs string
	OneScanWithFDs   bool
	NumScansNoFDs    int
	NumScansWithFDs  int
}

// Classify performs the static analysis of §VI over the whole catalog.
func Classify() []Classification {
	cat := Catalog()
	names := make([]string, 0, len(cat))
	for n := range cat {
		names = append(names, n)
	}
	slices.Sort(names)
	var out []Classification
	for _, n := range names {
		e := cat[n]
		c := Classification{Name: n, Unsupported: e.Unsupported, SignatureNoFDs: "-", SignatureWithFDs: "-"}
		if e.Q != nil {
			if s, err := signature.Plain(e.Q); err == nil {
				c.HierNoFDs = true
				c.SignatureNoFDs = s.String()
				c.NumScansNoFDs = signature.NumScans(s)
			}
			sigma := FDsFor(e)
			if s, err := signature.WithFDs(e.Q, sigma); err == nil {
				c.HierWithFDs = true
				c.SignatureWithFDs = s.String()
				c.OneScanWithFDs = signature.OneScan(s)
				c.NumScansWithFDs = signature.NumScans(s)
			}
		}
		out = append(out, c)
	}
	return out
}

// sigmaOrEmpty is a tiny helper so callers can pass nil FDs.
func sigmaOrEmpty(s *fd.Set) *fd.Set {
	if s == nil {
		return fd.NewSet()
	}
	return s
}
