package tpch

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/plan"
	"repro/internal/signature"
	"repro/internal/table"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{SF: 0.001, Seed: 42})
	b := Generate(Config{SF: 0.001, Seed: 42})
	if a.Item.Rel.Len() != b.Item.Rel.Len() {
		t.Fatalf("same seed must give same sizes: %d vs %d", a.Item.Rel.Len(), b.Item.Rel.Len())
	}
	for i := 0; i < 10 && i < a.Item.Rel.Len(); i++ {
		if a.Item.Rel.Rows[i].String() != b.Item.Rel.Rows[i].String() {
			t.Fatalf("row %d differs across runs with same seed", i)
		}
	}
	c := Generate(Config{SF: 0.001, Seed: 43})
	if c.Item.Rel.Rows[0].String() == a.Item.Rel.Rows[0].String() {
		t.Error("different seeds should give different data")
	}
}

func TestGenerateScaling(t *testing.T) {
	small := Generate(Config{SF: 0.001, Seed: 1})
	big := Generate(Config{SF: 0.004, Seed: 1})
	if big.Cust.Rel.Len() <= small.Cust.Rel.Len() {
		t.Errorf("larger SF must give more customers: %d vs %d", big.Cust.Rel.Len(), small.Cust.Rel.Len())
	}
	if small.Region.Rel.Len() != 5 || small.Nation.Rel.Len() != 25 {
		t.Errorf("region/nation sizes fixed: %d/%d", small.Region.Rel.Len(), small.Nation.Rel.Len())
	}
	// Lineitems ≈ 40 per customer (10 orders × ~4 items).
	ratio := float64(small.Item.Rel.Len()) / float64(small.Ord.Rel.Len())
	if ratio < 2 || ratio > 7 {
		t.Errorf("items per order = %.1f, want ~4", ratio)
	}
}

func TestGeneratedProbabilitiesValid(t *testing.T) {
	d := Generate(Config{SF: 0.001, Seed: 7, ProbMin: 0.2, ProbMax: 0.9})
	if _, err := d.Assignment(); err != nil {
		t.Fatal(err)
	}
	for _, tb := range d.Tables() {
		pi := tb.Rel.Schema.ProbIndex(tb.Name)
		for _, row := range tb.Rel.Rows {
			if row[pi].F < 0.2 || row[pi].F > 0.9 {
				t.Fatalf("%s probability %g outside configured bounds", tb.Name, row[pi].F)
			}
		}
	}
	if d.NumVars <= 0 {
		t.Error("NumVars not tracked")
	}
}

func TestVariablesGloballyUnique(t *testing.T) {
	d := Generate(Config{SF: 0.001, Seed: 3})
	seen := make(map[int64]bool)
	for _, tb := range d.Tables() {
		vi := tb.Rel.Schema.VarIndex(tb.Name)
		for _, row := range tb.Rel.Rows {
			v := row[vi].I
			if seen[v] {
				t.Fatalf("variable %d reused across tuples", v)
			}
			seen[v] = true
		}
	}
}

func TestForeignKeysResolve(t *testing.T) {
	d := Generate(Config{SF: 0.001, Seed: 5})
	nCust := int64(d.Cust.Rel.Len())
	ci := d.Ord.Rel.Schema.MustColIndex("ckey")
	for _, row := range d.Ord.Rel.Rows {
		if row[ci].I < 0 || row[ci].I >= nCust {
			t.Fatalf("dangling ckey %d", row[ci].I)
		}
	}
	nOrd := int64(d.Ord.Rel.Len())
	oi := d.Item.Rel.Schema.MustColIndex("okey")
	for _, row := range d.Item.Rel.Rows {
		if row[oi].I < 0 || row[oi].I >= nOrd {
			t.Fatalf("dangling okey %d", row[oi].I)
		}
	}
}

func TestCatalogEntriesValidate(t *testing.T) {
	cat := Catalog()
	if len(cat) < 24 {
		t.Fatalf("catalog has %d entries, expected the 22 queries + Boolean variants", len(cat))
	}
	for name, e := range cat {
		if e.Unsupported != "" {
			if e.Q != nil {
				t.Errorf("%s: unsupported entries must have no query", name)
			}
			continue
		}
		if err := e.Q.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if e.Boolean != (len(e.Q.Head) == 0) {
			t.Errorf("%s: Boolean flag inconsistent with head %v", name, e.Q.Head)
		}
	}
	for _, n := range append(Fig9Queries(), Fig10Queries()...) {
		if cat[n] == nil || cat[n].Q == nil {
			t.Errorf("figure query %s missing from catalog", n)
		}
	}
}

// TestQ7SignatureMatchesPaper: the FD-reduct of query 7 has the signature
// Nation1 Supp (Nation2(Cust(Ord Item*)*)*)* quoted in Ex. V.9.
func TestQ7SignatureMatchesPaper(t *testing.T) {
	e := Catalog()["7"]
	s, err := signature.WithFDs(e.Q, FDsFor(e))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.ReplaceAll(s.String(), " ", "")
	want := "Nation1Supp(Nation2(Cust(OrdItem*)*)*)*"
	if got != want {
		t.Errorf("Q7 signature = %s, want %s", got, want)
	}
	if !signature.OneScan(s) {
		t.Error("Q7's signature must have the 1scan property (Ex. V.9)")
	}
}

// TestCaseStudySectionVI checks the paper's §VI statements on the catalog:
// queries 2, 11, 18, 20, 21 need the TPC-H keys; queries 5, 8, 9 admit no
// hierarchical FD-reduct; 13 is unsupported; 22 reduces to a selection.
func TestCaseStudySectionVI(t *testing.T) {
	byName := make(map[string]Classification)
	for _, c := range Classify() {
		byName[c.Name] = c
	}
	for _, n := range []string{"2", "11", "18", "20", "7"} {
		c := byName[n]
		if c.HierNoFDs {
			t.Errorf("query %s should not be hierarchical without FDs", n)
		}
		if !c.HierWithFDs {
			t.Errorf("query %s must become hierarchical under the TPC-H keys", n)
		}
	}
	// Q21 carries its supplier key in the head, so it is hierarchical even
	// without FDs; it must of course stay tractable with them.
	if !byName["21"].HierWithFDs {
		t.Error("query 21 must be tractable under the TPC-H keys")
	}
	for _, n := range []string{"5", "8", "9"} {
		c := byName[n]
		if c.HierNoFDs || c.HierWithFDs {
			t.Errorf("query %s must stay intractable (§VI)", n)
		}
	}
	if byName["13"].Unsupported == "" {
		t.Error("query 13 must be marked unsupported (outer join)")
	}
	c22 := byName["22"]
	if !c22.HierNoFDs {
		t.Error("query 22 (a simple selection) must be trivially hierarchical")
	}
	// Hierarchical-without-FDs queries include 1, 3, 4, 10, 12, 15, 16 and
	// the single-table/two-table Boolean variants.
	for _, n := range []string{"1", "3", "4", "10", "12", "15", "16", "B17", "B19"} {
		if !byName[n].HierNoFDs {
			t.Errorf("query %s should be hierarchical without FDs", n)
		}
	}
	// FDs never hurt: everything hierarchical without FDs stays
	// hierarchical with them (Prop. IV.5).
	for n, c := range byName {
		if c.HierNoFDs && !c.HierWithFDs {
			t.Errorf("query %s lost tractability under FDs", n)
		}
	}
}

// TestFDsReduceScans: with the TPC-H keys the signatures of figure queries
// need at most as many scans, and query 18's drops to one (the paper's
// guiding example).
func TestFDsReduceScans(t *testing.T) {
	for _, c := range Classify() {
		if c.HierNoFDs && c.HierWithFDs && c.NumScansWithFDs > c.NumScansNoFDs {
			t.Errorf("query %s: FDs increased scans %d -> %d", c.Name, c.NumScansNoFDs, c.NumScansWithFDs)
		}
	}
	byName := make(map[string]Classification)
	for _, c := range Classify() {
		byName[c.Name] = c
	}
	if got := byName["18"]; !got.OneScanWithFDs {
		t.Errorf("query 18 must be single-scan under FDs, got %+v", got)
	}
}

// TestFig9QueriesRunnable: every Fig. 9 query runs end-to-end with a lazy
// plan on a tiny instance.
func TestFig9QueriesRunnable(t *testing.T) {
	d := Generate(Config{SF: 0.002, Seed: 11})
	cat := d.Catalog()
	for _, n := range Fig9Queries() {
		e := Catalog()[n]
		res, err := plan.Run(cat, e.Q.Clone(), FDsFor(e), plan.Spec{Style: plan.Lazy})
		if err != nil {
			t.Errorf("query %s: %v", n, err)
			continue
		}
		for _, row := range res.Rows.Rows {
			c := row[len(row)-1].F
			if c < 0 || c > 1+1e-9 {
				t.Errorf("query %s: confidence %g outside [0,1]", n, c)
			}
		}
	}
}

// TestFig10QueriesRunnable: every Fig. 10 query runs end-to-end lazily.
func TestFig10QueriesRunnable(t *testing.T) {
	d := Generate(Config{SF: 0.002, Seed: 12})
	cat := d.Catalog()
	for _, n := range Fig10Queries() {
		e := Catalog()[n]
		res, err := plan.Run(cat, e.Q.Clone(), FDsFor(e), plan.Spec{Style: plan.Lazy})
		if err != nil {
			t.Errorf("query %s: %v", n, err)
			continue
		}
		if e.Boolean && res.Rows.Len() > 1 {
			t.Errorf("query %s: Boolean query returned %d rows", n, res.Rows.Len())
		}
	}
}

// TestPlanStylesAgreeOnTPCH: lazy, eager and hybrid agree on a non-trivial
// generated instance for representative queries.
func TestPlanStylesAgreeOnTPCH(t *testing.T) {
	d := Generate(Config{SF: 0.002, Seed: 13})
	cat := d.Catalog()
	for _, n := range []string{"4", "10", "12", "15", "18", "B17"} {
		e := Catalog()[n]
		lazy, err := plan.Run(cat, e.Q.Clone(), FDsFor(e), plan.Spec{Style: plan.Lazy})
		if err != nil {
			t.Fatalf("%s lazy: %v", n, err)
		}
		for _, style := range []plan.Style{plan.Eager, plan.Hybrid} {
			res, err := plan.Run(cat, e.Q.Clone(), FDsFor(e), plan.Spec{Style: style})
			if err != nil {
				t.Errorf("%s %v: %v", n, style, err)
				continue
			}
			if err := compareAnswers(lazy.Rows.Rows, res.Rows.Rows); err != nil {
				t.Errorf("%s: %v disagrees with lazy: %v", n, style, err)
			}
		}
	}
}

// compareAnswers checks two (head..., conf) row sets for equality modulo
// order, with a small numeric tolerance on the confidence column.
func compareAnswers(a, b []table.Tuple) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts differ: %d vs %d", len(a), len(b))
	}
	key := func(r table.Tuple) string {
		parts := make([]string, len(r)-1)
		for i := range parts {
			parts[i] = r[i].String()
		}
		return strings.Join(parts, "|")
	}
	am := make(map[string]float64, len(a))
	for _, r := range a {
		am[key(r)] = r[len(r)-1].F
	}
	for _, r := range b {
		want, ok := am[key(r)]
		if !ok {
			return fmt.Errorf("unexpected tuple %v", r)
		}
		got := r[len(r)-1].F
		if d := got - want; d > 1e-9 || d < -1e-9 {
			return fmt.Errorf("tuple %v: conf %g vs %g", r, got, want)
		}
	}
	return nil
}

func TestSigmaOrEmpty(t *testing.T) {
	if sigmaOrEmpty(nil) == nil {
		t.Error("nil should become empty set")
	}
	s := fd.NewSet()
	if sigmaOrEmpty(s) != s {
		t.Error("non-nil should pass through")
	}
}
