// Package tpch provides the workload substrate of the paper's evaluation
// (§VI, §VII): a deterministic TPC-H-like data generator producing
// tuple-independent probabilistic tables (each tuple carries a Boolean
// random variable with a randomly chosen probability), the TPC-H key
// functional dependencies, and the catalog of conjunctive subqueries of the
// 22 TPC-H queries used in the case study and the experiments.
//
// Attribute names are normalized across tables (ckey, okey, skey, pkey,
// nkey, rkey) following the paper's convention that join attributes share
// names (§II.B, Fig. 1).
package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/fd"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/table"
)

// Config controls data generation.
type Config struct {
	// SF is the TPC-H scale factor; SF 1 corresponds to ~6M lineitems. The
	// paper uses SF 1; the benchmarks here default to smaller factors with
	// the same distribution shapes.
	SF float64
	// Seed makes generation deterministic.
	Seed int64
	// ProbMin/ProbMax bound the randomly drawn tuple probabilities
	// ("choosing at random a probability distribution", §VII). Zero values
	// default to (0.01, 1).
	ProbMin, ProbMax float64
}

// Data holds the eight generated probabilistic tables.
type Data struct {
	Region, Nation, Supp, Part, Psupp, Cust, Ord, Item *table.ProbTable
	// NumVars is the total number of random variables issued.
	NumVars int
}

// Regions and nations follow TPC-H's fixed lists (nation names appear in
// query selections: FRANCE, GERMANY, CANADA, SAUDI ARABIA, ...).
var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationDefs = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"EGYPT", 4},
	{"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3}, {"INDIA", 2}, {"INDONESIA", 2},
	{"IRAN", 4}, {"IRAQ", 4}, {"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0},
	{"MOROCCO", 0}, {"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP PKG"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var returnFlags = []string{"R", "A", "N"}

// Generate builds the probabilistic TPC-H instance.
func Generate(cfg Config) *Data {
	if cfg.SF <= 0 {
		cfg.SF = 0.01
	}
	if cfg.ProbMin <= 0 {
		cfg.ProbMin = 0.01
	}
	if cfg.ProbMax <= 0 || cfg.ProbMax > 1 {
		cfg.ProbMax = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := &Data{}
	nextVar := prob.Var(0)
	newVar := func() prob.Var {
		nextVar++
		return nextVar
	}
	p := func() float64 {
		return cfg.ProbMin + (cfg.ProbMax-cfg.ProbMin)*r.Float64()
	}
	scale := func(n int) int {
		v := int(float64(n) * cfg.SF)
		if v < 1 {
			v = 1
		}
		return v
	}
	date := func(loYear, hiYear int) string {
		y := loYear + r.Intn(hiYear-loYear+1)
		m := 1 + r.Intn(12)
		day := 1 + r.Intn(28)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, day)
	}

	// Region(rkey, rname) — 5 rows at every scale.
	d.Region = table.NewProbTable("Region",
		table.DataCol("rkey", table.KindInt), table.DataCol("rname", table.KindString))
	for i, name := range regionNames {
		d.Region.MustAddRow(newVar(), p(), table.Int(int64(i)), table.Str(name))
	}

	// Nation(nkey, nname, rkey) — 25 rows.
	d.Nation = table.NewProbTable("Nation",
		table.DataCol("nkey", table.KindInt), table.DataCol("nname", table.KindString), table.DataCol("rkey", table.KindInt))
	for i, n := range nationDefs {
		d.Nation.MustAddRow(newVar(), p(), table.Int(int64(i)), table.Str(n.name), table.Int(int64(n.region)))
	}

	// Supp(skey, sname, nkey, sacctbal) — 10k·SF.
	nSupp := scale(10000)
	d.Supp = table.NewProbTable("Supp",
		table.DataCol("skey", table.KindInt), table.DataCol("sname", table.KindString),
		table.DataCol("nkey", table.KindInt), table.DataCol("sacctbal", table.KindFloat))
	for i := 0; i < nSupp; i++ {
		d.Supp.MustAddRow(newVar(), p(),
			table.Int(int64(i)), table.Str(fmt.Sprintf("Supplier#%09d", i)),
			table.Int(int64(r.Intn(len(nationDefs)))), table.Float(-999.99+10998.99*r.Float64()))
	}

	// Part(pkey, pname, brand, container, psize, rprice) — 200k·SF.
	nPart := scale(200000)
	d.Part = table.NewProbTable("Part",
		table.DataCol("pkey", table.KindInt), table.DataCol("pname", table.KindString),
		table.DataCol("brand", table.KindString), table.DataCol("container", table.KindString),
		table.DataCol("psize", table.KindInt), table.DataCol("rprice", table.KindFloat))
	for i := 0; i < nPart; i++ {
		d.Part.MustAddRow(newVar(), p(),
			table.Int(int64(i)), table.Str(fmt.Sprintf("Part#%09d", i)),
			table.Str(fmt.Sprintf("Brand#%d%d", 1+r.Intn(5), 1+r.Intn(5))),
			table.Str(containers[r.Intn(len(containers))]),
			table.Int(int64(1+r.Intn(50))), table.Float(900+float64(i%200000)/10))
	}

	// Psupp(pkey, skey, scost, aqty) — 4 suppliers per part.
	d.Psupp = table.NewProbTable("Psupp",
		table.DataCol("pkey", table.KindInt), table.DataCol("skey", table.KindInt),
		table.DataCol("scost", table.KindFloat), table.DataCol("aqty", table.KindInt))
	for i := 0; i < nPart; i++ {
		for j := 0; j < 4; j++ {
			d.Psupp.MustAddRow(newVar(), p(),
				table.Int(int64(i)), table.Int(int64((i+j*(nSupp/4+1))%nSupp)),
				table.Float(1+999*r.Float64()), table.Int(int64(1+r.Intn(9999))))
		}
	}

	// Cust(ckey, cname, nkey, cacctbal, mkt) — 150k·SF.
	nCust := scale(150000)
	d.Cust = table.NewProbTable("Cust",
		table.DataCol("ckey", table.KindInt), table.DataCol("cname", table.KindString),
		table.DataCol("nkey", table.KindInt), table.DataCol("cacctbal", table.KindFloat),
		table.DataCol("mkt", table.KindString))
	for i := 0; i < nCust; i++ {
		d.Cust.MustAddRow(newVar(), p(),
			table.Int(int64(i)), table.Str(fmt.Sprintf("Customer#%09d", i)),
			table.Int(int64(r.Intn(len(nationDefs)))), table.Float(-999.99+10998.99*r.Float64()),
			table.Str(segments[r.Intn(len(segments))]))
	}

	// Ord(okey, ckey, odate, oprice, opri) — 10 orders per customer.
	nOrd := nCust * 10
	d.Ord = table.NewProbTable("Ord",
		table.DataCol("okey", table.KindInt), table.DataCol("ckey", table.KindInt),
		table.DataCol("odate", table.KindString), table.DataCol("oprice", table.KindFloat),
		table.DataCol("opri", table.KindString))
	for i := 0; i < nOrd; i++ {
		d.Ord.MustAddRow(newVar(), p(),
			table.Int(int64(i)), table.Int(int64(r.Intn(nCust))),
			table.Str(date(1992, 1998)), table.Float(1000+454000*r.Float64()),
			table.Str(priorities[r.Intn(len(priorities))]))
	}

	// Item(okey, pkey, skey, qty, price, discount, sdate, smode, rflag) —
	// 1..7 lineitems per order (≈4 on average, like dbgen).
	d.Item = table.NewProbTable("Item",
		table.DataCol("okey", table.KindInt), table.DataCol("pkey", table.KindInt),
		table.DataCol("skey", table.KindInt), table.DataCol("qty", table.KindInt),
		table.DataCol("price", table.KindFloat), table.DataCol("discount", table.KindFloat),
		table.DataCol("sdate", table.KindString), table.DataCol("smode", table.KindString),
		table.DataCol("rflag", table.KindString))
	for i := 0; i < nOrd; i++ {
		n := 1 + r.Intn(7)
		for j := 0; j < n; j++ {
			d.Item.MustAddRow(newVar(), p(),
				table.Int(int64(i)), table.Int(int64(r.Intn(nPart))),
				table.Int(int64(r.Intn(nSupp))), table.Int(int64(1+r.Intn(50))),
				table.Float(900+104000*r.Float64()), table.Float(float64(r.Intn(11))/100),
				table.Str(date(1992, 1998)), table.Str(shipModes[r.Intn(len(shipModes))]),
				table.Str(returnFlags[r.Intn(len(returnFlags))]))
		}
	}
	d.NumVars = int(nextVar)
	return d
}

// Tables lists the generated tables.
func (d *Data) Tables() []*table.ProbTable {
	return []*table.ProbTable{d.Region, d.Nation, d.Supp, d.Part, d.Psupp, d.Cust, d.Ord, d.Item}
}

// Catalog registers all tables into a planner catalog.
func (d *Data) Catalog() *plan.Catalog {
	c := plan.NewCatalog()
	for _, t := range d.Tables() {
		c.MustAdd(t)
	}
	return c
}

// Assignment collects the variable probabilities of all tables (for small
// scale factors and oracle testing).
func (d *Data) Assignment() (*prob.Assignment, error) {
	a := prob.NewAssignment()
	for _, t := range d.Tables() {
		if err := t.Assignment(a); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// FDs returns the TPC-H key functional dependencies (§IV, §VI): every table
// key determines its remaining attributes. These are the Σ that turn the
// non-hierarchical queries 2, 11, 18, 20, 21 hierarchical and sharpen the
// signatures of the hierarchical ones.
func FDs() *fd.Set {
	s := fd.NewSet()
	s.AddKey("Region", []string{"rkey"}, []string{"rkey", "rname"})
	s.AddKey("Nation", []string{"nkey"}, []string{"nkey", "nname", "rkey"})
	s.AddKey("Supp", []string{"skey"}, []string{"skey", "sname", "nkey", "sacctbal"})
	s.AddKey("Part", []string{"pkey"}, []string{"pkey", "pname", "brand", "container", "psize", "rprice"})
	s.AddKey("Psupp", []string{"pkey", "skey"}, []string{"pkey", "skey", "scost", "aqty"})
	s.AddKey("Cust", []string{"ckey"}, []string{"ckey", "cname", "nkey", "cacctbal", "mkt"})
	s.AddKey("Ord", []string{"okey"}, []string{"okey", "ckey", "odate", "oprice", "opri"})
	return s
}
