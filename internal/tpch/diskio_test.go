package tpch

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/plan"
	"repro/internal/stats"
)

func removeSidecar(dir string) error {
	return os.Remove(filepath.Join(dir, stats.SidecarFile))
}

// TestHeapFileRoundTrip: generating, persisting to page-structured heap
// files, and loading back yields a catalog over which query results match
// the in-memory ones exactly — the full secondary-storage round trip.
func TestHeapFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mem := Generate(Config{SF: 0.002, Seed: 33})
	if err := mem.WriteHeapFiles(dir); err != nil {
		t.Fatal(err)
	}
	disk, err := LoadHeapFiles(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, tb := range mem.Tables() {
		dt := disk.Tables()[i]
		if tb.Rel.Len() != dt.Rel.Len() {
			t.Fatalf("%s: %d rows in memory, %d on disk", tb.Name, tb.Rel.Len(), dt.Rel.Len())
		}
	}
	// Same query, same answers.
	e := Catalog()["18"]
	sigma := FDsFor(e)
	memRes, err := plan.Run(mem.Catalog(), e.Q.Clone(), sigma, plan.Spec{Style: plan.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	diskRes, err := plan.Run(disk.Catalog(), e.Q.Clone(), sigma, plan.Spec{Style: plan.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	if err := compareAnswers(memRes.Rows.Rows, diskRes.Rows.Rows); err != nil {
		t.Fatal(err)
	}
}

func TestLoadHeapFilesMissingDir(t *testing.T) {
	if _, err := LoadHeapFiles(t.TempDir(), 8); err == nil {
		t.Error("loading from an empty directory must fail")
	}
}

// TestOpenDiskCatalog: a catalog whose tables stay on disk — scans paging
// through the buffer pool, statistics from the sidecar — answers queries
// with exactly the in-memory catalog's confidences, through both the
// columnar tier (default) and the forced row path, and reports the
// instance's world-variable count without scanning.
func TestOpenDiskCatalog(t *testing.T) {
	dir := t.TempDir()
	mem := Generate(Config{SF: 0.002, Seed: 33})
	if err := mem.WriteHeapFiles(dir); err != nil {
		t.Fatal(err)
	}
	cat, numVars, closeFiles, err := OpenDiskCatalog(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFiles()
	if numVars != mem.NumVars {
		t.Fatalf("numVars = %d, want %d (sidecar ceiling)", numVars, mem.NumVars)
	}
	for _, name := range []string{"1", "15", "18"} {
		e := Catalog()[name]
		sigma := FDsFor(e)
		memRes, err := plan.Run(mem.Catalog(), e.Q.Clone(), sigma, plan.Spec{Style: plan.Lazy})
		if err != nil {
			t.Fatalf("%s mem: %v", name, err)
		}
		for _, spec := range []plan.Spec{
			{Style: plan.Lazy},
			{Style: plan.Lazy, RowExec: true},
		} {
			diskRes, err := plan.Run(cat, e.Q.Clone(), sigma, spec)
			if err != nil {
				t.Fatalf("%s disk (rowExec=%v): %v", name, spec.RowExec, err)
			}
			if err := compareAnswers(memRes.Rows.Rows, diskRes.Rows.Rows); err != nil {
				t.Fatalf("%s (rowExec=%v): %v", name, spec.RowExec, err)
			}
		}
	}
	// Without the sidecar the catalog analyzes each heap file itself and
	// still lands on the same variable ceiling.
	if err := removeSidecar(dir); err != nil {
		t.Fatal(err)
	}
	cat2, numVars2, closeFiles2, err := OpenDiskCatalog(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFiles2()
	_ = cat2
	if numVars2 != mem.NumVars {
		t.Fatalf("numVars without sidecar = %d, want %d", numVars2, mem.NumVars)
	}
}
