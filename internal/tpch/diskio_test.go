package tpch

import (
	"testing"

	"repro/internal/plan"
)

// TestHeapFileRoundTrip: generating, persisting to page-structured heap
// files, and loading back yields a catalog over which query results match
// the in-memory ones exactly — the full secondary-storage round trip.
func TestHeapFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mem := Generate(Config{SF: 0.002, Seed: 33})
	if err := mem.WriteHeapFiles(dir); err != nil {
		t.Fatal(err)
	}
	disk, err := LoadHeapFiles(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, tb := range mem.Tables() {
		dt := disk.Tables()[i]
		if tb.Rel.Len() != dt.Rel.Len() {
			t.Fatalf("%s: %d rows in memory, %d on disk", tb.Name, tb.Rel.Len(), dt.Rel.Len())
		}
	}
	// Same query, same answers.
	e := Catalog()["18"]
	sigma := FDsFor(e)
	memRes, err := plan.Run(mem.Catalog(), e.Q.Clone(), sigma, plan.Spec{Style: plan.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	diskRes, err := plan.Run(disk.Catalog(), e.Q.Clone(), sigma, plan.Spec{Style: plan.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	if err := compareAnswers(memRes.Rows.Rows, diskRes.Rows.Rows); err != nil {
		t.Fatal(err)
	}
}

func TestLoadHeapFilesMissingDir(t *testing.T) {
	if _, err := LoadHeapFiles(t.TempDir(), 8); err == nil {
		t.Error("loading from an empty directory must fail")
	}
}
