package fault

import "time"

// Retry is a capped exponential backoff policy with deterministic jitter.
// The zero value disables retrying (single attempt). Jitter is derived
// from the seed and attempt number through splitmix64, never from a global
// RNG or the clock, so a faulted run replays identically from its seed.
type Retry struct {
	MaxAttempts int           // total attempts including the first; <= 1 disables retry
	Base        time.Duration // first backoff step (default 1ms when retrying)
	Max         time.Duration // backoff cap (default 100ms)
}

// Enabled reports whether the policy allows any retries at all.
func (r Retry) Enabled() bool { return r.MaxAttempts > 1 }

// Backoff returns the sleep before attempt (1-based count of failures so
// far): Base·2^(attempt-1) capped at Max, ±25% deterministic jitter.
func (r Retry) Backoff(seed int64, attempt int) time.Duration {
	base := r.Base
	if base <= 0 {
		base = time.Millisecond
	}
	max := r.Max
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter in [-25%, +25%), deterministic in (seed, attempt).
	j := mix(uint64(seed) + uint64(attempt)*0x9e3779b97f4a7c15)
	frac := float64(j%1024)/1024 - 0.5 // [-0.5, 0.5)
	d += time.Duration(frac * 0.5 * float64(d))
	if d < 0 {
		d = 0
	}
	return d
}
