// Package fault is the engine's robustness plane: deterministic fault
// injection for the storage layer, a hierarchical memory governor for the
// big allocators, typed panic capture for the worker pool, and a
// deterministic capped-exponential retry policy.
//
// The injection side is schedule-driven and fully seeded. A Plan holds an
// ordered set of Rules ("fail the 3rd write", "every sync on files matching
// 'run' returns ENOSPC, transiently, twice") plus per-op atomic counters;
// Decide consults the counters and returns a Decision — inject an error,
// truncate a write (short write / torn page), or add latency. The same seed
// always produces the same schedule, so a chaos failure reproduces from its
// seed alone.
//
// Injection is threaded through internal/storage behind a process-global
// hook (storage.SetIO) that costs one atomic pointer load when disarmed —
// the fault-free fast path stays allocation- and branch-clean. Errors
// surface as *Injected, which callers classify with IsInjected and
// IsTransient; transient faults are retried inside the storage wrappers
// under the installed IO's Retry policy before ever reaching a query.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"
)

// Op identifies a class of storage operation the fault plane can intercept.
type Op uint8

const (
	OpCreate Op = iota // file creation (heap files, spill runs)
	OpOpen             // opening an existing file
	OpRead             // positional page read
	OpWrite            // positional page write
	OpSync             // fsync / durability barrier
	OpRemove           // file removal
	numOps
)

var opNames = [numOps]string{"create", "open", "read", "write", "sync", "remove"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Kind is the flavour of an injected fault.
type Kind uint8

const (
	KindErr        Kind = iota // generic I/O error
	KindShortWrite             // write persists only a prefix, then errors
	KindTornPage               // write persists a torn prefix of a page
	KindENOSPC                 // device-full
	KindLatency                // no error; the op is delayed
)

var kindNames = [...]string{"io", "short-write", "torn-page", "enospc", "latency"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Injected is the typed error every injected fault surfaces as. Transient
// faults report themselves retryable; IsTransient drives both the
// storage-level retry loop and the plan-level run retry.
type Injected struct {
	Op        Op
	Kind      Kind
	Path      string
	Transient bool
}

func (e *Injected) Error() string {
	t := ""
	if e.Transient {
		t = " (transient)"
	}
	return fmt.Sprintf("fault: injected %s fault on %s %q%s", e.Kind, e.Op, e.Path, t)
}

// IsInjected reports whether err wraps an injected fault.
func IsInjected(err error) bool {
	var inj *Injected
	return errors.As(err, &inj)
}

// IsTransient reports whether err wraps a transient injected fault — one
// whose rule has burned out, so retrying the operation will succeed.
func IsTransient(err error) bool {
	var inj *Injected
	return errors.As(err, &inj) && inj.Transient
}

// Rule schedules one fault. The zero Nth matches every occurrence; a
// positive Nth fires on the Nth matching operation (1-based, counted per
// Op across the whole plan). Count bounds how many times the rule fires
// (0 means once); PathSubstr restricts the rule to paths containing the
// substring ("" matches all).
type Rule struct {
	Op         Op
	Kind       Kind
	Nth        int64         // 1-based trigger point; 0 = every matching op
	Count      int64         // max firings; 0 = once
	Transient  bool          // retrying succeeds once the rule burns out
	PathSubstr string        // "" matches every path
	Delay      time.Duration // for KindLatency, or extra latency on any kind
}

// Decision is the outcome of consulting the plan for one operation.
type Decision struct {
	Err   error         // non-nil: the op fails with this error
	Short int           // >= 0 with a write fault: persist only this prefix
	Delay time.Duration // sleep before performing (or failing) the op
}

// Plan is a seeded, deterministic fault schedule. Decide is safe for
// concurrent use; counters are atomic and rules fire in declaration order
// (first match wins).
type Plan struct {
	Seed  int64
	rules []Rule
	// fired is parallel to rules (Rule stays a plain copyable value; its
	// firing counter lives here).
	fired   []atomic.Int64
	counts  [numOps]atomic.Int64
	injured atomic.Int64 // total injected faults
}

// NewPlan builds a plan from an explicit rule schedule.
func NewPlan(seed int64, rules ...Rule) *Plan {
	return &Plan{Seed: seed, rules: rules, fired: make([]atomic.Int64, len(rules))}
}

// RandomPlan derives a randomized but fully deterministic schedule from
// seed: a handful of rules spread over the op space, biased toward
// transient faults (so retry machinery gets exercised) with occasional hard
// faults and short writes. Two calls with equal seeds yield equal plans.
func RandomPlan(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(4)
	rules := make([]Rule, 0, n)
	for i := 0; i < n; i++ {
		r := Rule{
			Op:        Op(rng.Intn(int(numOps))),
			Nth:       int64(1 + rng.Intn(40)),
			Count:     int64(1 + rng.Intn(2)),
			Transient: rng.Float64() < 0.7,
		}
		switch rng.Intn(5) {
		case 0:
			r.Kind = KindENOSPC
		case 1:
			if r.Op == OpWrite {
				r.Kind = KindShortWrite
			} else {
				r.Kind = KindErr
			}
		case 2:
			r.Kind = KindLatency
			r.Delay = time.Duration(rng.Intn(200)) * time.Microsecond
		default:
			r.Kind = KindErr
		}
		rules = append(rules, r)
	}
	return NewPlan(seed, rules...)
}

// Injected reports how many faults the plan has injected so far.
func (p *Plan) Injected() int64 {
	if p == nil {
		return 0
	}
	return p.injured.Load()
}

// Decide consults the schedule for one operation. size is the payload
// length for writes (used to derive torn-page prefixes deterministically);
// pass 0 for non-write ops.
func (p *Plan) Decide(op Op, path string, size int) Decision {
	if p == nil {
		return Decision{Short: -1}
	}
	n := p.counts[op].Add(1)
	for i := range p.rules {
		r := &p.rules[i]
		if r.Op != op {
			continue
		}
		if r.PathSubstr != "" && !strings.Contains(path, r.PathSubstr) {
			continue
		}
		if r.Nth != 0 && n < r.Nth {
			continue
		}
		max := r.Count
		if max == 0 {
			max = 1
		}
		if p.fired[i].Add(1) > max {
			continue
		}
		if r.Kind == KindLatency {
			return Decision{Short: -1, Delay: r.Delay}
		}
		p.injured.Add(1)
		d := Decision{
			Err:   &Injected{Op: op, Kind: r.Kind, Path: path, Transient: r.Transient},
			Short: -1,
			Delay: r.Delay,
		}
		if op == OpWrite && (r.Kind == KindShortWrite || r.Kind == KindTornPage) {
			// Deterministic torn prefix: derived from the plan seed and the
			// op ordinal, never from the clock.
			if size > 0 {
				d.Short = int(mix(uint64(p.Seed)^uint64(n)) % uint64(size))
			} else {
				d.Short = 0
			}
		}
		return d
	}
	return Decision{Short: -1}
}

// mix is splitmix64's finalizer — the repo's standard cheap bijective
// mixer, reused here for torn-page offsets and retry jitter.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// IO bundles a fault plan with the storage-level retry policy and exposes
// retry accounting. Install with storage.SetIO; a nil *IO disarms the
// plane entirely.
type IO struct {
	Plan  *Plan
	Retry Retry
	// Sleep substitutes for time.Sleep in latency injection and retry
	// backoff; nil means real sleeping. Tests inject a recorder.
	Sleep func(time.Duration)

	retries atomic.Int64
}

// Retries reports how many transient faults the storage wrappers retried.
func (io *IO) Retries() int64 {
	if io == nil {
		return 0
	}
	return io.retries.Load()
}

// CountRetry records one storage-level retry (called by the wrappers).
func (io *IO) CountRetry() { io.retries.Add(1) }

// Pause sleeps for d via the configured Sleep function (real time.Sleep
// when nil). Used by the storage wrappers for injected latency and retry
// backoff.
func (io *IO) Pause(d time.Duration) {
	if d <= 0 {
		return
	}
	if io.Sleep != nil {
		io.Sleep(d)
		return
	}
	time.Sleep(d)
}
