package fault

import (
	"errors"
	"fmt"
)

// PanicError wraps a recovered operator panic into a typed query error.
// The worker pool recovers at the task boundary, so a panicking operator
// fails its own query without poisoning the shared Engine or leaking a
// worker slot; the original panic value and stack ride along for
// diagnosis.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("fault: recovered panic: %v", e.Value)
}

// IsPanic reports whether err wraps a recovered panic and returns it.
func IsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}
