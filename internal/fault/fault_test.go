package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPlanDeterministic: two plans built from the same seed make identical
// decisions over an identical op stream.
func TestPlanDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := RandomPlan(seed), RandomPlan(seed)
		for i := 0; i < 200; i++ {
			op := Op(i % int(numOps))
			path := fmt.Sprintf("file%d.heap", i%3)
			da := a.Decide(op, path, 4096)
			db := b.Decide(op, path, 4096)
			if (da.Err == nil) != (db.Err == nil) || da.Short != db.Short || da.Delay != db.Delay {
				t.Fatalf("seed %d op %d: decisions diverge: %+v vs %+v", seed, i, da, db)
			}
			if da.Err != nil && da.Err.Error() != db.Err.Error() {
				t.Fatalf("seed %d op %d: errors diverge", seed, i)
			}
		}
	}
}

// TestRuleNthAndCount: a rule fires exactly at its trigger point and at
// most Count times.
func TestRuleNthAndCount(t *testing.T) {
	p := NewPlan(1, Rule{Op: OpWrite, Nth: 3, Count: 2, Kind: KindENOSPC})
	var hits []int
	for i := 1; i <= 6; i++ {
		if d := p.Decide(OpWrite, "x", 128); d.Err != nil {
			hits = append(hits, i)
		}
	}
	if len(hits) != 2 || hits[0] != 3 || hits[1] != 4 {
		t.Fatalf("rule fired at %v, want [3 4]", hits)
	}
	if p.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", p.Injected())
	}
}

// TestPathSubstrScoping: a path-scoped rule ignores other files.
func TestPathSubstrScoping(t *testing.T) {
	p := NewPlan(1, Rule{Op: OpRemove, PathSubstr: "run", Kind: KindErr})
	if d := p.Decide(OpRemove, "base.heap", 0); d.Err != nil {
		t.Fatal("rule must not fire on non-matching path")
	}
	if d := p.Decide(OpRemove, "spill-run3.heap", 0); d.Err == nil {
		t.Fatal("rule must fire on matching path")
	}
}

// TestInjectedTaxonomy: IsInjected and IsTransient see through wrapping.
func TestInjectedTaxonomy(t *testing.T) {
	base := &Injected{Op: OpRead, Kind: KindErr, Path: "x", Transient: true}
	wrapped := fmt.Errorf("scan: %w", base)
	if !IsInjected(wrapped) || !IsTransient(wrapped) {
		t.Fatal("wrapped transient injected fault not classified")
	}
	hard := fmt.Errorf("scan: %w", &Injected{Op: OpRead, Kind: KindENOSPC})
	if !IsInjected(hard) || IsTransient(hard) {
		t.Fatal("hard fault misclassified")
	}
	if IsInjected(errors.New("plain")) || IsTransient(nil) {
		t.Fatal("plain errors must not classify as injected")
	}
}

// TestShortWriteDeterministic: torn-page prefixes are a pure function of
// the seed and op ordinal, and always shorter than the payload.
func TestShortWriteDeterministic(t *testing.T) {
	mk := func() Decision {
		p := NewPlan(7, Rule{Op: OpWrite, Nth: 2, Kind: KindShortWrite})
		p.Decide(OpWrite, "x", 4096)
		return p.Decide(OpWrite, "x", 4096)
	}
	a, b := mk(), mk()
	if a.Err == nil || a.Short < 0 || a.Short >= 4096 {
		t.Fatalf("short write decision %+v out of range", a)
	}
	if a.Short != b.Short {
		t.Fatalf("torn prefix nondeterministic: %d vs %d", a.Short, b.Short)
	}
}

// TestRetryBackoff: capped exponential with deterministic jitter.
func TestRetryBackoff(t *testing.T) {
	r := Retry{MaxAttempts: 5, Base: time.Millisecond, Max: 8 * time.Millisecond}
	if !r.Enabled() {
		t.Fatal("policy with MaxAttempts=5 must be enabled")
	}
	if (Retry{}).Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := r.Backoff(42, attempt)
		d2 := r.Backoff(42, attempt)
		if d != d2 {
			t.Fatalf("attempt %d: jitter nondeterministic (%v vs %v)", attempt, d, d2)
		}
		if d < 0 || d > 10*time.Millisecond { // 8ms cap + 25% jitter
			t.Fatalf("attempt %d: backoff %v out of bounds", attempt, d)
		}
		if attempt <= 4 && d <= prev/4 {
			t.Fatalf("attempt %d: backoff %v not growing from %v", attempt, d, prev)
		}
		prev = d
	}
}

// TestGovernorBasics: nil receiver is unlimited; reservations charge and
// release; denial trips Pressured.
func TestGovernorBasics(t *testing.T) {
	var nilG *Governor
	if !nilG.TryReserve(1 << 40) {
		t.Fatal("nil governor must admit everything")
	}
	nilG.Release(1 << 40)
	if nilG.Pressured() || nilG.Used() != 0 {
		t.Fatal("nil governor must be inert")
	}

	g := NewGovernor(100, nil)
	if !g.TryReserve(60) || !g.TryReserve(40) {
		t.Fatal("reservations within limit must succeed")
	}
	if g.TryReserve(1) {
		t.Fatal("reservation over limit must fail")
	}
	if !g.Pressured() || g.Denials() != 1 {
		t.Fatalf("denials = %d, want 1", g.Denials())
	}
	g.Release(40)
	if g.Used() != 60 || g.Remaining() != 40 {
		t.Fatalf("used=%d remaining=%d after release", g.Used(), g.Remaining())
	}
	if g.HighWater() != 100 {
		t.Fatalf("high water %d, want 100", g.HighWater())
	}
	if err := g.Reserve(1000); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("Reserve over limit: %v, want ErrMemoryBudget", err)
	}
}

// TestGovernorHierarchy: a child reservation must clear the parent too,
// and a parent denial rolls the child charge back atomically.
func TestGovernorHierarchy(t *testing.T) {
	parent := NewGovernor(100, nil)
	a := NewGovernor(0, parent) // counting-only child
	b := NewGovernor(0, parent)
	if !a.TryReserve(70) {
		t.Fatal("child A within parent limit")
	}
	if b.TryReserve(50) {
		t.Fatal("child B must be denied by the shared parent")
	}
	if a.Used() != 70 || b.Used() != 0 || parent.Used() != 70 {
		t.Fatalf("rollback broken: a=%d b=%d parent=%d", a.Used(), b.Used(), parent.Used())
	}
	a.Release(70)
	if parent.Used() != 0 {
		t.Fatalf("parent not released: %d", parent.Used())
	}
}

// TestGovernorConcurrent: hammering one governor from many goroutines
// never exceeds the limit and balances to zero.
func TestGovernorConcurrent(t *testing.T) {
	g := NewGovernor(1000, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if g.TryReserve(7) {
					if g.Used() > 1000 {
						panic("limit exceeded")
					}
					g.Release(7)
				}
			}
		}()
	}
	wg.Wait()
	if g.Used() != 0 {
		t.Fatalf("unbalanced: %d", g.Used())
	}
	if g.HighWater() > 1000 {
		t.Fatalf("high water %d exceeds limit", g.HighWater())
	}
}

// TestPanicError: typed panic classification.
func TestPanicError(t *testing.T) {
	pe := &PanicError{Value: "boom", Stack: []byte("stack")}
	wrapped := fmt.Errorf("query: %w", pe)
	got, ok := IsPanic(wrapped)
	if !ok || got.Value != "boom" {
		t.Fatalf("IsPanic(%v) = %v, %v", wrapped, got, ok)
	}
	if _, ok := IsPanic(errors.New("no")); ok {
		t.Fatal("plain error classified as panic")
	}
}
