package fault

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrMemoryBudget is the typed error surfaced when an allocation cannot be
// admitted and the caller has no cheaper mode to fall back to.
var ErrMemoryBudget = errors.New("fault: memory budget exhausted")

// Governor is a hierarchical memory-budget accountant. The big allocators
// (sort buffers, hash-join build sides, compiler arenas, sampler buffers)
// reserve bytes before growing and release them when done; on denial they
// degrade — spill earlier, switch join strategy, shrink node budgets,
// draw fewer samples — instead of OOMing.
//
// A nil *Governor is a valid unlimited governor: every method is a
// nil-receiver fast path, so ungoverned queries pay one nil check per
// charge and nothing else. Per-query governors chain to a per-engine
// parent; a reservation must clear every level or it fails atomically.
type Governor struct {
	limit  int64
	parent *Governor

	used    atomic.Int64
	high    atomic.Int64
	denials atomic.Int64
}

// NewGovernor builds a governor admitting at most limit bytes, optionally
// chained to a parent (engine-wide) governor. limit <= 0 means unlimited
// at this level (useful for a counting-only child of a limited parent).
func NewGovernor(limit int64, parent *Governor) *Governor {
	return &Governor{limit: limit, parent: parent}
}

// TryReserve admits n bytes at this level and every ancestor, atomically:
// either all levels are charged or none. Returns false on denial.
func (g *Governor) TryReserve(n int64) bool {
	if g == nil || n <= 0 {
		return true
	}
	for {
		u := g.used.Load()
		if g.limit > 0 && u+n > g.limit {
			g.denials.Add(1)
			return false
		}
		if g.used.CompareAndSwap(u, u+n) {
			break
		}
	}
	if !g.parent.TryReserve(n) {
		g.used.Add(-n)
		g.denials.Add(1)
		return false
	}
	for {
		h := g.high.Load()
		u := g.used.Load()
		if u <= h || g.high.CompareAndSwap(h, u) {
			return true
		}
	}
}

// Reserve is TryReserve or ErrMemoryBudget.
func (g *Governor) Reserve(n int64) error {
	if g.TryReserve(n) {
		return nil
	}
	return fmt.Errorf("%w: %d bytes over limit %d", ErrMemoryBudget, n, g.Limit())
}

// Release returns n bytes at this level and every ancestor.
func (g *Governor) Release(n int64) {
	if g == nil || n <= 0 {
		return
	}
	g.used.Add(-n)
	g.parent.Release(n)
}

// Used reports the bytes currently reserved at this level.
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// HighWater reports the peak reservation seen at this level.
func (g *Governor) HighWater() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// Limit reports the byte limit at this level (0 = unlimited).
func (g *Governor) Limit() int64 {
	if g == nil {
		return 0
	}
	return g.limit
}

// Denials reports how many reservations this level has refused (including
// refusals on behalf of an ancestor).
func (g *Governor) Denials() int64 {
	if g == nil {
		return 0
	}
	return g.denials.Load()
}

// Pressured reports whether any reservation has been denied — the signal
// the planner folds into Stats.Degraded.
func (g *Governor) Pressured() bool { return g.Denials() > 0 }

// Remaining reports the headroom at this level alone (unlimited levels
// report the most restrictive ancestor's headroom, or MaxInt64).
func (g *Governor) Remaining() int64 {
	if g == nil {
		return int64(^uint64(0) >> 1)
	}
	rem := int64(^uint64(0) >> 1)
	if g.limit > 0 {
		rem = g.limit - g.used.Load()
		if rem < 0 {
			rem = 0
		}
	}
	if p := g.parent.Remaining(); p < rem {
		rem = p
	}
	return rem
}
