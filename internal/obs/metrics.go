package obs

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counterShards is the number of padded slots a Counter spreads its value
// over. Callers that hold a shard index (pool workers) add to their own
// slot and never contend; Value sums the slots.
const counterShards = 16

// pad64 keeps adjacent shard slots on distinct cache lines so concurrent
// adds from different workers do not false-share.
type pad64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded atomic counter. The zero
// value is unusable; get one from Registry.Counter. A nil *Counter is a
// valid no-op sink.
type Counter struct {
	shards [counterShards]pad64
}

// Add increments the counter by d on shard 0. Use AddShard from
// per-worker code to avoid contention.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.shards[0].v.Add(d)
}

// AddShard increments the counter by d on the shard selected by hint
// (any int; reduced modulo the shard count). Workers pass their worker
// index so parallel increments land on distinct cache lines.
func (c *Counter) AddShard(hint int, d int64) {
	if c == nil {
		return
	}
	c.shards[uint(hint)%counterShards].v.Add(d)
}

// Value returns the summed count across all shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		n += c.shards[i].v.Load()
	}
	return n
}

// Gauge is an instantaneous value (e.g. in-flight queries). A nil *Gauge
// is a valid no-op sink.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (d may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets is the default latency histogram layout: upper bounds in
// seconds from 100µs to 100s, roughly ×3 apart.
var DefBuckets = []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 100}

// Histogram is a fixed-bucket latency histogram. Observations are
// seconds; the running sum is kept in integer microseconds so Observe is
// two atomic adds and no locks. A nil *Histogram is a valid no-op sink.
type Histogram struct {
	bounds    []float64 // ascending upper bounds; len(counts) == len(bounds)+1
	counts    []atomic.Int64
	sumMicros atomic.Int64
}

// Observe records one value (in seconds).
func (h *Histogram) Observe(seconds float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i].Add(1)
	h.sumMicros.Add(int64(seconds * 1e6))
}

// ObserveSince records the elapsed time since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Registry is a named collection of metrics. Get one with New; a nil
// *Registry is valid and hands out nil (no-op) metrics, so callers
// thread a possibly-nil registry through without branching.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	rotor  atomic.Int64
}

// New returns an empty metrics registry.
func New() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// ShardHint returns a fresh shard hint. Sequential queries rotate over
// the shards so even single-threaded callers spread their adds.
func (r *Registry) ShardHint() int {
	if r == nil {
		return 0
	}
	return int(r.rotor.Add(1))
}

// Counter returns (registering on first use) the named counter. Nil
// registry → nil counter, which is a no-op sink.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given bucket bounds (DefBuckets when none are supplied). Bounds
// are fixed at first registration.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// HistSnapshot is a point-in-time histogram reading.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is the overflow bucket
	Count  int64     `json:"count"`
	SumSec float64   `json:"sum_sec"`
}

// Snapshot is a point-in-time reading of a whole registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot reads every metric. Nil registry → empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
			hs.Count += hs.Counts[i]
		}
		hs.SumSec = float64(h.sumMicros.Load()) / 1e6
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as deterministic (key-sorted) JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("{\n  \"counters\": {")
	for i, k := range sortedKeys(s.Counters) {
		p("%s\n    %q: %d", comma(i), k, s.Counters[k])
	}
	p("\n  },\n  \"gauges\": {")
	for i, k := range sortedKeys(s.Gauges) {
		p("%s\n    %q: %d", comma(i), k, s.Gauges[k])
	}
	p("\n  },\n  \"histograms\": {")
	hkeys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hkeys = append(hkeys, k)
	}
	slices.Sort(hkeys)
	for i, k := range hkeys {
		h := s.Histograms[k]
		p("%s\n    %q: {\"count\": %d, \"sum_sec\": %g, \"buckets\": {", comma(i), k, h.Count, h.SumSec)
		for j, b := range h.Bounds {
			p("%s\"le_%g\": %d", comma(j), b, h.Counts[j])
		}
		p("%s\"le_inf\": %d}}", comma(len(h.Bounds)), h.Counts[len(h.Bounds)])
	}
	p("\n  }\n}\n")
	return err
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

func comma(i int) string {
	if i == 0 {
		return ""
	}
	return ","
}
