package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Handler returns an HTTP mux exposing the registry and the process:
//
//	/metrics       registry snapshot plus runtime_* stats, as JSON
//	/healthz       {"status":"ok","uptime_sec":...}
//	/debug/pprof/  the standard pprof index (profile, heap, trace, ...)
//	/debug/vars    expvar
//
// reg may be nil (metrics report empty). The handler is safe for
// concurrent use; wire it behind an opt-in flag (sprout-bench -listen).
func Handler(reg *Registry) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s := reg.Snapshot()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.Gauges["runtime_goroutines"] = int64(runtime.NumGoroutine())
		s.Gauges["runtime_heap_alloc_bytes"] = int64(ms.HeapAlloc)
		s.Counters["runtime_num_gc"] = int64(ms.NumGC)
		s.Counters["runtime_total_alloc_bytes"] = int64(ms.TotalAlloc)
		_ = s.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\": \"ok\", \"uptime_sec\": %.1f}\n", time.Since(start).Seconds())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "sprout obs: /metrics /healthz /debug/pprof/ /debug/vars\n")
	})
	return mux
}

// Serve starts Handler on addr in a background goroutine and returns
// the server (for Shutdown) and the bound address (useful with ":0").
func Serve(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
