// Package obs is SPROUT's observability layer: a low-overhead metrics
// registry, per-query execution traces, and an HTTP exposition handler.
//
// The three pieces are independent and individually opt-in:
//
//   - Registry holds named counters, gauges and fixed-bucket latency
//     histograms. Counters are sharded across padded cache lines so a
//     hot-path increment is a single uncontended atomic add; a nil
//     *Registry (and every metric handed out by one) is a valid no-op,
//     so instrumented code never branches on "metrics enabled".
//
//   - Trace is a per-query span tree collected during plan lowering and
//     execution: per-operator row/batch counts, lineage statistics,
//     OBDD/d-tree compilation detail and Monte Carlo sampler detail.
//     Attributes are either structural (deterministic for a given query
//     and database, identical across worker counts and batch sizes) or
//     loose (timings, scheduling-dependent counts); Trace.Fingerprint
//     renders only the structural part, which tests pin bit-identical
//     across worker counts.
//
//   - Handler serves a Registry as expvar-style JSON under /metrics,
//     plus /debug/pprof and a /healthz endpoint, for profiling a live
//     run (see sprout-bench -listen).
//
// The package deliberately imports nothing from the rest of the engine,
// so every layer (engine, conf, obdd, dtree, prob, plan) may depend on
// it.
package obs
