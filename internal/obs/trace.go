package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Attr is one key/value annotation on a trace span. Structural
// attributes (row counts, clauses, OBDD nodes, memo hits, ...) are
// deterministic for a given query and database — identical whatever the
// worker count or batch size — and are the part pinned by the
// determinism tests. Loose attributes (durations, batch counts, spill
// files, physical operator choices) may vary run to run.
type Attr struct {
	Key        string
	Val        string
	Structural bool
}

// Span is one node of a query trace: a plan operator, an eager
// confidence-computation step, or a probability tier. The zero span is
// unusable; create children with Child. All methods are nil-safe so
// instrumented code can run with tracing off at zero branching cost at
// the call site.
type Span struct {
	Name     string
	Dur      time.Duration
	Attrs    []Attr
	Children []*Span
}

// Child appends and returns a new child span. Nil receiver → nil child
// (all of whose methods are no-ops too).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name}
	s.Children = append(s.Children, c)
	return c
}

// SetDur records the span's duration (a loose attribute, rendered only
// with timings enabled).
func (s *Span) SetDur(d time.Duration) {
	if s == nil {
		return
	}
	s.Dur = d
}

func (s *Span) put(key, val string, structural bool) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: val, Structural: structural})
	return s
}

// Int records a structural integer attribute.
func (s *Span) Int(key string, v int64) *Span { return s.put(key, strconv.FormatInt(v, 10), true) }

// Float records a structural float attribute.
func (s *Span) Float(key string, v float64) *Span {
	return s.put(key, strconv.FormatFloat(v, 'g', -1, 64), true)
}

// Str records a structural string attribute.
func (s *Span) Str(key, v string) *Span { return s.put(key, v, true) }

// LooseInt records a non-structural integer attribute (may vary with
// worker count, batch size or scheduling).
func (s *Span) LooseInt(key string, v int64) *Span {
	return s.put(key, strconv.FormatInt(v, 10), false)
}

// LooseStr records a non-structural string attribute.
func (s *Span) LooseStr(key, v string) *Span { return s.put(key, v, false) }

// Trace is a per-query execution trace: identification plus the span
// tree. Collected by internal/plan when Spec.Trace is set; attached to
// plan.Stats.Trace.
type Trace struct {
	Query   string `json:"query"`
	Style   string `json:"style"`
	Workers int    `json:"workers"` // loose: whatever the spec requested
	Root    *Span  `json:"root"`
}

// NewTrace returns a trace whose root span carries the query name.
func NewTrace(query, style string, workers int) *Trace {
	return &Trace{Query: query, Style: style, Workers: workers, Root: &Span{Name: "query " + query}}
}

// Render formats the span tree in the Explain style: one line per span,
// two-space indentation per depth, attributes as key=value. With
// timings=false, durations and loose attributes are omitted — the
// result is the structural trace, deterministic across worker counts.
func (t *Trace) Render(timings bool) string {
	if t == nil || t.Root == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %s [%s]", t.Query, t.Style)
	if timings {
		fmt.Fprintf(&b, " workers=%d", t.Workers)
	}
	attrs := func(s *Span) {
		for _, a := range s.Attrs {
			if !a.Structural && !timings {
				continue
			}
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
		}
		if timings && s.Dur > 0 {
			fmt.Fprintf(&b, " (%.4fs)", s.Dur.Seconds())
		}
	}
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name)
		attrs(s)
		b.WriteString("\n")
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	// The root span's identity is the header itself: its attributes join
	// the header line and its children start at depth 0.
	attrs(t.Root)
	b.WriteString("\n")
	for _, c := range t.Root.Children {
		walk(c, 0)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Fingerprint is the structural rendering (no timings, no loose
// attributes): bit-identical across worker counts and batch sizes for
// the same query, database and style.
func (t *Trace) Fingerprint() string { return t.Render(false) }

// spanJSON is the serialized form of a Span: structural attributes under
// "attrs", loose ones under "loose", duration in seconds.
type spanJSON struct {
	Name     string            `json:"name"`
	DurSec   float64           `json:"dur_sec,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Loose    map[string]string `json:"loose,omitempty"`
	Children []*Span           `json:"children,omitempty"`
}

// MarshalJSON serializes the span with structural and loose attributes
// separated, so downstream consumers (sprout-bench artifacts) can diff
// structural parts across runs.
func (s *Span) MarshalJSON() ([]byte, error) {
	j := spanJSON{Name: s.Name, DurSec: s.Dur.Seconds(), Children: s.Children}
	for _, a := range s.Attrs {
		if a.Structural {
			if j.Attrs == nil {
				j.Attrs = map[string]string{}
			}
			j.Attrs[a.Key] = a.Val
		} else {
			if j.Loose == nil {
				j.Loose = map[string]string{}
			}
			j.Loose[a.Key] = a.Val
		}
	}
	return json.Marshal(j)
}

// JSON renders the whole trace as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(t, "", "  ")
}
