package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterShardedSum(t *testing.T) {
	r := New()
	c := r.Counter("rows")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddShard(w, 1)
			}
		}(w)
	}
	wg.Wait()
	c.Add(5)
	if got := c.Value(); got != 8005 {
		t.Fatalf("counter = %d, want 8005", got)
	}
	if r.Counter("rows") != c {
		t.Fatal("Counter must return the same instance per name")
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Counter("x").AddShard(3, 1)
	r.Gauge("g").Add(1)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(0.1)
	r.Histogram("h").ObserveSince(time.Now())
	if r.ShardHint() != 0 {
		t.Fatal("nil ShardHint must be 0")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", 0.01, 0.1, 1)
	for _, v := range []float64{0.001, 0.05, 0.5, 5, 0.02} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	want := []int64{1, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.SumSec < 5.5 || s.SumSec > 5.6 {
		t.Fatalf("sum = %g, want ≈5.571", s.SumSec)
	}
}

// TestMetricsAllocs pins the hot-path cost of the metrics layer: counter
// and gauge increments and histogram observations must not allocate —
// with a live registry or with a nil one.
func TestMetricsAllocs(t *testing.T) {
	r := New()
	c := r.Counter("hot")
	g := r.Gauge("inflight")
	h := r.Histogram("lat")
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		c.AddShard(7, 1)
		g.Add(1)
		h.Observe(0.003)
	}); n != 0 {
		t.Fatalf("live metrics hot path allocates %v per op, want 0", n)
	}
	var nilReg *Registry
	nc, ng, nh := nilReg.Counter("x"), nilReg.Gauge("x"), nilReg.Histogram("x")
	if n := testing.AllocsPerRun(100, func() {
		nc.Add(1)
		ng.Add(1)
		nh.Observe(0.003)
	}); n != 0 {
		t.Fatalf("nil metrics hot path allocates %v per op, want 0", n)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(7)
	r.Histogram("h", 0.1, 1).Observe(0.05)
	var b1, b2 strings.Builder
	if err := r.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("snapshot JSON must be deterministic")
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(b1.String()), &parsed); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, b1.String())
	}
	if !strings.Contains(b1.String(), `"a": 1`) || !strings.Contains(b1.String(), `"b": 2`) {
		t.Fatalf("missing counters in %s", b1.String())
	}
}

func TestTraceRenderAndFingerprint(t *testing.T) {
	tr := NewTrace("Q6", "lazy", 4)
	ans := tr.Root.Child("answer")
	ans.Int("rows", 42).LooseInt("batches", 3)
	ans.SetDur(1500 * time.Microsecond)
	scan := ans.Child("scan Item")
	scan.Int("rows_out", 100)
	conf := tr.Root.Child("conf[sort+scan]")
	conf.Int("distinct", 7).Str("sig", "{a}{b}")

	full := tr.Render(true)
	for _, want := range []string{"trace: Q6 [lazy] workers=4", "answer rows=42 batches=3 (0.0015s)", "  scan Item rows_out=100", "conf[sort+scan] distinct=7 sig={a}{b}"} {
		if !strings.Contains(full, want) {
			t.Fatalf("full render missing %q:\n%s", want, full)
		}
	}
	fp := tr.Fingerprint()
	if strings.Contains(fp, "batches") || strings.Contains(fp, "workers") || strings.Contains(fp, "0.0015") {
		t.Fatalf("fingerprint leaks loose data:\n%s", fp)
	}
	if !strings.Contains(fp, "rows=42") || !strings.Contains(fp, "sig={a}{b}") {
		t.Fatalf("fingerprint missing structural attrs:\n%s", fp)
	}

	// Nil spans are safe everywhere.
	var nilSpan *Span
	nilSpan.Child("x").Int("k", 1).LooseStr("s", "v")
	nilSpan.SetDur(time.Second)
	var nilTrace *Trace
	if nilTrace.Render(true) != "" || nilTrace.Fingerprint() != "" {
		t.Fatal("nil trace must render empty")
	}
}

func TestTraceJSONSeparatesLoose(t *testing.T) {
	tr := NewTrace("Q6", "obdd", 1)
	s := tr.Root.Child("conf[obdd]")
	s.Int("nodes", 12).LooseInt("spills", 1)
	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Query string `json:"query"`
		Root  struct {
			Children []struct {
				Name  string            `json:"name"`
				Attrs map[string]string `json:"attrs"`
				Loose map[string]string `json:"loose"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("%v\n%s", err, raw)
	}
	if got.Query != "Q6" || len(got.Root.Children) != 1 {
		t.Fatalf("bad trace JSON: %s", raw)
	}
	c := got.Root.Children[0]
	if c.Attrs["nodes"] != "12" || c.Loose["spills"] != "1" {
		t.Fatalf("attrs not separated: %s", raw)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := New()
	r.Counter("queries_total").Add(3)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr.String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, `"queries_total": 3`) {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if !strings.Contains(body, "runtime_goroutines") {
		t.Fatalf("/metrics missing runtime stats: %s", body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, _, err := Serve("256.0.0.1:http", nil); err == nil {
		t.Fatal("want error for bad listen address")
	}
}

func ExampleTrace() {
	tr := NewTrace("Q18", "eager", 1)
	tr.Root.Child("scan Ord").Int("rows_out", 4)
	fmt.Println(tr.Fingerprint())
	// Output:
	// trace: Q18 [eager]
	// scan Ord rows_out=4
}
