package analyzers

import (
	"go/ast"
)

// DetRand guards the bit-identical-confidences invariant from PR 3: every
// number the deterministic packages produce must be a pure function of the
// query, the catalog, and the explicitly threaded seed — never of wall-clock
// time, the process id, or the global math/rand state (which is seeded
// per-process and shared across goroutines). Samplers construct their own
// rand.New(rand.NewSource(seed)) streams keyed by tuple index, so those two
// constructors stay allowed.
//
// plan and benchutil are linted too: their timing sites (Stats wall-times,
// benchmark clocks) are nondeterministic on purpose and carry
// //sproutvet:allow detrand directives saying so.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbids global math/rand functions, time.Now/Since, and os.Getpid in the deterministic " +
		"packages; confidences must be bit-identical across runs, worker counts, and batch sizes",
	Run: runDetRand,
}

// detRandPkgs are the packages whose outputs are pinned bit-identical by
// TestWorkerCountBitIdentical and the batch-size identity tests.
var detRandPkgs = []string{
	"repro/internal/prob",
	"repro/internal/obdd",
	"repro/internal/dtree",
	"repro/internal/conf",
	"repro/internal/engine",
	"repro/internal/signature",
	"repro/internal/stats",
	"repro/internal/plan",
	"repro/internal/benchutil",
}

// detRandAllowed are math/rand package functions that build deterministic
// generators rather than consuming the global one.
var detRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDetRand(p *Pass) {
	if !pkgIn(p, detRandPkgs...) {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			// Tests may time themselves; the determinism contract binds
			// shipped code. Seeded test RNGs pass the check anyway.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(p.TypesInfo, call)
			switch pkg {
			case "math/rand", "math/rand/v2":
				if !detRandAllowed[name] {
					p.Reportf(call.Pos(), "global %s.%s draws from shared per-process state; build a seeded stream with rand.New(rand.NewSource(seed)) so confidences stay bit-identical across runs", pkg, name)
				}
			case "time":
				if name == "Now" || name == "Since" {
					p.Reportf(call.Pos(), "time.%s is nondeterministic; deterministic packages must not branch on wall-clock time (timing belongs in plan Stats or benchutil, behind an allow directive)", name)
				}
			case "os":
				if name == "Getpid" {
					p.Reportf(call.Pos(), "os.Getpid varies per process; derive identifiers from threaded seeds or counters instead")
				}
			}
			return true
		})
	}
}
