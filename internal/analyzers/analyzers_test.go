package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analyzertest"
)

// Each analyzer has a fixture package under testdata/src exercising the
// violation, the clean shape, and the //sproutvet:allow escape hatch.
// Path-scoped analyzers (detrand, fnvkey) have their fixtures placed at the
// real import paths they watch.

func TestBatchAlias(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.BatchAlias, "batchalias")
}

func TestDetRand(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.DetRand, "repro/internal/prob")
}

func TestMapIter(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.MapIter, "mapiter")
}

func TestPoolReset(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.PoolReset, "poolreset")
}

func TestSortSlice(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.SortSlice, "sortslice")
}

func TestFnvKey(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.FnvKey, "repro/internal/engine")
}

// TestScopedAnalyzersStayQuietElsewhere pins the package scoping: the
// scopecheck fixture commits detrand and fnvkey violations but lives
// outside both watch lists, so neither analyzer may fire there.
func TestScopedAnalyzersStayQuietElsewhere(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.DetRand, "scopecheck")
	analyzertest.Run(t, "testdata", analyzers.FnvKey, "scopecheck")
}
