package analyzers_test

import (
	"testing"

	"repro/internal/analyzers"
	"repro/internal/analyzers/analyzertest"
)

// Each analyzer has a fixture package under testdata/src exercising the
// violation, the clean shape, and the //sproutvet:allow escape hatch.
// Path-scoped analyzers (detrand, fnvkey) have their fixtures placed at the
// real import paths they watch.

func TestBatchAlias(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.BatchAlias, "batchalias")
}

func TestDetRand(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.DetRand, "repro/internal/prob")
}

func TestMapIter(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.MapIter, "mapiter")
}

func TestPoolReset(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.PoolReset, "poolreset")
}

func TestSortSlice(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.SortSlice, "sortslice")
}

func TestFnvKey(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.FnvKey, "repro/internal/engine")
}

func TestIOHook(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.IOHook, "repro/internal/storage")
}

// TestScopedAnalyzersStayQuietElsewhere pins the package scoping: the
// scopecheck fixture commits detrand, fnvkey and iohook violations but
// lives outside every watch list, so none of them may fire there.
func TestScopedAnalyzersStayQuietElsewhere(t *testing.T) {
	analyzertest.Run(t, "testdata", analyzers.DetRand, "scopecheck")
	analyzertest.Run(t, "testdata", analyzers.FnvKey, "scopecheck")
	analyzertest.Run(t, "testdata", analyzers.IOHook, "scopecheck")
}
