package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolReset guards the pooled-builder idiom from PR 5/6: OBDD and d-tree
// builders (and anything else with interning tables or arenas) are recycled
// through sync.Pool, and a value pulled from the pool still holds the
// previous use's memo state — it must be Reset before use or the compile is
// silently wrong. The blessed shape is
//
//	b, _ := pool.Get().(*T)
//	if b == nil { b = NewT(...) } else { b.Reset(...) }
//
// The analyzer flags a sync.Pool.Get whose asserted type has a Reset method
// when no Reset call on the retrieved variable appears anywhere later in the
// same function.
var PoolReset = &Analyzer{
	Name: "poolreset",
	Doc: "flags sync.Pool.Get of a type with a Reset method when the value is never Reset " +
		"in the same function; pooled builders carry the previous use's state",
	Run: runPoolReset,
}

func runPoolReset(p *Pass) {
	for _, f := range p.Files {
		funcBodies(f, func(_ ast.Node, body *ast.BlockStmt) {
			checkPoolResetBody(p, body)
		})
	}
}

// poolGet matches pool.Get() where pool has type sync.Pool or *sync.Pool.
func poolGet(p *Pass, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	recv, name := methodCall(p.TypesInfo, call)
	if name != "Get" || recv == nil {
		return nil, false
	}
	return call, isNamedType(p.TypesInfo.TypeOf(recv), "sync", "Pool")
}

func checkPoolResetBody(p *Pass, body *ast.BlockStmt) {
	// Pass 1: collect `v := pool.Get().(*T)` (with or without the ", ok")
	// where T has a Reset method.
	type getSite struct {
		v   types.Object // nil when the result is not bound to a plain ident
		pos token.Pos
	}
	var gets []getSite
	walkShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		call, isPool := poolGet(p, ta.X)
		if !isPool {
			return true
		}
		t := p.TypesInfo.TypeOf(ta.Type)
		if t == nil || !hasMethod(t, "Reset") {
			return true
		}
		site := getSite{pos: call.Pos()}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			site.v = objOf(p.TypesInfo, id)
		}
		gets = append(gets, site)
		return true
	})
	if len(gets) == 0 {
		return
	}

	// Pass 2: find Reset calls and remember each receiver identifier's
	// declaration object.
	resetRecvs := make(map[types.Object][]token.Pos)
	walkShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name := methodCall(p.TypesInfo, call)
		if name != "Reset" || recv == nil {
			return true
		}
		// b.Reset(...) and cs.b.Reset(...) both reset what the pool
		// handed back; key on the root identifier.
		root := recv
		for {
			if sel, ok := ast.Unparen(root).(*ast.SelectorExpr); ok {
				root = sel.X
				continue
			}
			break
		}
		if id, ok := ast.Unparen(root).(*ast.Ident); ok {
			if obj := objOf(p.TypesInfo, id); obj != nil {
				resetRecvs[obj] = append(resetRecvs[obj], call.Pos())
			}
		}
		return true
	})

	for _, g := range gets {
		if g.v != nil {
			found := false
			for _, pos := range resetRecvs[g.v] {
				if pos > g.pos {
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		p.Reportf(g.pos, "value from sync.Pool.Get has a Reset method but is never Reset in this function; a pooled builder still holds the previous use's memo/arena state (see the conf obdd/dtree builder pools)")
	}
}
