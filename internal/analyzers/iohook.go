package analyzers

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// IOHook guards the fault plane's funnel invariant from the robustness
// work: every OS-level I/O operation in repro/internal/storage must go
// through the fault-hookable io* wrappers of io.go (ioCreate, ioOpen,
// ioWriteAt, ioReadAt, ioSync, ioRemove), so an installed fault injector
// sees — and can fail, truncate or delay — every read, write, sync, create
// and remove the engine performs. A raw os.Open or (*os.File).WriteAt
// anywhere else silently escapes the chaos harness and invalidates its
// no-leak, typed-error guarantees.
//
// io.go itself is the designated funnel and is exempt wholesale; test
// files are exempt (they may stage fixtures directly). os.TempDir,
// os.Getpid, os.MkdirAll and friends are not I/O data paths and stay
// allowed.
var IOHook = &Analyzer{
	Name: "iohook",
	Doc: "requires storage-package I/O to go through the fault-hookable wrappers in io.go; " +
		"raw os.* file operations and *os.File read/write/sync calls elsewhere escape fault injection",
	Run: runIOHook,
}

// ioHookPkg is the package whose I/O must funnel through io.go.
const ioHookPkg = "repro/internal/storage"

// ioHookBannedFuncs are the os package-level calls with a wrapper
// equivalent (or that open raw file handles the wrappers can't intercept).
var ioHookBannedFuncs = map[string]string{
	"Open":      "ioOpen",
	"OpenFile":  "ioCreate/ioOpen",
	"Create":    "ioCreate",
	"Remove":    "ioRemove",
	"RemoveAll": "ioRemove",
	"ReadFile":  "ioOpen + ioReadAt",
	"WriteFile": "ioCreate + ioWriteAt",
	"Rename":    "a wrapper added to io.go",
	"Truncate":  "a wrapper added to io.go",
}

// ioHookBannedMethods are the (*os.File) methods that move or persist data
// and therefore must be reached only through the fault plane.
var ioHookBannedMethods = map[string]string{
	"Read":    "ioReadAt",
	"ReadAt":  "ioReadAt",
	"Write":   "ioWriteAt",
	"WriteAt": "ioWriteAt",
	"Sync":    "ioSync",
}

func runIOHook(p *Pass) {
	if !pkgIn(p, ioHookPkg) {
		return
	}
	for _, f := range p.Files {
		pos := p.Fset.Position(f.Pos())
		if isTestFile(p.Fset, f.Pos()) || filepath.Base(pos.Filename) == "io.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name := pkgFunc(p.TypesInfo, call); pkg == "os" {
				if want, banned := ioHookBannedFuncs[name]; banned {
					p.Reportf(call.Pos(), "os.%s bypasses the fault plane; use %s so injected faults reach this operation", name, want)
				}
				return true
			}
			recv, name := methodCall(p.TypesInfo, call)
			if recv == nil {
				return true
			}
			want, banned := ioHookBannedMethods[name]
			if !banned {
				return true
			}
			if t := p.TypesInfo.TypeOf(recv); t != nil && isOSFile(t) {
				p.Reportf(call.Pos(), "(*os.File).%s bypasses the fault plane; use %s so injected faults reach this operation", name, want)
			}
			return true
		})
	}
}

// isOSFile reports whether t is *os.File (or os.File).
func isOSFile(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}
