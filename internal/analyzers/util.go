package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Path-based scoping. Analyzers match packages by normalized import path so
// the same code paths cover the real module ("repro/internal/prob"), the go
// vet test variants ("repro/internal/prob [repro/internal/prob.test]"), and
// the analyzertest fixture packages (which are loaded under the real import
// paths from testdata/src).

// normPath strips the " [pkg.test]" suffix go vet appends to test variants
// and the trailing "_test" of external test packages.
func normPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// pkgIn reports whether the pass's package is one of the listed import
// paths (normalized).
func pkgIn(p *Pass, paths ...string) bool {
	got := normPath(p.Pkg.Path())
	for _, want := range paths {
		if got == want {
			return true
		}
	}
	return false
}

// pkgFunc resolves call to a package-level function and returns its package
// path and name ("", "" when the callee is anything else: a method, a
// conversion, a local closure).
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok && f.Pkg() != nil && f.Type().(*types.Signature).Recv() == nil {
			return f.Pkg().Path(), f.Name()
		}
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[x].(*types.PkgName); isPkg {
				if f, ok := info.Uses[fn.Sel].(*types.Func); ok && f.Pkg() != nil {
					return f.Pkg().Path(), f.Name()
				}
			}
		}
	}
	return "", ""
}

// methodCall resolves call to a method invocation and returns the receiver
// expression and the method's name ("" when not a method call).
func methodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// namedFrom unwraps pointers and aliases down to a *types.Named, or nil.
func namedFrom(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkgSuffix.name, where pkgSuffix matches the end of the defining
// package's path (so "internal/table".Tuple matches both the real module
// path and fixture stubs).
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	n := namedFrom(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	p := normPath(n.Obj().Pkg().Path())
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// hasMethod reports whether t or *t has a method with the given name.
func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(typeDeref(t)))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

func typeDeref(t types.Type) types.Type {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// objOf returns the object an identifier denotes (definition or use).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// funcBodies walks every function, method, and closure body in the file,
// handing each to fn together with its declaring node. Each body is handed
// out exactly once: use walkShallow inside fn so a nested closure is
// analyzed as its own scope, not twice.
func funcBodies(file *ast.File, fn func(decl ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(d, d.Body)
		}
		return true
	})
}

// walkShallow inspects body without descending into nested function
// literals (they get their own funcBodies visit).
func walkShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
