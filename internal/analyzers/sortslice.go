package analyzers

import (
	"go/ast"
)

// SortSlice bans the reflection-based sort.Slice family in favor of the
// generic slices.Sort* functions. PR 5 converted all thirteen non-test
// sort.Slice sites (and every sort.Strings) repo-wide because the closure
// + reflect.Swapper path allocates on every call and the slices functions
// don't; this analyzer keeps the conversion from regressing.
var SortSlice = &Analyzer{
	Name: "sortslice",
	Doc: "flags sort.Slice/sort.SliceStable/sort.Strings/sort.Ints/sort.Float64s; " +
		"use the allocation-free generic slices.Sort/slices.SortFunc/slices.SortStableFunc instead",
	Run: runSortSlice,
}

// banned sort functions -> suggested replacement.
var sortSliceBanned = map[string]string{
	"Slice":       "slices.SortFunc",
	"SliceStable": "slices.SortStableFunc",
	"Strings":     "slices.Sort",
	"Ints":        "slices.Sort",
	"Float64s":    "slices.Sort",
}

func runSortSlice(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name := pkgFunc(p.TypesInfo, call); pkg == "sort" {
				if repl, bad := sortSliceBanned[name]; bad {
					p.Reportf(call.Pos(), "sort.%s allocates via reflection on every call; use %s (see PR 5's slices conversion)", name, repl)
				}
			}
			return true
		})
	}
}
