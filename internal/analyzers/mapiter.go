package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter guards the clause-order canonicalization fix from PR 3: Go map
// iteration order is deliberately randomized, so any slice built by ranging
// over a map has a nondeterministic element order. When such a slice feeds
// lineage, plans, or output, confidences and traces stop being bit-identical
// across runs. The fix is always the same — canonicalize after collecting:
// sort with slices.Sort*, or route elements through an order-insensitive
// structure (hash partitioning, a set keyed by content).
//
// The analyzer flags `s = append(s, ...)` inside a `range` over a map when
// the appended values depend on the iteration variables and no slices.Sort*
// call (or *Sort*/*Canonical* helper) mentioning s follows in the same
// function.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flags slices built by ranging over a map without a subsequent slices.Sort*/canonicalization " +
		"pass; map iteration order is randomized and breaks bit-identical confidences",
	Run: runMapIter,
}

func runMapIter(p *Pass) {
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		funcBodies(f, func(_ ast.Node, body *ast.BlockStmt) {
			checkMapIterBody(p, body)
		})
	}
}

func checkMapIterBody(p *Pass, body *ast.BlockStmt) {
	type appendSite struct {
		pos  token.Pos
		dest types.Object // root object of the append destination
	}
	var sites []appendSite

	walkShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := types.Unalias(typeDeref(p.TypesInfo.TypeOf(rng.X))).(*types.Map); !isMap {
			return true
		}
		iterVars := make(map[types.Object]bool)
		for _, v := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				if obj := objOf(p.TypesInfo, id); obj != nil {
					iterVars[obj] = true
				}
			}
		}
		// Values derived from the iteration variables inside the loop body
		// inherit the order dependency one level deep (v := m[k] etc.).
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if mentionsAny(p, as.Rhs[i], iterVars) {
						if obj := objOf(p.TypesInfo, id); obj != nil {
							iterVars[obj] = true
						}
					}
				}
			}
			return true
		})
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isBuiltinAppend(p, call) {
				return true
			}
			// Order only leaks when the appended values depend on which
			// iteration produced them; appending a constant per entry
			// (counting) is order-free.
			dep := false
			for _, arg := range call.Args[1:] {
				if mentionsAny(p, arg, iterVars) {
					dep = true
					break
				}
			}
			if !dep {
				return true
			}
			if obj := rootObj(p, call.Args[0]); obj != nil {
				sites = append(sites, appendSite{pos: call.Pos(), dest: obj})
			} else {
				sites = append(sites, appendSite{pos: call.Pos()})
			}
			return true
		})
		return true
	})
	if len(sites) == 0 {
		return
	}

	// A later canonicalization pass clears a destination: a slices.Sort*
	// call with the destination as an argument, or any call whose name
	// suggests sorting/canonicalizing it.
	canonical := make(map[types.Object]bool)
	walkShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(p, call)
		if name == "" {
			return true
		}
		isSorter := false
		if pkg, fn := pkgFunc(p.TypesInfo, call); (pkg == "slices" || pkg == "sort") && strings.Contains(fn, "Sort") {
			isSorter = true
		}
		lower := strings.ToLower(name)
		if strings.Contains(lower, "sort") || strings.Contains(lower, "canonical") {
			isSorter = true
		}
		if !isSorter {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObj(p, arg); obj != nil {
				canonical[obj] = true
			}
		}
		if recv, _ := methodCall(p.TypesInfo, call); recv != nil {
			if obj := rootObj(p, recv); obj != nil {
				canonical[obj] = true
			}
		}
		return true
	})

	for _, s := range sites {
		if s.dest != nil && canonical[s.dest] {
			continue
		}
		p.Reportf(s.pos, "slice built from map iteration order is nondeterministic; sort it with slices.Sort* (or canonicalize) before it escapes — map order randomization breaks bit-identical confidences (see PR 3's clause-order canonicalization)")
	}
}

// isBuiltinAppend reports whether call invokes the predeclared append.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	_, isBuiltin := objOf(p.TypesInfo, id).(*types.Builtin)
	return isBuiltin
}

// mentionsAny reports whether expr references any object in set.
func mentionsAny(p *Pass, expr ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objOf(p.TypesInfo, id); obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootObj resolves the root identifier object of expr (s, s[i], s.f, *s).
func rootObj(p *Pass, expr ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return objOf(p.TypesInfo, v)
		case *ast.IndexExpr:
			expr = v.X
		case *ast.SelectorExpr:
			// For s.f keep the selected field's object if any, else the base.
			if sel, ok := p.TypesInfo.Selections[v]; ok {
				return sel.Obj()
			}
			expr = v.X
		case *ast.SliceExpr:
			expr = v.X
		case *ast.StarExpr:
			expr = v.X
		default:
			return nil
		}
	}
}

// calleeName returns the syntactic name of the called function, method, or
// package function ("" for anonymous calls).
func calleeName(p *Pass, call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
