// Package analyzers is sproutvet: a suite of repo-specific static checks
// that turn the engine's runtime-tested invariants into compile-time
// guarantees. Each analyzer encodes one invariant and names the PR whose
// bug class it guards against:
//
//   - batchalias — tuples from BatchOperator.NextBatch/fillBatch live in
//     reused buffers and must be slab-cloned before they outlive the batch,
//     unless the source op promises StableTuples (PR 5's materialization
//     rule, held in one place by engine.drainCtx).
//   - detrand — the deterministic packages (prob, obdd, dtree, conf, engine,
//     signature, stats, plan, benchutil) must not consume global math/rand
//     state, wall-clock time, or the pid: confidences are pinned
//     bit-identical across worker counts and batch sizes (PR 3).
//   - mapiter — slices built by ranging over maps must be canonicalized
//     before they escape; map iteration order is randomized (the
//     nondeterminism behind PR 3's clause-order canonicalization fix).
//   - poolreset — values recycled through sync.Pool whose type has a Reset
//     method must be Reset before reuse; pooled OBDD/d-tree builders carry
//     the previous compilation's memo and arena state (PR 5/6).
//   - sortslice — sort.Slice/sort.Strings et al. are banned in favor of the
//     allocation-free slices.Sort* generics (PR 5's repo-wide conversion).
//   - fnvkey — the engine/obdd/dtree/conf/prob/table hot paths must not key
//     maps by rendered strings; hash with prob.FNV*/table.HashOn into
//     integer keys (the regression class PR 5's containers removed).
//
// False positives are silenced at the site with
//
//	//sproutvet:allow <analyzer> <reason>
//
// either at the end of the offending line or on its own line directly
// above. The reason is mandatory: the analyzers reject directives with an
// empty reason (and directives naming unknown analyzers), so every escape
// hatch documents why the invariant does not apply.
//
// The suite runs through cmd/sproutvet, which speaks the `go vet -vettool`
// protocol; see that command's documentation for wiring. The meta-test in
// this package keeps the real tree lint-clean by construction.
package analyzers
