package analyzers

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// This file is the minimal go/analysis-shaped core the suite runs on. The
// container this repo builds in has no module cache for golang.org/x/tools,
// so the Analyzer/Pass/Diagnostic surface is redeclared here (same shape,
// stdlib only) and cmd/sproutvet speaks the `go vet -vettool` JSON protocol
// directly. If x/tools ever lands in go.mod these types are drop-in
// replaceable.

// An Analyzer describes one invariant check. Run inspects a fully
// type-checked package through the Pass and reports diagnostics.
type Analyzer struct {
	Name string // short lower-case identifier, used in allow directives
	Doc  string // what the analyzer enforces and which invariant it guards
	Run  func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos. The message is prefixed with the
// analyzer name so readers know which directive (`//sproutvet:allow <name>
// <reason>`) would suppress it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  p.Analyzer.Name + ": " + fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		BatchAlias,
		DetRand,
		FnvKey,
		IOHook,
		MapIter,
		PoolReset,
		SortSlice,
	}
}

// AllowPrefix starts every escape-hatch directive. The full form is
//
//	//sproutvet:allow <analyzer> <reason...>
//
// placed either at the end of the offending line or on its own line
// immediately above it. The reason is mandatory and must be non-empty: the
// directive is the documentation of why the invariant legitimately does not
// apply at that site.
const AllowPrefix = "sproutvet:allow"

// allowDirective is one parsed //sproutvet:allow comment.
type allowDirective struct {
	pos      token.Pos
	line     int
	analyzer string
	reason   string
}

// parseAllows extracts every allow directive from a file, reporting malformed
// ones (missing analyzer, unknown analyzer, empty reason) through report.
func parseAllows(fset *token.FileSet, file *ast.File, known map[string]bool, report func(Diagnostic)) []allowDirective {
	var out []allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+AllowPrefix)
			if !ok {
				continue
			}
			bad := func(format string, args ...any) {
				report(Diagnostic{
					Analyzer: "sproutvet",
					Pos:      c.Pos(),
					Message:  "sproutvet: " + fmt.Sprintf(format, args...),
				})
			}
			fields := strings.Fields(text)
			if len(fields) == 0 {
				bad("malformed directive: want //%s <analyzer> <reason>", AllowPrefix)
				continue
			}
			name := fields[0]
			if !known[name] {
				names := make([]string, 0, len(known))
				for k := range known {
					names = append(names, k)
				}
				slices.Sort(names)
				bad("directive names unknown analyzer %q (have %s)", name, strings.Join(names, ", "))
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), name))
			if reason == "" {
				bad("allow directive for %q needs a non-empty reason: the comment is the documentation of why the invariant does not apply here", name)
				continue
			}
			out = append(out, allowDirective{
				pos:      c.Pos(),
				line:     fset.Position(c.Pos()).Line,
				analyzer: name,
				reason:   reason,
			})
		}
	}
	return out
}

// Check type-checks nothing — it runs every analyzer over an
// already-type-checked package and returns the surviving diagnostics sorted
// by position. Suppression: a diagnostic on line L of file F is dropped when
// F carries an allow directive for that analyzer on line L (end-of-line
// form) or line L-1 (own-line form above).
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, suite []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}

	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	// file -> analyzer -> suppressed lines.
	allows := make(map[string]map[string]map[int]bool)
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		for _, d := range parseAllows(fset, f, known, collect) {
			byAnalyzer := allows[fname]
			if byAnalyzer == nil {
				byAnalyzer = make(map[string]map[int]bool)
				allows[fname] = byAnalyzer
			}
			lines := byAnalyzer[d.analyzer]
			if lines == nil {
				lines = make(map[int]bool)
				byAnalyzer[d.analyzer] = lines
			}
			lines[d.line] = true
			lines[d.line+1] = true
		}
	}

	for _, a := range suite {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report: func(d Diagnostic) {
				p := fset.Position(d.Pos)
				if lines := allows[p.Filename][d.Analyzer]; lines[p.Line] {
					return
				}
				collect(d)
			},
		}
		a.Run(pass)
	}

	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if c := cmp.Compare(a.Pos, b.Pos); c != 0 {
			return c
		}
		return cmp.Compare(a.Message, b.Message)
	})
}
