package analyzers_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The meta-tests run the real cmd/sproutvet binary through the real
// `go vet -vettool` protocol:
//
//   - TestSproutvetRepoClean keeps the tree lint-clean by construction —
//     any committed violation (or undocumented allow directive) fails here
//     before it fails in CI.
//   - TestSproutvetCatchesReintroducedViolations proves the wiring has
//     teeth: overlaying a sort.Slice call or an unseeded rand.Intn into
//     internal/prob makes the same invocation fail.

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// buildSproutvet builds cmd/sproutvet once per test process.
func buildSproutvet(t *testing.T) (bin, root string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "sproutvet")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "sproutvet")
		cmd := exec.Command("go", "build", "-o", buildBin, "./cmd/sproutvet")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			buildBin = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building sproutvet: %v\n%s", buildErr, buildBin)
	}
	return buildBin, root
}

func runVet(t *testing.T, root, bin string, extra []string, pkgs ...string) (string, error) {
	t.Helper()
	args := append([]string{"vet", "-vettool=" + bin}, extra...)
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestSproutvetRepoClean(t *testing.T) {
	bin, root := buildSproutvet(t)
	out, err := runVet(t, root, bin, nil, "./...")
	if err != nil {
		t.Fatalf("sproutvet reports diagnostics on the tree (fix them or add a justified //sproutvet:allow):\n%s", out)
	}
}

func TestSproutvetCatchesReintroducedViolations(t *testing.T) {
	bin, root := buildSproutvet(t)
	cases := []struct {
		name    string
		pkg     string
		file    string
		src     string
		wantMsg string
	}{
		{
			name: "sort.Slice in internal/prob",
			pkg:  "./internal/prob",
			file: filepath.Join(root, "internal", "prob", "zz_injected.go"),
			src: "package prob\n\nimport \"sort\"\n\n" +
				"func injectedSort(xs []int) { sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) }\n",
			wantMsg: "sortslice",
		},
		{
			name: "unseeded rand.Intn in internal/prob",
			pkg:  "./internal/prob",
			file: filepath.Join(root, "internal", "prob", "zz_injected.go"),
			src: "package prob\n\nimport \"math/rand\"\n\n" +
				"func injectedRand() int { return rand.Intn(3) }\n",
			wantMsg: "detrand",
		},
		{
			name: "retained batch tuple in internal/engine",
			pkg:  "./internal/engine",
			file: filepath.Join(root, "internal", "engine", "zz_injected.go"),
			src: "package engine\n\nimport \"repro/internal/table\"\n\n" +
				"func injectedRetain(op Operator) ([]table.Tuple, error) {\n" +
				"\tbuf := make([]table.Tuple, BatchSize)\n" +
				"\tvar out []table.Tuple\n" +
				"\tfor {\n" +
				"\t\tn, err := NextBatch(op, buf)\n" +
				"\t\tif err != nil || n == 0 {\n" +
				"\t\t\treturn out, err\n" +
				"\t\t}\n" +
				"\t\tfor _, t := range buf[:n] {\n" +
				"\t\t\tout = append(out, t)\n" +
				"\t\t}\n" +
				"\t}\n}\n",
			wantMsg: "batchalias",
		},
		{
			name: "retained ColBatch column slice in internal/engine",
			pkg:  "./internal/engine",
			file: filepath.Join(root, "internal", "engine", "zz_injected.go"),
			src: "package engine\n\nimport \"repro/internal/table\"\n\n" +
				"type injectedSink struct{ ints []int64 }\n\n" +
				"func injectedColRetain(op ColOperator, s *injectedSink) error {\n" +
				"\tb := table.NewColBatch(op.Schema())\n" +
				"\tif _, err := op.NextColBatch(b); err != nil {\n" +
				"\t\treturn err\n" +
				"\t}\n" +
				"\ts.ints = b.Cols[0].Ints\n" +
				"\treturn nil\n}\n",
			wantMsg: "batchalias",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Inject the violation through a build overlay: the tree on disk
			// stays untouched.
			tmp := t.TempDir()
			src := filepath.Join(tmp, "injected.go")
			if err := os.WriteFile(src, []byte(tc.src), 0o666); err != nil {
				t.Fatal(err)
			}
			overlay := filepath.Join(tmp, "overlay.json")
			data, err := json.Marshal(map[string]map[string]string{
				"Replace": {tc.file: src},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(overlay, data, 0o666); err != nil {
				t.Fatal(err)
			}
			out, err := runVet(t, root, bin, []string{"-overlay=" + overlay}, tc.pkg)
			if err == nil {
				t.Fatalf("go vet succeeded; want it to fail on the injected violation\n%s", out)
			}
			if !strings.Contains(out, tc.wantMsg) {
				t.Fatalf("go vet failed but without a %s diagnostic:\n%s", tc.wantMsg, out)
			}
		})
	}
}
