package analyzers

import (
	"go/ast"
	"go/types"
)

// BatchAlias guards PR 5's batch-storage contract: tuples handed out by
// BatchOperator.NextBatch (and by the engine.NextBatch/fillBatch adapters)
// live in reused buffers — they are valid only until the next NextBatch/Next
// call unless the source operator promises StableTuples. A consumer that
// retains such a tuple past the batch (appending it to a long-lived slice,
// storing it in a struct field) without a table.Slab clone sees the tuple
// silently overwritten by a later batch. This is exactly the aliasing bug
// class the drainCtx/CollectCtx materialization rule exists to prevent.
//
// The analyzer tracks, per function, the batch slices passed to
// NextBatch-shaped calls and the tuples read out of them (indexing or
// ranging, one aliasing level deep), and flags a bare batch tuple being
//
//   - appended to a slice, or
//   - stored through a selector (struct field) or into a non-parameter
//     slice/map element.
//
// Passing the tuple through any call (t.Clone(), slab.Clone(t), emit(t)) is
// treated as a hand-off that honors the contract. Writing into a []Tuple
// *parameter* is the operator side of the protocol (filling the caller's
// batch) and is allowed. Sites that legitimately retain a tuple only for
// the current batch's lifetime (e.g. the hash join's probe cursor) document
// themselves with //sproutvet:allow batchalias <reason>.
var BatchAlias = &Analyzer{
	Name: "batchalias",
	Doc: "flags retaining tuples obtained from NextBatch/fillBatch without a table.Slab clone; " +
		"batch buffers are reused and later batches overwrite retained tuples",
	Run: runBatchAlias,
}

func runBatchAlias(p *Pass) {
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		funcBodies(f, func(decl ast.Node, body *ast.BlockStmt) {
			checkBatchAliasBody(p, decl, body)
		})
	}
}

// isTupleSlice reports whether t is []table.Tuple.
func isTupleSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).(*types.Slice)
	if !ok {
		return false
	}
	return isNamedType(sl.Elem(), "internal/table", "Tuple")
}

// batchSourceCall reports whether call hands out reused batch storage and
// returns the batch-slice argument: X.NextBatch(dst), engine.NextBatch(op,
// dst), or fillBatch(dst, next).
func batchSourceCall(p *Pass, call *ast.CallExpr) (batch ast.Expr, ok bool) {
	if recv, name := methodCall(p.TypesInfo, call); recv != nil && name == "NextBatch" && len(call.Args) == 1 {
		return call.Args[0], true
	}
	switch _, name := pkgFunc(p.TypesInfo, call); name {
	case "NextBatch":
		if len(call.Args) == 2 {
			return call.Args[1], true
		}
	case "fillBatch":
		if len(call.Args) == 2 {
			return call.Args[0], true
		}
	}
	return nil, false
}

func checkBatchAliasBody(p *Pass, decl ast.Node, body *ast.BlockStmt) {
	info := p.TypesInfo

	// Parameters of this function: writes into a []Tuple parameter are the
	// operator filling its caller's batch, not retention.
	params := make(map[types.Object]bool)
	var ftype *ast.FuncType
	switch d := decl.(type) {
	case *ast.FuncDecl:
		ftype = d.Type
	case *ast.FuncLit:
		ftype = d.Type
	}
	if ftype != nil && ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := objOf(info, name); obj != nil {
					params[obj] = true
				}
			}
		}
	}

	// Pass 1: batch slices = []Tuple vars passed as the dst of a batch
	// source call in this function.
	batches := make(map[types.Object]bool)
	walkShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		arg, ok := batchSourceCall(p, call)
		if !ok {
			return true
		}
		if obj := rootObj(p, arg); obj != nil && isTupleSlice(typeDeref(obj.Type())) {
			batches[obj] = true
		}
		return true
	})
	if len(batches) == 0 {
		return
	}

	// isBatchIndex reports whether e reads an element out of a batch slice:
	// buf[i], buf[:n][i], etc.
	isBatchIndex := func(e ast.Expr) bool {
		idx, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok {
			return false
		}
		obj := rootObj(p, idx.X)
		return obj != nil && batches[obj]
	}

	// Pass 2: batch tuples = range vars over a batch slice, plus one level
	// of plain-ident aliasing (t := buf[i]).
	elems := make(map[types.Object]bool)
	walkShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			if obj := rootObj(p, v.X); obj != nil && batches[obj] {
				if id, ok := v.Value.(*ast.Ident); ok && id.Name != "_" {
					if o := objOf(info, id); o != nil {
						elems[o] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isBatchIndex(v.Rhs[i]) {
					if o := objOf(info, id); o != nil {
						elems[o] = true
					}
				}
			}
		}
		return true
	})

	// isBatchTuple: a bare expression denoting a tuple that still aliases
	// batch storage — an element read or a tracked alias ident.
	isBatchTuple := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isBatchIndex(e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			if o := objOf(info, id); o != nil && elems[o] {
				return true
			}
		}
		return false
	}

	// Pass 3: flag retention of bare batch tuples.
	walkShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if !isBuiltinAppend(p, v) {
				return true
			}
			for _, arg := range v.Args[1:] {
				if isBatchTuple(arg) {
					p.Reportf(arg.Pos(), "tuple from a reused batch buffer is appended without a clone; later batches overwrite it — clone through a table.Slab, or source from a StableTuples operator (see engine.drainCtx)")
				} else if se, ok := ast.Unparen(arg).(*ast.SliceExpr); ok && v.Ellipsis.IsValid() {
					if obj := rootObj(p, se.X); obj != nil && batches[obj] {
						p.Reportf(arg.Pos(), "batch buffer contents are appended wholesale without clones; later batches overwrite them — clone through a table.Slab, or source from a StableTuples operator (see engine.drainCtx)")
					}
				}
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				if !isBatchTuple(v.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					p.Reportf(v.Rhs[i].Pos(), "tuple from a reused batch buffer is stored in a field without a clone; it is only valid until the next NextBatch call — clone through a table.Slab or document the single-batch lifetime with an allow directive")
				case *ast.IndexExpr:
					obj := rootObj(p, l.X)
					if obj != nil && (params[obj] || batches[obj]) {
						continue // filling the caller's batch, or shuffling within one
					}
					p.Reportf(v.Rhs[i].Pos(), "tuple from a reused batch buffer is stored in long-lived storage without a clone; later batches overwrite it — clone through a table.Slab (see engine.drainCtx)")
				}
			}
		}
		return true
	})
}
