package analyzers

import (
	"go/ast"
	"go/types"
)

// BatchAlias guards PR 5's batch-storage contract: tuples handed out by
// BatchOperator.NextBatch (and by the engine.NextBatch/fillBatch adapters)
// live in reused buffers — they are valid only until the next NextBatch/Next
// call unless the source operator promises StableTuples. A consumer that
// retains such a tuple past the batch (appending it to a long-lived slice,
// storing it in a struct field) without a table.Slab clone sees the tuple
// silently overwritten by a later batch. This is exactly the aliasing bug
// class the drainCtx/CollectCtx materialization rule exists to prevent.
//
// The analyzer tracks, per function, the batch slices passed to
// NextBatch-shaped calls and the tuples read out of them (indexing or
// ranging, one aliasing level deep), and flags a bare batch tuple being
//
//   - appended to a slice, or
//   - stored through a selector (struct field) or into a non-parameter
//     slice/map element.
//
// Passing the tuple through any call (t.Clone(), slab.Clone(t), emit(t)) is
// treated as a hand-off that honors the contract. Writing into a []Tuple
// *parameter* is the operator side of the protocol (filling the caller's
// batch) and is allowed. Sites that legitimately retain a tuple only for
// the current batch's lifetime (e.g. the hash join's probe cursor) document
// themselves with //sproutvet:allow batchalias <reason>.
//
// The columnar tier (PR 9) has the same contract one level up: a
// table.ColBatch filled by ColOperator.NextColBatch reuses its column
// storage, so the column slices (Ints, Floats, Strs, Bytes, Offs, Codes,
// Sel, …) and whole ColVec headers read out of such a batch are valid only
// until the next NextColBatch call. The analyzer tracks the batches passed
// to NextColBatch-shaped calls and flags storing a batch-reaching slice or
// ColVec into a struct field or long-lived element, or appending the slice
// header itself to a slice-of-slices. Writes into a ColBatch-typed
// destination (dst.Cols[i] = …, dst.Sel = …) are the operator side of the
// protocol and allowed; appending with ... copies the elements out and is
// allowed too.
var BatchAlias = &Analyzer{
	Name: "batchalias",
	Doc: "flags retaining tuples obtained from NextBatch/fillBatch (or column slices from NextColBatch) " +
		"without a clone; batch buffers are reused and later batches overwrite retained storage",
	Run: runBatchAlias,
}

func runBatchAlias(p *Pass) {
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		funcBodies(f, func(decl ast.Node, body *ast.BlockStmt) {
			checkBatchAliasBody(p, decl, body)
			checkColBatchAliasBody(p, body)
		})
	}
}

// isTupleSlice reports whether t is []table.Tuple.
func isTupleSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).(*types.Slice)
	if !ok {
		return false
	}
	return isNamedType(sl.Elem(), "internal/table", "Tuple")
}

// batchSourceCall reports whether call hands out reused batch storage and
// returns the batch-slice argument: X.NextBatch(dst), engine.NextBatch(op,
// dst), or fillBatch(dst, next).
func batchSourceCall(p *Pass, call *ast.CallExpr) (batch ast.Expr, ok bool) {
	if recv, name := methodCall(p.TypesInfo, call); recv != nil && name == "NextBatch" && len(call.Args) == 1 {
		return call.Args[0], true
	}
	switch _, name := pkgFunc(p.TypesInfo, call); name {
	case "NextBatch":
		if len(call.Args) == 2 {
			return call.Args[1], true
		}
	case "fillBatch":
		if len(call.Args) == 2 {
			return call.Args[0], true
		}
	}
	return nil, false
}

func checkBatchAliasBody(p *Pass, decl ast.Node, body *ast.BlockStmt) {
	info := p.TypesInfo

	// Parameters of this function: writes into a []Tuple parameter are the
	// operator filling its caller's batch, not retention.
	params := make(map[types.Object]bool)
	var ftype *ast.FuncType
	switch d := decl.(type) {
	case *ast.FuncDecl:
		ftype = d.Type
	case *ast.FuncLit:
		ftype = d.Type
	}
	if ftype != nil && ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := objOf(info, name); obj != nil {
					params[obj] = true
				}
			}
		}
	}

	// Pass 1: batch slices = []Tuple vars passed as the dst of a batch
	// source call in this function.
	batches := make(map[types.Object]bool)
	walkShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		arg, ok := batchSourceCall(p, call)
		if !ok {
			return true
		}
		if obj := rootObj(p, arg); obj != nil && isTupleSlice(typeDeref(obj.Type())) {
			batches[obj] = true
		}
		return true
	})
	if len(batches) == 0 {
		return
	}

	// isBatchIndex reports whether e reads an element out of a batch slice:
	// buf[i], buf[:n][i], etc.
	isBatchIndex := func(e ast.Expr) bool {
		idx, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok {
			return false
		}
		obj := rootObj(p, idx.X)
		return obj != nil && batches[obj]
	}

	// Pass 2: batch tuples = range vars over a batch slice, plus one level
	// of plain-ident aliasing (t := buf[i]).
	elems := make(map[types.Object]bool)
	walkShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			if obj := rootObj(p, v.X); obj != nil && batches[obj] {
				if id, ok := v.Value.(*ast.Ident); ok && id.Name != "_" {
					if o := objOf(info, id); o != nil {
						elems[o] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isBatchIndex(v.Rhs[i]) {
					if o := objOf(info, id); o != nil {
						elems[o] = true
					}
				}
			}
		}
		return true
	})

	// isBatchTuple: a bare expression denoting a tuple that still aliases
	// batch storage — an element read or a tracked alias ident.
	isBatchTuple := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isBatchIndex(e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			if o := objOf(info, id); o != nil && elems[o] {
				return true
			}
		}
		return false
	}

	// Pass 3: flag retention of bare batch tuples.
	walkShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if !isBuiltinAppend(p, v) {
				return true
			}
			for _, arg := range v.Args[1:] {
				if isBatchTuple(arg) {
					p.Reportf(arg.Pos(), "tuple from a reused batch buffer is appended without a clone; later batches overwrite it — clone through a table.Slab, or source from a StableTuples operator (see engine.drainCtx)")
				} else if se, ok := ast.Unparen(arg).(*ast.SliceExpr); ok && v.Ellipsis.IsValid() {
					if obj := rootObj(p, se.X); obj != nil && batches[obj] {
						p.Reportf(arg.Pos(), "batch buffer contents are appended wholesale without clones; later batches overwrite them — clone through a table.Slab, or source from a StableTuples operator (see engine.drainCtx)")
					}
				}
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				if !isBatchTuple(v.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					p.Reportf(v.Rhs[i].Pos(), "tuple from a reused batch buffer is stored in a field without a clone; it is only valid until the next NextBatch call — clone through a table.Slab or document the single-batch lifetime with an allow directive")
				case *ast.IndexExpr:
					obj := rootObj(p, l.X)
					if obj != nil && (params[obj] || batches[obj]) {
						continue // filling the caller's batch, or shuffling within one
					}
					p.Reportf(v.Rhs[i].Pos(), "tuple from a reused batch buffer is stored in long-lived storage without a clone; later batches overwrite it — clone through a table.Slab (see engine.drainCtx)")
				}
			}
		}
		return true
	})
}

// isColBatch reports whether t (possibly behind a pointer) is
// table.ColBatch.
func isColBatch(t types.Type) bool {
	return isNamedType(t, "internal/table", "ColBatch")
}

// aliasesColStorage reports whether an expression's static type is storage
// that aliases a column batch when read out of one: any slice (a column's
// typed cells, the selection vector, flat bytes/offsets) or a ColVec header
// (which carries all of those).
func aliasesColStorage(t types.Type) bool {
	if _, ok := types.Unalias(t).(*types.Slice); ok {
		return true
	}
	return isNamedType(t, "internal/table", "ColVec")
}

// colBatchSourceCall reports whether call refills reused columnar batch
// storage and returns the batch argument: X.NextColBatch(dst).
func colBatchSourceCall(p *Pass, call *ast.CallExpr) (batch ast.Expr, ok bool) {
	if recv, name := methodCall(p.TypesInfo, call); recv != nil && name == "NextColBatch" && len(call.Args) == 1 {
		return call.Args[0], true
	}
	return nil, false
}

// baseIdentObj walks an index/selector/slice chain down to its base
// identifier's object (b for b.Cols[i].Ints), unlike rootObj which stops at
// the first selected field.
func baseIdentObj(p *Pass, expr ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return objOf(p.TypesInfo, v)
		case *ast.IndexExpr:
			expr = v.X
		case *ast.SelectorExpr:
			expr = v.X
		case *ast.SliceExpr:
			expr = v.X
		case *ast.StarExpr:
			expr = v.X
		default:
			return nil
		}
	}
}

// checkColBatchAliasBody is the ColBatch half of the batch-storage contract:
// flag retention of column slices or ColVec headers that reach a batch some
// NextColBatch call refills.
func checkColBatchAliasBody(p *Pass, body *ast.BlockStmt) {
	info := p.TypesInfo

	// Pass 1: the batches this function refills — the objects (vars or
	// struct fields, via rootObj) passed as NextColBatch destinations.
	batches := make(map[types.Object]bool)
	walkShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		arg, ok := colBatchSourceCall(p, call)
		if !ok {
			return true
		}
		if obj := rootObj(p, arg); obj != nil && isColBatch(obj.Type()) {
			batches[obj] = true
		}
		return true
	})
	if len(batches) == 0 {
		return
	}

	// aliasing: e reads storage out of a tracked batch — its chain mentions
	// a tracked object and its type is a slice or ColVec header.
	aliases := make(map[types.Object]bool)
	aliasing := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil || !aliasesColStorage(t) {
			return false
		}
		// A call result is a hand-off (HashInto, SelBuf, …): the callee is
		// responsible for what it returns, same as the tuple rule.
		if _, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			return false
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if o := objOf(info, id); o != nil && aliases[o] {
				return true
			}
		}
		return mentionsAny(p, e, batches)
	}

	// Pass 2: one level of plain-ident aliasing (sel := b.Sel).
	walkShallow(body, func(n ast.Node) bool {
		v, ok := n.(*ast.AssignStmt)
		if !ok || len(v.Lhs) != len(v.Rhs) {
			return true
		}
		for i, lhs := range v.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && aliasing(v.Rhs[i]) {
				if o := objOf(info, id); o != nil {
					aliases[o] = true
				}
			}
		}
		return true
	})

	// Pass 3: flag retention.
	walkShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			if !isBuiltinAppend(p, v) || v.Ellipsis.IsValid() {
				// append(dst, b.Cols[i].Ints...) copies the cells out —
				// only retaining the slice header itself aliases.
				return true
			}
			for _, arg := range v.Args[1:] {
				if aliasing(arg) {
					p.Reportf(arg.Pos(), "column storage from a reused ColBatch is appended without a copy; the next NextColBatch overwrites it — copy the cells out (append with ...) or materialize through WriteRow/Value")
				}
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				if !aliasing(v.Rhs[i]) {
					continue
				}
				l := ast.Unparen(lhs)
				base := baseIdentObj(p, l)
				// Writing into a ColBatch (dst.Cols[i] = …, dst.Sel = …) is
				// an operator filling a batch — the protocol, not retention.
				if base != nil && isColBatch(base.Type()) {
					continue
				}
				switch l.(type) {
				case *ast.SelectorExpr:
					p.Reportf(v.Rhs[i].Pos(), "column storage from a reused ColBatch is stored in a field without a copy; it is only valid until the next NextColBatch call — copy the cells or document the single-batch lifetime with an allow directive")
				case *ast.IndexExpr:
					p.Reportf(v.Rhs[i].Pos(), "column storage from a reused ColBatch is stored in long-lived storage without a copy; the next NextColBatch overwrites it")
				}
			}
		}
		return true
	})
}
