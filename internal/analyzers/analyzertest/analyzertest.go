// Package analyzertest runs one analyzer over a fixture package under
// testdata/src and checks its diagnostics against `// want "regexp"`
// comments, in the style of golang.org/x/tools/go/analysis/analysistest
// (which is not available in this build environment — the harness is
// rebuilt here on the standard library).
//
// Fixture packages are loaded by import path relative to testdata/src, so a
// fixture that must live in a specific package to trigger a path-scoped
// analyzer (e.g. detrand's deterministic-package list) is placed at that
// path: testdata/src/repro/internal/prob. Imports resolve first against
// testdata/src (letting fixtures share stub packages like
// repro/internal/table), then against the standard library, typechecked
// from GOROOT source.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analyzers"
)

// Run loads the fixture package at testdata/src/<pkgPath>, applies the
// analyzer, and reports every mismatch between produced diagnostics and
// `// want` expectations as test errors.
func Run(t *testing.T, testdata string, a *analyzers.Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &loader{
		srcRoot: filepath.Join(testdata, "src"),
		fset:    fset,
		pkgs:    make(map[string]*loaded),
	}
	ld.stdlib = importer.ForCompiler(fset, "source", nil)

	pkg, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	diags := analyzers.Check(fset, pkg.files, pkg.pkg, pkg.info, []*analyzers.Analyzer{a})
	checkWants(t, fset, pkg.files, diags)
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*loaded
	stdlib  types.Importer
}

// Import implements types.Importer over testdata/src first, stdlib second.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, err := ld.load(path); err == nil {
		return p.pkg, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return ld.stdlib.Import(path)
}

func (ld *loader) load(path string) (*loaded, error) {
	if p, ok := ld.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return p, nil
	}
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ld.pkgs[path] = nil // cycle marker
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	p := &loaded{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = p
	return p, nil
}

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
}

// wantRE matches the quoted patterns after a `// want` marker: Go string
// literals, double- or back-quoted.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analyzers.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Accept `// want "..."` line comments and, for lines whose
				// diagnostic is attached to another comment (directive
				// misuse), the `/* want "..." */` block form.
				text := c.Text
				var pats string
				if i := strings.Index(text, "// want "); i >= 0 {
					pats = text[i+len("// want "):]
				} else if inner, ok := strings.CutPrefix(text, "/*"); ok {
					inner = strings.TrimSpace(strings.TrimSuffix(inner, "*/"))
					if w, ok := strings.CutPrefix(inner, "want "); ok {
						pats = w
					}
				}
				if pats == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range wantRE.FindAllString(pats, -1) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", pos, lit, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		i := slices.IndexFunc(wants, func(w *expectation) bool {
			return w != nil && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message)
		})
		if i < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		wants[i] = nil // consumed
	}
	for _, w := range wants {
		if w != nil {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
