package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FnvKey guards PR 5's rendered-string-key removal: the engine's join/dedup
// containers and the OBDD/d-tree memo tables used to key maps by
// fmt.Sprintf-rendered tuples and clause sets, which allocated a string per
// lookup and dominated the hot-path profiles. They now hash with
// prob.FNV*/table.HashOn into integer-keyed structures. This analyzer flags
// a string built by fmt.Sprintf/fmt.Sprint or by non-constant concatenation
// being used as a map key inside the hot-path packages.
var FnvKey = &Analyzer{
	Name: "fnvkey",
	Doc: "flags fmt.Sprintf/string-concatenation map keys in the engine/obdd/dtree/conf/prob/table " +
		"hot paths; hash with prob.FNV*/table.HashOn into integer keys instead",
	Run: runFnvKey,
}

var fnvKeyPkgs = []string{
	"repro/internal/engine",
	"repro/internal/obdd",
	"repro/internal/dtree",
	"repro/internal/conf",
	"repro/internal/prob",
	"repro/internal/table",
}

func runFnvKey(p *Pass) {
	if !pkgIn(p, fnvKeyPkgs...) {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f.Pos()) {
			continue
		}
		funcBodies(f, func(_ ast.Node, body *ast.BlockStmt) {
			checkFnvKeyBody(p, body)
		})
	}
}

func checkFnvKeyBody(p *Pass, body *ast.BlockStmt) {
	// renderedAt maps a local string variable to the position of the
	// rendering expression it was (simply) assigned from, one level deep:
	//   key := fmt.Sprintf(...); m[key] = v
	renderedAt := make(map[types.Object]token.Pos)
	walkShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(p.TypesInfo, id)
			if obj == nil {
				continue
			}
			if pos, bad := fnvRenderedString(p, as.Rhs[i]); bad {
				renderedAt[obj] = pos
			} else {
				delete(renderedAt, obj) // reassigned to something clean
			}
		}
		return true
	})

	walkShallow(body, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		mt, ok := types.Unalias(typeDeref(p.TypesInfo.TypeOf(idx.X))).(*types.Map)
		if !ok {
			return true
		}
		if b, ok := mt.Key().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			return true
		}
		key := ast.Unparen(idx.Index)
		if _, bad := fnvRenderedString(p, key); bad {
			p.Reportf(idx.Index.Pos(), "map key built by string rendering allocates per lookup; hash the components with prob.FNV*/table.HashOn and key the map by uint64 (see PR 5's container rework)")
			return true
		}
		if id, ok := key.(*ast.Ident); ok {
			if obj := objOf(p.TypesInfo, id); obj != nil {
				if _, bad := renderedAt[obj]; bad {
					p.Reportf(idx.Index.Pos(), "map key %s was built by string rendering, which allocates per lookup; hash the components with prob.FNV*/table.HashOn and key the map by uint64 (see PR 5's container rework)", id.Name)
				}
			}
		}
		return true
	})
}

// fnvRenderedString reports whether e renders a string at runtime: a
// fmt.Sprintf/Sprint/Sprintln call or a non-constant string concatenation.
func fnvRenderedString(p *Pass, e ast.Expr) (token.Pos, bool) {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.CallExpr:
		if pkg, name := pkgFunc(p.TypesInfo, v); pkg == "fmt" {
			switch name {
			case "Sprintf", "Sprint", "Sprintln":
				return v.Pos(), true
			}
		}
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return token.NoPos, false
		}
		t := p.TypesInfo.TypeOf(v)
		if t == nil {
			return token.NoPos, false
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsString == 0 {
			return token.NoPos, false
		}
		// Fully constant concatenation is folded at compile time; only a
		// runtime concat allocates.
		if p.TypesInfo.Types[v].Value != nil {
			return token.NoPos, false
		}
		return v.Pos(), true
	}
	return token.NoPos, false
}
