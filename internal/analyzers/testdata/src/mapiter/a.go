// Fixture for the mapiter analyzer: slices built from randomized map
// iteration order must be canonicalized before they escape.
package mapiter

import "slices"

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration order`
	}
	return out
}

func valuesUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `map iteration order`
	}
	return out
}

func derivedUnsorted(m map[string]int) []int {
	var out []int
	for k := range m {
		v := m[k] * 2
		out = append(out, v) // want `map iteration order`
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // ok: sorted below
	}
	slices.Sort(out)
	return out
}

func sortedViaHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // ok: canonicalized by the helper below
	}
	sortAndDedup(out)
	return out
}

func sortAndDedup(s []string) {
	slices.Sort(s)
}

func orderFreeCount(m map[string]int) []int {
	var out []int
	for range m {
		out = append(out, 1) // ok: appended value is independent of order
	}
	return out
}

func intoMapIsFine(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v // ok: destination is order-insensitive
	}
	return out
}

func allowedSite(m map[string]int, emit func(string)) {
	var out []string
	for k := range m {
		//sproutvet:allow mapiter consumer treats this as a set; order never reaches output
		out = append(out, k)
	}
	for _, k := range out {
		emit(k)
	}
}
