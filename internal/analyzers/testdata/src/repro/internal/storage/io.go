// io.go is the designated fault-plane funnel and is exempt from iohook
// wholesale: these raw calls must NOT be reported.
package storage

import "os"

func ioOpenFixture(path string) (*os.File, error) { return os.Open(path) }

func ioWriteFixture(f *os.File, b []byte, off int64) error {
	_, err := f.WriteAt(b, off)
	return err
}
