// Fixture for the iohook analyzer. It lives at the import path
// repro/internal/storage because iohook only watches the storage package,
// where every OS-level I/O call must funnel through io.go's wrappers.
package storage

import "os"

func bad(f *os.File, buf []byte) {
	_, _ = os.Open("x")      // want `os.Open bypasses the fault plane`
	_, _ = os.Create("x")    // want `os.Create bypasses the fault plane`
	_ = os.Remove("x")       // want `os.Remove bypasses the fault plane`
	_, _ = os.ReadFile("x")  // want `os.ReadFile bypasses the fault plane`
	_, _ = f.WriteAt(buf, 0) // want `\(\*os.File\).WriteAt bypasses the fault plane`
	_, _ = f.ReadAt(buf, 0)  // want `\(\*os.File\).ReadAt bypasses the fault plane`
	_ = f.Sync()             // want `\(\*os.File\).Sync bypasses the fault plane`
	_, _ = f.Write(buf)      // want `\(\*os.File\).Write bypasses the fault plane`
}

func cleanCalls(f *os.File) {
	_ = os.TempDir() // ok: not an I/O data path
	_ = os.Getpid()  // ok
	_ = f.Close()    // ok: close is not hookable
	_, _ = f.Stat()  // ok
}

func allowed() {
	_ = os.Remove("x") //sproutvet:allow iohook fixture demonstrates the documented escape hatch
}
