// Fixture for the fnvkey analyzer. It lives at the import path
// repro/internal/engine because fnvkey only fires in the hot-path packages.
package engine

import "fmt"

func bad(m map[string]int, a, b string) {
	m[fmt.Sprintf("%s|%s", a, b)]++ // want `string rendering`
	m[a+"|"+b] = 1                  // want `string rendering`
	key := fmt.Sprintf("%s|%s", a, b)
	m[key] = 2 // want `built by string rendering`
}

func directIndexRead(m map[string]int, a, b string) int {
	return m[fmt.Sprint(a, b)] // want `string rendering`
}

func good(m map[string]int, byHash map[uint64]int, a, b string) {
	m[a] = 1            // ok: no rendering
	m["li"+"teral"] = 1 // ok: constant concatenation folds at compile time
	byHash[fnv(a, b)] = 1
	s := fmt.Sprintf("%s|%s", a, b)
	use(s) // ok: rendered string not used as a map key
}

func fnv(a, b string) uint64 {
	h := uint64(1469598103934665603)
	for _, s := range [2]string{a, b} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
	}
	return h
}

func use(string) {}

func allowedSite(m map[string]int, a, b string) {
	m[a+b] = 1 //sproutvet:allow fnvkey cold path run once per query, readability wins over the alloc
}
