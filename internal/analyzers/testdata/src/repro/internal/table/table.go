// Package table is a fixture stub of repro/internal/table: just enough
// surface (Tuple, Slab) for the batchalias fixtures to typecheck. The
// analyzers match the type by package-path suffix, so this stub stands in
// for the real package.
package table

type Value struct{ S string }

type Tuple []Value

func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

type Slab struct{ buf []Value }

func (s *Slab) Clone(t Tuple) Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Columnar stubs: just enough ColBatch/ColVec surface for the NextColBatch
// fixtures to typecheck.
type ColVec struct {
	Ints []int64
	Strs []string
}

type ColBatch struct {
	N    int
	Sel  []int32
	Cols []ColVec
}

func (b *ColBatch) HashInto(idx []int, dst []uint64) []uint64 { return dst }

func (b *ColBatch) WriteRow(i int, dst Tuple) {}
