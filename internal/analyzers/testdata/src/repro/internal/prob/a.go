// Fixture for the detrand analyzer. It lives at the import path
// repro/internal/prob because detrand only fires inside the deterministic
// packages.
package prob

import (
	"math/rand"
	"os"
	"time"
)

func bad(t0 time.Time) {
	_ = rand.Intn(10)                  // want `global math/rand.Intn`
	_ = rand.Float64()                 // want `global math/rand.Float64`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand.Shuffle`
	_ = time.Now()                     // want `time.Now is nondeterministic`
	_ = time.Since(t0)                 // want `time.Since is nondeterministic`
	_ = os.Getpid()                    // want `os.Getpid varies per process`
}

func seededIsFine(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64() // ok: seeded stream, method call
}

func allowed() time.Time {
	return time.Now() //sproutvet:allow detrand fixture demonstrates the documented escape hatch
}

func allowedAbove() time.Time {
	//sproutvet:allow detrand the own-line directive form covers the next line
	return time.Now()
}

func reasonMissing() time.Time {
	/* want `needs a non-empty reason` */ //sproutvet:allow detrand
	return time.Now()                     // want `time.Now is nondeterministic`
}

func unknownAnalyzer() {
	/* want `unknown analyzer` */ //sproutvet:allow nosuchanalyzer because reasons
	_ = 1
}
