// Fixture for the sortslice analyzer: the reflection-based sort.Slice
// family is banned in favor of the slices generics.
package sortslice

import (
	"slices"
	"sort"
)

func bad(xs []int, ss []string, fs []float64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })       // want `sort.Slice allocates`
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort.SliceStable allocates`
	sort.Strings(ss)                                                   // want `sort.Strings allocates`
	sort.Ints(xs)                                                      // want `sort.Ints allocates`
	sort.Float64s(fs)                                                  // want `sort.Float64s allocates`
}

func good(xs []int, ss []string) {
	slices.Sort(xs)
	slices.Sort(ss)
	slices.SortFunc(xs, func(a, b int) int { return a - b })
}

type byLen []string

func (s byLen) Len() int           { return len(s) }
func (s byLen) Less(i, j int) bool { return len(s[i]) < len(s[j]) }
func (s byLen) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

func interfaceSortIsFine(s byLen) {
	sort.Sort(s) // ok: sort.Sort over a concrete Interface impl is not banned
}

func allowedSite(xs []int) {
	sort.Ints(xs) //sproutvet:allow sortslice exercising the reflection path deliberately in this fixture
}
