// Fixture for the poolreset analyzer: sync.Pool values with a Reset method
// must be Reset before reuse.
package poolreset

import "sync"

type builder struct{ memo map[int]int }

func (b *builder) Reset() { clear(b.memo) }

type plain struct{ n int }

var pool sync.Pool
var plainPool sync.Pool

func missingReset() *builder {
	b, _ := pool.Get().(*builder) // want `never Reset`
	if b == nil {
		b = &builder{memo: map[int]int{}}
	}
	return b
}

func missingResetNoOk() *builder {
	b := pool.Get().(*builder) // want `never Reset`
	return b
}

func blessedShape() *builder {
	b, _ := pool.Get().(*builder) // ok: Reset in the else branch
	if b == nil {
		b = &builder{memo: map[int]int{}}
	} else {
		b.Reset()
	}
	return b
}

func noResetMethod() *plain {
	p, _ := plainPool.Get().(*plain) // ok: *plain has no Reset
	if p == nil {
		p = &plain{}
	}
	return p
}

func allowedSite() *builder {
	b, _ := pool.Get().(*builder) //sproutvet:allow poolreset builder is discarded after inspection, never compiled with
	return b
}
