// Fixture pinning the package scoping of detrand and fnvkey: this package
// is outside both watch lists, so the violations below must produce zero
// diagnostics (no want comments anywhere in this file).
package scopecheck

import (
	"fmt"
	"math/rand"
	"time"
)

func nondeterminismOutsideWatchedPackages(m map[string]int, a string) {
	_ = rand.Intn(10)
	_ = time.Now()
	m[fmt.Sprintf("%s", a)] = 1
}
