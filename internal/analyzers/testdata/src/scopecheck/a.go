// Fixture pinning the package scoping of detrand, fnvkey and iohook: this
// package is outside every watch list, so the violations below must
// produce zero diagnostics (no want comments anywhere in this file).
package scopecheck

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

func nondeterminismOutsideWatchedPackages(m map[string]int, a string) {
	_ = rand.Intn(10)
	_ = time.Now()
	m[fmt.Sprintf("%s", a)] = 1
}

func rawIOOutsideStorage(f *os.File, b []byte) {
	_, _ = os.Open("x")
	_, _ = f.WriteAt(b, 0)
	_ = f.Sync()
}
