// Fixture for the batchalias analyzer: retaining tuples handed out by
// NextBatch-shaped calls without a clone.
package batchalias

import "repro/internal/table"

type op interface {
	NextBatch(dst []table.Tuple) (int, error)
}

type sink struct {
	rows []table.Tuple
	cur  table.Tuple
}

func retainRange(o op) ([]table.Tuple, error) {
	buf := make([]table.Tuple, 64)
	var out []table.Tuple
	for {
		n, err := o.NextBatch(buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		for _, t := range buf[:n] {
			out = append(out, t) // want `appended without a clone`
		}
	}
}

func retainIndexed(o op, s *sink) error {
	buf := make([]table.Tuple, 64)
	n, err := o.NextBatch(buf)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s.rows = append(s.rows, buf[i]) // want `appended without a clone`
	}
	s.cur = buf[0] // want `stored in a field without a clone`
	return nil
}

func retainAlias(o op, s *sink) error {
	buf := make([]table.Tuple, 64)
	if _, err := o.NextBatch(buf); err != nil {
		return err
	}
	t := buf[0]
	s.cur = t // want `stored in a field without a clone`
	return nil
}

func retainWholesale(o op) []table.Tuple {
	buf := make([]table.Tuple, 64)
	n, _ := o.NextBatch(buf)
	var out []table.Tuple
	out = append(out, buf[:n]...) // want `appended wholesale`
	return out
}

func cloneThroughSlab(o op) ([]table.Tuple, error) {
	buf := make([]table.Tuple, 64)
	var slab table.Slab
	var out []table.Tuple
	for {
		n, err := o.NextBatch(buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		for _, t := range buf[:n] {
			out = append(out, slab.Clone(t)) // ok: slab-cloned
		}
	}
}

func cloneThroughMethod(o op) ([]table.Tuple, error) {
	buf := make([]table.Tuple, 64)
	var out []table.Tuple
	n, err := o.NextBatch(buf)
	for i := 0; i < n; i++ {
		out = append(out, buf[i].Clone()) // ok: cloned
	}
	return out, err
}

func fillCallerBatch(o op, dst []table.Tuple) (int, error) {
	buf := make([]table.Tuple, len(dst))
	n, err := o.NextBatch(buf)
	for i := 0; i < n; i++ {
		dst[i] = buf[i] // ok: dst is the caller's batch parameter
	}
	return n, err
}

type cursor struct{ cur table.Tuple }

func (c *cursor) advanceAllowed(o op) error {
	buf := make([]table.Tuple, 8)
	if _, err := o.NextBatch(buf); err != nil {
		return err
	}
	//sproutvet:allow batchalias cursor only lives until the next NextBatch call on o
	c.cur = buf[0]
	return nil
}

// --- ColBatch half of the contract: NextColBatch refills reused column
// storage, so slices and ColVec headers read out of the batch must not be
// retained.

type colOp interface {
	NextColBatch(dst *table.ColBatch) (int, error)
}

type colSink struct {
	ints   []int64
	vec    table.ColVec
	slices [][]int64
}

func colRetainField(o colOp, s *colSink) error {
	b := &table.ColBatch{}
	if _, err := o.NextColBatch(b); err != nil {
		return err
	}
	s.ints = b.Cols[0].Ints // want `stored in a field without a copy`
	s.vec = b.Cols[0]       // want `stored in a field without a copy`
	return nil
}

func colRetainAlias(o colOp, s *colSink) error {
	b := &table.ColBatch{}
	if _, err := o.NextColBatch(b); err != nil {
		return err
	}
	sel := b.Sel
	s.slices = append(s.slices, nil)
	s.slices[0] = nil
	_ = sel
	s.ints = nil
	col := b.Cols[0].Ints
	s.ints = col // want `stored in a field without a copy`
	return nil
}

func colRetainAppend(o colOp, s *colSink) error {
	b := &table.ColBatch{}
	if _, err := o.NextColBatch(b); err != nil {
		return err
	}
	s.slices = append(s.slices, b.Cols[0].Ints) // want `appended without a copy`
	return nil
}

func colCopyOut(o colOp) ([]int64, error) {
	b := &table.ColBatch{}
	var out []int64
	for {
		n, err := o.NextColBatch(b)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, b.Cols[0].Ints...) // ok: the cells are copied out
	}
}

type colOperator struct {
	in  colOp
	buf *table.ColBatch
}

func (c *colOperator) NextColBatch(dst *table.ColBatch) (int, error) {
	n, err := c.in.NextColBatch(c.buf)
	if err != nil || n == 0 {
		return 0, err
	}
	// Filling the caller's batch is the protocol, not retention.
	dst.Cols[0] = c.buf.Cols[0]
	dst.Sel = c.buf.Sel
	dst.N = c.buf.N
	return n, nil
}

func colHashHandoff(o colOp, hashes []uint64) ([]uint64, error) {
	b := &table.ColBatch{}
	if _, err := o.NextColBatch(b); err != nil {
		return nil, err
	}
	hashes = b.HashInto([]int{0}, hashes) // ok: call results are hand-offs
	return hashes, nil
}

type colCursor struct{ sel []int32 }

func (c *colCursor) allowedRetain(o colOp) error {
	b := &table.ColBatch{}
	if _, err := o.NextColBatch(b); err != nil {
		return err
	}
	//sproutvet:allow batchalias selection only lives until the next NextColBatch on o
	c.sel = b.Sel
	return nil
}
