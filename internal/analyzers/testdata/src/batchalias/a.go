// Fixture for the batchalias analyzer: retaining tuples handed out by
// NextBatch-shaped calls without a clone.
package batchalias

import "repro/internal/table"

type op interface {
	NextBatch(dst []table.Tuple) (int, error)
}

type sink struct {
	rows []table.Tuple
	cur  table.Tuple
}

func retainRange(o op) ([]table.Tuple, error) {
	buf := make([]table.Tuple, 64)
	var out []table.Tuple
	for {
		n, err := o.NextBatch(buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		for _, t := range buf[:n] {
			out = append(out, t) // want `appended without a clone`
		}
	}
}

func retainIndexed(o op, s *sink) error {
	buf := make([]table.Tuple, 64)
	n, err := o.NextBatch(buf)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s.rows = append(s.rows, buf[i]) // want `appended without a clone`
	}
	s.cur = buf[0] // want `stored in a field without a clone`
	return nil
}

func retainAlias(o op, s *sink) error {
	buf := make([]table.Tuple, 64)
	if _, err := o.NextBatch(buf); err != nil {
		return err
	}
	t := buf[0]
	s.cur = t // want `stored in a field without a clone`
	return nil
}

func retainWholesale(o op) []table.Tuple {
	buf := make([]table.Tuple, 64)
	n, _ := o.NextBatch(buf)
	var out []table.Tuple
	out = append(out, buf[:n]...) // want `appended wholesale`
	return out
}

func cloneThroughSlab(o op) ([]table.Tuple, error) {
	buf := make([]table.Tuple, 64)
	var slab table.Slab
	var out []table.Tuple
	for {
		n, err := o.NextBatch(buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
		for _, t := range buf[:n] {
			out = append(out, slab.Clone(t)) // ok: slab-cloned
		}
	}
}

func cloneThroughMethod(o op) ([]table.Tuple, error) {
	buf := make([]table.Tuple, 64)
	var out []table.Tuple
	n, err := o.NextBatch(buf)
	for i := 0; i < n; i++ {
		out = append(out, buf[i].Clone()) // ok: cloned
	}
	return out, err
}

func fillCallerBatch(o op, dst []table.Tuple) (int, error) {
	buf := make([]table.Tuple, len(dst))
	n, err := o.NextBatch(buf)
	for i := 0; i < n; i++ {
		dst[i] = buf[i] // ok: dst is the caller's batch parameter
	}
	return n, err
}

type cursor struct{ cur table.Tuple }

func (c *cursor) advanceAllowed(o op) error {
	buf := make([]table.Tuple, 8)
	if _, err := o.NextBatch(buf); err != nil {
		return err
	}
	//sproutvet:allow batchalias cursor only lives until the next NextBatch call on o
	c.cur = buf[0]
	return nil
}
