package engine

import (
	"math/rand"
	"os"
	"slices"
	"testing"

	"repro/internal/fault"
	"repro/internal/table"
)

func canonRows(rows []table.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	slices.Sort(out)
	return out
}

// TestHashJoinGraceFallback: a governed hash join that cannot afford its
// build side degrades to sort-merge, produces the same multiset of rows,
// leaves no spill files behind, and balances the governor back to zero.
func TestHashJoinGraceFallback(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var lp, rp [][2]int64
	for i := 0; i < 400; i++ {
		lp = append(lp, [2]int64{int64(r.Intn(30)), int64(i)})
		rp = append(rp, [2]int64{int64(r.Intn(30)), int64(10000 + i)})
	}
	l := pairRel("k", "x", lp...)
	rr := pairRel("k", "y", rp...)

	plain, err := NewHashJoin(NewMemScan(l), NewMemScan(rr), []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := canonRows(drain(t, plain))

	dir := t.TempDir()
	g := fault.NewGovernor(32<<10, nil) // below one chunk: first build reservation is denied
	gj, err := NewHashJoin(NewMemScan(l), NewMemScan(rr), []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	gj.Mem = g
	gj.SortBudget = 64 // force the grace sorts to spill
	gj.TmpDir = dir
	got := canonRows(drain(t, gj))

	if !gj.GraceMode() {
		t.Fatal("governed join under pressure must enter grace mode")
	}
	if len(got) != len(want) {
		t.Fatalf("grace join %d rows, hash join %d rows", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: %s vs %s", i, got[i], want[i])
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("grace join leaked spill files: %v", entries)
	}
	if g.Used() != 0 {
		t.Errorf("governor unbalanced after grace join: %d", g.Used())
	}
	if !g.Pressured() {
		t.Error("governor must record the denial that triggered grace mode")
	}
}

// TestHashJoinGovernedNoPressure: with an ample budget the governed join
// stays on the hash path, produces identical rows in identical order, and
// releases everything it reserved.
func TestHashJoinGovernedNoPressure(t *testing.T) {
	l := pairRel("k", "x", [2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30})
	rr := pairRel("k", "y", [2]int64{2, 200}, [2]int64{2, 201}, [2]int64{4, 400})

	plain, err := NewHashJoin(NewMemScan(l), NewMemScan(rr), []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, plain)

	g := fault.NewGovernor(1<<30, nil)
	gj, err := NewHashJoin(NewMemScan(l), NewMemScan(rr), []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	gj.Mem = g
	got := drain(t, gj)

	if gj.GraceMode() {
		t.Fatal("ample budget must not trigger grace mode")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Fatalf("row %d differs: %s vs %s", i, got[i], want[i])
		}
	}
	if g.Used() != 0 {
		t.Errorf("governor unbalanced: %d", g.Used())
	}
	if g.HighWater() == 0 {
		t.Error("governed build must have charged the governor")
	}
}
