package engine

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/table"
)

// buildSide drains an operator into a TupleMap keyed on the given columns;
// tuples are retained, so drainEach's stable/slab clone rule applies.
func buildSide(op Operator, keys []int) (*table.TupleMap, error) {
	if ms, ok := op.(*MemScan); ok {
		// Fast path: the rows are already materialized and stable. The map
		// deliberately starts empty — presizing by row count over-allocates
		// heavily on repeated join keys (FK joins) and measures slower.
		built := table.NewTupleMap(keys, 0)
		for _, t := range ms.Rel.Rows {
			built.Add(t)
		}
		return built, nil
	}
	built := table.NewTupleMap(keys, 0)
	err := drainEach(op, func(t table.Tuple) error {
		built.Add(t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return built, nil
}

// HashJoin is an equi-join: it builds a hash table on the right input and
// probes with the left. The build side is keyed by table.HashOn hashes with
// Compare-based collision chains, so neither building nor probing renders
// per-row key strings. The output schema is left ++ right; the planner
// projects away the duplicated join attributes afterwards (the paper assumes
// join attributes share names across tables).
type HashJoin struct {
	Left, Right        Operator
	LeftKeys, RightKey []int
	Mem                *fault.Governor // optional: charge the build side, degrade to grace mode on denial
	SortBudget         int             // grace-mode sort budget (tuples); 0 = storage.DefaultSortBudget
	TmpDir             string          // grace-mode spill dir; "" = os.TempDir()
	out                *table.Schema
	built              *table.TupleMap
	grace              *MergeJoin    // non-nil after a memory-pressured Open
	graced             bool          // sticky across Close: the last Open degraded
	in                 []table.Tuple // reused probe batch
	inN, inPos         int
	cur                table.Group // matches for the current probe tuple
	curLen             int         // 1+len(cur.Rest), 0 when no match
	curLeft            table.Tuple
	curPos             int
	slots              slotBufs
	one                [1]table.Tuple
}

// NewHashJoin joins left and right on pairwise-equal key columns.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []int) (*HashJoin, error) {
	if len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("engine: hash join key arity mismatch")
	}
	return &HashJoin{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKey: rightKeys,
		out: left.Schema().Concat(right.Schema()),
	}, nil
}

// Schema returns left ++ right.
func (j *HashJoin) Schema() *table.Schema { return j.out }

// Open builds the hash table over the right input. With a governor set, the
// build side is charged as it grows; a denied reservation degrades the join
// to grace (sort-merge) mode instead of failing — see gracejoin.go. A failed
// Open leaves the join fully closed (children included): collectors do not
// Close a tree whose Open errored, so every operator must release what it
// acquired — child scanners' pinned pages, a grace sorter's spill runs —
// before surfacing the error (Close is idempotent throughout the engine,
// so re-closing an input some error path already closed is safe).
func (j *HashJoin) Open() error {
	j.grace = nil
	j.graced = false
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		j.Left.Close()
		return err
	}
	var built *table.TupleMap
	var err error
	if j.Mem != nil {
		var buffered []table.Tuple
		var pressured bool
		built, buffered, pressured, err = buildGoverned(j.Right, j.RightKey, j.Mem)
		if err == nil && pressured {
			if gerr := j.openGrace(buffered); gerr != nil {
				j.Left.Close()
				j.Right.Close()
				return gerr
			}
			return nil
		}
	} else {
		built, err = buildSide(j.Right, j.RightKey)
	}
	if err != nil {
		j.Left.Close()
		j.Right.Close()
		return err
	}
	j.built = built
	j.cur = table.Group{}
	j.curLen, j.curPos = 0, 0
	j.inN, j.inPos = 0, 0
	return nil
}

// Next yields the next joined tuple.
func (j *HashJoin) Next() (table.Tuple, bool, error) {
	n, err := j.NextBatch(j.one[:])
	if err != nil || n == 0 {
		return nil, false, err
	}
	return j.one[0], true, nil
}

// NextBatch fills dst with joined tuples built in reused per-slot buffers.
// The current probe tuple references the join's input batch, which is only
// refilled once its matches are exhausted, so no probe-side clone is needed.
func (j *HashJoin) NextBatch(dst []table.Tuple) (int, error) {
	if j.grace != nil {
		return j.grace.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		if j.curPos < j.curLen {
			r := j.cur.First
			if j.curPos > 0 {
				r = j.cur.Rest[j.curPos-1]
			}
			j.curPos++
			buf := j.slots.slot(n, j.out.Len())
			copy(buf, j.curLeft)
			copy(buf[len(j.curLeft):], r)
			dst[n] = buf
			n++
			continue
		}
		if j.inPos >= j.inN {
			j.in = batchScratch(j.in, BatchSize)
			k, err := NextBatch(j.Left, j.in)
			if err != nil {
				return 0, err
			}
			if k == 0 {
				return n, nil
			}
			j.inN, j.inPos = k, 0
		}
		//sproutvet:allow batchalias probe cursor lives only until j.in is refilled, and its matches drain first (see NextBatch doc)
		j.curLeft = j.in[j.inPos]
		j.inPos++
		g, ok := j.built.Lookup(j.curLeft, j.LeftKeys)
		j.cur = g
		j.curLen = 0
		if ok {
			j.curLen = 1 + len(g.Rest)
		}
		j.curPos = 0
	}
	return n, nil
}

// Close closes both inputs and drops the hash table. In grace mode the
// merge join owns the left input (via its wrapping Sort) and the sorted
// right stream; the drained right input is closed here.
func (j *HashJoin) Close() error {
	j.built = nil
	if j.grace != nil {
		g := j.grace
		j.grace = nil
		errG := g.Close()
		errR := j.Right.Close()
		if errG != nil {
			return errG
		}
		return errR
	}
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// MergeJoin equi-joins two inputs already sorted on their join keys. Blocks
// of equal right keys are buffered to form the cross product with each
// matching left tuple. The output order (sorted by join keys) is what makes
// merge joins attractive right below the confidence operator, whose input
// must be sorted anyway (§V.B: "the order of tuples after most joins favours
// grouping and thus our operator").
type MergeJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []int
	out                 *table.Schema

	l         table.Tuple
	lOK       bool
	r         table.Tuple
	rOK       bool
	block     []table.Tuple // buffered right block with equal keys
	blockKey  table.Tuple
	blockPos  int
	inBlock   bool
	endOfLeft bool
	slots     slotBufs
}

// NewMergeJoin joins sorted inputs on pairwise-equal key columns.
func NewMergeJoin(left, right Operator, leftKeys, rightKeys []int) (*MergeJoin, error) {
	if len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("engine: merge join key arity mismatch")
	}
	return &MergeJoin{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys,
		out: left.Schema().Concat(right.Schema()),
	}, nil
}

// Schema returns left ++ right.
func (j *MergeJoin) Schema() *table.Schema { return j.out }

// Open opens both inputs and primes the cursors. Like every engine Open, a
// failure leaves the join fully closed, children included.
func (j *MergeJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		j.Left.Close()
		return err
	}
	var err error
	if err = j.advanceLeft(); err != nil {
		j.Left.Close()
		j.Right.Close()
		return err
	}
	j.r, j.rOK, err = j.Right.Next()
	if err != nil {
		j.Left.Close()
		j.Right.Close()
		return err
	}
	if j.rOK {
		j.r = j.r.Clone()
	}
	j.block = nil
	j.inBlock = false
	return nil
}

func (j *MergeJoin) advanceLeft() error {
	t, ok, err := j.Left.Next()
	if err != nil {
		return err
	}
	j.lOK = ok
	if ok {
		j.l = t.Clone()
	}
	return nil
}

func (j *MergeJoin) cmpKeys(l, r table.Tuple) int {
	for i := range j.LeftKeys {
		if c := table.Compare(l[j.LeftKeys[i]], r[j.RightKeys[i]]); c != 0 {
			return c
		}
	}
	return 0
}

// cmpRightKeys compares two right-side tuples; the block key is a right
// tuple, so indexing it with LeftKeys would read the wrong columns (or past
// the end) whenever the two key layouts differ.
func (j *MergeJoin) cmpRightKeys(a, b table.Tuple) int {
	for i := range j.RightKeys {
		if c := table.Compare(a[j.RightKeys[i]], b[j.RightKeys[i]]); c != 0 {
			return c
		}
	}
	return 0
}

// Next yields the next joined tuple.
func (j *MergeJoin) Next() (table.Tuple, bool, error) { return j.next(0) }

// next emits the next joined tuple into slot buffer i.
func (j *MergeJoin) next(slot int) (table.Tuple, bool, error) {
	for {
		if j.inBlock {
			if j.blockPos < len(j.block) {
				r := j.block[j.blockPos]
				j.blockPos++
				return j.combine(slot, j.l, r), true, nil
			}
			// Done pairing current left tuple with the block; advance left.
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
			if j.lOK && j.cmpKeys(j.l, j.blockKey) == 0 {
				j.blockPos = 0
				continue
			}
			j.inBlock = false
			j.block = nil
		}
		if !j.lOK || !j.rOK {
			return nil, false, nil
		}
		c := j.cmpKeys(j.l, j.r)
		switch {
		case c < 0:
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
		case c > 0:
			t, ok, err := j.Right.Next()
			if err != nil {
				return nil, false, err
			}
			j.rOK = ok
			if ok {
				j.r = t.Clone()
			}
		default:
			// Buffer the whole right block with this key.
			j.block = j.block[:0]
			j.blockKey = j.r.Clone()
			for j.rOK && j.cmpRightKeys(j.blockKey, j.r) == 0 {
				j.block = append(j.block, j.r)
				t, ok, err := j.Right.Next()
				if err != nil {
					return nil, false, err
				}
				j.rOK = ok
				if ok {
					j.r = t.Clone()
				}
			}
			j.blockPos = 0
			j.inBlock = true
		}
	}
}

// NextBatch emits joined tuples into reused per-slot buffers.
func (j *MergeJoin) NextBatch(dst []table.Tuple) (int, error) {
	return fillBatch(dst, j.next)
}

func (j *MergeJoin) combine(slot int, l, r table.Tuple) table.Tuple {
	buf := j.slots.slot(slot, j.out.Len())
	copy(buf, l)
	copy(buf[len(l):], r)
	return buf
}

// Close closes both inputs.
func (j *MergeJoin) Close() error {
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// NestedLoopJoin joins on an arbitrary predicate; the right input is
// materialized. It is the fallback for non-equi conditions and the smallest
// possible baseline join.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        Pred
	out         *table.Schema
	right       []table.Tuple
	l           table.Tuple
	lOK         bool
	pos         int
	slots       slotBufs
}

// NewNestedLoopJoin joins left and right on pred (nil means cross product).
func NewNestedLoopJoin(left, right Operator, pred Pred) *NestedLoopJoin {
	if pred == nil {
		pred = True{}
	}
	return &NestedLoopJoin{Left: left, Right: right, Pred: pred, out: left.Schema().Concat(right.Schema())}
}

// Schema returns left ++ right.
func (j *NestedLoopJoin) Schema() *table.Schema { return j.out }

// Open materializes the right input.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		j.Left.Close()
		return err
	}
	j.right = j.right[:0]
	err := drainEach(j.Right, func(t table.Tuple) error {
		j.right = append(j.right, t)
		return nil
	})
	if err != nil {
		j.Left.Close()
		j.Right.Close()
		return err
	}
	j.lOK = false
	j.pos = len(j.right)
	return nil
}

// Next yields the next qualifying pair.
func (j *NestedLoopJoin) Next() (table.Tuple, bool, error) { return j.next(0) }

func (j *NestedLoopJoin) next(slot int) (table.Tuple, bool, error) {
	buf := j.slots.slot(slot, j.out.Len())
	for {
		if j.pos < len(j.right) {
			r := j.right[j.pos]
			j.pos++
			copy(buf, j.l)
			copy(buf[len(j.l):], r)
			if j.Pred.Holds(buf) {
				return buf, true, nil
			}
			continue
		}
		t, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.l = t.Clone()
		j.lOK = true
		j.pos = 0
	}
}

// NextBatch emits qualifying pairs into reused per-slot buffers.
func (j *NestedLoopJoin) NextBatch(dst []table.Tuple) (int, error) {
	return fillBatch(dst, j.next)
}

// Close closes both inputs.
func (j *NestedLoopJoin) Close() error {
	j.right = nil
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
