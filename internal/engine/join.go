package engine

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// hashKey builds a string key for the values at the given indexes. Strings
// are length-prefixed so that concatenations cannot collide.
func hashKey(t table.Tuple, idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		v := t[i]
		fmt.Fprintf(&b, "%d:", v.Kind)
		switch v.Kind {
		case table.KindInt, table.KindBool:
			fmt.Fprintf(&b, "%d|", v.I)
		case table.KindFloat:
			fmt.Fprintf(&b, "%g|", v.F)
		case table.KindString:
			fmt.Fprintf(&b, "%d/%s|", len(v.S), v.S)
		default:
			b.WriteString("null|")
		}
	}
	return b.String()
}

// HashJoin is an equi-join: it builds a hash table on the right input and
// probes with the left. The output schema is left ++ right; the planner
// projects away the duplicated join attributes afterwards (the paper assumes
// join attributes share names across tables).
type HashJoin struct {
	Left, Right        Operator
	LeftKeys, RightKey []int
	out                *table.Schema
	built              map[string][]table.Tuple
	cur                []table.Tuple // matches for the current probe tuple
	curLeft            table.Tuple
	curPos             int
	buf                table.Tuple
}

// NewHashJoin joins left and right on pairwise-equal key columns.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []int) (*HashJoin, error) {
	if len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("engine: hash join key arity mismatch")
	}
	return &HashJoin{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKey: rightKeys,
		out: left.Schema().Concat(right.Schema()),
	}, nil
}

// Schema returns left ++ right.
func (j *HashJoin) Schema() *table.Schema { return j.out }

// Open builds the hash table over the right input.
func (j *HashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.built = make(map[string][]table.Tuple)
	for {
		t, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := hashKey(t, j.RightKey)
		j.built[k] = append(j.built[k], t.Clone())
	}
	j.cur = nil
	j.curPos = 0
	return nil
}

// Next yields the next joined tuple.
func (j *HashJoin) Next() (table.Tuple, bool, error) {
	for {
		if j.curPos < len(j.cur) {
			r := j.cur[j.curPos]
			j.curPos++
			return j.combine(j.curLeft, r), true, nil
		}
		l, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.curLeft = l.Clone()
		j.cur = j.built[hashKey(l, j.LeftKeys)]
		j.curPos = 0
	}
}

func (j *HashJoin) combine(l, r table.Tuple) table.Tuple {
	if j.buf == nil {
		j.buf = make(table.Tuple, j.out.Len())
	}
	copy(j.buf, l)
	copy(j.buf[len(l):], r)
	return j.buf
}

// Close closes both inputs and drops the hash table.
func (j *HashJoin) Close() error {
	j.built = nil
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// MergeJoin equi-joins two inputs already sorted on their join keys. Blocks
// of equal right keys are buffered to form the cross product with each
// matching left tuple. The output order (sorted by join keys) is what makes
// merge joins attractive right below the confidence operator, whose input
// must be sorted anyway (§V.B: "the order of tuples after most joins favours
// grouping and thus our operator").
type MergeJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []int
	out                 *table.Schema

	l         table.Tuple
	lOK       bool
	r         table.Tuple
	rOK       bool
	block     []table.Tuple // buffered right block with equal keys
	blockKey  table.Tuple
	blockPos  int
	inBlock   bool
	endOfLeft bool
	buf       table.Tuple
}

// NewMergeJoin joins sorted inputs on pairwise-equal key columns.
func NewMergeJoin(left, right Operator, leftKeys, rightKeys []int) (*MergeJoin, error) {
	if len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("engine: merge join key arity mismatch")
	}
	return &MergeJoin{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys,
		out: left.Schema().Concat(right.Schema()),
	}, nil
}

// Schema returns left ++ right.
func (j *MergeJoin) Schema() *table.Schema { return j.out }

// Open opens both inputs and primes the cursors.
func (j *MergeJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	var err error
	if err = j.advanceLeft(); err != nil {
		return err
	}
	j.r, j.rOK, err = j.Right.Next()
	if err != nil {
		return err
	}
	if j.rOK {
		j.r = j.r.Clone()
	}
	j.block = nil
	j.inBlock = false
	return nil
}

func (j *MergeJoin) advanceLeft() error {
	t, ok, err := j.Left.Next()
	if err != nil {
		return err
	}
	j.lOK = ok
	if ok {
		j.l = t.Clone()
	}
	return nil
}

func (j *MergeJoin) cmpKeys(l, r table.Tuple) int {
	for i := range j.LeftKeys {
		if c := table.Compare(l[j.LeftKeys[i]], r[j.RightKeys[i]]); c != 0 {
			return c
		}
	}
	return 0
}

// Next yields the next joined tuple.
func (j *MergeJoin) Next() (table.Tuple, bool, error) {
	for {
		if j.inBlock {
			if j.blockPos < len(j.block) {
				r := j.block[j.blockPos]
				j.blockPos++
				return j.combine(j.l, r), true, nil
			}
			// Done pairing current left tuple with the block; advance left.
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
			if j.lOK && j.cmpKeys(j.l, j.blockKey) == 0 {
				j.blockPos = 0
				continue
			}
			j.inBlock = false
			j.block = nil
		}
		if !j.lOK || !j.rOK {
			return nil, false, nil
		}
		c := j.cmpKeys(j.l, j.r)
		switch {
		case c < 0:
			if err := j.advanceLeft(); err != nil {
				return nil, false, err
			}
		case c > 0:
			t, ok, err := j.Right.Next()
			if err != nil {
				return nil, false, err
			}
			j.rOK = ok
			if ok {
				j.r = t.Clone()
			}
		default:
			// Buffer the whole right block with this key.
			j.block = j.block[:0]
			j.blockKey = j.r.Clone()
			for j.rOK && j.cmpKeys(j.blockKey, j.r) == 0 {
				j.block = append(j.block, j.r)
				t, ok, err := j.Right.Next()
				if err != nil {
					return nil, false, err
				}
				j.rOK = ok
				if ok {
					j.r = t.Clone()
				}
			}
			j.blockPos = 0
			j.inBlock = true
		}
	}
}

func (j *MergeJoin) combine(l, r table.Tuple) table.Tuple {
	if j.buf == nil {
		j.buf = make(table.Tuple, j.out.Len())
	}
	copy(j.buf, l)
	copy(j.buf[len(l):], r)
	return j.buf
}

// Close closes both inputs.
func (j *MergeJoin) Close() error {
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// NestedLoopJoin joins on an arbitrary predicate; the right input is
// materialized. It is the fallback for non-equi conditions and the smallest
// possible baseline join.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        Pred
	out         *table.Schema
	right       []table.Tuple
	l           table.Tuple
	lOK         bool
	pos         int
	buf         table.Tuple
}

// NewNestedLoopJoin joins left and right on pred (nil means cross product).
func NewNestedLoopJoin(left, right Operator, pred Pred) *NestedLoopJoin {
	if pred == nil {
		pred = True{}
	}
	return &NestedLoopJoin{Left: left, Right: right, Pred: pred, out: left.Schema().Concat(right.Schema())}
}

// Schema returns left ++ right.
func (j *NestedLoopJoin) Schema() *table.Schema { return j.out }

// Open materializes the right input.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.right = j.right[:0]
	for {
		t, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.right = append(j.right, t.Clone())
	}
	j.lOK = false
	j.pos = len(j.right)
	return nil
}

// Next yields the next qualifying pair.
func (j *NestedLoopJoin) Next() (table.Tuple, bool, error) {
	if j.buf == nil {
		j.buf = make(table.Tuple, j.out.Len())
	}
	for {
		if j.pos < len(j.right) {
			r := j.right[j.pos]
			j.pos++
			copy(j.buf, j.l)
			copy(j.buf[len(j.l):], r)
			if j.Pred.Holds(j.buf) {
				return j.buf, true, nil
			}
			continue
		}
		t, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.l = t.Clone()
		j.lOK = true
		j.pos = 0
	}
}

// Close closes both inputs.
func (j *NestedLoopJoin) Close() error {
	j.right = nil
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
