package engine

import (
	"context"
	"fmt"

	"repro/internal/pool"
	"repro/internal/table"
)

// This file is the partition-parallel side of the executor: chunked
// evaluation of per-tuple pipelines over in-memory relations (parallel
// scans) and a hash-partitioned join, both driven by the shared worker pool
// of internal/pool. Both produce output that is a deterministic function of
// their input alone — independent of the worker count and of scheduling —
// which is what lets the engine guarantee bit-identical results for
// workers=1 and workers=N.

// ParallelMinRows is the input size below which the parallel paths fall back
// to serial execution; see pool.ParallelMinRows.
const ParallelMinRows = pool.ParallelMinRows

// CollectChunks evaluates a per-tuple operator pipeline over an in-memory
// relation in parallel: the rows are split into contiguous chunks, each
// worker runs its own pipeline instance (built by wrap over a scan of its
// chunk) and the chunk outputs are concatenated in chunk order. Because the
// pipeline is row-wise and order-preserving, the result equals a serial
// wrap(scan(rel)) collection regardless of the chunk count — so the worker
// count never changes the output, only the wall-clock.
//
// wrap must build a fresh, independent pipeline on every call: instances run
// concurrently.
func CollectChunks(ctx context.Context, p *pool.Pool, rel *table.Relation, wrap func(Operator) (Operator, error)) (*table.Relation, error) {
	return collectChunks(ctx, p, rel, wrap, CollectCtx)
}

// CollectChunksVec is CollectChunks with each chunk's pipeline lowered to the
// columnar tier when possible (CollectCtxVec): the same rows in the same
// order, at vectorized speed.
func CollectChunksVec(ctx context.Context, p *pool.Pool, rel *table.Relation, wrap func(Operator) (Operator, error)) (*table.Relation, error) {
	return collectChunks(ctx, p, rel, wrap, func(ctx context.Context, op Operator) (*table.Relation, error) {
		out, _, err := CollectCtxVec(ctx, op)
		return out, err
	})
}

func collectChunks(ctx context.Context, p *pool.Pool, rel *table.Relation, wrap func(Operator) (Operator, error), collect func(context.Context, Operator) (*table.Relation, error)) (*table.Relation, error) {
	n := rel.Len()
	chunks := p.Workers()
	if !p.Parallel() || n < ParallelMinRows {
		op, err := wrap(NewMemScan(rel))
		if err != nil {
			return nil, err
		}
		return collect(ctx, op)
	}
	parts := make([]*table.Relation, chunks)
	err := p.Do(ctx, chunks, func(i int) error {
		lo, hi := i*n/chunks, (i+1)*n/chunks
		sub := &table.Relation{Schema: rel.Schema, Rows: rel.Rows[lo:hi]}
		op, err := wrap(NewMemScan(sub))
		if err != nil {
			return err
		}
		out, err := collect(ctx, op)
		if err != nil {
			return err
		}
		parts[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := table.NewRelation(parts[0].Schema)
	for _, part := range parts {
		out.Rows = append(out.Rows, part.Rows...)
	}
	return out, nil
}

// PartitionedHashJoin is the partition-parallel equi-join: both inputs are
// drained and split by join-key hash into a fixed number of partitions, the
// per-partition hash joins run on the worker pool, and the partition outputs
// are concatenated in partition order. Matching keys land in the same
// partition by construction, so the result is the same multiset as
// HashJoin's; the row order is a deterministic function of the inputs and
// the partition count — never of the worker count or scheduling.
type PartitionedHashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []int
	Pool                *pool.Pool
	Ctx                 context.Context
	out                 *table.Schema
	rows                []table.Tuple
	pos                 int
}

// joinPartitions is the fixed fan-out of a partitioned join. It must not
// depend on the worker count: the partition boundaries shape the output
// order, and the engine promises order stability across worker counts.
const joinPartitions = 16

// NewPartitionedHashJoin builds a partition-parallel join over the pool.
func NewPartitionedHashJoin(left, right Operator, leftKeys, rightKeys []int, p *pool.Pool, ctx context.Context) (*PartitionedHashJoin, error) {
	if len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("engine: hash join key arity mismatch")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &PartitionedHashJoin{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys,
		Pool: p, Ctx: ctx,
		out: left.Schema().Concat(right.Schema()),
	}, nil
}

// Schema returns left ++ right.
func (j *PartitionedHashJoin) Schema() *table.Schema { return j.out }

// drainStable materializes an operator's output with stable row storage.
// A MemScan already yields rows owned by an in-memory relation (the
// parallel leaf pipelines and staged intermediates hand those in), so its
// relation is reused as-is instead of clone-copying every tuple a second
// time; everything else goes through the batched collector.
func drainStable(ctx context.Context, op Operator) (*table.Relation, error) {
	if ms, ok := op.(*MemScan); ok {
		return ms.Rel, nil
	}
	return CollectCtx(ctx, op)
}

// Open drains and partitions both inputs and joins the partitions in
// parallel.
func (j *PartitionedHashJoin) Open() error {
	left, err := drainStable(j.Ctx, j.Left)
	if err != nil {
		return err
	}
	right, err := drainStable(j.Ctx, j.Right)
	if err != nil {
		return err
	}
	// Small inputs skip the partitioning: one serial build+probe costs less
	// than 16-way hashing plus pool dispatch. The switch depends only on
	// the input (never on the worker count), so the output order stays a
	// deterministic function of the inputs.
	if left.Len()+right.Len() < ParallelMinRows {
		j.rows = joinPartition(left.Rows, right.Rows, j.LeftKeys, j.RightKeys)
		j.pos = 0
		return nil
	}
	lParts := table.PartitionOn(left.Rows, j.LeftKeys, joinPartitions)
	rParts := table.PartitionOn(right.Rows, j.RightKeys, joinPartitions)
	outs := make([][]table.Tuple, joinPartitions)
	err = j.Pool.Do(j.Ctx, joinPartitions, func(p int) error {
		outs[p] = joinPartition(lParts[p], rParts[p], j.LeftKeys, j.RightKeys)
		return nil
	})
	if err != nil {
		return err
	}
	j.rows = j.rows[:0]
	for _, part := range outs {
		j.rows = append(j.rows, part...)
	}
	j.pos = 0
	return nil
}

// joinPartition builds a hash table over the right rows and probes with the
// left rows in order — one partition's worth of HashJoin. Output rows are
// allocated from a per-partition slab (they are retained by the caller).
func joinPartition(left, right []table.Tuple, lk, rk []int) []table.Tuple {
	if len(left) == 0 || len(right) == 0 {
		return nil
	}
	built := table.NewTupleMap(rk, len(right))
	for _, t := range right {
		built.Add(t)
	}
	var out []table.Tuple
	var slab table.Slab
	emit := func(l, r table.Tuple) {
		row := slab.Alloc(len(l) + len(r))
		copy(row, l)
		copy(row[len(l):], r)
		out = append(out, row)
	}
	for _, l := range left {
		g, ok := built.Lookup(l, lk)
		if !ok {
			continue
		}
		emit(l, g.First)
		for _, r := range g.Rest {
			emit(l, r)
		}
	}
	return out
}

// Next streams the materialized join result.
func (j *PartitionedHashJoin) Next() (table.Tuple, bool, error) {
	if j.pos >= len(j.rows) {
		return nil, false, nil
	}
	t := j.rows[j.pos]
	j.pos++
	return t, true, nil
}

// NextBatch streams the materialized join result.
func (j *PartitionedHashJoin) NextBatch(dst []table.Tuple) (int, error) {
	n := copy(dst, j.rows[j.pos:])
	j.pos += n
	return n, nil
}

// StableTuples: the join result is materialized in slab storage.
func (j *PartitionedHashJoin) StableTuples() bool { return true }

// Close drops the materialized result.
func (j *PartitionedHashJoin) Close() error {
	j.rows = nil
	return nil
}
