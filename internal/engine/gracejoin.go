package engine

import (
	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/table"
)

// Grace mode for the hash join. A governed HashJoin charges its build side
// against a fault.Governor as it grows; when a reservation is denied the
// join abandons the in-memory hash table and degrades to a sort-merge
// strategy — both inputs are sorted on their join keys by governed external
// sorts (which spill under the same pressure) and merge-joined. The output
// multiset is identical; only the memory profile changes, bounded by the
// sort budget instead of the build-side cardinality.

// joinMemChunk is the reservation granularity of a governed build side.
const joinMemChunk = 64 << 10

// joinTupleMemEst approximates the heap footprint of one build-side tuple:
// the buffered handoff slot, the map group entry, and per-value storage.
func joinTupleMemEst(t table.Tuple) int64 { return 64 + 48*int64(len(t)) }

// preOpened adapts an operator that Open was already called on: a wrapping
// Sort can re-"open" it without double-opening the underlying tree.
type preOpened struct {
	Operator
}

func (preOpened) Open() error { return nil }

// iterOp adapts a sorted TupleIterator (an external sorter's output) into
// an Operator; Close releases the iterator, removing any spill runs.
type iterOp struct {
	schema *table.Schema
	it     storage.TupleIterator
}

func (o *iterOp) Schema() *table.Schema { return o.schema }
func (o *iterOp) Open() error           { return nil }
func (o *iterOp) Next() (table.Tuple, bool, error) {
	if o.it == nil {
		return nil, false, nil
	}
	return o.it.Next()
}

// StableTuples: sorted streams own their tuples (in-memory buffer or fresh
// spill-file decodes), matching Sort's contract.
func (o *iterOp) StableTuples() bool { return true }

func (o *iterOp) Close() error {
	if o.it == nil {
		return nil
	}
	err := o.it.Close()
	o.it = nil
	return err
}

// buildGoverned drains op into a TupleMap, charging gov in joinMemChunk
// steps. On a denied reservation it stops at a batch boundary and returns
// pressured=true along with every tuple drained so far (in input order, so
// the grace path preserves the ungoverned path's tuple ordering); op is
// left open and mid-stream for the caller to continue draining. All
// reservations are released before returning — the grace sorters account
// for their own memory.
func buildGoverned(op Operator, keys []int, gov *fault.Governor) (built *table.TupleMap, buffered []table.Tuple, pressured bool, err error) {
	built = table.NewTupleMap(keys, 0)
	var est, reserved int64
	release := func() {
		gov.Release(reserved)
		reserved = 0
	}
	buf := make([]table.Tuple, BatchSize)
	stable := Stable(op)
	var slab table.Slab
	for {
		n, err := NextBatch(op, buf)
		if err != nil {
			release()
			return nil, nil, false, err
		}
		if n == 0 {
			release()
			return built, nil, false, nil
		}
		for _, t := range buf[:n] {
			if !stable {
				t = slab.Clone(t)
			}
			est += joinTupleMemEst(t)
			buffered = append(buffered, t) //sproutvet:allow batchalias t is slab-cloned above unless the source promises StableTuples — drainCtx's conditional-stability idiom, inlined so one clone serves both the map and the grace buffer
			built.Add(t)
		}
		if est > reserved {
			need := ((est - reserved + joinMemChunk - 1) / joinMemChunk) * joinMemChunk
			if !gov.TryReserve(need) {
				release()
				return nil, buffered, true, nil
			}
			reserved += need
		}
	}
}

// openGrace finishes a pressured Open: buffered holds the build-side prefix
// already drained, j.Right the remainder. Both sides are sorted on their
// join keys under the governor and merge-joined.
func (j *HashJoin) openGrace(buffered []table.Tuple) error {
	rs := storage.NewExternalSorter(func(a, b table.Tuple) int {
		return table.CompareOn(a, b, j.RightKey)
	}, j.SortBudget, j.TmpDir)
	rs.Govern(j.Mem)
	for _, t := range buffered {
		if err := rs.Add(t); err != nil {
			rs.Discard()
			return err
		}
	}
	if err := drainEach(j.Right, rs.Add); err != nil {
		rs.Discard()
		return err
	}
	rightIt, err := rs.Finish()
	if err != nil {
		return err
	}
	right := &iterOp{schema: j.Right.Schema(), it: rightIt}
	left := &Sort{
		In:     preOpened{j.Left},
		Spec:   SortSpec{Cols: j.LeftKeys},
		Budget: j.SortBudget,
		TmpDir: j.TmpDir,
		Mem:    j.Mem,
	}
	mj, err := NewMergeJoin(left, right, j.LeftKeys, j.RightKey)
	if err != nil {
		right.Close()
		return err
	}
	if err := mj.Open(); err != nil {
		right.Close()
		left.Close()
		return err
	}
	j.grace = mj
	j.graced = true
	return nil
}

// GraceMode reports whether the last Open degraded to sort-merge under
// memory pressure. The flag survives Close so callers can inspect it after
// the plan is torn down.
func (j *HashJoin) GraceMode() bool { return j.graced }
