package engine

import "repro/internal/table"

// OpStats accumulates what flowed through one Counted wrapper. The fields
// are plain int64s: every pipeline in this engine is pulled from a single
// goroutine (parallel plans materialize chunks through per-chunk wrappers,
// and joins drain their children serially in Open), so no atomics are
// needed. Read the fields only after the pipeline has been drained.
type OpStats struct {
	Rows       int64 // tuples that passed through
	Batches    int64 // NextBatch calls that returned at least one tuple
	ColBatches int64 // NextColBatch calls that returned at least one live row
}

// CountedOp is a transparent pass-through operator that counts the rows and
// batches flowing out of its input into an OpStats. It preserves the
// batched fast path and the stability promise of its input, so wrapping an
// operator changes nothing about execution except the two counter bumps per
// batch — cheap enough to leave in traced plans.
type CountedOp struct {
	In Operator
	S  *OpStats
}

// Counted wraps op so that rows and batches drained from it are tallied
// into s.
func Counted(op Operator, s *OpStats) *CountedOp { return &CountedOp{In: op, S: s} }

// Schema returns the input's schema.
func (c *CountedOp) Schema() *table.Schema { return c.In.Schema() }

// Open opens the input.
func (c *CountedOp) Open() error { return c.In.Open() }

// Next counts and forwards one tuple.
func (c *CountedOp) Next() (table.Tuple, bool, error) {
	t, ok, err := c.In.Next()
	if ok && err == nil {
		c.S.Rows++
	}
	return t, ok, err
}

// NextBatch counts and forwards one batch.
func (c *CountedOp) NextBatch(dst []table.Tuple) (int, error) {
	n, err := NextBatch(c.In, dst)
	if n > 0 && err == nil {
		c.S.Rows += int64(n)
		c.S.Batches++
	}
	return n, err
}

// StableTuples: a counter passes its input's tuples through untouched.
func (c *CountedOp) StableTuples() bool { return Stable(c.In) }

// Close closes the input.
func (c *CountedOp) Close() error { return c.In.Close() }
