package engine

import (
	"context"
	"fmt"

	"repro/internal/storage"
	"repro/internal/table"
)

// This file is the columnar execution tier: operators that move
// table.ColBatch column vectors instead of []table.Tuple rows, in the
// MonetDB/X100 vectorized tradition. The hot relational plumbing — scan,
// filter, project, hash join — runs as tight per-column loops over typed
// slices with a selection vector, paying one interface call per batch
// instead of per-row Value unboxing. Everything above the columnar region
// (sort, group-by, the confidence operator) keeps consuming rows: ColToRows
// adapts a columnar pipeline back to the Volcano row interface, and
// Columnarize/Vectorize lower a row plan into the maximal columnar region it
// supports, falling back to rows at the first operator that has no columnar
// form. The columnar path is a pure execution-strategy change: it emits the
// same tuples in the same order as the row path (hashes via
// ColBatch.HashInto are bit-identical to table.HashOn), so confidences are
// pinned bit-identical across the two tiers.

// ColOperator is the columnar Volcano interface. NextColBatch fills dst with
// the next batch and returns the number of live rows (selection applied);
// 0 means the stream is exhausted. The batch contents — column slices
// included — are valid only until the next NextColBatch call on the same
// operator; consumers that retain slices or cells across batches must copy
// them (the batchalias analyzer enforces this).
type ColOperator interface {
	Schema() *table.Schema
	Open() error
	NextColBatch(dst *table.ColBatch) (int, error)
	Close() error
}

// ColMemScan iterates an in-memory relation a column batch at a time,
// transposing BatchSize rows per call.
type ColMemScan struct {
	Rel *table.Relation
	pos int
}

// Schema returns the relation's schema.
func (s *ColMemScan) Schema() *table.Schema { return s.Rel.Schema }

// Open resets the cursor.
func (s *ColMemScan) Open() error { s.pos = 0; return nil }

// NextColBatch transposes up to BatchSize rows onto dst.
func (s *ColMemScan) NextColBatch(dst *table.ColBatch) (int, error) {
	if s.pos >= len(s.Rel.Rows) {
		return 0, nil
	}
	dst.Reset(s.Rel.Schema)
	for s.pos < len(s.Rel.Rows) && dst.N < BatchSize {
		dst.AppendRow(s.Rel.Rows[s.pos])
		s.pos++
	}
	return dst.N, nil
}

// Close is a no-op.
func (s *ColMemScan) Close() error { return nil }

// ColHeapScan iterates a heap file straight into column vectors: each
// record's fields are decoded off the page (storage.FieldIter) and appended
// onto the destination columns without ever materializing a row tuple.
// String fields move as raw bytes into the dictionary or flat layout — the
// per-row string allocation of the row scan disappears entirely.
type ColHeapScan struct {
	File   *storage.HeapFile
	Pool   *storage.BufferPool
	schema *table.Schema
	sc     *storage.Scanner
	// need marks the columns some consumer actually reads (nil = all).
	// Dead columns are skipped while decoding — the field iterator still
	// advances past their payload, but no vector is built. Set by pruneCols;
	// a pruned column's vector stays empty, so a consumer reading it by
	// mistake fails loudly on the bounds check rather than seeing stale data.
	need []bool
}

// NewColHeapScan builds a columnar scan over a heap file whose tuples
// conform to schema.
func NewColHeapScan(f *storage.HeapFile, pool *storage.BufferPool, schema *table.Schema) *ColHeapScan {
	return &ColHeapScan{File: f, Pool: pool, schema: schema}
}

// Schema returns the declared schema.
func (s *ColHeapScan) Schema() *table.Schema { return s.schema }

// Open positions a fresh scanner.
func (s *ColHeapScan) Open() error {
	s.sc = s.File.NewScanner(s.Pool)
	return nil
}

// NextColBatch decodes up to BatchSize stored records onto dst's columns.
func (s *ColHeapScan) NextColBatch(dst *table.ColBatch) (int, error) {
	dst.Reset(s.schema)
	for dst.N < BatchSize {
		rec, ok, err := s.sc.NextRaw()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		it, err := storage.NewFieldIter(rec)
		if err != nil {
			return 0, err
		}
		if it.Len() != s.schema.Len() {
			return 0, fmt.Errorf("engine: heap tuple arity %d != schema arity %d", it.Len(), s.schema.Len())
		}
		for c := 0; c < s.schema.Len(); c++ {
			f, ok, err := it.Next()
			if err != nil {
				return 0, err
			}
			if !ok {
				return 0, fmt.Errorf("engine: heap tuple ended early at field %d", c)
			}
			if s.need != nil && !s.need[c] {
				continue
			}
			// String payloads alias the page; AppendStrBytes copies them
			// into the column's dictionary or flat bytes before the scan
			// advances. The remaining kinds take typed fast paths that
			// skip the Value boxing per cell.
			switch f.Kind {
			case table.KindString:
				dst.Cols[c].AppendStrBytes(dst.N, f.S)
			case table.KindInt:
				dst.Cols[c].AppendInt(dst.N, f.I)
			case table.KindFloat:
				dst.Cols[c].AppendFloat(dst.N, f.F)
			case table.KindBool:
				dst.Cols[c].AppendBool(dst.N, f.I)
			default:
				dst.Cols[c].AppendValue(dst.N, f.Value())
			}
		}
		dst.N++
	}
	return dst.N, nil
}

// Close releases the scanner's pinned page.
func (s *ColHeapScan) Close() error {
	if s.sc != nil {
		s.sc.Close()
		s.sc = nil
	}
	return nil
}

// colPred is one compiled column-vs-constant comparison: the only predicate
// shape the planner emits for selections (Cmp{ColRef, Const}).
type colPred struct {
	col int
	op  CmpOp
	c   table.Value
}

// compileColPreds flattens a planner predicate into column-vs-constant
// comparisons, reporting ok=false for any shape the columnar filter cannot
// run (which sends the plan down the row path).
func compileColPreds(p Pred) ([]colPred, bool) {
	switch q := p.(type) {
	case True:
		return nil, true
	case And:
		var out []colPred
		for _, sub := range q {
			ps, ok := compileColPreds(sub)
			if !ok {
				return nil, false
			}
			out = append(out, ps...)
		}
		return out, true
	case Cmp:
		cr, ok := q.L.(ColRef)
		if !ok {
			return nil, false
		}
		cv, ok := q.R.(Const)
		if !ok {
			return nil, false
		}
		return []colPred{{col: cr.Idx, op: q.Op, c: cv.V}}, true
	default:
		return nil, false
	}
}

// ColFilter qualifies rows by narrowing the batch's selection vector —
// a tight loop per predicate column, no cell ever moves. Null-free int and
// float columns compared against a constant of the same kind run as direct
// typed loops; everything else goes through ColVec.CompareValue, which
// matches Cmp.Holds (Compare semantics) exactly.
type ColFilter struct {
	In    ColOperator
	preds []colPred
}

// Schema returns the input schema.
func (f *ColFilter) Schema() *table.Schema { return f.In.Schema() }

// Open opens the input.
func (f *ColFilter) Open() error { return f.In.Open() }

// NextColBatch pulls input batches into dst and applies the predicates,
// skipping batches that qualify no rows.
func (f *ColFilter) NextColBatch(dst *table.ColBatch) (int, error) {
	for {
		n, err := f.In.NextColBatch(dst)
		if err != nil || n == 0 {
			return 0, err
		}
		for _, p := range f.preds {
			f.apply(dst, p)
			if dst.Rows() == 0 {
				break
			}
		}
		if live := dst.Rows(); live > 0 {
			return live, nil
		}
	}
}

// apply narrows dst.Sel to the rows satisfying p. The new selection is
// written into the batch's reusable selection storage; when dst.Sel already
// aliases it (a prior predicate this batch), the in-place compaction is safe
// because the write index never passes the read index.
func (f *ColFilter) apply(dst *table.ColBatch, p colPred) {
	v := &dst.Cols[p.col]
	sel := dst.SelBuf(dst.Rows())
	k := 0
	direct := v.Values == nil && len(v.Nulls) == 0
	switch {
	case direct && v.Kind == table.KindInt && p.c.Kind == table.KindInt:
		c := p.c.I
		if dst.Sel == nil {
			for i, x := range v.Ints[:dst.N] {
				if p.op.Holds(cmpI64(x, c)) {
					sel[k] = int32(i)
					k++
				}
			}
		} else {
			for _, row := range dst.Sel {
				if p.op.Holds(cmpI64(v.Ints[row], c)) {
					sel[k] = row
					k++
				}
			}
		}
	case direct && v.Kind == table.KindFloat && p.c.Kind == table.KindFloat:
		c := p.c.F
		if dst.Sel == nil {
			for i, x := range v.Floats[:dst.N] {
				if p.op.Holds(cmpF64(x, c)) {
					sel[k] = int32(i)
					k++
				}
			}
		} else {
			for _, row := range dst.Sel {
				if p.op.Holds(cmpF64(v.Floats[row], c)) {
					sel[k] = row
					k++
				}
			}
		}
	default:
		if dst.Sel == nil {
			for i := 0; i < dst.N; i++ {
				if p.op.Holds(v.CompareValue(i, p.c)) {
					sel[k] = int32(i)
					k++
				}
			}
		} else {
			for _, row := range dst.Sel {
				if p.op.Holds(v.CompareValue(int(row), p.c)) {
					sel[k] = row
					k++
				}
			}
		}
	}
	dst.Sel = sel[:k]
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Close closes the input.
func (f *ColFilter) Close() error { return f.In.Close() }

// ColProject selects input columns by index with zero copies: the output
// batch shares the input's column storage and selection vector (shallow
// ColVec headers), so a column projection costs a few struct assignments per
// batch. The produced batch is a read-only view — downstream operators only
// narrow their own selection storage or read cells, never mutate columns.
type ColProject struct {
	In  ColOperator
	idx []int
	out *table.Schema
	in  *table.ColBatch
}

// Schema returns the output schema.
func (p *ColProject) Schema() *table.Schema { return p.out }

// Open opens the input and shapes the internal batch.
func (p *ColProject) Open() error {
	if err := p.In.Open(); err != nil {
		return err
	}
	p.in = table.NewColBatch(p.In.Schema())
	return nil
}

// NextColBatch pulls one input batch and re-exposes the selected columns.
func (p *ColProject) NextColBatch(dst *table.ColBatch) (int, error) {
	n, err := p.In.NextColBatch(p.in)
	if err != nil || n == 0 {
		return 0, err
	}
	dst.Schema = p.out
	dst.N = p.in.N
	dst.Sel = p.in.Sel
	if len(dst.Cols) != len(p.idx) {
		dst.Cols = make([]table.ColVec, len(p.idx))
	}
	for i, j := range p.idx {
		dst.Cols[i] = p.in.Cols[j]
	}
	return n, nil
}

// Close closes the input.
func (p *ColProject) Close() error { return p.In.Close() }

// ColCounted is CountedOp for the columnar tier: a transparent pass-through
// that tallies live rows and batches into the same OpStats the row wrapper
// would, so traced plans attribute vectorized work per operator.
type ColCounted struct {
	In ColOperator
	S  *OpStats
}

// Schema returns the input's schema.
func (c *ColCounted) Schema() *table.Schema { return c.In.Schema() }

// Open opens the input.
func (c *ColCounted) Open() error { return c.In.Open() }

// NextColBatch counts and forwards one batch.
func (c *ColCounted) NextColBatch(dst *table.ColBatch) (int, error) {
	n, err := c.In.NextColBatch(dst)
	if n > 0 && err == nil {
		c.S.Rows += int64(n)
		c.S.ColBatches++
	}
	return n, err
}

// Close closes the input.
func (c *ColCounted) Close() error { return c.In.Close() }

// ColToRows adapts a columnar pipeline back to the row Volcano interface —
// the boundary operator under sorts, group-bys, and the confidence scan.
// Rows are materialized into reused per-slot buffers, so the adapter itself
// allocates nothing after warm-up (flat string cells allocate their string
// on the way out, exactly once per emitted row).
type ColToRows struct {
	In    ColOperator
	b     *table.ColBatch
	pos   int
	n     int
	slots slotBufs
	one   [1]table.Tuple
}

// NewColToRows wraps a columnar operator as a row operator.
func NewColToRows(in ColOperator) *ColToRows { return &ColToRows{In: in} }

// Schema returns the input's schema.
func (a *ColToRows) Schema() *table.Schema { return a.In.Schema() }

// Open opens the input and shapes the transfer batch.
func (a *ColToRows) Open() error {
	if err := a.In.Open(); err != nil {
		return err
	}
	if a.b == nil {
		a.b = table.NewColBatch(a.In.Schema())
	}
	a.pos, a.n = 0, 0
	return nil
}

// Next yields the next row.
func (a *ColToRows) Next() (table.Tuple, bool, error) {
	n, err := a.NextBatch(a.one[:])
	if err != nil || n == 0 {
		return nil, false, err
	}
	return a.one[0], true, nil
}

// NextBatch materializes rows out of the current column batch, refilling it
// as needed.
func (a *ColToRows) NextBatch(dst []table.Tuple) (int, error) {
	w := a.In.Schema().Len()
	k := 0
	for k < len(dst) {
		if a.pos >= a.n {
			m, err := a.In.NextColBatch(a.b)
			if err != nil {
				return 0, err
			}
			if m == 0 {
				break
			}
			a.n, a.pos = m, 0
		}
		buf := a.slots.slot(k, w)
		a.b.WriteRow(a.pos, buf)
		dst[k] = buf
		a.pos++
		k++
	}
	return k, nil
}

// Close closes the input.
func (a *ColToRows) Close() error { return a.In.Close() }

// Columnarize lowers a row operator tree into its columnar form, succeeding
// only when every operator in the tree has one: scans, planner-shaped
// filters (conjunctions of column-vs-constant comparisons), pure column
// projections, hash joins, and Counted wrappers. ok=false means some
// operator has no columnar form; callers then fall back to Vectorize (which
// lowers the maximal columnar subtrees) or to the row path unchanged.
func Columnarize(op Operator) (ColOperator, bool) {
	switch o := op.(type) {
	case *CountedOp:
		in, ok := Columnarize(o.In)
		if !ok {
			return nil, false
		}
		return &ColCounted{In: in, S: o.S}, true
	case *MemScan:
		return &ColMemScan{Rel: o.Rel}, true
	case *HeapScan:
		return NewColHeapScan(o.File, o.Pool, o.schema), true
	case *Filter:
		preds, ok := compileColPreds(o.Pred)
		if !ok {
			return nil, false
		}
		in, ok := Columnarize(o.In)
		if !ok {
			return nil, false
		}
		return &ColFilter{In: in, preds: preds}, true
	case *Project:
		idx := make([]int, len(o.Exprs))
		for i, e := range o.Exprs {
			cr, ok := e.(ColRef)
			if !ok {
				return nil, false
			}
			idx[i] = cr.Idx
		}
		in, ok := Columnarize(o.In)
		if !ok {
			return nil, false
		}
		return &ColProject{In: in, idx: idx, out: o.Out}, true
	case *HashJoin:
		if o.Mem != nil {
			// A governed join must stay on the row path: the columnar
			// build side is unaccounted and has no grace fallback, so
			// lowering it would silently drop the memory budget.
			return nil, false
		}
		l, ok := Columnarize(o.Left)
		if !ok {
			return nil, false
		}
		r, ok := Columnarize(o.Right)
		if !ok {
			return nil, false
		}
		return &ColHashJoin{
			Left: l, Right: r,
			LeftKeys: o.LeftKeys, RightKeys: o.RightKey,
			out: o.out,
		}, true
	case *PartitionedHashJoin:
		l, ok := Columnarize(o.Left)
		if !ok {
			return nil, false
		}
		r, ok := Columnarize(o.Right)
		if !ok {
			return nil, false
		}
		return &ColPartitionedHashJoin{
			Left: l, Right: r,
			LeftKeys: o.LeftKeys, RightKeys: o.RightKeys,
			Pool: o.Pool, Ctx: o.Ctx,
			out: o.out,
		}, true
	default:
		return nil, false
	}
}

// pruneCols pushes column liveness down a columnar tree to its heap scans: a
// ColProject only reads the input columns its index map names, so any column
// it drops — net of the filter predicates evaluated below it — need never be
// decoded off the page. need[i]=true marks output column i as read by the
// consumer; nil means all are. Joins (and any root consumer) read every
// column of their inputs, so pruning restarts at nil below them.
func pruneCols(op ColOperator, need []bool) {
	switch o := op.(type) {
	case *ColCounted:
		pruneCols(o.In, need)
	case *ColProject:
		childNeed := make([]bool, o.In.Schema().Len())
		for i, j := range o.idx {
			if need == nil || need[i] {
				childNeed[j] = true
			}
		}
		pruneCols(o.In, childNeed)
	case *ColFilter:
		if need == nil {
			pruneCols(o.In, nil)
			return
		}
		childNeed := make([]bool, len(need))
		copy(childNeed, need)
		for _, p := range o.preds {
			childNeed[p.col] = true
		}
		pruneCols(o.In, childNeed)
	case *ColHeapScan:
		o.need = need
	case *ColHashJoin:
		pruneCols(o.Left, nil)
		pruneCols(o.Right, nil)
	case *ColPartitionedHashJoin:
		pruneCols(o.Left, nil)
		pruneCols(o.Right, nil)
	}
}

// Vectorize lowers the maximal columnar regions of a row plan: a fully
// columnar tree becomes one ColToRows-adapted pipeline, and a mixed tree is
// rebuilt with its columnar subtrees lowered and everything else untouched —
// the "fall back to rows at the first non-columnar op" rule. The rewritten
// plan emits the same tuples in the same order. ok=false means nothing in
// the tree could be lowered, and op is returned unchanged.
func Vectorize(op Operator) (Operator, bool) {
	if cop, ok := Columnarize(op); ok {
		pruneCols(cop, nil)
		return NewColToRows(cop), true
	}
	switch o := op.(type) {
	case *CountedOp:
		if in, ok := Vectorize(o.In); ok {
			return &CountedOp{In: in, S: o.S}, true
		}
	case *Filter:
		if in, ok := Vectorize(o.In); ok {
			return &Filter{In: in, Pred: o.Pred}, true
		}
	case *Project:
		if in, ok := Vectorize(o.In); ok {
			return &Project{In: in, Exprs: o.Exprs, Out: o.Out}, true
		}
	case *Limit:
		if in, ok := Vectorize(o.In); ok {
			return &Limit{In: in, N: o.N}, true
		}
	case *HashJoin:
		l, lok := Vectorize(o.Left)
		r, rok := Vectorize(o.Right)
		if lok || rok {
			j, err := NewHashJoin(l, r, o.LeftKeys, o.RightKey)
			if err == nil {
				j.Mem, j.SortBudget, j.TmpDir = o.Mem, o.SortBudget, o.TmpDir
				return j, true
			}
		}
	case *PartitionedHashJoin:
		l, lok := Vectorize(o.Left)
		r, rok := Vectorize(o.Right)
		if lok || rok {
			j, err := NewPartitionedHashJoin(l, r, o.LeftKeys, o.RightKeys, o.Pool, o.Ctx)
			if err == nil {
				return j, true
			}
		}
	}
	return op, false
}

// CollectColCtx drains a columnar operator into an in-memory relation
// (opening and closing it): the context is checked once per batch, and live
// rows are materialized into slab storage.
func CollectColCtx(ctx context.Context, op ColOperator) (*table.Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	rel := table.NewRelation(op.Schema())
	b := table.NewColBatch(op.Schema())
	w := op.Schema().Len()
	var slab table.Slab
	for {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		n, err := op.NextColBatch(b)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return rel, nil
		}
		for i := 0; i < n; i++ {
			t := slab.Alloc(w)
			b.WriteRow(i, t)
			rel.Rows = append(rel.Rows, t)
		}
	}
}

// CollectCtxVec is CollectCtx through the best available execution tier:
// fully columnar pipelines run natively (columnar=true), partially
// lowerable plans run with their columnar regions vectorized, and anything
// else runs the row path unchanged. All three produce identical relations.
func CollectCtxVec(ctx context.Context, op Operator) (rel *table.Relation, columnar bool, err error) {
	if cop, ok := Columnarize(op); ok {
		pruneCols(cop, nil)
		rel, err = CollectColCtx(ctx, cop)
		return rel, true, err
	}
	if vop, ok := Vectorize(op); ok {
		rel, err = CollectCtx(ctx, vop)
		return rel, false, err
	}
	rel, err = CollectCtx(ctx, op)
	return rel, false, err
}
