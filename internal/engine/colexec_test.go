package engine

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/prob"
	"repro/internal/storage"
	"repro/internal/table"
)

// colTestRel builds a relation exercising every columnar layout: ints,
// floats, a string column whose cardinality is set by strCard (above
// table.DictMaxCard forces the dictionary spill on the scan decode path),
// and the V/P lineage columns.
func colTestRel(rows, strCard int, seed int64) *table.Relation {
	rng := rand.New(rand.NewSource(seed))
	sch := table.NewSchema(
		table.DataCol("k", table.KindInt),
		table.DataCol("x", table.KindFloat),
		table.DataCol("s", table.KindString),
		table.VarCol("R"), table.ProbCol("R"),
	)
	rel := table.NewRelation(sch)
	for i := 0; i < rows; i++ {
		rel.MustAppend(table.Tuple{
			table.Int(int64(i % 97)),
			table.Float(rng.Float64() * 100),
			table.Str(fmt.Sprintf("s-%04d", rng.Intn(strCard))),
			table.VarValue(prob.Var(i + 1)), table.Float(0.5),
		})
	}
	return rel
}

// writeHeap persists rel as a heap file and reopens it read-only.
func writeHeap(t *testing.T, dir string, rel *table.Relation) *storage.HeapFile {
	t.Helper()
	path := filepath.Join(dir, "t.heap")
	h, err := storage.CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rel.Rows {
		if err := h.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := storage.OpenHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ro.Close() })
	return ro
}

func mustSameRelations(t *testing.T, label string, got, want *table.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d rows, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Rows {
		g, w := got.Rows[i], want.Rows[i]
		if len(g) != len(w) {
			t.Fatalf("%s: row %d arity %d, want %d", label, i, len(g), len(w))
		}
		for c := range w {
			if g[c] != w[c] {
				t.Fatalf("%s: row %d col %d = %v, want %v (bit-identical required)", label, i, c, g[c], w[c])
			}
		}
	}
}

// TestColHeapScanRoundTrip: decoding a heap file straight into column
// vectors reproduces every stored tuple in order, for both the dictionary
// and the spilled flat string layouts, with and without dead-column pruning.
func TestColHeapScanRoundTrip(t *testing.T) {
	for _, strCard := range []int{16, table.DictMaxCard + 64} {
		rel := colTestRel(3*BatchSize+17, strCard, 5)
		h := writeHeap(t, t.TempDir(), rel)
		pool := storage.NewBufferPool(8)
		sc := NewColHeapScan(h, pool, rel.Schema)
		got, err := CollectColCtx(nil, sc)
		if err != nil {
			t.Fatal(err)
		}
		mustSameRelations(t, fmt.Sprintf("strCard=%d", strCard), got, rel)

		// Pruned scan: only k and P survive; the dead columns' vectors stay
		// empty but live columns decode identically.
		sc.need = []bool{true, false, false, false, true}
		if err := sc.Open(); err != nil {
			t.Fatal(err)
		}
		b := table.NewColBatch(rel.Schema)
		n, err := sc.NextColBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if n != BatchSize {
			t.Fatalf("pruned scan first batch: %d rows, want %d", n, BatchSize)
		}
		for i := 0; i < n; i++ {
			if got := b.Cols[0].Value(i); got != rel.Rows[i][0] {
				t.Fatalf("pruned scan row %d k = %v, want %v", i, got, rel.Rows[i][0])
			}
			if got := b.Cols[4].Value(i); got != rel.Rows[i][4] {
				t.Fatalf("pruned scan row %d P = %v, want %v", i, got, rel.Rows[i][4])
			}
		}
		if len(b.Cols[2].Strs)+len(b.Cols[2].Codes)+len(b.Cols[2].Bytes) != 0 {
			t.Fatal("pruned string column decoded cells anyway")
		}
		sc.Close()
	}
}

// TestCollectCtxVecIdentity: the columnar tier and the row engine produce
// the same relation — same rows, same order, bit-identical cells — for a
// fully lowerable filter→join→project tree, over both memory and disk
// scans.
func TestCollectCtxVecIdentity(t *testing.T) {
	rel := colTestRel(2000, 24, 9)
	h := writeHeap(t, t.TempDir(), rel)
	pool := storage.NewBufferPool(8)
	sources := []struct {
		name string
		mk   func() Operator
	}{
		{"mem", func() Operator { return NewMemScan(rel) }},
		{"heap", func() Operator { return NewHeapScan(h, pool, rel.Schema) }},
	}
	for _, src := range sources {
		t.Run(src.name, func(t *testing.T) {
			names := rel.Schema.Names()
			proj := []string{names[0], names[2], names[3], names[4]}
			build := func() Operator {
				f := NewFilter(src.mk(), Cmp{L: ColRef{Idx: 0, Name: "k"}, Op: OpLt, R: Const{V: table.Int(60)}})
				j, err := NewHashJoin(f, src.mk(), []int{0}, []int{0})
				if err != nil {
					t.Fatal(err)
				}
				p, err := NewColumnProject(j, proj)
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			want, err := CollectCtx(nil, build())
			if err != nil {
				t.Fatal(err)
			}
			if want.Len() == 0 {
				t.Fatal("row reference produced no rows")
			}
			got, columnar, err := CollectCtxVec(nil, build())
			if err != nil {
				t.Fatal(err)
			}
			if !columnar {
				t.Fatal("fully lowerable tree did not run columnar")
			}
			mustSameRelations(t, src.name, got, want)
		})
	}
}

// TestVectorizePartialLowering: a tree whose root has no columnar form
// (Limit, Sort) still gets its scan/filter region lowered, and the rewritten
// plan emits identical rows; Columnarize itself must refuse the full tree.
func TestVectorizePartialLowering(t *testing.T) {
	rel := colTestRel(1500, 12, 21)
	h := writeHeap(t, t.TempDir(), rel)
	pool := storage.NewBufferPool(8)
	build := func() Operator {
		f := NewFilter(NewHeapScan(h, pool, rel.Schema),
			Cmp{L: ColRef{Idx: 1, Name: "x"}, Op: OpLe, R: Const{V: table.Float(75)}})
		return NewLimit(f, 900)
	}
	if _, ok := Columnarize(build()); ok {
		t.Fatal("Columnarize must refuse a Limit root")
	}
	vop, ok := Vectorize(build())
	if !ok {
		t.Fatal("Vectorize found no columnar region under the Limit")
	}
	if _, isLimit := vop.(*Limit); !isLimit {
		t.Fatalf("vectorized root is %T, want *Limit", vop)
	}
	want, err := CollectCtx(nil, build())
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectCtx(nil, vop)
	if err != nil {
		t.Fatal(err)
	}
	mustSameRelations(t, "limit-over-columnar", got, want)

	// Sort root: same contract through the generic CollectCtxVec entry.
	sortBuild := func() Operator { return NewSort(build(), SortSpec{Cols: []int{0, 3}}) }
	want2, err := CollectCtx(nil, sortBuild())
	if err != nil {
		t.Fatal(err)
	}
	got2, columnar, err := CollectCtxVec(nil, sortBuild())
	if err != nil {
		t.Fatal(err)
	}
	if columnar {
		t.Fatal("sort root cannot be fully columnar")
	}
	mustSameRelations(t, "sort-over-columnar", got2, want2)
}

// TestPruneColsLiveness: pruning marks exactly the projected columns plus
// the filter's predicate columns live at the scan, and the pruned pipeline
// still produces the right projected rows.
func TestPruneColsLiveness(t *testing.T) {
	rel := colTestRel(1200, 18, 33)
	h := writeHeap(t, t.TempDir(), rel)
	pool := storage.NewBufferPool(8)
	names := rel.Schema.Names()
	build := func() Operator {
		f := NewFilter(NewHeapScan(h, pool, rel.Schema),
			Cmp{L: ColRef{Idx: 1, Name: "x"}, Op: OpLt, R: Const{V: table.Float(50)}})
		p, err := NewColumnProject(f, []string{names[2], names[4]})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cop, ok := Columnarize(build())
	if !ok {
		t.Fatal("tree did not columnarize")
	}
	pruneCols(cop, nil)
	scan := cop.(*ColProject).In.(*ColFilter).In.(*ColHeapScan)
	// Live: s (projected), P (projected), x (predicate). Dead: k, V.
	wantNeed := []bool{false, true, true, false, true}
	if len(scan.need) != len(wantNeed) {
		t.Fatalf("need has %d entries, want %d", len(scan.need), len(wantNeed))
	}
	for i, w := range wantNeed {
		if scan.need[i] != w {
			t.Fatalf("need[%d] = %v, want %v (%s)", i, scan.need[i], w, names[i])
		}
	}
	got, err := CollectColCtx(nil, cop)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CollectCtx(nil, build())
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("reference produced no rows")
	}
	mustSameRelations(t, "pruned", got, want)
}

// TestColFilterAllocs pins the vectorized filter loop: narrowing the
// selection vector over typed columns must not allocate per batch once the
// batch storage is warm.
func TestColFilterAllocs(t *testing.T) {
	rel := colTestRel(8*BatchSize, 8, 41)
	f := &ColFilter{
		In: &ColMemScan{Rel: rel},
		preds: []colPred{
			{col: 0, op: OpLt, c: table.Int(70)},
			{col: 1, op: OpGe, c: table.Float(10)},
		},
	}
	b := table.NewColBatch(rel.Schema)
	drain := func() {
		if err := f.Open(); err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			n, err := f.NextColBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			rows += n
		}
		if rows == 0 {
			t.Fatal("filter qualified no rows")
		}
		f.Close()
	}
	drain() // warm the batch storage and selection buffer
	avg := testing.AllocsPerRun(10, drain)
	if avg > 8 {
		t.Fatalf("vectorized filter allocated %.1f times per %d-batch drain, want ≤ 8", avg, 8)
	}
}

// TestHashIntoAllocs pins the vectorized hash-key loop: hashing every live
// row of a warm batch into a reused destination must not allocate at all.
func TestHashIntoAllocs(t *testing.T) {
	rel := colTestRel(BatchSize, 8, 43)
	b := table.NewColBatch(rel.Schema)
	for _, row := range rel.Rows[:BatchSize] {
		b.AppendRow(row)
	}
	dst := make([]uint64, BatchSize)
	idx := []int{0, 2}
	run := func() { dst = b.HashInto(idx, dst) }
	run()
	if avg := testing.AllocsPerRun(20, run); avg != 0 {
		t.Fatalf("HashInto allocated %.1f times per batch, want 0", avg)
	}
	// Spot-check against the row-side hash while we're here.
	for i := 0; i < BatchSize; i += 97 {
		if want := table.HashOn(rel.Rows[i], idx); dst[i] != want {
			t.Fatalf("row %d: hash %#x, want %#x", i, dst[i], want)
		}
	}
}
