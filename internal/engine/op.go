package engine

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/table"
)

// Operator is the Volcano iterator interface. Open prepares the pipeline,
// Next pulls one tuple at a time (ok=false at end of stream), Close releases
// resources. Tuples returned by Next may alias internal buffers; operators
// that retain tuples across Next calls must Clone them. Every core operator
// additionally implements BatchOperator (batch.go), which moves tuples in
// batches of up to BatchSize through reused buffers — the allocation-free
// fast path the collectors drive.
type Operator interface {
	Schema() *table.Schema
	Open() error
	Next() (table.Tuple, bool, error)
	Close() error
}

// MemScan iterates an in-memory relation.
type MemScan struct {
	Rel *table.Relation
	pos int
}

// NewMemScan builds a scan over rel.
func NewMemScan(rel *table.Relation) *MemScan { return &MemScan{Rel: rel} }

// Schema returns the relation's schema.
func (s *MemScan) Schema() *table.Schema { return s.Rel.Schema }

// Open resets the cursor.
func (s *MemScan) Open() error { s.pos = 0; return nil }

// Next yields the next row.
func (s *MemScan) Next() (table.Tuple, bool, error) {
	if s.pos >= len(s.Rel.Rows) {
		return nil, false, nil
	}
	t := s.Rel.Rows[s.pos]
	s.pos++
	return t, true, nil
}

// NextBatch copies up to len(dst) row references out of the relation.
func (s *MemScan) NextBatch(dst []table.Tuple) (int, error) {
	n := copy(dst, s.Rel.Rows[s.pos:])
	s.pos += n
	return n, nil
}

// StableTuples: rows are owned by the relation and never overwritten.
func (s *MemScan) StableTuples() bool { return true }

// Close is a no-op.
func (s *MemScan) Close() error { return nil }

// HeapScan iterates a heap file through a buffer pool — the disk-backed
// counterpart of MemScan.
type HeapScan struct {
	File   *storage.HeapFile
	Pool   *storage.BufferPool
	schema *table.Schema
	sc     *storage.Scanner
}

// NewHeapScan builds a scan over a heap file whose tuples conform to schema.
func NewHeapScan(f *storage.HeapFile, pool *storage.BufferPool, schema *table.Schema) *HeapScan {
	return &HeapScan{File: f, Pool: pool, schema: schema}
}

// Schema returns the declared schema.
func (s *HeapScan) Schema() *table.Schema { return s.schema }

// Open positions a fresh scanner.
func (s *HeapScan) Open() error {
	s.sc = s.File.NewScanner(s.Pool)
	return nil
}

// Next yields the next stored tuple.
func (s *HeapScan) Next() (table.Tuple, bool, error) {
	t, ok, err := s.sc.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	if len(t) != s.schema.Len() {
		return nil, false, fmt.Errorf("engine: heap tuple arity %d != schema arity %d", len(t), s.schema.Len())
	}
	return t, true, nil
}

// NextBatch decodes up to len(dst) stored tuples.
func (s *HeapScan) NextBatch(dst []table.Tuple) (int, error) {
	return fillBatch(dst, func(int) (table.Tuple, bool, error) { return s.Next() })
}

// StableTuples: the scanner decodes into arena storage it never reuses.
func (s *HeapScan) StableTuples() bool { return true }

// Close releases the scanner's pinned page.
func (s *HeapScan) Close() error {
	if s.sc != nil {
		s.sc.Close()
		s.sc = nil
	}
	return nil
}

// Filter passes through tuples satisfying a predicate.
type Filter struct {
	In   Operator
	Pred Pred
}

// NewFilter wraps in with predicate p.
func NewFilter(in Operator, p Pred) *Filter { return &Filter{In: in, Pred: p} }

// Schema returns the input schema.
func (f *Filter) Schema() *table.Schema { return f.In.Schema() }

// Open opens the input.
func (f *Filter) Open() error { return f.In.Open() }

// Next yields the next qualifying tuple.
func (f *Filter) Next() (table.Tuple, bool, error) {
	for {
		t, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred.Holds(t) {
			return t, true, nil
		}
	}
}

// NextBatch pulls an input batch into dst and compacts the qualifying
// tuples in place — no copies, no allocation.
func (f *Filter) NextBatch(dst []table.Tuple) (int, error) {
	for {
		n, err := NextBatch(f.In, dst)
		if err != nil || n == 0 {
			return 0, err
		}
		k := 0
		for _, t := range dst[:n] {
			if f.Pred.Holds(t) {
				dst[k] = t
				k++
			}
		}
		if k > 0 {
			return k, nil
		}
	}
}

// StableTuples: a filter passes its input's tuples through untouched.
func (f *Filter) StableTuples() bool { return Stable(f.In) }

// Close closes the input.
func (f *Filter) Close() error { return f.In.Close() }

// Project computes output columns from input tuples. Each output column has
// a schema Column and a defining expression.
type Project struct {
	In    Operator
	Exprs []Expr
	Out   *table.Schema
	in    []table.Tuple // reused input batch
	slots slotBufs      // reused per-slot output buffers
}

// NewProject builds a generalized projection.
func NewProject(in Operator, out *table.Schema, exprs []Expr) (*Project, error) {
	if out.Len() != len(exprs) {
		return nil, fmt.Errorf("engine: projection schema/expr arity mismatch: %d vs %d", out.Len(), len(exprs))
	}
	return &Project{In: in, Exprs: exprs, Out: out}, nil
}

// NewColumnProject projects the named input columns (by name), keeping their
// column metadata.
func NewColumnProject(in Operator, names []string) (*Project, error) {
	is := in.Schema()
	idx := make([]int, len(names))
	for i, n := range names {
		j := is.ColIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("engine: projection references unknown column %q in %v", n, is.Names())
		}
		idx[i] = j
	}
	exprs := make([]Expr, len(idx))
	for i, j := range idx {
		exprs[i] = ColRef{Idx: j, Name: is.Cols[j].Name}
	}
	return &Project{In: in, Exprs: exprs, Out: is.Project(idx)}, nil
}

// Schema returns the output schema.
func (p *Project) Schema() *table.Schema { return p.Out }

// Open opens the input.
func (p *Project) Open() error { return p.In.Open() }

// Next computes the next projected tuple.
func (p *Project) Next() (table.Tuple, bool, error) {
	t, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	buf := p.slots.slot(0, len(p.Exprs))
	for i, e := range p.Exprs {
		buf[i] = e.Eval(t)
	}
	return buf, true, nil
}

// NextBatch evaluates the projection into reused per-slot buffers.
func (p *Project) NextBatch(dst []table.Tuple) (int, error) {
	p.in = batchScratch(p.in, len(dst))
	n, err := NextBatch(p.In, p.in)
	if err != nil || n == 0 {
		return 0, err
	}
	for i, t := range p.in[:n] {
		buf := p.slots.slot(i, len(p.Exprs))
		for k, e := range p.Exprs {
			buf[k] = e.Eval(t)
		}
		dst[i] = buf
	}
	return n, nil
}

// Close closes the input.
func (p *Project) Close() error { return p.In.Close() }

// Limit passes through at most N tuples (used by examples and tools).
type Limit struct {
	In   Operator
	N    int64
	seen int64
}

// NewLimit wraps in with a row limit.
func NewLimit(in Operator, n int64) *Limit { return &Limit{In: in, N: n} }

// Schema returns the input schema.
func (l *Limit) Schema() *table.Schema { return l.In.Schema() }

// Open opens the input and resets the counter.
func (l *Limit) Open() error { l.seen = 0; return l.In.Open() }

// Next yields until the limit is reached.
func (l *Limit) Next() (table.Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// NextBatch yields a batch truncated to the remaining allowance.
func (l *Limit) NextBatch(dst []table.Tuple) (int, error) {
	rem := l.N - l.seen
	if rem <= 0 {
		return 0, nil
	}
	if int64(len(dst)) > rem {
		dst = dst[:rem]
	}
	n, err := NextBatch(l.In, dst)
	l.seen += int64(n)
	return n, err
}

// StableTuples: a limit passes its input's tuples through untouched.
func (l *Limit) StableTuples() bool { return Stable(l.In) }

// Close closes the input.
func (l *Limit) Close() error { return l.In.Close() }
