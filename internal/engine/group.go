package engine

import (
	"fmt"
	"math"

	"repro/internal/table"
)

// mystiqLogLimit is where the modelled POWER(10, Σlog) computation of
// MystiQ's probability aggregate gives up (§VII, "Query Engines").
const mystiqLogLimit = -300.0

// AggKind enumerates the aggregate functions needed by the paper's GRP
// statements (Fig. 5): min over variable columns (choosing a representative
// variable) and prob over probability columns (independent disjunction,
// 1-Π(1-p)). Sum and Count round out the engine for general use.
type AggKind uint8

// Aggregate kinds. AggLogOr is MystiQ's numerically fragile variant of
// AggProbOr — 1 - 10^Σ log10(1.001 - p) — which produces NaN/underflow on
// large groups of near-certain events, reproducing the runtime errors the
// paper reports for queries 1, 4, 12 and several Boolean variants (§VII).
const (
	AggMin AggKind = iota
	AggProbOr
	AggSum
	AggCount
	AggLogOr
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggMin:
		return "min"
	case AggProbOr:
		return "prob"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggLogOr:
		return "mystiq_prob"
	default:
		return "?"
	}
}

// AggSpec computes one output column from the rows of a group.
type AggSpec struct {
	Kind AggKind
	Col  int          // input column aggregated (ignored for count)
	Out  table.Column // output column descriptor
}

type aggState struct {
	min    table.Value
	hasMin bool
	compl  float64 // running Π(1-p) for prob
	logSum float64 // running Σ log10(1.001-p) for MystiQ's aggregate
	sum    float64
	count  int64
}

func (a *aggState) reset() {
	a.hasMin = false
	a.compl = 1
	a.logSum = 0
	a.sum = 0
	a.count = 0
}

func (a *aggState) add(spec AggSpec, t table.Tuple) {
	switch spec.Kind {
	case AggMin:
		v := t[spec.Col]
		if !a.hasMin || table.Compare(v, a.min) < 0 {
			a.min = v
			a.hasMin = true
		}
	case AggProbOr:
		a.compl *= 1 - t[spec.Col].F
	case AggLogOr:
		a.logSum += math.Log10(1.001 - t[spec.Col].F)
	case AggSum:
		v := t[spec.Col]
		if v.Kind == table.KindInt {
			a.sum += float64(v.I)
		} else {
			a.sum += v.F
		}
	case AggCount:
		// handled by count below
	}
	a.count++
}

func (a *aggState) result(spec AggSpec) table.Value {
	switch spec.Kind {
	case AggMin:
		if !a.hasMin {
			return table.Null()
		}
		return a.min
	case AggProbOr:
		return table.Float(1 - a.compl)
	case AggLogOr:
		if a.logSum < mystiqLogLimit {
			// POWER underflows in PostgreSQL; MystiQ aborts at runtime.
			return table.Float(math.NaN())
		}
		return table.Float(1 - math.Pow(10, a.logSum))
	case AggSum:
		return table.Float(a.sum)
	case AggCount:
		return table.Int(a.count)
	default:
		return table.Null()
	}
}

// SortedGroupBy aggregates over an input that is already sorted (at least
// grouped) on the grouping columns: it emits one row per maximal run of
// equal group keys. This is the executable form of the paper's GRP[a; b]
// statement — `select distinct a, b from Q group by a` (Fig. 5) — and runs
// in a single scan, which is what makes eager plans and the multi-scan
// scheduler of §V.C work.
type SortedGroupBy struct {
	In       Operator
	GroupBy  []int
	Aggs     []AggSpec
	out      *table.Schema
	states   []aggState
	curKey   table.Tuple
	have     bool
	pending  table.Tuple
	havePend bool
	done     bool
	in       []table.Tuple // reused input batch
	inN      int
	inPos    int
}

// NewSortedGroupBy builds the operator. The output schema is the grouping
// columns (with their input metadata) followed by the aggregate columns.
func NewSortedGroupBy(in Operator, groupBy []int, aggs []AggSpec) *SortedGroupBy {
	is := in.Schema()
	cols := make([]table.Column, 0, len(groupBy)+len(aggs))
	for _, i := range groupBy {
		cols = append(cols, is.Cols[i])
	}
	for _, a := range aggs {
		cols = append(cols, a.Out)
	}
	return &SortedGroupBy{In: in, GroupBy: groupBy, Aggs: aggs, out: table.NewSchema(cols...)}
}

// Schema returns group columns followed by aggregate columns.
func (g *SortedGroupBy) Schema() *table.Schema { return g.out }

// Open opens the input and resets state.
func (g *SortedGroupBy) Open() error {
	g.states = make([]aggState, len(g.Aggs))
	g.have = false
	g.havePend = false
	g.done = false
	g.inN, g.inPos = 0, 0
	return g.In.Open()
}

// nextInput pulls the next input tuple through the reused batch buffer. The
// returned tuple is valid until the batch is refilled; callers that keep it
// across group boundaries (curKey, pending) clone it.
func (g *SortedGroupBy) nextInput() (table.Tuple, bool, error) {
	if g.inPos >= g.inN {
		g.in = batchScratch(g.in, BatchSize)
		n, err := NextBatch(g.In, g.in)
		if err != nil || n == 0 {
			return nil, false, err
		}
		g.inN, g.inPos = n, 0
	}
	t := g.in[g.inPos]
	g.inPos++
	return t, true, nil
}

// Next emits one aggregated row per group.
func (g *SortedGroupBy) Next() (table.Tuple, bool, error) {
	if g.done {
		return nil, false, nil
	}
	for {
		var t table.Tuple
		var ok bool
		var err error
		if g.havePend {
			t, ok, g.havePend = g.pending, true, false
		} else {
			t, ok, err = g.nextInput()
			if err != nil {
				return nil, false, err
			}
		}
		if !ok {
			g.done = true
			if g.have {
				return g.emit(), true, nil
			}
			return nil, false, nil
		}
		if !g.have {
			g.startGroup(t)
			continue
		}
		if table.EqualOn(t, g.curKey, g.GroupBy) {
			for i := range g.Aggs {
				g.states[i].add(g.Aggs[i], t)
			}
			continue
		}
		// Group boundary: emit the finished group, remember t for the next.
		out := g.emit()
		g.pending = t.Clone()
		g.havePend = true
		g.have = false
		return out, true, nil
	}
}

// NextBatch emits aggregated rows. Emitted rows are freshly built (one per
// group), so they are stable.
func (g *SortedGroupBy) NextBatch(dst []table.Tuple) (int, error) {
	return fillBatch(dst, func(int) (table.Tuple, bool, error) { return g.Next() })
}

// StableTuples: every emitted row is a fresh per-group tuple.
func (g *SortedGroupBy) StableTuples() bool { return true }

func (g *SortedGroupBy) startGroup(t table.Tuple) {
	g.curKey = t.Clone()
	for i := range g.states {
		g.states[i].reset()
		g.states[i].add(g.Aggs[i], t)
	}
	g.have = true
}

func (g *SortedGroupBy) emit() table.Tuple {
	out := make(table.Tuple, 0, len(g.GroupBy)+len(g.Aggs))
	for _, i := range g.GroupBy {
		out = append(out, g.curKey[i])
	}
	for i := range g.Aggs {
		out = append(out, g.states[i].result(g.Aggs[i]))
	}
	return out
}

// Close closes the input.
func (g *SortedGroupBy) Close() error { return g.In.Close() }

// HashDistinct removes duplicate tuples (all columns) without requiring
// sorted input. Seen tuples are tracked in a hash-keyed TupleSet (FNV hash
// plus Compare-based collision chains), so recognizing a duplicate never
// allocates. Safe plans use it after independent projections; the answer
// enumeration path uses it to list distinct data tuples.
type HashDistinct struct {
	In     Operator
	seen   *table.TupleSet
	all    []int
	stable bool
}

// NewHashDistinct wraps in.
func NewHashDistinct(in Operator) *HashDistinct { return &HashDistinct{In: in} }

// Schema returns the input schema.
func (d *HashDistinct) Schema() *table.Schema { return d.In.Schema() }

// Open opens the input and clears the seen set.
func (d *HashDistinct) Open() error {
	n := d.In.Schema().Len()
	d.all = make([]int, n)
	for i := range d.all {
		d.all[i] = i
	}
	d.seen = table.NewTupleSet(d.all, 0)
	d.stable = Stable(d.In)
	return d.In.Open()
}

// Next yields the next previously-unseen tuple.
func (d *HashDistinct) Next() (table.Tuple, bool, error) {
	for {
		t, ok, err := d.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if _, added := d.seen.Add(t, !d.stable); added {
			return t, true, nil
		}
	}
}

// NextBatch pulls an input batch into dst and compacts the first-seen
// tuples in place.
func (d *HashDistinct) NextBatch(dst []table.Tuple) (int, error) {
	for {
		n, err := NextBatch(d.In, dst)
		if err != nil || n == 0 {
			return 0, err
		}
		k := 0
		for _, t := range dst[:n] {
			if _, added := d.seen.Add(t, !d.stable); added {
				dst[k] = t
				k++
			}
		}
		if k > 0 {
			return k, nil
		}
	}
}

// StableTuples: a distinct passes its input's tuples through untouched.
func (d *HashDistinct) StableTuples() bool { return Stable(d.In) }

// Close closes the input.
func (d *HashDistinct) Close() error {
	d.seen = nil
	return d.In.Close()
}

// GroupSorted is a convenience that sorts the input on the grouping columns
// and then applies SortedGroupBy — the generic "sort + one scan" shape of
// every aggregation step in the paper.
func GroupSorted(in Operator, groupBy []int, aggs []AggSpec) *SortedGroupBy {
	return NewSortedGroupBy(NewSort(in, SortSpec{Cols: groupBy}), groupBy, aggs)
}

// ValidateColumns checks that all column indexes are within the schema, for
// defensive construction in the planner.
func ValidateColumns(s *table.Schema, idx []int) error {
	for _, i := range idx {
		if i < 0 || i >= s.Len() {
			return fmt.Errorf("engine: column index %d out of range for schema %v", i, s.Names())
		}
	}
	return nil
}
