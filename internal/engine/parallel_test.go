package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pool"
	"repro/internal/table"
)

// randRel builds a relation with one int key column (small domain, so joins
// produce matches) and one int payload column.
func randRel(rng *rand.Rand, rows, keyDomain int) *table.Relation {
	rel := table.NewRelation(table.NewSchema(
		table.DataCol("k", table.KindInt),
		table.DataCol("v", table.KindInt),
	))
	for i := 0; i < rows; i++ {
		rel.MustAppend(table.Tuple{
			table.Int(int64(rng.Intn(keyDomain))),
			table.Int(int64(i)),
		})
	}
	return rel
}

func collectAll(t *testing.T, op Operator) *table.Relation {
	t.Helper()
	rel, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// rowMultiset renders a relation as a sorted bag of row strings.
func rowMultiset(rel *table.Relation) map[string]int {
	m := make(map[string]int)
	for _, r := range rel.Rows {
		m[r.String()]++
	}
	return m
}

// TestPartitionedHashJoinMatchesHashJoin: the partitioned join produces the
// same multiset of rows as the classic hash join, and its row order is
// identical for every worker count.
func TestPartitionedHashJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	left := randRel(rng, 5000, 200)
	right := randRel(rng, 3000, 200)

	serial, err := NewHashJoin(NewMemScan(left), NewMemScan(right), []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := collectAll(t, serial)
	wantBag := rowMultiset(want)

	var first *table.Relation
	for _, workers := range []int{1, 2, 7} {
		pj, err := NewPartitionedHashJoin(NewMemScan(left), NewMemScan(right), []int{0}, []int{0}, pool.New(workers), context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got := collectAll(t, pj)
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d rows, want %d", workers, got.Len(), want.Len())
		}
		bag := rowMultiset(got)
		for k, n := range wantBag {
			if bag[k] != n {
				t.Fatalf("workers=%d: row %s count %d, want %d", workers, k, bag[k], n)
			}
		}
		if first == nil {
			first = got
			continue
		}
		for i := range got.Rows {
			if got.Rows[i].String() != first.Rows[i].String() {
				t.Fatalf("workers=%d: row %d order differs from workers=1", workers, i)
			}
		}
	}
}

// TestCollectChunksPreservesOrder: chunked evaluation of a filter+project
// pipeline equals the serial collection row for row, for every worker
// count.
func TestCollectChunksPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := randRel(rng, ParallelMinRows*3, 50)
	wrap := func(in Operator) (Operator, error) {
		f := NewFilter(in, Cmp{L: ColRef{Idx: 0, Name: "k"}, Op: OpLt, R: Const{V: table.Int(25)}})
		return NewColumnProject(f, []string{"v", "k"})
	}

	op, err := wrap(NewMemScan(rel))
	if err != nil {
		t.Fatal(err)
	}
	want := collectAll(t, op)

	for _, workers := range []int{1, 3, 8} {
		got, err := CollectChunks(context.Background(), pool.New(workers), rel, wrap)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d rows, want %d", workers, got.Len(), want.Len())
		}
		for i := range got.Rows {
			if got.Rows[i].String() != want.Rows[i].String() {
				t.Fatalf("workers=%d: row %d = %s, want %s", workers, i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

// TestCollectCtxCancellation: a cancelled context aborts collection.
func TestCollectCtxCancellation(t *testing.T) {
	rel := randRel(rand.New(rand.NewSource(1)), 10, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CollectCtx(ctx, NewMemScan(rel)); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestPoolDoErrorIsLowestIndex: pool.Do reports the error of the lowest
// erroring index regardless of worker count.
func TestPoolDoErrorIsLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := pool.New(workers)
		err := p.Do(context.Background(), 100, func(i int) error {
			if i >= 37 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 37 failed" {
			t.Fatalf("workers=%d: got %v, want task 37 failed", workers, err)
		}
	}
}
