package engine

import (
	"testing"

	"repro/internal/table"
)

// TestMergeJoinEmptyInputs: merge join terminates cleanly when either side
// is empty.
func TestMergeJoinEmptyInputs(t *testing.T) {
	full := intsRel("k", 1, 2, 3)
	empty := intsRel("k")
	for _, tc := range []struct {
		name        string
		left, right *table.Relation
	}{
		{"left-empty", empty, full},
		{"right-empty", full, empty},
		{"both-empty", empty, empty},
	} {
		j, err := NewMergeJoin(NewMemScan(tc.left), NewMemScan(tc.right), []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		n, err := Count(j)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if n != 0 {
			t.Errorf("%s: got %d rows", tc.name, n)
		}
	}
}

// TestHashJoinEmptyKeyIsCrossProduct: zero join columns degrade to the
// cross product, which the planner relies on for disconnected queries.
func TestHashJoinEmptyKeyIsCrossProduct(t *testing.T) {
	l := intsRel("a", 1, 2)
	r := intsRel("b", 10, 20, 30)
	j, err := NewHashJoin(NewMemScan(l), NewMemScan(r), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(j)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("cross product rows = %d, want 6", n)
	}
}

// TestJoinKeyArityMismatch: mismatched key lists are construction errors.
func TestJoinKeyArityMismatch(t *testing.T) {
	l := intsRel("a", 1)
	r := intsRel("b", 1)
	if _, err := NewHashJoin(NewMemScan(l), NewMemScan(r), []int{0}, nil); err == nil {
		t.Error("hash join arity mismatch must fail")
	}
	if _, err := NewMergeJoin(NewMemScan(l), NewMemScan(r), []int{0}, nil); err == nil {
		t.Error("merge join arity mismatch must fail")
	}
}

// TestProjectArityMismatch: schema/expression arity is validated.
func TestProjectArityMismatch(t *testing.T) {
	rel := intsRel("a", 1)
	out := table.NewSchema(table.DataCol("x", table.KindInt), table.DataCol("y", table.KindInt))
	if _, err := NewProject(NewMemScan(rel), out, []Expr{ColRef{Idx: 0}}); err == nil {
		t.Error("projection arity mismatch must fail")
	}
}

// TestFilterOnEmptyRelation and reopened operators.
func TestOperatorReopen(t *testing.T) {
	rel := intsRel("a", 1, 2, 3)
	f := NewFilter(NewMemScan(rel), Cmp{L: ColRef{Idx: 0}, Op: OpGt, R: Const{V: table.Int(1)}})
	for round := 0; round < 2; round++ {
		n, err := Count(f)
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("round %d: %d rows", round, n)
		}
	}
}

// TestSortedGroupByRespectsGroupedInput: pre-grouped (not fully sorted)
// input still aggregates per contiguous run — the contract the operator's
// aggregation scans rely on.
func TestSortedGroupByRespectsGroupedInput(t *testing.T) {
	rel := intsRel("g", 2, 2, 1, 1, 1)
	g := NewSortedGroupBy(NewMemScan(rel), []int{0}, []AggSpec{
		{Kind: AggCount, Col: 0, Out: table.DataCol("c", table.KindInt)},
	})
	rows := drain(t, g)
	if len(rows) != 2 || rows[0][1].I != 2 || rows[1][1].I != 3 {
		t.Errorf("rows = %v", rows)
	}
}

// TestMystiQAggregateNaN: the modelled POWER underflow yields NaN, which
// the safe-plan evaluator converts into a runtime error.
func TestMystiQAggregateNaN(t *testing.T) {
	sch := table.NewSchema(table.DataCol("g", table.KindInt), table.DataCol("p", table.KindFloat))
	rel := table.NewRelation(sch)
	for i := 0; i < 200000; i++ {
		rel.MustAppend(table.Tuple{table.Int(1), table.Float(0.999)})
	}
	g := NewSortedGroupBy(NewMemScan(rel), []int{0}, []AggSpec{
		{Kind: AggLogOr, Col: 1, Out: table.DataCol("p", table.KindFloat)},
	})
	rows := drain(t, g)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if v := rows[0][1].F; v == v { // NaN != NaN
		t.Errorf("expected NaN from underflowed MystiQ aggregate, got %g", v)
	}
}

// TestLimitZero: a zero limit yields nothing but still opens/closes.
func TestLimitZero(t *testing.T) {
	rel := intsRel("a", 1, 2)
	n, err := Count(NewLimit(NewMemScan(rel), 0))
	if err != nil || n != 0 {
		t.Errorf("limit 0: n=%d err=%v", n, err)
	}
}
