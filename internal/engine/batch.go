package engine

import (
	"context"

	"repro/internal/table"
)

// This file is the batched side of the Volcano interface: operators move
// tuples in batches of up to BatchSize through reused buffers, so the
// per-tuple costs of the pull model — one interface call, one context check,
// one buffer allocation per row — are paid once per batch instead. Every
// core operator implements BatchOperator natively; NextBatch adapts the
// rest, and the collectors (CollectCtx, Count) drive whole pipelines batch
// by batch with cancellation checks at batch boundaries.

// BatchSize is the default number of tuples moved per NextBatch call. Large
// enough to amortize per-batch overheads, small enough that a batch of
// typical tuples stays cache-resident.
const BatchSize = 1024

// BatchOperator is the batched extension of Operator. NextBatch fills
// dst[:n] with up to len(dst) tuples and returns n; n == 0 means the stream
// is exhausted (a non-empty stream never returns an empty batch early). The
// returned tuples remain valid until the next NextBatch or Next call on the
// operator — consumers that retain tuples across batches must clone them,
// exactly as with Next.
type BatchOperator interface {
	Operator
	NextBatch(dst []table.Tuple) (int, error)
}

// NextBatch pulls up to len(dst) tuples from op: natively when op implements
// BatchOperator, otherwise through a Next loop that clones each tuple (a
// Next-only operator may reuse one internal buffer across calls, which would
// alias every slot of the batch).
func NextBatch(op Operator, dst []table.Tuple) (int, error) {
	if b, ok := op.(BatchOperator); ok {
		return b.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		t, ok, err := op.Next()
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		dst[n] = t.Clone()
		n++
	}
	return n, nil
}

// StableTuples marks operators whose emitted tuples stay valid for the
// operator's whole lifetime (they never reuse tuple storage): in-memory and
// heap scans, sorts, materialized joins, and pass-through wrappers over such
// inputs. Consumers use it to skip defensive clones when materializing.
type StableTuples interface {
	StableTuples() bool
}

// Stable reports whether op promises stable output tuples.
func Stable(op Operator) bool {
	s, ok := op.(StableTuples)
	return ok && s.StableTuples()
}

// slotBufs is a reusable set of per-slot output buffers for operators that
// compute their output tuples (projections, join combiners): slot i of a
// batch writes into bufs[i], so all tuples of one batch are simultaneously
// valid while nothing is allocated after warm-up. The buffers are carved
// from shared backing arrays, a block of slots per allocation.
type slotBufs struct {
	bufs  []table.Tuple
	width int
}

// slotBlock is how many slot buffers share one backing array.
const slotBlock = 128

// slot returns the i-th buffer, sized to width values.
func (s *slotBufs) slot(i, width int) table.Tuple {
	if width != s.width {
		s.bufs = s.bufs[:0]
		s.width = width
	}
	for i >= len(s.bufs) {
		vals := make(table.Tuple, slotBlock*width)
		for k := 0; k < slotBlock; k++ {
			s.bufs = append(s.bufs, vals[k*width:(k+1)*width:(k+1)*width])
		}
	}
	return s.bufs[i]
}

// batchScratch sizes a reusable input batch to match the consumer's output
// batch, capped at BatchSize.
func batchScratch(buf []table.Tuple, want int) []table.Tuple {
	if want > BatchSize {
		want = BatchSize
	}
	if cap(buf) < want {
		return make([]table.Tuple, want)
	}
	return buf[:want]
}

// fillBatch adapts a tuple-at-a-time source to one batch without cloning:
// it pulls next(i) into dst[i] until dst is full or the source dries up.
// Operators whose sources already satisfy the batch validity contract
// (stable emissions, or per-slot buffers selected by i) build their
// NextBatch on it.
func fillBatch(dst []table.Tuple, next func(i int) (table.Tuple, bool, error)) (int, error) {
	n := 0
	for n < len(dst) {
		t, ok, err := next(n)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		dst[n] = t
		n++
	}
	return n, nil
}

// drainCtx pulls op's whole stream batch by batch and hands every tuple to
// emit, cloned through a slab unless op promises stable storage — the one
// copy of the materialization rule every drain site shares. The context (if
// any) is checked once per batch.
func drainCtx(ctx context.Context, op Operator, batchSize int, emit func(table.Tuple) error) error {
	if batchSize <= 0 {
		batchSize = BatchSize
	}
	buf := make([]table.Tuple, batchSize)
	stable := Stable(op)
	var slab table.Slab
	for {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		n, err := NextBatch(op, buf)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		for _, t := range buf[:n] {
			if !stable {
				t = slab.Clone(t)
			}
			if err := emit(t); err != nil {
				return err
			}
		}
	}
}

// drainEach is drainCtx without cancellation at the default batch size.
func drainEach(op Operator, emit func(table.Tuple) error) error {
	return drainCtx(nil, op, BatchSize, emit)
}

// CollectCtx drains an operator into an in-memory relation (opening and
// closing it), batch by batch: the context is checked once per batch, and
// tuples are cloned through a slab allocator — or aliased directly when the
// operator promises stable storage.
func CollectCtx(ctx context.Context, op Operator) (*table.Relation, error) {
	return CollectCtxBatch(ctx, op, BatchSize)
}

// CollectCtxBatch is CollectCtx with an explicit batch size — exposed so
// tests can pin result stability across batch sizes.
func CollectCtxBatch(ctx context.Context, op Operator, batchSize int) (*table.Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	rel := table.NewRelation(op.Schema())
	err := drainCtx(ctx, op, batchSize, func(t table.Tuple) error {
		rel.Rows = append(rel.Rows, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// Collect drains an operator into an in-memory relation.
func Collect(op Operator) (*table.Relation, error) {
	return CollectCtx(nil, op)
}

// Count drains an operator and returns only the row count.
func Count(op Operator) (int64, error) {
	if err := op.Open(); err != nil {
		return 0, err
	}
	defer op.Close()
	var n int64
	buf := make([]table.Tuple, BatchSize)
	for {
		k, err := NextBatch(op, buf)
		if err != nil {
			return 0, err
		}
		if k == 0 {
			return n, nil
		}
		n += int64(k)
	}
}
