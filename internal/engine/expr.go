// Package engine is the relational query executor: Volcano-style iterators
// (scan, filter, project, hash/merge/nested-loop join, external sort,
// group-by, distinct) over the table data model. It plays the role of the
// PostgreSQL executor that SPROUT extends — the confidence operator in
// internal/conf consumes the sorted tuple streams produced here.
//
// The hot paths are allocation-conscious: every core operator implements
// the batched BatchOperator extension (batch.go), moving tuples in batches
// of BatchSize through reused buffers with cancellation checks at batch
// boundaries, and all tuple-keyed equality state (hash-join build sides,
// duplicate elimination) lives in the hash-keyed containers of
// internal/table (TupleMap/TupleSet) — FNV hashes with Compare-based
// collision chains, so equal keys never allocate. Operators that never
// reuse tuple storage advertise it through StableTuples, which lets the
// collectors skip defensive clones; the rest clone through table.Slab.
//
// On top of the row iterators sits the vectorized columnar tier
// (colexec.go, coljoin.go): ColOperator moves table.ColBatch column
// vectors instead of tuple slices through the same scan/filter/project/
// hash-join shapes, Columnarize/Vectorize lower a row plan into its
// maximal columnar regions (falling back to rows at the first operator
// with no columnar form), and dead-column pruning keeps heap scans from
// decoding columns nothing reads. The columnar tier is an execution
// strategy, not a semantics change: it emits the same tuples in the same
// order as the row path, with bit-identical hashes and confidences.
package engine

import (
	"fmt"

	"repro/internal/table"
)

// CmpOp is a comparison operator for predicates.
type CmpOp uint8

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in SQL syntax.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Holds evaluates c op 0 where c is a Compare result.
func (o CmpOp) Holds(c int) bool {
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// Expr is a scalar expression over a tuple.
type Expr interface {
	Eval(t table.Tuple) table.Value
	String() string
}

// ColRef references an input column by index.
type ColRef struct {
	Idx  int
	Name string
}

// Eval returns the referenced column.
func (c ColRef) Eval(t table.Tuple) table.Value { return t[c.Idx] }

// String renders the reference.
func (c ColRef) String() string { return fmt.Sprintf("%s@%d", c.Name, c.Idx) }

// Const is a literal value.
type Const struct{ V table.Value }

// Eval returns the constant.
func (c Const) Eval(table.Tuple) table.Value { return c.V }

// String renders the literal.
func (c Const) String() string { return c.V.String() }

// Mul multiplies two numeric expressions (used by the propagation step of
// the confidence operator: P1·P2, Fig. 5 JαβK case).
type Mul struct{ L, R Expr }

// Eval computes the product as a float.
func (m Mul) Eval(t table.Tuple) table.Value {
	l, r := m.L.Eval(t), m.R.Eval(t)
	return table.Float(numeric(l) * numeric(r))
}

// String renders the product.
func (m Mul) String() string { return "(" + m.L.String() + "*" + m.R.String() + ")" }

func numeric(v table.Value) float64 {
	switch v.Kind {
	case table.KindInt, table.KindBool:
		return float64(v.I)
	case table.KindFloat:
		return v.F
	default:
		return 0
	}
}

// Pred is a Boolean predicate over a tuple.
type Pred interface {
	Holds(t table.Tuple) bool
	String() string
}

// Cmp compares two expressions.
type Cmp struct {
	L, R Expr
	Op   CmpOp
}

// Holds evaluates the comparison.
func (c Cmp) Holds(t table.Tuple) bool {
	return c.Op.Holds(table.Compare(c.L.Eval(t), c.R.Eval(t)))
}

// String renders the comparison.
func (c Cmp) String() string { return c.L.String() + c.Op.String() + c.R.String() }

// And conjoins predicates; an empty And is true.
type And []Pred

// Holds evaluates the conjunction.
func (a And) Holds(t table.Tuple) bool {
	for _, p := range a {
		if !p.Holds(t) {
			return false
		}
	}
	return true
}

// String renders the conjunction.
func (a And) String() string {
	if len(a) == 0 {
		return "true"
	}
	s := a[0].String()
	for _, p := range a[1:] {
		s += " AND " + p.String()
	}
	return s
}

// True is the always-true predicate.
type True struct{}

// Holds returns true.
func (True) Holds(table.Tuple) bool { return true }

// String renders the predicate.
func (True) String() string { return "true" }
