package engine

import (
	"math/rand"
	"path/filepath"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/table"
)

func intsRel(name string, vals ...int64) *table.Relation {
	r := table.NewRelation(table.NewSchema(table.DataCol(name, table.KindInt)))
	for _, v := range vals {
		r.MustAppend(table.Tuple{table.Int(v)})
	}
	return r
}

// pairRel builds a two-int-column relation from (a,b) pairs.
func pairRel(aName, bName string, pairs ...[2]int64) *table.Relation {
	r := table.NewRelation(table.NewSchema(table.DataCol(aName, table.KindInt), table.DataCol(bName, table.KindInt)))
	for _, p := range pairs {
		r.MustAppend(table.Tuple{table.Int(p[0]), table.Int(p[1])})
	}
	return r
}

func drain(t *testing.T, op Operator) []table.Tuple {
	t.Helper()
	rel, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return rel.Rows
}

func TestMemScanAndCount(t *testing.T) {
	rel := intsRel("a", 1, 2, 3)
	n, err := Count(NewMemScan(rel))
	if err != nil || n != 3 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	rows := drain(t, NewMemScan(rel))
	if len(rows) != 3 || rows[2][0].I != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestFilter(t *testing.T) {
	rel := intsRel("a", 1, 2, 3, 4, 5)
	f := NewFilter(NewMemScan(rel), Cmp{L: ColRef{Idx: 0, Name: "a"}, Op: OpGt, R: Const{table.Int(3)}})
	rows := drain(t, f)
	if len(rows) != 2 || rows[0][0].I != 4 || rows[1][0].I != 5 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		want []int64
	}{
		{OpEq, []int64{3}},
		{OpNe, []int64{1, 2, 4, 5}},
		{OpLt, []int64{1, 2}},
		{OpLe, []int64{1, 2, 3}},
		{OpGt, []int64{4, 5}},
		{OpGe, []int64{3, 4, 5}},
	}
	for _, c := range cases {
		rel := intsRel("a", 1, 2, 3, 4, 5)
		f := NewFilter(NewMemScan(rel), Cmp{L: ColRef{Idx: 0}, Op: c.op, R: Const{table.Int(3)}})
		rows := drain(t, f)
		if len(rows) != len(c.want) {
			t.Errorf("op %v: got %d rows, want %d", c.op, len(rows), len(c.want))
			continue
		}
		for i, w := range c.want {
			if rows[i][0].I != w {
				t.Errorf("op %v row %d: got %d, want %d", c.op, i, rows[i][0].I, w)
			}
		}
	}
}

func TestProjectColumnsAndExprs(t *testing.T) {
	rel := pairRel("a", "b", [2]int64{2, 3}, [2]int64{5, 7})
	p, err := NewColumnProject(NewMemScan(rel), []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, p)
	if len(rows) != 2 || rows[0][0].I != 3 || rows[1][0].I != 7 {
		t.Fatalf("rows = %v", rows)
	}
	if _, err := NewColumnProject(NewMemScan(rel), []string{"zz"}); err == nil {
		t.Error("unknown column should error")
	}

	// Computed projection: a*b.
	out := table.NewSchema(table.DataCol("ab", table.KindFloat))
	pe, err := NewProject(NewMemScan(rel), out, []Expr{Mul{L: ColRef{Idx: 0}, R: ColRef{Idx: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	rows = drain(t, pe)
	if rows[0][0].F != 6 || rows[1][0].F != 35 {
		t.Fatalf("computed rows = %v", rows)
	}
}

func TestLimit(t *testing.T) {
	rel := intsRel("a", 1, 2, 3, 4)
	rows := drain(t, NewLimit(NewMemScan(rel), 2))
	if len(rows) != 2 {
		t.Fatalf("limit rows = %v", rows)
	}
}

func TestHashJoinBasic(t *testing.T) {
	l := pairRel("k", "x", [2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30})
	r := pairRel("k", "y", [2]int64{2, 200}, [2]int64{2, 201}, [2]int64{4, 400})
	j, err := NewHashJoin(NewMemScan(l), NewMemScan(r), []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, j)
	if len(rows) != 2 {
		t.Fatalf("join rows = %v", rows)
	}
	for _, row := range rows {
		if row[0].I != 2 || row[2].I != 2 {
			t.Errorf("join keys should match: %v", row)
		}
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var lp, rp [][2]int64
	for i := 0; i < 200; i++ {
		lp = append(lp, [2]int64{int64(r.Intn(20)), int64(i)})
		rp = append(rp, [2]int64{int64(r.Intn(20)), int64(1000 + i)})
	}
	l := pairRel("k", "x", lp...)
	rr := pairRel("k", "y", rp...)

	hj, err := NewHashJoin(NewMemScan(l), NewMemScan(rr), []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	hjRows := drain(t, hj)

	mj, err := NewMergeJoin(
		NewSort(NewMemScan(l), SortSpec{Cols: []int{0}}),
		NewSort(NewMemScan(rr), SortSpec{Cols: []int{0}}),
		[]int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	mjRows := drain(t, mj)

	if len(hjRows) != len(mjRows) {
		t.Fatalf("hash join %d rows, merge join %d rows", len(hjRows), len(mjRows))
	}
	canon := func(rows []table.Tuple) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = r.String()
		}
		slices.Sort(out)
		return out
	}
	hc, mc := canon(hjRows), canon(mjRows)
	for i := range hc {
		if hc[i] != mc[i] {
			t.Fatalf("row %d differs: %s vs %s", i, hc[i], mc[i])
		}
	}
}

func TestMergeJoinDuplicateBlocks(t *testing.T) {
	// Both sides have runs of duplicate keys; output must be the full cross
	// product per key: 2*3 (k=1) + 1*2 (k=2) = 8.
	l := pairRel("k", "x", [2]int64{1, 1}, [2]int64{1, 2}, [2]int64{2, 3})
	r := pairRel("k", "y", [2]int64{1, 4}, [2]int64{1, 5}, [2]int64{1, 6}, [2]int64{2, 7}, [2]int64{2, 8})
	mj, err := NewMergeJoin(NewMemScan(l), NewMemScan(r), []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, mj)
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8: %v", len(rows), rows)
	}
}

// TestMergeJoinAsymmetricKeyLayouts joins sides whose key columns sit at
// different positions — left keys (0, 3), right keys (1, 0) — with the
// second left key indexing past the right tuple's width. Regression test:
// the right-block grouping loop used to index the buffered block key (a
// right tuple) with the LEFT key positions, which mismatched blocks when
// the layouts differed and panicked when a left index exceeded the right
// arity. Plan-lowered grace joins produce exactly these shapes.
func TestMergeJoinAsymmetricKeyLayouts(t *testing.T) {
	lSchema := table.NewSchema(
		table.DataCol("a", table.KindInt), table.DataCol("x", table.KindInt),
		table.DataCol("y", table.KindInt), table.DataCol("b", table.KindInt))
	l := table.NewRelation(lSchema)
	// Sorted on (a, b) = cols (0, 3); filler columns hold unrelated values.
	for _, row := range [][4]int64{{1, 90, 91, 1}, {1, 92, 93, 2}, {2, 94, 95, 1}} {
		l.MustAppend(table.Tuple{table.Int(row[0]), table.Int(row[1]), table.Int(row[2]), table.Int(row[3])})
	}
	rSchema := table.NewSchema(
		table.DataCol("b", table.KindInt), table.DataCol("a", table.KindInt),
		table.DataCol("z", table.KindInt))
	r := table.NewRelation(rSchema)
	// Sorted on (a, b) = cols (1, 0); duplicate keys exercise block buffering.
	for _, row := range [][3]int64{{1, 1, 70}, {1, 1, 71}, {2, 1, 72}, {1, 2, 73}, {9, 2, 74}} {
		r.MustAppend(table.Tuple{table.Int(row[0]), table.Int(row[1]), table.Int(row[2])})
	}
	mj, err := NewMergeJoin(NewMemScan(l), NewMemScan(r), []int{0, 3}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, mj)
	// Matches: l(1,_,_,1) x r{(1,1,70),(1,1,71)}, l(1,_,_,2) x r(2,1,72),
	// l(2,_,_,1) x r(1,2,73).
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %v", len(rows), rows)
	}
	for _, row := range rows {
		if row[0].I != row[5].I || row[3].I != row[4].I {
			t.Errorf("join keys should match across sides: %v", row)
		}
	}
}

func TestNestedLoopJoinPredicate(t *testing.T) {
	l := intsRel("a", 1, 2, 3)
	r := intsRel("b", 2, 3, 4)
	j := NewNestedLoopJoin(NewMemScan(l), NewMemScan(r),
		Cmp{L: ColRef{Idx: 0}, Op: OpLt, R: ColRef{Idx: 1}})
	rows := drain(t, j)
	// pairs with a<b: (1,2)(1,3)(1,4)(2,3)(2,4)(3,4) = 6
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	cross := NewNestedLoopJoin(NewMemScan(l), NewMemScan(r), nil)
	if rows := drain(t, cross); len(rows) != 9 {
		t.Fatalf("cross product should have 9 rows, got %d", len(rows))
	}
}

func TestSortOperator(t *testing.T) {
	rel := pairRel("a", "b", [2]int64{3, 1}, [2]int64{1, 2}, [2]int64{2, 3}, [2]int64{1, 1})
	s := NewSort(NewMemScan(rel), SortSpec{Cols: []int{0, 1}})
	rows := drain(t, s)
	want := [][2]int64{{1, 1}, {1, 2}, {2, 3}, {3, 1}}
	for i, w := range want {
		if rows[i][0].I != w[0] || rows[i][1].I != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows[i], w)
		}
	}
}

func TestSortSpilling(t *testing.T) {
	rel := table.NewRelation(table.NewSchema(table.DataCol("a", table.KindInt)))
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		rel.MustAppend(table.Tuple{table.Int(int64(r.Intn(1000)))})
	}
	s := NewSort(NewMemScan(rel), SortSpec{Cols: []int{0}})
	s.Budget = 256
	s.TmpDir = t.TempDir()
	rows := drain(t, s)
	if s.Spills() < 2 {
		t.Fatalf("expected spills, got %d", s.Spills())
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].I > rows[i][0].I {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if len(rows) != 5000 {
		t.Fatalf("lost rows: %d", len(rows))
	}
}

func TestSortedGroupByMinAndProbOr(t *testing.T) {
	// Groups on col 0; min of col 1; prob-or of col 2.
	sch := table.NewSchema(
		table.DataCol("g", table.KindInt),
		table.DataCol("v", table.KindInt),
		table.DataCol("p", table.KindFloat))
	rel := table.NewRelation(sch)
	rel.MustAppend(table.Tuple{table.Int(1), table.Int(7), table.Float(0.1)})
	rel.MustAppend(table.Tuple{table.Int(1), table.Int(3), table.Float(0.2)})
	rel.MustAppend(table.Tuple{table.Int(2), table.Int(5), table.Float(0.5)})
	g := NewSortedGroupBy(NewMemScan(rel), []int{0}, []AggSpec{
		{Kind: AggMin, Col: 1, Out: table.DataCol("minv", table.KindInt)},
		{Kind: AggProbOr, Col: 2, Out: table.DataCol("p", table.KindFloat)},
	})
	rows := drain(t, g)
	if len(rows) != 2 {
		t.Fatalf("got %d groups, want 2", len(rows))
	}
	if rows[0][0].I != 1 || rows[0][1].I != 3 {
		t.Errorf("group 1 min = %v", rows[0])
	}
	want := 1 - 0.9*0.8
	if d := rows[0][2].F - want; d > 1e-12 || d < -1e-12 {
		t.Errorf("group 1 prob = %g, want %g", rows[0][2].F, want)
	}
	if rows[1][0].I != 2 || rows[1][2].F != 0.5 {
		t.Errorf("group 2 = %v", rows[1])
	}
}

func TestSortedGroupBySumCount(t *testing.T) {
	sch := table.NewSchema(table.DataCol("g", table.KindInt), table.DataCol("x", table.KindInt))
	rel := table.NewRelation(sch)
	for i := 0; i < 6; i++ {
		rel.MustAppend(table.Tuple{table.Int(int64(i % 2)), table.Int(int64(i))})
	}
	g := GroupSorted(NewMemScan(rel), []int{0}, []AggSpec{
		{Kind: AggSum, Col: 1, Out: table.DataCol("s", table.KindFloat)},
		{Kind: AggCount, Col: 1, Out: table.DataCol("c", table.KindInt)},
	})
	rows := drain(t, g)
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	// g=0: 0+2+4=6, count 3; g=1: 1+3+5=9, count 3.
	if rows[0][1].F != 6 || rows[0][2].I != 3 || rows[1][1].F != 9 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSortedGroupByEmptyInput(t *testing.T) {
	rel := intsRel("g")
	g := NewSortedGroupBy(NewMemScan(rel), []int{0}, []AggSpec{
		{Kind: AggCount, Col: 0, Out: table.DataCol("c", table.KindInt)},
	})
	rows := drain(t, g)
	if len(rows) != 0 {
		t.Fatalf("empty input should yield no groups, got %v", rows)
	}
}

func TestHashDistinct(t *testing.T) {
	rel := intsRel("a", 1, 2, 1, 3, 2, 1)
	rows := drain(t, NewHashDistinct(NewMemScan(rel)))
	if len(rows) != 3 {
		t.Fatalf("distinct rows = %v", rows)
	}
}

func TestHeapScanThroughEngine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.heap")
	h, err := storage.CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := h.Append(table.Tuple{table.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	sch := table.NewSchema(table.DataCol("a", table.KindInt))
	pool := storage.NewBufferPool(8)
	scan := NewHeapScan(h, pool, sch)
	n, err := Count(scan)
	if err != nil || n != 1000 {
		t.Fatalf("count = %d, %v", n, err)
	}
	// Filter on top of heap scan.
	f := NewFilter(NewHeapScan(h, pool, sch), Cmp{L: ColRef{Idx: 0}, Op: OpLt, R: Const{table.Int(10)}})
	rows := drain(t, f)
	if len(rows) != 10 {
		t.Fatalf("filtered rows = %d", len(rows))
	}
}

func TestValidateColumns(t *testing.T) {
	s := table.NewSchema(table.DataCol("a", table.KindInt))
	if err := ValidateColumns(s, []int{0}); err != nil {
		t.Error(err)
	}
	if err := ValidateColumns(s, []int{1}); err == nil {
		t.Error("out-of-range column should error")
	}
}

// TestQuickJoinCommutes: |L ⋈ R| is symmetric for hash joins.
func TestQuickJoinCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() *table.Relation {
			rel := intsRel("k")
			n := r.Intn(30)
			for i := 0; i < n; i++ {
				rel.MustAppend(table.Tuple{table.Int(int64(r.Intn(8)))})
			}
			return rel
		}
		a, b := mk(), mk()
		j1, err := NewHashJoin(NewMemScan(a), NewMemScan(b), []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		j2, err := NewHashJoin(NewMemScan(b), NewMemScan(a), []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		n1, err := Count(j1)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := Count(j2)
		if err != nil {
			t.Fatal(err)
		}
		return n1 == n2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickSortThenGroupCountsRows: grouping partitions the input, so group
// counts must sum to the input size.
func TestQuickSortThenGroupCountsRows(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel := intsRel("g")
		n := r.Intn(100)
		for i := 0; i < n; i++ {
			rel.MustAppend(table.Tuple{table.Int(int64(r.Intn(5)))})
		}
		g := GroupSorted(NewMemScan(rel), []int{0}, []AggSpec{
			{Kind: AggCount, Col: 0, Out: table.DataCol("c", table.KindInt)},
		})
		rows, err := Collect(g)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, row := range rows.Rows {
			total += row[1].I
		}
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
