package engine

import (
	"testing"

	"repro/internal/prob"
	"repro/internal/table"
)

// Allocation-regression guards for the hot paths the batched executor and
// the hash-keyed containers are supposed to keep allocation-free: probing a
// built hash join, recognizing duplicates in HashDistinct, and draining
// batches through the collector. The budgets are deliberately loose (they
// guard against a per-tuple regression, not against single allocations) but
// orders of magnitude below the per-row costs of the string-keyed
// implementations they replaced.

const allocRows = 1024

func allocRel(rows, distinct int) *table.Relation {
	sch := table.NewSchema(
		table.DataCol("k", table.KindInt),
		table.DataCol("v", table.KindInt),
		table.VarCol("R"), table.ProbCol("R"),
	)
	rel := table.NewRelation(sch)
	for i := 0; i < rows; i++ {
		rel.MustAppend(table.Tuple{
			table.Int(int64(i % distinct)),
			table.Int(int64(i)),
			table.VarValue(prob.Var(i + 1)), table.Float(0.5),
		})
	}
	return rel
}

// TestHashJoinProbeAllocs pins the probe side of a built hash join: once
// Open has built the table, streaming every probe tuple through NextBatch
// must not allocate per row.
func TestHashJoinProbeAllocs(t *testing.T) {
	left := NewMemScan(allocRel(allocRows, allocRows))
	right := NewMemScan(allocRel(allocRows, allocRows))
	j, err := NewHashJoin(left, right, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	buf := make([]table.Tuple, BatchSize)
	probe := func() {
		left.Open() // rewind the probe side; the built table stays
		j.inN, j.inPos = 0, 0
		j.curLen, j.curPos = 0, 0
		rows := 0
		for {
			n, err := j.NextBatch(buf)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			rows += n
		}
		if rows != allocRows {
			t.Fatalf("probe produced %d rows, want %d", rows, allocRows)
		}
	}
	probe() // warm up the slot buffers
	avg := testing.AllocsPerRun(10, probe)
	if avg > 16 {
		t.Fatalf("hash join probe allocated %.1f times per %d-row probe pass, want ≤ 16", avg, allocRows)
	}
}

// TestHashDistinctAllocs pins duplicate recognition: a stream that is
// almost entirely duplicates must cost (nearly) nothing beyond the handful
// of retained uniques.
func TestHashDistinctAllocs(t *testing.T) {
	const distinct = 4
	rel := allocRel(allocRows, 1)
	// Same k, few distinct (v mod distinct) rows repeated.
	for i := range rel.Rows {
		rel.Rows[i][1] = table.Int(int64(i % distinct))
		rel.Rows[i][2] = table.VarValue(prob.Var(i%distinct + 1))
	}
	d := NewHashDistinct(NewMemScan(rel))
	buf := make([]table.Tuple, BatchSize)
	run := func() {
		if err := d.Open(); err != nil {
			t.Fatal(err)
		}
		rows := 0
		for {
			n, err := d.NextBatch(buf)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			rows += n
		}
		if rows != distinct {
			t.Fatalf("distinct produced %d rows, want %d", rows, distinct)
		}
		d.Close()
	}
	run()
	avg := testing.AllocsPerRun(10, run)
	// Each run rebuilds the seen set (one map, a few chains) but the 1020
	// duplicate rows must not contribute: well under one alloc per row.
	if avg > 32 {
		t.Fatalf("HashDistinct allocated %.1f times per %d-row pass, want ≤ 32", avg, allocRows)
	}
}

// TestCollectBatchIdentity pins that the batched collector produces the
// same relation for every batch size — including size 1, which degenerates
// to the classic tuple-at-a-time pull.
func TestCollectBatchIdentity(t *testing.T) {
	rel := allocRel(512, 61)
	build := func() Operator {
		j, err := NewHashJoin(NewMemScan(rel), NewMemScan(rel), []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		var f Operator = NewFilter(j, Cmp{L: ColRef{Idx: 1, Name: "v"}, Op: OpLt, R: Const{V: table.Int(400)}})
		p, err := NewColumnProject(f, []string{"k", "v"})
		if err != nil {
			t.Fatal(err)
		}
		return NewHashDistinct(p)
	}
	ref, err := CollectCtxBatch(nil, build(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() == 0 {
		t.Fatal("reference run produced no rows")
	}
	for _, bs := range []int{1, 7, 1024} {
		got, err := CollectCtxBatch(nil, build(), bs)
		if err != nil {
			t.Fatalf("batch size %d: %v", bs, err)
		}
		if got.Len() != ref.Len() {
			t.Fatalf("batch size %d: %d rows, want %d", bs, got.Len(), ref.Len())
		}
		for i := range ref.Rows {
			if table.CompareOn(got.Rows[i], ref.Rows[i], []int{0, 1}) != 0 {
				t.Fatalf("batch size %d: row %d = %v, want %v", bs, i, got.Rows[i], ref.Rows[i])
			}
		}
	}
	// The columnar tier is part of the same identity contract: the pipeline
	// below the distinct lowers to column batches (the distinct itself stays
	// a row operator) and must produce the same relation.
	got, _, err := CollectCtxVec(nil, build())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ref.Len() {
		t.Fatalf("columnar: %d rows, want %d", got.Len(), ref.Len())
	}
	for i := range ref.Rows {
		if table.CompareOn(got.Rows[i], ref.Rows[i], []int{0, 1}) != 0 {
			t.Fatalf("columnar: row %d = %v, want %v", i, got.Rows[i], ref.Rows[i])
		}
	}
}
