package engine

import (
	"testing"

	"repro/internal/table"
)

// TestCountedTransparent: the Counted wrapper forwards every tuple
// unchanged (batched and one-at-a-time), counts rows and batches, and
// preserves the stability promise.
func TestCountedTransparent(t *testing.T) {
	rel := table.NewRelation(table.NewSchema(table.DataCol("a", table.KindInt)))
	for i := 0; i < 2500; i++ {
		rel.Rows = append(rel.Rows, table.Tuple{table.Int(int64(i))})
	}

	var s OpStats
	op := Counted(NewMemScan(rel), &s)
	if !Stable(op) {
		t.Fatal("Counted over a MemScan must stay stable")
	}
	got, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rel.Len() {
		t.Fatalf("rows %d, want %d", got.Len(), rel.Len())
	}
	if s.Rows != int64(rel.Len()) {
		t.Fatalf("counted %d rows, want %d", s.Rows, rel.Len())
	}
	if want := int64((rel.Len() + BatchSize - 1) / BatchSize); s.Batches != want {
		t.Fatalf("counted %d batches, want %d", s.Batches, want)
	}

	// Next path.
	s = OpStats{}
	op = Counted(NewMemScan(rel), &s)
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Rows != int64(n) || n != rel.Len() {
		t.Fatalf("Next path counted %d of %d rows", s.Rows, n)
	}
}
