package engine

import (
	"context"

	"repro/internal/pool"
	"repro/internal/table"
)

// Columnar hash joins. Both joins hash whole probe/build batches at once
// with ColBatch.HashInto — the vectorized form of table.HashOn, bit-identical
// per row — and share TupleMap with the row engine, so a columnar build side
// holds exactly the groups a row build would and emits matches in the same
// order (probe rows in scan order, First then Rest per group). That order
// identity is what keeps confidences pinned across the two tiers.

// ColHashJoin is the columnar equi-join: the right input is drained into a
// TupleMap (rows materialized from its column batches), and left batches
// probe it with vectorized hashes. Output rows gather left cells column-wise
// (ColVec.AppendCell — typed, allocation-free) and append the matched build
// tuples' cells. One output batch carries all matches of one probe batch, so
// it may exceed BatchSize on multi-matching keys.
type ColHashJoin struct {
	Left, Right         ColOperator
	LeftKeys, RightKeys []int
	out                 *table.Schema
	built               *table.TupleMap
	in                  *table.ColBatch
	hashes              []uint64
}

// Schema returns left ++ right.
func (j *ColHashJoin) Schema() *table.Schema { return j.out }

// Open opens both inputs and builds the hash table over the right.
func (j *ColHashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	built, err := colBuild(j.Right, j.RightKeys)
	if err != nil {
		return err
	}
	j.built = built
	if j.in == nil {
		j.in = table.NewColBatch(j.Left.Schema())
	}
	return nil
}

// colBuild drains a columnar operator into a TupleMap keyed on the given
// columns: each batch is hashed in one vectorized pass, then its live rows
// are materialized into slab storage and inserted under the precomputed
// hashes. Insertion order matches the row build (scan order), so the map's
// group order — and therefore the join's output order — is identical.
func colBuild(op ColOperator, keys []int) (*table.TupleMap, error) {
	// The map deliberately starts empty, as the row buildSide does:
	// presizing by row count over-allocates heavily on repeated join keys.
	built := table.NewTupleMap(keys, 0)
	b := table.NewColBatch(op.Schema())
	w := op.Schema().Len()
	var slab table.Slab
	var hashes []uint64
	for {
		n, err := op.NextColBatch(b)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return built, nil
		}
		hashes = b.HashInto(keys, hashes)
		for i := 0; i < n; i++ {
			t := slab.Alloc(w)
			b.WriteRow(i, t)
			built.AddHashed(hashes[i], t)
		}
	}
}

// NextColBatch probes with the next left batch, emitting every match.
func (j *ColHashJoin) NextColBatch(dst *table.ColBatch) (int, error) {
	for {
		n, err := j.Left.NextColBatch(j.in)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, nil
		}
		j.hashes = j.in.HashInto(j.LeftKeys, j.hashes)
		dst.Reset(j.out)
		lw := j.in.Schema.Len()
		for i := 0; i < n; i++ {
			row := j.in.RowID(i)
			g, ok := j.built.LookupHashedCols(j.hashes[i], j.in, j.LeftKeys, row)
			if !ok {
				continue
			}
			j.emit(dst, row, lw, g.First)
			for _, r := range g.Rest {
				j.emit(dst, row, lw, r)
			}
		}
		if dst.N > 0 {
			return dst.N, nil
		}
	}
}

// emit appends one joined row: left cells gathered column-wise from the
// probe batch, right cells from the stored build tuple.
func (j *ColHashJoin) emit(dst *table.ColBatch, row, lw int, r table.Tuple) {
	for c := 0; c < lw; c++ {
		dst.Cols[c].AppendCell(dst.N, &j.in.Cols[c], row)
	}
	for k, v := range r {
		dst.Cols[lw+k].AppendValue(dst.N, v)
	}
	dst.N++
}

// Close closes both inputs and drops the hash table.
func (j *ColHashJoin) Close() error {
	j.built = nil
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// ColPartitionedHashJoin is the columnar PartitionedHashJoin: both inputs
// are drained with their join-key hashes computed batch-wise, partitioned by
// hash (the same assignment as table.PartitionOn, since the partition hash
// IS the HashOn value), and the per-partition builds and probes reuse the
// carried hashes instead of rehashing any row. The output is materialized in
// partition order — byte-for-byte the row join's output — and streamed out
// as column batches.
type ColPartitionedHashJoin struct {
	Left, Right         ColOperator
	LeftKeys, RightKeys []int
	Pool                *pool.Pool
	Ctx                 context.Context
	out                 *table.Schema
	rows                []table.Tuple
	pos                 int
}

// Schema returns left ++ right.
func (j *ColPartitionedHashJoin) Schema() *table.Schema { return j.out }

// Open drains, partitions, and joins both inputs.
func (j *ColPartitionedHashJoin) Open() error {
	left, lh, err := colDrainHashed(j.Left, j.LeftKeys)
	if err != nil {
		return err
	}
	right, rh, err := colDrainHashed(j.Right, j.RightKeys)
	if err != nil {
		return err
	}
	// Same serial cutoff as the row join: the switch depends only on the
	// input sizes, never on the worker count, so output order is preserved.
	if len(left)+len(right) < ParallelMinRows {
		j.rows = joinPartitionHashed(left, lh, right, rh, j.LeftKeys, j.RightKeys)
		j.pos = 0
		return nil
	}
	lParts, lhParts := partitionHashed(left, lh)
	rParts, rhParts := partitionHashed(right, rh)
	outs := make([][]table.Tuple, joinPartitions)
	err = j.Pool.Do(j.Ctx, joinPartitions, func(p int) error {
		outs[p] = joinPartitionHashed(lParts[p], lhParts[p], rParts[p], rhParts[p], j.LeftKeys, j.RightKeys)
		return nil
	})
	if err != nil {
		return err
	}
	j.rows = j.rows[:0]
	for _, part := range outs {
		j.rows = append(j.rows, part...)
	}
	j.pos = 0
	return nil
}

// colDrainHashed materializes a columnar operator's stream (opening and
// closing it) along with each row's join-key hash, computed batch-wise.
func colDrainHashed(op ColOperator, keys []int) ([]table.Tuple, []uint64, error) {
	if err := op.Open(); err != nil {
		return nil, nil, err
	}
	defer op.Close()
	b := table.NewColBatch(op.Schema())
	w := op.Schema().Len()
	var slab table.Slab
	var rows []table.Tuple
	var all, batch []uint64
	for {
		n, err := op.NextColBatch(b)
		if err != nil {
			return nil, nil, err
		}
		if n == 0 {
			return rows, all, nil
		}
		batch = b.HashInto(keys, batch)
		for i := 0; i < n; i++ {
			t := slab.Alloc(w)
			b.WriteRow(i, t)
			rows = append(rows, t)
		}
		all = append(all, batch...)
	}
}

// partitionHashed splits rows by hash into joinPartitions buckets,
// preserving input order within each — exactly table.PartitionOn's
// assignment, with the hashes carried instead of recomputed.
func partitionHashed(rows []table.Tuple, hashes []uint64) ([][]table.Tuple, [][]uint64) {
	parts := make([][]table.Tuple, joinPartitions)
	hparts := make([][]uint64, joinPartitions)
	for i, t := range rows {
		p := int(hashes[i] % joinPartitions)
		parts[p] = append(parts[p], t)
		hparts[p] = append(hparts[p], hashes[i])
	}
	return parts, hparts
}

// joinPartitionHashed is joinPartition with every row's hash precomputed:
// builds with AddHashed, probes with LookupHashed, emits left-order matches
// First then Rest into slab storage.
func joinPartitionHashed(left []table.Tuple, lh []uint64, right []table.Tuple, rh []uint64, lk, rk []int) []table.Tuple {
	if len(left) == 0 || len(right) == 0 {
		return nil
	}
	built := table.NewTupleMap(rk, len(right))
	for i, t := range right {
		built.AddHashed(rh[i], t)
	}
	var out []table.Tuple
	var slab table.Slab
	emit := func(l, r table.Tuple) {
		row := slab.Alloc(len(l) + len(r))
		copy(row, l)
		copy(row[len(l):], r)
		out = append(out, row)
	}
	for i, l := range left {
		g, ok := built.LookupHashed(lh[i], l, lk)
		if !ok {
			continue
		}
		emit(l, g.First)
		for _, r := range g.Rest {
			emit(l, r)
		}
	}
	return out
}

// NextColBatch streams the materialized join result as column batches.
func (j *ColPartitionedHashJoin) NextColBatch(dst *table.ColBatch) (int, error) {
	if j.pos >= len(j.rows) {
		return 0, nil
	}
	dst.Reset(j.out)
	for j.pos < len(j.rows) && dst.N < BatchSize {
		dst.AppendRow(j.rows[j.pos])
		j.pos++
	}
	return dst.N, nil
}

// Close drops the materialized result.
func (j *ColPartitionedHashJoin) Close() error {
	j.rows = nil
	return nil
}
