package engine

import (
	"repro/internal/fault"
	"repro/internal/storage"
	"repro/internal/table"
)

// SortSpec names the columns to order by, in priority order. All sorts are
// ascending; the confidence operator only needs grouping, not direction.
type SortSpec struct {
	Cols []int
}

// Compare orders two tuples under the spec.
func (s SortSpec) Compare(a, b table.Tuple) int { return table.CompareOn(a, b, s.Cols) }

// Sort materializes and orders its input using the external sorter, so that
// inputs beyond the memory budget spill to disk. The paper's lazy plans are
// dominated by exactly this step: "the time needed ... to compute and store
// on disk the answer tuples ... ordered as required by our operator" (§VII).
type Sort struct {
	In     Operator
	Spec   SortSpec
	Budget int             // tuples held in memory; 0 = storage.DefaultSortBudget
	TmpDir string          // "" = os.TempDir()
	Mem    *fault.Governor // optional memory governor: spill earlier under pressure

	it     storage.TupleIterator
	spills int
}

// NewSort builds a sort operator.
func NewSort(in Operator, spec SortSpec) *Sort { return &Sort{In: in, Spec: spec} }

// Schema returns the input schema.
func (s *Sort) Schema() *table.Schema { return s.In.Schema() }

// Spills reports how many runs the last Open spilled to disk.
func (s *Sort) Spills() int { return s.spills }

// Open drains and sorts the input, batch by batch. Tuples from stable
// inputs feed the sorter directly; everything else is cloned through a slab
// (one allocation per ~4k values instead of one per tuple).
func (s *Sort) Open() error {
	if err := s.In.Open(); err != nil {
		return err
	}
	sorter := storage.NewExternalSorter(s.Spec.Compare, s.Budget, s.TmpDir)
	sorter.Govern(s.Mem)
	if err := drainEach(s.In, sorter.Add); err != nil {
		s.In.Close()
		sorter.Discard()
		return err
	}
	if err := s.In.Close(); err != nil {
		sorter.Discard()
		return err
	}
	it, err := sorter.Finish()
	if err != nil {
		return err
	}
	s.it = it
	s.spills = sorter.Spills()
	return nil
}

// Next yields tuples in sorted order.
func (s *Sort) Next() (table.Tuple, bool, error) {
	if s.it == nil {
		return nil, false, nil
	}
	return s.it.Next()
}

// NextBatch streams sorted tuples. The sorted stream owns its tuples (an
// in-memory buffer or heap-file decodes), so batches are stable.
func (s *Sort) NextBatch(dst []table.Tuple) (int, error) {
	if s.it == nil {
		return 0, nil
	}
	return fillBatch(dst, func(int) (table.Tuple, bool, error) { return s.it.Next() })
}

// StableTuples: sorted tuples are owned by the sorter's materialized buffer
// or decoded fresh from spill files; they are never overwritten.
func (s *Sort) StableTuples() bool { return true }

// Close releases the sorted stream (removing any spill files).
func (s *Sort) Close() error {
	if s.it == nil {
		return nil
	}
	err := s.it.Close()
	s.it = nil
	return err
}
