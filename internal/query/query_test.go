package query

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/table"
)

// introQ is the running query of the paper's Introduction:
// π_odate σ_{cname='Joe', discount>0}(Cust ⋈_ckey Ord ⋈_{okey,ckey} Item).
func introQ() *Query {
	return &Query{
		Name: "Q",
		Head: []string{"odate"},
		Rels: []RelRef{
			Rel("Cust", "ckey", "cname"),
			Rel("Ord", "okey", "ckey", "odate"),
			Rel("Item", "okey", "discount", "ckey"),
		},
		Sels: []Selection{
			{Rel: "Cust", Attr: "cname", Op: engine.OpEq, Val: table.Str("Joe")},
			{Rel: "Item", Attr: "discount", Op: engine.OpGt, Val: table.Float(0)},
		},
	}
}

// introQPrime is Q' from the Introduction: Item loses its ckey attribute,
// making the query the prototypical hard (non-hierarchical) pattern.
func introQPrime() *Query {
	return &Query{
		Name: "Q'",
		Head: []string{"odate"},
		Rels: []RelRef{
			Rel("Cust", "ckey", "cname"),
			Rel("Ord", "okey", "ckey", "odate"),
			Rel("Item", "okey", "discount"),
		},
	}
}

func TestValidate(t *testing.T) {
	q := introQ()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := introQ()
	bad.Head = []string{"nope"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown head attribute should fail validation")
	}
	dup := introQ()
	dup.Rels = append(dup.Rels, Rel("Cust", "ckey"))
	if err := dup.Validate(); err == nil {
		t.Error("repeated occurrence should fail validation (no self-joins)")
	}
	badSel := introQ()
	badSel.Sels = []Selection{{Rel: "Cust", Attr: "zz", Op: engine.OpEq, Val: table.Int(1)}}
	if err := badSel.Validate(); err == nil {
		t.Error("selection on unknown attribute should fail")
	}
	empty := &Query{}
	if err := empty.Validate(); err == nil {
		t.Error("query without relations should fail")
	}
}

func TestJoinAttrs(t *testing.T) {
	q := introQ()
	got := q.JoinAttrs()
	want := []string{"ckey", "okey"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("JoinAttrs = %v, want %v", got, want)
	}
	// odate is in the head and only occurs in Ord, so effective join attrs
	// equal the join attrs here.
	eff := q.EffectiveJoinAttrs()
	if len(eff) != 2 {
		t.Errorf("EffectiveJoinAttrs = %v", eff)
	}
}

func TestHeadJoinAttrExcluded(t *testing.T) {
	// okey joins Ord and Item but is projected: it must not participate in
	// the hierarchical test (§II.B).
	q := &Query{
		Head: []string{"okey"},
		Rels: []RelRef{
			Rel("Ord", "okey", "ckey"),
			Rel("Item", "okey", "discount"),
			Rel("Cust", "ckey", "cname"),
		},
	}
	eff := q.EffectiveJoinAttrs()
	if len(eff) != 1 || eff[0] != "ckey" {
		t.Errorf("EffectiveJoinAttrs = %v, want [ckey]", eff)
	}
	if !q.IsHierarchical() {
		t.Error("query should be hierarchical once head attrs are ignored")
	}
}

// TestIntroQHierarchical: "We can check that Q is hierarchical: ckey
// participates in both joins, whereas okey participates only in one join."
func TestIntroQHierarchical(t *testing.T) {
	if !introQ().IsHierarchical() {
		t.Error("intro query Q must be hierarchical")
	}
}

// TestIntroQPrimeNonHierarchical: "Q′ is non-hierarchical, because each of
// the two join attributes of Ord participates in a different join."
func TestIntroQPrimeNonHierarchical(t *testing.T) {
	if introQPrime().IsHierarchical() {
		t.Error("intro query Q' must be non-hierarchical")
	}
	if _, err := TreeFor(introQPrime()); err == nil {
		t.Error("tree construction must fail for non-hierarchical Q'")
	}
}

// TestIntroQTree reproduces Fig. 3: root ckey with children Cust and the
// node {ckey,okey} over Ord and Item.
func TestIntroQTree(t *testing.T) {
	tree, err := TreeFor(introQ())
	if err != nil {
		t.Fatal(err)
	}
	if tree.IsLeaf() {
		t.Fatal("root must be an inner node")
	}
	if len(tree.Label) != 1 || tree.Label[0] != "ckey" {
		t.Errorf("root label = %v, want [ckey]", tree.Label)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root should have 2 children, got %d", len(tree.Children))
	}
	cust := tree.Children[0]
	if !cust.IsLeaf() || cust.Leaf.Name != "Cust" {
		t.Errorf("first child should be leaf Cust, got %v", cust)
	}
	inner := tree.Children[1]
	if inner.IsLeaf() || len(inner.Label) != 2 || inner.Label[0] != "ckey" || inner.Label[1] != "okey" {
		t.Errorf("inner node label = %v, want [ckey okey] (accumulated)", inner.Label)
	}
	rels := inner.Relations()
	if len(rels) != 2 || rels[0] != "Ord" || rels[1] != "Item" {
		t.Errorf("inner relations = %v", rels)
	}
	if s := tree.String(); !strings.Contains(s, "Cust") || !strings.Contains(s, "ckey") {
		t.Errorf("tree String() = %q", s)
	}
}

// TestRemovingCkeyBreaksHierarchy: "If we remove ckey from either Ord or
// Item, we obtain a non-hierarchical query" (Ex. II.2).
func TestRemovingCkeyBreaksHierarchy(t *testing.T) {
	for _, victim := range []string{"Ord", "Item"} {
		q := introQ()
		for i := range q.Rels {
			if q.Rels[i].Name != victim {
				continue
			}
			var attrs []string
			for _, a := range q.Rels[i].Attrs {
				if a != "ckey" {
					attrs = append(attrs, a)
				}
			}
			q.Rels[i].Attrs = attrs
		}
		if q.IsHierarchical() {
			t.Errorf("removing ckey from %s should break the hierarchy", victim)
		}
	}
}

func TestUnconnectedSubqueriesProductTree(t *testing.T) {
	// R(a) ⋈ S(a) and T(b) ⋈ U(b): relational product of two hierarchical
	// subqueries; root label is empty (Fig. 4's A̅ = ∅ case).
	q := &Query{
		Rels: []RelRef{Rel("R", "a"), Rel("S", "a"), Rel("T", "b"), Rel("U", "b")},
	}
	if !q.IsHierarchical() {
		t.Fatal("product of hierarchical queries is hierarchical")
	}
	tree, err := TreeFor(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Label) != 0 {
		t.Errorf("root label should be empty, got %v", tree.Label)
	}
	if len(tree.Children) != 2 {
		t.Errorf("root should split into 2 components, got %d", len(tree.Children))
	}
}

func TestSingleRelationTree(t *testing.T) {
	q := &Query{Head: []string{"cname"}, Rels: []RelRef{Rel("Cust", "ckey", "cname")}}
	tree, err := TreeFor(q)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.IsLeaf() || tree.Leaf.Name != "Cust" {
		t.Errorf("single-relation tree should be a leaf, got %v", tree)
	}
}

func TestFullTreeKeepsHeadJoinAttr(t *testing.T) {
	// Ex. IV.4's query: π_okey(Item ⋈ Ord ⋈ Cust). The full tree keeps okey
	// as an inner node (its plain signature is (Cust*(Ord*Item*)*)*).
	q := &Query{
		Head: []string{"okey"},
		Rels: []RelRef{
			Rel("Item", "ckey", "okey", "discount"),
			Rel("Ord", "okey", "ckey", "odate"),
			Rel("Cust", "ckey", "cname"),
		},
	}
	tree, err := FullTree(q)
	if err != nil {
		t.Fatal(err)
	}
	// Root: ckey; children {Item,Ord} under {ckey,okey} and Cust.
	if len(tree.Label) != 1 || tree.Label[0] != "ckey" {
		t.Fatalf("root label = %v", tree.Label)
	}
	foundInner := false
	for _, c := range tree.Children {
		if !c.IsLeaf() && len(c.Label) == 2 && c.Label[1] == "okey" {
			foundInner = true
		}
	}
	if !foundInner {
		t.Errorf("full tree should keep the okey node: %v", tree)
	}
}

func TestFullTreeFallsBackToHeadAware(t *testing.T) {
	// Non-hierarchical full structure, hierarchical once head is ignored:
	// π_okey(Item(okey,discount) ⋈ Ord(okey,ckey) ⋈ Cust(ckey,cname)).
	q := &Query{
		Head: []string{"okey"},
		Rels: []RelRef{
			Rel("Item", "okey", "discount"),
			Rel("Ord", "okey", "ckey"),
			Rel("Cust", "ckey", "cname"),
		},
	}
	if !q.IsHierarchical() {
		t.Fatal("head-aware structure should be hierarchical")
	}
	tree, err := FullTree(q)
	if err != nil {
		t.Fatal(err)
	}
	// The fallback tree must not use okey as an inner-node attribute.
	var walk func(*Tree) bool
	walk = func(n *Tree) bool {
		if n.IsLeaf() {
			return false
		}
		for _, a := range n.Label {
			if a == "okey" {
				return true
			}
		}
		for _, c := range n.Children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	if walk(tree) {
		t.Errorf("fallback tree must ignore head attr okey: %v", tree)
	}
}

func TestAliasesAndClone(t *testing.T) {
	q := &Query{
		Head: []string{"n1name"},
		Rels: []RelRef{
			Alias("Nation1", "Nation", "n1key", "n1name"),
			Alias("Nation2", "Nation", "n2key", "n2name"),
			Rel("Supp", "n1key", "skey"),
		},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	c := q.Clone()
	c.Rels[0].Attrs[0] = "zz"
	if q.Rels[0].Attrs[0] != "n1key" {
		t.Error("Clone must deep-copy attribute slices")
	}
	if r, ok := q.RelByName("Nation2"); !ok || r.Base != "Nation" {
		t.Error("RelByName/Alias wrong")
	}
	if _, ok := q.RelByName("zzz"); ok {
		t.Error("RelByName should miss")
	}
}

func TestQueryString(t *testing.T) {
	s := introQ().String()
	for _, frag := range []string{"π{odate}", "Cust", "⋈", "cname=Joe", "discount>0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
