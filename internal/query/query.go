// Package query models conjunctive queries without self-joins in the form
// π_A σ_φ (R1 ⋈ … ⋈ Rn) of paper §II.B: φ is a conjunction of unary
// predicates (attribute–constant comparisons) and the join conditions are
// implied by shared attribute names across relations ("we assume that the
// join attributes have the same name in the joined tables"). The package
// implements the hierarchical test (Def. II.1) and the tree representation
// of hierarchical queries (Fig. 3), which internal/signature turns into
// query signatures.
package query

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/engine"
	"repro/internal/table"
)

// RelRef is one relation occurrence. Name is the occurrence name used for
// variable columns (V(Name), P(Name)); Base is the stored table it reads
// (Base == Name except for the alias trick of §IV, where self-joins with
// mutually exclusive selections are treated as two relations, e.g. Q7's two
// copies of Nation).
type RelRef struct {
	Name  string
	Base  string
	Attrs []string
}

// Rel builds a relation reference whose base equals its name.
func Rel(name string, attrs ...string) RelRef {
	return RelRef{Name: name, Base: name, Attrs: attrs}
}

// Alias builds a renamed occurrence of a base table. The caller must ensure
// the aliased occurrences select disjoint sets of tuples (mutual exclusion),
// which is what makes the self-join harmless (§IV end).
func Alias(name, base string, attrs ...string) RelRef {
	return RelRef{Name: name, Base: base, Attrs: attrs}
}

// HasAttr reports whether the relation has the attribute.
func (r RelRef) HasAttr(a string) bool {
	for _, x := range r.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// Selection is a unary predicate σ on one relation's attribute.
type Selection struct {
	Rel  string // relation occurrence name
	Attr string
	Op   engine.CmpOp
	Val  table.Value
}

// String renders the selection.
func (s Selection) String() string {
	return fmt.Sprintf("%s.%s%s%s", s.Rel, s.Attr, s.Op, s.Val)
}

// Query is a conjunctive query without self-joins. An empty Head makes the
// query Boolean.
type Query struct {
	Name string // optional label (catalog id)
	Head []string
	Rels []RelRef
	Sels []Selection
}

// IsBoolean reports whether the query has an empty projection list.
func (q *Query) IsBoolean() bool { return len(q.Head) == 0 }

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	c := &Query{Name: q.Name, Head: append([]string(nil), q.Head...), Sels: append([]Selection(nil), q.Sels...)}
	for _, r := range q.Rels {
		c.Rels = append(c.Rels, RelRef{Name: r.Name, Base: r.Base, Attrs: append([]string(nil), r.Attrs...)})
	}
	return c
}

// Validate checks structural well-formedness: no repeated occurrence names
// (no self-joins except via aliases), head and selection attributes must
// exist.
func (q *Query) Validate() error {
	if len(q.Rels) == 0 {
		return fmt.Errorf("query: no relations")
	}
	seen := make(map[string]bool)
	for _, r := range q.Rels {
		if seen[r.Name] {
			return fmt.Errorf("query: relation occurrence %q repeated (self-joins need distinct aliases)", r.Name)
		}
		seen[r.Name] = true
	}
	for _, h := range q.Head {
		if len(q.RelsWith(h)) == 0 {
			return fmt.Errorf("query: head attribute %q not in any relation", h)
		}
	}
	for _, s := range q.Sels {
		found := false
		for _, r := range q.Rels {
			if r.Name == s.Rel && r.HasAttr(s.Attr) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("query: selection %v references unknown relation/attribute", s)
		}
	}
	return nil
}

// RelByName returns the relation occurrence with the given name.
func (q *Query) RelByName(name string) (RelRef, bool) {
	for _, r := range q.Rels {
		if r.Name == name {
			return r, true
		}
	}
	return RelRef{}, false
}

// RelsWith returns the names of relations containing attribute a, in query
// order.
func (q *Query) RelsWith(a string) []string {
	var out []string
	for _, r := range q.Rels {
		if r.HasAttr(a) {
			out = append(out, r.Name)
		}
	}
	return out
}

// JoinAttrs returns the attributes occurring in at least two relations, in
// deterministic order.
func (q *Query) JoinAttrs() []string {
	count := make(map[string]int)
	var order []string
	for _, r := range q.Rels {
		for _, a := range r.Attrs {
			if count[a] == 0 {
				order = append(order, a)
			}
			count[a]++
		}
	}
	var out []string
	for _, a := range order {
		if count[a] >= 2 {
			out = append(out, a)
		}
	}
	return out
}

// headSet returns the head attributes as a set.
func (q *Query) headSet() map[string]bool {
	s := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		s[h] = true
	}
	return s
}

// EffectiveJoinAttrs returns the join attributes that participate in the
// hierarchical test: attributes shared by ≥2 relations and not in the
// projection list ("the attributes that occur in joins and in the
// projection list are not used for deciding the hierarchical property",
// §II.B).
func (q *Query) EffectiveJoinAttrs() []string {
	head := q.headSet()
	var out []string
	for _, a := range q.JoinAttrs() {
		if !head[a] {
			out = append(out, a)
		}
	}
	return out
}

// IsHierarchical applies Definition II.1 using the effective join
// attributes: for any two join attributes occurring in the same relation,
// the relation set of one must contain the relation set of the other.
func (q *Query) IsHierarchical() bool {
	attrs := q.EffectiveJoinAttrs()
	rels := make(map[string]map[string]bool, len(attrs))
	for _, a := range attrs {
		set := make(map[string]bool)
		for _, r := range q.RelsWith(a) {
			set[r] = true
		}
		rels[a] = set
	}
	for _, r := range q.Rels {
		var inRel []string
		for _, a := range attrs {
			if r.HasAttr(a) {
				inRel = append(inRel, a)
			}
		}
		for i := 0; i < len(inRel); i++ {
			for j := i + 1; j < len(inRel); j++ {
				a, b := rels[inRel[i]], rels[inRel[j]]
				if !subset(a, b) && !subset(b, a) {
					return false
				}
			}
		}
	}
	return true
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// String renders the query in the paper's π σ ⋈ notation.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("π{" + strings.Join(q.Head, ",") + "}(")
	if len(q.Sels) > 0 {
		parts := make([]string, len(q.Sels))
		for i, s := range q.Sels {
			parts[i] = s.String()
		}
		b.WriteString("σ{" + strings.Join(parts, ",") + "}(")
	}
	for i, r := range q.Rels {
		if i > 0 {
			b.WriteString(" ⋈ ")
		}
		b.WriteString(r.Name + "(" + strings.Join(r.Attrs, ",") + ")")
	}
	if len(q.Sels) > 0 {
		b.WriteString(")")
	}
	b.WriteString(")")
	return b.String()
}

// Tree is the tree representation of a hierarchical query (Fig. 3): leaves
// are relations, inner nodes are labelled with join attributes occurring in
// all descendant relations. Label carries the *accumulated* attributes
// (ancestors included), matching the paper's figure where the node below
// root "ckey" is labelled "ckey, okey".
type Tree struct {
	Label    []string // sorted accumulated node attributes; nil for leaves
	Leaf     *RelRef  // non-nil for leaf nodes
	Children []*Tree
}

// IsLeaf reports whether the node is a relation leaf.
func (t *Tree) IsLeaf() bool { return t.Leaf != nil }

// String renders the tree as Label(children...) / relation names.
func (t *Tree) String() string {
	if t.IsLeaf() {
		return t.Leaf.Name
	}
	parts := make([]string, len(t.Children))
	for i, c := range t.Children {
		parts[i] = c.String()
	}
	return "{" + strings.Join(t.Label, ",") + "}(" + strings.Join(parts, ", ") + ")"
}

// Relations lists the leaf relation names in tree order.
func (t *Tree) Relations() []string {
	if t.IsLeaf() {
		return []string{t.Leaf.Name}
	}
	var out []string
	for _, c := range t.Children {
		out = append(out, c.Relations()...)
	}
	return out
}

// BuildTree constructs the tree representation of the query, treating the
// given attributes as join attributes (callers pass EffectiveJoinAttrs for
// the head-aware tree, or JoinAttrs for the fully Boolean structure). It
// fails when the query is not hierarchical w.r.t. those attributes.
func BuildTree(q *Query, joinAttrs []string) (*Tree, error) {
	isJoin := make(map[string]bool, len(joinAttrs))
	for _, a := range joinAttrs {
		isJoin[a] = true
	}
	rels := make([]*RelRef, len(q.Rels))
	for i := range q.Rels {
		r := q.Rels[i]
		rels[i] = &r
	}
	return buildTree(rels, isJoin, nil)
}

func buildTree(rels []*RelRef, isJoin map[string]bool, used []string) (*Tree, error) {
	usedSet := make(map[string]bool, len(used))
	for _, a := range used {
		usedSet[a] = true
	}
	if len(rels) == 1 {
		return &Tree{Leaf: rels[0]}, nil
	}
	// A = join attributes present in every relation of the set and not yet
	// used by an ancestor.
	var shared []string
	for _, a := range rels[0].Attrs {
		if usedSet[a] || !isJoin[a] {
			continue
		}
		inAll := true
		for _, r := range rels[1:] {
			if !r.HasAttr(a) {
				inAll = false
				break
			}
		}
		if inAll {
			shared = append(shared, a)
		}
	}
	label := append(append([]string(nil), used...), shared...)
	slices.Sort(label)
	newUsed := append(append([]string(nil), used...), shared...)
	newUsedSet := make(map[string]bool, len(newUsed))
	for _, a := range newUsed {
		newUsedSet[a] = true
	}

	// Partition the relations into connected components via the remaining
	// join attributes.
	comp := make([]int, len(rels))
	for i := range comp {
		comp[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		if comp[i] != i {
			comp[i] = find(comp[i])
		}
		return comp[i]
	}
	union := func(i, j int) { comp[find(i)] = find(j) }
	attrOwner := make(map[string]int)
	for i, r := range rels {
		for _, a := range r.Attrs {
			if !isJoin[a] || newUsedSet[a] {
				continue
			}
			if j, ok := attrOwner[a]; ok {
				union(i, j)
			} else {
				attrOwner[a] = i
			}
		}
	}
	groups := make(map[int][]*RelRef)
	var order []int
	for i, r := range rels {
		root := find(i)
		if _, ok := groups[root]; !ok {
			order = append(order, root)
		}
		groups[root] = append(groups[root], r)
	}
	if len(order) == 1 {
		names := make([]string, len(rels))
		for i, r := range rels {
			names[i] = r.Name
		}
		return nil, fmt.Errorf("query: not hierarchical: relations {%s} cannot be separated below attributes {%s}",
			strings.Join(names, ","), strings.Join(newUsed, ","))
	}
	node := &Tree{Label: label}
	for _, root := range order {
		child, err := buildTree(groups[root], isJoin, newUsed)
		if err != nil {
			return nil, err
		}
		node.Children = append(node.Children, child)
	}
	return node, nil
}

// TreeFor builds the head-aware tree of the query (the one used for
// confidence computation of non-Boolean queries: head attributes are fixed
// within each bag of duplicates and therefore do not act as join
// attributes).
func TreeFor(q *Query) (*Tree, error) {
	return BuildTree(q, q.EffectiveJoinAttrs())
}

// FullTree builds the tree over the complete join structure (head
// attributes included). It is the structure behind the "plain" signatures
// quoted in the paper for non-Boolean queries, e.g. (Cust*(Ord*Item*)*)*
// for Ex. IV.4 where the head attribute okey still labels an inner node.
// Falls back to the head-aware tree if the full structure is not
// hierarchical but the head-aware one is.
func FullTree(q *Query) (*Tree, error) {
	t, err := BuildTree(q, q.JoinAttrs())
	if err == nil {
		return t, nil
	}
	return TreeFor(q)
}
