// Package signature implements query signatures (paper §III): the algebra
// of table names, stars (α*) and concatenations (αβ), their derivation from
// hierarchical query trees (Fig. 4), FD-based refinement via reducts (§IV),
// minimal covers (Def. III.3), the 1scan property and scan counting
// (Def. V.8, Prop. V.10), and the 1scanTree representation with its sort
// order (§V.C) consumed by the confidence operator.
package signature

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/fd"
	"repro/internal/query"
)

// Sig is a query signature: Table, Star or Concat (Def. III.1). The
// equivalence (α*)* = α* is kept implicit by construction: NewStar never
// nests stars directly.
type Sig interface {
	// String renders the signature in the paper's notation, with spaces
	// separating concatenation components.
	String() string
	sig()
}

// Table is a signature consisting of one table name.
type Table string

func (t Table) sig() {}

// String returns the table name.
func (t Table) String() string { return string(t) }

// Star is the signature α* — "there may be several tuples per distinct
// value of the parent attributes".
type Star struct {
	Inner Sig
}

func (s Star) sig() {}

// String renders α*, parenthesizing composite inners.
func (s Star) String() string {
	if _, ok := s.Inner.(Table); ok {
		return s.Inner.String() + "*"
	}
	return "(" + s.Inner.String() + ")*"
}

// Concat is a concatenation of signatures.
type Concat []Sig

func (c Concat) sig() {}

// String joins the components with spaces.
func (c Concat) String() string {
	parts := make([]string, len(c))
	for i, s := range c {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// NewStar builds α*, applying (α*)* = α* and flattening singleton concats.
func NewStar(inner Sig) Sig {
	inner = simplify(inner)
	if st, ok := inner.(Star); ok {
		return st
	}
	return Star{Inner: inner}
}

// NewConcat builds a concatenation, flattening nested concats and
// collapsing singletons.
func NewConcat(parts ...Sig) Sig {
	var flat Concat
	for _, p := range parts {
		if c, ok := p.(Concat); ok {
			flat = append(flat, c...)
		} else {
			flat = append(flat, p)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return flat
}

func simplify(s Sig) Sig {
	if c, ok := s.(Concat); ok && len(c) == 1 {
		return c[0]
	}
	return s
}

// Equal reports structural signature equality.
func Equal(a, b Sig) bool {
	switch x := a.(type) {
	case Table:
		y, ok := b.(Table)
		return ok && x == y
	case Star:
		y, ok := b.(Star)
		return ok && Equal(x.Inner, y.Inner)
	case Concat:
		y, ok := b.(Concat)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Tables lists the table names of a signature in syntactic (left-to-right)
// order.
func Tables(s Sig) []string {
	var out []string
	var walk func(Sig)
	walk = func(s Sig) {
		switch x := s.(type) {
		case Table:
			out = append(out, string(x))
		case Star:
			walk(x.Inner)
		case Concat:
			for _, c := range x {
				walk(c)
			}
		}
	}
	walk(s)
	return out
}

// FromTree derives the signature of a hierarchical query tree per Fig. 4:
// top-down with L holding the accumulated parent attributes; a node
// contributes a star exactly when its (accumulated) attribute set differs
// from L.
func FromTree(t *query.Tree) Sig {
	return derive(t, nil)
}

func derive(t *query.Tree, parentLabel []string) Sig {
	if t.IsLeaf() {
		if sameSet(t.Leaf.Attrs, parentLabel) {
			return Table(t.Leaf.Name)
		}
		return NewStar(Table(t.Leaf.Name))
	}
	parts := make([]Sig, len(t.Children))
	for i, c := range t.Children {
		parts[i] = derive(c, t.Label)
	}
	sortParts(parts)
	inner := NewConcat(parts...)
	if sameSet(t.Label, parentLabel) {
		return inner
	}
	return NewStar(inner)
}

// sortParts canonicalizes the component order of a derived concatenation
// the way the paper renders signatures: bare tables first, then starred
// leaves, then composite subtrees, preserving query order within each rank
// (e.g. Nation2 before (Cust(Ord Item*)*)*, Cust* before (Ord*Item*)*).
// Concatenation order is semantically irrelevant — components use disjoint
// variable sets — so this is purely presentational.
func sortParts(parts []Sig) {
	rank := func(s Sig) int {
		switch x := s.(type) {
		case Table:
			return 0
		case Star:
			if _, leaf := x.Inner.(Table); leaf {
				return 1
			}
			return 2
		default:
			return 2
		}
	}
	slices.SortStableFunc(parts, func(a, b Sig) int { return rank(a) - rank(b) })
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	slices.Sort(as)
	slices.Sort(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Plain derives the query's signature from its full join structure (the
// signatures quoted in the paper before FDs are considered, e.g.
// (Cust*(Ord*Item*)*)* for the Introduction's query).
func Plain(q *query.Query) (Sig, error) {
	t, err := query.FullTree(q)
	if err != nil {
		return nil, fmt.Errorf("signature: %w", err)
	}
	return FromTree(t), nil
}

// WithFDs derives the refined signature from the FD-reduct of q under
// sigma (§IV): non-hierarchical queries may become hierarchical, and
// hierarchical ones get fewer stars (e.g. (Cust(Ord Item*)*)* under the
// TPC-H keys).
func WithFDs(q *query.Query, sigma *fd.Set) (Sig, error) {
	_, tree, err := fd.HierarchicalReduct(q, sigma)
	if err != nil {
		return nil, err
	}
	return FromTree(tree), nil
}

// Best returns the most precise signature available: the FD-refined one
// when the reduct is hierarchical, otherwise the plain one.
func Best(q *query.Query, sigma *fd.Set) (Sig, error) {
	if s, err := WithFDs(q, sigma); err == nil {
		return s, nil
	}
	return Plain(q)
}

// Conservative returns the signature with every table and inner node
// starred — the shape signatures take when functional dependencies are NOT
// used to remove stars (e.g. (Cust(Ord Item*)*)* becomes
// (Cust*(Ord*Item*)*)*). Extra stars are always sound (they only claim
// *possibly* many tuples per partition) but cost additional scans; the
// paper's Fig. 13 quantifies exactly this difference.
func Conservative(s Sig) Sig {
	switch x := s.(type) {
	case Table:
		return NewStar(x)
	case Star:
		return NewStar(Conservative(x.Inner))
	case Concat:
		parts := make([]Sig, len(x))
		for i, c := range x {
			parts[i] = Conservative(c)
		}
		return NewConcat(parts...)
	default:
		return s
	}
}

// hasBareTable reports whether a concatenation (or single signature)
// directly contains an unstarred table.
func hasBareTable(s Sig) bool {
	switch x := s.(type) {
	case Table:
		return true
	case Concat:
		for _, c := range x {
			if _, ok := c.(Table); ok {
				return true
			}
		}
	}
	return false
}

// OneScan reports the 1scan property (Def. V.8): every starred
// subexpression β* of the signature must have a directly contained
// unstarred table in β, recursively.
func OneScan(s Sig) bool {
	switch x := s.(type) {
	case Table:
		return true
	case Star:
		return hasBareTable(x.Inner) && OneScan(x.Inner)
	case Concat:
		for _, c := range x {
			if !OneScan(c) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// NumScans computes #scans(α) (Prop. V.10): one plus the number of starred
// subexpressions, including α itself, without the 1scan property.
func NumScans(s Sig) int {
	return 1 + countBadStars(s)
}

// countBadStars counts the starred subexpressions lacking a directly
// contained unstarred table. Each such star costs exactly one extra
// aggregation scan in the scheduler (internal/conf): one of its starred
// components is aggregated into a bare representative table, after which
// the star satisfies the local 1scan condition. This matches Ex. V.11:
// (Cust*(Ord*Item*)*)* has two such stars and needs 2+1 = 3 scans.
func countBadStars(s Sig) int {
	switch x := s.(type) {
	case Table:
		return 0
	case Star:
		n := countBadStars(x.Inner)
		if !hasBareTable(x.Inner) {
			n++
		}
		return n
	case Concat:
		n := 0
		for _, c := range x {
			n += countBadStars(c)
		}
		return n
	default:
		return 0
	}
}

// MinimalCover returns the signature of the minimal subexpression of s that
// contains all the given tables (Def. III.3). ok is false when some table
// does not occur in s.
func MinimalCover(s Sig, tables []string) (Sig, bool) {
	need := make(map[string]bool, len(tables))
	for _, t := range tables {
		need[t] = true
	}
	present := make(map[string]bool)
	for _, t := range Tables(s) {
		present[t] = true
	}
	for t := range need {
		if !present[t] {
			return nil, false
		}
	}
	return minimalCover(s, need), true
}

// minimalCover finds the smallest *subtree node* containing all needed
// tables; called only when s contains them all. Subtree nodes are starred
// subexpressions, bare tables, and direct concatenation components — a
// star's inner concatenation is the node's child list, not a node, so a
// cover like (Ord*Item*)* keeps its star (Ex. III.4).
func minimalCover(s Sig, need map[string]bool) Sig {
	children := func(s Sig) []Sig {
		switch x := s.(type) {
		case Star:
			// A starred leaf (R*) is a single tree node: do not peel the
			// star off a lone table. Only a starred inner node exposes its
			// concatenation components as child subtrees.
			if c, ok := x.Inner.(Concat); ok {
				return c
			}
			return nil
		case Concat:
			return x
		default:
			return nil
		}
	}
	for _, c := range children(s) {
		if containsAll(c, need) {
			return minimalCover(c, need)
		}
	}
	return s
}

func containsAll(s Sig, need map[string]bool) bool {
	have := make(map[string]bool)
	for _, t := range Tables(s) {
		have[t] = true
	}
	for t := range need {
		if !have[t] {
			return false
		}
	}
	return true
}
