package signature

import (
	"fmt"
	"strings"
)

// ScanTree is the 1scanTree of §V.C: one node per variable column of the
// operator's input, derived from a signature with the 1scan property by
// replacing each inner node of the hierarchical representation with one of
// its children that is a bare (unstarred) table.
type ScanTree struct {
	Table    string
	Children []*ScanTree
}

// BuildScanTree constructs the 1scanTree of a 1scan signature. It fails on
// signatures without the 1scan property — those must first be reduced by
// aggregation scans (see internal/conf's scheduler).
func BuildScanTree(s Sig) (*ScanTree, error) {
	if !OneScan(s) {
		return nil, fmt.Errorf("signature: %s lacks the 1scan property (#scans=%d)", s, NumScans(s))
	}
	node, extra, err := buildScan(s)
	if err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("signature: empty signature")
	}
	if len(extra) != 0 {
		// A top-level concatenation without a bare table cannot happen for
		// 1scan signatures reached through NewConcat/NewStar, but guard it.
		node.Children = append(node.Children, extra...)
	}
	return node, nil
}

// buildScan returns the representative node for s plus any sibling subtrees
// that must hang off the caller's representative (for concatenations, the
// first bare table is the representative and all other components become
// its children).
func buildScan(s Sig) (*ScanTree, []*ScanTree, error) {
	switch x := s.(type) {
	case Table:
		return &ScanTree{Table: string(x)}, nil, nil
	case Star:
		return buildScanStarInner(x.Inner)
	case Concat:
		return buildScanConcat(x)
	default:
		return nil, nil, fmt.Errorf("signature: unknown signature shape %T", s)
	}
}

func buildScanStarInner(inner Sig) (*ScanTree, []*ScanTree, error) {
	// Stars only express multiplicity; the node structure comes from the
	// inner expression.
	return buildScan(inner)
}

func buildScanConcat(c Concat) (*ScanTree, []*ScanTree, error) {
	// The representative is the first bare table of the concatenation
	// ("replace each inner node with one of its children that is a table
	// name"); every other component becomes a child subtree. A
	// concatenation without a bare table can only occur outside any star
	// (relational products like R*S*, which Def. V.8 still classifies as
	// 1scan): there the first component's representative doubles as the
	// root, which is sound because every left partition pairs with the
	// complete right partitions in a product.
	repIdx := -1
	for i, comp := range c {
		if _, ok := comp.(Table); ok {
			repIdx = i
			break
		}
	}
	var rep *ScanTree
	if repIdx >= 0 {
		rep = &ScanTree{Table: string(c[repIdx].(Table))}
	} else {
		repIdx = 0
		root, extra, err := buildScan(c[0])
		if err != nil {
			return nil, nil, err
		}
		rep = root
		rep.Children = append(rep.Children, extra...)
	}
	for i, comp := range c {
		if i == repIdx {
			continue
		}
		child, extra, err := buildScan(comp)
		if err != nil {
			return nil, nil, err
		}
		rep.Children = append(rep.Children, child)
		rep.Children = append(rep.Children, extra...)
	}
	return rep, nil, nil
}

// Preorder lists the table names of the tree in preorder — the order of
// the variable columns in the operator's required sort order (§V.C: "the
// sort order ... is given by the columns that hold input data followed by
// the variable columns corresponding to the table names in any preorder
// traversal of the 1scanTree").
func (t *ScanTree) Preorder() []string {
	var out []string
	var walk func(n *ScanTree)
	walk = func(n *ScanTree) {
		out = append(out, n.Table)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return out
}

// Size returns the number of nodes.
func (t *ScanTree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// String serializes the tree as Root(child, child(...)), matching the
// paper's R1(R2(R3), R4(R5)) notation of Ex. V.12.
func (t *ScanTree) String() string {
	if len(t.Children) == 0 {
		return t.Table
	}
	parts := make([]string, len(t.Children))
	for i, c := range t.Children {
		parts[i] = c.String()
	}
	return t.Table + "(" + strings.Join(parts, ", ") + ")"
}
