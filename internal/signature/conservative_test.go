package signature

import (
	"strings"
	"testing"
)

// TestConservative: star-forcing turns the FD-refined intro signature back
// into the paper's conservative one.
func TestConservative(t *testing.T) {
	refined := NewStar(NewConcat(
		Table("Cust"),
		NewStar(NewConcat(Table("Ord"), NewStar(Table("Item")))),
	))
	got := Conservative(refined)
	if s := strings.ReplaceAll(got.String(), " ", ""); s != "(Cust*(Ord*Item*)*)*" {
		t.Errorf("Conservative = %s, want (Cust*(Ord*Item*)*)*", s)
	}
	// Idempotent.
	if !Equal(Conservative(got), got) {
		t.Error("Conservative must be idempotent")
	}
	// Scan counts grow as expected: 1 -> 3.
	if NumScans(refined) != 1 || NumScans(got) != 3 {
		t.Errorf("scans: refined %d, conservative %d", NumScans(refined), NumScans(got))
	}
}

func TestConservativeBareTable(t *testing.T) {
	got := Conservative(Table("R"))
	if !Equal(got, NewStar(Table("R"))) {
		t.Errorf("Conservative(R) = %s, want R*", got)
	}
}

// TestConservativePreservesTables: the table set is untouched.
func TestConservativePreservesTables(t *testing.T) {
	s := NewConcat(Table("A"), NewStar(NewConcat(Table("B"), NewStar(Table("C")))))
	got := Conservative(s)
	a, b := Tables(s), Tables(got)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("tables changed: %v vs %v", a, b)
	}
}
