package signature

import (
	"strings"
	"testing"

	"repro/internal/fd"
	"repro/internal/query"
)

// paperString strips spaces so assertions can use the paper's compact
// notation ((Cust*(Ord*Item*)*)*).
func paperString(s Sig) string { return strings.ReplaceAll(s.String(), " ", "") }

func introQ() *query.Query {
	return &query.Query{
		Name: "Q",
		Head: []string{"odate"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname"),
			query.Rel("Ord", "okey", "ckey", "odate"),
			query.Rel("Item", "okey", "discount", "ckey"),
		},
	}
}

func introQPrime() *query.Query {
	return &query.Query{
		Name: "Q'",
		Head: []string{"odate"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname"),
			query.Rel("Ord", "okey", "ckey", "odate"),
			query.Rel("Item", "okey", "discount"),
		},
	}
}

func tpchKeys() *fd.Set {
	return fd.NewSet(
		fd.FD{Rel: "Ord", LHS: []string{"okey"}, RHS: []string{"ckey", "odate"}},
		fd.FD{Rel: "Cust", LHS: []string{"ckey"}, RHS: []string{"cname"}},
	)
}

// TestIntroSignaturePlain: "The query signature in our example is
// (Cust*(Ord*Item*)*)*" (§I).
func TestIntroSignaturePlain(t *testing.T) {
	s, err := Plain(introQ())
	if err != nil {
		t.Fatal(err)
	}
	if got := paperString(s); got != "(Cust*(Ord*Item*)*)*" {
		t.Errorf("plain signature = %s, want (Cust*(Ord*Item*)*)*", got)
	}
}

// TestIntroSignatureWithKeys: "in case ckey and okey are keys ... our
// signature becomes (Cust(Ord Item*)*)*" (Ex. III.2).
func TestIntroSignatureWithKeys(t *testing.T) {
	s, err := WithFDs(introQ(), tpchKeys())
	if err != nil {
		t.Fatal(err)
	}
	if got := paperString(s); got != "(Cust(OrdItem*)*)*" {
		t.Errorf("FD signature = %s, want (Cust(Ord Item*)*)*", got)
	}
}

// TestQPrimeSignatureUnderFDs: the intro's non-hierarchical Q' gets
// signature (Cust(Ord Item*)*)* under the TPC-H FDs.
func TestQPrimeSignatureUnderFDs(t *testing.T) {
	if _, err := Plain(introQPrime()); err == nil {
		t.Error("plain signature of Q' must fail (non-hierarchical)")
	}
	s, err := WithFDs(introQPrime(), tpchKeys())
	if err != nil {
		t.Fatal(err)
	}
	if got := paperString(s); got != "(Cust(OrdItem*)*)*" {
		t.Errorf("signature = %s, want (Cust(Ord Item*)*)*", got)
	}
	// Best falls back appropriately.
	b, err := Best(introQPrime(), tpchKeys())
	if err != nil || !Equal(b, s) {
		t.Errorf("Best should pick the FD signature: %v %v", b, err)
	}
	if _, err := Best(introQPrime(), fd.NewSet()); err == nil {
		t.Error("Best must fail when no signature exists")
	}
}

// TestExIV4Signatures: plain (Cust*(Ord*Item*)*)* vs FD-reduct
// Cust Ord Item* (Ex. IV.4; component order is ours, content must match).
func TestExIV4Signatures(t *testing.T) {
	q := &query.Query{
		Head: []string{"okey"},
		Rels: []query.RelRef{
			query.Rel("Item", "ckey", "okey", "discount"),
			query.Rel("Ord", "okey", "ckey", "odate"),
			query.Rel("Cust", "ckey", "cname"),
		},
	}
	plain, err := Plain(q)
	if err != nil {
		t.Fatal(err)
	}
	// Component order follows the query's relation order (Item before Ord).
	if got := paperString(plain); got != "(Cust*(Item*Ord*)*)*" && got != "((Item*Ord*)*Cust*)*" {
		t.Errorf("plain signature = %s", got)
	}
	refined, err := WithFDs(q, tpchKeys())
	if err != nil {
		t.Fatal(err)
	}
	// Cust Ord Item* up to component order: a flat concat of bare Cust,
	// bare Ord, and Item*.
	c, ok := refined.(Concat)
	if !ok || len(c) != 3 {
		t.Fatalf("refined signature should be a 3-way concat, got %s", refined)
	}
	var bare, starred []string
	for _, comp := range c {
		switch x := comp.(type) {
		case Table:
			bare = append(bare, string(x))
		case Star:
			starred = append(starred, paperString(x))
		}
	}
	if len(bare) != 2 || len(starred) != 1 || starred[0] != "Item*" {
		t.Errorf("refined = %s, want {Cust, Ord, Item*}", refined)
	}
}

func TestEqualAndConstructors(t *testing.T) {
	a := NewStar(NewConcat(Table("R"), NewStar(Table("S"))))
	b := NewStar(NewConcat(Table("R"), NewStar(Table("S"))))
	if !Equal(a, b) {
		t.Error("structurally equal signatures must be Equal")
	}
	if Equal(a, Table("R")) {
		t.Error("different shapes must not be Equal")
	}
	// (α*)* = α*.
	if got := NewStar(NewStar(Table("R"))); !Equal(got, NewStar(Table("R"))) {
		t.Errorf("(R*)* should normalize to R*, got %s", got)
	}
	// Singleton concat collapses.
	if got := NewConcat(Table("R")); !Equal(got, Table("R")) {
		t.Errorf("singleton concat should collapse, got %s", got)
	}
	// Nested concats flatten.
	got := NewConcat(NewConcat(Table("R"), Table("S")), Table("T"))
	if c, ok := got.(Concat); !ok || len(c) != 3 {
		t.Errorf("nested concat should flatten, got %s", got)
	}
}

func TestTables(t *testing.T) {
	s := NewStar(NewConcat(NewStar(Table("Cust")), NewStar(NewConcat(NewStar(Table("Ord")), NewStar(Table("Item"))))))
	got := Tables(s)
	want := []string{"Cust", "Ord", "Item"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Tables = %v, want %v", got, want)
	}
}

// TestMinimalCover reproduces Ex. III.4.
func TestMinimalCover(t *testing.T) {
	s, err := Plain(introQ())
	if err != nil {
		t.Fatal(err)
	}
	cov, ok := MinimalCover(s, []string{"Ord", "Item"})
	if !ok {
		t.Fatal("cover must exist")
	}
	if got := paperString(cov); got != "(Ord*Item*)*" {
		t.Errorf("minimal cover of {Ord,Item} = %s, want (Ord*Item*)*", got)
	}
	cov, ok = MinimalCover(s, []string{"Cust", "Ord"})
	if !ok || !Equal(cov, s) {
		t.Errorf("minimal cover of {Cust,Ord} should be s itself, got %s", cov)
	}
	if _, ok := MinimalCover(s, []string{"Nation"}); ok {
		t.Error("cover of absent table must report !ok")
	}
	cov, ok = MinimalCover(s, []string{"Item"})
	if !ok || paperString(cov) != "Item*" {
		t.Errorf("minimal cover of {Item} = %s, want Item*", cov)
	}
}

// TestOneScanExamples reproduces Ex. V.9.
func TestOneScanExamples(t *testing.T) {
	// (Cust(Ord Item*)*)* has the 1scan property.
	withKeys, err := WithFDs(introQ(), tpchKeys())
	if err != nil {
		t.Fatal(err)
	}
	if !OneScan(withKeys) {
		t.Errorf("%s should be 1scan", withKeys)
	}
	if n := NumScans(withKeys); n != 1 {
		t.Errorf("#scans(%s) = %d, want 1", withKeys, n)
	}
	// (Cust*(Ord*Item*)*)* does not.
	plain, err := Plain(introQ())
	if err != nil {
		t.Fatal(err)
	}
	if OneScan(plain) {
		t.Errorf("%s should not be 1scan", plain)
	}
	// R*S* (relational product) is 1scan.
	prod := NewConcat(NewStar(Table("R")), NewStar(Table("S")))
	if !OneScan(prod) {
		t.Errorf("R*S* should be 1scan")
	}
	// Nation1 Supp(Nation2(Cust(Ord Item*)*)*)* — TPC-H Q7's signature.
	q7 := NewConcat(
		Table("Nation1"),
		NewConcat(Table("Supp"), NewStar(NewConcat(
			Table("Nation2"), NewStar(NewConcat(
				Table("Cust"), NewStar(NewConcat(
					Table("Ord"), NewStar(Table("Item"))))))))))
	if !OneScan(q7) {
		t.Errorf("Q7 signature should be 1scan: %s", q7)
	}
}

// TestNumScansExV11: [(Cust*(Ord*Item*)*)*] needs three scans (Ex. V.11).
func TestNumScansExV11(t *testing.T) {
	plain, err := Plain(introQ())
	if err != nil {
		t.Fatal(err)
	}
	if n := NumScans(plain); n != 3 {
		t.Errorf("#scans = %d, want 3", n)
	}
	// (R*S*)* needs 2; ((R*S*)*(T*U*)*)* needs 4.
	rs := NewStar(NewConcat(NewStar(Table("R")), NewStar(Table("S"))))
	if n := NumScans(rs); n != 2 {
		t.Errorf("#scans((R*S*)*) = %d, want 2", n)
	}
	tu := NewStar(NewConcat(NewStar(Table("T")), NewStar(Table("U"))))
	both := NewStar(NewConcat(rs, tu))
	if n := NumScans(both); n != 4 {
		t.Errorf("#scans(((R*S*)*(T*U*)*)*) = %d, want 4", n)
	}
}

// TestScanTreePath reproduces Ex. V.12: (Cust(Ord Item*)*)* has 1scanTree
// path Cust -> Ord -> Item.
func TestScanTreePath(t *testing.T) {
	s, err := WithFDs(introQ(), tpchKeys())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BuildScanTree(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.String(); got != "Cust(Ord(Item))" {
		t.Errorf("1scanTree = %s, want Cust(Ord(Item))", got)
	}
	pre := tree.Preorder()
	if strings.Join(pre, ",") != "Cust,Ord,Item" {
		t.Errorf("preorder = %v", pre)
	}
	if tree.Size() != 3 {
		t.Errorf("Size = %d", tree.Size())
	}
}

// TestScanTreeBranching reproduces the second shape of Ex. V.12:
// (R1(R2 R3*)*(R4 R5*)*)* serializes as R1(R2(R3), R4(R5)).
func TestScanTreeBranching(t *testing.T) {
	s := NewStar(NewConcat(
		Table("R1"),
		NewStar(NewConcat(Table("R2"), NewStar(Table("R3")))),
		NewStar(NewConcat(Table("R4"), NewStar(Table("R5")))),
	))
	tree, err := BuildScanTree(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.String(); got != "R1(R2(R3), R4(R5))" {
		t.Errorf("1scanTree = %s, want R1(R2(R3), R4(R5))", got)
	}
	if got := strings.Join(tree.Preorder(), ","); got != "R1,R2,R3,R4,R5" {
		t.Errorf("preorder = %s", got)
	}
}

func TestScanTreeRejectsNonOneScan(t *testing.T) {
	plain, err := Plain(introQ())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildScanTree(plain); err == nil {
		t.Error("BuildScanTree must reject non-1scan signatures")
	}
}

// TestScanTreeProduct: R*S* builds a two-node tree (root R, child S).
func TestScanTreeProduct(t *testing.T) {
	prod := NewConcat(NewStar(Table("R")), NewStar(Table("S")))
	tree, err := BuildScanTree(prod)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.String(); got != "R(S)" {
		t.Errorf("tree = %s, want R(S)", got)
	}
}

func TestStringRendering(t *testing.T) {
	s := NewStar(NewConcat(Table("Ord"), NewStar(Table("Item"))))
	if got := s.String(); got != "(Ord Item*)*" {
		t.Errorf("String = %q, want \"(Ord Item*)*\"", got)
	}
	if got := NewStar(Table("R")).String(); got != "R*" {
		t.Errorf("String = %q, want R*", got)
	}
}
