package obdd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/prob"
)

// randDNF builds a random DNF over ≤ maxVars variables together with a
// random assignment — the same shape the Monte Carlo tests use, small
// enough for possible-world enumeration.
func randDNF(rng *rand.Rand, maxVars int) (*prob.DNF, *prob.Assignment) {
	n := 1 + rng.Intn(maxVars)
	a := prob.NewAssignment()
	for v := 1; v <= n; v++ {
		a.MustSet(prob.Var(v), 0.05+0.9*rng.Float64())
	}
	d := prob.NewDNF()
	clauses := 1 + rng.Intn(8)
	for c := 0; c < clauses; c++ {
		width := 1 + rng.Intn(4)
		vs := make([]prob.Var, 0, width)
		for k := 0; k < width; k++ {
			vs = append(vs, prob.Var(1+rng.Intn(n)))
		}
		d.Add(prob.NewClause(vs...))
	}
	return d, a
}

// TestCompileMatchesOracles: the OBDD probability of random DNFs matches
// both exact oracles (Shannon expansion with free variable choice, and
// possible-world enumeration) to 1e-9.
func TestCompileMatchesOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		d, a := randDNF(rng, 12)
		order := OccurrenceOrder(d, nil)
		res, err := Prob(d, a, order, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Exact {
			t.Fatalf("trial %d: %d-var DNF should compile exactly, got bounds [%g, %g]",
				trial, len(order), res.Lo, res.Hi)
		}
		shannon := d.Prob(a)
		worlds, err := prob.ProbByWorlds(d, a)
		if err != nil {
			t.Fatal(err)
		}
		if !prob.ApproxEqual(res.P, shannon, 1e-9) || !prob.ApproxEqual(res.P, worlds, 1e-9) {
			t.Errorf("trial %d: obdd %g, shannon %g, worlds %g for %s",
				trial, res.P, shannon, worlds, d)
		}
	}
}

// TestApplyFoldCanonical: compiling clause-by-clause with the memoized
// apply core must hit the exact same hash-consed root as the Shannon
// compilation — reduced OBDDs are canonical, so equal functions mean equal
// refs within one builder.
func TestApplyFoldCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		d, _ := randDNF(rng, 10)
		order := OccurrenceOrder(d, nil)
		b := NewBuilder(order, 0)
		root, err := b.Compile(d)
		if err != nil {
			t.Fatal(err)
		}
		folded := False
		for _, c := range d.Clauses {
			cl := True
			for _, v := range c {
				lit, err := b.Var(v)
				if err != nil {
					t.Fatal(err)
				}
				if cl, err = b.And(cl, lit); err != nil {
					t.Fatal(err)
				}
			}
			if folded, err = b.Or(folded, cl); err != nil {
				t.Fatal(err)
			}
		}
		if folded != root {
			t.Errorf("trial %d: apply-fold root %d != shannon root %d for %s", trial, folded, root, d)
		}
	}
}

// TestRestrict: restricting the diagram agrees with conditioning the
// formula, on every truth assignment of the remaining variables.
func TestRestrict(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		d, a := randDNF(rng, 8)
		order := OccurrenceOrder(d, nil)
		b := NewBuilder(order, 0)
		root, err := b.Compile(d)
		if err != nil {
			t.Fatal(err)
		}
		v := order[rng.Intn(len(order))]
		val := rng.Intn(2) == 1
		restricted, err := b.Restrict(root, v, val)
		if err != nil {
			t.Fatal(err)
		}
		_ = a
		for mask := 0; mask < 1<<len(order); mask++ {
			truth := make(map[prob.Var]bool, len(order))
			for i, w := range order {
				truth[w] = mask&(1<<i) != 0
			}
			truth[v] = val
			if got, want := b.Eval(restricted, truth), d.Eval(truth); got != want {
				t.Fatalf("trial %d: restrict(%v:=%v) eval %v, formula %v under %v",
					trial, v, val, got, want, truth)
			}
		}
	}
}

// TestBoundsInvariants: for random DNFs and growing budgets, the anytime
// bounds always bracket the exact probability and tighten monotonically
// with the budget; an ample budget closes them completely.
func TestBoundsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		d, a := randDNF(rng, 10)
		order := OccurrenceOrder(d, nil)
		exact := d.Prob(a)
		prevWidth := math.Inf(1)
		for _, budget := range []int{1, 2, 4, 8, 16, 64, 1 << 20} {
			res, err := Bounds(d, a, order, Options{NodeBudget: budget})
			if err != nil {
				t.Fatal(err)
			}
			if res.Lo > exact+1e-9 || res.Hi < exact-1e-9 {
				t.Errorf("trial %d budget %d: [%g, %g] does not bracket exact %g for %s",
					trial, budget, res.Lo, res.Hi, exact, d)
			}
			width := res.Hi - res.Lo
			if width > prevWidth+1e-12 {
				t.Errorf("trial %d budget %d: width %g loosened from %g", trial, budget, width, prevWidth)
			}
			prevWidth = width
		}
		res, err := Bounds(d, a, order, Options{NodeBudget: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || !prob.ApproxEqual(res.P, exact, 1e-9) {
			t.Errorf("trial %d: ample budget should close bounds exactly: got %+v want %g", trial, res, exact)
		}
	}
}

// TestBoundsTargetWidth: with an ample budget the anytime mode terminates
// early at the requested interval width.
func TestBoundsTargetWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		d, a := randDNF(rng, 10)
		order := OccurrenceOrder(d, nil)
		res, err := Bounds(d, a, order, Options{NodeBudget: 1 << 20, TargetWidth: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Hi-res.Lo > 0.1 {
			t.Errorf("trial %d: width %g exceeds target 0.1", trial, res.Hi-res.Lo)
		}
	}
}

// TestBoundsDeterministic: same inputs, same bounds — bit for bit.
func TestBoundsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d, a := randDNF(rng, 12)
	order := OccurrenceOrder(d, nil)
	first, err := Bounds(d, a, order, Options{NodeBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Bounds(d, a, order, Options{NodeBudget: 10})
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d: %+v != %+v", i, again, first)
		}
	}
}

// TestProbBudgetFallsBackToBounds: a tiny node budget forces Prob into the
// anytime mode, which still brackets the truth.
func TestProbBudgetFallsBackToBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		d, a := randDNF(rng, 10)
		order := OccurrenceOrder(d, nil)
		exact := d.Prob(a)
		res, err := Prob(d, a, order, Options{NodeBudget: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Exact && !prob.ApproxEqual(res.P, exact, 1e-9) {
			t.Errorf("trial %d: exact-under-budget result %g != %g", trial, res.P, exact)
		}
		if res.Lo > exact+1e-9 || res.Hi < exact-1e-9 {
			t.Errorf("trial %d: [%g, %g] does not bracket %g", trial, res.Lo, res.Hi, exact)
		}
		if math.Abs(res.P-exact) > (res.Hi-res.Lo)/2+1e-9 {
			t.Errorf("trial %d: midpoint %g further than half-width from %g", trial, res.P, exact)
		}
	}
}

// TestTrivialFormulas: the degenerate shapes compile to terminals.
func TestTrivialFormulas(t *testing.T) {
	a := prob.NewAssignment()
	a.MustSet(1, 0.5)
	empty := prob.NewDNF()
	res, err := Prob(empty, a, nil, Options{})
	if err != nil || !res.Exact || res.P != 0 {
		t.Errorf("empty DNF: %+v, %v", res, err)
	}
	taut := prob.NewDNF(prob.Clause{})
	res, err = Prob(taut, a, nil, Options{})
	if err != nil || !res.Exact || res.P != 1 {
		t.Errorf("tautology: %+v, %v", res, err)
	}
	if r, err := Bounds(taut, a, nil, Options{}); err != nil || !r.Exact || r.P != 1 {
		t.Errorf("tautology bounds: %+v, %v", r, err)
	}
	single := prob.NewDNF(prob.NewClause(1))
	res, err = Prob(single, a, []prob.Var{1}, Options{})
	if err != nil || !res.Exact || res.P != 0.5 {
		t.Errorf("single literal: %+v, %v", res, err)
	}
}
