package obdd

import (
	"container/heap"

	"repro/internal/prob"
)

// This file implements the anytime tier: when the OBDD of a lineage formula
// exceeds the node budget, Bounds performs *partial* Shannon expansion and
// maintains certified deterministic bounds on Pr[φ].
//
// The expansion state is a frontier of unexpanded residual formulas, each
// weighted by the probability mass of the partial assignment (the
// root-to-frontier path) that leads to it. For a residual clause set ψ with
// clause weights w(c) = Π_{v∈c} p(v):
//
//	max_c w(c)  ≤  Pr[ψ]  ≤  min(1, Σ_c w(c))
//
// (any single clause implies ψ; the union bound caps it). Summing
// mass-weighted cheap bounds over the frontier — plus the mass of paths
// already proven true — gives certified bounds on Pr[φ]. Expanding a
// frontier formula on its topmost variable replaces its contribution by its
// two cofactors'; both cheap bounds are exact under Shannon expansion
// splitting (Σ child weights reproduces the parent's, and the max-weight
// clause survives into at least one cofactor at no loss), so every step
// tightens [lo, hi] monotonically. Steps expand the frontier entry with the
// largest gap contribution first (deterministic tie-break on insertion
// order), so a larger budget always extends — never reorders — the
// expansion sequence: bounds tighten monotonically in the budget, too.

type boundsItem struct {
	cls  [][]int32 // residual clauses, each an ascending level list
	wts  []float64 // aligned residual clause weights Π p
	mass float64   // probability of the path reaching this residual
	lo   float64   // cheap lower bound on Pr[residual]
	hi   float64   // cheap upper bound on Pr[residual]
	seq  int       // insertion order, the deterministic tie-break
}

func (it *boundsItem) gap() float64 { return it.mass * (it.hi - it.lo) }

type boundsQueue []*boundsItem

func (q boundsQueue) Len() int { return len(q) }
func (q boundsQueue) Less(i, j int) bool {
	gi, gj := q[i].gap(), q[j].gap()
	if gi != gj {
		return gi > gj
	}
	return q[i].seq < q[j].seq
}
func (q boundsQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *boundsQueue) Push(x any)   { *q = append(*q, x.(*boundsItem)) }
func (q *boundsQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Bounds computes certified deterministic bounds on Pr[d] by partial
// Shannon expansion under the given order, stopping once hi-lo ≤
// o.TargetWidth, the expansion budget (o.NodeBudget) is spent, or the
// formula is fully expanded (in which case the result is exact). The result
// is a deterministic function of the inputs; a larger budget never loosens
// the bounds.
func Bounds(d *prob.DNF, a *prob.Assignment, order []prob.Var, o Options) (Result, error) {
	b := NewBuilder(order, 1) // used for lowering only
	cls, err := b.lower(d)
	if err != nil {
		return Result{}, err
	}
	probs := make([]float64, len(order))
	for i, v := range order {
		probs[i] = a.P(v)
	}

	if len(cls) == 0 {
		return Result{Exact: true}, nil
	}
	for _, c := range cls {
		if len(c) == 0 {
			return Result{Exact: true, P: 1, Lo: 1, Hi: 1}, nil
		}
	}

	// sumDone accumulates exactly resolved probability mass: paths proven
	// true, and residuals whose cheap bounds coincide (e.g. single-clause
	// conjunctions) — those never enter the frontier.
	sumDone := 0.0
	accLo, accHi := 0.0, 0.0
	var frontier boundsQueue
	seq := 0
	add := func(cls [][]int32, wts []float64, mass float64) {
		it := &boundsItem{cls: cls, wts: wts, mass: mass, seq: seq}
		seq++
		it.lo, it.hi = cheapBounds(it.wts)
		if it.lo == it.hi {
			sumDone += mass * it.lo
			return
		}
		accLo += mass * it.lo
		accHi += mass * it.hi
		heap.Push(&frontier, it)
	}
	heap.Init(&frontier)
	add(cls, clauseWeights(cls, probs), 1)
	steps := 0
	budget := o.budget()
	stopped := false

	for len(frontier) > 0 && steps < budget {
		if (sumDone+accHi)-(sumDone+accLo) <= o.TargetWidth {
			break
		}
		if o.Stop != nil && o.Stop() {
			stopped = true
			break
		}
		it := heap.Pop(&frontier).(*boundsItem)
		accLo -= it.mass * it.lo
		accHi -= it.mass * it.hi
		steps++

		top := terminalLevel
		for _, c := range it.cls {
			if c[0] < top {
				top = c[0]
			}
		}
		p := probs[top]
		pos, posW, posTrue := conditionWeighted(it.cls, it.wts, top, p)
		neg, negW := dropClauses(it.cls, it.wts, top)

		if posTrue {
			sumDone += it.mass * p
		} else if len(pos) > 0 {
			add(pos, posW, it.mass*p)
		}
		if len(neg) > 0 {
			add(neg, negW, it.mass*(1-p))
		}
	}

	lo, hi := sumDone+accLo, sumDone+accHi
	lo = clamp01(lo)
	hi = clamp01(hi)
	if hi < lo {
		hi = lo // floating accumulation can cross by an ulp
	}
	exact := len(frontier) == 0
	if exact {
		lo, hi = clamp01(sumDone), clamp01(sumDone)
	}
	return Result{Exact: exact, P: (lo + hi) / 2, Lo: lo, Hi: hi, Nodes: steps,
		Stopped: stopped && !exact}, nil
}

// CheapBounds bounds Pr[d] from clause weights alone — no order, no
// compilation, no allocation beyond one pass over the clauses:
//
//	max_c Π p(v)  ≤  Pr[d]  ≤  min(1, Σ_c Π p(v))
//
// The confidence layer uses it for answers whose compilation never started
// before a deadline watermark fired: even those answers then carry a
// certified (if wide) interval instead of an error.
func CheapBounds(d *prob.DNF, a *prob.Assignment) (lo, hi float64) {
	sum := 0.0
	for _, c := range d.Clauses {
		w := 1.0
		for _, v := range c {
			w *= a.P(v)
		}
		if len(c) == 0 {
			w = 1.0
		}
		if w > lo {
			lo = w
		}
		sum += w
	}
	if sum > 1 {
		sum = 1
	}
	return lo, sum
}

// clauseWeights computes Π p over each clause's variables.
func clauseWeights(cls [][]int32, probs []float64) []float64 {
	wts := make([]float64, len(cls))
	for i, c := range cls {
		w := 1.0
		for _, l := range c {
			w *= probs[l]
		}
		wts[i] = w
	}
	return wts
}

// cheapBounds bounds Pr[ψ] from the clause weights alone: any one clause
// implies ψ (max lower-bounds it), the union bound caps it.
func cheapBounds(wts []float64) (lo, hi float64) {
	sum := 0.0
	for _, w := range wts {
		if w > lo {
			lo = w
		}
		sum += w
	}
	if sum > 1 {
		sum = 1
	}
	return lo, sum
}

// conditionWeighted builds the positive cofactor at level: clauses starting
// with the level lose it (weight rescaled by 1/p), the rest pass through.
// posTrue reports that some clause became empty — the cofactor is true.
func conditionWeighted(cls [][]int32, wts []float64, level int32, p float64) (pos [][]int32, posW []float64, posTrue bool) {
	pos = make([][]int32, 0, len(cls))
	posW = make([]float64, 0, len(cls))
	for i, c := range cls {
		if c[0] == level {
			if len(c) == 1 {
				return nil, nil, true
			}
			pos = append(pos, c[1:])
			posW = append(posW, wts[i]/p)
		} else {
			pos = append(pos, c)
			posW = append(posW, wts[i])
		}
	}
	return pos, posW, false
}

// dropClauses builds the negative cofactor at level: clauses containing the
// level vanish, the rest pass through.
func dropClauses(cls [][]int32, wts []float64, level int32) ([][]int32, []float64) {
	neg := make([][]int32, 0, len(cls))
	negW := make([]float64, 0, len(cls))
	for i, c := range cls {
		if c[0] != level {
			neg = append(neg, c)
			negW = append(negW, wts[i])
		}
	}
	return neg, negW
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
