package obdd

import (
	"testing"

	"repro/internal/prob"
)

// TestRecompileAllocs pins the allocation cost of recompiling a cached
// clause set on a warm, reused builder: the interned memo, the unique/apply
// tables, the header arena and the cofactor scratch all keep their storage
// across Reset, so a recompile costs only the lowering of the DNF (its flat
// literal array and clause-set header) — a handful of allocations for a
// formula of dozens of clauses, where the string-keyed memo paid several per
// Shannon recursion step.
func TestRecompileAllocs(t *testing.T) {
	d := prob.NewDNF()
	a := prob.NewAssignment()
	for i := 0; i < 60; i++ {
		v1, v2 := prob.Var(i+1), prob.Var(100+i/2)
		d.Add(prob.NewClause(v1, v2))
		if err := a.Set(v1, 0.5); err != nil {
			t.Fatal(err)
		}
		if err := a.Set(v2, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	order := OccurrenceOrder(d, nil)
	b := NewBuilder(order, 0)
	var ref Ref
	recompile := func() {
		b.Reset(order, 0)
		r, err := b.Compile(d)
		if err != nil {
			t.Fatal(err)
		}
		ref = r
	}
	recompile()
	want := b.Prob(ref, a)
	avg := testing.AllocsPerRun(20, recompile)
	if avg > 8 {
		t.Fatalf("warm recompile of a %d-clause set allocated %.1f times, want ≤ 8", len(d.Clauses), avg)
	}
	// The reused builder must keep producing the same diagram and probability.
	if got := b.Prob(ref, a); got != want {
		t.Fatalf("recompiled probability %v != first compile's %v", got, want)
	}
}
