// Package obdd compiles DNF lineage into reduced ordered binary decision
// diagrams (OBDDs) and evaluates their probability — the middle tier of the
// engine's confidence ladder, between SPROUT's signature-driven sort+scan
// operator (exact, but only for queries with a hierarchical signature) and
// the (ε, δ) Monte Carlo estimators of internal/prob (always applicable,
// but only probabilistically accurate).
//
// The approach follows the companion line of work by the same authors
// (Olteanu and Huang, "Using OBDDs for Efficient Query Evaluation on
// Probabilistic Databases"): compile the per-answer lineage formula into a
// reduced OBDD by Shannon expansion under a fixed variable order, then
// compute the exact probability in one bottom-up pass over the diagram —
// each node contributes (1-p)·Pr[lo] + p·Pr[hi], where p is the marginal of
// the node's decision variable. Whenever the diagram stays small (tractable
// lineage under a good order — e.g. read-once formulas, and in particular
// all hierarchical-query lineage under a signature-derived order) this
// yields exact confidences for queries the sort+scan operator must reject.
//
// When the diagram does not stay small — compilation is #P-hard in general,
// so the node budget must give out somewhere — the package switches to an
// anytime mode (bounds.go): partial Shannon expansion maintains certified
// deterministic bounds [lo, hi] on the probability that tighten
// monotonically with every expansion step, terminating early once the
// interval reaches a target width or the step budget is spent.
//
// Compilation is allocation-lean: residual clause sets are interned in a
// hash-keyed memo (FNV-1a over the canonical set, structural equality on
// collision) rather than under rendered key strings, cofactor clause-set
// headers are carved from a per-builder arena and recycled through a free
// list on every memo hit, and a Builder is reusable across formulas —
// Reset keeps the capacity of the unique, apply and memo tables, so batch
// fan-outs (one builder per worker, reset per answer) pay the map
// allocations once instead of per lineage formula.
package obdd

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/prob"
)

// Ref names a node of a Builder's diagram: one of the terminals False and
// True, or an internal decision node.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

// Node is an internal decision node branching on the variable at Level of
// the builder's order: Lo is the cofactor under "false", Hi under "true".
// Reduction invariants: Lo ≠ Hi (no redundant tests) and every (Level, Lo,
// Hi) triple exists at most once (hash-consing) — so equal Refs mean equal
// Boolean functions.
type Node struct {
	Level  int32
	Lo, Hi Ref
}

// ErrBudget is returned when building a diagram would exceed the node
// budget; callers switch to the anytime bound mode (Bounds) on it.
var ErrBudget = errors.New("obdd: node budget exceeded")

// terminalLevel orders terminals below every variable level.
const terminalLevel = int32(math.MaxInt32)

// Builder is an OBDD manager: a variable order plus the hash-consing unique
// table and memoization caches shared by every diagram built with it. A
// Builder is reusable: Reset re-arms it for a new order and budget while
// keeping the capacity of its tables and scratch buffers, so a batch of
// per-answer compilations (conf's OBDD fan-out) pays the map and slice
// allocations once per worker instead of once per answer.
type Builder struct {
	order  []prob.Var
	level  map[prob.Var]int32
	nodes  []Node // Ref(i+2) is nodes[i]; children always precede parents
	unique map[Node]Ref
	apply  map[applyKey]Ref
	budget int

	// Shannon-compilation state (compile.go): the interned residual
	// clause-set memo (entries inline in the map, hash collisions between
	// distinct sets spill to memoOver), the cofactor scratch free list, and
	// the header arena the scratch headers are carved from.
	memo     map[uint64]memoEntry
	memoOver map[uint64][]memoEntry
	scratch  [][][]int32
	hdrs     [][]int32
	pr       []float64 // Prob's bottom-up pass scratch

	// Effort counters, cumulative across Resets (ProbWith records per-call
	// deltas into Result): residual-memo hits and misses during Shannon
	// compilation, and clause-set headers served from the recycled free
	// list rather than carved fresh from the arena.
	memoHits    int64
	memoMisses  int64
	hdrRecycled int64

	// stop is armed by ProbWith from Options.Stop for the duration of one
	// Compile: when it fires, the compile aborts with ErrBudget and the
	// caller falls into the anytime bounds mode.
	stop func() bool
}

// Counters returns the builder's cumulative effort counters: residual-memo
// hits and misses, and recycled clause-set headers. They survive Reset, so
// per-formula figures are deltas around a Compile (see ProbWith).
func (b *Builder) Counters() (memoHits, memoMisses, hdrRecycled int64) {
	return b.memoHits, b.memoMisses, b.hdrRecycled
}

type applyKey struct {
	op   byte // '|' or '&'
	a, b Ref
}

// NewBuilder creates a manager over the given variable order (level 0 is
// tested first). budget caps the number of internal nodes; 0 means
// DefaultNodeBudget.
func NewBuilder(order []prob.Var, budget int) *Builder {
	b := &Builder{
		level:  make(map[prob.Var]int32, len(order)),
		unique: make(map[Node]Ref),
		apply:  make(map[applyKey]Ref),
		memo:   make(map[uint64]memoEntry),
	}
	b.Reset(order, budget)
	return b
}

// Reset re-arms the builder for a fresh diagram over a new variable order
// and budget: every table is cleared but keeps its storage. Any Refs
// obtained before the Reset are invalidated.
func (b *Builder) Reset(order []prob.Var, budget int) {
	if budget <= 0 {
		budget = DefaultNodeBudget
	}
	if b.level == nil {
		b.level = make(map[prob.Var]int32, len(order))
		b.unique = make(map[Node]Ref)
		b.apply = make(map[applyKey]Ref)
		b.memo = make(map[uint64]memoEntry)
	}
	b.order = order
	b.budget = budget
	b.nodes = b.nodes[:0]
	clear(b.level)
	clear(b.unique)
	clear(b.apply)
	clear(b.memo)
	clear(b.memoOver)
	for i, v := range order {
		b.level[v] = int32(i)
	}
}

// Size returns the number of internal nodes allocated so far.
func (b *Builder) Size() int { return len(b.nodes) }

// Order returns the builder's variable order.
func (b *Builder) Order() []prob.Var { return b.order }

// mk returns the unique reduced node (level, lo, hi), eliminating redundant
// tests and reusing structurally identical nodes via the unique table.
func (b *Builder) mk(level int32, lo, hi Ref) (Ref, error) {
	if lo == hi {
		return lo, nil
	}
	n := Node{Level: level, Lo: lo, Hi: hi}
	if r, ok := b.unique[n]; ok {
		return r, nil
	}
	if len(b.nodes) >= b.budget {
		return False, ErrBudget
	}
	r := Ref(len(b.nodes) + 2)
	b.nodes = append(b.nodes, n)
	b.unique[n] = r
	return r, nil
}

// node returns the decision node behind an internal ref.
func (b *Builder) node(r Ref) Node { return b.nodes[r-2] }

func (b *Builder) levelOf(r Ref) int32 {
	if r == False || r == True {
		return terminalLevel
	}
	return b.node(r).Level
}

// cofactors returns the two cofactors of r with respect to the variable at
// level: r itself when r does not test that level (ordered diagrams test
// levels increasingly, so a deeper root is constant in it).
func (b *Builder) cofactors(r Ref, level int32) (lo, hi Ref) {
	if b.levelOf(r) != level {
		return r, r
	}
	n := b.node(r)
	return n.Lo, n.Hi
}

// Var returns a diagram for a single variable. The variable must belong to
// the builder's order.
func (b *Builder) Var(v prob.Var) (Ref, error) {
	lv, ok := b.level[v]
	if !ok {
		return False, fmt.Errorf("obdd: variable %v not in order", v)
	}
	return b.mk(lv, False, True)
}

// Or returns the disjunction of two diagrams.
func (b *Builder) Or(x, y Ref) (Ref, error) { return b.apply2('|', x, y) }

// And returns the conjunction of two diagrams.
func (b *Builder) And(x, y Ref) (Ref, error) { return b.apply2('&', x, y) }

// apply2 is the classic memoized apply: recurse on the topmost tested level
// of either operand, combine terminal cases directly. The memo key is
// normalized (both operations are commutative), so x∨y and y∨x share one
// entry.
func (b *Builder) apply2(op byte, x, y Ref) (Ref, error) {
	switch op {
	case '|':
		if x == True || y == True {
			return True, nil
		}
		if x == False {
			return y, nil
		}
		if y == False || x == y {
			return x, nil
		}
	case '&':
		if x == False || y == False {
			return False, nil
		}
		if x == True {
			return y, nil
		}
		if y == True || x == y {
			return x, nil
		}
	}
	if y < x {
		x, y = y, x
	}
	k := applyKey{op: op, a: x, b: y}
	if r, ok := b.apply[k]; ok {
		return r, nil
	}
	level := b.levelOf(x)
	if yl := b.levelOf(y); yl < level {
		level = yl
	}
	x0, x1 := b.cofactors(x, level)
	y0, y1 := b.cofactors(y, level)
	lo, err := b.apply2(op, x0, y0)
	if err != nil {
		return False, err
	}
	hi, err := b.apply2(op, x1, y1)
	if err != nil {
		return False, err
	}
	r, err := b.mk(level, lo, hi)
	if err != nil {
		return False, err
	}
	b.apply[k] = r
	return r, nil
}

// Restrict returns the cofactor of r under v := val, memoized per call.
func (b *Builder) Restrict(r Ref, v prob.Var, val bool) (Ref, error) {
	lv, ok := b.level[v]
	if !ok {
		return r, nil // r never tests v
	}
	memo := make(map[Ref]Ref)
	return b.restrict(r, lv, val, memo)
}

func (b *Builder) restrict(r Ref, lv int32, val bool, memo map[Ref]Ref) (Ref, error) {
	rl := b.levelOf(r)
	if rl > lv {
		return r, nil // ordered: nothing at or below r tests lv
	}
	if rl == lv {
		n := b.node(r)
		if val {
			return n.Hi, nil
		}
		return n.Lo, nil
	}
	if out, ok := memo[r]; ok {
		return out, nil
	}
	n := b.node(r)
	lo, err := b.restrict(n.Lo, lv, val, memo)
	if err != nil {
		return False, err
	}
	hi, err := b.restrict(n.Hi, lv, val, memo)
	if err != nil {
		return False, err
	}
	out, err := b.mk(n.Level, lo, hi)
	if err != nil {
		return False, err
	}
	memo[r] = out
	return out, nil
}

// Prob computes Pr[root] in one bottom-up pass over the node array: nodes
// are created children-first, so a single forward sweep has every child's
// probability ready when its parent is reached (linear in diagram size —
// the whole point of compiling to an OBDD).
func (b *Builder) Prob(root Ref, a *prob.Assignment) float64 {
	if root == False {
		return 0
	}
	if root == True {
		return 1
	}
	need := len(b.nodes) + 2
	if cap(b.pr) < need {
		b.pr = make([]float64, need)
	}
	pr := b.pr[:need]
	pr[False] = 0
	pr[True] = 1
	for i, n := range b.nodes {
		p := a.P(b.order[n.Level])
		pr[i+2] = (1-p)*pr[n.Lo] + p*pr[n.Hi]
	}
	return pr[root]
}

// Eval evaluates the diagram under a truth assignment (test oracle).
func (b *Builder) Eval(r Ref, truth map[prob.Var]bool) bool {
	for r != False && r != True {
		n := b.node(r)
		if truth[b.order[n.Level]] {
			r = n.Hi
		} else {
			r = n.Lo
		}
	}
	return r == True
}
