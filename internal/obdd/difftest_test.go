// Differential coverage lives in an external test package: internal/difftest
// imports obdd, so the property test and fuzz target must sit outside the
// package proper to avoid an import cycle.
package obdd_test

import (
	"math/rand"
	"testing"

	"repro/internal/difftest"
)

// TestDifferential runs the repo-wide harness over random lineage-shaped
// formulas: worlds oracle vs Shannon vs OBDD vs d-tree vs Monte Carlo.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 60; i++ {
		d, a := difftest.RandomDNF(rng, 12)
		if err := difftest.Check(d, a); err != nil {
			t.Fatalf("formula %d: %v", i, err)
		}
	}
}

// FuzzCompile feeds fuzzer-mutated byte strings through difftest.DecodeDNF
// and runs the compile-tier differential battery — the decoder is shared
// with internal/dtree's target, so corpus entries found by one fuzzer
// exercise the other compiler too.
func FuzzCompile(f *testing.F) {
	for _, seed := range [][]byte{
		{0x11, 1, 2, 0, 3, 4},                   // two disjoint clauses
		{0x42, 1, 2, 0, 1, 3, 0, 1, 4},          // one variable shared by every clause
		{0x07, 1, 3, 0, 1, 4, 0, 2, 4, 0, 5, 6}, // mixed overlap and disjoint tail
		{0x99, 1, 0, 1, 2, 0, 2, 3, 0, 3, 1},    // chained overlaps
		{0xff, 12, 24, 36, 0, 1},                // bytes that collapse to the same variable mod 12
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, a, ok := difftest.DecodeDNF(data)
		if !ok {
			return
		}
		if err := difftest.CheckCompile(d, a); err != nil {
			t.Fatal(err)
		}
	})
}
