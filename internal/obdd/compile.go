package obdd

import (
	"fmt"
	"slices"

	"repro/internal/prob"
)

// DefaultNodeBudget caps the diagram size (and the anytime mode's expansion
// steps) when Options.NodeBudget is zero. Beyond ~10^5 nodes the lineage is
// firmly in blow-up territory and the certified bounds (or Monte Carlo) are
// the better tool.
const DefaultNodeBudget = 1 << 17

// Options tunes OBDD-based probability computation.
type Options struct {
	// NodeBudget caps the number of diagram nodes during exact compilation
	// and the number of expansion steps in the anytime bound mode; 0 means
	// DefaultNodeBudget.
	NodeBudget int
	// TargetWidth stops the anytime mode early once hi-lo ≤ TargetWidth;
	// 0 expands until the budget is spent (or the bounds close completely).
	// It has no effect on formulas whose diagram fits the budget.
	TargetWidth float64
	// Stop, when non-nil, is polled during compilation and expansion; once
	// it reports true the exact compile abandons into the anytime mode and
	// the anytime expansion returns its current certified bounds. The
	// planner arms it with a deadline-watermark probe so an expiring
	// context degrades to bounds instead of failing. Results cut short by
	// Stop report Stopped=true; a nil Stop never fires.
	Stop func() bool
}

func (o Options) budget() int {
	if o.NodeBudget <= 0 {
		return DefaultNodeBudget
	}
	return o.NodeBudget
}

// Result is the outcome of OBDD-based probability computation for one
// formula.
type Result struct {
	// Exact reports whether P is the exact probability. When false, only
	// the certified bounds Lo ≤ Pr[φ] ≤ Hi are guaranteed and P is their
	// midpoint (so |P - Pr[φ]| ≤ (Hi-Lo)/2).
	Exact bool
	// P is the exact probability, or the bound midpoint.
	P float64
	// Lo and Hi bound the probability; Lo == Hi == P for exact results.
	Lo, Hi float64
	// Nodes counts the compilation effort: internal OBDD nodes for exact
	// results; for bounded results, the nodes built by the abandoned exact
	// compile plus the anytime mode's Shannon expansion steps.
	Nodes int
	// MemoHits and MemoMisses count residual-memo probes during this
	// formula's Shannon compilation (the abandoned compile's probes, for
	// bounded results). Their split is a deterministic function of the
	// formula and order — observability surfaces report it per query.
	MemoHits, MemoMisses int64
	// HdrRecycled counts cofactor clause-set headers served from the
	// builder's free list instead of fresh arena storage during this
	// compile — the arena-reuse figure of the PR 5 allocation work.
	HdrRecycled int64
	// Stopped reports that Options.Stop cut this computation short: the
	// bounds are certified but narrower work was abandoned for time, not
	// for the node budget.
	Stopped bool
}

// Prob computes Pr[d] under the given variable order: exact via OBDD
// compilation and one bottom-up evaluation pass when the diagram fits the
// node budget, certified [lo, hi] bounds via partial expansion otherwise.
// The order must mention every variable of d. The result is a deterministic
// function of (d, a, order, o).
func Prob(d *prob.DNF, a *prob.Assignment, order []prob.Var, o Options) (Result, error) {
	return ProbWith(NewBuilder(order, o.budget()), d, a, o)
}

// ProbWith is Prob over a caller-supplied builder, which must already hold
// the variable order and node budget (NewBuilder or Reset). It exists so a
// batch of per-answer compilations can reuse one builder's unique, apply and
// memo tables across answers (Reset between them) instead of reallocating
// every map per formula; the result is identical to Prob's.
func ProbWith(b *Builder, d *prob.DNF, a *prob.Assignment, o Options) (Result, error) {
	hits0, misses0, rec0 := b.Counters()
	b.stop = o.Stop
	root, err := b.Compile(d)
	b.stop = nil
	hits, misses, rec := b.Counters()
	hits, misses, rec = hits-hits0, misses-misses0, rec-rec0
	if err == nil {
		p := b.Prob(root, a)
		return Result{Exact: true, P: p, Lo: p, Hi: p, Nodes: b.Size(),
			MemoHits: hits, MemoMisses: misses, HdrRecycled: rec}, nil
	}
	if err != ErrBudget {
		return Result{}, err
	}
	res, err := Bounds(d, a, b.order, o)
	if err != nil {
		return Result{}, err
	}
	res.Nodes += b.Size() // the abandoned compile's work is effort, too
	res.MemoHits, res.MemoMisses, res.HdrRecycled = hits, misses, rec
	return res, nil
}

// memoEntry interns one residual clause set: the canonical set itself (for
// structural equality under its FNV hash) and the diagram it compiled to.
type memoEntry struct {
	cls [][]int32
	ref Ref
}

// hashClauses is FNV-1a (prob's shared primitives) over the canonical
// clause set — clause literals in order with a separator per clause
// boundary. Collisions are resolved by structural equality, so hash quality
// only affects bucket chain length.
func hashClauses(cls [][]int32) uint64 {
	h := prob.FNVInit()
	for _, c := range cls {
		for _, l := range c {
			h = prob.FNVUint32(h, uint32(l))
		}
		h = prob.FNVByte(h, 0xff)
	}
	return h
}

func equalClauseSets(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !equalClause(a[i], b[i]) {
			return false
		}
	}
	return true
}

// memoGet looks a canonical clause set up in the interned memo.
func (b *Builder) memoGet(h uint64, cls [][]int32) (Ref, bool) {
	e, ok := b.memo[h]
	if !ok {
		b.memoMisses++
		return False, false
	}
	if equalClauseSets(e.cls, cls) {
		b.memoHits++
		return e.ref, true
	}
	for _, o := range b.memoOver[h] {
		if equalClauseSets(o.cls, cls) {
			b.memoHits++
			return o.ref, true
		}
	}
	b.memoMisses++
	return False, false
}

// memoPut interns a clause set. The common case stores the entry inline in
// the map; only genuine hash collisions between distinct sets allocate an
// overflow chain.
func (b *Builder) memoPut(h uint64, cls [][]int32, r Ref) {
	if _, ok := b.memo[h]; !ok {
		b.memo[h] = memoEntry{cls: cls, ref: r}
		return
	}
	if b.memoOver == nil {
		b.memoOver = make(map[uint64][]memoEntry)
	}
	b.memoOver[h] = append(b.memoOver[h], memoEntry{cls: cls, ref: r})
}

// hdrArenaBlock is how many clause-set header slots the builder's arena
// allocates per backing array.
const hdrArenaBlock = 4096

// getScratch returns a clause-set header with room for n clauses: a
// recycled one from the free list when it fits, otherwise a slice of the
// header arena (one allocation per hdrArenaBlock header slots). Headers
// retained by the memo simply keep their arena storage; recycled ones come
// back through putScratch.
func (b *Builder) getScratch(n int) [][]int32 {
	if k := len(b.scratch); k > 0 {
		if s := b.scratch[k-1]; cap(s) >= n {
			b.scratch = b.scratch[:k-1]
			b.hdrRecycled++
			return s[:0]
		}
	}
	if len(b.hdrs) < n {
		size := hdrArenaBlock
		if n > size {
			size = n
		}
		b.hdrs = make([][]int32, size)
	}
	s := b.hdrs[:0:n]
	b.hdrs = b.hdrs[n:]
	return s
}

// putScratch recycles a clause-set header whose contents are dead.
func (b *Builder) putScratch(s [][]int32) {
	if cap(s) > 0 {
		b.scratch = append(b.scratch, s)
	}
}

// Compile builds the reduced OBDD of a DNF by Shannon expansion under the
// builder's order: condition the clause set on its topmost variable, recurse
// on both cofactors, and hash-cons the resulting node. Residual clause sets
// are memoized under an FNV-1a hash of the canonical set with
// structural-equality collision chains — no per-recursion key strings — so
// shared subformulas compile once; cofactor clause-set headers are drawn
// from a free list and recycled on every memo hit. Returns ErrBudget when
// the diagram would exceed the node budget.
func (b *Builder) Compile(d *prob.DNF) (Ref, error) {
	cls, err := b.lower(d)
	if err != nil {
		return False, err
	}
	return b.shannon(cls)
}

// lower rewrites clauses as ascending level lists, dropping invalid vars.
// The literal storage of all clauses shares one backing array.
func (b *Builder) lower(d *prob.DNF) ([][]int32, error) {
	total := 0
	for _, c := range d.Clauses {
		total += len(c)
	}
	flat := make([]int32, 0, total)
	cls := make([][]int32, 0, len(d.Clauses))
	for _, c := range d.Clauses {
		start := len(flat)
		for _, v := range c {
			if !v.Valid() {
				continue
			}
			lv, ok := b.level[v]
			if !ok {
				return nil, fmt.Errorf("obdd: variable %v of %s not in order", v, c)
			}
			flat = append(flat, lv)
		}
		lc := flat[start:len(flat):len(flat)]
		slices.Sort(lc)
		cls = append(cls, lc)
	}
	return cls, nil
}

// shannon compiles a canonical clause set, taking ownership of the cls
// header: on a memo hit (or a terminal case) the header is recycled into the
// scratch free list, on a miss it is retained by the memo entry.
func (b *Builder) shannon(cls [][]int32) (Ref, error) {
	if b.stop != nil && b.stop() {
		b.putScratch(cls)
		return False, ErrBudget
	}
	if len(cls) == 0 {
		b.putScratch(cls)
		return False, nil
	}
	top := terminalLevel
	for _, c := range cls {
		if len(c) == 0 {
			b.putScratch(cls)
			return True, nil
		}
		if c[0] < top {
			top = c[0]
		}
	}
	h := hashClauses(cls)
	if r, ok := b.memoGet(h, cls); ok {
		b.putScratch(cls)
		return r, nil
	}
	pos, neg, posTrue := b.condition(cls, top)
	var hi Ref = True
	var err error
	if !posTrue {
		hi, err = b.shannon(pos)
		if err != nil {
			return False, err
		}
	}
	lo, err := b.shannon(neg)
	if err != nil {
		return False, err
	}
	r, err := b.mk(top, lo, hi)
	if err != nil {
		return False, err
	}
	b.memoPut(h, cls, r)
	return r, nil
}

// condition splits a clause set on its topmost level: pos is the cofactor
// under "true" (the level stripped from the clauses that start with it), neg
// the cofactor under "false" (those clauses dropped). posTrue short-circuits
// the positive cofactor when stripping the level empties a clause. Both
// cofactors are normalized — sorted and deduplicated — so the memo key is
// canonical for the residual set; their headers come from the builder's
// scratch free list.
func (b *Builder) condition(cls [][]int32, level int32) (pos, neg [][]int32, posTrue bool) {
	pos = b.getScratch(len(cls))
	neg = b.getScratch(len(cls))
	for _, c := range cls {
		if c[0] == level {
			if len(c) == 1 {
				posTrue = true
			} else {
				pos = append(pos, c[1:])
			}
		} else {
			pos = append(pos, c)
			neg = append(neg, c)
		}
	}
	if posTrue {
		b.putScratch(pos)
		pos = nil
	} else {
		pos = normalize(pos)
	}
	neg = normalize(neg)
	return pos, neg, posTrue
}

// normalize sorts clauses lexicographically and drops duplicates, making
// residual clause sets canonical regardless of the expansion path that
// produced them.
func normalize(cls [][]int32) [][]int32 {
	slices.SortFunc(cls, cmpClause)
	out := cls[:0]
	for i, c := range cls {
		if i > 0 && equalClause(cls[i-1], c) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func cmpClause(a, b []int32) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

func equalClause(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OccurrenceOrder derives a variable order from the lineage itself:
// variables are ranked by first occurrence scanning the clauses left to
// right — interleaving the per-source variable columns clause by clause
// (c₁o₁i₁ c₂o₂i₂ …) rather than grouping all of one table's variables
// together, which keeps co-occurring variables adjacent and compiles
// read-once lineage into linear-size diagrams.
//
// rank, when non-nil, orders variables within each clause (ascending rank,
// ties by Var id) before the scan — this is how a query-signature order
// threads through: rank variables by their source table's position in the
// signature so each clause is visited root-table first, mirroring the
// hierarchy the signature encodes. A nil rank visits each clause in its
// stored (Var id) order.
func OccurrenceOrder(d *prob.DNF, rank func(prob.Var) int) []prob.Var {
	var s OrderScratch
	return s.OccurrenceOrder(d, rank)
}

// OrderScratch holds the reusable working state of OccurrenceOrder, so a
// batch of per-answer order derivations (conf's OBDD fan-out) pays the map
// and slice allocations once per worker instead of once per answer.
type OrderScratch struct {
	seen  map[prob.Var]bool
	order []prob.Var
	buf   []prob.Var
}

// OccurrenceOrder is the package-level OccurrenceOrder over reused scratch
// storage. The returned order aliases the scratch and is only valid until
// the next call on the same scratch.
func (s *OrderScratch) OccurrenceOrder(d *prob.DNF, rank func(prob.Var) int) []prob.Var {
	if s.seen == nil {
		s.seen = make(map[prob.Var]bool)
	}
	clear(s.seen)
	seen := s.seen
	order := s.order[:0]
	buf := s.buf[:0]
	defer func() { s.order, s.buf = order[:0], buf[:0] }()
	for _, c := range d.Clauses {
		buf = buf[:0]
		for _, v := range c {
			if v.Valid() {
				buf = append(buf, v)
			}
		}
		if rank != nil {
			slices.SortStableFunc(buf, func(x, y prob.Var) int {
				rx, ry := rank(x), rank(y)
				if rx != ry {
					return rx - ry
				}
				return int(x - y)
			})
		}
		for _, v := range buf {
			if !seen[v] {
				seen[v] = true
				order = append(order, v)
			}
		}
	}
	return order
}
