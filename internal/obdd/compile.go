package obdd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/prob"
)

// DefaultNodeBudget caps the diagram size (and the anytime mode's expansion
// steps) when Options.NodeBudget is zero. Beyond ~10^5 nodes the lineage is
// firmly in blow-up territory and the certified bounds (or Monte Carlo) are
// the better tool.
const DefaultNodeBudget = 1 << 17

// Options tunes OBDD-based probability computation.
type Options struct {
	// NodeBudget caps the number of diagram nodes during exact compilation
	// and the number of expansion steps in the anytime bound mode; 0 means
	// DefaultNodeBudget.
	NodeBudget int
	// TargetWidth stops the anytime mode early once hi-lo ≤ TargetWidth;
	// 0 expands until the budget is spent (or the bounds close completely).
	// It has no effect on formulas whose diagram fits the budget.
	TargetWidth float64
}

func (o Options) budget() int {
	if o.NodeBudget <= 0 {
		return DefaultNodeBudget
	}
	return o.NodeBudget
}

// Result is the outcome of OBDD-based probability computation for one
// formula.
type Result struct {
	// Exact reports whether P is the exact probability. When false, only
	// the certified bounds Lo ≤ Pr[φ] ≤ Hi are guaranteed and P is their
	// midpoint (so |P - Pr[φ]| ≤ (Hi-Lo)/2).
	Exact bool
	// P is the exact probability, or the bound midpoint.
	P float64
	// Lo and Hi bound the probability; Lo == Hi == P for exact results.
	Lo, Hi float64
	// Nodes counts the compilation effort: internal OBDD nodes for exact
	// results; for bounded results, the nodes built by the abandoned exact
	// compile plus the anytime mode's Shannon expansion steps.
	Nodes int
}

// Prob computes Pr[d] under the given variable order: exact via OBDD
// compilation and one bottom-up evaluation pass when the diagram fits the
// node budget, certified [lo, hi] bounds via partial expansion otherwise.
// The order must mention every variable of d. The result is a deterministic
// function of (d, a, order, o).
func Prob(d *prob.DNF, a *prob.Assignment, order []prob.Var, o Options) (Result, error) {
	b := NewBuilder(order, o.budget())
	root, err := b.Compile(d)
	if err == nil {
		p := b.Prob(root, a)
		return Result{Exact: true, P: p, Lo: p, Hi: p, Nodes: b.Size()}, nil
	}
	if err != ErrBudget {
		return Result{}, err
	}
	res, err := Bounds(d, a, order, o)
	if err != nil {
		return Result{}, err
	}
	res.Nodes += b.Size() // the abandoned compile's work is effort, too
	return res, nil
}

// Compile builds the reduced OBDD of a DNF by Shannon expansion under the
// builder's order: condition the clause set on its topmost variable, recurse
// on both cofactors, and hash-cons the resulting node. Residual clause sets
// are memoized under a canonical key, so shared subformulas compile once.
// Returns ErrBudget when the diagram would exceed the node budget.
func (b *Builder) Compile(d *prob.DNF) (Ref, error) {
	cls, err := b.lower(d)
	if err != nil {
		return False, err
	}
	memo := make(map[string]Ref)
	return b.shannon(cls, memo)
}

// lower rewrites clauses as ascending level lists, dropping invalid vars.
func (b *Builder) lower(d *prob.DNF) ([][]int32, error) {
	cls := make([][]int32, 0, len(d.Clauses))
	for _, c := range d.Clauses {
		lc := make([]int32, 0, len(c))
		for _, v := range c {
			if !v.Valid() {
				continue
			}
			lv, ok := b.level[v]
			if !ok {
				return nil, fmt.Errorf("obdd: variable %v of %s not in order", v, c)
			}
			lc = append(lc, lv)
		}
		sort.Slice(lc, func(i, j int) bool { return lc[i] < lc[j] })
		cls = append(cls, lc)
	}
	return cls, nil
}

func (b *Builder) shannon(cls [][]int32, memo map[string]Ref) (Ref, error) {
	if len(cls) == 0 {
		return False, nil
	}
	top := terminalLevel
	for _, c := range cls {
		if len(c) == 0 {
			return True, nil
		}
		if c[0] < top {
			top = c[0]
		}
	}
	key := clausesKey(cls)
	if r, ok := memo[key]; ok {
		return r, nil
	}
	pos, neg, posTrue := condition(cls, top)
	var hi Ref = True
	var err error
	if !posTrue {
		hi, err = b.shannon(pos, memo)
		if err != nil {
			return False, err
		}
	}
	lo, err := b.shannon(neg, memo)
	if err != nil {
		return False, err
	}
	r, err := b.mk(top, lo, hi)
	if err != nil {
		return False, err
	}
	memo[key] = r
	return r, nil
}

// condition splits a clause set on its topmost level: pos is the cofactor
// under "true" (the level stripped from the clauses that start with it), neg
// the cofactor under "false" (those clauses dropped). posTrue short-circuits
// the positive cofactor when stripping the level empties a clause. Both
// cofactors are normalized — sorted and deduplicated — so the memo key is
// canonical for the residual set.
func condition(cls [][]int32, level int32) (pos, neg [][]int32, posTrue bool) {
	pos = make([][]int32, 0, len(cls))
	neg = make([][]int32, 0, len(cls))
	for _, c := range cls {
		if c[0] == level {
			if len(c) == 1 {
				posTrue = true
			} else {
				pos = append(pos, c[1:])
			}
		} else {
			pos = append(pos, c)
			neg = append(neg, c)
		}
	}
	if posTrue {
		pos = nil
	} else {
		pos = normalize(pos)
	}
	neg = normalize(neg)
	return pos, neg, posTrue
}

// normalize sorts clauses lexicographically and drops duplicates, making
// residual clause sets canonical regardless of the expansion path that
// produced them.
func normalize(cls [][]int32) [][]int32 {
	sort.Slice(cls, func(i, j int) bool { return lessClause(cls[i], cls[j]) })
	out := cls[:0]
	for i, c := range cls {
		if i > 0 && equalClause(cls[i-1], c) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func lessClause(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalClause(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func clausesKey(cls [][]int32) string {
	var sb strings.Builder
	for _, c := range cls {
		for _, l := range c {
			fmt.Fprintf(&sb, "%d,", l)
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// OccurrenceOrder derives a variable order from the lineage itself:
// variables are ranked by first occurrence scanning the clauses left to
// right — interleaving the per-source variable columns clause by clause
// (c₁o₁i₁ c₂o₂i₂ …) rather than grouping all of one table's variables
// together, which keeps co-occurring variables adjacent and compiles
// read-once lineage into linear-size diagrams.
//
// rank, when non-nil, orders variables within each clause (ascending rank,
// ties by Var id) before the scan — this is how a query-signature order
// threads through: rank variables by their source table's position in the
// signature so each clause is visited root-table first, mirroring the
// hierarchy the signature encodes. A nil rank visits each clause in its
// stored (Var id) order.
func OccurrenceOrder(d *prob.DNF, rank func(prob.Var) int) []prob.Var {
	seen := make(map[prob.Var]bool)
	var order []prob.Var
	buf := make([]prob.Var, 0, 8)
	for _, c := range d.Clauses {
		buf = buf[:0]
		for _, v := range c {
			if v.Valid() {
				buf = append(buf, v)
			}
		}
		if rank != nil {
			sort.SliceStable(buf, func(i, j int) bool {
				ri, rj := rank(buf[i]), rank(buf[j])
				if ri != rj {
					return ri < rj
				}
				return buf[i] < buf[j]
			})
		}
		for _, v := range buf {
			if !seen[v] {
				seen[v] = true
				order = append(order, v)
			}
		}
	}
	return order
}
