package difftest

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// Goroutine-leak checking for the engine test matrix, stdlib-only. The
// engine's invariant is quiescence: once a query finishes — successfully,
// cancelled, faulted or panicked — no goroutine it started may linger
// beyond the shared worker pool. LeakCheck snapshots the goroutine count
// at registration and verifies, with retries (finishing goroutines need a
// moment to unwind), that the count returns to the baseline.

// leakSlack tolerates runtime-owned goroutines (GC workers, timer
// goroutines) starting between snapshot and check.
const leakSlack = 2

// leakWait bounds how long the check waits for goroutines to unwind.
const leakWait = 2 * time.Second

// leakTB is the subset of testing.TB LeakCheck needs; an interface keeps
// the package importable from non-test code without linking testing.
type leakTB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// LeakCheck registers a test-end goroutine-quiescence assertion: the
// goroutine count at cleanup must return to (baseline + slack) within a
// bounded wait. Register it before starting engines or pools:
//
//	difftest.LeakCheck(t)
//
// On failure the test error includes a full goroutine dump.
func LeakCheck(tb leakTB) {
	tb.Helper()
	before := runtime.NumGoroutine()
	tb.Cleanup(func() {
		deadline := time.Now().Add(leakWait)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before+leakSlack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			runtime.GC() // nudge finalizer/pool goroutines along
			time.Sleep(10 * time.Millisecond)
		}
		tb.Errorf("goroutine leak: %d before, %d after %v\n%s",
			before, now, leakWait, goroutineDump())
	})
}

// goroutineDump renders all goroutine stacks, truncated to keep test logs
// readable.
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	s := string(buf[:n])
	const maxDump = 16 << 10
	if len(s) > maxDump {
		cut := strings.LastIndex(s[:maxDump], "\n\n")
		if cut < 0 {
			cut = maxDump
		}
		s = s[:cut] + fmt.Sprintf("\n... (dump truncated at %d bytes)", maxDump)
	}
	return s
}
