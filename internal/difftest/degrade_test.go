package difftest

import (
	"math/rand"
	"testing"
)

// TestDegradationContract sweeps random lineage formulas through
// CheckDegraded at poll counts from "watermark already passed" (0) to
// "stop fires deep into compilation": every stopped run must hold the
// certified-bounds contract against the possible-worlds oracle.
func TestDegradationContract(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 200
	if testing.Short() {
		n = 40
	}
	for i := 0; i < n; i++ {
		d, a := RandomDNF(rng, 12)
		for _, polls := range []int{0, 1, 3, 10, 100} {
			if err := CheckDegraded(d, a, polls); err != nil {
				t.Fatalf("formula %d, polls %d: %v", i, polls, err)
			}
		}
	}
}
