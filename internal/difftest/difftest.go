// Package difftest is the repo-wide differential test harness for the
// confidence ladder. Every tier computes (or brackets) the same quantity —
// the probability of a positive DNF lineage formula under independent
// tuple marginals — so for any formula small enough to enumerate, all of
// them can be checked against the definitional possible-worlds semantics
// and against each other:
//
//   - prob.ProbByWorlds is the oracle (exponential, ≤ prob.MaxWorldVars);
//   - (*prob.DNF).Prob (Shannon expansion) must match it exactly;
//   - obdd.Prob must match exactly when it reports Exact, and its certified
//     [Lo, Hi] interval must contain the truth otherwise — including under
//     a deliberately starved node budget;
//   - dtree.Prob likewise, in both full-budget and starved configurations;
//   - both compilers must be deterministic (bit-identical on a re-run);
//   - the (ε, δ) Monte Carlo estimate must land within its advertised ε
//     (the per-formula seed is fixed, so this is a frozen coin flip with
//     failure probability δ, not a flaky assertion).
//
// The package is consumed two ways: property tests in internal/prob,
// internal/obdd and internal/dtree feed Check with RandomDNF formulas, and
// the FuzzCompile targets feed it (sans the slow MC leg) with DecodeDNF
// formulas derived from fuzzer-mutated byte strings.
package difftest

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dtree"
	"repro/internal/obdd"
	"repro/internal/prob"
)

// exactEps bounds the float64 rounding drift tolerated between two exact
// computations of the same probability over different expansion orders.
const exactEps = 1e-9

// RandomDNF draws a random positive DNF over at most maxVars variables,
// with random marginals in [0.05, 0.95) — small enough for ProbByWorlds
// whenever maxVars ≤ prob.MaxWorldVars, and shaped like per-answer lineage
// (a handful of clauses of one to four literals each).
func RandomDNF(rng *rand.Rand, maxVars int) (*prob.DNF, *prob.Assignment) {
	nv := 1 + rng.Intn(maxVars)
	a := prob.NewAssignment()
	for v := 1; v <= nv; v++ {
		a.MustSet(prob.Var(v), 0.05+0.9*rng.Float64())
	}
	d := &prob.DNF{}
	nc := 1 + rng.Intn(8)
	for i := 0; i < nc; i++ {
		w := 1 + rng.Intn(4)
		vars := make([]prob.Var, 0, w)
		for j := 0; j < w; j++ {
			vars = append(vars, prob.Var(1+rng.Intn(nv)))
		}
		d.Add(prob.NewClause(vars...))
	}
	return d, a
}

// DecodeDNF maps an arbitrary byte string onto a DNF over at most 12
// variables plus deterministic marginals — the shared input decoder of the
// FuzzCompile targets, so corpus entries mean the same formula in every
// fuzz package. Byte 0 seeds the marginals; each following byte is either a
// clause separator (0) or the variable 1 + b mod 12. Empty clauses are
// skipped (a fuzzer would otherwise trivially pin every formula to ⊤); ok
// is false when no clause survives.
func DecodeDNF(data []byte) (d *prob.DNF, a *prob.Assignment, ok bool) {
	if len(data) < 2 {
		return nil, nil, false
	}
	seed, rest := int(data[0]), data[1:]
	a = prob.NewAssignment()
	for v := 1; v <= 12; v++ {
		a.MustSet(prob.Var(v), float64((seed+v*37)%90+5)/100)
	}
	d = &prob.DNF{}
	var vars []prob.Var
	flush := func() {
		if len(vars) > 0 {
			d.Add(prob.NewClause(vars...))
			vars = vars[:0]
		}
	}
	for _, b := range rest {
		if b == 0 {
			flush()
			continue
		}
		vars = append(vars, prob.Var(1+int(b)%12))
	}
	flush()
	if len(d.Clauses) == 0 {
		return nil, nil, false
	}
	return d, a, true
}

// Check runs the full differential battery on one formula. It returns nil
// when every tier agrees and a descriptive error naming the offending tier
// otherwise. The formula must have at most prob.MaxWorldVars variables.
func Check(d *prob.DNF, a *prob.Assignment) error {
	if err := CheckCompile(d, a); err != nil {
		return err
	}
	truth, err := prob.ProbByWorlds(d, a)
	if err != nil {
		return err
	}
	est, err := prob.EstimateAllCtx(context.Background(), []*prob.DNF{d}, a, prob.MCOptions{
		Epsilon: 0.05, Delta: 0.01, Seed: 7,
	})
	if err != nil {
		return err
	}
	// The estimator resolves trivial formulas exactly (Epsilon 0); those
	// only need to match modulo rounding drift.
	if e := est[0]; math.Abs(e.P-truth) > math.Max(e.Epsilon, exactEps) {
		return fmt.Errorf("difftest: MC estimate %.9f misses truth %.9f by more than ε=%g (%s, %d samples) on %v",
			e.P, truth, e.Epsilon, e.Method, e.Samples, d)
	}
	return nil
}

// CheckCompile is Check without the Monte Carlo leg: the exact tiers and
// both compilers' certified bounds against the possible-worlds oracle. The
// fuzz targets use this variant — it keeps an execution in the microsecond
// range, and the estimator's (ε, δ) guarantee is a statement about seeds,
// not formulas, so fuzzing mutated formulas against it proves nothing the
// property tests don't.
func CheckCompile(d *prob.DNF, a *prob.Assignment) error {
	truth, err := prob.ProbByWorlds(d, a)
	if err != nil {
		return err
	}
	if p := d.Prob(a); math.Abs(p-truth) > exactEps {
		return fmt.Errorf("difftest: Shannon oracle %.12f != worlds %.12f on %v", p, truth, d)
	}

	order := obdd.OccurrenceOrder(d, nil)
	full, err := obdd.Prob(d, a, order, obdd.Options{})
	if err != nil {
		return fmt.Errorf("difftest: obdd full-budget: %w", err)
	}
	if err := checkResult("obdd", full.Exact, full.P, full.Lo, full.Hi, truth, d); err != nil {
		return err
	}
	starved, err := obdd.Prob(d, a, order, obdd.Options{NodeBudget: 1})
	if err != nil {
		return fmt.Errorf("difftest: obdd starved-budget: %w", err)
	}
	if err := checkResult("obdd[budget=1]", starved.Exact, starved.P, starved.Lo, starved.Hi, truth, d); err != nil {
		return err
	}
	again, err := obdd.Prob(d, a, order, obdd.Options{})
	if err != nil {
		return err
	}
	if again != full {
		return fmt.Errorf("difftest: obdd not deterministic: %+v then %+v on %v", full, again, d)
	}

	dfull := dtree.Prob(d, a, dtree.Options{})
	if err := checkResult("dtree", dfull.Exact, dfull.P, dfull.Lo, dfull.Hi, truth, d); err != nil {
		return err
	}
	dstarved := dtree.Prob(d, a, dtree.Options{NodeBudget: 1})
	if err := checkResult("dtree[budget=1]", dstarved.Exact, dstarved.P, dstarved.Lo, dstarved.Hi, truth, d); err != nil {
		return err
	}
	if dagain := dtree.Prob(d, a, dtree.Options{}); dagain != dfull {
		return fmt.Errorf("difftest: dtree not deterministic: %+v then %+v on %v", dfull, dagain, d)
	}
	return nil
}

// CheckDegraded is the graceful-degradation contract against the oracle:
// a compilation cut short by Options.Stop after the given number of polls —
// including zero, the watermark-already-passed case — must still return
// certified [Lo, Hi] bounds containing the truth, report Stopped (unless it
// finished exactly first), and be deterministic for a fixed poll count.
func CheckDegraded(d *prob.DNF, a *prob.Assignment, polls int) error {
	truth, err := prob.ProbByWorlds(d, a)
	if err != nil {
		return err
	}
	stopAfter := func(n int) func() bool {
		left := n
		return func() bool { left--; return left < 0 }
	}

	order := obdd.OccurrenceOrder(d, nil)
	res, err := obdd.Prob(d, a, order, obdd.Options{Stop: stopAfter(polls)})
	if err != nil {
		return fmt.Errorf("difftest: obdd stopped compile: %w", err)
	}
	if err := checkResult(fmt.Sprintf("obdd[stop=%d]", polls), res.Exact, res.P, res.Lo, res.Hi, truth, d); err != nil {
		return err
	}
	if !res.Exact && !res.Stopped {
		return fmt.Errorf("difftest: obdd[stop=%d] inexact but not Stopped: %+v on %v", polls, res, d)
	}
	if again, err := obdd.Prob(d, a, order, obdd.Options{Stop: stopAfter(polls)}); err != nil || again != res {
		return fmt.Errorf("difftest: obdd[stop=%d] not deterministic: %+v then %+v (%v) on %v", polls, res, again, err, d)
	}

	dres := dtree.Prob(d, a, dtree.Options{Stop: stopAfter(polls)})
	if err := checkResult(fmt.Sprintf("dtree[stop=%d]", polls), dres.Exact, dres.P, dres.Lo, dres.Hi, truth, d); err != nil {
		return err
	}
	if !dres.Exact && !dres.Stopped {
		return fmt.Errorf("difftest: dtree[stop=%d] inexact but not Stopped: %+v on %v", polls, dres, d)
	}
	if dagain := dtree.Prob(d, a, dtree.Options{Stop: stopAfter(polls)}); dagain != dres {
		return fmt.Errorf("difftest: dtree[stop=%d] not deterministic: %+v then %+v on %v", polls, dres, dagain, d)
	}

	// The zero-work fallback for answers whose compilation never started.
	lo, hi := obdd.CheapBounds(d, a)
	if lo-exactEps > truth || truth > hi+exactEps {
		return fmt.Errorf("difftest: CheapBounds [%.9f, %.9f] exclude truth %.9f on %v", lo, hi, truth, d)
	}
	return nil
}

// checkResult validates one compiler outcome against the oracle: exact
// results must match to exactEps bit-for-bit-style, bounded results must be
// a well-formed interval inside [0, 1] containing the truth.
func checkResult(tier string, exact bool, p, lo, hi, truth float64, d *prob.DNF) error {
	if exact {
		if lo != p || hi != p {
			return fmt.Errorf("difftest: %s exact result with open interval [%.12f, %.12f], P=%.12f on %v", tier, lo, hi, p, d)
		}
		if math.Abs(p-truth) > exactEps {
			return fmt.Errorf("difftest: %s exact %.12f != worlds %.12f on %v", tier, p, truth, d)
		}
		return nil
	}
	if !(lo <= hi) || lo < 0 || hi > 1 {
		return fmt.Errorf("difftest: %s malformed interval [%.12f, %.12f] on %v", tier, lo, hi, d)
	}
	if truth < lo-exactEps || truth > hi+exactEps {
		return fmt.Errorf("difftest: %s interval [%.12f, %.12f] does not contain worlds %.12f on %v", tier, lo, hi, truth, d)
	}
	if p != (lo+hi)/2 {
		return fmt.Errorf("difftest: %s bounded P=%.12f is not the midpoint of [%.12f, %.12f] on %v", tier, p, lo, hi, d)
	}
	return nil
}
