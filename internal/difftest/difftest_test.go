package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/prob"
)

// TestDecodeDNF pins the byte decoder: clause separators, the mod-12
// variable map, empty-clause skipping, and the rejection of inputs with no
// surviving clause.
func TestDecodeDNF(t *testing.T) {
	d, a, ok := DecodeDNF([]byte{0x11, 1, 2, 0, 3, 4})
	if !ok {
		t.Fatal("decoder rejected a well-formed input")
	}
	want := prob.NewDNF(prob.NewClause(2, 3), prob.NewClause(4, 5))
	if d.String() != want.String() {
		t.Errorf("decoded %v, want %v", d, want)
	}
	for v := prob.Var(1); v <= 12; v++ {
		if p := a.P(v); !(p >= 0.05 && p <= 0.94) {
			t.Errorf("marginal P(%v) = %g outside [0.05, 0.94]", v, p)
		}
	}
	// 24 ≡ 12·2, so byte 24 maps to variable 1+24%12 = 1, same as byte 12.
	d1, _, _ := DecodeDNF([]byte{9, 12})
	d2, _, _ := DecodeDNF([]byte{9, 24})
	if d1.String() != d2.String() {
		t.Errorf("mod-12 collapse broken: %v vs %v", d1, d2)
	}
	for _, bad := range [][]byte{nil, {}, {7}, {7, 0}, {7, 0, 0, 0}} {
		if _, _, ok := DecodeDNF(bad); ok {
			t.Errorf("decoder accepted %v", bad)
		}
	}
}

// TestRandomDNFShape: generated formulas stay inside the oracle's variable
// limit and carry marginals for every variable they mention.
func TestRandomDNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		d, a := RandomDNF(rng, 12)
		vars := d.Vars()
		if len(vars) == 0 || len(d.Clauses) == 0 {
			t.Fatalf("degenerate formula %v", d)
		}
		for _, v := range vars {
			if int(v) < 1 || int(v) > 12 {
				t.Fatalf("variable %v outside [1, 12]", v)
			}
			if a.P(v) == 1 {
				t.Fatalf("variable %v has no assigned marginal", v)
			}
		}
	}
}

// TestCheckAccepts: the battery passes on hand-picked formulas exercising
// each decomposition shape (it would be circular to assert much more here —
// the harness's real coverage is the property tests in the compilation
// packages that drive it with random formulas).
func TestCheckAccepts(t *testing.T) {
	for _, data := range [][]byte{
		{0x11, 1, 2, 0, 3, 4},
		{0x42, 1, 2, 3, 0, 1, 4, 0, 2, 5},
		{0x07, 1, 3, 0, 1, 4, 0, 2, 4, 0, 5, 6},
	} {
		d, a, ok := DecodeDNF(data)
		if !ok {
			t.Fatalf("seed %v rejected", data)
		}
		if err := Check(d, a); err != nil {
			t.Errorf("Check(%v): %v", d, err)
		}
	}
}
