// Package storage provides the secondary-storage substrate underneath the
// query engine: binary tuple serialization, 8 KiB slotted pages, heap files,
// a pinning LRU buffer pool, and an external merge sort. The paper's
// operator is explicitly a *secondary-storage* operator (§V): answer tuples
// are sorted (spilling to disk when large) and then consumed in sequential
// scans; this package supplies those mechanics.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/table"
)

// EncodeTuple appends the binary encoding of a tuple to dst. The format is
// self-describing: a uvarint field count, then per field a kind byte and a
// kind-specific payload (varint for ints/bools, fixed 8 bytes for floats,
// uvarint-length-prefixed bytes for strings).
func EncodeTuple(dst []byte, t table.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.Kind))
		switch v.Kind {
		case table.KindNull:
		case table.KindInt, table.KindBool:
			dst = binary.AppendVarint(dst, v.I)
		case table.KindFloat:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F))
			dst = append(dst, buf[:]...)
		case table.KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		default:
			panic(fmt.Sprintf("storage: cannot encode kind %v", v.Kind))
		}
	}
	return dst
}

// RawField is one field of an encoded record exposed without building a
// table.Value: the kind tag plus the kind's raw payload. S aliases the
// record buffer — valid only as long as the record itself.
type RawField struct {
	Kind table.Kind
	I    int64
	F    float64
	S    []byte
}

// FieldIter steps through the fields of one encoded record — the columnar
// decode path, which appends each field straight onto a column vector
// instead of materializing a tuple (and so never allocates a per-row
// string).
type FieldIter struct {
	buf []byte
	off int
	n   int
	i   int
}

// NewFieldIter positions an iterator at the first field of the record.
func NewFieldIter(buf []byte) (FieldIter, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return FieldIter{}, fmt.Errorf("storage: corrupt tuple header")
	}
	return FieldIter{buf: buf, off: sz, n: int(n)}, nil
}

// Len returns the record's field count.
func (it *FieldIter) Len() int { return it.n }

// Next decodes the next field (ok=false after the last).
func (it *FieldIter) Next() (RawField, bool, error) {
	if it.i >= it.n {
		return RawField{}, false, nil
	}
	buf, off := it.buf, it.off
	if off >= len(buf) {
		return RawField{}, false, fmt.Errorf("storage: truncated tuple at field %d", it.i)
	}
	kind := table.Kind(buf[off])
	off++
	f := RawField{Kind: kind}
	switch kind {
	case table.KindNull:
	case table.KindInt, table.KindBool:
		iv, s := binary.Varint(buf[off:])
		if s <= 0 {
			return RawField{}, false, fmt.Errorf("storage: corrupt int field %d", it.i)
		}
		off += s
		f.I = iv
	case table.KindFloat:
		if off+8 > len(buf) {
			return RawField{}, false, fmt.Errorf("storage: truncated float field %d", it.i)
		}
		f.F = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	case table.KindString:
		l, s := binary.Uvarint(buf[off:])
		if s <= 0 || off+s+int(l) > len(buf) {
			return RawField{}, false, fmt.Errorf("storage: corrupt string field %d", it.i)
		}
		off += s
		f.S = buf[off : off+int(l)]
		off += int(l)
	default:
		return RawField{}, false, fmt.Errorf("storage: unknown kind byte %d in field %d", kind, it.i)
	}
	it.off = off
	it.i++
	return f, true, nil
}

// Value materializes a raw field as a table.Value (copying string bytes).
func (f RawField) Value() table.Value {
	switch f.Kind {
	case table.KindNull:
		return table.Null()
	case table.KindInt, table.KindBool:
		return table.Value{Kind: f.Kind, I: f.I}
	case table.KindFloat:
		return table.Float(f.F)
	case table.KindString:
		return table.Str(string(f.S))
	default:
		return table.Null()
	}
}

// DecodeTuple decodes one tuple from buf, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(buf []byte) (table.Tuple, int, error) {
	t, _, n, err := DecodeTupleArena(buf, nil)
	return t, n, err
}

// DecodeTupleArena is DecodeTuple drawing the tuple's value storage from
// arena when it fits (returning the shrunk remainder), and allocating fresh
// storage otherwise. Scanners pass a block-sized arena so a sequential scan
// pays one value-slice allocation per ~4k values instead of one per tuple;
// the decoded tuples stay valid forever (arena blocks are never reused).
func DecodeTupleArena(buf []byte, arena []table.Value) (table.Tuple, []table.Value, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, arena, 0, fmt.Errorf("storage: corrupt tuple header")
	}
	off := sz
	var t table.Tuple
	if int(n) <= len(arena) {
		t = table.Tuple(arena[:n:n])
		arena = arena[n:]
	} else {
		t = make(table.Tuple, n)
	}
	for i := range t {
		if off >= len(buf) {
			return nil, arena, 0, fmt.Errorf("storage: truncated tuple at field %d", i)
		}
		kind := table.Kind(buf[off])
		off++
		switch kind {
		case table.KindNull:
			t[i] = table.Null()
		case table.KindInt, table.KindBool:
			iv, s := binary.Varint(buf[off:])
			if s <= 0 {
				return nil, arena, 0, fmt.Errorf("storage: corrupt int field %d", i)
			}
			off += s
			t[i] = table.Value{Kind: kind, I: iv}
		case table.KindFloat:
			if off+8 > len(buf) {
				return nil, arena, 0, fmt.Errorf("storage: truncated float field %d", i)
			}
			t[i] = table.Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		case table.KindString:
			l, s := binary.Uvarint(buf[off:])
			if s <= 0 || off+s+int(l) > len(buf) {
				return nil, arena, 0, fmt.Errorf("storage: corrupt string field %d", i)
			}
			off += s
			t[i] = table.Str(string(buf[off : off+int(l)]))
			off += int(l)
		default:
			return nil, arena, 0, fmt.Errorf("storage: unknown kind byte %d in field %d", kind, i)
		}
	}
	return t, arena, off, nil
}
