package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/table"
)

// TestOpenHeapFileMisaligned: a truncated (non-page-aligned) file is
// rejected at open time rather than producing garbage scans.
func TestOpenHeapFileMisaligned(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.heap")
	if err := os.WriteFile(path, make([]byte, PageSize+17), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenHeapFile(path); err == nil {
		t.Error("misaligned heap file must be rejected")
	}
}

func TestOpenHeapFileMissing(t *testing.T) {
	if _, err := OpenHeapFile(filepath.Join(t.TempDir(), "nope.heap")); err == nil {
		t.Error("missing file must be rejected")
	}
}

// TestScannerSurvivesReopen: a heap file written, closed, reopened and
// scanned twice yields identical contents (no hidden state in the file).
func TestScannerSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "re.heap")
	h, err := CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1234; i++ {
		if err := h.Append(table.Tuple{table.Int(int64(i)), table.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		h2, err := OpenHeapFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := h2.NewScanner(nil)
		n := 0
		for {
			tup, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if tup[0].I != int64(n) {
				t.Fatalf("round %d: tuple %d has key %d", round, n, tup[0].I)
			}
			n++
		}
		if n != 1234 {
			t.Fatalf("round %d: scanned %d tuples", round, n)
		}
		h2.Close()
	}
}

// TestReadPageOutOfRange: page reads past EOF are errors, not zero pages.
func TestReadPageOutOfRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.heap")
	h, err := CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Append(table.Tuple{table.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := h.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	var p Page
	if err := h.ReadPage(99, &p); err == nil {
		t.Error("out-of-range page read must fail")
	}
	if err := h.ReadPage(-1, &p); err == nil {
		t.Error("negative page read must fail")
	}
}

// TestExternalSorterMisuse: Add after Finish and double Finish are errors.
func TestExternalSorterMisuse(t *testing.T) {
	s := NewExternalSorter(func(a, b table.Tuple) int { return 0 }, 10, t.TempDir())
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(table.Tuple{table.Int(1)}); err == nil {
		t.Error("Add after Finish must fail")
	}
	if _, err := s.Finish(); err == nil {
		t.Error("double Finish must fail")
	}
}

// TestSpillFilesCleanedUp: closing the merge iterator removes the temp runs.
func TestSpillFilesCleanedUp(t *testing.T) {
	dir := t.TempDir()
	s := NewExternalSorter(func(a, b table.Tuple) int {
		return table.Compare(a[0], b[0])
	}, 8, dir)
	for i := 0; i < 100; i++ {
		if err := s.Add(table.Tuple{table.Int(int64(99 - i))}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if s.Spills() == 0 {
		t.Fatal("expected spills")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) == 0 {
		t.Fatal("spill files should exist before Close")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("spill files left behind: %v", entries)
	}
}
