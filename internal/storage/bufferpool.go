package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// Frame is a buffer-pool slot holding one page of one file.
type Frame struct {
	page Page
	key  frameKey
	pins int
	lru  *list.Element
}

// Page returns the in-memory page held by the frame.
func (f *Frame) Page() *Page { return &f.page }

type frameKey struct {
	file   *HeapFile
	pageNo int64
}

// BufferPool caches heap-file pages with pin counting and LRU replacement.
// It is the read path of every table scan; the paper's warm-cache timings
// correspond to scans that fully hit the pool.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	frames   map[frameKey]*Frame
	lru      *list.List // unpinned frames, front = least recently used
	hits     int64
	misses   int64
}

// NewBufferPool creates a pool with room for capacity pages.
func NewBufferPool(capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		capacity: capacity,
		frames:   make(map[frameKey]*Frame, capacity),
		lru:      list.New(),
	}
}

// Fetch pins the requested page into the pool, reading it from disk on a
// miss (evicting the least recently used unpinned page when full).
func (bp *BufferPool) Fetch(h *HeapFile, pageNo int64) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	key := frameKey{h, pageNo}
	if fr, ok := bp.frames[key]; ok {
		bp.hits++
		if fr.lru != nil {
			bp.lru.Remove(fr.lru)
			fr.lru = nil
		}
		fr.pins++
		return fr, nil
	}
	bp.misses++
	var fr *Frame
	if len(bp.frames) >= bp.capacity {
		victim := bp.lru.Front()
		if victim == nil {
			return nil, fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.capacity)
		}
		fr = victim.Value.(*Frame)
		bp.lru.Remove(victim)
		delete(bp.frames, fr.key)
		fr.lru = nil
	} else {
		fr = &Frame{}
	}
	if err := h.ReadPage(pageNo, &fr.page); err != nil {
		return nil, err
	}
	fr.key = key
	fr.pins = 1
	bp.frames[key] = fr
	return fr, nil
}

// Unpin releases a pin; at zero pins the frame becomes evictable.
func (bp *BufferPool) Unpin(fr *Frame) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr.pins <= 0 {
		panic("storage: unpin of unpinned frame")
	}
	fr.pins--
	if fr.pins == 0 {
		fr.lru = bp.lru.PushBack(fr)
	}
}

// Stats returns cumulative hit/miss counters.
func (bp *BufferPool) Stats() (hits, misses int64) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.hits, bp.misses
}

// Pinned counts frames currently held by at least one pin. Quiescent pools
// report zero; the chaos harness asserts this after every faulted query to
// prove no scan abandons a pinned page on any error path.
func (bp *BufferPool) Pinned() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, fr := range bp.frames {
		if fr.pins > 0 {
			n++
		}
	}
	return n
}
