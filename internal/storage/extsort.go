package storage

import (
	"container/heap"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/table"
)

// TupleCompare orders two tuples; negative/zero/positive like bytes.Compare.
type TupleCompare func(a, b table.Tuple) int

// TupleIterator is the minimal pull interface shared with the executor.
type TupleIterator interface {
	Next() (table.Tuple, bool, error)
	Close() error
}

// ExternalSorter sorts an unbounded tuple stream under a bounded in-memory
// budget: it accumulates tuples, sorts and spills full buffers as sorted
// runs (heap files), and merges the runs with a k-way loser-free heap merge.
// This is the sort that feeds the paper's confidence operator, which
// requires its input "sorted by the data columns followed by the variable
// columns in preorder of the 1scanTree" (§V.C).
type ExternalSorter struct {
	cmp       TupleCompare
	budget    int // max tuples held in memory before spilling
	tmpDir    string
	buf       []table.Tuple
	runs      []*HeapFile
	spills    int
	finished  bool
	seq       int
	tmpPrefix string

	mem         *fault.Governor // optional memory governor (nil = ungoverned)
	memEst      int64           // estimated bytes of buf
	memReserved int64           // bytes currently reserved with mem
	earlySpills int             // spills forced by governor pressure
}

// memChunk is the reservation granularity of a governed sorter: the buffer
// estimate is charged to the governor in chunks this large, so the atomic
// traffic stays off the per-tuple path.
const memChunk = 64 << 10

// tupleMemEst approximates the heap footprint of one buffered tuple:
// slice header plus per-value storage.
func tupleMemEst(t table.Tuple) int64 { return 32 + 48*int64(len(t)) }

// DefaultSortBudget is the default number of tuples buffered in memory.
const DefaultSortBudget = 1 << 16

// sorterID distinguishes the spill files of concurrent sorters within one
// process: the partition-parallel scans run many external sorts at once,
// and a pid-only prefix would make them truncate each other's runs.
var sorterID atomic.Int64

// NewExternalSorter creates a sorter. budget <= 0 selects
// DefaultSortBudget; tmpDir == "" selects os.TempDir().
func NewExternalSorter(cmp TupleCompare, budget int, tmpDir string) *ExternalSorter {
	if budget <= 0 {
		budget = DefaultSortBudget
	}
	if tmpDir == "" {
		tmpDir = os.TempDir()
	}
	return &ExternalSorter{cmp: cmp, budget: budget, tmpDir: tmpDir,
		tmpPrefix: fmt.Sprintf("sproutsort-%d-%d-", os.Getpid(), sorterID.Add(1))}
}

// Spills reports how many runs were written to disk (0 = pure in-memory sort).
func (s *ExternalSorter) Spills() int { return s.spills }

// Govern attaches a memory governor: the in-memory buffer is charged
// against it in memChunk steps, and a denied reservation forces an early
// spill instead of growing further. Call before the first Add.
func (s *ExternalSorter) Govern(g *fault.Governor) { s.mem = g }

// EarlySpills reports how many runs were spilled because the governor
// denied further buffer growth (a subset of Spills).
func (s *ExternalSorter) EarlySpills() int { return s.earlySpills }

// Add buffers one tuple, spilling a sorted run when the tuple budget is
// exceeded — or earlier, when the memory governor refuses to admit more
// buffer growth.
func (s *ExternalSorter) Add(t table.Tuple) error {
	if s.finished {
		return fmt.Errorf("storage: Add after Finish")
	}
	s.buf = append(s.buf, t)
	if s.mem != nil {
		s.memEst += tupleMemEst(t)
		if s.memEst > s.memReserved {
			if !s.mem.TryReserve(memChunk) {
				// Pressure: spill now (len(buf) >= 1) rather than OOM.
				if len(s.buf) > 1 || s.memReserved > 0 {
					s.earlySpills++
					return s.spill()
				}
			} else {
				s.memReserved += memChunk
			}
		}
	}
	if len(s.buf) >= s.budget {
		return s.spill()
	}
	return nil
}

// releaseMem returns the buffer reservation to the governor.
func (s *ExternalSorter) releaseMem() {
	if s.memReserved > 0 {
		s.mem.Release(s.memReserved)
		s.memReserved = 0
	}
	s.memEst = 0
}

func (s *ExternalSorter) sortBuf() {
	slices.SortStableFunc(s.buf, s.cmp)
}

func (s *ExternalSorter) spill() error {
	s.sortBuf()
	path := filepath.Join(s.tmpDir, fmt.Sprintf("%srun%d.heap", s.tmpPrefix, s.seq))
	s.seq++
	run, err := CreateHeapFile(path)
	if err != nil {
		return err
	}
	for _, t := range s.buf {
		if err := run.Append(t); err != nil {
			run.Remove()
			return err
		}
	}
	if err := run.FinishWrites(); err != nil {
		run.Remove()
		return err
	}
	s.runs = append(s.runs, run)
	s.spills++
	s.buf = s.buf[:0]
	s.releaseMem()
	return nil
}

// Finish completes the sort and returns an iterator over the sorted stream.
// The iterator's Close removes any temp runs; when Finish itself fails, the
// runs spilled so far are removed before returning.
func (s *ExternalSorter) Finish() (TupleIterator, error) {
	if s.finished {
		return nil, fmt.Errorf("storage: Finish called twice")
	}
	s.finished = true
	if len(s.runs) == 0 {
		s.sortBuf()
		s.releaseMem()
		return &memIter{rows: s.buf}, nil
	}
	if len(s.buf) > 0 {
		if err := s.spill(); err != nil {
			s.Discard()
			return nil, err
		}
	}
	// Hand run ownership to the iterator (newMergeIter removes them itself
	// on a failed open), so a later Discard cannot double-remove.
	runs := s.runs
	s.runs = nil
	return newMergeIter(runs, s.cmp)
}

// Discard removes any spilled runs of a sort that is being abandoned — the
// cleanup hook for error paths that stop feeding the sorter (an Add failure
// mid-stream, a cancelled scan). Safe to call at any time; after a
// successful Finish the iterator owns the runs and Discard is a no-op.
func (s *ExternalSorter) Discard() {
	for _, r := range s.runs {
		r.Remove()
	}
	s.runs = nil
	s.finished = true
	s.releaseMem()
}

// memIter iterates an in-memory sorted buffer.
type memIter struct {
	rows []table.Tuple
	pos  int
}

func (m *memIter) Next() (table.Tuple, bool, error) {
	if m.pos >= len(m.rows) {
		return nil, false, nil
	}
	t := m.rows[m.pos]
	m.pos++
	return t, true, nil
}

func (m *memIter) Close() error { return nil }

// mergeIter performs a k-way merge over sorted runs.
type mergeIter struct {
	cmp  TupleCompare
	runs []*HeapFile
	h    mergeHeap
}

type mergeEntry struct {
	t    table.Tuple
	scan *Scanner
	run  int // tie-break to keep the merge stable
}

type mergeHeap struct {
	entries []mergeEntry
	cmp     TupleCompare
}

func (h *mergeHeap) Len() int { return len(h.entries) }
func (h *mergeHeap) Less(i, j int) bool {
	c := h.cmp(h.entries[i].t, h.entries[j].t)
	if c != 0 {
		return c < 0
	}
	return h.entries[i].run < h.entries[j].run
}
func (h *mergeHeap) Swap(i, j int)      { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *mergeHeap) Push(x interface{}) { h.entries = append(h.entries, x.(mergeEntry)) }
func (h *mergeHeap) Pop() interface{} {
	n := len(h.entries)
	e := h.entries[n-1]
	h.entries = h.entries[:n-1]
	return e
}

func newMergeIter(runs []*HeapFile, cmp TupleCompare) (*mergeIter, error) {
	m := &mergeIter{cmp: cmp, runs: runs, h: mergeHeap{cmp: cmp}}
	for i, r := range runs {
		sc := r.NewScanner(nil)
		t, ok, err := sc.Next()
		if err != nil {
			m.Close()
			return nil, err
		}
		if ok {
			m.h.entries = append(m.h.entries, mergeEntry{t: t, scan: sc, run: i})
		}
	}
	heap.Init(&m.h)
	return m, nil
}

func (m *mergeIter) Next() (table.Tuple, bool, error) {
	if m.h.Len() == 0 {
		return nil, false, nil
	}
	top := m.h.entries[0]
	out := top.t
	nt, ok, err := top.scan.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		m.h.entries[0].t = nt
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
	return out, true, nil
}

func (m *mergeIter) Close() error {
	var firstErr error
	for _, r := range m.runs {
		if err := r.Remove(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.runs = nil
	return firstErr
}
