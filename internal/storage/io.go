package storage

import (
	"os"
	"sync/atomic"

	"repro/internal/fault"
)

// The fault hook. Every OS-level I/O call in this package funnels through
// the io* wrappers below, which consult a process-global *fault.IO. When no
// injector is installed (the production case) each wrapper costs one atomic
// pointer load and a nil check before the real syscall — no allocation, no
// lock, no indirection through an interface. When an injector is installed
// (chaos tests, CI smoke), the seeded fault.Plan decides per operation
// whether to fail, truncate, delay, or pass through, and transient faults
// are retried here with the policy's deterministic capped backoff before a
// query ever sees them.
//
// The sproutvet "iohook" analyzer enforces the funnel: raw os.* and
// (*os.File) I/O calls anywhere else in this package are build errors.

var activeIO atomic.Pointer[fault.IO]

// SetIO installs (or, with nil, removes) the package-global fault injector.
// Installation is atomic and may happen while files are open; subsequent
// operations on them are intercepted. Chaos tests install a seeded plan,
// run a workload, and must restore nil before returning.
func SetIO(io *fault.IO) { activeIO.Store(io) }

// CurrentIO returns the installed injector (nil when disarmed).
func CurrentIO() *fault.IO { return activeIO.Load() }

// withFaults runs op under the injector's schedule and retry policy.
// decide is consulted once per attempt so a transient rule burns out and
// the retry succeeds; hard faults surface immediately.
func withFaults(io *fault.IO, op fault.Op, path string, size int, fn func(short int) error) error {
	for attempt := 1; ; attempt++ {
		d := io.Plan.Decide(op, path, size)
		io.Pause(d.Delay)
		var err error
		if d.Err != nil {
			if d.Short >= 0 {
				// Torn page: persist the prefix for real, then fail, so the
				// on-disk state is genuinely corrupt for recovery paths.
				fn(d.Short)
			}
			err = d.Err
		} else {
			err = fn(-1)
		}
		if err == nil {
			return nil
		}
		if !fault.IsTransient(err) || !io.Retry.Enabled() || attempt >= io.Retry.MaxAttempts {
			return err
		}
		io.CountRetry()
		io.Pause(io.Retry.Backoff(io.Plan.Seed, attempt))
	}
}

//sproutvet:allow iohook io.go is the funnel: these wrappers are the only legal raw I/O sites

// ioCreate creates (truncating) a file through the fault plane.
func ioCreate(path string) (*os.File, error) {
	io := activeIO.Load()
	if io == nil {
		return os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	}
	var f *os.File
	err := withFaults(io, fault.OpCreate, path, 0, func(int) error {
		var e error
		f, e = os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		return e
	})
	return f, err
}

// ioOpen opens an existing file read-only through the fault plane.
func ioOpen(path string) (*os.File, error) {
	io := activeIO.Load()
	if io == nil {
		return os.Open(path)
	}
	var f *os.File
	err := withFaults(io, fault.OpOpen, path, 0, func(int) error {
		var e error
		f, e = os.Open(path)
		return e
	})
	return f, err
}

// ioWriteAt is (*os.File).WriteAt through the fault plane; short-write and
// torn-page faults persist a deterministic prefix before failing.
func ioWriteAt(f *os.File, path string, b []byte, off int64) error {
	io := activeIO.Load()
	if io == nil {
		_, err := f.WriteAt(b, off)
		return err
	}
	return withFaults(io, fault.OpWrite, path, len(b), func(short int) error {
		if short >= 0 {
			f.WriteAt(b[:short], off)
			return nil
		}
		_, err := f.WriteAt(b, off)
		return err
	})
}

// ioReadAt is (*os.File).ReadAt through the fault plane. The real read
// outcome (including io.EOF on a short tail read) passes through untouched
// so callers keep their existing EOF handling; only injected faults loop
// through the retry policy.
func ioReadAt(f *os.File, path string, b []byte, off int64) (int, error) {
	io := activeIO.Load()
	if io == nil {
		return f.ReadAt(b, off)
	}
	for attempt := 1; ; attempt++ {
		d := io.Plan.Decide(fault.OpRead, path, 0)
		io.Pause(d.Delay)
		if d.Err == nil {
			return f.ReadAt(b, off)
		}
		if !fault.IsTransient(d.Err) || !io.Retry.Enabled() || attempt >= io.Retry.MaxAttempts {
			return 0, d.Err
		}
		io.CountRetry()
		io.Pause(io.Retry.Backoff(io.Plan.Seed, attempt))
	}
}

// ioSync is (*os.File).Sync through the fault plane.
func ioSync(f *os.File, path string) error {
	io := activeIO.Load()
	if io == nil {
		return f.Sync()
	}
	return withFaults(io, fault.OpSync, path, 0, func(int) error {
		return f.Sync()
	})
}

// ioRemove is os.Remove through the fault plane. The unlink itself always
// happens: a caller's only recovery for a failed remove is to surface the
// error, and the chaos harness must be able to assert that no spill files
// survive a faulted run — so injected remove faults exercise the caller's
// error path without actually leaking the file.
func ioRemove(path string) error {
	io := activeIO.Load()
	if io == nil {
		return os.Remove(path)
	}
	realErr := os.Remove(path)
	for attempt := 1; ; attempt++ {
		d := io.Plan.Decide(fault.OpRemove, path, 0)
		io.Pause(d.Delay)
		if d.Err == nil {
			return realErr
		}
		if !fault.IsTransient(d.Err) || !io.Retry.Enabled() || attempt >= io.Retry.MaxAttempts {
			return d.Err
		}
		io.CountRetry()
		io.Pause(io.Retry.Backoff(io.Plan.Seed, attempt))
	}
}
