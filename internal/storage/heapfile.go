package storage

import (
	"fmt"
	"io"
	"os"

	"repro/internal/table"
)

// HeapFile is an unordered collection of pages in an OS file — the on-disk
// representation of a relation. Writes append tuples into the last page,
// allocating new pages as needed; reads go through a BufferPool so that
// repeated scans hit memory, mimicking the warm-cache setup of the paper's
// experiments (§VII).
type HeapFile struct {
	f        *os.File
	path     string
	numPages int64
	writePg  *Page // tail page being filled, nil when file is read-only
	writeNo  int64
	tuples   int64
	encBuf   []byte // reused Append encode buffer
}

// CreateHeapFile creates (truncating) a heap file at path.
func CreateHeapFile(path string) (*HeapFile, error) {
	f, err := ioCreate(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create heap file: %w", err)
	}
	h := &HeapFile{f: f, path: path, writePg: new(Page), writeNo: 0, numPages: 0}
	h.writePg.Reset()
	return h, nil
}

// OpenHeapFile opens an existing heap file for reading.
func OpenHeapFile(path string) (*HeapFile, error) {
	f, err := ioOpen(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open heap file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d not page-aligned", path, st.Size())
	}
	return &HeapFile{f: f, path: path, numPages: st.Size() / PageSize}, nil
}

// Path returns the file path.
func (h *HeapFile) Path() string { return h.path }

// NumPages returns the number of full pages written so far (excluding the
// in-progress tail page).
func (h *HeapFile) NumPages() int64 { return h.numPages }

// NumTuples returns the number of tuples appended via Append (write mode).
func (h *HeapFile) NumTuples() int64 { return h.tuples }

// Append encodes and stores a tuple. The encode buffer is owned by the file
// and reused across appends.
func (h *HeapFile) Append(t table.Tuple) error {
	if h.writePg == nil {
		return fmt.Errorf("storage: heap file %s is read-only", h.path)
	}
	h.encBuf = EncodeTuple(h.encBuf[:0], t)
	rec := h.encBuf
	if _, err := h.writePg.Insert(rec); err != nil {
		if !IsPageFull(err) {
			return err
		}
		if err := h.flushWritePage(); err != nil {
			return err
		}
		if _, err := h.writePg.Insert(rec); err != nil {
			return err
		}
	}
	h.tuples++
	return nil
}

func (h *HeapFile) flushWritePage() error {
	if err := ioWriteAt(h.f, h.path, h.writePg.Bytes(), h.writeNo*PageSize); err != nil {
		return fmt.Errorf("storage: flush page %d: %w", h.writeNo, err)
	}
	h.writeNo++
	h.numPages = h.writeNo
	h.writePg.Reset()
	return nil
}

// FinishWrites flushes the tail page and switches the file to read mode.
func (h *HeapFile) FinishWrites() error {
	if h.writePg == nil {
		return nil
	}
	if h.writePg.NumSlots() > 0 {
		if err := h.flushWritePage(); err != nil {
			return err
		}
	}
	h.writePg = nil
	return nil
}

// ReadPage reads page no into dst.
func (h *HeapFile) ReadPage(no int64, dst *Page) error {
	if no < 0 || no >= h.numPages {
		return fmt.Errorf("storage: page %d out of range [0,%d)", no, h.numPages)
	}
	if _, err := ioReadAt(h.f, h.path, dst.Bytes(), no*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", no, err)
	}
	return nil
}

// Close closes the underlying file (flushing pending writes first).
func (h *HeapFile) Close() error {
	if err := h.FinishWrites(); err != nil {
		h.f.Close()
		return err
	}
	return h.f.Close()
}

// Sync flushes the file to stable storage — the durability barrier callers
// place after FinishWrites when the file must survive a crash.
func (h *HeapFile) Sync() error {
	if err := ioSync(h.f, h.path); err != nil {
		return fmt.Errorf("storage: sync %s: %w", h.path, err)
	}
	return nil
}

// Remove closes and deletes the file; used for temp spill files.
func (h *HeapFile) Remove() error {
	if err := h.f.Close(); err != nil {
		ioRemove(h.path)
		return err
	}
	return ioRemove(h.path)
}

// scanArenaBlock is how many decoded values a scanner allocates per arena
// block; tuples wider than this fall back to a direct allocation.
const scanArenaBlock = 4096

// Scanner iterates the tuples of a heap file in storage order, fetching
// pages through a buffer pool when one is supplied. Decoded tuples draw
// their value storage from a per-scanner arena — one allocation per
// scanArenaBlock values instead of one per tuple — and stay valid for the
// life of the program (arena blocks are never reused), so callers may
// retain them without cloning.
type Scanner struct {
	h      *HeapFile
	pool   *BufferPool
	page   *Page
	pinned *Frame
	pageNo int64
	slot   int
	arena  []table.Value
	arity  int // widest tuple seen, for arena refill sizing
}

// NewScanner returns a scanner positioned before the first tuple. pool may
// be nil, in which case pages are read directly (used by temp files that are
// scanned exactly once).
func (h *HeapFile) NewScanner(pool *BufferPool) *Scanner {
	return &Scanner{h: h, pool: pool, pageNo: -1}
}

// Next returns the next tuple, or ok=false at end of file.
func (s *Scanner) Next() (table.Tuple, bool, error) {
	rec, ok, err := s.NextRaw()
	if err != nil || !ok {
		return nil, false, err
	}
	if len(s.arena) < s.arity && s.arity <= scanArenaBlock {
		s.arena = make([]table.Value, scanArenaBlock)
	}
	t, rest, _, err := DecodeTupleArena(rec, s.arena)
	if err != nil {
		return nil, false, err
	}
	s.arena = rest
	if len(t) > s.arity {
		s.arity = len(t)
	}
	return t, true, nil
}

// NextRaw returns the next encoded record without decoding it — the
// columnar scan's entry point, which decodes the fields straight into
// column vectors (see FieldIter). The returned bytes alias the current page
// and stay valid only until the scan advances past it; callers must copy
// whatever they retain before the next page boundary.
func (s *Scanner) NextRaw() ([]byte, bool, error) {
	for {
		if s.page != nil && s.slot < s.page.NumSlots() {
			rec, err := s.page.Record(s.slot)
			if err != nil {
				return nil, false, err
			}
			s.slot++
			return rec, true, nil
		}
		// Advance to the next page.
		if s.pinned != nil {
			s.pool.Unpin(s.pinned)
			s.pinned = nil
		}
		s.pageNo++
		if s.pageNo >= s.h.numPages {
			s.page = nil
			return nil, false, nil
		}
		if s.pool != nil {
			fr, err := s.pool.Fetch(s.h, s.pageNo)
			if err != nil {
				return nil, false, err
			}
			s.pinned = fr
			s.page = fr.Page()
		} else {
			if s.page == nil {
				s.page = new(Page)
			}
			if err := s.h.ReadPage(s.pageNo, s.page); err != nil {
				return nil, false, err
			}
		}
		s.slot = 0
	}
}

// Close releases any pinned page.
func (s *Scanner) Close() {
	if s.pinned != nil {
		s.pool.Unpin(s.pinned)
		s.pinned = nil
	}
}
