package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the size of every page, matching PostgreSQL's default 8 KiB.
const PageSize = 8192

// Page layout:
//
//	[0:2)  uint16 slot count
//	[2:4)  uint16 free-space offset (start of tuple data region, grows down)
//	then the slot array (4 bytes per slot: uint16 offset, uint16 length)
//	growing up from byte 4, and tuple payloads growing down from PageSize.
//
// This is the classic slotted-page organization used by disk-based DBMSs.
type Page struct {
	buf [PageSize]byte
}

const pageHeaderSize = 4
const slotSize = 4

// Reset makes the page empty.
func (p *Page) Reset() {
	binary.LittleEndian.PutUint16(p.buf[0:2], 0)
	binary.LittleEndian.PutUint16(p.buf[2:4], PageSize)
}

// NumSlots returns the number of tuples stored in the page.
func (p *Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.buf[0:2]))
}

func (p *Page) freeOffset() int {
	return int(binary.LittleEndian.Uint16(p.buf[2:4]))
}

// FreeSpace returns the number of payload bytes that still fit (accounting
// for the new slot entry).
func (p *Page) FreeSpace() int {
	free := p.freeOffset() - (pageHeaderSize + p.NumSlots()*slotSize) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert stores an encoded tuple and returns its slot number. It fails when
// the page lacks space (caller then allocates a new page) or the record
// exceeds what any empty page can hold.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > PageSize-pageHeaderSize-slotSize {
		return 0, fmt.Errorf("storage: record of %d bytes exceeds page capacity", len(rec))
	}
	if len(rec) > p.FreeSpace() {
		return 0, errPageFull
	}
	n := p.NumSlots()
	newOff := p.freeOffset() - len(rec)
	copy(p.buf[newOff:], rec)
	slotPos := pageHeaderSize + n*slotSize
	binary.LittleEndian.PutUint16(p.buf[slotPos:], uint16(newOff))
	binary.LittleEndian.PutUint16(p.buf[slotPos+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(p.buf[0:2], uint16(n+1))
	binary.LittleEndian.PutUint16(p.buf[2:4], uint16(newOff))
	return n, nil
}

var errPageFull = fmt.Errorf("storage: page full")

// IsPageFull reports whether err signals that the record did not fit.
func IsPageFull(err error) bool { return err == errPageFull }

// Record returns the payload bytes of slot i (aliasing the page buffer).
func (p *Page) Record(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, fmt.Errorf("storage: slot %d out of range (page has %d)", i, p.NumSlots())
	}
	slotPos := pageHeaderSize + i*slotSize
	off := int(binary.LittleEndian.Uint16(p.buf[slotPos:]))
	length := int(binary.LittleEndian.Uint16(p.buf[slotPos+2:]))
	if off+length > PageSize {
		return nil, fmt.Errorf("storage: corrupt slot %d", i)
	}
	return p.buf[off : off+length], nil
}

// Bytes exposes the raw page for I/O.
func (p *Page) Bytes() []byte { return p.buf[:] }
