package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/table"
)

// installIO installs a fault injector for the test and restores the
// disarmed state on cleanup.
func installIO(t *testing.T, io *fault.IO) {
	t.Helper()
	SetIO(io)
	t.Cleanup(func() { SetIO(nil) })
}

// TestInjectedWriteFaultSurfacesTyped: a scheduled write fault reaches the
// caller as a typed *fault.Injected error, and the failed spill leaves no
// run files behind.
func TestInjectedWriteFaultSurfacesTyped(t *testing.T) {
	dir := t.TempDir()
	installIO(t, &fault.IO{Plan: fault.NewPlan(1,
		fault.Rule{Op: fault.OpWrite, Nth: 2, Kind: fault.KindENOSPC})})
	s := NewExternalSorter(func(a, b table.Tuple) int {
		return table.Compare(a[0], b[0])
	}, 4, dir)
	var addErr error
	for i := 0; i < 64 && addErr == nil; i++ {
		addErr = s.Add(table.Tuple{table.Int(int64(i)), table.Str("padpadpad")})
	}
	if addErr == nil {
		t.Fatal("expected an injected spill failure")
	}
	if !fault.IsInjected(addErr) {
		t.Fatalf("error %v is not typed as injected", addErr)
	}
	s.Discard()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill files leaked after injected failure: %v", entries)
	}
}

// TestTransientFaultRetriedInsideStorage: a transient write fault with a
// retry policy never surfaces — the wrapper retries, the rule has burned
// out, and the spill succeeds; the retry is counted.
func TestTransientFaultRetriedInsideStorage(t *testing.T) {
	dir := t.TempDir()
	var slept []time.Duration
	io := &fault.IO{
		Plan: fault.NewPlan(7,
			fault.Rule{Op: fault.OpWrite, Nth: 1, Kind: fault.KindErr, Transient: true}),
		Retry: fault.Retry{MaxAttempts: 3, Base: time.Microsecond, Max: time.Millisecond},
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	installIO(t, io)
	h, err := CreateHeapFile(filepath.Join(dir, "t.heap"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ { // enough tuples to flush a page
		if err := h.Append(table.Tuple{table.Int(int64(i)), table.Str("xxxxxxxx")}); err != nil {
			t.Fatalf("append %d: %v (transient fault must be absorbed)", i, err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if io.Retries() != 1 {
		t.Fatalf("retries = %d, want 1", io.Retries())
	}
	if len(slept) == 0 {
		t.Fatal("retry must back off through the injected sleeper")
	}
}

// TestHardFaultNotRetried: a non-transient fault fails immediately even
// with a retry policy installed.
func TestHardFaultNotRetried(t *testing.T) {
	dir := t.TempDir()
	io := &fault.IO{
		Plan: fault.NewPlan(7,
			fault.Rule{Op: fault.OpCreate, Kind: fault.KindENOSPC, Count: 100}),
		Retry: fault.Retry{MaxAttempts: 5, Base: time.Microsecond},
		Sleep: func(time.Duration) {},
	}
	installIO(t, io)
	if _, err := CreateHeapFile(filepath.Join(dir, "t.heap")); !fault.IsInjected(err) {
		t.Fatalf("got %v, want injected fault", err)
	}
	if io.Retries() != 0 {
		t.Fatalf("hard fault was retried %d times", io.Retries())
	}
}

// TestTornPagePersistsPrefix: a torn-page fault really writes a prefix of
// the page before failing, so recovery paths face genuine corruption.
func TestTornPagePersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.heap")
	installIO(t, &fault.IO{Plan: fault.NewPlan(99,
		fault.Rule{Op: fault.OpWrite, Nth: 1, Kind: fault.KindTornPage})})
	h, err := CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wErr error
	for i := 0; i < 600 && wErr == nil; i++ {
		wErr = h.Append(table.Tuple{table.Int(int64(i)), table.Str("xxxxxxxx")})
	}
	if wErr == nil {
		t.Fatal("expected torn-page failure on first page flush")
	}
	var inj *fault.Injected
	if !errors.As(wErr, &inj) || inj.Kind != fault.KindTornPage {
		t.Fatalf("error %v is not a torn-page fault", wErr)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= PageSize {
		t.Fatalf("torn page wrote %d bytes, want a strict prefix of %d", st.Size(), PageSize)
	}
	h.Remove()
}

// TestScanAbortUnpinsPages: a scan that stops mid-file (injected read
// fault) leaves zero pinned frames once closed — the chaos harness's
// pinned-page invariant in miniature.
func TestScanAbortUnpinsPages(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scan.heap")
	h, err := CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ { // several pages
		if err := h.Append(table.Tuple{table.Int(int64(i)), table.Str("xxxxxxxx")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	installIO(t, &fault.IO{Plan: fault.NewPlan(3,
		fault.Rule{Op: fault.OpRead, Nth: 2, Kind: fault.KindErr})})
	pool := NewBufferPool(8)
	sc := h.NewScanner(pool)
	var scanErr error
	for {
		_, ok, err := sc.Next()
		if err != nil {
			scanErr = err
			break
		}
		if !ok {
			break
		}
	}
	sc.Close()
	if !fault.IsInjected(scanErr) {
		t.Fatalf("scan error %v, want injected read fault", scanErr)
	}
	if n := pool.Pinned(); n != 0 {
		t.Errorf("%d frames still pinned after aborted scan", n)
	}
}

// TestGovernedSorterSpillsEarly: under a tight governor the sorter spills
// before its tuple budget and the accounting balances back to zero.
func TestGovernedSorterSpillsEarly(t *testing.T) {
	dir := t.TempDir()
	g := fault.NewGovernor(memChunk, nil) // one chunk: pressure almost immediately
	s := NewExternalSorter(func(a, b table.Tuple) int {
		return table.Compare(a[0], b[0])
	}, 1<<20, dir) // tuple budget effectively infinite
	s.Govern(g)
	for i := 0; i < 5000; i++ {
		if err := s.Add(table.Tuple{table.Int(int64(i)), table.Str("xxxxxxxx")}); err != nil {
			t.Fatal(err)
		}
	}
	if s.EarlySpills() == 0 {
		t.Fatal("governed sorter never spilled early under pressure")
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	n := 0
	for {
		tup, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if tup[0].I < prev {
			t.Fatalf("output out of order at %d", n)
		}
		prev = tup[0].I
		n++
	}
	if n != 5000 {
		t.Fatalf("sorted %d tuples, want 5000", n)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if g.Used() != 0 {
		t.Fatalf("governor unbalanced after sort: %d", g.Used())
	}
	if !g.Pressured() {
		t.Fatal("governor must report pressure")
	}
}
