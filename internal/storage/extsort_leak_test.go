package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/table"
)

// spillDirEntries lists the files left in a spill dir.
func spillDirEntries(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

// TestDiscardRemovesAbandonedRuns: a sorter abandoned mid-stream (the Add
// loop stops on an upstream error) must not leak its spilled runs.
func TestDiscardRemovesAbandonedRuns(t *testing.T) {
	dir := t.TempDir()
	s := NewExternalSorter(func(a, b table.Tuple) int {
		return table.Compare(a[0], b[0])
	}, 8, dir)
	for i := 0; i < 50; i++ {
		if err := s.Add(table.Tuple{table.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() == 0 {
		t.Fatal("expected spilled runs")
	}
	if len(spillDirEntries(t, dir)) == 0 {
		t.Fatal("runs should be on disk before Discard")
	}
	s.Discard()
	if got := spillDirEntries(t, dir); len(got) != 0 {
		t.Errorf("spill files left after Discard: %v", got)
	}
	if _, err := s.Finish(); err == nil {
		t.Error("Finish after Discard must fail (sorter is finished)")
	}
}

// TestAddFailureCleanup: when a later spill fails (the spill dir vanished),
// Discard still removes nothing twice and the dir holds no sorter files.
func TestAddFailureCleanup(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "spills")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	s := NewExternalSorter(func(a, b table.Tuple) int {
		return table.Compare(a[0], b[0])
	}, 8, dir)
	for i := 0; i < 10; i++ {
		if err := s.Add(table.Tuple{table.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() != 1 {
		t.Fatalf("expected exactly one spill, got %d", s.Spills())
	}
	// Simulate a failing spill device: drop the directory (removing run 0
	// with it), then overflow the budget again.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	var addErr error
	for i := 10; i < 30 && addErr == nil; i++ {
		addErr = s.Add(table.Tuple{table.Int(int64(i))})
	}
	if addErr == nil {
		t.Fatal("expected a spill failure after the dir vanished")
	}
	s.Discard() // must not panic or recreate anything
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("spill dir unexpectedly exists: %v", err)
	}
}

// TestFinishFinalSpillFailureCleansRuns: Finish spills the tail buffer; when
// that last spill fails, the earlier runs must be removed, not leaked.
func TestFinishFinalSpillFailureCleansRuns(t *testing.T) {
	dir := t.TempDir()
	s := NewExternalSorter(func(a, b table.Tuple) int {
		return table.Compare(a[0], b[0])
	}, 8, dir)
	for i := 0; i < 20; i++ { // 2 full runs + a 4-tuple tail buffer
		if err := s.Add(table.Tuple{table.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() != 2 {
		t.Fatalf("expected two spills, got %d", s.Spills())
	}
	// Make the final spill fail: point the sorter at a dir that does not
	// exist. The already-spilled runs still live in the real dir and must
	// be removed by Finish's error path.
	s.tmpDir = filepath.Join(dir, "gone")
	if _, err := s.Finish(); err == nil {
		t.Fatal("expected Finish to fail on the tail spill")
	}
	if got := spillDirEntries(t, dir); len(got) != 0 {
		t.Errorf("runs leaked after failed Finish: %v", got)
	}
}

// TestConcurrentSortersShareDir: sorters spilling concurrently into one dir
// must not collide on run-file names (regression: the prefix was pid-only,
// so parallel partition sorts truncated each other's runs).
func TestConcurrentSortersShareDir(t *testing.T) {
	dir := t.TempDir()
	const sorters, rows = 8, 100
	results := make([][]int64, sorters)
	errs := make(chan error, sorters)
	done := make(chan struct{})
	for s := 0; s < sorters; s++ {
		go func(s int) {
			defer func() { done <- struct{}{} }()
			srt := NewExternalSorter(func(a, b table.Tuple) int {
				return table.Compare(a[0], b[0])
			}, 8, dir)
			for i := rows - 1; i >= 0; i-- {
				if err := srt.Add(table.Tuple{table.Int(int64(s*1000 + i))}); err != nil {
					errs <- err
					return
				}
			}
			it, err := srt.Finish()
			if err != nil {
				errs <- err
				return
			}
			defer it.Close()
			for {
				tup, ok, err := it.Next()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					return
				}
				results[s] = append(results[s], tup[0].I)
			}
		}(s)
	}
	for s := 0; s < sorters; s++ {
		<-done
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for s := 0; s < sorters; s++ {
		if len(results[s]) != rows {
			t.Fatalf("sorter %d: %d rows, want %d", s, len(results[s]), rows)
		}
		for i, v := range results[s] {
			if v != int64(s*1000+i) {
				t.Fatalf("sorter %d: row %d = %d, want %d (cross-sorter corruption)", s, i, v, s*1000+i)
			}
		}
	}
	if got := spillDirEntries(t, dir); len(got) != 0 {
		t.Errorf("spill files left behind: %v", got)
	}
}

// TestMidMergeFailureCleansRuns: a run file corrupted between spill and
// merge surfaces as an iterator error, and Close still removes every run.
func TestMidMergeFailureCleansRuns(t *testing.T) {
	dir := t.TempDir()
	s := NewExternalSorter(func(a, b table.Tuple) int {
		return table.Compare(a[0], b[0])
	}, 8, dir)
	for i := 0; i < 24; i++ {
		if err := s.Add(table.Tuple{table.Int(int64(23 - i))}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spills() < 2 {
		t.Fatalf("expected at least two spills, got %d", s.Spills())
	}
	// Corrupt the first run's page payload so tuple decoding fails
	// mid-merge.
	path := s.runs[0].Path()
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 64)
	for i := range garbage {
		garbage[i] = 0xFF
	}
	if _, err := f.WriteAt(garbage, 16); err != nil {
		t.Fatal(err)
	}
	f.Close()

	it, err := s.Finish()
	if err != nil {
		// Corruption may already surface while opening the merge; runs
		// must be gone either way.
		if got := spillDirEntries(t, dir); len(got) != 0 {
			t.Errorf("runs leaked after failed Finish: %v", got)
		}
		return
	}
	var iterErr error
	for {
		_, ok, err := it.Next()
		if err != nil {
			iterErr = err
			break
		}
		if !ok {
			break
		}
	}
	if iterErr == nil {
		t.Fatal("expected a decode error from the corrupted run")
	}
	if err := it.Close(); err != nil {
		t.Logf("Close after corruption: %v", err)
	}
	if got := spillDirEntries(t, dir); len(got) != 0 {
		t.Errorf("runs leaked after mid-merge failure: %v", got)
	}
}
