package storage

import (
	"math/rand"
	"path/filepath"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

func sampleTuple(i int) table.Tuple {
	return table.Tuple{
		table.Int(int64(i)),
		table.Str("name-" + string(rune('a'+i%26))),
		table.Float(float64(i) / 3),
		table.Bool(i%2 == 0),
		table.Null(),
	}
}

func tuplesEqual(a, b table.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !table.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		orig := sampleTuple(i)
		buf := EncodeTuple(nil, orig)
		got, n, err := DecodeTuple(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if !tuplesEqual(orig, got) {
			t.Fatalf("round trip mismatch: %v vs %v", orig, got)
		}
	}
}

func TestCodecEmptyTuple(t *testing.T) {
	buf := EncodeTuple(nil, table.Tuple{})
	got, _, err := DecodeTuple(buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty tuple round trip failed: %v %v", got, err)
	}
}

func TestCodecCorruptInput(t *testing.T) {
	if _, _, err := DecodeTuple([]byte{}); err == nil {
		t.Error("decoding empty buffer should fail")
	}
	if _, _, err := DecodeTuple([]byte{2, byte(table.KindFloat), 1, 2}); err == nil {
		t.Error("decoding truncated float should fail")
	}
	if _, _, err := DecodeTuple([]byte{1, 99}); err == nil {
		t.Error("decoding unknown kind should fail")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(i int64, s string, fl float64, b bool) bool {
		orig := table.Tuple{table.Int(i), table.Str(s), table.Float(fl), table.Bool(b)}
		buf := EncodeTuple(nil, orig)
		got, _, err := DecodeTuple(buf)
		if err != nil {
			return false
		}
		// NaN compares equal to itself under Compare? It does not via <,>;
		// restrict to non-NaN floats which quick rarely generates anyway.
		if fl != fl {
			return true
		}
		return tuplesEqual(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPageInsertAndRead(t *testing.T) {
	p := new(Page)
	p.Reset()
	var recs [][]byte
	for i := 0; ; i++ {
		rec := EncodeTuple(nil, sampleTuple(i))
		_, err := p.Insert(rec)
		if IsPageFull(err) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if p.NumSlots() != len(recs) {
		t.Fatalf("NumSlots = %d, want %d", p.NumSlots(), len(recs))
	}
	if len(recs) < 100 {
		t.Fatalf("expected hundreds of small tuples per 8KiB page, got %d", len(recs))
	}
	for i, want := range recs {
		got, err := p.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := p.Record(len(recs)); err == nil {
		t.Error("out-of-range slot should error")
	}
}

func TestPageRejectsOversizeRecord(t *testing.T) {
	p := new(Page)
	p.Reset()
	if _, err := p.Insert(make([]byte, PageSize)); err == nil || IsPageFull(err) {
		t.Error("oversize record should be a hard error, not page-full")
	}
}

func TestHeapFileWriteReadScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.heap")
	h, err := CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if err := h.Append(sampleTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	if h.NumTuples() != n {
		t.Fatalf("NumTuples = %d", h.NumTuples())
	}
	if h.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NumPages())
	}
	sc := h.NewScanner(nil)
	count := 0
	for {
		tup, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if !tuplesEqual(tup, sampleTuple(count)) {
			t.Fatalf("tuple %d mismatch: %v", count, tup)
		}
		count++
	}
	if count != n {
		t.Fatalf("scanned %d tuples, want %d", count, n)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open read-only and scan through a buffer pool.
	h2, err := OpenHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if err := h2.Append(sampleTuple(0)); err == nil {
		t.Error("append to read-only heap file should fail")
	}
	pool := NewBufferPool(2)
	sc2 := h2.NewScanner(pool)
	defer sc2.Close()
	count = 0
	for {
		_, ok, err := sc2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != n {
		t.Fatalf("pooled scan saw %d tuples, want %d", count, n)
	}
}

func TestBufferPoolHitsAndEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.heap")
	h, err := CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := h.Append(sampleTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.NumPages() < 3 {
		t.Fatalf("need ≥3 pages, got %d", h.NumPages())
	}
	pool := NewBufferPool(2)
	// Fetch page 0 twice: second time must be a hit.
	fr, err := pool.Fetch(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(fr)
	fr, err = pool.Fetch(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(fr)
	hits, misses := pool.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	// Touch pages 1 and 2: page 0 must be evicted (capacity 2).
	for _, no := range []int64{1, 2} {
		fr, err := pool.Fetch(h, no)
		if err != nil {
			t.Fatal(err)
		}
		pool.Unpin(fr)
	}
	fr, err = pool.Fetch(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(fr)
	_, misses = pool.Stats()
	if misses != 4 {
		t.Fatalf("misses=%d, want 4 (page 0 was evicted)", misses)
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.heap")
	h, err := CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := h.Append(sampleTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.FinishWrites(); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	pool := NewBufferPool(1)
	fr, err := pool.Fetch(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Fetch(h, 1); err == nil {
		t.Error("fetch with all frames pinned should fail")
	}
	pool.Unpin(fr)
	if _, err := pool.Fetch(h, 1); err != nil {
		t.Errorf("fetch after unpin should succeed: %v", err)
	}
}

func cmpFirstInt(a, b table.Tuple) int { return table.Compare(a[0], b[0]) }

func TestExternalSortInMemory(t *testing.T) {
	s := NewExternalSorter(cmpFirstInt, 1000, t.TempDir())
	for _, v := range []int64{5, 3, 9, 1} {
		if err := s.Add(table.Tuple{table.Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	want := []int64{1, 3, 5, 9}
	for _, w := range want {
		tup, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("Next: ok=%v err=%v", ok, err)
		}
		if tup[0].I != w {
			t.Fatalf("got %d, want %d", tup[0].I, w)
		}
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("iterator should be exhausted")
	}
	if s.Spills() != 0 {
		t.Errorf("small input should not spill, got %d runs", s.Spills())
	}
}

func TestExternalSortSpilling(t *testing.T) {
	const n = 10000
	r := rand.New(rand.NewSource(7))
	s := NewExternalSorter(cmpFirstInt, 512, t.TempDir())
	vals := make([]int, n)
	for i := range vals {
		vals[i] = r.Intn(100000)
		if err := s.Add(table.Tuple{table.Int(int64(vals[i])), table.Str("payload")}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if s.Spills() < 2 {
		t.Fatalf("expected multiple spilled runs, got %d", s.Spills())
	}
	slices.Sort(vals)
	for i := 0; i < n; i++ {
		tup, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
		if tup[0].I != int64(vals[i]) {
			t.Fatalf("position %d: got %d, want %d", i, tup[0].I, vals[i])
		}
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("iterator should be exhausted")
	}
}

func TestExternalSortStability(t *testing.T) {
	// Equal keys must retain insertion order within and across runs.
	s := NewExternalSorter(cmpFirstInt, 4, t.TempDir())
	for i := 0; i < 20; i++ {
		if err := s.Add(table.Tuple{table.Int(int64(i % 2)), table.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	lastSeq := map[int64]int64{0: -1, 1: -1}
	for {
		tup, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		k, seq := tup[0].I, tup[1].I
		if seq <= lastSeq[k] {
			t.Fatalf("stability violated for key %d: %d after %d", k, seq, lastSeq[k])
		}
		lastSeq[k] = seq
	}
}

func TestQuickExternalSortMatchesSortSlice(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(300)
		vals := make([]int, n)
		s := NewExternalSorter(cmpFirstInt, 16, t.TempDir())
		for i := range vals {
			vals[i] = r.Intn(50)
			if err := s.Add(table.Tuple{table.Int(int64(vals[i]))}); err != nil {
				t.Fatal(err)
			}
		}
		it, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		slices.Sort(vals)
		for i := 0; i < n; i++ {
			tup, ok, err := it.Next()
			if err != nil || !ok || tup[0].I != int64(vals[i]) {
				return false
			}
		}
		_, ok, _ := it.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
