// Package benchutil regenerates the paper's experiments (Figs. 9-13 and the
// §VI case-study table) on the TPC-H-like substrate. Each experiment is a
// function returning structured rows, shared by cmd/sprout-bench and the
// testing.B benchmarks at the repository root.
package benchutil

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/signature"
	"repro/internal/storage"
	"repro/internal/table"
	"repro/internal/tpch"
)

// timedRun executes a plan once for warm-up and then reports the best of
// `reps` timed executions — the paper reports warm-cache averages over ten
// identical runs (§VII); the minimum of a few runs is the standard
// low-variance equivalent at our scale.
func timedRun(catalog *plan.Catalog, q *query.Query, sigma *fd.Set, spec plan.Spec, reps int) (*plan.Result, time.Duration, error) {
	res, err := plan.Run(catalog, q.Clone(), sigma, spec)
	if err != nil {
		return nil, 0, err
	}
	best := res.Stats.Total()
	for i := 0; i < reps; i++ {
		r, err := plan.Run(catalog, q.Clone(), sigma, spec)
		if err != nil {
			return nil, 0, err
		}
		if t := r.Stats.Total(); t < best {
			best = t
			res = r
		}
	}
	return res, best, nil
}

// Fig9Row compares the three plan families on one query (paper Fig. 9).
type Fig9Row struct {
	Query      string
	MystiQ     time.Duration
	Eager      time.Duration
	Lazy       time.Duration
	MystiQErr  string // MystiQ runtime failures (§VII) are reported, not fatal
	LazyVsMyst float64
}

// Fig9 runs the lazy/eager/MystiQ comparison over the Fig. 9 queries.
func Fig9(d *tpch.Data) ([]Fig9Row, error) {
	catalog := d.Catalog()
	queries := tpch.Catalog()
	var rows []Fig9Row
	for _, name := range tpch.Fig9Queries() {
		e := queries[name]
		row := Fig9Row{Query: name}
		sigma := tpch.FDsFor(e)

		if _, best, err := timedRun(catalog, e.Q, sigma, plan.Spec{Style: plan.SafeMystiQ}, 2); err != nil {
			row.MystiQErr = err.Error()
		} else {
			row.MystiQ = best
		}
		_, best, err := timedRun(catalog, e.Q, sigma, plan.Spec{Style: plan.Eager}, 2)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s eager: %w", name, err)
		}
		row.Eager = best
		_, best, err = timedRun(catalog, e.Q, sigma, plan.Spec{Style: plan.Lazy}, 2)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s lazy: %w", name, err)
		}
		row.Lazy = best
		if row.Lazy > 0 && row.MystiQ > 0 {
			row.LazyVsMyst = float64(row.MystiQ) / float64(row.Lazy)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10Row splits a lazy plan's time into answer-tuple computation and
// probability computation (paper Fig. 10).
type Fig10Row struct {
	Query     string
	TupleTime time.Duration
	ProbTime  time.Duration
	Answers   int64
	Distinct  int64
}

// Fig10 times lazy plans for the remaining 18 queries.
func Fig10(d *tpch.Data) ([]Fig10Row, error) {
	catalog := d.Catalog()
	queries := tpch.Catalog()
	var rows []Fig10Row
	for _, name := range tpch.Fig10Queries() {
		e := queries[name]
		res, _, err := timedRun(catalog, e.Q, tpch.FDsFor(e), plan.Spec{Style: plan.Lazy}, 2)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", name, err)
		}
		rows = append(rows, Fig10Row{
			Query:     name,
			TupleTime: res.Stats.TupleTime,
			ProbTime:  res.Stats.ProbTime,
			Answers:   res.Stats.AnswerTuples,
			Distinct:  res.Stats.DistinctTuples,
		})
	}
	return rows, nil
}

// Fig11Row is one selectivity point of the lazy/eager rendez-vous
// experiment (paper Fig. 11).
type Fig11Row struct {
	Selectivity float64
	LazyA       time.Duration
	EagerA      time.Duration
	LazyB       time.Duration
	EagerB      time.Duration
}

// fig11QueryA is A = π_name(Nation ⋈_nkey σ_acctbal<ct(Supp) ⋈_skey Psupp).
func fig11QueryA(ct float64) *query.Query {
	return &query.Query{
		Name: "A",
		Head: []string{"nname"},
		Rels: []query.RelRef{
			query.Rel("Nation", "nkey", "nname", "rkey"),
			query.Rel("Supp", "skey", "sname", "nkey", "sacctbal"),
			query.Rel("Psupp", "pkey", "skey", "scost", "aqty"),
		},
		Sels: []query.Selection{
			{Rel: "Supp", Attr: "sacctbal", Op: engine.OpLt, Val: table.Float(ct)},
		},
	}
}

// fig11QueryB is B = π_{ckey,name}(Cust ⋈_ckey σ_{odate<'1996-09-01', price<ct}(Ord)).
func fig11QueryB(ct float64) *query.Query {
	return &query.Query{
		Name: "B",
		Head: []string{"ckey", "cname"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname", "nkey", "cacctbal", "mkt"),
			query.Rel("Ord", "okey", "ckey", "odate", "oprice", "opri"),
		},
		Sels: []query.Selection{
			{Rel: "Ord", Attr: "odate", Op: engine.OpLt, Val: table.Str("1996-09-01")},
			{Rel: "Ord", Attr: "oprice", Op: engine.OpLt, Val: table.Float(ct)},
		},
	}
}

// Fig11 sweeps the selectivity of the constant selections from lo to hi in
// the given number of points and times lazy vs eager plans for queries A
// and B. Selectivity p means ct is chosen so that ≈ p·n tuples qualify
// (both filtered attributes are uniformly distributed by the generator).
func Fig11(d *tpch.Data, points int) ([]Fig11Row, error) {
	catalog := d.Catalog()
	sigma := tpch.FDs()
	var rows []Fig11Row
	for i := 0; i < points; i++ {
		p := float64(i+1) / float64(points+1)
		// sacctbal is uniform in [-999.99, 9999]; oprice in [1000, 455000].
		ctA := -999.99 + p*(9999.0-(-999.99))
		ctB := 1000 + p*454000
		row := Fig11Row{Selectivity: p}
		for _, style := range []plan.Style{plan.Lazy, plan.Eager} {
			_, best, err := timedRun(catalog, fig11QueryA(ctA), sigma, plan.Spec{Style: style}, 1)
			if err != nil {
				return nil, fmt.Errorf("fig11 A %v: %w", style, err)
			}
			if style == plan.Lazy {
				row.LazyA = best
			} else {
				row.EagerA = best
			}
			_, best, err = timedRun(catalog, fig11QueryB(ctB), sigma, plan.Spec{Style: style}, 1)
			if err != nil {
				return nil, fmt.Errorf("fig11 B %v: %w", style, err)
			}
			if style == plan.Lazy {
				row.LazyB = best
			} else {
				row.EagerB = best
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig12Row compares hybrid plans against the extremes (paper Fig. 12).
type Fig12Row struct {
	Query       string
	Eager       time.Duration
	Lazy        time.Duration
	Hybrid      time.Duration
	EagerHybrid float64
	LazyHybrid  float64
}

// fig12QueryC is C = π_{ckey,name}(Cust ⋈_ckey σ_{odate<'1992-01-31'}(Ord) ⋈_okey Item).
func fig12QueryC() *query.Query {
	return &query.Query{
		Name: "C",
		Head: []string{"ckey", "cname"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname", "nkey", "cacctbal", "mkt"),
			query.Rel("Ord", "okey", "ckey", "odate", "oprice", "opri"),
			query.Rel("Item", "okey", "pkey", "skey", "qty", "price", "discount", "sdate", "smode", "rflag"),
		},
		Sels: []query.Selection{
			{Rel: "Ord", Attr: "odate", Op: engine.OpLt, Val: table.Str("1992-01-31")},
		},
	}
}

// fig12QueryD is D = π_nkey(Nation ⋈_nkey σ_acctbal<600(Supp) ⋈_skey Psupp).
func fig12QueryD() *query.Query {
	q := fig11QueryA(600)
	q.Name = "D"
	q.Head = []string{"nkey"}
	return q
}

// Fig12 times eager, lazy and hybrid plans for queries C and D.
func Fig12(d *tpch.Data) ([]Fig12Row, error) {
	catalog := d.Catalog()
	sigma := tpch.FDs()
	var rows []Fig12Row
	for _, q := range []*query.Query{fig12QueryC(), fig12QueryD()} {
		row := Fig12Row{Query: q.Name}
		for _, style := range []plan.Style{plan.Eager, plan.Lazy, plan.Hybrid} {
			_, best, err := timedRun(catalog, q, sigma, plan.Spec{Style: style, HybridPrefix: 2}, 2)
			if err != nil {
				return nil, fmt.Errorf("fig12 %s %v: %w", q.Name, style, err)
			}
			switch style {
			case plan.Eager:
				row.Eager = best
			case plan.Lazy:
				row.Lazy = best
			case plan.Hybrid:
				row.Hybrid = best
			}
		}
		if row.Hybrid > 0 {
			row.EagerHybrid = float64(row.Eager) / float64(row.Hybrid)
			row.LazyHybrid = float64(row.Lazy) / float64(row.Hybrid)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig13Row quantifies the effect of FDs on the operator (paper Fig. 13).
type Fig13Row struct {
	Query      string
	SeqScan    time.Duration
	Sort       time.Duration
	OpNoFDs    time.Duration
	OpWithFDs  time.Duration
	ScansNoFDs int
	ScansFDs   int
	Answers    int64
	Distinct   int64
}

// Fig13 measures, per query: a sequential scan of the materialized answer,
// one sort in the operator's order, and the confidence operator with the
// conservative (all-starred, "no FDs") signature vs. the FD-refined one.
func Fig13(d *tpch.Data) ([]Fig13Row, error) {
	catalog := d.Catalog()
	queries := tpch.Catalog()
	var rows []Fig13Row
	for _, name := range []string{"2", "7", "11", "B3"} {
		e := queries[name]
		sigma := tpch.FDsFor(e)
		refined, err := signature.WithFDs(e.Q, sigma)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s: %w", name, err)
		}
		conservative := signature.Conservative(refined)

		answer, err := plan.Answer(catalog, e.Q)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s answer: %w", name, err)
		}
		row := Fig13Row{Query: name, Answers: int64(answer.Len())}

		// Sequential scan of the materialized answer.
		t0 := stopwatchStart()
		scanned, err := engine.Count(engine.NewMemScan(answer))
		if err != nil {
			return nil, err
		}
		_ = scanned
		row.SeqScan = stopwatchSplit(t0)

		// One sort in the operator's order (all columns as key is a fair
		// stand-in: data columns followed by variable columns).
		allCols := make([]int, answer.Schema.Len())
		for i := range allCols {
			allCols[i] = i
		}
		t0 = stopwatchStart()
		sorter := storage.NewExternalSorter(func(a, b table.Tuple) int {
			return table.CompareOn(a, b, allCols)
		}, 0, "")
		for _, r := range answer.Rows {
			if err := sorter.Add(r); err != nil {
				return nil, err
			}
		}
		it, err := sorter.Finish()
		if err != nil {
			return nil, err
		}
		for {
			_, ok, err := it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		it.Close()
		row.Sort = stopwatchSplit(t0)

		// Operator without FD refinement (conservative signature).
		t0 = stopwatchStart()
		_, stats, err := conf.ComputeStats(cloneRel(answer), conservative, conf.Options{})
		if err != nil {
			return nil, fmt.Errorf("fig13 %s no-FD operator: %w", name, err)
		}
		row.OpNoFDs = stopwatchSplit(t0)
		row.ScansNoFDs = stats.Scans

		// Operator with the FD-refined signature.
		t0 = stopwatchStart()
		out, stats, err := conf.ComputeStats(cloneRel(answer), refined, conf.Options{})
		if err != nil {
			return nil, fmt.Errorf("fig13 %s FD operator: %w", name, err)
		}
		row.OpWithFDs = stopwatchSplit(t0)
		row.ScansFDs = stats.Scans
		row.Distinct = int64(out.Len())
		rows = append(rows, row)
	}
	return rows, nil
}

func cloneRel(r *table.Relation) *table.Relation {
	c := *r
	return &c
}

// CaseStudy renders the §VI classification of the query catalog.
func CaseStudy() string {
	var b strings.Builder
	cls := tpch.Classify()
	slices.SortFunc(cls, func(a, b tpch.Classification) int { return strings.Compare(a.Name, b.Name) })
	fmt.Fprintf(&b, "%-5s %-10s %-10s %-8s %-7s %s\n", "query", "hier(noFD)", "hier(FDs)", "1scan", "#scans", "signature with FDs")
	hierNo, hierFD := 0, 0
	for _, c := range cls {
		if c.Unsupported != "" {
			fmt.Fprintf(&b, "%-5s unsupported: %s\n", c.Name, c.Unsupported)
			continue
		}
		if c.HierNoFDs {
			hierNo++
		}
		if c.HierWithFDs {
			hierFD++
		}
		fmt.Fprintf(&b, "%-5s %-10v %-10v %-8v %-7d %s\n",
			c.Name, c.HierNoFDs, c.HierWithFDs, c.OneScanWithFDs, c.NumScansWithFDs, c.SignatureWithFDs)
	}
	fmt.Fprintf(&b, "\nhierarchical without FDs: %d; with TPC-H keys: %d (of %d evaluable entries)\n",
		hierNo, hierFD, len(cls))
	return b.String()
}
