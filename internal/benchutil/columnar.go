package benchutil

import (
	"fmt"
	"os"
	"time"

	"repro/internal/plan"
	"repro/internal/tpch"
)

// ColumnarRow is one (query, execution tier) measurement of the vectorized
// execution experiment: the same plan run through the row engine and through
// the columnar tier, over disk-resident heap files.
type ColumnarRow struct {
	Query string
	Exec  string // "row" or "columnar"
	Wall  time.Duration
	Tuple time.Duration
	Prob  time.Duration
	// Answers is the number of distinct answer tuples.
	Answers int64
	// Speedup is the row tier's tuple-phase time over this row's (reported
	// on the columnar rows; 1.0 on the row rows).
	Speedup float64
	// Identical reports that every confidence is bit-identical to the row
	// run of the same query — the columnar tier's correctness promise.
	Identical bool
}

// Columnar measures the vectorized execution tier against the row engine on
// scan-heavy catalog queries, end to end through secondary storage: the
// generated instance is persisted as heap files (plus the statistics
// sidecar), opened as a disk-resident catalog whose scans page tuples
// through a bounded buffer pool, and each query runs once tuple-at-a-time
// (Spec.RowExec) and once through the columnar tier. Confidences must be
// bit-identical across the tiers; only the wall-clock may differ. queries
// defaults to scan-dominated entries when nil.
func Columnar(d *tpch.Data, queries []string, poolPages, reps int) ([]ColumnarRow, error) {
	if len(queries) == 0 {
		queries = []string{"1", "B6", "15"}
	}
	if reps < 1 {
		reps = 1
	}
	dir, err := os.MkdirTemp("", "sprout-columnar-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := d.WriteHeapFiles(dir); err != nil {
		return nil, fmt.Errorf("benchutil: columnar: writing heap files: %w", err)
	}
	catalog, _, closeFiles, err := tpch.OpenDiskCatalog(dir, poolPages)
	if err != nil {
		return nil, fmt.Errorf("benchutil: columnar: opening disk catalog: %w", err)
	}
	defer closeFiles()

	cat := tpch.Catalog()
	var rows []ColumnarRow
	for _, name := range queries {
		e, ok := cat[name]
		if !ok || e.Q == nil {
			return nil, fmt.Errorf("benchutil: columnar: unknown or unsupported catalog query %q", name)
		}
		sigma := tpch.FDsFor(e)
		rowRes, rowWall, err := timedRun(catalog, e.Q, sigma, plan.Spec{Style: plan.Lazy, RowExec: true}, reps)
		if err != nil {
			return nil, fmt.Errorf("benchutil: columnar %s row: %w", name, err)
		}
		colRes, colWall, err := timedRun(catalog, e.Q, sigma, plan.Spec{Style: plan.Lazy}, reps)
		if err != nil {
			return nil, fmt.Errorf("benchutil: columnar %s columnar: %w", name, err)
		}
		same, err := sameConfidences(rowRes, colRes)
		if err != nil {
			return nil, fmt.Errorf("benchutil: columnar %s: %w", name, err)
		}
		rows = append(rows, ColumnarRow{
			Query: name, Exec: "row",
			Wall: rowWall, Tuple: rowRes.Stats.TupleTime, Prob: rowRes.Stats.ProbTime,
			Answers: rowRes.Stats.DistinctTuples, Speedup: 1, Identical: true,
		})
		speedup := 0.0
		if colRes.Stats.TupleTime > 0 {
			speedup = float64(rowRes.Stats.TupleTime) / float64(colRes.Stats.TupleTime)
		}
		rows = append(rows, ColumnarRow{
			Query: name, Exec: "columnar",
			Wall: colWall, Tuple: colRes.Stats.TupleTime, Prob: colRes.Stats.ProbTime,
			Answers: colRes.Stats.DistinctTuples, Speedup: speedup, Identical: same,
		})
	}
	return rows, nil
}
