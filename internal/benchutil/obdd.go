package benchutil

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fd"
	"repro/internal/obdd"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/tpch"
)

// OBDDRow is one measurement of the OBDD-vs-Monte-Carlo comparison on the
// unsafe query.
type OBDDRow struct {
	Budget     int           // OBDD node budget (0 = default)
	Answers    int64         // distinct answer tuples
	Nodes      int64         // OBDD nodes + anytime expansion steps
	Bounded    bool          // some answers only bounded, not exact
	MaxWidth   float64       // widest certified interval (0 when all exact)
	TupleTime  time.Duration // answer-tuple computation (shared pipeline)
	OBDDTime   time.Duration // OBDD confidence computation
	MemoHits   int64         // OBDD compilation memo hits
	MemoMisses int64         // OBDD compilation memo misses
	MCTime     time.Duration // Monte Carlo confidence computation (ε = 0.05)
	MCSamples  int64         // Monte Carlo samples drawn
	MeanAbsErr float64       // mean |MC estimate − OBDD confidence| per answer
	MaxAbsErr  float64       // worst per-answer deviation
}

// OBDDUnsafe runs the unsafe-query scenario π{odate}(Cust ⋈ Ord ⋈ Item)
// with no FDs declared — rejected by every exact style — under the OBDD
// style for each node budget, and once under the Monte Carlo style as the
// comparison point. Because the generated data satisfies okey → ckey even
// when the dependency is not declared, the per-date lineage is read-once
// and the OBDD compiles linearly: the OBDD tier turns PR 1's (ε, δ)
// estimates into exact confidences, and the error columns report how far
// the estimates actually strayed.
func OBDDUnsafe(d *tpch.Data, budgets []int) ([]OBDDRow, error) {
	catalog := d.Catalog()
	sigma := fd.NewSet()
	if _, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, plan.Spec{Style: plan.Lazy, RequireExact: true}); err == nil {
		return nil, fmt.Errorf("benchutil: unsafe query unexpectedly has an exact plan")
	}
	mc, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, plan.Spec{
		Style: plan.MonteCarlo,
		MC:    prob.MCOptions{Epsilon: 0.05, Delta: 0.01, Seed: 1},
	})
	if err != nil {
		return nil, err
	}

	var rows []OBDDRow
	for _, budget := range budgets {
		res, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, plan.Spec{
			Style: plan.OBDD,
			OBDD:  obdd.Options{NodeBudget: budget},
		})
		if err != nil {
			return nil, err
		}
		row := OBDDRow{
			Budget:     budget,
			Answers:    res.Stats.DistinctTuples,
			Nodes:      res.Stats.OBDDNodes,
			Bounded:    res.Stats.Approximate,
			MaxWidth:   res.Stats.MaxWidth,
			TupleTime:  res.Stats.TupleTime,
			OBDDTime:   res.Stats.ProbTime,
			MemoHits:   res.Stats.MemoHits,
			MemoMisses: res.Stats.MemoMisses,
			MCTime:     mc.Stats.ProbTime,
			MCSamples:  mc.Stats.Samples,
		}
		if mc.Rows.Len() != res.Rows.Len() {
			return nil, fmt.Errorf("benchutil: OBDD and MC disagree on answer count: %d vs %d", res.Rows.Len(), mc.Rows.Len())
		}
		ci := res.Rows.Schema.Len() - 1
		var sum float64
		for i := range res.Rows.Rows {
			dev := math.Abs(res.Rows.Rows[i][ci].F - mc.Rows.Rows[i][ci].F)
			sum += dev
			if dev > row.MaxAbsErr {
				row.MaxAbsErr = dev
			}
		}
		if n := res.Rows.Len(); n > 0 {
			row.MeanAbsErr = sum / float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
