package benchutil

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/table"
	"repro/internal/tpch"
)

// AutoRow is one (query, style) measurement of the adaptive-planner
// experiment: the full TPC-H suite run under the Auto style and under every
// fixed style it chooses among, so BENCH_*.json can track planner quality
// (chosen style, Auto's wall-clock vs. the best fixed style) over time.
type AutoRow struct {
	Query string
	Style string // "auto" or the fixed style name
	// Chosen is, for auto rows, the style the planner dispatched.
	Chosen string
	// Cost is, for auto rows, the cost model's estimate of the chosen plan.
	Cost float64
	Wall time.Duration
	// Identical is, for auto rows, whether the confidences are
	// bit-identical to the chosen style's direct run (must always hold).
	Identical bool
	// Err records per-style runtime failures (MystiQ's §VII failures are
	// data, not errors of the experiment).
	Err string
}

// autoSuiteStyles returns the fixed styles compared against Auto for one
// query: the styles Auto chooses among (exact sort+scan styles and OBDD
// when a hierarchical signature exists, OBDD and Monte Carlo when not),
// plus the MystiQ baseline.
func autoSuiteStyles(costs []plan.CostEstimate) []plan.Style {
	var out []plan.Style
	for _, ce := range costs {
		if ce.Candidate || (ce.Applicable && ce.Style == plan.SafeMystiQ) {
			out = append(out, ce.Style)
		}
	}
	return out
}

// AutoSuite runs every supported catalog query under the Auto style and
// under each fixed style it chooses among, with identical options (seed 1,
// default ε/δ/budget). For every query it verifies that Auto's confidences
// are bit-identical to the chosen style's direct run; the per-style
// wall-clocks let the harness check Auto against the best fixed style.
func AutoSuite(d *tpch.Data, reps int) ([]AutoRow, error) {
	catalog := d.Catalog()
	catalog.Analyze()
	entries := tpch.Catalog()
	names := make([]string, 0, len(entries))
	for n, e := range entries {
		if e.Q != nil {
			names = append(names, n)
		}
	}
	slices.Sort(names)

	var rows []AutoRow
	for _, name := range names {
		e := entries[name]
		sigma := tpch.FDsFor(e)
		mkSpec := func(style plan.Style) plan.Spec {
			return plan.Spec{Style: style, MC: prob.MCOptions{Seed: 1}}
		}

		_, costs, err := plan.ChooseStyle(catalog, e.Q.Clone(), sigma, mkSpec(plan.Auto))
		if err != nil {
			return nil, fmt.Errorf("auto %s: choose: %w", name, err)
		}

		autoRes, autoWall, err := timedRun(catalog, e.Q, sigma, mkSpec(plan.Auto), reps)
		if err != nil {
			return nil, fmt.Errorf("auto %s: %w", name, err)
		}
		chosen := autoRes.Stats.ChosenStyle
		autoRow := AutoRow{
			Query:  name,
			Style:  "auto",
			Chosen: chosen,
			Cost:   autoRes.Stats.EstimatedCost,
			Wall:   autoWall,
		}

		for _, style := range autoSuiteStyles(costs) {
			res, wall, err := timedRun(catalog, e.Q, sigma, mkSpec(style), reps)
			if err != nil {
				rows = append(rows, AutoRow{Query: name, Style: style.String(), Err: err.Error()})
				continue
			}
			if style.String() == chosen {
				autoRow.Identical = sameRelations(autoRes.Rows, res.Rows)
				if !autoRow.Identical {
					return nil, fmt.Errorf("auto %s: confidences differ from direct %s run", name, chosen)
				}
			}
			rows = append(rows, AutoRow{Query: name, Style: style.String(), Wall: wall})
		}
		rows = append(rows, autoRow)
	}
	return rows, nil
}

// sameRelations reports bit-identical equality of two answer relations
// (same rows, same order, same values — confidences included).
func sameRelations(a, b *table.Relation) bool {
	if a.Len() != b.Len() || !a.Schema.Equal(b.Schema) {
		return false
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
	}
	return true
}
