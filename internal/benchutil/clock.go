package benchutil

import "time"

// benchutil is a measurement harness: wall-clock readings are its output,
// not a correctness hazard. They are still funneled through these helpers
// so sproutvet's detrand check documents the one place nondeterminism
// enters — a new direct time.Now call elsewhere in the package trips the
// analyzer and has to either use the funnel or justify itself.

// stopwatchStart is time.Now for benchmark phase measurement.
func stopwatchStart() time.Time {
	return time.Now() //sproutvet:allow detrand benchmark harness measures wall time; readings are reported, never fed into results
}

// stopwatchSplit is time.Since for benchmark phase measurement.
func stopwatchSplit(t0 time.Time) time.Duration {
	return time.Since(t0) //sproutvet:allow detrand benchmark harness measures wall time; readings are reported, never fed into results
}
