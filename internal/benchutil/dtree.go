package benchutil

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dtree"
	"repro/internal/fd"
	"repro/internal/obdd"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/tpch"
)

// BlocksDNF builds the "interleaved blocks" lineage class: k variable-
// disjoint blocks, each the complete bipartite product of two x-variables
// and two y-variables — in DNF, the four clauses x_i ∧ y_j, i.e. block_b ≡
// (x₁∨x₂)(y₁∨y₂) — OR-ed together. The clauses are emitted (i, j)-major and
// block-minor, so the occurrence-derived variable order interleaves all k
// blocks; an OBDD under that order must track every unfinished block's
// residual simultaneously (three live states per block) and its width
// reaches ~3^k. A d-tree, by contrast, is order-free: independent-OR splits
// the k blocks apart in one step and each block resolves in a handful of
// Shannon steps. This is the benchmark class where the OBDD tier exceeds
// its default node budget while the d-tree tier stays exact.
//
// The blocks are variable-disjoint, so the exact probability has a closed
// form, returned as the oracle:
//
//	Pr[φ] = 1 - Π_b (1 - Pr[block_b]),
//	Pr[block_b] = (1-(1-p(x₁))(1-p(x₂))) · (1-(1-p(y₁))(1-p(y₂)))
func BlocksDNF(k int) (*prob.DNF, *prob.Assignment, float64) {
	a := prob.NewAssignment()
	pv := func(v prob.Var) float64 { return 0.30 + 0.05*float64((int(v)-1)%8) }
	for v := prob.Var(1); v <= prob.Var(4*k); v++ {
		a.MustSet(v, pv(v))
	}
	d := &prob.DNF{}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for b := 0; b < k; b++ {
				x := prob.Var(4*b + 1 + i)
				y := prob.Var(4*b + 3 + j)
				d.Add(prob.NewClause(x, y))
			}
		}
	}
	truth := 1.0
	for b := 0; b < k; b++ {
		x1, x2 := prob.Var(4*b+1), prob.Var(4*b+2)
		y1, y2 := prob.Var(4*b+3), prob.Var(4*b+4)
		px := 1 - (1-pv(x1))*(1-pv(x2))
		py := 1 - (1-pv(y1))*(1-pv(y2))
		truth *= 1 - px*py
	}
	return d, a, 1 - truth
}

// DTreeBlocksRow is one measurement of the OBDD-vs-d-tree comparison on the
// interleaved-blocks lineage class.
type DTreeBlocksRow struct {
	Blocks     int     // number of variable-disjoint blocks (4 vars each)
	Vars       int     // total variables
	Clauses    int     // total DNF clauses
	Truth      float64 // closed-form exact probability
	OBDDExact  bool    // OBDD tier compiled exactly under the default budget
	OBDDNodes  int     // OBDD nodes + anytime expansion steps
	OBDDWidth  float64 // hi-lo of the OBDD tier's certified interval
	DTreeExact bool    // d-tree tier resolved exactly
	DTreeNodes int     // d-tree decomposition steps
	DTreeErr   float64 // |d-tree P − closed form|
}

// DTreeBlocks compiles the interleaved-blocks class under both lineage
// tiers (occurrence order, default options) for each block count. Past
// ~11 blocks the OBDD's interleaved width 3^k crosses the default node
// budget and its interval opens up, while the d-tree stays exact in a few
// dozen decomposition steps.
func DTreeBlocks(ks []int) ([]DTreeBlocksRow, error) {
	var rows []DTreeBlocksRow
	for _, k := range ks {
		d, a, truth := BlocksDNF(k)
		or, err := obdd.Prob(d, a, obdd.OccurrenceOrder(d, nil), obdd.Options{})
		if err != nil {
			return nil, err
		}
		dr := dtree.Prob(d, a, dtree.Options{})
		diff := dr.P - truth
		if diff < 0 {
			diff = -diff
		}
		rows = append(rows, DTreeBlocksRow{
			Blocks:     k,
			Vars:       4 * k,
			Clauses:    len(d.Clauses),
			Truth:      truth,
			OBDDExact:  or.Exact,
			OBDDNodes:  or.Nodes,
			OBDDWidth:  or.Hi - or.Lo,
			DTreeExact: dr.Exact,
			DTreeNodes: dr.Nodes,
			DTreeErr:   diff,
		})
	}
	return rows, nil
}

// DTreeUnsafeRow is one measurement of the d-tree-vs-Monte-Carlo comparison
// on the unsafe query.
type DTreeUnsafeRow struct {
	Budget     int           // d-tree step budget (0 = default)
	Answers    int64         // distinct answer tuples
	Steps      int64         // d-tree decomposition steps across all answers
	Bounded    bool          // some answers only bounded, not exact
	MaxWidth   float64       // widest certified interval (0 when all exact)
	DTreeTime  time.Duration // d-tree confidence computation
	MCTime     time.Duration // Monte Carlo confidence computation (ε = 0.05)
	MCSamples  int64         // Monte Carlo samples drawn
	MeanAbsErr float64       // mean |MC estimate − d-tree confidence| per answer
	MaxAbsErr  float64       // worst per-answer deviation
}

// DTreeUnsafe runs the unsafe-query scenario π{odate}(Cust ⋈ Ord ⋈ Item)
// with no FDs declared under the DTree style for each step budget, and once
// under the Monte Carlo style as the comparison point — the order-free
// counterpart of OBDDUnsafe. The per-date lineage decomposes without
// Shannon blow-up, so the d-tree tier is exact under the default budget and
// the error columns report how far the (ε, δ) estimates actually strayed.
func DTreeUnsafe(d *tpch.Data, budgets []int) ([]DTreeUnsafeRow, error) {
	catalog := d.Catalog()
	sigma := fd.NewSet()
	if _, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, plan.Spec{Style: plan.Lazy, RequireExact: true}); err == nil {
		return nil, fmt.Errorf("benchutil: unsafe query unexpectedly has an exact plan")
	}
	mc, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, plan.Spec{
		Style: plan.MonteCarlo,
		MC:    prob.MCOptions{Epsilon: 0.05, Delta: 0.01, Seed: 1},
	})
	if err != nil {
		return nil, err
	}

	var rows []DTreeUnsafeRow
	for _, budget := range budgets {
		res, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, plan.Spec{
			Style: plan.DTree,
			DTree: dtree.Options{NodeBudget: budget},
		})
		if err != nil {
			return nil, err
		}
		row := DTreeUnsafeRow{
			Budget:    budget,
			Answers:   res.Stats.DistinctTuples,
			Steps:     res.Stats.DTreeNodes,
			Bounded:   res.Stats.Approximate,
			MaxWidth:  res.Stats.MaxWidth,
			DTreeTime: res.Stats.ProbTime,
			MCTime:    mc.Stats.ProbTime,
			MCSamples: mc.Stats.Samples,
		}
		if mc.Rows.Len() != res.Rows.Len() {
			return nil, fmt.Errorf("benchutil: d-tree and MC disagree on answer count: %d vs %d", res.Rows.Len(), mc.Rows.Len())
		}
		ci := res.Rows.Schema.Len() - 1
		var sum float64
		for i := range res.Rows.Rows {
			dev := math.Abs(res.Rows.Rows[i][ci].F - mc.Rows.Rows[i][ci].F)
			sum += dev
			if dev > row.MaxAbsErr {
				row.MaxAbsErr = dev
			}
		}
		if n := res.Rows.Len(); n > 0 {
			row.MeanAbsErr = sum / float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
