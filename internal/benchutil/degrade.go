package benchutil

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/conf"
	"repro/internal/plan"
	"repro/internal/table"
	"repro/internal/tpch"
)

// DegradeRow is one point of the deadline-degradation sweep: an unsafe
// catalog query run under a deadline watermark that leaves the confidence
// tiers a fixed fraction of the exact run's wall clock. Small allowances
// must yield certified [Lo, Hi] bounds with Stats.Degraded set — never a
// context.DeadlineExceeded — and generous allowances must converge back to
// the exact answer.
type DegradeRow struct {
	Query string
	// Frac is the time allowance as a fraction of the exact run's wall
	// clock; Allowance is the resulting absolute budget (0 means the
	// watermark has already passed when the tiers arm, forcing an
	// immediate stop at the cheap certified bounds).
	Frac      float64
	Allowance time.Duration
	Wall      time.Duration
	Degraded  bool
	Reason    string
	// Lo/Hi are the run-level certified bounds (every true confidence
	// lies within them); Width is Hi-Lo, 0 on exact runs.
	Lo, Hi  float64
	Width   float64
	Answers int64
	// Contains verifies the degradation contract against the fault-free
	// exact run: on a degraded run, every exact confidence lies inside
	// [Lo, Hi]; on an exact run, the confidences match to 1e-12 (a
	// tripped watermark can resolve trivial lineages through the
	// cheap-bounds path, whose evaluation order differs from the full
	// compile by an ulp). Identical additionally reports bit-identity.
	Contains  bool
	Identical bool
}

// degradeKey renders a row's head values (everything but the confidence
// column) as a comparison key.
func degradeKey(row table.Tuple, confCol int) string {
	parts := make([]string, 0, len(row)-1)
	for i, v := range row {
		if i == confCol {
			continue
		}
		parts = append(parts, v.String())
	}
	return strings.Join(parts, "|")
}

// Degrade sweeps the deadline watermark over unsafe catalog queries
// (lineage compilation, no exact sort+scan plan even with FDs) and records
// how the anytime bounds tighten as the allowance grows. The context
// deadline itself is always generous — the sweep moves the watermark, i.e.
// the instant the confidence tiers must stop and certify, from "already
// passed at arm time" (Frac 0) to "after the exact computation would have
// finished" (Frac > 1). queries defaults to the unsafe entries; fractions
// defaults to a 0–4× sweep.
func Degrade(d *tpch.Data, queries []string, fractions []float64) ([]DegradeRow, error) {
	if len(queries) == 0 {
		queries = []string{"5", "9"}
	}
	if len(fractions) == 0 {
		fractions = []float64{0, 0.1, 0.25, 0.5, 1, 4}
	}
	catalog := d.Catalog()
	cat := tpch.Catalog()
	var rows []DegradeRow
	for _, name := range queries {
		e, ok := cat[name]
		if !ok || e.Q == nil {
			return nil, fmt.Errorf("benchutil: degrade: unknown or unsupported catalog query %q", name)
		}
		sigma := tpch.FDsFor(e)

		base, baseWall, err := timedRun(catalog, e.Q, sigma, plan.Spec{Style: plan.Lazy}, 2)
		if err != nil {
			return nil, fmt.Errorf("benchutil: degrade %s baseline: %w", name, err)
		}
		if base.Stats.Approximate {
			return nil, fmt.Errorf("benchutil: degrade %s: baseline did not compile exactly", name)
		}
		ci := base.Rows.Schema.MustColIndex(conf.ConfCol)
		truth := make(map[string]float64, base.Rows.Len())
		for _, row := range base.Rows.Rows {
			truth[degradeKey(row, ci)] = row[ci].F
		}

		for _, f := range fractions {
			allowance := time.Duration(f * float64(baseWall))
			// The watermark is measured back from the context deadline:
			// deadline-watermark is when the tiers stop. A generous
			// deadline keeps the tuple phase itself from ever failing.
			deadline := 20*baseWall + 10*time.Second
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			start := stopwatchStart()
			res, err := plan.RunContext(ctx, catalog, e.Q.Clone(), sigma,
				plan.Spec{Style: plan.Lazy, Watermark: deadline - allowance})
			wall := stopwatchSplit(start)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("benchutil: degrade %s frac %g: must degrade, not fail: %w", name, f, err)
			}
			row := DegradeRow{
				Query: name, Frac: f, Allowance: allowance, Wall: wall,
				Degraded: res.Stats.Degraded, Reason: res.Stats.DegradeReason,
				Lo: res.Stats.LowerBound, Hi: res.Stats.UpperBound,
				Answers: res.Stats.DistinctTuples,
			}
			rci := res.Rows.Schema.MustColIndex(conf.ConfCol)
			if res.Stats.Approximate {
				row.Width = row.Hi - row.Lo
				row.Contains = res.Rows.Len() == base.Rows.Len() &&
					row.Lo >= -1e-9 && row.Hi <= 1+1e-9 && row.Lo <= row.Hi+1e-9
				for _, r := range res.Rows.Rows {
					tv, ok := truth[degradeKey(r, rci)]
					if !ok || tv < row.Lo-1e-9 || tv > row.Hi+1e-9 {
						row.Contains = false
					}
				}
			} else {
				row.Contains = res.Rows.Len() == base.Rows.Len()
				row.Identical = row.Contains
				for _, r := range res.Rows.Rows {
					tv, ok := truth[degradeKey(r, rci)]
					if !ok || tv-r[rci].F > 1e-12 || r[rci].F-tv > 1e-12 {
						row.Contains = false
					}
					if !ok || fmt.Sprintf("%x", tv) != fmt.Sprintf("%x", r[rci].F) {
						row.Identical = false
					}
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
