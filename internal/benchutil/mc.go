package benchutil

import (
	"fmt"
	"time"

	"repro/internal/fd"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/tpch"
)

// UnsafeQuery returns π{odate}(Cust ⋈ Ord ⋈ Item) — the Introduction's
// query shape on the real TPC-H schema, where Item has no ckey column. Its
// effective join attributes ckey (Cust, Ord) and okey (Ord, Item) meet in
// Ord with incomparable relation sets, so without the okey → ckey key
// dependency no hierarchical signature exists and exact confidence
// computation is off the table (#P-hard, §II). Run against an empty FD set
// it is the workload of the Monte Carlo plan: one lineage DNF per order
// date, estimated in parallel.
func UnsafeQuery() *query.Query {
	return &query.Query{
		Name: "mc-unsafe",
		Head: []string{"odate"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname", "nkey", "cacctbal", "mkt"),
			query.Rel("Ord", "okey", "ckey", "odate", "oprice", "opri"),
			query.Rel("Item", "okey", "pkey", "skey", "qty", "price", "discount", "sdate", "smode", "rflag"),
		},
	}
}

// MCRow is one measurement of the Monte Carlo plan on the unsafe query.
type MCRow struct {
	Epsilon   float64
	Delta     float64
	Answers   int64         // distinct answer tuples (order dates)
	Tuples    int64         // answer tuples before grouping
	Samples   int64         // Monte Carlo samples drawn across all answers
	TupleTime time.Duration // join + materialization
	ProbTime  time.Duration // lineage collection + estimation
}

// MonteCarloUnsafe runs the unsafe-query scenario: it first verifies that
// every exact style rejects the query under an empty FD set (the scenario's
// premise), then times the Monte Carlo plan across the given ε points.
func MonteCarloUnsafe(d *tpch.Data, epsilons []float64, delta float64) ([]MCRow, error) {
	catalog := d.Catalog()
	sigma := fd.NewSet()
	if _, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, plan.Spec{Style: plan.Lazy, RequireExact: true}); err == nil {
		return nil, fmt.Errorf("benchutil: unsafe query unexpectedly has an exact plan")
	}
	var rows []MCRow
	for _, eps := range epsilons {
		res, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, plan.Spec{
			Style: plan.MonteCarlo,
			MC:    prob.MCOptions{Epsilon: eps, Delta: delta, Seed: 1},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, MCRow{
			Epsilon:   eps,
			Delta:     delta,
			Answers:   res.Stats.DistinctTuples,
			Tuples:    res.Stats.AnswerTuples,
			Samples:   res.Stats.Samples,
			TupleTime: res.Stats.TupleTime,
			ProbTime:  res.Stats.ProbTime,
		})
	}
	return rows, nil
}
