package benchutil

import (
	"fmt"
	"time"

	"repro/internal/fd"
	"repro/internal/plan"
	"repro/internal/prob"
	"repro/internal/tpch"
)

// ParallelRow is one (style, worker count) measurement of the scaling
// experiment on the unsafe TPC-H query.
type ParallelRow struct {
	Style   string
	Workers int
	Wall    time.Duration // best end-to-end wall-clock over the reps
	Answers int64
	// Speedup is workers=1's wall-clock over this row's (1.0 for the
	// workers=1 row itself).
	Speedup float64
	// Identical reports that every confidence is bit-identical to the
	// workers=1 run of the same style — the engine's determinism promise.
	Identical bool
}

// ParallelScaling runs the unsafe-query scenario π{odate}(Cust ⋈ Ord ⋈ Item)
// (no FDs declared, so no exact sort+scan plan exists) under each style for
// each worker count, verifying that the confidences do not depend on the
// worker count and reporting the wall-clock scaling. Styles defaults to
// {mc, obdd} — the two tiers that carry unsafe queries — when nil.
func ParallelScaling(d *tpch.Data, workerCounts []int, styles []plan.Style, reps int) ([]ParallelRow, error) {
	if len(styles) == 0 {
		styles = []plan.Style{plan.MonteCarlo, plan.OBDD}
	}
	if reps < 1 {
		reps = 1
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	// The workers=1 run anchors both the speedup ratio and the determinism
	// check: normalize the sweep so 1 exists, comes first, and no count is
	// measured twice.
	counts := []int{1}
	seen := map[int]bool{1: true}
	for _, w := range workerCounts {
		if w > 0 && !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	workerCounts = counts
	catalog := d.Catalog()
	sigma := fd.NewSet()
	if _, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, plan.Spec{Style: plan.Lazy, RequireExact: true}); err == nil {
		return nil, fmt.Errorf("benchutil: unsafe query unexpectedly has an exact plan")
	}
	var rows []ParallelRow
	for _, style := range styles {
		var base *plan.Result // workers=1 reference run
		var baseWall time.Duration
		for _, w := range workerCounts {
			spec := plan.Spec{
				Style:   style,
				Workers: w,
				MC:      prob.MCOptions{Epsilon: 0.02, Delta: 0.01, Seed: 1},
			}
			var best *plan.Result
			var bestWall time.Duration
			for r := 0; r < reps; r++ {
				t0 := stopwatchStart()
				res, err := plan.Run(catalog, UnsafeQuery().Clone(), sigma, spec)
				if err != nil {
					return nil, fmt.Errorf("benchutil: parallel %s workers=%d: %w", style, w, err)
				}
				if wall := stopwatchSplit(t0); best == nil || wall < bestWall {
					best, bestWall = res, wall
				}
			}
			row := ParallelRow{
				Style:   style.String(),
				Workers: w,
				Wall:    bestWall,
				Answers: best.Stats.DistinctTuples,
			}
			if base == nil {
				base, baseWall = best, bestWall
				row.Speedup = 1
				row.Identical = true
			} else {
				row.Speedup = float64(baseWall) / float64(bestWall)
				same, err := sameConfidences(base, best)
				if err != nil {
					return nil, fmt.Errorf("benchutil: parallel %s workers=%d: %w", style, w, err)
				}
				row.Identical = same
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// sameConfidences compares two results answer by answer, keyed by the data
// columns (both results are sorted on them), requiring bit-identical
// confidence values.
func sameConfidences(a, b *plan.Result) (bool, error) {
	if a.Rows.Len() != b.Rows.Len() {
		return false, fmt.Errorf("answer counts differ: %d vs %d", a.Rows.Len(), b.Rows.Len())
	}
	n := a.Rows.Schema.Len()
	if n != b.Rows.Schema.Len() {
		return false, fmt.Errorf("schemas differ")
	}
	for i := range a.Rows.Rows {
		ra, rb := a.Rows.Rows[i], b.Rows.Rows[i]
		for j := 0; j < n; j++ {
			if ra[j] != rb[j] {
				return false, nil
			}
		}
	}
	return true, nil
}
