package benchutil

import (
	"strings"
	"testing"

	"repro/internal/tpch"
)

// tiny returns a small deterministic instance for harness smoke tests.
func tiny() *tpch.Data {
	return tpch.Generate(tpch.Config{SF: 0.002, Seed: 99})
}

func TestFig9Harness(t *testing.T) {
	rows, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tpch.Fig9Queries()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Lazy <= 0 || r.Eager <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Query, r)
		}
		if r.MystiQErr == "" && r.MystiQ <= 0 {
			t.Errorf("%s: MystiQ neither timed nor failed", r.Query)
		}
	}
}

func TestFig10Harness(t *testing.T) {
	rows, err := Fig10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tpch.Fig10Queries()) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Distinct > r.Answers {
			t.Errorf("%s: distinct %d > answers %d", r.Query, r.Distinct, r.Answers)
		}
	}
}

func TestFig11Harness(t *testing.T) {
	rows, err := Fig11(tiny(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Selectivity <= rows[i-1].Selectivity {
			t.Error("selectivities must increase")
		}
	}
}

func TestFig12Harness(t *testing.T) {
	rows, err := Fig12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Query != "C" || rows[1].Query != "D" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestFig13Harness(t *testing.T) {
	rows, err := Fig13(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The FD-refined operator never needs more scans than the
		// conservative one; for these queries it is single-scan (§VII.3).
		if r.ScansFDs > r.ScansNoFDs {
			t.Errorf("%s: FD scans %d > no-FD scans %d", r.Query, r.ScansFDs, r.ScansNoFDs)
		}
		if r.ScansFDs != 1 {
			t.Errorf("%s: expected 1 scan with FDs, got %d", r.Query, r.ScansFDs)
		}
		if r.Distinct > r.Answers {
			t.Errorf("%s: distinct %d > answers %d", r.Query, r.Distinct, r.Answers)
		}
	}
}

func TestCaseStudyRendering(t *testing.T) {
	s := CaseStudy()
	for _, frag := range []string{"query", "unsupported", "hierarchical without FDs"} {
		if !strings.Contains(s, frag) {
			t.Errorf("case study output missing %q", frag)
		}
	}
}
