package stats

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/prob"
	"repro/internal/storage"
	"repro/internal/table"
)

// uniformTable builds a table with n rows: a runs 0..n-1 (all distinct), b
// cycles over 10 values, p alternates 0.2/0.8.
func uniformTable(n int) *table.ProbTable {
	pt := table.NewProbTable("T", table.DataCol("a", table.KindInt), table.DataCol("b", table.KindInt))
	for i := 0; i < n; i++ {
		p := 0.2
		if i%2 == 1 {
			p = 0.8
		}
		pt.MustAddRow(prob.Var(i+1), p, table.Int(int64(i)), table.Int(int64(i%10)))
	}
	return pt
}

func TestAnalyzeBasics(t *testing.T) {
	ts := Analyze(uniformTable(1000))
	if ts.Rows != 1000 {
		t.Fatalf("rows = %d", ts.Rows)
	}
	if got := ts.Cols["a"].Distinct; got != 1000 {
		t.Errorf("distinct(a) = %d, want 1000", got)
	}
	if got := ts.Cols["b"].Distinct; got != 10 {
		t.Errorf("distinct(b) = %d, want 10", got)
	}
	if math.Abs(ts.AvgProb-0.5) > 1e-9 {
		t.Errorf("avg prob = %g, want 0.5", ts.AvgProb)
	}
	if ts.AvgTupleWidth != 8+8+16 {
		t.Errorf("avg tuple width = %g, want 32", ts.AvgTupleWidth)
	}
	if table.Compare(ts.Cols["a"].Min, table.Int(0)) != 0 || table.Compare(ts.Cols["a"].Max, table.Int(999)) != 0 {
		t.Errorf("min/max(a) = %v/%v", ts.Cols["a"].Min, ts.Cols["a"].Max)
	}
}

func TestSelectivityEstimates(t *testing.T) {
	ts := Analyze(uniformTable(1000))
	if got := ts.Cols["b"].EqSelectivity(table.Int(3)); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("eq selectivity = %g, want 0.1", got)
	}
	// a < 250 keeps ~25% of a uniform 0..999 column; the sampled equi-depth
	// histogram should land within a few buckets of that.
	got := ts.Cols["a"].RangeSelectivity("<", table.Int(250))
	if got < 0.15 || got > 0.35 {
		t.Errorf("range selectivity(a<250) = %g, want ≈ 0.25", got)
	}
	if lt, gt := ts.Cols["a"].RangeSelectivity("<", table.Int(250)), ts.Cols["a"].RangeSelectivity(">=", table.Int(250)); math.Abs(lt+gt-1) > 1e-9 {
		t.Errorf("complementary selectivities sum to %g", lt+gt)
	}
	// Unknown stats fall back to the historic defaults.
	var nilCS *ColumnStats
	if got := nilCS.EqSelectivity(table.Int(1)); got != DefaultEqSelectivity {
		t.Errorf("nil eq selectivity = %g", got)
	}
	if got := nilCS.RangeSelectivity("<", table.Int(1)); got != DefaultRangeSelectivity {
		t.Errorf("nil range selectivity = %g", got)
	}
}

func TestJoinAndDistinctEstimates(t *testing.T) {
	// |L|=1000 with 100 distinct keys joining |R|=500 with 500 distinct keys:
	// containment-of-values gives 1000*500/500 = 1000.
	if got := JoinCard(1000, 100, 500, 500); math.Abs(got-1000) > 1e-9 {
		t.Errorf("join card = %g, want 1000", got)
	}
	// Keeping half the rows of a 10-distinct column keeps ≈ all 10 values.
	if got := DistinctAfter(10, 1000, 500); got < 9.9 || got > 10 {
		t.Errorf("distinct after = %g, want ≈ 10", got)
	}
	// Keeping 5 rows of an all-distinct column keeps ≈ 5 values.
	if got := DistinctAfter(1000, 1000, 5); got < 4 || got > 5.1 {
		t.Errorf("distinct after = %g, want ≈ 5", got)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	a, b := Analyze(uniformTable(5000)), Analyze(uniformTable(5000))
	for name, ca := range a.Cols {
		cb := b.Cols[name]
		if ca.Distinct != cb.Distinct || len(ca.Hist.Bounds) != len(cb.Hist.Bounds) {
			t.Fatalf("ANALYZE not deterministic on %s", name)
		}
		for i := range ca.Hist.Bounds {
			if table.Compare(ca.Hist.Bounds[i], cb.Hist.Bounds[i]) != 0 {
				t.Fatalf("histogram bound %d differs on %s", i, name)
			}
		}
	}
}

func TestAnalyzeHeapFileMatchesInMemory(t *testing.T) {
	pt := uniformTable(500)
	dir := t.TempDir()
	path := filepath.Join(dir, "T.heap")
	h, err := storage.CreateHeapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range pt.Rel.Rows {
		if err := h.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	disk, err := AnalyzeHeapFile(path, "T", pt.Rel.Schema, storage.NewBufferPool(8))
	if err != nil {
		t.Fatal(err)
	}
	mem := Analyze(pt)
	if disk.Rows != mem.Rows || disk.AvgTupleWidth != mem.AvgTupleWidth || disk.AvgProb != mem.AvgProb {
		t.Fatalf("heap-file stats differ: %+v vs %+v", disk, mem)
	}
	for name, dc := range disk.Cols {
		mc := mem.Cols[name]
		if dc.Distinct != mc.Distinct || table.Compare(dc.Min, mc.Min) != 0 || table.Compare(dc.Max, mc.Max) != 0 {
			t.Fatalf("column %s stats differ", name)
		}
	}
}
