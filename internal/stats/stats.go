// Package stats gathers and serves the catalog statistics behind the
// cost-based planner: per-table row counts and average tuple widths,
// per-attribute distinct counts and equi-depth histograms, and the
// selectivity / cardinality estimators built on them. Statistics are
// collected by a single ANALYZE pass over each base table — either an
// in-memory relation or a heap file scanned through internal/storage — and
// cached on the planner catalog.
package stats

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"repro/internal/storage"
	"repro/internal/table"
)

// HistogramBuckets is the number of equi-depth buckets kept per attribute.
const HistogramBuckets = 32

// sampleCap bounds the per-column reservoir from which histogram bucket
// boundaries are taken, keeping ANALYZE memory O(columns), not O(rows).
const sampleCap = 4096

// Histogram is an equi-depth histogram over one attribute: Bounds[i] is the
// upper boundary of bucket i, and each bucket holds ≈ Rows/len(Bounds)
// values. Boundaries come from a uniform sample of the column, so the
// histogram is approximate but one-pass.
type Histogram struct {
	Bounds []table.Value // ascending; len ≤ HistogramBuckets
}

// ColumnStats summarizes one attribute of a table.
type ColumnStats struct {
	// Distinct is the number of distinct values observed (exact up to
	// 64-bit hash collisions).
	Distinct int
	// Min and Max bound the observed values under table.Compare.
	Min, Max table.Value
	// Hist is the equi-depth histogram used for range selectivity.
	Hist Histogram
	// AvgWidth is the average encoded width of the attribute in bytes
	// (8 for numerics, string length for strings).
	AvgWidth float64
}

// TableStats summarizes one base table.
type TableStats struct {
	Name string
	Rows int
	// AvgTupleWidth is the average encoded tuple width in bytes, data
	// columns plus the V/P pair.
	AvgTupleWidth float64
	// AvgProb is the mean marginal probability of the table's tuples —
	// the expected fraction of tuples present in a sampled world.
	AvgProb float64
	// Cols maps base-column names (the stored schema's names, before any
	// per-occurrence renaming) to their statistics.
	Cols map[string]*ColumnStats
	// MaxVar is the largest variable id observed in the table's V column —
	// persisted so a disk-loaded catalog knows the world-variable count
	// without rescanning the data.
	MaxVar int
}

// colAccum accumulates one column's statistics during the ANALYZE pass.
type colAccum struct {
	name     string
	distinct map[uint64]struct{}
	min, max table.Value
	first    bool
	width    float64
	sample   []table.Value // reservoir for histogram boundaries
	seen     int
	rngState uint64
}

func newColAccum(name string) *colAccum {
	return &colAccum{
		name:     name,
		distinct: make(map[uint64]struct{}),
		first:    true,
		rngState: 0x9e3779b97f4a7c15, // fixed seed: ANALYZE is deterministic
	}
}

// nextRand is a SplitMix64 step — deterministic reservoir sampling without
// touching math/rand's global state.
func (c *colAccum) nextRand() uint64 {
	c.rngState += 0x9e3779b97f4a7c15
	z := c.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func valueWidth(v table.Value) float64 {
	if v.Kind == table.KindString {
		return float64(len(v.S))
	}
	return 8
}

func (c *colAccum) add(v table.Value) {
	c.distinct[table.HashOn(table.Tuple{v}, []int{0})] = struct{}{}
	if c.first {
		c.min, c.max, c.first = v, v, false
	} else {
		if table.Compare(v, c.min) < 0 {
			c.min = v
		}
		if table.Compare(v, c.max) > 0 {
			c.max = v
		}
	}
	c.width += valueWidth(v)
	// Reservoir sampling keeps a uniform sample of bounded size.
	c.seen++
	if len(c.sample) < sampleCap {
		c.sample = append(c.sample, v)
	} else if j := c.nextRand() % uint64(c.seen); j < sampleCap {
		c.sample[j] = v
	}
}

func (c *colAccum) finish(rows int) *ColumnStats {
	cs := &ColumnStats{Distinct: len(c.distinct), Min: c.min, Max: c.max}
	if rows > 0 {
		cs.AvgWidth = c.width / float64(rows)
	}
	if len(c.sample) > 0 {
		sorted := append([]table.Value(nil), c.sample...)
		slices.SortFunc(sorted, table.Compare)
		buckets := HistogramBuckets
		if len(sorted) < buckets {
			buckets = len(sorted)
		}
		bounds := make([]table.Value, 0, buckets)
		for b := 1; b <= buckets; b++ {
			idx := b*len(sorted)/buckets - 1
			bounds = append(bounds, sorted[idx])
		}
		cs.Hist = Histogram{Bounds: bounds}
	}
	return cs
}

// analyzer runs the one-pass ANALYZE over a stream of tuples.
type analyzer struct {
	name    string
	dataIdx []int
	cols    []*colAccum
	probIdx int
	varIdx  int
	rows    int
	width   float64
	probSum float64
	maxVar  int
}

func newAnalyzer(name string, schema *table.Schema) *analyzer {
	a := &analyzer{name: name, dataIdx: schema.DataIndexes(), probIdx: schema.ProbIndex(name), varIdx: schema.VarIndex(name)}
	for _, j := range a.dataIdx {
		a.cols = append(a.cols, newColAccum(schema.Cols[j].Name))
	}
	return a
}

func (a *analyzer) add(t table.Tuple) {
	a.rows++
	for i, j := range a.dataIdx {
		a.cols[i].add(t[j])
		a.width += valueWidth(t[j])
	}
	a.width += 16 // V/P pair
	if a.probIdx >= 0 && a.probIdx < len(t) {
		a.probSum += t[a.probIdx].F
	}
	if a.varIdx >= 0 && a.varIdx < len(t) {
		if v := int(t[a.varIdx].I); v > a.maxVar {
			a.maxVar = v
		}
	}
}

func (a *analyzer) finish() *TableStats {
	ts := &TableStats{Name: a.name, Rows: a.rows, MaxVar: a.maxVar, Cols: make(map[string]*ColumnStats, len(a.cols))}
	for _, c := range a.cols {
		ts.Cols[c.name] = c.finish(a.rows)
	}
	if a.rows > 0 {
		ts.AvgTupleWidth = a.width / float64(a.rows)
		ts.AvgProb = a.probSum / float64(a.rows)
	}
	return ts
}

// Analyze computes the statistics of one base table in a single pass over
// its in-memory relation.
func Analyze(pt *table.ProbTable) *TableStats {
	a := newAnalyzer(pt.Name, pt.Rel.Schema)
	for _, row := range pt.Rel.Rows {
		a.add(row)
	}
	return a.finish()
}

// AnalyzeHeapFile computes the same statistics by scanning a heap file
// through the storage layer's buffer pool — the ANALYZE path for tables
// that live on disk. schema describes the stored tuples; name is the base
// table name (for the V/P columns).
func AnalyzeHeapFile(path, name string, schema *table.Schema, pool *storage.BufferPool) (*TableStats, error) {
	h, err := storage.OpenHeapFile(path)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	sc := h.NewScanner(pool)
	defer sc.Close()
	a := newAnalyzer(name, schema)
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, fmt.Errorf("stats: analyzing %s: %w", name, err)
		}
		if !ok {
			break
		}
		a.add(t)
	}
	return a.finish(), nil
}

// fraction of b's value range at or below v, estimated from the equi-depth
// histogram: the fraction of buckets whose upper bound is ≤ v, refined by
// assuming v falls uniformly inside its bucket.
func (h Histogram) fractionLE(v table.Value) float64 {
	n := len(h.Bounds)
	if n == 0 {
		return 0.5
	}
	below, _ := slices.BinarySearchFunc(h.Bounds, v, table.Compare)
	// below buckets are entirely ≤ v; assume half of v's own bucket is.
	f := float64(below) / float64(n)
	if below < n {
		f += 0.5 / float64(n)
	}
	if f > 1 {
		f = 1
	}
	return f
}

// EqSelectivity estimates the fraction of rows matching attr = v: 1/distinct
// under the uniform-frequency assumption, 0 when v lies outside [min, max].
func (cs *ColumnStats) EqSelectivity(v table.Value) float64 {
	if cs == nil || cs.Distinct == 0 {
		return DefaultEqSelectivity
	}
	if table.Compare(v, cs.Min) < 0 || table.Compare(v, cs.Max) > 0 {
		// Out-of-range constants still get a floor: the stats may be stale.
		return 0.5 / float64(cs.Distinct)
	}
	return 1 / float64(cs.Distinct)
}

// RangeSelectivity estimates the fraction of rows with attr OP v for the
// inequality operators, from the equi-depth histogram.
func (cs *ColumnStats) RangeSelectivity(op string, v table.Value) float64 {
	if cs == nil {
		return DefaultRangeSelectivity
	}
	le := cs.Hist.fractionLE(v)
	var s float64
	switch op {
	case "<", "<=":
		s = le
	case ">", ">=":
		s = 1 - le
	case "<>", "!=":
		s = 1 - cs.EqSelectivity(v)
	default:
		s = DefaultRangeSelectivity
	}
	return clampSel(s)
}

// Default selectivities used when no statistics exist — the planner's
// historic constants.
const (
	DefaultEqSelectivity    = 0.02
	DefaultRangeSelectivity = 0.30
)

func clampSel(s float64) float64 {
	if s < 1e-6 {
		return 1e-6
	}
	if s > 1 {
		return 1
	}
	return s
}

// DistinctAfter scales a distinct count by a selectivity: with card·sel rows
// surviving, the expected number of distinct values kept follows the
// standard balls-in-bins estimate d·(1-(1-sel)^(n/d)) ≈ min(d, surviving).
func DistinctAfter(distinct int, rows, surviving float64) float64 {
	if distinct <= 0 || rows <= 0 {
		return surviving
	}
	d := float64(distinct)
	if surviving >= rows {
		return d
	}
	est := d * (1 - math.Pow(1-surviving/rows, rows/d))
	return math.Max(1, math.Min(est, surviving))
}

// JoinCard estimates |L ⋈_a R| for an equi-join on one attribute with the
// containment-of-values assumption: |L|·|R| / max(d_L, d_R).
func JoinCard(lCard float64, lDistinct float64, rCard float64, rDistinct float64) float64 {
	d := math.Max(lDistinct, rDistinct)
	if d < 1 {
		d = 1
	}
	return lCard * rCard / d
}

// String renders the table statistics compactly (for EXPLAIN and tools).
func (ts *TableStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d rows, avg width %.1fB, avg prob %.3f", ts.Name, ts.Rows, ts.AvgTupleWidth, ts.AvgProb)
	names := make([]string, 0, len(ts.Cols))
	for n := range ts.Cols {
		names = append(names, n)
	}
	slices.Sort(names)
	for _, n := range names {
		c := ts.Cols[n]
		fmt.Fprintf(&b, "\n  %s: %d distinct in [%s, %s]", n, c.Distinct, c.Min, c.Max)
	}
	return b.String()
}
