package stats

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// SidecarFile is the name of the statistics sidecar written next to a
// directory of heap files. Loading it restores the full ANALYZE snapshot —
// per-table row counts, histograms, and the world-variable ceiling — so a
// disk-backed catalog serves its first cost-based query without scanning
// any data.
const SidecarFile = "stats.json"

// Sidecar is the persisted form of a catalog's ANALYZE snapshot.
type Sidecar struct {
	// Tables maps base table names to their statistics.
	Tables map[string]*TableStats `json:"tables"`
	// MaxVar is the largest world-variable id across all tables — what a
	// loading catalog needs to size its variable space.
	MaxVar int `json:"max_var"`
}

// SaveSidecar writes the snapshot as stats.json in dir. The write goes
// through a temp file + rename so a crashed writer never leaves a truncated
// sidecar behind (loaders would fail to parse it and fall back to ANALYZE).
func SaveSidecar(dir string, sc *Sidecar) error {
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, SidecarFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, SidecarFile))
}

// LoadSidecar reads the snapshot from dir. A missing file returns
// (nil, error satisfying os.IsNotExist); callers fall back to ANALYZE.
func LoadSidecar(dir string) (*Sidecar, error) {
	data, err := os.ReadFile(filepath.Join(dir, SidecarFile))
	if err != nil {
		return nil, err
	}
	var sc Sidecar
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, err
	}
	return &sc, nil
}
