package stats

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/prob"
	"repro/internal/table"
)

// TestSidecarRoundTrip: a saved sidecar loads back with every table's
// ANALYZE snapshot intact — row counts, per-column summaries, histogram
// bounds, and the variable ceiling — so disk catalogs can skip the
// first-query statistics pass.
func TestSidecarRoundTrip(t *testing.T) {
	sch := table.NewSchema(
		table.DataCol("k", table.KindInt),
		table.DataCol("s", table.KindString),
		table.VarCol("R"), table.ProbCol("R"),
	)
	rel := table.NewRelation(sch)
	for i := 0; i < 500; i++ {
		rel.MustAppend(table.Tuple{
			table.Int(int64(i % 40)),
			table.Str(string(rune('a' + i%26))),
			table.VarValue(prob.Var(i + 7)), table.Float(0.5),
		})
	}
	pt := &table.ProbTable{Name: "T", Rel: rel}
	want := &Sidecar{Tables: map[string]*TableStats{"T": Analyze(pt)}, MaxVar: 506}

	dir := t.TempDir()
	if err := SaveSidecar(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSidecar(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxVar != want.MaxVar {
		t.Fatalf("MaxVar = %d, want %d", got.MaxVar, want.MaxVar)
	}
	gt, wt := got.Tables["T"], want.Tables["T"]
	if gt == nil {
		t.Fatal("table T missing after round trip")
	}
	if gt.Rows != wt.Rows || gt.MaxVar != wt.MaxVar {
		t.Fatalf("rows/maxvar = %d/%d, want %d/%d", gt.Rows, gt.MaxVar, wt.Rows, wt.MaxVar)
	}
	if len(gt.Cols) != len(wt.Cols) {
		t.Fatalf("%d column summaries, want %d", len(gt.Cols), len(wt.Cols))
	}
	for name, w := range wt.Cols {
		g := gt.Cols[name]
		if g == nil {
			t.Fatalf("column %s missing after round trip", name)
		}
		if g.Distinct != w.Distinct || g.Min != w.Min || g.Max != w.Max || g.AvgWidth != w.AvgWidth {
			t.Fatalf("col %s: %+v, want %+v", name, g, w)
		}
		if len(g.Hist.Bounds) != len(w.Hist.Bounds) {
			t.Fatalf("col %s: %d histogram bounds, want %d", name, len(g.Hist.Bounds), len(w.Hist.Bounds))
		}
		for i := range w.Hist.Bounds {
			if g.Hist.Bounds[i] != w.Hist.Bounds[i] {
				t.Fatalf("col %s bound %d: %v, want %v", name, i, g.Hist.Bounds[i], w.Hist.Bounds[i])
			}
		}
	}
	// Selectivity estimates must survive serialization unchanged.
	gk, wk := gt.Cols["k"], wt.Cols["k"]
	if g, w := gk.EqSelectivity(table.Int(3)), wk.EqSelectivity(table.Int(3)); g != w {
		t.Fatalf("EqSelectivity after round trip = %v, want %v", g, w)
	}
	if g, w := gk.RangeSelectivity("<", table.Int(20)), wk.RangeSelectivity("<", table.Int(20)); g != w {
		t.Fatalf("RangeSelectivity after round trip = %v, want %v", g, w)
	}
}

// TestLoadSidecarMissing: a directory without a sidecar reports
// os.IsNotExist so callers can fall back to scanning.
func TestLoadSidecarMissing(t *testing.T) {
	if _, err := LoadSidecar(t.TempDir()); !os.IsNotExist(err) {
		t.Fatalf("got %v, want an IsNotExist error", err)
	}
}

// TestSaveSidecarAtomic: saving leaves no temp droppings next to the final
// file.
func TestSaveSidecarAtomic(t *testing.T) {
	dir := t.TempDir()
	if err := SaveSidecar(dir, &Sidecar{Tables: map[string]*TableStats{}}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != SidecarFile {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want exactly [%s]", names, SidecarFile)
	}
	if _, err := os.Stat(filepath.Join(dir, SidecarFile)); err != nil {
		t.Fatal(err)
	}
}
