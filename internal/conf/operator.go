package conf

import (
	"fmt"

	"repro/internal/signature"
	"repro/internal/storage"
	"repro/internal/table"
)

// Options tunes the operator's secondary-storage behaviour.
type Options struct {
	SortBudget int    // tuples held in memory per sort; 0 = default
	TmpDir     string // spill directory; "" = os.TempDir()
}

// Stats reports what the operator did — the quantities behind the paper's
// Fig. 13 (number of scans with/without FDs, sorting work).
type Stats struct {
	Scans        int      // aggregation scans + the final scan
	Sorts        int      // sort passes (one per scan)
	SpilledRuns  int      // external-sort runs written to disk
	InputTuples  int64    // tuples entering the first scan
	OutputTuples int64    // distinct answer tuples
	Steps        []string // signatures of the scheduled aggregation steps
}

// ConfCol is the name of the confidence column in the operator's output.
const ConfCol = "conf"

// Compute runs the confidence operator: given a materialized answer
// relation (data columns plus V/P columns for every source table) and a
// signature over those sources, it returns the distinct data tuples with
// their exact confidences. Semantically it equals the aggregation sequence
// of Fig. 5; operationally it schedules the minimal number of sort+scan
// passes (Prop. V.10).
func Compute(rel *table.Relation, sig signature.Sig, opts Options) (*table.Relation, error) {
	out, _, err := ComputeStats(rel, sig, opts)
	return out, err
}

// ComputeStats is Compute with execution statistics.
func ComputeStats(rel *table.Relation, sig signature.Sig, opts Options) (*table.Relation, *Stats, error) {
	if err := validateSources(rel.Schema, sig); err != nil {
		return nil, nil, err
	}
	stats := &Stats{InputTuples: int64(rel.Len())}
	steps, finalSig := planScans(sig)
	cur := rel
	for _, st := range steps {
		stats.Steps = append(stats.Steps, "["+st.gamma.String()+"]")
		next, spills, err := aggregateStep(cur, st.gamma, opts)
		if err != nil {
			return nil, nil, err
		}
		stats.Scans++
		stats.Sorts++
		stats.SpilledRuns += spills
		cur = next
	}
	out, spills, err := finalScan(cur, finalSig, opts)
	if err != nil {
		return nil, nil, err
	}
	stats.Scans++
	stats.Sorts++
	stats.SpilledRuns += spills
	stats.OutputTuples = int64(out.Len())
	return out, stats, nil
}

func validateSources(s *table.Schema, sig signature.Sig) error {
	have := make(map[string]bool)
	for _, src := range s.Sources() {
		have[src] = true
	}
	for _, t := range signature.Tables(sig) {
		if !have[t] {
			return fmt.Errorf("conf: signature table %s has no V/P columns in input schema %v", t, s.Names())
		}
		delete(have, t)
	}
	for src := range have {
		return fmt.Errorf("conf: input carries variables of table %s absent from signature %s", src, sig)
	}
	return nil
}

// scanStep is one scheduled aggregation: gamma is a starred 1scan
// subexpression whose tables collapse into a single representative.
type scanStep struct {
	gamma signature.Sig
}

// planScans rewrites the signature until it has the 1scan property,
// emitting one aggregation step per starred subexpression that lacks a bare
// table (Def. V.8): the step's starred component is aggregated into its
// representative table. Returns the steps (innermost first) and the final
// 1scan signature. This reproduces Ex. V.11: (Cust*(Ord*Item*)*)* yields
// steps [Ord*], [Cust*] and final (Cust(Ord Item*)*)*.
func planScans(s signature.Sig) ([]scanStep, signature.Sig) {
	var steps []scanStep
	var fix func(signature.Sig) signature.Sig
	fix = func(s signature.Sig) signature.Sig {
		switch x := s.(type) {
		case signature.Table:
			return x
		case signature.Star:
			inner := fix(x.Inner)
			comps, ok := inner.(signature.Concat)
			if !ok {
				comps = signature.Concat{inner}
			}
			if !hasBare(comps) {
				// Aggregate the first starred component into its
				// representative table.
				for i, c := range comps {
					st, isStar := c.(signature.Star)
					if !isStar {
						continue
					}
					rep := representative(st)
					steps = append(steps, scanStep{gamma: st})
					rebuilt := append(signature.Concat{}, comps...)
					rebuilt[i] = signature.Table(rep)
					comps = rebuilt
					break
				}
			}
			return signature.NewStar(signature.NewConcat(comps...))
		case signature.Concat:
			parts := make([]signature.Sig, len(x))
			for i, c := range x {
				parts[i] = fix(c)
			}
			return signature.NewConcat(parts...)
		default:
			return s
		}
	}
	final := fix(s)
	return steps, final
}

func hasBare(c signature.Concat) bool {
	for _, comp := range c {
		if _, ok := comp.(signature.Table); ok {
			return true
		}
	}
	return false
}

// representative returns the table that survives the aggregation of a
// starred 1scan subexpression — the root of its 1scanTree.
func representative(s signature.Sig) string {
	st, err := signature.BuildScanTree(s)
	if err != nil {
		// planScans only aggregates components that are themselves 1scan;
		// reaching here is a scheduler bug.
		panic(fmt.Sprintf("conf: representative of non-1scan %s: %v", s, err))
	}
	return st.Table
}

// sortedScan sorts rel by keyCols (external sort) and streams it to emit.
func sortedScan(rel *table.Relation, keyCols []int, opts Options, emit func(table.Tuple) error) (spills int, err error) {
	sorter := storage.NewExternalSorter(func(a, b table.Tuple) int {
		return table.CompareOn(a, b, keyCols)
	}, opts.SortBudget, opts.TmpDir)
	for _, row := range rel.Rows {
		if err := sorter.Add(row); err != nil {
			return 0, err
		}
	}
	it, err := sorter.Finish()
	if err != nil {
		return 0, err
	}
	defer it.Close()
	for {
		t, ok, err := it.Next()
		if err != nil {
			return sorter.Spills(), err
		}
		if !ok {
			return sorter.Spills(), nil
		}
		if err := emit(t); err != nil {
			return sorter.Spills(), err
		}
	}
}

// aggregateStep executes one aggregation [γ*]: group by every column not
// belonging to γ's tables, run the one-scan algorithm over γ's columns per
// group, and emit the group columns plus representative V/P columns. This
// is the single-scan equivalent of one GRP statement of Fig. 6 (or of a
// whole sub-sequence when γ is composite).
func aggregateStep(rel *table.Relation, gamma signature.Sig, opts Options) (*table.Relation, int, error) {
	rt, err := newRuntimeTree(gamma, rel.Schema)
	if err != nil {
		return nil, 0, err
	}
	rootVarIdx := rt.rootVarIdx()
	if rootVarIdx < 0 {
		return nil, 0, fmt.Errorf("conf: aggregation step %s has no representative table", gamma)
	}
	root := rt.root.tableName

	gammaCols := make(map[int]bool)
	for _, tn := range signature.Tables(gamma) {
		gammaCols[rel.Schema.VarIndex(tn)] = true
		gammaCols[rel.Schema.ProbIndex(tn)] = true
	}
	var groupCols []int
	for i := range rel.Schema.Cols {
		if !gammaCols[i] {
			groupCols = append(groupCols, i)
		}
	}
	sortCols := append(append([]int(nil), groupCols...), rt.varColumns()...)

	// Output schema: group columns followed by the representative's V/P.
	outCols := make([]table.Column, 0, len(groupCols)+2)
	for _, i := range groupCols {
		outCols = append(outCols, rel.Schema.Cols[i])
	}
	outCols = append(outCols, table.VarCol(root), table.ProbCol(root))
	out := table.NewRelation(table.NewSchema(outCols...))
	var prev table.Tuple
	var groupKey table.Tuple
	var repVar table.Value
	emitGroup := func() {
		p := rt.flush()
		row := make(table.Tuple, 0, len(outCols))
		for _, i := range groupCols {
			row = append(row, groupKey[i])
		}
		row = append(row, repVar, table.Float(p))
		out.Rows = append(out.Rows, row)
	}
	spills, err := sortedScan(rel, sortCols, opts, func(t table.Tuple) error {
		if prev != nil && !table.EqualOn(prev, t, groupCols) {
			emitGroup()
			prev = nil
		}
		if prev == nil {
			groupKey = t.Clone()
			repVar = t[rootVarIdx] // sorted ascending: first = min representative
			rt.seed(t)
		} else {
			rt.step(rt.firstUnmatched(prev, t), t)
		}
		prev = t.Clone()
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if prev != nil {
		emitGroup()
	}
	return out, spills, nil
}

// finalScan runs the concluding one-scan pass of the operator: sort by the
// data columns followed by the variable columns in 1scanTree preorder, then
// compute one probability per bag of duplicates (Fig. 8's outer loop).
func finalScan(rel *table.Relation, sig signature.Sig, opts Options) (*table.Relation, int, error) {
	rt, err := newRuntimeTree(sig, rel.Schema)
	if err != nil {
		return nil, 0, err
	}
	dataCols := rel.Schema.DataIndexes()
	sortCols := append(append([]int(nil), dataCols...), rt.varColumns()...)

	outCols := make([]table.Column, 0, len(dataCols)+1)
	for _, i := range dataCols {
		outCols = append(outCols, rel.Schema.Cols[i])
	}
	outCols = append(outCols, table.DataCol(ConfCol, table.KindFloat))
	out := table.NewRelation(table.NewSchema(outCols...))

	var prev table.Tuple
	var bagKey table.Tuple
	emitBag := func() {
		p := rt.flush()
		row := make(table.Tuple, 0, len(outCols))
		for _, i := range dataCols {
			row = append(row, bagKey[i])
		}
		row = append(row, table.Float(p))
		out.Rows = append(out.Rows, row)
	}
	spills, err := sortedScan(rel, sortCols, opts, func(t table.Tuple) error {
		if prev != nil && !table.EqualOn(prev, t, dataCols) {
			emitBag()
			prev = nil
		}
		if prev == nil {
			bagKey = t.Clone()
			rt.seed(t)
		} else {
			rt.step(rt.firstUnmatched(prev, t), t)
		}
		prev = t.Clone()
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if prev != nil {
		emitBag()
	}
	return out, spills, nil
}
