package conf

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/pool"
	"repro/internal/signature"
	"repro/internal/storage"
	"repro/internal/table"
)

// Options tunes the operator's secondary-storage behaviour and its parallel
// execution.
type Options struct {
	SortBudget int    // tuples held in memory per sort; 0 = default
	TmpDir     string // spill directory; "" = os.TempDir()
	// Pool drives the partition-parallel aggregation scans: the input is
	// hash-partitioned by group key, each partition sorted and scanned by a
	// worker, and the per-partition outputs merged back into global sort
	// order. nil or a one-worker pool keeps the scans serial. The output is
	// bit-identical either way.
	Pool *pool.Pool
	// Ctx cancels long scans between tuples; nil means no cancellation.
	Ctx context.Context
	// Mem, when set, governs the operator's sort buffers: under memory
	// pressure the external sorts spill earlier instead of growing. nil
	// means ungoverned.
	Mem *fault.Governor
}

func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Stats reports what the operator did — the quantities behind the paper's
// Fig. 13 (number of scans with/without FDs, sorting work).
type Stats struct {
	Scans        int      // aggregation scans + the final scan
	Sorts        int      // sort passes (one per scan)
	SpilledRuns  int      // external-sort runs written to disk
	InputTuples  int64    // tuples entering the first scan
	OutputTuples int64    // distinct answer tuples
	Steps        []string // signatures of the scheduled aggregation steps
}

// ConfCol is the name of the confidence column in the operator's output.
const ConfCol = "conf"

// Compute runs the confidence operator: given a materialized answer
// relation (data columns plus V/P columns for every source table) and a
// signature over those sources, it returns the distinct data tuples with
// their exact confidences. Semantically it equals the aggregation sequence
// of Fig. 5; operationally it schedules the minimal number of sort+scan
// passes (Prop. V.10).
func Compute(rel *table.Relation, sig signature.Sig, opts Options) (*table.Relation, error) {
	out, _, err := ComputeStats(rel, sig, opts)
	return out, err
}

// ComputeStats is Compute with execution statistics.
func ComputeStats(rel *table.Relation, sig signature.Sig, opts Options) (*table.Relation, *Stats, error) {
	if err := validateSources(rel.Schema, sig); err != nil {
		return nil, nil, err
	}
	stats := &Stats{InputTuples: int64(rel.Len())}
	steps, finalSig := planScans(sig)
	cur := rel
	for _, st := range steps {
		stats.Steps = append(stats.Steps, "["+st.gamma.String()+"]")
		next, spills, err := aggregateStep(cur, st.gamma, opts)
		if err != nil {
			return nil, nil, err
		}
		stats.Scans++
		stats.Sorts++
		stats.SpilledRuns += spills
		cur = next
	}
	out, spills, err := finalScan(cur, finalSig, opts)
	if err != nil {
		return nil, nil, err
	}
	stats.Scans++
	stats.Sorts++
	stats.SpilledRuns += spills
	stats.OutputTuples = int64(out.Len())
	return out, stats, nil
}

func validateSources(s *table.Schema, sig signature.Sig) error {
	have := make(map[string]bool)
	for _, src := range s.Sources() {
		have[src] = true
	}
	for _, t := range signature.Tables(sig) {
		if !have[t] {
			return fmt.Errorf("conf: signature table %s has no V/P columns in input schema %v", t, s.Names())
		}
		delete(have, t)
	}
	for src := range have {
		return fmt.Errorf("conf: input carries variables of table %s absent from signature %s", src, sig)
	}
	return nil
}

// scanStep is one scheduled aggregation: gamma is a starred 1scan
// subexpression whose tables collapse into a single representative.
type scanStep struct {
	gamma signature.Sig
}

// planScans rewrites the signature until it has the 1scan property,
// emitting one aggregation step per starred subexpression that lacks a bare
// table (Def. V.8): the step's starred component is aggregated into its
// representative table. Returns the steps (innermost first) and the final
// 1scan signature. This reproduces Ex. V.11: (Cust*(Ord*Item*)*)* yields
// steps [Ord*], [Cust*] and final (Cust(Ord Item*)*)*.
func planScans(s signature.Sig) ([]scanStep, signature.Sig) {
	var steps []scanStep
	var fix func(signature.Sig) signature.Sig
	fix = func(s signature.Sig) signature.Sig {
		switch x := s.(type) {
		case signature.Table:
			return x
		case signature.Star:
			inner := fix(x.Inner)
			comps, ok := inner.(signature.Concat)
			if !ok {
				comps = signature.Concat{inner}
			}
			if !hasBare(comps) {
				// Aggregate the first starred component into its
				// representative table.
				for i, c := range comps {
					st, isStar := c.(signature.Star)
					if !isStar {
						continue
					}
					rep := representative(st)
					steps = append(steps, scanStep{gamma: st})
					rebuilt := append(signature.Concat{}, comps...)
					rebuilt[i] = signature.Table(rep)
					comps = rebuilt
					break
				}
			}
			return signature.NewStar(signature.NewConcat(comps...))
		case signature.Concat:
			parts := make([]signature.Sig, len(x))
			for i, c := range x {
				parts[i] = fix(c)
			}
			return signature.NewConcat(parts...)
		default:
			return s
		}
	}
	final := fix(s)
	return steps, final
}

func hasBare(c signature.Concat) bool {
	for _, comp := range c {
		if _, ok := comp.(signature.Table); ok {
			return true
		}
	}
	return false
}

// representative returns the table that survives the aggregation of a
// starred 1scan subexpression — the root of its 1scanTree.
func representative(s signature.Sig) string {
	st, err := signature.BuildScanTree(s)
	if err != nil {
		// planScans only aggregates components that are themselves 1scan;
		// reaching here is a scheduler bug.
		panic(fmt.Sprintf("conf: representative of non-1scan %s: %v", s, err))
	}
	return st.Table
}

// sortedScan sorts rel by keyCols (external sort) and streams it to emit,
// checking the context once per batch of scanBatchSize tuples on both the
// feeding and the draining side. Error paths discard any spilled runs.
func sortedScan(rel *table.Relation, keyCols []int, opts Options, emit func(table.Tuple) error) (spills int, err error) {
	ctx := opts.ctx()
	sorter := storage.NewExternalSorter(func(a, b table.Tuple) int {
		return table.CompareOn(a, b, keyCols)
	}, opts.SortBudget, opts.TmpDir)
	sorter.Govern(opts.Mem)
	for i, row := range rel.Rows {
		if i%scanBatchSize == 0 && ctx.Err() != nil {
			sorter.Discard()
			return 0, ctx.Err()
		}
		if err := sorter.Add(row); err != nil {
			sorter.Discard()
			return 0, err
		}
	}
	it, err := sorter.Finish()
	if err != nil {
		return 0, err
	}
	defer it.Close()
	for i := 0; ; i++ {
		if i%scanBatchSize == 0 && ctx.Err() != nil {
			return sorter.Spills(), ctx.Err()
		}
		t, ok, err := it.Next()
		if err != nil {
			return sorter.Spills(), err
		}
		if !ok {
			return sorter.Spills(), nil
		}
		if err := emit(t); err != nil {
			return sorter.Spills(), err
		}
	}
}

// scanBatchSize is the aggregation scans' batch granularity: how many tuples
// pass between context checks. It mirrors engine.BatchSize, so cancellation
// latency is uniform across the pipelined and the sort+scan tiers.
const scanBatchSize = 1024

// parallelScans reports whether an input should take the partition-parallel
// scan path.
func parallelScans(opts Options, rows, groupCols int) bool {
	return opts.Pool != nil && opts.Pool.Parallel() && rows >= pool.ParallelMinRows && groupCols > 0
}

// partitionByKey buckets the rows of rel by the hash of its key columns.
// Every group (rows equal on keyCols) lands wholly in one bucket, which is
// what makes per-partition aggregation correct.
func partitionByKey(rel *table.Relation, keyCols []int, n int) []*table.Relation {
	buckets := table.PartitionOn(rel.Rows, keyCols, n)
	parts := make([]*table.Relation, n)
	for i, rows := range buckets {
		parts[i] = &table.Relation{Schema: rel.Schema, Rows: rows}
	}
	return parts
}

// mergeByKey merges per-partition outputs back into global key order: each
// part is sorted on the keyCols of the output schema and no key value spans
// two partitions (they were hash-partitioned on it), so a k-way min-merge
// reproduces the serial scan's output exactly.
func mergeByKey(parts []*table.Relation, keyCols []int, schema *table.Schema) *table.Relation {
	out := table.NewRelation(schema)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	out.Rows = make([]table.Tuple, 0, total)
	pos := make([]int, len(parts))
	for {
		best := -1
		for i, p := range parts {
			if pos[i] >= p.Len() {
				continue
			}
			if best < 0 || table.CompareOn(p.Rows[pos[i]], parts[best].Rows[pos[best]], keyCols) < 0 {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out.Rows = append(out.Rows, parts[best].Rows[pos[best]])
		pos[best]++
	}
}

// groupedScan is the shared core of the aggregation scans: sort rel by
// sortCols, walk it group by group (groups are contiguous on groupCols), run
// the one-scan algorithm of rt within each group, and append one output row
// per group built from the group's first sorted tuple and its probability.
func groupedScan(rel *table.Relation, rt *runtimeTree, groupCols, sortCols []int, opts Options, out *table.Relation, buildRow func(first table.Tuple, p float64) table.Tuple) (int, error) {
	var prev, first table.Tuple
	emitGroup := func() {
		out.Rows = append(out.Rows, buildRow(first, rt.flush()))
	}
	spills, err := sortedScan(rel, sortCols, opts, func(t table.Tuple) error {
		if prev != nil && !table.EqualOn(prev, t, groupCols) {
			emitGroup()
			prev = nil
		}
		if prev == nil {
			first = t.Clone()
			rt.seed(t)
		} else {
			rt.step(rt.firstUnmatched(prev, t), t)
		}
		prev = t.Clone()
		return nil
	})
	if err != nil {
		return spills, err
	}
	if prev != nil {
		emitGroup()
	}
	return spills, nil
}

// aggregateStep executes one aggregation [γ*]: group by every column not
// belonging to γ's tables, run the one-scan algorithm over γ's columns per
// group, and emit the group columns plus representative V/P columns. This
// is the single-scan equivalent of one GRP statement of Fig. 6 (or of a
// whole sub-sequence when γ is composite). With a multi-worker pool in the
// options the input is hash-partitioned by group key and the partitions are
// sorted and scanned in parallel; the merged output is bit-identical to the
// serial scan's.
func aggregateStep(rel *table.Relation, gamma signature.Sig, opts Options) (*table.Relation, int, error) {
	rt, err := newRuntimeTree(gamma, rel.Schema)
	if err != nil {
		return nil, 0, err
	}
	rootVarIdx := rt.rootVarIdx()
	if rootVarIdx < 0 {
		return nil, 0, fmt.Errorf("conf: aggregation step %s has no representative table", gamma)
	}
	root := rt.root.tableName

	gammaCols := make(map[int]bool)
	for _, tn := range signature.Tables(gamma) {
		gammaCols[rel.Schema.VarIndex(tn)] = true
		gammaCols[rel.Schema.ProbIndex(tn)] = true
	}
	var groupCols []int
	for i := range rel.Schema.Cols {
		if !gammaCols[i] {
			groupCols = append(groupCols, i)
		}
	}
	sortCols := append(append([]int(nil), groupCols...), rt.varColumns()...)

	// Output schema: group columns followed by the representative's V/P.
	outCols := make([]table.Column, 0, len(groupCols)+2)
	for _, i := range groupCols {
		outCols = append(outCols, rel.Schema.Cols[i])
	}
	outCols = append(outCols, table.VarCol(root), table.ProbCol(root))
	schema := table.NewSchema(outCols...)
	buildRow := func(first table.Tuple, p float64) table.Tuple {
		row := make(table.Tuple, 0, len(outCols))
		for _, i := range groupCols {
			row = append(row, first[i])
		}
		// Sorted ascending: the group's first variable is the minimal
		// representative.
		return append(row, first[rootVarIdx], table.Float(p))
	}

	scanOne := func(part *table.Relation, out *table.Relation) (int, error) {
		prt, err := newRuntimeTree(gamma, rel.Schema)
		if err != nil {
			return 0, err
		}
		return groupedScan(part, prt, groupCols, sortCols, opts, out, buildRow)
	}

	if !parallelScans(opts, rel.Len(), len(groupCols)) {
		out := table.NewRelation(schema)
		spills, err := groupedScan(rel, rt, groupCols, sortCols, opts, out, buildRow)
		if err != nil {
			return nil, 0, err
		}
		return out, spills, nil
	}
	// Merge key: the group columns occupy the output's leading positions.
	mergeCols := make([]int, len(groupCols))
	for i := range mergeCols {
		mergeCols[i] = i
	}
	return parallelGroupedScan(rel, groupCols, mergeCols, schema, opts, scanOne)
}

// parallelGroupedScan hash-partitions rel by groupCols, runs scanOne over
// every partition on the pool, and merges the per-partition outputs (each
// sorted on the output's mergeCols) back into global order.
func parallelGroupedScan(rel *table.Relation, groupCols, mergeCols []int, schema *table.Schema, opts Options, scanOne func(part, out *table.Relation) (int, error)) (*table.Relation, int, error) {
	n := opts.Pool.Workers()
	parts := partitionByKey(rel, groupCols, n)
	outs := make([]*table.Relation, n)
	spills := make([]int, n)
	err := opts.Pool.Do(opts.ctx(), n, func(i int) error {
		outs[i] = table.NewRelation(schema)
		s, err := scanOne(parts[i], outs[i])
		spills[i] = s
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	total := 0
	for _, s := range spills {
		total += s
	}
	return mergeByKey(outs, mergeCols, schema), total, nil
}

// finalScan runs the concluding one-scan pass of the operator: sort by the
// data columns followed by the variable columns in 1scanTree preorder, then
// compute one probability per bag of duplicates (Fig. 8's outer loop). Like
// aggregateStep it runs partition-parallel by answer key under a
// multi-worker pool, with bit-identical output.
func finalScan(rel *table.Relation, sig signature.Sig, opts Options) (*table.Relation, int, error) {
	rt, err := newRuntimeTree(sig, rel.Schema)
	if err != nil {
		return nil, 0, err
	}
	dataCols := rel.Schema.DataIndexes()
	sortCols := append(append([]int(nil), dataCols...), rt.varColumns()...)

	outCols := make([]table.Column, 0, len(dataCols)+1)
	for _, i := range dataCols {
		outCols = append(outCols, rel.Schema.Cols[i])
	}
	outCols = append(outCols, table.DataCol(ConfCol, table.KindFloat))
	schema := table.NewSchema(outCols...)
	buildRow := func(first table.Tuple, p float64) table.Tuple {
		row := make(table.Tuple, 0, len(outCols))
		for _, i := range dataCols {
			row = append(row, first[i])
		}
		return append(row, table.Float(p))
	}

	scanOne := func(part *table.Relation, out *table.Relation) (int, error) {
		prt, err := newRuntimeTree(sig, rel.Schema)
		if err != nil {
			return 0, err
		}
		return groupedScan(part, prt, dataCols, sortCols, opts, out, buildRow)
	}

	if !parallelScans(opts, rel.Len(), len(dataCols)) {
		out := table.NewRelation(schema)
		spills, err := groupedScan(rel, rt, dataCols, sortCols, opts, out, buildRow)
		if err != nil {
			return nil, 0, err
		}
		return out, spills, nil
	}
	mergeCols := make([]int, len(dataCols))
	for i := range mergeCols {
		mergeCols[i] = i
	}
	return parallelGroupedScan(rel, dataCols, mergeCols, schema, opts, scanOne)
}
