package conf

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/prob"
	"repro/internal/signature"
	"repro/internal/table"
)

// mcAnswerRel builds a two-source answer relation: data column d, V/P pairs
// for sources R and S. Rows are given as (d, varR, pR, varS, pS).
func mcAnswerRel(rows [][5]float64) *table.Relation {
	sch := table.NewSchema(
		table.DataCol("d", table.KindInt),
		table.VarCol("R"), table.ProbCol("R"),
		table.VarCol("S"), table.ProbCol("S"),
	)
	rel := table.NewRelation(sch)
	for _, r := range rows {
		rel.MustAppend(table.Tuple{
			table.Int(int64(r[0])),
			table.VarValue(prob.Var(r[1])), table.Float(r[2]),
			table.VarValue(prob.Var(r[3])), table.Float(r[4]),
		})
	}
	return rel
}

func TestCollectLineage(t *testing.T) {
	// Answer d=1 has two duplicates sharing variable x1; answer d=2 one.
	rel := mcAnswerRel([][5]float64{
		{2, 5, 0.5, 6, 0.6},
		{1, 1, 0.1, 2, 0.2},
		{1, 1, 0.1, 3, 0.3},
	})
	l, err := CollectLineage(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Keys) != 2 || len(l.DNFs) != 2 {
		t.Fatalf("groups = %d", len(l.Keys))
	}
	// Sorted by the data column: d=1 first.
	if l.Keys[0][0].I != 1 || l.Keys[1][0].I != 2 {
		t.Fatalf("keys = %v, %v", l.Keys[0], l.Keys[1])
	}
	if got := l.DNFs[0].String(); got != "x1∧x2 ∨ x1∧x3" {
		t.Errorf("lineage of d=1 = %s", got)
	}
	if got := l.DNFs[1].String(); got != "x5∧x6" {
		t.Errorf("lineage of d=2 = %s", got)
	}
	if l.Clauses != 3 {
		t.Errorf("clauses = %d", l.Clauses)
	}
	if p := l.Assign.P(3); p != 0.3 {
		t.Errorf("P(x3) = %g", p)
	}
}

// TestMonteCarloMatchesExactOperator compares the Monte Carlo operator with
// the exact signature-based operator on the same answer relation: a single
// source R under signature R*, i.e. per-answer independent disjunctions —
// which the estimator resolves exactly through its disjoint-clause shortcut.
func TestMonteCarloMatchesExactOperator(t *testing.T) {
	sch := table.NewSchema(
		table.DataCol("d", table.KindInt),
		table.VarCol("R"), table.ProbCol("R"),
	)
	rel := table.NewRelation(sch)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		rel.MustAppend(table.Tuple{
			table.Int(int64(i % 10)),
			table.VarValue(prob.Var(i + 1)), table.Float(0.05 + 0.9*rng.Float64()),
		})
	}
	exact, err := Compute(rel, signature.NewStar(signature.Table("R")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx, stats, err := MonteCarlo(context.Background(), rel, prob.MCOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ExactAnswers != 10 || stats.Samples != 0 {
		t.Errorf("disjoint lineages should all resolve exactly: %+v", stats)
	}
	if exact.Len() != approx.Len() {
		t.Fatalf("row counts: exact %d, mc %d", exact.Len(), approx.Len())
	}
	de, da := exact.Schema.MustColIndex("d"), approx.Schema.MustColIndex("d")
	ce, ca := exact.Schema.MustColIndex(ConfCol), approx.Schema.MustColIndex(ConfCol)
	for i := range exact.Rows {
		if exact.Rows[i][de].I != approx.Rows[i][da].I {
			t.Fatalf("row %d: key mismatch %v vs %v", i, exact.Rows[i], approx.Rows[i])
		}
		if !prob.ApproxEqual(exact.Rows[i][ce].F, approx.Rows[i][ca].F, 1e-9) {
			t.Errorf("row %d: exact %g vs mc %g", i, exact.Rows[i][ce].F, approx.Rows[i][ca].F)
		}
	}
}

// TestMonteCarloVsWorlds checks the sampled path against possible-world
// enumeration on overlapping lineage (shared variables force sampling).
func TestMonteCarloVsWorlds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var rows [][5]float64
	for d := 0; d < 6; d++ {
		// Up to 4 duplicates per answer over a pool of 8 variables per
		// source, so clauses overlap within a group.
		for k := 0; k < 1+rng.Intn(4); k++ {
			rows = append(rows, [5]float64{
				float64(d),
				float64(1 + rng.Intn(8)), 0.1 + 0.8*rng.Float64(),
				float64(9 + rng.Intn(8)), 0.1 + 0.8*rng.Float64(),
			})
		}
	}
	// Re-randomized probabilities per (var) would be inconsistent; fix one
	// probability per variable id.
	probOf := make(map[int]float64)
	for i := range rows {
		for _, c := range []int{1, 3} {
			id := int(rows[i][c])
			if _, ok := probOf[id]; !ok {
				probOf[id] = rows[i][c+1]
			}
			rows[i][c+1] = probOf[id]
		}
	}
	rel := mcAnswerRel(rows)
	const eps = 0.02
	out, _, err := MonteCarlo(context.Background(), rel, prob.MCOptions{Epsilon: eps, Delta: 1e-4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	l, err := CollectLineage(rel)
	if err != nil {
		t.Fatal(err)
	}
	ci := out.Schema.MustColIndex(ConfCol)
	for i := range l.Keys {
		want, err := prob.ProbByWorlds(l.DNFs[i], l.Assign)
		if err != nil {
			t.Fatal(err)
		}
		got := out.Rows[i][ci].F
		if math.Abs(got-want) > eps {
			t.Errorf("answer %v: estimate %g, exact %g (|err| > %g) for %s",
				l.Keys[i], got, want, eps, l.DNFs[i])
		}
	}
}

// TestMonteCarloInconsistentProbability: the same variable with two
// different marginals is a corrupt input and must error, not silently pick
// one.
func TestMonteCarloInconsistentProbability(t *testing.T) {
	rel := mcAnswerRel([][5]float64{
		{1, 1, 0.1, 2, 0.2},
		{1, 1, 0.9, 3, 0.3},
	})
	if _, _, err := MonteCarlo(context.Background(), rel, prob.MCOptions{Seed: 1}); err == nil {
		t.Error("inconsistent marginals for x1 must be rejected")
	}
}
