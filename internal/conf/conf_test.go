package conf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/prob"
	"repro/internal/signature"
	"repro/internal/table"
)

// fig1Answer builds the answer relation of the paper's Fig. 1 for query Q:
// two duplicate (odate=1995-01-10) tuples with lineage x1y1z1 and x1y1z2.
func fig1Answer() *table.Relation {
	sch := table.NewSchema(
		table.DataCol("odate", table.KindString),
		table.VarCol("Cust"), table.ProbCol("Cust"),
		table.VarCol("Ord"), table.ProbCol("Ord"),
		table.VarCol("Item"), table.ProbCol("Item"),
	)
	rel := table.NewRelation(sch)
	// x1=1 (0.1), y1=5 (0.1), z1=11 (0.1), z2=12 (0.2)
	rel.MustAppend(table.Tuple{table.Str("1995-01-10"),
		table.VarValue(1), table.Float(0.1),
		table.VarValue(5), table.Float(0.1),
		table.VarValue(11), table.Float(0.1)})
	rel.MustAppend(table.Tuple{table.Str("1995-01-10"),
		table.VarValue(1), table.Float(0.1),
		table.VarValue(5), table.Float(0.1),
		table.VarValue(12), table.Float(0.2)})
	return rel
}

func introPlainSig() signature.Sig {
	return signature.NewStar(signature.NewConcat(
		signature.NewStar(signature.Table("Cust")),
		signature.NewStar(signature.NewConcat(
			signature.NewStar(signature.Table("Ord")),
			signature.NewStar(signature.Table("Item")),
		)),
	))
}

func introKeySig() signature.Sig {
	return signature.NewStar(signature.NewConcat(
		signature.Table("Cust"),
		signature.NewStar(signature.NewConcat(
			signature.Table("Ord"),
			signature.NewStar(signature.Table("Item")),
		)),
	))
}

// TestFig1Confidence: the confidence of (1995-01-10) is
// 0.1·0.1·(1-(1-0.1)(1-0.2)) = 0.0028, under both the plain and the
// FD-refined signature, with both the scheduled operator and the GRP
// reference.
func TestFig1Confidence(t *testing.T) {
	for _, tc := range []struct {
		name string
		sig  signature.Sig
	}{
		{"plain", introPlainSig()},
		{"withKeys", introKeySig()},
	} {
		rel := fig1Answer()
		out, stats, err := ComputeStats(rel, tc.sig, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if out.Len() != 1 {
			t.Fatalf("%s: got %d rows, want 1", tc.name, out.Len())
		}
		row := out.Rows[0]
		if row[0].S != "1995-01-10" {
			t.Errorf("%s: data value = %v", tc.name, row[0])
		}
		got := row[1].F
		if !prob.ApproxEqual(got, 0.0028, 1e-12) {
			t.Errorf("%s: conf = %g, want 0.0028", tc.name, got)
		}
		if stats.OutputTuples != 1 || stats.InputTuples != 2 {
			t.Errorf("%s: stats = %+v", tc.name, stats)
		}

		ref, err := GRPSequence(fig1Answer(), tc.sig)
		if err != nil {
			t.Fatalf("%s: GRP: %v", tc.name, err)
		}
		if ref.Len() != 1 || !prob.ApproxEqual(ref.Rows[0][1].F, 0.0028, 1e-12) {
			t.Errorf("%s: GRP reference = %v", tc.name, ref.Rows)
		}
	}
}

// TestScanCounts: the plain intro signature needs 3 scans (Ex. V.11) with
// steps [Ord*] and [Cust*]; the key-refined one needs a single scan.
func TestScanCounts(t *testing.T) {
	_, stats, err := ComputeStats(fig1Answer(), introPlainSig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scans != 3 {
		t.Errorf("plain signature scans = %d, want 3", stats.Scans)
	}
	if len(stats.Steps) != 2 || stats.Steps[0] != "[Ord*]" || stats.Steps[1] != "[Cust*]" {
		t.Errorf("steps = %v, want [[Ord*] [Cust*]]", stats.Steps)
	}
	_, stats, err = ComputeStats(fig1Answer(), introKeySig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scans != 1 {
		t.Errorf("key signature scans = %d, want 1", stats.Scans)
	}
}

func TestValidateSources(t *testing.T) {
	rel := fig1Answer()
	// Signature missing a table that has columns.
	bad := signature.NewStar(signature.NewConcat(
		signature.NewStar(signature.Table("Cust")),
		signature.NewStar(signature.Table("Ord"))))
	if _, err := Compute(rel, bad, Options{}); err == nil {
		t.Error("signature not covering Item's columns must be rejected")
	}
	// Signature with an unknown table.
	unknown := signature.NewStar(signature.Table("Nation"))
	if _, err := Compute(rel, unknown, Options{}); err == nil {
		t.Error("signature over unknown table must be rejected")
	}
}

// productRelation builds the answer of the Boolean product query R × S:
// all pairs of R-tuples and S-tuples.
func productRelation(rp, sp []float64) *table.Relation {
	sch := table.NewSchema(
		table.VarCol("R"), table.ProbCol("R"),
		table.VarCol("S"), table.ProbCol("S"),
	)
	rel := table.NewRelation(sch)
	for i, p := range rp {
		for j, q := range sp {
			rel.MustAppend(table.Tuple{
				table.VarValue(prob.Var(1 + i)), table.Float(p),
				table.VarValue(prob.Var(100 + j)), table.Float(q),
			})
		}
	}
	return rel
}

// TestProductSignature: R*S* over a full cross product computes
// Pr[∨r]·Pr[∨s] in one scan (Ex. V.9's product case).
func TestProductSignature(t *testing.T) {
	rp := []float64{0.1, 0.4}
	sp := []float64{0.2, 0.5, 0.3}
	rel := productRelation(rp, sp)
	sig := signature.NewConcat(
		signature.NewStar(signature.Table("R")),
		signature.NewStar(signature.Table("S")))
	if !signature.OneScan(sig) {
		t.Fatal("R*S* must be 1scan")
	}
	out, stats, err := ComputeStats(rel, sig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("Boolean query must produce one row, got %d", out.Len())
	}
	want := prob.OrAll(rp) * prob.OrAll(sp)
	if got := out.Rows[0][0].F; !prob.ApproxEqual(got, want, 1e-12) {
		t.Errorf("conf = %g, want %g", got, want)
	}
	if stats.Scans != 1 {
		t.Errorf("scans = %d, want 1", stats.Scans)
	}
	// Cross-check against the GRP reference.
	ref, err := GRPSequence(productRelation(rp, sp), sig)
	if err != nil {
		t.Fatal(err)
	}
	if !prob.ApproxEqual(ref.Rows[0][0].F, want, 1e-12) {
		t.Errorf("GRP reference = %v, want %g", ref.Rows[0], want)
	}
}

// branchingRelation builds the answer of R(a) ⋈ S(a,b) ⋈ T(a,c) — the
// signature (R S* T*)* whose scan hits the re-occurring-partition logic
// (disabled nodes) of Fig. 8.
func branchingRelation(a *prob.Assignment) *table.Relation {
	sch := table.NewSchema(
		table.VarCol("R"), table.ProbCol("R"),
		table.VarCol("S"), table.ProbCol("S"),
		table.VarCol("T"), table.ProbCol("T"),
	)
	rel := table.NewRelation(sch)
	// Two a-groups: a=1 has r1 with {s1,s2}×{t1,t2}; a=2 has r2 with
	// {s3}×{t3}.
	r1, r2 := prob.Var(1), prob.Var(2)
	s1, s2, s3 := prob.Var(11), prob.Var(12), prob.Var(13)
	t1, t2, t3 := prob.Var(21), prob.Var(22), prob.Var(23)
	a.MustSet(r1, 0.5)
	a.MustSet(r2, 0.6)
	a.MustSet(s1, 0.1)
	a.MustSet(s2, 0.2)
	a.MustSet(s3, 0.3)
	a.MustSet(t1, 0.4)
	a.MustSet(t2, 0.5)
	a.MustSet(t3, 0.6)
	add := func(r, s, tt prob.Var) {
		rel.MustAppend(table.Tuple{
			table.VarValue(r), table.Float(a.P(r)),
			table.VarValue(s), table.Float(a.P(s)),
			table.VarValue(tt), table.Float(a.P(tt)),
		})
	}
	add(r1, s1, t1)
	add(r1, s1, t2)
	add(r1, s2, t1)
	add(r1, s2, t2)
	add(r2, s3, t3)
	return rel
}

// TestBranchingTreeDisableLogic validates the many-to-many re-occurrence
// handling: Pr = OR over a of p(r)·Pr[∨s]·Pr[∨t].
func TestBranchingTreeDisableLogic(t *testing.T) {
	a := prob.NewAssignment()
	rel := branchingRelation(a)
	sig := signature.NewStar(signature.NewConcat(
		signature.Table("R"),
		signature.NewStar(signature.Table("S")),
		signature.NewStar(signature.Table("T"))))
	out, stats, err := ComputeStats(rel, sig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scans != 1 {
		t.Errorf("(R S* T*)* should be a single scan, got %d", stats.Scans)
	}
	g1 := 0.5 * prob.Or(0.1, 0.2) * prob.Or(0.4, 0.5)
	g2 := 0.6 * 0.3 * 0.6
	want := prob.Or(g1, g2)
	if got := out.Rows[0][0].F; !prob.ApproxEqual(got, want, 1e-12) {
		t.Errorf("conf = %g, want %g", got, want)
	}

	// The DNF oracle agrees: ∨ over rows of r∧s∧t.
	d := prob.NewDNF()
	vi, si, ti := rel.Schema.VarIndex("R"), rel.Schema.VarIndex("S"), rel.Schema.VarIndex("T")
	for _, row := range rel.Rows {
		d.Add(prob.NewClause(row[vi].AsVar(), row[si].AsVar(), row[ti].AsVar()))
	}
	if oracle := d.Prob(a); !prob.ApproxEqual(want, oracle, 1e-12) {
		t.Fatalf("test fixture inconsistent: closed form %g vs oracle %g", want, oracle)
	}
}

// TestMultipleBags: distinct data tuples are processed independently.
func TestMultipleBags(t *testing.T) {
	sch := table.NewSchema(
		table.DataCol("d", table.KindInt),
		table.VarCol("R"), table.ProbCol("R"),
	)
	rel := table.NewRelation(sch)
	rel.MustAppend(table.Tuple{table.Int(2), table.VarValue(3), table.Float(0.3)})
	rel.MustAppend(table.Tuple{table.Int(1), table.VarValue(1), table.Float(0.1)})
	rel.MustAppend(table.Tuple{table.Int(1), table.VarValue(2), table.Float(0.2)})
	sig := signature.NewStar(signature.Table("R"))
	out, err := Compute(rel, sig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("want 2 distinct tuples, got %d", out.Len())
	}
	// Sorted by data column: d=1 first.
	if out.Rows[0][0].I != 1 || !prob.ApproxEqual(out.Rows[0][1].F, prob.Or(0.1, 0.2), 1e-12) {
		t.Errorf("bag d=1 = %v", out.Rows[0])
	}
	if out.Rows[1][0].I != 2 || !prob.ApproxEqual(out.Rows[1][1].F, 0.3, 1e-12) {
		t.Errorf("bag d=2 = %v", out.Rows[1])
	}
}

// TestBareTableSignature: signature R is the identity — probabilities pass
// through per distinct tuple.
func TestBareTableSignature(t *testing.T) {
	sch := table.NewSchema(
		table.DataCol("k", table.KindInt),
		table.VarCol("R"), table.ProbCol("R"),
	)
	rel := table.NewRelation(sch)
	rel.MustAppend(table.Tuple{table.Int(7), table.VarValue(1), table.Float(0.25)})
	out, err := Compute(rel, signature.Table("R"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !prob.ApproxEqual(out.Rows[0][1].F, 0.25, 1e-12) {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestEmptyInput(t *testing.T) {
	sch := table.NewSchema(table.VarCol("R"), table.ProbCol("R"))
	rel := table.NewRelation(sch)
	out, err := Compute(rel, signature.NewStar(signature.Table("R")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("empty input must give empty output, got %v", out.Rows)
	}
}

// randomHierAnswer generates a random materialized answer of the query
// R(a) ⋈ S(a,b) ⋈ T(a,b,c) — signature (R* (S* T*)*)* — by generating the
// base tables and joining them by hand; it returns the relation, the full
// assignment and the DNF of the (Boolean) answer.
func randomHierAnswer(r *rand.Rand) (*table.Relation, *prob.Assignment, *prob.DNF) {
	a := prob.NewAssignment()
	next := prob.Var(1)
	newVar := func() prob.Var {
		v := next
		next++
		a.MustSet(v, 0.05+0.9*r.Float64())
		return v
	}
	type rRow struct {
		av int
		v  prob.Var
	}
	type sRow struct {
		av, bv int
		v      prob.Var
	}
	type tRow struct {
		av, bv, cv int
		v          prob.Var
	}
	var rs []rRow
	var ss []sRow
	var ts []tRow
	nA, nB, nC := 1+r.Intn(2), 1+r.Intn(2), 1+r.Intn(2)
	for av := 0; av < nA; av++ {
		if r.Intn(4) > 0 {
			rs = append(rs, rRow{av, newVar()})
		}
		for bv := 0; bv < nB; bv++ {
			if r.Intn(4) > 0 {
				ss = append(ss, sRow{av, bv, newVar()})
			}
			for cv := 0; cv < nC; cv++ {
				if r.Intn(3) > 0 {
					ts = append(ts, tRow{av, bv, cv, newVar()})
				}
			}
		}
	}
	sch := table.NewSchema(
		table.VarCol("R"), table.ProbCol("R"),
		table.VarCol("S"), table.ProbCol("S"),
		table.VarCol("T"), table.ProbCol("T"),
	)
	rel := table.NewRelation(sch)
	d := prob.NewDNF()
	for _, rr := range rs {
		for _, sr := range ss {
			if sr.av != rr.av {
				continue
			}
			for _, tr := range ts {
				if tr.av != sr.av || tr.bv != sr.bv {
					continue
				}
				rel.MustAppend(table.Tuple{
					table.VarValue(rr.v), table.Float(a.P(rr.v)),
					table.VarValue(sr.v), table.Float(a.P(sr.v)),
					table.VarValue(tr.v), table.Float(a.P(tr.v)),
				})
				d.Add(prob.NewClause(rr.v, sr.v, tr.v))
			}
		}
	}
	return rel, a, d
}

// TestQuickOperatorMatchesOracle is the central property test: on random
// hierarchical answers, the scheduled operator, the GRP reference and the
// Shannon-expansion oracle all agree.
func TestQuickOperatorMatchesOracle(t *testing.T) {
	sig := signature.NewStar(signature.NewConcat(
		signature.NewStar(signature.Table("R")),
		signature.NewStar(signature.NewConcat(
			signature.NewStar(signature.Table("S")),
			signature.NewStar(signature.Table("T")))),
	))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel, a, d := randomHierAnswer(r)
		if rel.Len() == 0 {
			return true
		}
		want := d.Prob(a)
		cp := *rel
		out, err := Compute(&cp, sig, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 1 {
			return false
		}
		if !prob.ApproxEqual(out.Rows[0][0].F, want, 1e-9) {
			t.Logf("seed %d: operator %g oracle %g", seed, out.Rows[0][0].F, want)
			return false
		}
		ref, err := GRPSequence(rel, sig)
		if err != nil {
			t.Fatal(err)
		}
		if !prob.ApproxEqual(ref.Rows[0][0].F, want, 1e-9) {
			t.Logf("seed %d: GRP %g oracle %g", seed, ref.Rows[0][0].F, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickKeyRefinedSignatureAgrees: when R and S are keyed (one tuple per
// a resp. (a,b)), the more precise signature (R(S T*)*)* gives the same
// result as the conservative starred one.
func TestQuickKeyRefinedSignatureAgrees(t *testing.T) {
	loose := signature.NewStar(signature.NewConcat(
		signature.NewStar(signature.Table("R")),
		signature.NewStar(signature.NewConcat(
			signature.NewStar(signature.Table("S")),
			signature.NewStar(signature.Table("T")))),
	))
	tight := signature.NewStar(signature.NewConcat(
		signature.Table("R"),
		signature.NewStar(signature.NewConcat(
			signature.Table("S"),
			signature.NewStar(signature.Table("T")))),
	))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel, _, _ := randomHierAnswer(r)
		if rel.Len() == 0 {
			return true
		}
		cp1 := *rel
		cp2 := *rel
		a, err := Compute(&cp1, loose, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compute(&cp2, tight, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The generator produces at most one R-tuple per a and one S-tuple
		// per (a,b), so both signatures are correct for it.
		return a.Len() == 1 && b.Len() == 1 &&
			prob.ApproxEqual(a.Rows[0][0].F, b.Rows[0][0].F, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSpillingOperator: the operator stays correct when its sorts spill.
func TestSpillingOperator(t *testing.T) {
	sch := table.NewSchema(
		table.DataCol("d", table.KindInt),
		table.VarCol("R"), table.ProbCol("R"),
	)
	rel := table.NewRelation(sch)
	r := rand.New(rand.NewSource(9))
	perBag := make(map[int64][]float64)
	for i := 0; i < 4000; i++ {
		d := int64(r.Intn(10))
		p := 0.001 + 0.01*r.Float64()
		perBag[d] = append(perBag[d], p)
		rel.MustAppend(table.Tuple{table.Int(d), table.VarValue(prob.Var(i + 1)), table.Float(p)})
	}
	out, stats, err := ComputeStats(rel, signature.NewStar(signature.Table("R")),
		Options{SortBudget: 256, TmpDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SpilledRuns < 2 {
		t.Errorf("expected spilled runs, got %d", stats.SpilledRuns)
	}
	if out.Len() != len(perBag) {
		t.Fatalf("got %d bags, want %d", out.Len(), len(perBag))
	}
	for _, row := range out.Rows {
		want := prob.OrAll(perBag[row[0].I])
		if !prob.ApproxEqual(row[1].F, want, 1e-9) {
			t.Errorf("bag %d: conf %g want %g", row[0].I, row[1].F, want)
		}
	}
}
