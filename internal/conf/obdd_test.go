package conf

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/obdd"
	"repro/internal/prob"
	"repro/internal/signature"
	"repro/internal/table"
)

// TestOBDDMatchesEnumeration: the OBDD operator's confidences on a shared-
// variable answer relation (correlated duplicates, beyond the exact
// operator's independence shortcuts) match possible-world enumeration.
func TestOBDDMatchesEnumeration(t *testing.T) {
	rel := mcAnswerRel([][5]float64{
		{1, 1, 0.1, 2, 0.2},
		{1, 1, 0.1, 3, 0.3},
		{1, 4, 0.7, 3, 0.3},
		{2, 5, 0.5, 6, 0.6},
	})
	out, stats, err := OBDD(context.Background(), nil, rel, nil, obdd.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bounded != 0 || stats.ExactAnswers != 2 || stats.OutputTuples != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	l, err := CollectLineage(rel)
	if err != nil {
		t.Fatal(err)
	}
	ci := out.Schema.MustColIndex(ConfCol)
	for i := range l.Keys {
		want, err := prob.ProbByWorlds(l.DNFs[i], l.Assign)
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Rows[i][ci].F; !prob.ApproxEqual(got, want, 1e-9) {
			t.Errorf("answer %d: obdd %g, worlds %g", i, got, want)
		}
	}
	if stats.LowerBound != stats.UpperBound && stats.MaxWidth != 0 {
		// All answers exact: the certified interval collapses per answer,
		// so the aggregate bounds span exactly the answer confidences.
		t.Errorf("exact run should have zero max width: %+v", stats)
	}
}

// TestOBDDMatchesExactOperator: on a relation the signature-based operator
// handles, OBDD (with the signature-derived order) computes the same
// confidences.
func TestOBDDMatchesExactOperator(t *testing.T) {
	sch := table.NewSchema(
		table.DataCol("d", table.KindInt),
		table.VarCol("R"), table.ProbCol("R"),
	)
	rel := table.NewRelation(sch)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		rel.MustAppend(table.Tuple{
			table.Int(int64(i % 10)),
			table.VarValue(prob.Var(i + 1)), table.Float(0.05 + 0.9*rng.Float64()),
		})
	}
	sig := signature.NewStar(signature.Table("R"))
	exact, err := Compute(rel, sig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaOBDD, stats, err := OBDD(context.Background(), nil, rel, sig, obdd.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bounded != 0 || stats.Nodes == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	ce, co := exact.Schema.MustColIndex(ConfCol), viaOBDD.Schema.MustColIndex(ConfCol)
	if exact.Len() != viaOBDD.Len() {
		t.Fatalf("row counts: %d vs %d", exact.Len(), viaOBDD.Len())
	}
	for i := range exact.Rows {
		if e, o := exact.Rows[i][ce].F, viaOBDD.Rows[i][co].F; math.Abs(e-o) > 1e-9 {
			t.Errorf("row %d: exact %g, obdd %g", i, e, o)
		}
	}
}

// TestOBDDExactOnlyBudget: in exact-only mode a starved budget surfaces
// ErrOBDDBudget (the fallback chain's trigger); otherwise the same input
// yields certified bounds around the enumeration truth.
func TestOBDDExactOnlyBudget(t *testing.T) {
	// Chained shared variables so no polynomial shortcut applies.
	rel := mcAnswerRel([][5]float64{
		{1, 1, 0.3, 2, 0.4},
		{1, 2, 0.4, 3, 0.5},
		{1, 3, 0.5, 4, 0.6},
		{1, 4, 0.6, 5, 0.7},
	})
	opts := obdd.Options{NodeBudget: 1}
	if _, _, err := OBDD(context.Background(), nil, rel, nil, opts, true); !errors.Is(err, ErrOBDDBudget) {
		t.Fatalf("exact-only starved budget: err = %v", err)
	}
	out, stats, err := OBDD(context.Background(), nil, rel, nil, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bounded != 1 || stats.MaxWidth <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	l, err := CollectLineage(rel)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := prob.ProbByWorlds(l.DNFs[0], l.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LowerBound > truth || truth > stats.UpperBound {
		t.Errorf("[%g, %g] does not certify truth %g", stats.LowerBound, stats.UpperBound, truth)
	}
	ci := out.Schema.MustColIndex(ConfCol)
	if mid := out.Rows[0][ci].F; math.Abs(mid-truth) > stats.MaxWidth/2+1e-9 {
		t.Errorf("midpoint %g further than half-width %g from truth %g", mid, stats.MaxWidth/2, truth)
	}
}

// TestCollectLineageSources: lineage collection records which source table
// carried each variable — the hook for signature-derived OBDD orders.
func TestCollectLineageSources(t *testing.T) {
	rel := mcAnswerRel([][5]float64{{1, 1, 0.1, 2, 0.2}})
	l, err := CollectLineage(rel)
	if err != nil {
		t.Fatal(err)
	}
	if l.Source[1] != "R" || l.Source[2] != "S" {
		t.Errorf("sources = %v", l.Source)
	}
}
