package conf

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/dtree"
	"repro/internal/obdd"
	"repro/internal/prob"
)

// TestDTreeMatchesEnumeration: the d-tree operator's confidences on a
// shared-variable answer relation (correlated duplicates, beyond the exact
// operator's independence shortcuts) match possible-world enumeration.
func TestDTreeMatchesEnumeration(t *testing.T) {
	rel := mcAnswerRel([][5]float64{
		{1, 1, 0.1, 2, 0.2},
		{1, 1, 0.1, 3, 0.3},
		{1, 4, 0.7, 3, 0.3},
		{2, 5, 0.5, 6, 0.6},
	})
	out, stats, err := DTree(context.Background(), nil, rel, dtree.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bounded != 0 || stats.ExactAnswers != 2 || stats.OutputTuples != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	l, err := CollectLineage(rel)
	if err != nil {
		t.Fatal(err)
	}
	ci := out.Schema.MustColIndex(ConfCol)
	for i := range l.Keys {
		want, err := prob.ProbByWorlds(l.DNFs[i], l.Assign)
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Rows[i][ci].F; !prob.ApproxEqual(got, want, 1e-9) {
			t.Errorf("answer %d: dtree %g, worlds %g", i, got, want)
		}
	}
}

// TestDTreeMatchesOBDDOperator: both lineage tiers compute the same
// confidences on the same answer relation (bit-for-bit they may differ in
// the last ulp — the expansions run in different orders — so compare at the
// exactness tolerance).
func TestDTreeMatchesOBDDOperator(t *testing.T) {
	rel := mcAnswerRel([][5]float64{
		{1, 1, 0.3, 2, 0.4},
		{1, 2, 0.4, 3, 0.5},
		{1, 3, 0.5, 4, 0.6},
		{2, 4, 0.6, 5, 0.7},
		{2, 5, 0.7, 6, 0.8},
	})
	viaOBDD, ostats, err := OBDD(context.Background(), nil, rel, nil, obdd.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	viaDTree, dstats, err := DTree(context.Background(), nil, rel, dtree.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ostats.OutputTuples != dstats.OutputTuples || dstats.Bounded != 0 {
		t.Fatalf("obdd stats %+v vs dtree stats %+v", ostats, dstats)
	}
	co, cd := viaOBDD.Schema.MustColIndex(ConfCol), viaDTree.Schema.MustColIndex(ConfCol)
	for i := range viaOBDD.Rows {
		if o, d := viaOBDD.Rows[i][co].F, viaDTree.Rows[i][cd].F; math.Abs(o-d) > 1e-9 {
			t.Errorf("row %d: obdd %g, dtree %g", i, o, d)
		}
	}
}

// TestDTreeExactOnlyBudget: in exact-only mode a starved budget surfaces
// ErrDTreeBudget (the fallback chain's trigger); otherwise the same input
// yields certified bounds around the enumeration truth.
func TestDTreeExactOnlyBudget(t *testing.T) {
	// Chained shared variables so no independence rule fires and every
	// level needs a Shannon step.
	rel := mcAnswerRel([][5]float64{
		{1, 1, 0.3, 2, 0.4},
		{1, 2, 0.4, 3, 0.5},
		{1, 3, 0.5, 4, 0.6},
		{1, 4, 0.6, 5, 0.7},
	})
	opts := dtree.Options{NodeBudget: 1}
	if _, _, err := DTree(context.Background(), nil, rel, opts, true); !errors.Is(err, ErrDTreeBudget) {
		t.Fatalf("exact-only starved budget: err = %v", err)
	}
	out, stats, err := DTree(context.Background(), nil, rel, opts, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bounded != 1 || stats.MaxWidth <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	l, err := CollectLineage(rel)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := prob.ProbByWorlds(l.DNFs[0], l.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LowerBound > truth || truth > stats.UpperBound {
		t.Errorf("[%g, %g] does not certify truth %g", stats.LowerBound, stats.UpperBound, truth)
	}
	ci := out.Schema.MustColIndex(ConfCol)
	if mid := out.Rows[0][ci].F; math.Abs(mid-truth) > stats.MaxWidth/2+1e-9 {
		t.Errorf("midpoint %g further than half-width %g from truth %g", mid, stats.MaxWidth/2, truth)
	}
}
