package conf

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/obdd"
	"repro/internal/pool"
	"repro/internal/prob"
	"repro/internal/signature"
	"repro/internal/table"
)

// This file is the OBDD-based confidence operator: the exact middle tier
// between the signature-driven sort+scan operator (operator.go, needs a
// hierarchical signature) and the Monte Carlo estimator (mc.go, needs
// nothing but only estimates). Like the Monte Carlo operator it consumes
// the raw materialized answer relation and groups it into one lineage DNF
// per distinct answer; unlike it, each DNF is compiled into a reduced OBDD
// and evaluated exactly — or, when the diagram exceeds the node budget,
// bounded by certified deterministic [lo, hi] intervals (internal/obdd).

// ErrOBDDBudget is returned by OBDD in exact-only mode when some answer's
// diagram exceeds the node budget; callers fall through to Monte Carlo.
var ErrOBDDBudget = errors.New("conf: OBDD node budget exceeded")

// OBDDStats reports what the OBDD operator did.
type OBDDStats struct {
	InputTuples  int64 // rows entering lineage collection
	OutputTuples int64 // distinct answers
	Clauses      int64 // lineage clauses across all answers
	Vars         int64 // distinct lineage variables across all answers
	DupRows      int64 // input rows deduplicated away during collection
	Nodes        int64 // OBDD nodes plus anytime expansion steps, all answers
	MemoHits     int64 // residual-memo hits across all compilations
	MemoMisses   int64 // residual-memo misses across all compilations
	HdrRecycled  int64 // clause headers recycled instead of arena-carved (builder-state dependent)
	ExactAnswers int64 // answers with exact confidences
	Bounded      int64 // answers resolved only to [lo, hi] bounds
	Stopped      int64 // bounded answers cut short by a deadline-watermark Stop
	// LowerBound and UpperBound certify every answer's true confidence:
	// min over answers of the per-answer lo, max of the per-answer hi
	// (exact answers contribute their exact value to both).
	LowerBound float64
	UpperBound float64
	// MaxWidth is the widest per-answer interval (0 when all exact): each
	// reported confidence is within MaxWidth/2 of the truth.
	MaxWidth float64
}

// OBDD computes per-answer confidences of a materialized answer relation by
// OBDD compilation of each answer's lineage: CollectLineage, then one
// compile+evaluate per distinct answer, fanned across the worker pool (each
// answer compiles into its own hash-consed unique table, so the workers
// share nothing and need no locks). The variable order is derived from
// sig when one is given (each clause visited in signature-table order,
// interleaved clause by clause); with a nil sig it falls back to the pure
// interleaved-occurrence order — the case for queries without a
// hierarchical signature, which is exactly where this operator earns its
// keep. Answers whose diagram exceeds opts.NodeBudget get the certified
// bound midpoint as their confidence (see OBDDStats.LowerBound/UpperBound),
// unless exactOnly is set, in which case ErrOBDDBudget is returned so the
// caller can fall through to Monte Carlo. The output has the input's data
// columns plus the conf column, sorted by the data columns, and is a
// deterministic function of the input and options — never of the worker
// count. ctx and p may be nil (no cancellation, serial execution).
func OBDD(ctx context.Context, p *pool.Pool, rel *table.Relation, sig signature.Sig, opts obdd.Options, exactOnly bool) (*table.Relation, *OBDDStats, error) {
	l, err := CollectLineage(rel)
	if err != nil {
		return nil, nil, err
	}
	return OBDDLineage(ctx, p, l, sig, opts, exactOnly)
}

// OBDDLineage is OBDD over an already collected lineage — the fallback
// chain collects once and hands the same lineage to its Monte Carlo rung
// when compilation blows the budget.
func OBDDLineage(ctx context.Context, p *pool.Pool, l *Lineage, sig signature.Sig, opts obdd.Options, exactOnly bool) (*table.Relation, *OBDDStats, error) {
	rank := sigRank(sig, l.Source)

	outCols := append(append([]table.Column(nil), l.Schema.Cols...), table.DataCol(ConfCol, table.KindFloat))
	out := table.NewRelation(table.NewSchema(outCols...))
	stats := &OBDDStats{
		InputTuples:  l.Input,
		OutputTuples: int64(len(l.Keys)),
		Clauses:      l.Clauses,
		Vars:         l.Vars,
		DupRows:      l.DupRows,
	}
	// Compile every answer on the pool; reduce the results serially in
	// answer order so the stats aggregation is deterministic. pool.Do
	// returns the lowest-index error, matching the serial loop's behaviour
	// on budget overruns. Builders are reused across the fan-out through a
	// sync.Pool — one set of unique/apply/memo tables per worker, Reset
	// between answers — which changes nothing about the result (each
	// compilation is a pure function of its lineage, order and budget) but
	// drops the per-answer map allocations.
	type compileState struct {
		b     *obdd.Builder
		order obdd.OrderScratch
	}
	var builders sync.Pool
	results := make([]obdd.Result, len(l.Keys))
	err := pool.Get(p, 1).Do(ctx, len(l.Keys), func(i int) error {
		if opts.Stop != nil && opts.Stop() {
			// Deadline watermark fired before this answer's compilation
			// started: certify it with cheap clause-weight bounds instead
			// of spending the expiring budget on a compile.
			lo, hi := obdd.CheapBounds(l.DNFs[i], l.Assign)
			results[i] = obdd.Result{P: (lo + hi) / 2, Lo: lo, Hi: hi, Stopped: lo != hi, Exact: lo == hi}
			return nil
		}
		cs, _ := builders.Get().(*compileState)
		if cs == nil {
			cs = &compileState{}
		}
		// The deferred Put also runs on panic paths, so a panicking
		// compilation cannot strand the builder outside the sync.Pool;
		// Reset re-arms it for the next answer.
		defer builders.Put(cs)
		order := cs.order.OccurrenceOrder(l.DNFs[i], rank)
		if cs.b == nil {
			cs.b = obdd.NewBuilder(order, opts.NodeBudget)
		} else {
			cs.b.Reset(order, opts.NodeBudget)
		}
		res, err := obdd.ProbWith(cs.b, l.DNFs[i], l.Assign, opts)
		if err != nil {
			return fmt.Errorf("conf: answer %d: %w", i, err)
		}
		if exactOnly && !res.Exact && !res.Stopped {
			// A deadline-stopped result is accepted even in exact-only
			// mode: its bounds are certified, and falling further down the
			// ladder would spend deadline that is already gone.
			budget := opts.NodeBudget
			if budget <= 0 {
				budget = obdd.DefaultNodeBudget
			}
			return fmt.Errorf("%w: answer %d (%d clauses, budget %d)",
				ErrOBDDBudget, i, len(l.DNFs[i].Clauses), budget)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, key := range l.Keys {
		res := results[i]
		if res.Exact {
			stats.ExactAnswers++
		} else {
			stats.Bounded++
			if res.Stopped {
				stats.Stopped++
			}
		}
		stats.Nodes += int64(res.Nodes)
		stats.MemoHits += res.MemoHits
		stats.MemoMisses += res.MemoMisses
		stats.HdrRecycled += res.HdrRecycled
		if i == 0 || res.Lo < stats.LowerBound {
			stats.LowerBound = res.Lo
		}
		if i == 0 || res.Hi > stats.UpperBound {
			stats.UpperBound = res.Hi
		}
		if w := res.Hi - res.Lo; w > stats.MaxWidth {
			stats.MaxWidth = w
		}
		row := make(table.Tuple, 0, len(outCols))
		row = append(row, key...)
		row = append(row, table.Float(res.P))
		out.Rows = append(out.Rows, row)
	}
	return out, stats, nil
}

// sigRank turns a query signature into a within-clause variable rank: each
// variable is ranked by its source table's position in the signature's
// left-to-right table order, so OccurrenceOrder visits every clause
// root-table first — the order under which hierarchical lineage compiles
// into linear-size diagrams. A nil signature yields a nil rank (pure
// occurrence order).
func sigRank(sig signature.Sig, source map[prob.Var]string) func(prob.Var) int {
	if sig == nil {
		return nil
	}
	tables := signature.Tables(sig)
	pos := make(map[string]int, len(tables))
	for i, t := range tables {
		if _, ok := pos[t]; !ok {
			pos[t] = i
		}
	}
	return func(v prob.Var) int {
		if src, ok := source[v]; ok {
			if r, ok := pos[src]; ok {
				return r
			}
		}
		return len(tables)
	}
}
