package conf

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/signature"
	"repro/internal/table"
)

// GRPSequence evaluates the confidence operator by literally executing the
// SQL translation of Fig. 5: one GRP (sort + group-by with min/prob
// aggregates) statement per star and one propagation projection per
// concatenation, exactly as in the Q1…Q7 sequence of Fig. 6. It is
// quadratically more sort passes than the scheduled operator and exists as
// the executable semantics against which Compute is cross-validated, and as
// the building block of maximally eager plans.
func GRPSequence(rel *table.Relation, sig signature.Sig) (*table.Relation, error) {
	if err := validateSources(rel.Schema, sig); err != nil {
		return nil, err
	}
	cur := engine.Operator(engine.NewMemScan(rel))
	cur, vp, err := applySig(cur, sig)
	if err != nil {
		return nil, err
	}
	// Final: select attrs(Q') − {V}: the data columns plus the surviving
	// probability column, renamed to conf.
	s := cur.Schema()
	var exprs []engine.Expr
	var outCols []table.Column
	for i, c := range s.Cols {
		if c.Role == table.RoleData {
			exprs = append(exprs, engine.ColRef{Idx: i, Name: c.Name})
			outCols = append(outCols, c)
		}
	}
	pi := s.ColIndex(vp.p)
	if pi < 0 {
		return nil, fmt.Errorf("conf: probability column %s lost during GRP sequence", vp.p)
	}
	exprs = append(exprs, engine.ColRef{Idx: pi, Name: ConfCol})
	outCols = append(outCols, table.DataCol(ConfCol, table.KindFloat))
	proj, err := engine.NewProject(cur, table.NewSchema(outCols...), exprs)
	if err != nil {
		return nil, err
	}
	return engine.Collect(engine.NewHashDistinct(proj))
}

// vpCols names the variable/probability column pair that represents the
// subexpression processed so far ("the table encountered last in the
// bottom-up traversal", Fig. 5).
type vpCols struct{ v, p string }

// applySig is J·K of Fig. 5.
func applySig(in engine.Operator, sig signature.Sig) (engine.Operator, vpCols, error) {
	switch x := sig.(type) {
	case signature.Table:
		return in, vpCols{v: "V(" + string(x) + ")", p: "P(" + string(x) + ")"}, nil

	case signature.Star:
		// Jα*K: process α, then GRP[attrs−{V1,P1}; min(V1), prob(P1)].
		cur, vp, err := applySig(in, x.Inner)
		if err != nil {
			return nil, vpCols{}, err
		}
		s := cur.Schema()
		vi, pi := s.ColIndex(vp.v), s.ColIndex(vp.p)
		if vi < 0 || pi < 0 {
			return nil, vpCols{}, fmt.Errorf("conf: GRP aggregation: columns %s/%s missing in %v", vp.v, vp.p, s.Names())
		}
		var groupBy []int
		for i := range s.Cols {
			if i != vi && i != pi {
				groupBy = append(groupBy, i)
			}
		}
		g := engine.GroupSorted(cur, groupBy, []engine.AggSpec{
			{Kind: engine.AggMin, Col: vi, Out: s.Cols[vi]},
			{Kind: engine.AggProbOr, Col: pi, Out: s.Cols[pi]},
		})
		return g, vp, nil

	case signature.Concat:
		// JαβK: process right-to-left, then fold each pair by a propagation
		// projection P1 := P1·P2, dropping V2 and P2.
		cur := in
		var right vpCols
		for i := len(x) - 1; i >= 0; i-- {
			var err error
			var left vpCols
			cur, left, err = applySig(cur, x[i])
			if err != nil {
				return nil, vpCols{}, err
			}
			if i == len(x)-1 {
				right = left
				continue
			}
			cur, err = propagate(cur, left, right)
			if err != nil {
				return nil, vpCols{}, err
			}
			right = left
		}
		return cur, right, nil

	default:
		return nil, vpCols{}, fmt.Errorf("conf: unknown signature shape %T", sig)
	}
}

// propagate implements the JαβK projection of Fig. 5: multiply P1 by P2,
// drop V2 and P2.
func propagate(in engine.Operator, left, right vpCols) (engine.Operator, error) {
	s := in.Schema()
	p1 := s.ColIndex(left.p)
	v2 := s.ColIndex(right.v)
	p2 := s.ColIndex(right.p)
	if p1 < 0 || v2 < 0 || p2 < 0 {
		return nil, fmt.Errorf("conf: propagation: columns %s/%s/%s missing in %v", left.p, right.v, right.p, s.Names())
	}
	var exprs []engine.Expr
	var cols []table.Column
	for i, c := range s.Cols {
		switch i {
		case v2, p2:
			continue
		case p1:
			exprs = append(exprs, engine.Mul{L: engine.ColRef{Idx: p1, Name: left.p}, R: engine.ColRef{Idx: p2, Name: right.p}})
			cols = append(cols, c)
		default:
			exprs = append(exprs, engine.ColRef{Idx: i, Name: c.Name})
			cols = append(cols, c)
		}
	}
	return engine.NewProject(in, table.NewSchema(cols...), exprs)
}
