// Package conf implements SPROUT's contribution: the secondary-storage
// operator for exact confidence computation (paper §V). Three cooperating
// pieces live here:
//
//   - the streaming one-scan algorithm over a 1scanTree (Fig. 8), which
//     turns the DNF encoded in the variable columns of a sorted answer
//     relation into 1OF and evaluates its probability on the fly;
//   - the multi-scan scheduler (§V.C, Ex. V.11) that aggregates starred
//     subexpressions of a non-1scan signature until the remainder has the
//     1scan property, one sort+scan per aggregation;
//   - the literal GRP-sequence semantics of Fig. 5/6 (grp.go), used as a
//     reference implementation for cross-validation;
//   - the OBDD operator (obdd.go), which groups the answer relation into
//     per-answer lineage DNFs (CollectLineage) and compiles each into a
//     reduced ordered BDD (internal/obdd): exact confidences whenever the
//     diagram fits the node budget — signature or not — and certified
//     deterministic [lo, hi] bounds when it does not;
//   - the Monte Carlo operator (mc.go), which shares the lineage
//     collection and estimates each confidence with the (ε, δ) samplers
//     of internal/prob.
//
// Together they form the engine's fallback ladder for queries whose exact
// confidence computation is #P-hard: sort+scan (needs a hierarchical
// signature) → OBDD-exact under budget → Monte Carlo.
package conf

import (
	"fmt"

	"repro/internal/prob"
	"repro/internal/signature"
	"repro/internal/table"
)

// scanNode is one node of the runtime 1scanTree: it tracks the running
// probability of the current partition (crtP), the accumulated probability
// of finished partitions (allP), and the enabled flag that suppresses
// re-occurring partitions (Fig. 8).
//
// A virtual root (virtual == true) represents a relational product of
// unconnected subexpressions (signatures like R*S* — Def. V.8 classifies
// them as 1scan although no table is one-to-one with the outer grouping):
// its "partition" spans the whole bag and its probability is the product of
// its children's accumulated results. Folding the components into one
// another instead would double-count shared partitions.
type scanNode struct {
	tableName string
	virtual   bool
	pos       int // position in the sort order; -1 for the virtual root
	varIdx    int // column index of V(table); -1 for the virtual root
	probIdx   int // column index of P(table); -1 for the virtual root
	children  []*scanNode
	crtP      float64
	allP      float64
	enabled   bool
}

// runtimeTree is the evaluator for one bag of duplicates.
type runtimeTree struct {
	root  *scanNode
	nodes []*scanNode // real (non-virtual) nodes in preorder
}

// newRuntimeTree builds the runtime 1scanTree for a 1scan signature,
// binding each table to its V/P columns in schema. The tree shape follows
// §V.C: stars only express multiplicity; in a concatenation, the first bare
// table becomes the subtree root and all other components its children; a
// concatenation without a bare table (a product, necessarily at the top
// level) gets a virtual AND root.
func newRuntimeTree(sig signature.Sig, schema *table.Schema) (*runtimeTree, error) {
	if !signature.OneScan(sig) {
		return nil, fmt.Errorf("conf: signature %s lacks the 1scan property", sig)
	}
	rt := &runtimeTree{}
	var mkNode func(name string) (*scanNode, error)
	mkNode = func(name string) (*scanNode, error) {
		vi, pi := schema.VarIndex(name), schema.ProbIndex(name)
		if vi < 0 || pi < 0 {
			return nil, fmt.Errorf("conf: input schema %v lacks V/P columns for table %s", schema.Names(), name)
		}
		return &scanNode{tableName: name, varIdx: vi, probIdx: pi}, nil
	}
	var build func(s signature.Sig) (*scanNode, error)
	build = func(s signature.Sig) (*scanNode, error) {
		switch x := s.(type) {
		case signature.Table:
			return mkNode(string(x))
		case signature.Star:
			return build(x.Inner)
		case signature.Concat:
			rootIdx := concatRootIndex(x)
			var root *scanNode
			if rootIdx >= 0 {
				n, err := mkNode(string(x[rootIdx].(signature.Table)))
				if err != nil {
					return nil, err
				}
				root = n
			} else {
				root = &scanNode{virtual: true, pos: -1, varIdx: -1, probIdx: -1}
			}
			for i, comp := range x {
				if i == rootIdx {
					continue
				}
				child, err := build(comp)
				if err != nil {
					return nil, err
				}
				root.children = append(root.children, child)
			}
			return root, nil
		default:
			return nil, fmt.Errorf("conf: unknown signature shape %T", s)
		}
	}
	root, err := build(sig)
	if err != nil {
		return nil, err
	}
	rt.root = root
	// Number the real nodes in preorder — this is the required sort order
	// of the variable columns.
	var number func(n *scanNode)
	number = func(n *scanNode) {
		if !n.virtual {
			n.pos = len(rt.nodes)
			rt.nodes = append(rt.nodes, n)
		}
		for _, c := range n.children {
			number(c)
		}
	}
	number(root)
	if len(rt.nodes) == 0 {
		return nil, fmt.Errorf("conf: signature %s has no tables", sig)
	}
	return rt, nil
}

// concatRootIndex returns the index of the first bare table in a
// concatenation — the component that roots its scan tree per §V.C — or -1
// when none exists and the root is virtual. Shared by the runtime tree
// construction and the planner's static representative (Rep), which must
// never diverge.
func concatRootIndex(c signature.Concat) int {
	for i, comp := range c {
		if _, ok := comp.(signature.Table); ok {
			return i
		}
	}
	return -1
}

// varColumns returns the input column indexes of the variable columns in
// preorder.
func (rt *runtimeTree) varColumns() []int {
	out := make([]int, len(rt.nodes))
	for i, n := range rt.nodes {
		out[i] = n.varIdx
	}
	return out
}

// rootVarIdx returns the variable column of the representative (root)
// table, or -1 when the root is virtual (pure products have no single
// representative; callers that need one must not see a virtual root).
func (rt *runtimeTree) rootVarIdx() int { return rt.root.varIdx }

// seed starts a new bag of duplicates with its first tuple: every node is
// enabled with an empty history (allP = 0) and a current partition opened
// with the tuple's probability. This is exactly the state Fig. 8's
// propagate_prob reaches after processing the first tuple with i = 0, and
// it also covers virtual product roots, which have no column of their own.
func (rt *runtimeTree) seed(cur table.Tuple) {
	var walk func(n *scanNode)
	walk = func(n *scanNode) {
		n.enabled = true
		n.allP = 0
		if n.virtual {
			n.crtP = 1
		} else {
			n.crtP = cur[n.probIdx].F
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(rt.root)
}

// firstUnmatched returns the position of the leftmost variable column on
// which prev and cur differ (0 when prev is nil, i.e. the first tuple of a
// bag), or len(nodes) when all variable columns agree.
func (rt *runtimeTree) firstUnmatched(prev, cur table.Tuple) int {
	if prev == nil {
		return 0
	}
	for _, n := range rt.nodes {
		if !table.Equal(prev[n.varIdx], cur[n.varIdx]) {
			return n.pos
		}
	}
	return len(rt.nodes)
}

// step processes one input tuple given the leftmost changed column i —
// procedure propagate_prob of Fig. 8, run in postorder from the root.
func (rt *runtimeTree) step(i int, cur table.Tuple) {
	rt.propagate(rt.root, i, cur)
}

func (rt *runtimeTree) propagate(n *scanNode, i int, cur table.Tuple) {
	for _, c := range n.children {
		rt.propagate(c, i, cur)
	}
	if !n.enabled || n.pos < i {
		return
	}
	if !n.virtual && len(n.children) == 0 && n.pos == i && cur != nil {
		// Same partition, new variable: accumulate the independent OR.
		n.crtP = prob.Or(n.crtP, cur[n.probIdx].F)
		return
	}
	// A partition of n (or an ancestor) just ended: close n's current
	// partition by folding in the children's finished partitions, and add
	// it to allP.
	for _, c := range n.children {
		n.crtP *= c.allP
	}
	n.allP = prob.Or(n.allP, n.crtP)
	if !n.virtual && cur != nil && n.pos == i {
		// n starts a new partition: descendants start fresh partitions
		// seeded with the current tuple's probabilities.
		rt.resetDescendants(n, cur)
		n.crtP = cur[n.probIdx].F
	} else {
		// An ancestor's partition changed (or this partition re-occurred):
		// freeze n until an ancestor re-enables it.
		rt.disable(n)
	}
}

func (rt *runtimeTree) resetDescendants(n *scanNode, cur table.Tuple) {
	for _, c := range n.children {
		c.enabled = true
		c.allP = 0
		c.crtP = cur[c.probIdx].F
		rt.resetDescendants(c, cur)
	}
}

func (rt *runtimeTree) disable(n *scanNode) {
	n.enabled = false
	for _, c := range n.children {
		rt.disable(c)
	}
}

// flush finalizes the current bag and returns its exact probability.
func (rt *runtimeTree) flush() float64 {
	rt.propagate(rt.root, -1, nil)
	return rt.root.allP
}
