package conf

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/dtree"
	"repro/internal/obdd"
	"repro/internal/pool"
	"repro/internal/table"
)

// This file is the d-tree-based confidence operator: the order-free exact
// tier between OBDD compilation (obdd.go, exact while the diagram fits the
// node budget under one fixed variable order) and the Monte Carlo estimator
// (mc.go). Like the OBDD operator it consumes the raw materialized answer
// relation and groups it into one lineage DNF per distinct answer; each DNF
// is then decomposed structurally — independent-AND, independent-OR,
// Shannon cofactoring only as a last resort (internal/dtree) — so lineage
// whose OBDD explodes under every occurrence-derived order can still
// resolve exactly, and anything past the step budget gets certified
// deterministic [lo, hi] bounds.

// ErrDTreeBudget is returned by DTree in exact-only mode when some answer's
// decomposition exceeds the step budget; callers fall through to Monte
// Carlo.
var ErrDTreeBudget = errors.New("conf: d-tree step budget exceeded")

// DTreeStats reports what the d-tree operator did — the same reporting
// surface as OBDDStats, with decomposition steps in place of diagram nodes.
type DTreeStats struct {
	InputTuples  int64 // rows entering lineage collection
	OutputTuples int64 // distinct answers
	Clauses      int64 // lineage clauses across all answers
	Vars         int64 // distinct lineage variables across all answers
	DupRows      int64 // input rows deduplicated away during collection
	Nodes        int64 // decomposition steps, all answers
	MemoHits     int64 // exact-residual memo hits across all decompositions
	MemoMisses   int64 // exact-residual memo misses across all decompositions
	HdrRecycled  int64 // clause headers recycled instead of arena-carved (builder-state dependent)
	ExactAnswers int64 // answers with exact confidences
	Bounded      int64 // answers resolved only to [lo, hi] bounds
	Stopped      int64 // bounded answers cut short by a deadline-watermark Stop
	// LowerBound and UpperBound certify every answer's true confidence:
	// min over answers of the per-answer lo, max of the per-answer hi
	// (exact answers contribute their exact value to both).
	LowerBound float64
	UpperBound float64
	// MaxWidth is the widest per-answer interval (0 when all exact): each
	// reported confidence is within MaxWidth/2 of the truth.
	MaxWidth float64
}

// DTree computes per-answer confidences of a materialized answer relation
// by d-tree decomposition of each answer's lineage: CollectLineage, then
// one decomposition per distinct answer, fanned across the worker pool.
// There is no variable order to choose — decomposition is a function of
// the clause set alone — so unlike the OBDD operator no signature is
// taken. Answers whose decomposition exceeds opts.NodeBudget get the
// certified bound midpoint as their confidence (see
// DTreeStats.LowerBound/UpperBound), unless exactOnly is set, in which
// case ErrDTreeBudget is returned so the caller can fall through to Monte
// Carlo. The output has the input's data columns plus the conf column,
// sorted by the data columns, and is a deterministic function of the input
// and options — never of the worker count. ctx and p may be nil (no
// cancellation, serial execution).
func DTree(ctx context.Context, p *pool.Pool, rel *table.Relation, opts dtree.Options, exactOnly bool) (*table.Relation, *DTreeStats, error) {
	l, err := CollectLineage(rel)
	if err != nil {
		return nil, nil, err
	}
	return DTreeLineage(ctx, p, l, opts, exactOnly)
}

// DTreeLineage is DTree over an already collected lineage — the fallback
// chain collects once and hands the same lineage from rung to rung.
func DTreeLineage(ctx context.Context, p *pool.Pool, l *Lineage, opts dtree.Options, exactOnly bool) (*table.Relation, *DTreeStats, error) {
	outCols := append(append([]table.Column(nil), l.Schema.Cols...), table.DataCol(ConfCol, table.KindFloat))
	out := table.NewRelation(table.NewSchema(outCols...))
	stats := &DTreeStats{
		InputTuples:  l.Input,
		OutputTuples: int64(len(l.Keys)),
		Clauses:      l.Clauses,
		Vars:         l.Vars,
		DupRows:      l.DupRows,
	}
	// Decompose every answer on the pool; reduce the results serially in
	// answer order so the stats aggregation is deterministic. Builders are
	// reused across the fan-out through a sync.Pool — one memo/arena set
	// per worker, Reset between answers — which changes nothing about the
	// result (each decomposition is a pure function of its lineage,
	// marginals and budget) but drops the per-answer map allocations.
	var builders sync.Pool
	results := make([]dtree.Result, len(l.Keys))
	err := pool.Get(p, 1).Do(ctx, len(l.Keys), func(i int) error {
		if opts.Stop != nil && opts.Stop() {
			// Deadline watermark fired before this answer's decomposition
			// started: certify it with cheap clause-weight bounds instead
			// of spending the expiring budget on a decomposition.
			lo, hi := obdd.CheapBounds(l.DNFs[i], l.Assign)
			results[i] = dtree.Result{P: (lo + hi) / 2, Lo: lo, Hi: hi, Stopped: lo != hi, Exact: lo == hi}
			return nil
		}
		b, _ := builders.Get().(*dtree.Builder)
		if b == nil {
			b = dtree.NewBuilder(opts.NodeBudget)
		} else {
			b.Reset(opts.NodeBudget)
		}
		// The deferred Put also runs on panic paths, so a panicking
		// decomposition cannot strand the builder outside the sync.Pool;
		// Reset re-arms it for the next answer.
		defer builders.Put(b)
		res := dtree.ProbWith(b, l.DNFs[i], l.Assign, opts)
		if exactOnly && !res.Exact && !res.Stopped {
			// A deadline-stopped result is accepted even in exact-only
			// mode: its bounds are certified, and falling further down the
			// ladder would spend deadline that is already gone.
			budget := opts.NodeBudget
			if budget <= 0 {
				budget = dtree.DefaultNodeBudget
			}
			return fmt.Errorf("%w: answer %d (%d clauses, budget %d)",
				ErrDTreeBudget, i, len(l.DNFs[i].Clauses), budget)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, key := range l.Keys {
		res := results[i]
		if res.Exact {
			stats.ExactAnswers++
		} else {
			stats.Bounded++
			if res.Stopped {
				stats.Stopped++
			}
		}
		stats.Nodes += int64(res.Nodes)
		stats.MemoHits += res.MemoHits
		stats.MemoMisses += res.MemoMisses
		stats.HdrRecycled += res.HdrRecycled
		if i == 0 || res.Lo < stats.LowerBound {
			stats.LowerBound = res.Lo
		}
		if i == 0 || res.Hi > stats.UpperBound {
			stats.UpperBound = res.Hi
		}
		if w := res.Hi - res.Lo; w > stats.MaxWidth {
			stats.MaxWidth = w
		}
		row := make(table.Tuple, 0, len(outCols))
		row = append(row, key...)
		row = append(row, table.Float(res.P))
		out.Rows = append(out.Rows, row)
	}
	return out, stats, nil
}
