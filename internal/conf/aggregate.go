package conf

import (
	"fmt"

	"repro/internal/prob"
	"repro/internal/signature"
	"repro/internal/table"
)

// Aggregate applies one probability-computation operator [s] eagerly to a
// materialized intermediate relation (§V.B): all aggregation steps of s run
// as sort+scan passes and all propagation steps as projections, leaving a
// single representative V/P column pair for s's tables. It returns the new
// relation, the representative source name, and the number of scans used.
//
// This is the building block of eager and hybrid plans: pushing [Item*]
// below a join, or [(Ord Item)*] above one, is a call to Aggregate on the
// corresponding intermediate.
func Aggregate(rel *table.Relation, s signature.Sig, opts Options) (*table.Relation, string, int, error) {
	switch x := s.(type) {
	case signature.Table:
		// [R] is the identity (Fig. 5's JRK case).
		return rel, string(x), 0, nil

	case signature.Star:
		steps, final := planScans(x)
		cur := rel
		scans := 0
		for _, st := range steps {
			next, _, err := aggregateStep(cur, st.gamma, opts)
			if err != nil {
				return nil, "", scans, err
			}
			scans++
			cur = next
		}
		// The final signature of a star is a star again (planScans only
		// rewrites inner components); collapse it in one more scan.
		fstar, ok := final.(signature.Star)
		if !ok {
			return nil, "", scans, fmt.Errorf("conf: scheduler produced non-star %s from %s", final, s)
		}
		out, _, err := aggregateStep(cur, fstar, opts)
		if err != nil {
			return nil, "", scans, err
		}
		scans++
		rt, err := newRuntimeTree(fstar, cur.Schema)
		if err != nil {
			return nil, "", scans, err
		}
		return out, rt.root.tableName, scans, nil

	case signature.Concat:
		// [αβ…]: collapse each starred component, then fold probabilities
		// right-to-left into the leftmost representative (pure
		// propagation, no extra scan).
		cur := rel
		scans := 0
		reps := make([]string, len(x))
		for i, comp := range x {
			var err error
			var rep string
			var n int
			cur, rep, n, err = Aggregate(cur, comp, opts)
			if err != nil {
				return nil, "", scans, err
			}
			scans += n
			reps[i] = rep
		}
		for i := len(reps) - 2; i >= 0; i-- {
			var err error
			cur, err = propagatePair(cur, reps[i], reps[i+1])
			if err != nil {
				return nil, "", scans, err
			}
		}
		return cur, reps[0], scans, nil

	default:
		return nil, "", 0, fmt.Errorf("conf: unknown signature shape %T", s)
	}
}

// Rep returns the representative source table that Aggregate([s]) leaves
// behind — a pure function of the signature, mirroring Aggregate's return
// value without touching data. The planner uses it to compute eager
// operator schedules at plan-build time; the virtual root of a pure
// product has no representative and yields "".
func Rep(s signature.Sig) (string, error) {
	switch x := s.(type) {
	case signature.Table:
		return string(x), nil
	case signature.Star:
		_, final := planScans(x)
		fstar, ok := final.(signature.Star)
		if !ok {
			return "", fmt.Errorf("conf: scheduler produced non-star %s from %s", final, s)
		}
		return scanRootTable(fstar), nil
	case signature.Concat:
		if len(x) == 0 {
			return "", fmt.Errorf("conf: empty concatenation")
		}
		return Rep(x[0])
	default:
		return "", fmt.Errorf("conf: unknown signature shape %T", s)
	}
}

// scanRootTable is newRuntimeTree's root selection without binding columns:
// stars delegate to their inner expression, a concatenation's root is
// picked by the shared concatRootIndex ("" for pure products, whose runtime
// root is virtual).
func scanRootTable(s signature.Sig) string {
	switch x := s.(type) {
	case signature.Table:
		return string(x)
	case signature.Star:
		return scanRootTable(x.Inner)
	case signature.Concat:
		if i := concatRootIndex(x); i >= 0 {
			return string(x[i].(signature.Table))
		}
		return ""
	default:
		return ""
	}
}

// propagatePair folds P(right) into P(left) and drops right's V/P columns —
// the JαβK projection of Fig. 5 executed on a materialized relation.
func propagatePair(rel *table.Relation, left, right string) (*table.Relation, error) {
	lp := rel.Schema.ProbIndex(left)
	rv := rel.Schema.VarIndex(right)
	rp := rel.Schema.ProbIndex(right)
	if lp < 0 || rv < 0 || rp < 0 {
		return nil, fmt.Errorf("conf: propagation %s·%s: columns missing in %v", left, right, rel.Schema.Names())
	}
	var keep []int
	for i := range rel.Schema.Cols {
		if i != rv && i != rp {
			keep = append(keep, i)
		}
	}
	out := table.NewRelation(rel.Schema.Project(keep))
	for _, row := range rel.Rows {
		nr := make(table.Tuple, 0, len(keep))
		for _, i := range keep {
			if i == lp {
				nr = append(nr, table.Float(row[lp].F*row[rp].F))
			} else {
				nr = append(nr, row[i])
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// FinalizeBare extracts the answer from a relation whose confidence is
// already fully computed (signature reduced to a bare table): it projects
// the data columns plus the surviving probability column as conf and
// deduplicates. Used by fully eager plans, where the top operator has
// nothing left to aggregate.
func FinalizeBare(rel *table.Relation, rep string) (*table.Relation, error) {
	pi := rel.Schema.ProbIndex(rep)
	if pi < 0 {
		return nil, fmt.Errorf("conf: representative %s has no P column in %v", rep, rel.Schema.Names())
	}
	dataCols := rel.Schema.DataIndexes()
	outCols := make([]table.Column, 0, len(dataCols)+1)
	for _, i := range dataCols {
		outCols = append(outCols, rel.Schema.Cols[i])
	}
	outCols = append(outCols, table.DataCol(ConfCol, table.KindFloat))
	out := table.NewRelation(table.NewSchema(outCols...))
	// Dedup through a hash-keyed set over every output column: duplicate
	// rows are recognized without rendering a key string or retaining the
	// candidate tuple.
	all := make([]int, len(outCols))
	for i := range all {
		all[i] = i
	}
	seen := table.NewTupleSet(all, 0)
	nr := make(table.Tuple, len(outCols))
	for _, row := range rel.Rows {
		nr = nr[:0]
		for _, i := range dataCols {
			nr = append(nr, row[i])
		}
		nr = append(nr, table.Float(row[pi].F))
		if c, added := seen.Add(nr, true); added {
			out.Rows = append(out.Rows, c)
		}
	}
	return out, nil
}

// OrAllColumn computes the independent disjunction of a probability column,
// a convenience for Boolean eager plans.
func OrAllColumn(rel *table.Relation, src string) (float64, error) {
	pi := rel.Schema.ProbIndex(src)
	if pi < 0 {
		return 0, fmt.Errorf("conf: source %s has no P column", src)
	}
	ps := make([]float64, 0, rel.Len())
	for _, row := range rel.Rows {
		ps = append(ps, row[pi].F)
	}
	return prob.OrAll(ps), nil
}
