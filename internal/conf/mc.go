package conf

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/prob"
	"repro/internal/table"
)

// This file is the Monte Carlo counterpart of the exact confidence operator
// (operator.go). The exact operator needs a hierarchical signature and fails
// on queries without one (#P-hard in general); this operator needs nothing:
// it reads the same materialized answer relation (data columns plus V/P
// column pairs), groups it into one lineage DNF per distinct answer, and
// estimates each answer's confidence with the (ε, δ) samplers of
// internal/prob. Because it works on raw lineage it is also sound for
// answers whose duplicate variables are correlated (e.g. self-joins through
// aliases that do not select disjoint tuples), where the exact operator's
// independence assumptions would not hold.

// Lineage is the per-answer DNF decomposition of a materialized answer
// relation: one clause per contributing input-tuple combination (paper §I),
// one formula per distinct answer, plus the marginal probabilities of every
// variable mentioned.
type Lineage struct {
	// Schema covers the data columns of the input, in input order.
	Schema *table.Schema
	// Keys holds the distinct answers projected onto the data columns,
	// sorted ascending (the operator's deterministic output order).
	Keys []table.Tuple
	// DNFs aligns with Keys: DNFs[i] is the lineage of Keys[i].
	DNFs []*prob.DNF
	// Assign maps every variable of the input to its marginal probability.
	Assign *prob.Assignment
	// Source maps every variable to the name of the source table whose V
	// column carried it — the hook for signature-derived OBDD variable
	// orders (obdd.go).
	Source map[prob.Var]string
	// Clauses counts lineage clauses across all answers.
	Clauses int64
	// Vars counts the distinct variables mentioned across all answers.
	Vars int64
	// DupRows counts input rows whose clause duplicated one already in its
	// answer's DNF (the dedup hits of the clause-hash chains).
	DupRows int64
	// Input counts the rows that entered lineage collection.
	Input int64
}

// CollectLineage groups an answer relation by its data columns and builds
// one lineage DNF per distinct answer: each input row contributes the clause
// conjoining the row's variables (one per source table; deterministic
// tuples, V = ⊤, drop out). A Boolean answer (no data columns) yields at
// most one group.
func CollectLineage(rel *table.Relation) (*Lineage, error) {
	dataCols := rel.Schema.DataIndexes()
	var varCols, probCols []int
	var srcNames []string
	for _, src := range rel.Schema.Sources() {
		vi, pi := rel.Schema.VarIndex(src), rel.Schema.ProbIndex(src)
		if pi < 0 {
			return nil, fmt.Errorf("conf: input has V(%s) but no P(%s): %v", src, src, rel.Schema.Names())
		}
		varCols = append(varCols, vi)
		probCols = append(probCols, pi)
		srcNames = append(srcNames, src)
	}

	l := &Lineage{
		Schema: rel.Schema.Project(dataCols),
		Assign: prob.NewAssignment(),
		Source: make(map[prob.Var]string),
		Input:  int64(rel.Len()),
	}

	// Sort row indexes by the data columns so groups are contiguous and the
	// output order is deterministic. The Monte Carlo path materializes
	// everything in memory anyway (the estimator needs random access to each
	// answer's whole formula), so an in-memory sort — unlike the exact
	// operator's external sort — is the right tool.
	order := make([]int, rel.Len())
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return table.CompareOn(rel.Rows[a], rel.Rows[b], dataCols)
	})

	vs := make(prob.Clause, 0, len(varCols))
	marginal := make(map[prob.Var]float64)
	// Clause dedup per group via an FNV hash with equality-checked collision
	// chains: DNF.Add's linear scan would make collection quadratic in the
	// group size, and a rendered string key would allocate on every row —
	// large answer groups (thousands of duplicates per answer) can afford
	// neither. Duplicate rows build their candidate clause in a reused
	// scratch buffer and allocate nothing.
	seen := make(map[uint64][]prob.Clause)
	var cur *prob.DNF
	for n, ri := range order {
		row := rel.Rows[ri]
		vs = vs[:0]
		for k, vi := range varCols {
			v := row[vi].AsVar()
			if !v.Valid() {
				continue
			}
			p := row[probCols[k]].F
			if prev, ok := marginal[v]; ok {
				if prev != p {
					return nil, fmt.Errorf("conf: variable %v carries two marginals, %g and %g (corrupt input)", v, prev, p)
				}
			} else {
				marginal[v] = p
				if err := l.Assign.Set(v, p); err != nil {
					return nil, fmt.Errorf("conf: row %d: %w", ri, err)
				}
				l.Source[v] = srcNames[k]
			}
			vs = append(vs, v)
		}
		if n == 0 || !table.EqualOn(rel.Rows[order[n-1]], row, dataCols) {
			cur = prob.NewDNF()
			l.Keys = append(l.Keys, row.Project(dataCols))
			l.DNFs = append(l.DNFs, cur)
			clear(seen)
		}
		// Normalize the scratch clause in place (sorted, deduplicated), the
		// same canonical form prob.NewClause produces.
		slices.Sort(vs)
		vs = slices.Compact(vs)
		h := vs.Hash()
		chain := seen[h]
		dup := false
		for _, e := range chain {
			if e.Equal(vs) {
				dup = true
				l.DupRows++
				break
			}
		}
		if !dup {
			clause := slices.Clone(vs)
			seen[h] = append(chain, clause)
			cur.Clauses = append(cur.Clauses, clause)
		}
	}
	l.Vars = int64(len(marginal))
	for _, d := range l.DNFs {
		// Canonicalize the clause order (clauses are sorted var lists, so
		// lexicographic order is well defined). This makes every downstream
		// consumer — the Karp–Luby sampler's clause-index stream, the OBDD
		// occurrence order — a function of the answer's lineage *set* rather
		// than of the join's row order, which is what lets the engine promise
		// bit-identical confidences across worker counts and join strategies.
		slices.SortFunc(d.Clauses, cmpClause)
		l.Clauses += int64(len(d.Clauses))
	}
	return l, nil
}

// cmpClause orders clauses lexicographically by variable id.
func cmpClause(a, b prob.Clause) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return len(a) - len(b)
}

// MCStats reports what the Monte Carlo operator did.
type MCStats struct {
	InputTuples  int64 // rows entering lineage collection
	OutputTuples int64 // distinct answers
	Clauses      int64 // lineage clauses across all answers
	Vars         int64 // distinct lineage variables across all answers
	DupRows      int64 // input rows deduplicated away during collection
	Samples      int64 // Monte Carlo samples drawn across all answers
	ExactAnswers int64 // answers resolved by an exact shortcut (no sampling)
	// StoppedAnswers counts answers whose sampling a deadline-watermark
	// Stop cut short: their estimates carry the wider ε the drawn samples
	// actually guarantee.
	StoppedAnswers int64
	// CappedAnswers counts answers whose run MaxSamples cut short of the
	// requested (ε, δ) sample count — their early-stop reason is "sample
	// cap", everyone else's is "target met" (or an exact shortcut).
	CappedAnswers int64
	// MaxAnswerSamples is the largest per-answer sample count of the run.
	MaxAnswerSamples int64
	// MaxEpsilon is the weakest per-answer additive guarantee of the run:
	// equal to the requested ε unless MaxSamples capped some estimate.
	MaxEpsilon float64
}

// MonteCarlo estimates per-answer confidences of a materialized answer
// relation: CollectLineage followed by the partition-parallel estimator
// driver. The output has the input's data columns plus the conf column,
// sorted by the data columns; with a fixed opts.Seed it is a deterministic
// function of the input. ctx cancels the samplers mid-run; a nil ctx means
// no cancellation.
func MonteCarlo(ctx context.Context, rel *table.Relation, opts prob.MCOptions) (*table.Relation, *MCStats, error) {
	l, err := CollectLineage(rel)
	if err != nil {
		return nil, nil, err
	}
	return MonteCarloLineage(ctx, l, opts)
}

// MonteCarloLineage is MonteCarlo over an already collected lineage —
// callers that grouped the answer relation once (e.g. the OBDD→MC rung of
// the fallback chain) reuse it instead of paying collection twice.
func MonteCarloLineage(ctx context.Context, l *Lineage, opts prob.MCOptions) (*table.Relation, *MCStats, error) {
	ests, err := prob.EstimateAllCtx(ctx, l.DNFs, l.Assign, opts)
	if err != nil {
		return nil, nil, err
	}

	outCols := append(append([]table.Column(nil), l.Schema.Cols...), table.DataCol(ConfCol, table.KindFloat))
	out := table.NewRelation(table.NewSchema(outCols...))
	stats := &MCStats{
		InputTuples:  l.Input,
		OutputTuples: int64(len(l.Keys)),
		Clauses:      l.Clauses,
		Vars:         l.Vars,
		DupRows:      l.DupRows,
	}
	for i, key := range l.Keys {
		row := make(table.Tuple, 0, len(outCols))
		row = append(row, key...)
		row = append(row, table.Float(ests[i].P))
		out.Rows = append(out.Rows, row)
		stats.Samples += int64(ests[i].Samples)
		if n := int64(ests[i].Samples); n > stats.MaxAnswerSamples {
			stats.MaxAnswerSamples = n
		}
		if ests[i].Samples == 0 {
			stats.ExactAnswers++
		}
		if ests[i].Capped {
			stats.CappedAnswers++
		}
		if ests[i].Stopped {
			stats.StoppedAnswers++
		}
		if ests[i].Epsilon > stats.MaxEpsilon {
			stats.MaxEpsilon = ests[i].Epsilon
		}
	}
	return out, stats, nil
}
