package conf

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"

	"repro/internal/pool"
	"repro/internal/prob"
	"repro/internal/signature"
	"repro/internal/table"
)

// randomTwoSourceRel builds an R/S answer relation with `groups` distinct
// answers and `dups` duplicate rows per answer — big enough to force the
// external sort to spill under a tiny budget.
func randomTwoSourceRel(rng *rand.Rand, groups, dups int) *table.Relation {
	sch := table.NewSchema(
		table.DataCol("d", table.KindInt),
		table.VarCol("R"), table.ProbCol("R"),
		table.VarCol("S"), table.ProbCol("S"),
	)
	rel := table.NewRelation(sch)
	nextVar := int64(1)
	for g := 0; g < groups; g++ {
		rv := nextVar
		nextVar++
		rp := 0.1 + 0.8*rng.Float64()
		for d := 0; d < dups; d++ {
			sv := nextVar
			nextVar++
			sp := 0.1 + 0.8*rng.Float64()
			rel.MustAppend(table.Tuple{table.Int(int64(g)),
				table.VarValue(prob.Var(rv)), table.Float(rp),
				table.VarValue(prob.Var(sv)), table.Float(sp)})
		}
	}
	// Shuffle so the sort has real work to do.
	rng.Shuffle(rel.Len(), func(i, j int) { rel.Rows[i], rel.Rows[j] = rel.Rows[j], rel.Rows[i] })
	return rel
}

func twoSourceSig() signature.Sig {
	return signature.NewStar(signature.NewConcat(
		signature.Table("R"),
		signature.NewStar(signature.Table("S")),
	))
}

// TestComputeSpillsAreRemoved: after a Compute whose tiny SortBudget forces
// many spilled runs, the spill dir must be empty — serially and under a
// multi-worker pool.
func TestComputeSpillsAreRemoved(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			rel := randomTwoSourceRel(rand.New(rand.NewSource(7)), 300, 10)
			out, stats, err := ComputeStats(rel, twoSourceSig(), Options{
				SortBudget: 32,
				TmpDir:     dir,
				Pool:       pool.New(workers),
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.Len() != 300 {
				t.Fatalf("got %d answers, want 300", out.Len())
			}
			if stats.SpilledRuns == 0 {
				t.Fatal("expected spilled runs under the tiny budget")
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 0 {
				t.Errorf("spill files left behind: %v", entries)
			}
		})
	}
}

// trippingCtx is a context whose Err starts failing after a fixed number of
// checks — an injected failure that hits the scan mid-stream, after run
// files were already created.
type trippingCtx struct {
	context.Context
	checks  atomic.Int64
	tripAt  int64
	tripped atomic.Bool
}

func (c *trippingCtx) Err() error {
	if c.checks.Add(1) > c.tripAt {
		c.tripped.Store(true)
		return context.Canceled
	}
	return nil
}

// TestComputeInjectedFailureCleansSpills: a failure injected mid-scan (the
// context trips after the sort already spilled) must abort Compute without
// leaving a single run file behind.
func TestComputeInjectedFailureCleansSpills(t *testing.T) {
	dir := t.TempDir()
	rel := randomTwoSourceRel(rand.New(rand.NewSource(11)), 3000, 4)
	ctx := &trippingCtx{Context: context.Background(), tripAt: 2}
	_, _, err := ComputeStats(rel, twoSourceSig(), Options{
		SortBudget: 32,
		TmpDir:     dir,
		Ctx:        ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected the injected cancellation, got %v", err)
	}
	if !ctx.tripped.Load() {
		t.Fatal("injected failure never fired")
	}
	entries, err2 := os.ReadDir(dir)
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(entries) != 0 {
		t.Errorf("spill files left after injected failure: %v", entries)
	}
}
