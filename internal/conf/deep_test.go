package conf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/prob"
	"repro/internal/signature"
	"repro/internal/table"
)

// TestBranchingFiveTableTree exercises the R1(R2(R3), R4(R5)) 1scanTree of
// Ex. V.12: signature (R1(R2 R3*)*(R4 R5*)*)*. One R1 tuple pairs with
// (r2, items) chains and (r4, items) chains; the two branches multiply.
func TestBranchingFiveTableTree(t *testing.T) {
	sig := signature.NewStar(signature.NewConcat(
		signature.Table("R1"),
		signature.NewStar(signature.NewConcat(signature.Table("R2"), signature.NewStar(signature.Table("R3")))),
		signature.NewStar(signature.NewConcat(signature.Table("R4"), signature.NewStar(signature.Table("R5")))),
	))
	if !signature.OneScan(sig) {
		t.Fatal("signature must be 1scan")
	}
	sch := table.NewSchema(
		table.VarCol("R1"), table.ProbCol("R1"),
		table.VarCol("R2"), table.ProbCol("R2"),
		table.VarCol("R3"), table.ProbCol("R3"),
		table.VarCol("R4"), table.ProbCol("R4"),
		table.VarCol("R5"), table.ProbCol("R5"),
	)
	rel := table.NewRelation(sch)
	a := prob.NewAssignment()
	v := func(id prob.Var, p float64) (table.Value, table.Value) {
		if a.P(id) == 1 {
			a.MustSet(id, p)
		}
		return table.VarValue(id), table.Float(p)
	}
	// r1 with: branch A = r2 paired with {r3a, r3b}; branch B = two chains
	// (r4a, {r5a}), (r4b, {r5b}). The answer is the full cross product of
	// the branch A rows and branch B rows under r1.
	type pair struct{ v1, p1, v2, p2 table.Value }
	var left, right []pair
	{
		v2, p2 := v(20, 0.5)
		v3a, p3a := v(30, 0.3)
		v3b, p3b := v(31, 0.4)
		left = append(left, pair{v2, p2, v3a, p3a}, pair{v2, p2, v3b, p3b})
		v4a, p4a := v(40, 0.6)
		v5a, p5a := v(50, 0.2)
		v4b, p4b := v(41, 0.7)
		v5b, p5b := v(51, 0.1)
		right = append(right, pair{v4a, p4a, v5a, p5a}, pair{v4b, p4b, v5b, p5b})
	}
	v1, p1 := v(10, 0.9)
	for _, l := range left {
		for _, r := range right {
			rel.MustAppend(table.Tuple{v1, p1, l.v1, l.p1, l.v2, l.p2, r.v1, r.p1, r.v2, r.p2})
		}
	}

	out, stats, err := ComputeStats(rel, sig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scans != 1 {
		t.Errorf("scans = %d, want 1", stats.Scans)
	}
	// Closed form: p(r1) · [p(r2)·(r3a ∨ r3b)] · [(r4a·r5a) ∨ (r4b·r5b)].
	branchA := 0.5 * prob.Or(0.3, 0.4)
	branchB := prob.Or(0.6*0.2, 0.7*0.1)
	want := 0.9 * branchA * branchB
	if got := out.Rows[0][0].F; !prob.ApproxEqual(got, want, 1e-12) {
		t.Errorf("conf = %g, want %g", got, want)
	}

	// Cross-validate with the GRP reference and the DNF oracle.
	ref, err := GRPSequence(rel, sig)
	if err != nil {
		t.Fatal(err)
	}
	if !prob.ApproxEqual(ref.Rows[0][0].F, want, 1e-12) {
		t.Errorf("GRP = %g, want %g", ref.Rows[0][0].F, want)
	}
	d := prob.NewDNF()
	for _, row := range rel.Rows {
		d.Add(prob.NewClause(row[0].AsVar(), row[2].AsVar(), row[4].AsVar(), row[6].AsVar(), row[8].AsVar()))
	}
	if oracle := d.Prob(a); !prob.ApproxEqual(want, oracle, 1e-12) {
		t.Fatalf("fixture inconsistent: closed form %g vs oracle %g", want, oracle)
	}
}

// randomTwoBagAnswer builds a non-Boolean answer over signature
// (R(S*)*)*-ish: data column d, R keyed per (d, r-var), S many per r.
func randomTwoBagAnswer(r *rand.Rand) (*table.Relation, *prob.Assignment, map[int64]*prob.DNF) {
	a := prob.NewAssignment()
	next := prob.Var(1)
	newVar := func() prob.Var {
		v := next
		next++
		a.MustSet(v, 0.05+0.9*r.Float64())
		return v
	}
	sch := table.NewSchema(
		table.DataCol("d", table.KindInt),
		table.VarCol("R"), table.ProbCol("R"),
		table.VarCol("S"), table.ProbCol("S"),
	)
	rel := table.NewRelation(sch)
	oracles := make(map[int64]*prob.DNF)
	nBags := 1 + r.Intn(3)
	for d := 0; d < nBags; d++ {
		oracles[int64(d)] = prob.NewDNF()
		nR := 1 + r.Intn(3)
		for i := 0; i < nR; i++ {
			rv := newVar()
			nS := 1 + r.Intn(3)
			for j := 0; j < nS; j++ {
				sv := newVar()
				rel.MustAppend(table.Tuple{
					table.Int(int64(d)),
					table.VarValue(rv), table.Float(a.P(rv)),
					table.VarValue(sv), table.Float(a.P(sv)),
				})
				oracles[int64(d)].Add(prob.NewClause(rv, sv))
			}
		}
	}
	return rel, a, oracles
}

// TestQuickMultiBagNonBoolean: per-bag confidences match the Shannon oracle
// on random multi-bag answers with signature (R(S*)*)*.
func TestQuickMultiBagNonBoolean(t *testing.T) {
	sig := signature.NewStar(signature.NewConcat(
		signature.Table("R"),
		signature.NewStar(signature.Table("S"))))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rel, a, oracles := randomTwoBagAnswer(r)
		out, err := Compute(rel, sig, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != len(oracles) {
			return false
		}
		for _, row := range out.Rows {
			want := oracles[row[0].I].Prob(a)
			if !prob.ApproxEqual(row[1].F, want, 1e-9) {
				t.Logf("seed %d bag %d: got %g want %g", seed, row[0].I, row[1].F, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAggregateConcatPropagation: the exported Aggregate on a concatenation
// collapses each component and folds probabilities into the leftmost
// representative (the [Cust Ord] propagation of Fig. 6's Q6).
func TestAggregateConcatPropagation(t *testing.T) {
	sch := table.NewSchema(
		table.DataCol("d", table.KindInt),
		table.VarCol("Cust"), table.ProbCol("Cust"),
		table.VarCol("Ord"), table.ProbCol("Ord"),
	)
	rel := table.NewRelation(sch)
	rel.MustAppend(table.Tuple{table.Int(1), table.VarValue(1), table.Float(0.5), table.VarValue(2), table.Float(0.4)})
	sig := signature.NewConcat(signature.Table("Cust"), signature.Table("Ord"))
	out, rep, scans, err := Aggregate(rel, sig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep != "Cust" || scans != 0 {
		t.Errorf("rep=%s scans=%d, want Cust/0 (pure propagation)", rep, scans)
	}
	pi := out.Schema.ProbIndex("Cust")
	if pi < 0 || !prob.ApproxEqual(out.Rows[0][pi].F, 0.2, 1e-12) {
		t.Errorf("propagated P = %v", out.Rows[0])
	}
	if out.Schema.VarIndex("Ord") >= 0 {
		t.Error("Ord's V column should be dropped by propagation")
	}
}

// TestAggregateBareTableIdentity: [R] is the identity.
func TestAggregateBareTableIdentity(t *testing.T) {
	sch := table.NewSchema(table.VarCol("R"), table.ProbCol("R"))
	rel := table.NewRelation(sch)
	rel.MustAppend(table.Tuple{table.VarValue(1), table.Float(0.5)})
	out, rep, scans, err := Aggregate(rel, signature.Table("R"), Options{})
	if err != nil || rep != "R" || scans != 0 || out != rel {
		t.Errorf("identity aggregate wrong: %v %s %d", err, rep, scans)
	}
}

// TestComputeRejectsMissingColumns is failure injection on the operator's
// input contract.
func TestComputeRejectsMissingColumns(t *testing.T) {
	// V column present, P column missing.
	sch := table.NewSchema(table.VarCol("R"), table.DataCol("x", table.KindFloat))
	rel := table.NewRelation(sch)
	rel.MustAppend(table.Tuple{table.VarValue(1), table.Float(0.5)})
	if _, err := Compute(rel, signature.NewStar(signature.Table("R")), Options{}); err == nil {
		t.Error("missing P column must be rejected")
	}
}

// TestGRPSequenceRejectsUnknownTables mirrors validateSources on the
// reference implementation.
func TestGRPSequenceRejectsUnknownTables(t *testing.T) {
	sch := table.NewSchema(table.VarCol("R"), table.ProbCol("R"))
	rel := table.NewRelation(sch)
	if _, err := GRPSequence(rel, signature.NewStar(signature.Table("Z"))); err == nil {
		t.Error("unknown table must be rejected")
	}
}

// TestIdenticalRowsDoNotDoubleCount: duplicated full rows (same data and
// variables) must not inflate probabilities — firstUnmatched returns
// "no change" and the step is a no-op.
func TestIdenticalRowsDoNotDoubleCount(t *testing.T) {
	sch := table.NewSchema(table.VarCol("R"), table.ProbCol("R"))
	rel := table.NewRelation(sch)
	row := table.Tuple{table.VarValue(1), table.Float(0.5)}
	rel.MustAppend(row)
	rel.MustAppend(row.Clone())
	out, err := Compute(rel, signature.NewStar(signature.Table("R")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !prob.ApproxEqual(out.Rows[0][0].F, 0.5, 1e-12) {
		t.Errorf("conf = %g, want 0.5 (no double counting)", out.Rows[0][0].F)
	}
}

// TestPlanScansComposite: ((R*S*)*(T*U*)*)* needs 4 scans: [R*], [T*], the
// composite [(R S*)*], then the final pass (see DESIGN/scheduler notes).
func TestPlanScansComposite(t *testing.T) {
	rs := signature.NewStar(signature.NewConcat(signature.NewStar(signature.Table("R")), signature.NewStar(signature.Table("S"))))
	tu := signature.NewStar(signature.NewConcat(signature.NewStar(signature.Table("T")), signature.NewStar(signature.Table("U"))))
	both := signature.NewStar(signature.NewConcat(rs, tu))
	steps, final := planScans(both)
	if len(steps) != 3 {
		t.Fatalf("steps = %v, want 3", steps)
	}
	if got := signature.NumScans(both); got != len(steps)+1 {
		t.Errorf("NumScans = %d, scheduler uses %d", got, len(steps)+1)
	}
	if !signature.OneScan(final) {
		t.Errorf("final signature %s not 1scan", final)
	}
}

// TestSchedulerMatchesNumScansProperty: for randomly generated signatures,
// the scheduler's scan count equals signature.NumScans.
func TestSchedulerMatchesNumScansProperty(t *testing.T) {
	var gen func(r *rand.Rand, depth int, next *int) signature.Sig
	gen = func(r *rand.Rand, depth int, next *int) signature.Sig {
		if depth == 0 || r.Intn(3) == 0 {
			*next++
			tb := signature.Table(string(rune('A' + *next)))
			if r.Intn(2) == 0 {
				return signature.NewStar(tb)
			}
			return tb
		}
		n := 1 + r.Intn(3)
		parts := make([]signature.Sig, n)
		for i := range parts {
			parts[i] = gen(r, depth-1, next)
		}
		c := signature.NewConcat(parts...)
		if r.Intn(2) == 0 {
			return signature.NewStar(c)
		}
		return c
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		next := 0
		s := gen(r, 3, &next)
		steps, final := planScans(s)
		if !signature.OneScan(final) {
			t.Logf("seed %d: final %s not 1scan (from %s)", seed, final, s)
			return false
		}
		return signature.NumScans(s) == len(steps)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
