package conf

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/dtree"
	"repro/internal/obdd"
	"repro/internal/pool"
	"repro/internal/prob"
	"repro/internal/table"
)

// TestComputeParallelBitIdentical: the partition-parallel aggregation scans
// produce exactly the serial operator's output — same rows, same order,
// bit-identical confidences — for several worker counts.
func TestComputeParallelBitIdentical(t *testing.T) {
	rel := randomTwoSourceRel(rand.New(rand.NewSource(23)), 800, 6)
	sig := twoSourceSig()
	want, err := Compute(cloneRelation(rel), sig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, err := Compute(cloneRelation(rel), sig, Options{Pool: pool.New(workers)})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualRelations(t, got, want, workers)
	}
}

// TestOBDDParallelBitIdentical: the per-answer OBDD fan-out returns the
// serial loop's exact output and stats for every worker count.
func TestOBDDParallelBitIdentical(t *testing.T) {
	rel := randomTwoSourceRel(rand.New(rand.NewSource(29)), 500, 5)
	want, wantStats, err := OBDD(context.Background(), nil, cloneRelation(rel), nil, obdd.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		got, stats, err := OBDD(context.Background(), pool.New(workers), cloneRelation(rel), nil, obdd.Options{}, false)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualRelations(t, got, want, workers)
		// HdrRecycled depends on sync.Pool scheduling (which goroutine's
		// builder scratch survives a GC), so it is excluded from the
		// bit-identity contract; everything else must match exactly.
		g, w := *stats, *wantStats
		g.HdrRecycled, w.HdrRecycled = 0, 0
		if g != w {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, wantStats)
		}
	}
}

// TestDTreeParallelBitIdentical: the per-answer d-tree fan-out returns the
// serial loop's exact output and stats for every worker count.
func TestDTreeParallelBitIdentical(t *testing.T) {
	rel := randomTwoSourceRel(rand.New(rand.NewSource(41)), 500, 5)
	want, wantStats, err := DTree(context.Background(), nil, cloneRelation(rel), dtree.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		got, stats, err := DTree(context.Background(), pool.New(workers), cloneRelation(rel), dtree.Options{}, false)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualRelations(t, got, want, workers)
		// As above: HdrRecycled is sync.Pool-scheduling-dependent.
		g, w := *stats, *wantStats
		g.HdrRecycled, w.HdrRecycled = 0, 0
		if g != w {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, wantStats)
		}
	}
}

// TestMonteCarloParallelBitIdentical: estimates depend only on the seed and
// the lineage, never on the worker pool that computed them.
func TestMonteCarloParallelBitIdentical(t *testing.T) {
	rel := randomTwoSourceRel(rand.New(rand.NewSource(31)), 200, 4)
	opts := prob.MCOptions{Seed: 9, Epsilon: 0.2, Method: prob.MCNaive}
	want, _, err := MonteCarlo(context.Background(), cloneRelation(rel), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 6} {
		o := opts
		o.Pool = pool.New(workers)
		got, _, err := MonteCarlo(context.Background(), cloneRelation(rel), o)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualRelations(t, got, want, workers)
	}
}

// TestMonteCarloCancellation: a cancelled context aborts the samplers.
func TestMonteCarloCancellation(t *testing.T) {
	rel := randomTwoSourceRel(rand.New(rand.NewSource(37)), 50, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := MonteCarlo(ctx, rel, prob.MCOptions{Seed: 1}); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func cloneRelation(r *table.Relation) *table.Relation {
	c := table.NewRelation(r.Schema)
	c.Rows = append(c.Rows, r.Rows...)
	return c
}

func mustEqualRelations(t *testing.T, got, want *table.Relation, workers int) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("workers=%d: %d rows, want %d", workers, got.Len(), want.Len())
	}
	for i := range got.Rows {
		g, w := got.Rows[i], want.Rows[i]
		if len(g) != len(w) {
			t.Fatalf("workers=%d: row %d arity differs", workers, i)
		}
		for j := range g {
			if g[j] != w[j] {
				t.Fatalf("workers=%d: row %d col %d = %v, want %v (bit-identical required)",
					workers, i, j, g[j], w[j])
			}
		}
	}
}
