package prob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrAndBasics(t *testing.T) {
	if got := Or(0.1, 0.2); !ApproxEqual(got, 0.28, 1e-12) {
		t.Errorf("Or(0.1,0.2) = %g, want 0.28", got)
	}
	if got := And(0.5, 0.5); got != 0.25 {
		t.Errorf("And(0.5,0.5) = %g, want 0.25", got)
	}
	if got := OrAll([]float64{0.1, 0.2}); !ApproxEqual(got, 0.28, 1e-12) {
		t.Errorf("OrAll = %g, want 0.28", got)
	}
	if got := OrAll(nil); got != 0 {
		t.Errorf("OrAll(nil) = %g, want 0", got)
	}
}

func TestAssignmentValidation(t *testing.T) {
	a := NewAssignment()
	if err := a.Set(1, 0); err == nil {
		t.Error("Set(p=0) should fail: probabilities are in (0,1]")
	}
	if err := a.Set(1, 1.5); err == nil {
		t.Error("Set(p=1.5) should fail")
	}
	if err := a.Set(NoVar, 0.5); err == nil {
		t.Error("Set(NoVar) should fail")
	}
	if err := a.Set(1, math.NaN()); err == nil {
		t.Error("Set(NaN) should fail")
	}
	if err := a.Set(1, 1); err != nil {
		t.Errorf("Set(p=1) should succeed: %v", err)
	}
	if got := a.P(2); got != 1 {
		t.Errorf("unassigned variable should default to 1, got %g", got)
	}
	if got := a.P(NoVar); got != 1 {
		t.Errorf("NoVar probability should be 1, got %g", got)
	}
}

func TestAssignmentVarsSorted(t *testing.T) {
	a := NewAssignment()
	a.MustSet(5, 0.5)
	a.MustSet(1, 0.1)
	a.MustSet(3, 0.3)
	vs := a.Vars()
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 3 || vs[2] != 5 {
		t.Errorf("Vars() = %v, want [1 3 5]", vs)
	}
	if a.Len() != 3 {
		t.Errorf("Len() = %d, want 3", a.Len())
	}
}

func TestClauseNormalization(t *testing.T) {
	c := NewClause(3, 1, 3, NoVar, 2)
	if len(c) != 3 || c[0] != 1 || c[1] != 2 || c[2] != 3 {
		t.Errorf("NewClause = %v, want [1 2 3]", c)
	}
	if !c.Contains(2) || c.Contains(4) {
		t.Error("Contains is wrong")
	}
	if NewClause(NoVar).String() != "⊤" {
		t.Error("empty clause should render as ⊤")
	}
}

func TestDNFDedup(t *testing.T) {
	d := NewDNF(NewClause(1, 2), NewClause(2, 1), NewClause(3))
	if len(d.Clauses) != 2 {
		t.Errorf("duplicate clauses should be removed, got %d clauses", len(d.Clauses))
	}
	vs := d.Vars()
	if len(vs) != 3 {
		t.Errorf("Vars = %v, want [1 2 3]", vs)
	}
}

// TestPaperIntroductionFormula reproduces the running example of §I:
// x1y1z1 ∨ x1y1z2 with p(x1)=0.1, p(y1)=0.1, p(z1)=0.1, p(z2)=0.2
// has probability 0.1·0.1·(1-(1-0.1)(1-0.2)) = 0.0028.
func TestPaperIntroductionFormula(t *testing.T) {
	const x1, y1, z1, z2 = 1, 2, 3, 4
	a := NewAssignment()
	a.MustSet(x1, 0.1)
	a.MustSet(y1, 0.1)
	a.MustSet(z1, 0.1)
	a.MustSet(z2, 0.2)

	d := NewDNF(NewClause(x1, y1, z1), NewClause(x1, y1, z2))
	if got := d.Prob(a); !ApproxEqual(got, 0.0028, 1e-12) {
		t.Errorf("Shannon Pr = %g, want 0.0028", got)
	}
	byWorlds, err := ProbByWorlds(d, a)
	if err != nil {
		t.Fatal(err)
	}
	if !ApproxEqual(byWorlds, 0.0028, 1e-12) {
		t.Errorf("world-enumeration Pr = %g, want 0.0028", byWorlds)
	}

	// The same formula in its 1OF factored form x1(y1(z1 ∨ z2)) (Ex. III.6).
	f := And1OF(Leaf1OF(x1), Leaf1OF(y1), Or1OF(Leaf1OF(z1), Leaf1OF(z2)))
	if err := f.CheckOneOccurrence(); err != nil {
		t.Fatal(err)
	}
	if got := f.Prob(a); !ApproxEqual(got, 0.0028, 1e-12) {
		t.Errorf("1OF Pr = %g, want 0.0028", got)
	}
}

func TestDNFEmptyAndTrue(t *testing.T) {
	a := NewAssignment()
	empty := NewDNF()
	if got := empty.Prob(a); got != 0 {
		t.Errorf("Pr[⊥] = %g, want 0", got)
	}
	tru := NewDNF(NewClause())
	if got := tru.Prob(a); got != 1 {
		t.Errorf("Pr[⊤] = %g, want 1", got)
	}
	if tru.String() == "" || empty.String() != "⊥" {
		t.Error("String() of degenerate formulas is wrong")
	}
}

func TestShannonSharedVariables(t *testing.T) {
	// x(y ∨ z) as DNF xy ∨ xz — x occurs twice, so naive independent-OR of
	// clause probabilities would be wrong. Shannon must be exact.
	a := NewAssignment()
	a.MustSet(1, 0.5)
	a.MustSet(2, 0.5)
	a.MustSet(3, 0.5)
	d := NewDNF(NewClause(1, 2), NewClause(1, 3))
	want := 0.5 * (1 - 0.25) // p(x)·Pr[y∨z]
	if got := d.Prob(a); !ApproxEqual(got, want, 1e-12) {
		t.Errorf("Pr = %g, want %g", got, want)
	}
}

func TestWorldEnumeration(t *testing.T) {
	a := NewAssignment()
	a.MustSet(1, 0.25)
	a.MustSet(2, 0.75)
	worlds, err := EnumerateWorlds(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(worlds) != 4 {
		t.Fatalf("got %d worlds, want 4", len(worlds))
	}
	total := 0.0
	for _, w := range worlds {
		total += w.P
	}
	if !ApproxEqual(total, 1, 1e-12) {
		t.Errorf("world probabilities sum to %g, want 1", total)
	}
}

func TestWorldEnumerationBound(t *testing.T) {
	a := NewAssignment()
	for i := 1; i <= MaxWorldVars+1; i++ {
		a.MustSet(Var(i), 0.5)
	}
	if _, err := EnumerateWorlds(a); err == nil {
		t.Error("expected error enumerating too many worlds")
	}
}

func TestMystiQOrOK(t *testing.T) {
	got, err := MystiQOr([]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// MystiQ's formula is an approximation (the 1.001 fudge); allow slack.
	if math.Abs(got-0.28) > 0.01 {
		t.Errorf("MystiQOr = %g, want ≈0.28", got)
	}
}

func TestMystiQOrRuntimeError(t *testing.T) {
	// Thousands of near-certain events: Σ log10(1.001-p) diverges to -∞ and
	// the POWER computation fails, as observed in §VII for queries 1, 4, 12.
	ps := make([]float64, 200000)
	for i := range ps {
		ps[i] = 0.999
	}
	if _, err := MystiQOr(ps); err == nil {
		t.Error("expected MystiQ aggregate to fail on many near-certain events")
	}
}

func TestOneOFDNFExpansion(t *testing.T) {
	f := And1OF(Leaf1OF(1), Or1OF(Leaf1OF(2), Leaf1OF(3)))
	d := f.DNF()
	if len(d.Clauses) != 2 {
		t.Fatalf("expansion has %d clauses, want 2", len(d.Clauses))
	}
	a := NewAssignment()
	a.MustSet(1, 0.3)
	a.MustSet(2, 0.4)
	a.MustSet(3, 0.5)
	if !ApproxEqual(f.Prob(a), d.Prob(a), 1e-12) {
		t.Errorf("1OF Pr %g != DNF Pr %g", f.Prob(a), d.Prob(a))
	}
}

func TestOneOFViolationDetected(t *testing.T) {
	f := Or1OF(Leaf1OF(1), And1OF(Leaf1OF(1), Leaf1OF(2)))
	if err := f.CheckOneOccurrence(); err == nil {
		t.Error("expected one-occurrence violation to be detected")
	}
}

func TestOneOFString(t *testing.T) {
	f := And1OF(Leaf1OF(1), Or1OF(Leaf1OF(2), Leaf1OF(3)))
	if got := f.String(); got != "x1∧(x2∨x3)" {
		t.Errorf("String() = %q", got)
	}
}

// randomDNF builds a random DNF over up to 8 variables.
func randomDNF(r *rand.Rand) (*DNF, *Assignment) {
	nVars := 1 + r.Intn(8)
	a := NewAssignment()
	for i := 1; i <= nVars; i++ {
		a.MustSet(Var(i), 0.05+0.9*r.Float64())
	}
	nClauses := 1 + r.Intn(6)
	d := NewDNF()
	for i := 0; i < nClauses; i++ {
		width := 1 + r.Intn(3)
		vs := make([]Var, width)
		for j := range vs {
			vs[j] = Var(1 + r.Intn(nVars))
		}
		d.Add(NewClause(vs...))
	}
	return d, a
}

// TestQuickShannonMatchesWorlds is the foundational property test: Shannon
// expansion agrees with the definitional possible-world semantics on random
// DNFs.
func TestQuickShannonMatchesWorlds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, a := randomDNF(r)
		byWorlds, err := ProbByWorlds(d, a)
		if err != nil {
			t.Fatal(err)
		}
		return ApproxEqual(d.Prob(a), byWorlds, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// randomOneOF generates a random 1OF tree over fresh variables.
func randomOneOF(r *rand.Rand, next *Var, depth int) *OneOF {
	if depth == 0 || r.Intn(3) == 0 {
		v := *next
		*next++
		return Leaf1OF(v)
	}
	n := 2 + r.Intn(3)
	children := make([]*OneOF, n)
	for i := range children {
		children[i] = randomOneOF(r, next, depth-1)
	}
	if r.Intn(2) == 0 {
		return And1OF(children...)
	}
	return Or1OF(children...)
}

// TestQuickOneOFMatchesDNF: linear-time 1OF evaluation equals the exact
// probability of its DNF expansion (Prop. III.5 soundness).
func TestQuickOneOFMatchesDNF(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		next := Var(1)
		tree := randomOneOF(r, &next, 2)
		if int(next) > 18 {
			return true // keep the oracle cheap
		}
		a := NewAssignment()
		for v := Var(1); v < next; v++ {
			a.MustSet(v, 0.05+0.9*r.Float64())
		}
		if err := tree.CheckOneOccurrence(); err != nil {
			t.Fatal(err)
		}
		return ApproxEqual(tree.Prob(a), tree.DNF().Prob(a), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
