package prob

import (
	"fmt"
	"strings"
)

// OneOF is an expression tree in one-occurrence form: every variable occurs
// at most once, conjunction connects independent subexpressions, and
// disjunction connects subexpressions over disjoint variable sets (paper
// §I, §III). Probability evaluation maps AND to product and OR to the
// independent-disjunction formula, and is linear in the number of variables
// (Prop. III.5 context).
type OneOF struct {
	// Exactly one of the following shapes:
	Leaf     Var      // valid when Kind == OneOFLeaf
	Children []*OneOF // operands for And/Or
	Kind     OneOFKind
}

// OneOFKind discriminates the node shapes of a 1OF tree.
type OneOFKind int

// Node kinds of a 1OF expression tree.
const (
	OneOFLeaf OneOFKind = iota
	OneOFAnd
	OneOFOr
)

// Leaf1OF builds a variable leaf.
func Leaf1OF(v Var) *OneOF { return &OneOF{Kind: OneOFLeaf, Leaf: v} }

// And1OF builds a conjunction node.
func And1OF(children ...*OneOF) *OneOF { return &OneOF{Kind: OneOFAnd, Children: children} }

// Or1OF builds a disjunction node.
func Or1OF(children ...*OneOF) *OneOF { return &OneOF{Kind: OneOFOr, Children: children} }

// Prob evaluates the probability of the 1OF tree in one pass: product at
// AND nodes, independent-OR at OR nodes, Pr[x] at leaves.
func (t *OneOF) Prob(a *Assignment) float64 {
	switch t.Kind {
	case OneOFLeaf:
		return a.P(t.Leaf)
	case OneOFAnd:
		p := 1.0
		for _, c := range t.Children {
			p *= c.Prob(a)
		}
		return p
	case OneOFOr:
		comp := 1.0
		for _, c := range t.Children {
			comp *= 1 - c.Prob(a)
		}
		return 1 - comp
	default:
		panic(fmt.Sprintf("prob: unknown 1OF kind %d", t.Kind))
	}
}

// Vars appends the variables of the tree to dst in syntactic order.
func (t *OneOF) Vars(dst []Var) []Var {
	switch t.Kind {
	case OneOFLeaf:
		return append(dst, t.Leaf)
	default:
		for _, c := range t.Children {
			dst = c.Vars(dst)
		}
		return dst
	}
}

// CheckOneOccurrence verifies the defining invariant of 1OF: each variable
// occurs at most once in the tree.
func (t *OneOF) CheckOneOccurrence() error {
	seen := make(map[Var]bool)
	for _, v := range t.Vars(nil) {
		if seen[v] {
			return fmt.Errorf("prob: variable %v occurs more than once; not a 1OF", v)
		}
		seen[v] = true
	}
	return nil
}

// DNF expands the 1OF tree into an equivalent DNF (for cross-validation in
// tests; exponential in general).
func (t *OneOF) DNF() *DNF {
	return &DNF{Clauses: t.dnfClauses()}
}

func (t *OneOF) dnfClauses() []Clause {
	switch t.Kind {
	case OneOFLeaf:
		return []Clause{NewClause(t.Leaf)}
	case OneOFOr:
		var out []Clause
		for _, c := range t.Children {
			out = append(out, c.dnfClauses()...)
		}
		return out
	case OneOFAnd:
		acc := []Clause{{}}
		for _, child := range t.Children {
			cs := child.dnfClauses()
			next := make([]Clause, 0, len(acc)*len(cs))
			for _, a := range acc {
				for _, b := range cs {
					merged := make([]Var, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, NewClause(merged...))
				}
			}
			acc = next
		}
		return acc
	default:
		panic("prob: unknown 1OF kind")
	}
}

// String renders the tree with the paper's factored notation, e.g.
// x1∧(y1∧(z1∨z2)).
func (t *OneOF) String() string {
	switch t.Kind {
	case OneOFLeaf:
		return t.Leaf.String()
	case OneOFAnd:
		parts := make([]string, len(t.Children))
		for i, c := range t.Children {
			parts[i] = c.paren()
		}
		return strings.Join(parts, "∧")
	case OneOFOr:
		parts := make([]string, len(t.Children))
		for i, c := range t.Children {
			parts[i] = c.paren()
		}
		return strings.Join(parts, "∨")
	default:
		panic("prob: unknown 1OF kind")
	}
}

func (t *OneOF) paren() string {
	if t.Kind == OneOFLeaf || len(t.Children) == 1 {
		return t.String()
	}
	return "(" + t.String() + ")"
}
