package prob

import (
	"context"
	"math/rand"
	"sort"
)

// The Karp–Luby estimator (Karp & Luby 1983; Karp, Luby & Madras 1989) for
// DNF probability. Instead of sampling full possible worlds — where a tiny
// Pr[φ] makes satisfying worlds vanishingly rare — it samples from the
// weighted union of the clauses' satisfying sets and corrects for overlap:
//
//	U      = Σ_i Pr[clause_i]            (clause weights, known exactly)
//	sample = pick clause i with probability Pr[clause_i]/U,
//	         draw a world conditioned on clause i being true
//	X      = U·1[i is the first satisfied clause of the drawn world]
//
// X is an unbiased estimator of Pr[φ]: every satisfying world is counted
// exactly once (for its first satisfied clause), with importance weight
// cancelling the conditioning. Samples lie in {0, U}, so the Hoeffding
// stopping rule (SampleBound) applies with width U — when U < 1 this beats
// the naive sampler's width of 1, which is how MCAuto chooses between them.

// pickClause samples a clause index proportionally to its weight.
func (c *mcCompiled) pickClause(rng *rand.Rand) int {
	r := rng.Float64() * c.U
	i := sort.SearchFloat64s(c.cum, r)
	if i >= len(c.cum) {
		i = len(c.cum) - 1
	}
	return i
}

// sampleKarpLuby draws up to n Karp–Luby samples and returns U·(hit
// fraction), the unbiased estimate of Pr[φ], plus the count actually drawn
// (less than n only when stop fired between sample blocks). Callers clamp
// to [0, 1].
func (c *mcCompiled) sampleKarpLuby(ctx context.Context, n int, rng *rand.Rand, stop func() bool) (float64, int, error) {
	buf := make([]bool, len(c.vars))
	hits := 0
	for s := 0; s < n; s++ {
		if s%cancelCheckInterval == 0 {
			if ctx.Err() != nil {
				return 0, 0, ctx.Err()
			}
			if s > 0 && stop != nil && stop() {
				return c.U * float64(hits) / float64(s), s, nil
			}
		}
		i := c.pickClause(rng)
		// Draw a world conditioned on clause i: its variables are true,
		// every other variable keeps its marginal.
		for j, p := range c.probs {
			buf[j] = rng.Float64() < p
		}
		for _, vi := range c.clauses[i] {
			buf[vi] = true
		}
		// Count the sample iff clause i is the canonical (first) satisfied
		// clause of the drawn world; clause i itself holds by construction.
		canonical := true
		for j := 0; j < i; j++ {
			if clauseTrue(buf, c.clauses[j]) {
				canonical = false
				break
			}
		}
		if canonical {
			hits++
		}
	}
	return c.U * float64(hits) / float64(n), n, nil
}
