package prob

import (
	"math"
	"math/rand"
	"testing"
)

// randomMCDNF builds a random DNF over at most maxVars variables together with
// a random probability assignment.
func randomMCDNF(rng *rand.Rand, maxVars int) (*DNF, *Assignment) {
	nVars := 1 + rng.Intn(maxVars)
	a := NewAssignment()
	for v := 1; v <= nVars; v++ {
		a.MustSet(Var(v), 0.05+0.9*rng.Float64())
	}
	nClauses := 1 + rng.Intn(6)
	d := &DNF{}
	for i := 0; i < nClauses; i++ {
		width := 1 + rng.Intn(4)
		vs := make([]Var, 0, width)
		for j := 0; j < width; j++ {
			vs = append(vs, Var(1+rng.Intn(nVars)))
		}
		d.Add(NewClause(vs...))
	}
	return d, a
}

// TestMCMatchesExactOnRandomDNFs is the property test of the estimators: on
// randomized small DNFs (≤ 12 variables) both samplers must land within ε
// of the exact possible-world enumeration of worlds.go. The seed is fixed,
// so a pass is deterministic; δ is chosen small enough that the expected
// number of bound violations across the whole run is ≪ 1.
func TestMCMatchesExactOnRandomDNFs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const eps = 0.05
	for trial := 0; trial < 40; trial++ {
		d, a := randomMCDNF(rng, 12)
		exact, err := ProbByWorlds(d, a)
		if err != nil {
			t.Fatal(err)
		}
		// The Shannon-expansion oracle must agree with world enumeration.
		if sh := d.Prob(a); !ApproxEqual(sh, exact, 1e-9) {
			t.Fatalf("trial %d: Shannon %g vs worlds %g for %s", trial, sh, exact, d)
		}
		for _, m := range []MCMethod{MCNaive, MCKarpLuby, MCAuto} {
			est := MCProb(d, a, MCOptions{Epsilon: eps, Delta: 1e-4, Seed: int64(100 + trial), Method: m})
			if math.Abs(est.P-exact) > eps {
				t.Errorf("trial %d (%v): estimate %g, exact %g, |err| %g > ε=%g for %s",
					trial, m, est.P, exact, math.Abs(est.P-exact), eps, d)
			}
			if est.P < 0 || est.P > 1 {
				t.Errorf("trial %d (%v): estimate %g outside [0,1]", trial, m, est.P)
			}
		}
	}
}

// TestMCDeterminism: the same seed and options must reproduce the estimate
// bit for bit, for single formulas and for the parallel batch driver.
func TestMCDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var dnfs []*DNF
	a := NewAssignment()
	for v := 1; v <= 40; v++ {
		a.MustSet(Var(v), 0.05+0.9*rng.Float64())
	}
	for i := 0; i < 24; i++ {
		d := &DNF{}
		for c := 0; c < 2+rng.Intn(4); c++ {
			vs := make([]Var, 0, 3)
			for j := 0; j < 1+rng.Intn(3); j++ {
				vs = append(vs, Var(1+rng.Intn(40)))
			}
			d.Add(NewClause(vs...))
		}
		dnfs = append(dnfs, d)
	}
	opts := MCOptions{Epsilon: 0.05, Delta: 0.01, Seed: 99}

	one := MCProb(dnfs[0], a, opts)
	if again := MCProb(dnfs[0], a, opts); again != one {
		t.Errorf("MCProb not deterministic: %+v vs %+v", one, again)
	}

	seq := opts
	seq.Workers = 1
	par := opts
	par.Workers = 8
	a1 := EstimateAll(dnfs, a, seq)
	a2 := EstimateAll(dnfs, a, par)
	a3 := EstimateAll(dnfs, a, par)
	for i := range dnfs {
		if a1[i] != a2[i] {
			t.Errorf("formula %d: sequential %+v != parallel %+v", i, a1[i], a2[i])
		}
		if a2[i] != a3[i] {
			t.Errorf("formula %d: parallel runs disagree: %+v vs %+v", i, a2[i], a3[i])
		}
	}

	other := opts
	other.Seed = 100
	a4 := EstimateAll(dnfs, a, other)
	same := true
	for i := range dnfs {
		if a1[i].Samples > 0 && a1[i].P != a4[i].P {
			same = false
		}
	}
	if same {
		t.Error("changing the seed left every sampled estimate unchanged")
	}
}

// TestMCExactShortcuts: MCAuto must resolve the polynomial cases exactly,
// with zero samples.
func TestMCExactShortcuts(t *testing.T) {
	a := NewAssignment()
	a.MustSet(1, 0.3)
	a.MustSet(2, 0.5)
	a.MustSet(3, 0.2)

	cases := []struct {
		name string
		d    *DNF
		want float64
	}{
		{"empty DNF", NewDNF(), 0},
		{"empty clause (true)", NewDNF(NewClause()), 1},
		{"single clause", NewDNF(NewClause(1, 2)), 0.15},
		{"disjoint clauses", NewDNF(NewClause(1), NewClause(2), NewClause(3)), OrAll([]float64{0.3, 0.5, 0.2})},
	}
	for _, c := range cases {
		est := MCProb(c.d, a, MCOptions{Seed: 1})
		if est.Method != "exact" || est.Samples != 0 {
			t.Errorf("%s: expected exact shortcut, got %+v", c.name, est)
		}
		if !ApproxEqual(est.P, c.want, 1e-12) {
			t.Errorf("%s: P = %g, want %g", c.name, est.P, c.want)
		}
	}
}

// TestMCAutoPicksKarpLubyForSmallU: with overlapping low-weight clauses the
// total clause weight U is below 1 and MCAuto must choose Karp–Luby (whose
// Hoeffding width is U < 1, hence fewer samples than the naive bound).
func TestMCAutoPicksKarpLubyForSmallU(t *testing.T) {
	a := NewAssignment()
	for v := 1; v <= 4; v++ {
		a.MustSet(Var(v), 0.1)
	}
	d := NewDNF(NewClause(1, 2), NewClause(2, 3), NewClause(3, 4))
	est := MCProb(d, a, MCOptions{Epsilon: 0.02, Delta: 0.01, Seed: 5})
	if est.Method != "karp-luby" {
		t.Fatalf("U = 0.03 ≪ 1, expected karp-luby, got %+v", est)
	}
	if naive := SampleBound(0.02, 0.01, 1); est.Samples >= naive {
		t.Errorf("karp-luby used %d samples, naive bound is %d — no saving", est.Samples, naive)
	}
	exact := d.Prob(a)
	if math.Abs(est.P-exact) > 0.02 {
		t.Errorf("estimate %g, exact %g", est.P, exact)
	}
}

// TestMCMaxSamplesCap: when the cap truncates the run, the reported ε must
// widen accordingly.
func TestMCMaxSamplesCap(t *testing.T) {
	a := NewAssignment()
	for v := 1; v <= 6; v++ {
		a.MustSet(Var(v), 0.5)
	}
	d := NewDNF(NewClause(1, 2), NewClause(2, 3), NewClause(4, 5), NewClause(5, 6), NewClause(1, 6))
	opts := MCOptions{Epsilon: 0.001, Delta: 0.01, Seed: 3, MaxSamples: 1000, Method: MCNaive}
	est := MCProb(d, a, opts)
	if est.Samples != 1000 {
		t.Fatalf("expected the cap to bind: %+v", est)
	}
	if est.Epsilon <= 0.001 {
		t.Errorf("capped run must report a weaker ε, got %g", est.Epsilon)
	}
	want := achievedEps(1000, 0.01, 1)
	if !ApproxEqual(est.Epsilon, want, 1e-12) {
		t.Errorf("reported ε %g, want %g", est.Epsilon, want)
	}
}

// TestSampleBound sanity: tighter ε or δ, or wider range, needs more samples.
func TestSampleBound(t *testing.T) {
	base := SampleBound(0.05, 0.01, 1)
	if SampleBound(0.01, 0.01, 1) <= base {
		t.Error("smaller ε must need more samples")
	}
	if SampleBound(0.05, 0.001, 1) <= base {
		t.Error("smaller δ must need more samples")
	}
	if SampleBound(0.05, 0.01, 2) <= base {
		t.Error("wider range must need more samples")
	}
	if SampleBound(0.05, 0.01, 0.5) >= base {
		t.Error("narrower range must need fewer samples")
	}
}

// TestKarpLubyEmptyDNF: the forced Karp–Luby method has no clause to sample
// from on the empty DNF (U = 0) and must return the exact 0, not panic.
func TestKarpLubyEmptyDNF(t *testing.T) {
	est := MCProb(NewDNF(), NewAssignment(), MCOptions{Method: MCKarpLuby, Seed: 1})
	if est.P != 0 || est.Method != "exact" {
		t.Fatalf("empty DNF under forced karp-luby: %+v", est)
	}
}
