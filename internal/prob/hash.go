package prob

// The one FNV-1a implementation shared by every hash-keyed container in the
// system: table.HashOn (tuple keys for joins, dedup and partitioning), the
// lineage collector's clause dedup, and the OBDD compiler's interned
// clause-set memo. All of them resolve collisions by structural equality,
// so the hash only has to be fast and well mixed — but keeping one copy of
// the constants and the byte loop means they can never drift apart.

// FNV-1a parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// FNVInit returns the FNV-1a offset basis.
func FNVInit() uint64 { return fnvOffset64 }

// FNVByte folds one byte into an FNV-1a hash.
func FNVByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// FNVUint64 folds eight little-endian bytes into an FNV-1a hash.
func FNVUint64(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h = FNVByte(h, byte(v>>s))
	}
	return h
}

// FNVUint32 folds four little-endian bytes into an FNV-1a hash.
func FNVUint32(h uint64, v uint32) uint64 {
	for s := 0; s < 32; s += 8 {
		h = FNVByte(h, byte(v>>s))
	}
	return h
}

// Hash is FNV-1a over the normalized clause's variable ids.
func (c Clause) Hash() uint64 {
	h := FNVInit()
	for _, v := range c {
		h = FNVUint64(h, uint64(v))
	}
	return h
}
