package prob

import "fmt"

// MaxWorldVars bounds the possible-world oracle; 2^24 worlds is already far
// beyond what tests need, and the bound guards against accidental blowups.
const MaxWorldVars = 24

// World is one truth assignment of all variables of an Assignment, together
// with its probability Pr[f] = Π p or (1-p) (paper §II.A).
type World struct {
	Truth map[Var]bool
	P     float64
}

// EnumerateWorlds materializes every possible world of the given assignment.
// It is the brute-force semantics of a tuple-independent database: each of
// the 2^n truth assignments of the n variables is one world. The sum of all
// world probabilities is 1. Only usable for small n (test oracle).
func EnumerateWorlds(a *Assignment) ([]World, error) {
	vars := a.Vars()
	n := len(vars)
	if n > MaxWorldVars {
		return nil, fmt.Errorf("prob: refusing to enumerate 2^%d worlds (max %d vars)", n, MaxWorldVars)
	}
	worlds := make([]World, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		truth := make(map[Var]bool, n)
		p := 1.0
		for i, v := range vars {
			t := mask&(1<<uint(i)) != 0
			truth[v] = t
			if t {
				p *= a.P(v)
			} else {
				p *= 1 - a.P(v)
			}
		}
		worlds = append(worlds, World{Truth: truth, P: p})
	}
	return worlds, nil
}

// ProbByWorlds computes Pr[φ] = Σ_{f implies φ} Pr[f] by enumerating worlds.
// This is the definitional (exponential) semantics from §II.A and the
// ultimate correctness oracle for the whole system.
func ProbByWorlds(d *DNF, a *Assignment) (float64, error) {
	// Enumerate only over the variables the formula mentions plus nothing
	// else: variables outside φ marginalize out.
	sub := NewAssignment()
	for _, v := range d.Vars() {
		// Unassigned variables are deterministic with p = 1.
		if err := sub.Set(v, a.P(v)); err != nil {
			return 0, err
		}
	}
	worlds, err := EnumerateWorlds(sub)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, w := range worlds {
		if d.Eval(w.Truth) {
			total += w.P
		}
	}
	return total, nil
}
