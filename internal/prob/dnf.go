package prob

import (
	"fmt"
	"slices"
	"strings"
)

// Clause is a conjunction of positive variables: one clause per contributing
// combination of input tuples (paper §I: "the answer to a query on a
// probabilistic database can be represented by a relation pairing possible
// result tuples with propositional formulas ... in the form of a DNF").
// Variables within a clause are kept sorted and deduplicated.
type Clause []Var

// NewClause builds a normalized clause from the given variables, dropping
// NoVar (deterministic tuples) and duplicates.
func NewClause(vs ...Var) Clause {
	c := make(Clause, 0, len(vs))
	for _, v := range vs {
		if v.Valid() {
			c = append(c, v)
		}
	}
	slices.Sort(c)
	out := c[:0]
	var prev Var = -1
	for _, v := range c {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// Contains reports whether the clause mentions v.
func (c Clause) Contains(v Var) bool {
	_, ok := slices.BinarySearch(c, v)
	return ok
}

// String renders the clause as a product of variables, e.g. x1y1z1 -> "x1x2x3"
// style with explicit conjunction.
func (c Clause) String() string {
	if len(c) == 0 {
		return "⊤"
	}
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = v.String()
	}
	return strings.Join(parts, "∧")
}

// DNF is a disjunction of clauses over positive variables — the lineage of
// one distinct answer tuple.
type DNF struct {
	Clauses []Clause
}

// NewDNF builds a DNF from clauses, deduplicating identical clauses.
func NewDNF(clauses ...Clause) *DNF {
	d := &DNF{}
	for _, c := range clauses {
		d.Add(c)
	}
	return d
}

// Add appends a clause unless an identical clause is already present.
func (d *DNF) Add(c Clause) {
	for _, e := range d.Clauses {
		if e.Equal(c) {
			return
		}
	}
	d.Clauses = append(d.Clauses, c)
}

// Equal reports whether two normalized clauses are identical.
func (c Clause) Equal(o Clause) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Vars returns the sorted set of variables mentioned by the formula.
func (d *DNF) Vars() []Var {
	seen := make(map[Var]bool)
	for _, c := range d.Clauses {
		for _, v := range c {
			seen[v] = true
		}
	}
	vs := make([]Var, 0, len(seen))
	for v := range seen {
		vs = append(vs, v)
	}
	slices.Sort(vs)
	return vs
}

// String renders the formula in the paper's DNF notation.
func (d *DNF) String() string {
	if len(d.Clauses) == 0 {
		return "⊥"
	}
	parts := make([]string, len(d.Clauses))
	for i, c := range d.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∨ ")
}

// Eval evaluates the formula under a total truth assignment.
func (d *DNF) Eval(truth map[Var]bool) bool {
	for _, c := range d.Clauses {
		ok := true
		for _, v := range c {
			if !truth[v] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Prob computes the exact probability of the DNF by Shannon expansion with
// memoization on the residual formula. Computing Pr of an arbitrary DNF is
// #P-complete (§II.A); this oracle is intended for test-sized formulas and
// serves as the ground truth against which the signature-based operator is
// validated.
func (d *DNF) Prob(a *Assignment) float64 {
	if len(d.Clauses) == 0 {
		return 0
	}
	memo := make(map[string]float64)
	return shannon(d.Clauses, a, memo)
}

// shannon picks the most frequent variable, conditions on it, and recurses.
func shannon(clauses []Clause, a *Assignment, memo map[string]float64) float64 {
	if len(clauses) == 0 {
		return 0
	}
	for _, c := range clauses {
		if len(c) == 0 {
			return 1 // empty clause = true
		}
	}
	key := clausesKey(clauses)
	if p, ok := memo[key]; ok {
		return p
	}
	v := pickBranchVar(clauses)
	p := a.P(v)
	pos := condition(clauses, v, true)
	neg := condition(clauses, v, false)
	res := p*shannon(pos, a, memo) + (1-p)*shannon(neg, a, memo)
	memo[key] = res
	return res
}

func clausesKey(clauses []Clause) string {
	var b strings.Builder
	for _, c := range clauses {
		for _, v := range c {
			fmt.Fprintf(&b, "%d,", v)
		}
		b.WriteByte(';')
	}
	return b.String()
}

func pickBranchVar(clauses []Clause) Var {
	count := make(map[Var]int)
	for _, c := range clauses {
		for _, v := range c {
			count[v]++
		}
	}
	var best Var
	bestN := -1
	for v, n := range count {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

// condition sets v to the given truth value and simplifies. Clauses
// containing a false literal vanish; true literals are removed.
func condition(clauses []Clause, v Var, val bool) []Clause {
	out := make([]Clause, 0, len(clauses))
	for _, c := range clauses {
		if c.Contains(v) {
			if !val {
				continue // clause is false
			}
			nc := make(Clause, 0, len(c)-1)
			for _, w := range c {
				if w != v {
					nc = append(nc, w)
				}
			}
			if len(nc) == 0 {
				return []Clause{{}} // whole formula is true
			}
			out = append(out, nc)
		} else {
			out = append(out, c)
		}
	}
	return out
}
