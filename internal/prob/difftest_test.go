// Differential coverage lives in an external test package: internal/difftest
// imports prob (and both lineage compilers), so the property test must sit
// outside the package proper to avoid an import cycle.
package prob_test

import (
	"math/rand"
	"testing"

	"repro/internal/difftest"
)

// TestDifferential cross-checks every confidence tier on random
// lineage-shaped formulas: the possible-worlds oracle against Shannon
// expansion, OBDD and d-tree compilation (full and starved budgets), and
// the (ε, δ) Monte Carlo estimator.
func TestDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 60; i++ {
		d, a := difftest.RandomDNF(rng, 12)
		if err := difftest.Check(d, a); err != nil {
			t.Fatalf("formula %d: %v", i, err)
		}
	}
}
