package prob

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/pool"
)

// This file implements the Monte Carlo side of confidence computation:
// approximate probability estimation for DNF lineage whose exact evaluation
// is #P-hard (§II.A). Two samplers are provided — a naive possible-worlds
// sampler and the Karp–Luby importance sampler (karpluby.go) — behind a
// single (ε, δ) interface: the returned estimate is within ε of the true
// probability with probability at least 1-δ. EstimateAll fans a batch of
// per-answer formulas out to a worker pool with one deterministic RNG per
// formula, so results are reproducible regardless of scheduling.

// MCMethod selects the sampling estimator.
type MCMethod int

// Estimation methods.
const (
	// MCAuto resolves each formula exactly when a polynomial shortcut
	// applies (empty, single-clause or variable-disjoint DNF) and otherwise picks
	// the sampler with the lower (ε, δ) sample bound: Karp–Luby when the
	// total clause weight U is below 1, the naive sampler otherwise.
	MCAuto MCMethod = iota
	// MCNaive always samples full possible worlds, even when an exact
	// shortcut exists (useful for testing the sampler itself).
	MCNaive
	// MCKarpLuby always runs the Karp–Luby estimator.
	MCKarpLuby
)

// String names the method.
func (m MCMethod) String() string {
	switch m {
	case MCAuto:
		return "auto"
	case MCNaive:
		return "naive"
	case MCKarpLuby:
		return "karp-luby"
	default:
		return "?"
	}
}

// Default Monte Carlo parameters.
const (
	DefaultEpsilon    = 0.05
	DefaultDelta      = 0.01
	DefaultMaxSamples = 1 << 22
)

// MCOptions configures Monte Carlo confidence estimation.
type MCOptions struct {
	// Epsilon is the additive error bound: |estimate - Pr[φ]| ≤ Epsilon
	// with probability ≥ 1-Delta. 0 defaults to DefaultEpsilon.
	Epsilon float64
	// Delta is the per-formula failure probability. 0 defaults to
	// DefaultDelta.
	Delta float64
	// Seed makes estimation deterministic: the same seed, options and
	// input produce bit-identical estimates. 0 is a valid seed.
	Seed int64
	// MaxSamples caps the per-formula sample count. When the (ε, δ) bound
	// asks for more, the estimator runs MaxSamples and reports the weaker
	// ε it actually guarantees. 0 defaults to DefaultMaxSamples.
	MaxSamples int
	// Method forces a sampler; MCAuto (the zero value) picks per formula.
	Method MCMethod
	// Workers sizes EstimateAll's worker pool; 0 defaults to GOMAXPROCS.
	Workers int
	// Pool, when set, supplies the worker pool — the engine passes its
	// shared pool here so estimation draws from the same slot budget as
	// every other parallel stage. Workers is ignored then.
	Pool *pool.Pool
	// Stop, when non-nil, is polled between sample blocks (every
	// cancelCheckInterval draws); once it reports true the sampler returns
	// the running estimate over the samples drawn so far with the wider ε
	// those samples actually guarantee, and the estimate reports
	// Stopped=true. The planner arms it with a deadline-watermark probe.
	Stop func() bool
}

func (o MCOptions) withDefaults() MCOptions {
	if o.Epsilon <= 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		o.Delta = DefaultDelta
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = DefaultMaxSamples
	}
	return o
}

// MCEstimate is the outcome of estimating one formula.
type MCEstimate struct {
	// P is the estimated (or exactly computed) probability, in [0, 1].
	P float64
	// Samples is the number of Monte Carlo samples drawn (0 when the
	// formula was resolved exactly).
	Samples int
	// Method records how the estimate was obtained: "exact", "naive" or
	// "karp-luby".
	Method string
	// Epsilon is the additive error guaranteed with probability 1-Delta:
	// the requested ε, or a weaker bound when MaxSamples capped the run
	// (0 for exact results).
	Epsilon float64
	// Delta is the failure probability backing Epsilon.
	Delta float64
	// Capped reports that MaxSamples cut the run short of the sample
	// count the requested (ε, δ) bound asked for — the early-stop reason
	// observability surfaces as "sample cap" rather than "target met".
	Capped bool
	// Stopped reports that MCOptions.Stop cut the run short: P is the
	// running estimate over Samples draws and Epsilon the (wider) bound
	// they actually guarantee.
	Stopped bool
}

// SampleBound returns the Hoeffding sample count guaranteeing an additive
// (ε, δ) bound for the empirical mean of i.i.d. samples in [0, width]:
// n = ⌈width²·ln(2/δ) / (2ε²)⌉. This is the estimators' stopping rule.
func SampleBound(eps, delta, width float64) int {
	n := math.Ceil(width * width * math.Log(2/delta) / (2 * eps * eps))
	if n < 1 {
		return 1
	}
	if n > float64(math.MaxInt32) {
		return math.MaxInt32
	}
	return int(n)
}

// achievedEps inverts SampleBound: the additive bound n samples in
// [0, width] actually guarantee at confidence 1-δ.
func achievedEps(n int, delta, width float64) float64 {
	return width * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// mcCompiled is a DNF lowered to index form for fast repeated evaluation:
// variables become dense indexes, clauses become index lists, and each
// clause carries its weight Π p (its probability as an independent
// conjunction).
type mcCompiled struct {
	vars    []Var
	probs   []float64 // Pr[vars[i] = true]
	clauses [][]int32 // per clause: indexes into vars
	weights []float64 // per clause: product of member probabilities
	cum     []float64 // cumulative weights, for clause sampling
	U       float64   // total weight Σ weights
}

func mcCompile(d *DNF, a *Assignment) *mcCompiled {
	c := &mcCompiled{}
	idx := make(map[Var]int32)
	for _, v := range d.Vars() {
		idx[v] = int32(len(c.vars))
		c.vars = append(c.vars, v)
		c.probs = append(c.probs, a.P(v))
	}
	// All clause index lists share one flat backing array: the whole
	// formula lowers in four allocations regardless of its clause count.
	total := 0
	for _, cl := range d.Clauses {
		total += len(cl)
	}
	flat := make([]int32, 0, total)
	c.clauses = make([][]int32, 0, len(d.Clauses))
	c.weights = make([]float64, 0, len(d.Clauses))
	c.cum = make([]float64, 0, len(d.Clauses))
	for _, cl := range d.Clauses {
		start := len(flat)
		w := 1.0
		for _, v := range cl {
			if !v.Valid() {
				continue
			}
			i := idx[v]
			flat = append(flat, i)
			w *= c.probs[i]
		}
		c.clauses = append(c.clauses, flat[start:len(flat):len(flat)])
		c.weights = append(c.weights, w)
		c.U += w
		c.cum = append(c.cum, c.U)
	}
	return c
}

// exact resolves the polynomially computable cases: the empty DNF (false),
// any empty clause (true), a single clause (independent conjunction), and
// variable-disjoint clauses (independent disjunction of conjunctions).
func (c *mcCompiled) exact() (float64, bool) {
	if len(c.clauses) == 0 {
		return 0, true
	}
	for _, cl := range c.clauses {
		if len(cl) == 0 {
			return 1, true
		}
	}
	if len(c.clauses) == 1 {
		return c.weights[0], true
	}
	seen := make([]bool, len(c.vars))
	for _, cl := range c.clauses {
		for _, i := range cl {
			if seen[i] {
				return 0, false
			}
			seen[i] = true
		}
	}
	return OrAll(c.weights), true
}

func clauseTrue(buf []bool, cl []int32) bool {
	for _, i := range cl {
		if !buf[i] {
			return false
		}
	}
	return true
}

func (c *mcCompiled) evalBuf(buf []bool) bool {
	for _, cl := range c.clauses {
		if clauseTrue(buf, cl) {
			return true
		}
	}
	return false
}

// cancelCheckInterval is how many samples a sampler draws between context
// checks: rare enough to be free, frequent enough that cancellation of a
// multi-million-sample run returns in well under a millisecond of work.
const cancelCheckInterval = 8192

// sampleNaive draws up to n full possible worlds over the formula's
// variables and returns the fraction satisfying it — the definitional
// estimator, with sample range [0, 1] — plus the count actually drawn
// (less than n only when stop fired between sample blocks).
func (c *mcCompiled) sampleNaive(ctx context.Context, n int, rng *rand.Rand, stop func() bool) (float64, int, error) {
	buf := make([]bool, len(c.vars))
	hits := 0
	for s := 0; s < n; s++ {
		if s%cancelCheckInterval == 0 {
			if ctx.Err() != nil {
				return 0, 0, ctx.Err()
			}
			if s > 0 && stop != nil && stop() {
				return float64(hits) / float64(s), s, nil
			}
		}
		for i, p := range c.probs {
			buf[i] = rng.Float64() < p
		}
		if c.evalBuf(buf) {
			hits++
		}
	}
	return float64(hits) / float64(n), n, nil
}

// mcEstimate runs one formula through the configured estimator.
func mcEstimate(ctx context.Context, c *mcCompiled, o MCOptions, rng *rand.Rand) (MCEstimate, error) {
	method := o.Method
	if len(c.clauses) == 0 {
		// The empty DNF is false regardless of method; Karp–Luby in
		// particular has no clause to sample from (U = 0).
		return MCEstimate{P: 0, Method: "exact", Delta: o.Delta}, nil
	}
	if method == MCAuto {
		if p, ok := c.exact(); ok {
			return MCEstimate{P: p, Method: "exact", Delta: o.Delta}, nil
		}
		if c.U < 1 {
			method = MCKarpLuby
		} else {
			method = MCNaive
		}
	}
	width := 1.0
	if method == MCKarpLuby {
		// The Karp–Luby estimator averages samples in {0, U}; its Hoeffding
		// range is U. (Pr[φ] ≤ min(U, 1), so U < 1 means fewer samples.)
		width = c.U
	}
	eps := o.Epsilon
	capped := false
	n := SampleBound(eps, o.Delta, width)
	if n > o.MaxSamples {
		n = o.MaxSamples
		eps = achievedEps(n, o.Delta, width)
		capped = true
	}
	var p float64
	var drawn int
	var err error
	switch method {
	case MCKarpLuby:
		p, drawn, err = c.sampleKarpLuby(ctx, n, rng, o.Stop)
	default:
		p, drawn, err = c.sampleNaive(ctx, n, rng, o.Stop)
	}
	if err != nil {
		return MCEstimate{}, err
	}
	stopped := false
	if drawn < n {
		// Deadline watermark: keep the running estimate, widen ε to what
		// the drawn samples actually guarantee.
		n = drawn
		eps = achievedEps(n, o.Delta, width)
		if eps > width {
			eps = width
		}
		stopped = true
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	return MCEstimate{P: p, Samples: n, Method: method.String(), Epsilon: eps, Delta: o.Delta,
		Capped: capped, Stopped: stopped}, nil
}

// MCProb estimates Pr[φ] for a single formula with the given options,
// seeding the sampler from opts.Seed.
func MCProb(d *DNF, a *Assignment, opts MCOptions) MCEstimate {
	o := opts.withDefaults()
	est, err := mcEstimate(context.Background(), mcCompile(d, a), o, rand.New(rand.NewSource(tupleSeed(o.Seed, 0))))
	if err != nil {
		// mcEstimate only errors on context cancellation, and a background
		// context cannot cancel.
		panic("prob: estimator errored without cancellation: " + err.Error())
	}
	return est
}

// tupleSeed derives the RNG seed of the i-th formula from the base seed via
// a splitmix64-style mix, decorrelating streams of consecutive indexes.
func tupleSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// EstimateAll estimates every formula of a batch — typically the per-answer
// lineage of one query — fanning the formulas out to a worker pool of
// opts.Workers goroutines (default GOMAXPROCS). Each formula gets its own
// RNG seeded from (opts.Seed, index), so the result is a deterministic
// function of the input and options, independent of scheduling and worker
// count. The assignment is read concurrently and must not be mutated during
// the call.
func EstimateAll(dnfs []*DNF, a *Assignment, opts MCOptions) []MCEstimate {
	out, err := EstimateAllCtx(context.Background(), dnfs, a, opts)
	if err != nil {
		// The only error source is context cancellation, and a background
		// context cannot cancel.
		panic("prob: estimator errored without cancellation: " + err.Error())
	}
	return out
}

// EstimateAllCtx is EstimateAll with cancellation: a cancelled context stops
// the samplers mid-run (they check every few thousand samples) and returns
// ctx.Err(). The worker pool is opts.Pool when set — sharing the engine-wide
// slot budget — and a fresh pool of opts.Workers otherwise.
func EstimateAllCtx(ctx context.Context, dnfs []*DNF, a *Assignment, opts MCOptions) ([]MCEstimate, error) {
	o := opts.withDefaults()
	out := make([]MCEstimate, len(dnfs))
	if len(dnfs) == 0 {
		return out, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := pool.Get(o.Pool, o.Workers)
	err := p.Do(ctx, len(dnfs), func(i int) error {
		rng := rand.New(rand.NewSource(tupleSeed(o.Seed, i)))
		est, err := mcEstimate(ctx, mcCompile(dnfs[i], a), o, rng)
		if err != nil {
			return err
		}
		out[i] = est
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
