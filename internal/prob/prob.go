// Package prob implements the probabilistic foundation of SPROUT:
// independent Boolean random variables, probability arithmetic over
// independent events, DNF lineage formulas, exact probability oracles
// (Shannon expansion and possible-world enumeration), and one-occurrence
// form (1OF) expression trees whose probability is computable in time
// linear in the number of variables (paper §II.A, §III).
//
// For formulas outside the exactly tractable fragment the package provides
// Monte Carlo estimation (mc.go, karpluby.go): a naive possible-worlds
// sampler and the Karp–Luby importance sampler behind a single (ε, δ)
// interface, plus a partition-parallel driver that estimates a batch of
// per-answer formulas on a worker pool with deterministic per-formula
// seeding.
package prob

import (
	"fmt"
	"math"
	"slices"
)

// Var identifies an independent Boolean random variable. The paper (§II.A)
// draws variables from a finite set X; we represent them as small integers,
// exactly like SPROUT's integer-encoded variable columns (§V).
//
// Var 0 is reserved as "no variable" (a deterministic, always-true tuple).
type Var int32

// NoVar marks tuples without an associated random variable; such tuples are
// present in every possible world with probability 1.
const NoVar Var = 0

// Valid reports whether v names an actual random variable.
func (v Var) Valid() bool { return v > 0 }

// String renders a variable as x<id>, matching the paper's notation.
func (v Var) String() string {
	if v == NoVar {
		return "⊤"
	}
	return fmt.Sprintf("x%d", int32(v))
}

// Assignment maps variables to probabilities of their "true" assignment.
// Probabilities must lie in (0, 1] per the data model of §II.A.
type Assignment struct {
	p map[Var]float64
}

// NewAssignment returns an empty probability assignment.
func NewAssignment() *Assignment {
	return &Assignment{p: make(map[Var]float64)}
}

// Set records Pr[v = true] = p. It returns an error if p is outside (0, 1]
// or v is invalid, mirroring the schema constraint on P-columns.
func (a *Assignment) Set(v Var, p float64) error {
	if !v.Valid() {
		return fmt.Errorf("prob: cannot assign probability to reserved variable %v", v)
	}
	if !(p > 0 && p <= 1) || math.IsNaN(p) {
		return fmt.Errorf("prob: probability %g for %v outside (0,1]", p, v)
	}
	a.p[v] = p
	return nil
}

// MustSet is Set for test fixtures; it panics on invalid input.
func (a *Assignment) MustSet(v Var, p float64) {
	if err := a.Set(v, p); err != nil {
		panic(err)
	}
}

// P returns Pr[v = true]. Unassigned variables default to 1 (deterministic),
// and NoVar is always 1.
func (a *Assignment) P(v Var) float64 {
	if v == NoVar {
		return 1
	}
	if p, ok := a.p[v]; ok {
		return p
	}
	return 1
}

// Vars returns the assigned variables in increasing order.
func (a *Assignment) Vars() []Var {
	vs := make([]Var, 0, len(a.p))
	for v := range a.p {
		vs = append(vs, v)
	}
	slices.Sort(vs)
	return vs
}

// Len returns the number of assigned variables.
func (a *Assignment) Len() int { return len(a.p) }

// Or computes the probability of the disjunction of two independent events
// with probabilities p and q: 1 - (1-p)(1-q). This is the `prob` aggregate
// of the paper's Fig. 5 applied pairwise.
func Or(p, q float64) float64 { return 1 - (1-p)*(1-q) }

// OrAll folds Or over a slice of independent event probabilities.
func OrAll(ps []float64) float64 {
	c := 1.0
	for _, p := range ps {
		c *= 1 - p
	}
	return 1 - c
}

// And computes the probability of the conjunction of independent events.
func And(p, q float64) float64 { return p * q }

// MystiQOr reproduces MystiQ's numerically fragile disjunction aggregate,
// 1 - POWER(10.000, SUM(log10(1.001 - p))), described in §VII ("Query
// Engines"): for large n the sum of logarithms of very small complements
// under- or overflows and MystiQ aborts at runtime. We model the failure by
// returning an error when the accumulated log-sum leaves float64's usable
// exponent range, which is what made queries 1, 4, 12 and several Boolean
// variants fail in the paper's experiments.
func MystiQOr(ps []float64) (float64, error) {
	sum := 0.0
	for _, p := range ps {
		c := 1.001 - p
		if c <= 0 {
			return 0, fmt.Errorf("prob: MystiQ aggregate: log of non-positive complement %g", c)
		}
		sum += math.Log10(c)
	}
	if sum < -300 { // 10^sum underflows well before float64's limit in Postgres' POWER
		return 0, fmt.Errorf("prob: MystiQ aggregate: runtime error, log-sum %g underflows POWER", sum)
	}
	return 1 - math.Pow(10, sum), nil
}

// ApproxEqual reports whether two probabilities agree within eps. Exact
// confidence computation over float64 accumulates rounding; tests use 1e-9.
func ApproxEqual(p, q, eps float64) bool {
	return math.Abs(p-q) <= eps
}
