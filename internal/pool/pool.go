// Package pool provides the shared worker pool that drives every parallel
// stage of the engine: partitioned scans and hash-partitioned joins
// (internal/engine), the partition-parallel aggregation passes of the
// confidence operator (internal/conf), per-answer OBDD compilation, and
// Monte Carlo estimation (internal/prob). One Pool per sprout.Engine caps
// the total goroutine parallelism of all concurrently served queries; every
// stage of every query draws from the same slot budget.
//
// Do never blocks waiting for a slot: the calling goroutine always executes
// tasks itself and only offloads extras to idle slots. Nested Do calls (a
// batch fan-out whose per-query work fans out again) therefore cannot
// deadlock, and a pool of one worker degrades to plain sequential execution
// with zero goroutines spawned.
package pool

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// ParallelMinRows is the input size below which the engine's partitioned
// paths (chunked scans, hash-partitioned joins, partition-parallel
// aggregation scans) fall back to serial execution: fanning a few thousand
// rows out to workers costs more than it saves. One constant so every stage
// flips at the same scale.
const ParallelMinRows = 2048

// Pool is a fixed-size worker-slot budget shared by concurrent Do calls.
// The zero value is not usable; construct with New. A nil *Pool is treated
// as a fresh single-use pool of GOMAXPROCS workers by Run-style callers that
// normalize it via Get.
type Pool struct {
	// sem holds the spawnable helper slots: a pool of W workers has W-1
	// slots because the goroutine calling Do is the W-th worker.
	sem chan struct{}
}

// New creates a pool of the given total worker count. workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 yields a pool that executes everything
// inline on the caller.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers-1)}
}

// Get normalizes an optional pool: it returns p unchanged when non-nil, and
// a fresh pool of the given worker count otherwise.
func Get(p *Pool, workers int) *Pool {
	if p != nil {
		return p
	}
	return New(workers)
}

// Workers returns the pool's total worker count (helper slots + the caller).
func (p *Pool) Workers() int { return cap(p.sem) + 1 }

// Parallel reports whether the pool can run more than one task at a time —
// the gate callers use to choose between the serial and partitioned paths.
func (p *Pool) Parallel() bool { return cap(p.sem) > 0 }

// Do runs task(0..n-1), fanning the indexes out to the caller plus as many
// idle helper slots as are free at call time (at most n-1). It returns after
// every started task has finished.
//
// Tasks are claimed in ascending index order. On the first task error or
// context cancellation no further indexes are claimed; already running tasks
// complete. Do returns the error of the lowest erroring index — tasks below
// it were all claimed earlier and ran to completion, so the choice is
// deterministic — or ctx.Err() when the run was cut short with no task
// error. A nil ctx means no cancellation.
//
// A panicking task is recovered at this boundary and converted into a
// *fault.PanicError for its index: the panic fails its own Do call (and so
// its own query) without unwinding through shared Engine state or leaking
// the helper slot, whose release is already deferred.
func (p *Pool) Do(ctx context.Context, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var (
		next int64 = -1
		stop atomic.Bool
	)
	errs := make([]error, n)
	run := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &fault.PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		return task(i)
	}
	worker := func() {
		for !stop.Load() {
			i := int(atomic.AddInt64(&next, 1))
			if i >= n {
				return
			}
			if ctx != nil && ctx.Err() != nil {
				stop.Store(true)
				return
			}
			if err := run(i); err != nil {
				errs[i] = err
				stop.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				worker()
			}()
		default:
			spawned = n // no idle slot: stop trying, run the rest inline
		}
	}
	worker()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}
