package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// errTask is the sentinel ordinary-task error of the panic-ordering test.
var errTask = errors.New("task error")

func TestWorkersAndParallel(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("default pool has %d workers", w)
	}
	one := New(1)
	if one.Workers() != 1 || one.Parallel() {
		t.Fatalf("one-worker pool: workers=%d parallel=%v", one.Workers(), one.Parallel())
	}
	four := New(4)
	if four.Workers() != 4 || !four.Parallel() {
		t.Fatalf("four-worker pool: workers=%d parallel=%v", four.Workers(), four.Parallel())
	}
	if got := Get(four, 1); got != four {
		t.Fatal("Get must keep a non-nil pool")
	}
	if got := Get(nil, 3); got.Workers() != 3 {
		t.Fatalf("Get(nil, 3) built a %d-worker pool", got.Workers())
	}
}

// TestDoRunsEveryTask: all indexes run exactly once, for serial and
// parallel pools.
func TestDoRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		const n = 500
		var counts [n]atomic.Int32
		if err := p.Do(context.Background(), n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestDoLowestIndexError: the returned error is the lowest erroring
// index's, and no index beyond it is claimed after the stop.
func TestDoLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		p := New(workers)
		var ran atomic.Int64
		err := p.Do(context.Background(), 1000, func(i int) error {
			ran.Add(1)
			if i >= 41 {
				return fmt.Errorf("task %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 41" {
			t.Fatalf("workers=%d: got %v, want task 41", workers, err)
		}
		// At most the first erroring task plus one in-flight claim per
		// helper can have started.
		if r := ran.Load(); r > int64(42+workers) {
			t.Fatalf("workers=%d: %d tasks ran after early stop", workers, r)
		}
	}
}

// TestDoContextCancel: a cancelled context stops claims and surfaces
// ctx.Err().
func TestDoContextCancel(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := p.Do(ctx, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if r := ran.Load(); r > 2 {
		t.Fatalf("%d tasks ran under a cancelled context", r)
	}
}

// TestNestedDoNoDeadlock: fan-outs nested inside fan-outs complete even
// when the outer level already holds every slot — the caller-runs-inline
// design's deadlock-freedom guarantee.
func TestNestedDoNoDeadlock(t *testing.T) {
	p := New(2) // one helper slot, heavily oversubscribed below
	done := make(chan error, 1)
	go func() {
		done <- p.Do(context.Background(), 8, func(i int) error {
			return p.Do(context.Background(), 8, func(j int) error {
				return p.Do(context.Background(), 4, func(k int) error { return nil })
			})
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested Do deadlocked")
	}
}

// TestDoReleasesSlots: helper slots freed by one Do are available to the
// next.
func TestDoReleasesSlots(t *testing.T) {
	p := New(3)
	for round := 0; round < 50; round++ {
		if err := p.Do(context.Background(), 10, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(p.sem); got != 0 {
		t.Fatalf("%d slots still held after completed Do calls", got)
	}
}

// TestDoRecoversPanics: a panicking task surfaces as a typed
// *fault.PanicError for its index without crashing sibling workers or
// leaking helper slots; the pool stays usable afterwards.
func TestDoRecoversPanics(t *testing.T) {
	p := New(4)
	err := p.Do(context.Background(), 16, func(i int) error {
		if i == 5 {
			panic("operator bug")
		}
		return nil
	})
	pe, ok := fault.IsPanic(err)
	if !ok {
		t.Fatalf("Do returned %v, want *fault.PanicError", err)
	}
	if pe.Value != "operator bug" || len(pe.Stack) == 0 {
		t.Fatalf("panic payload lost: %+v", pe)
	}
	if got := len(p.sem); got != 0 {
		t.Fatalf("%d slots leaked after panicking Do", got)
	}
	// The pool must remain fully functional.
	if err := p.Do(context.Background(), 8, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestDoPanicLowestIndexWins: with both a panic and an ordinary error, the
// lowest erroring index still decides the returned error.
func TestDoPanicLowestIndexWins(t *testing.T) {
	p := New(1) // serial: deterministic claim order
	err := p.Do(context.Background(), 4, func(i int) error {
		if i == 1 {
			return errTask
		}
		if i == 2 {
			panic("later panic")
		}
		return nil
	})
	if err != errTask {
		t.Fatalf("got %v, want the lower-index task error", err)
	}
}
