package plan

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/fd"
	"repro/internal/logical"
	"repro/internal/query"
	"repro/internal/signature"
	"repro/internal/stats"
)

// This file is the planner's cost model: it prices the logical plan of
// every style for one query from the catalog's ANALYZE statistics, and the
// Auto style dispatches the cheapest applicable one. Costs are abstract
// tuple-operation units — they only need to *rank* plans, not predict
// wall-clock — and are derived by walking the same logical IR the lowering
// executes: scan and join costs from estimated cardinalities, sort+scan
// confidence passes from the signature's scan count, expected OBDD size
// from the signature width and clause count, and Monte Carlo sample counts
// from the (ε, δ) Hoeffding bound.

// Cost model constants (abstract units per tuple operation).
const (
	costScan     = 1.0  // stream one stored tuple
	costJoin     = 1.5  // push one tuple through a hash join (build or probe)
	costMaterial = 0.5  // materialize one intermediate tuple
	costSortUnit = 0.25 // one tuple · log2(n) of a sort pass
	costConfScan = 1.0  // one tuple of a sort+scan confidence pass
	// costOBDDNode prices one OBDD node: hash-consing and memoized apply
	// are far heavier than a sort comparison.
	costOBDDNode = 25.0
	// costSampleLit prices one literal evaluation inside a Monte Carlo
	// sample (calibrated so MC ≈ 2× OBDD at the default ε on the unsafe
	// TPC-H query, matching the measured ratio).
	costSampleLit = 0.15
	// costNoSigOBDD penalizes OBDD compilation without a signature-seeded
	// variable order.
	costNoSigOBDD = 3.0
	// costDTreeNode prices one d-tree decomposition step: each step scans
	// its residual clause set for common variables and connected
	// components, heavier than one hash-consed OBDD node — but the price
	// never depends on a variable order, so without a signature the
	// d-tree tier undercuts penalized OBDD compilation.
	costDTreeNode = 40.0
)

func sortCost(n float64) float64 {
	if n < 2 {
		return costSortUnit
	}
	return costSortUnit * n * math.Log2(n)
}

// CostEstimate prices one style for one query.
type CostEstimate struct {
	Style Style
	// Applicable reports whether the style can run the query at all
	// (directly, not via the fallback chain).
	Applicable bool
	// Candidate reports whether Auto may dispatch the style: applicable,
	// not a baseline (MystiQ's runtime-failure modes exclude it), and not
	// approximate while exact styles exist (or RequireExact is set).
	Candidate bool
	// Cost is the total estimated cost in abstract tuple-operation units
	// (0 when inapplicable).
	Cost float64
	// Tuples is the estimated number of answer tuples entering the
	// confidence computation.
	Tuples float64
	// Reason documents inapplicability or candidate exclusion.
	Reason string
}

// costRel tracks the estimated shape of an intermediate during the cost
// walk: cardinality, per-attribute distinct counts, and the per-source leaf
// cardinalities feeding multiplicity estimates.
type costRel struct {
	card     float64
	dist     map[string]float64
	leafCard map[string]float64
}

// costState walks a logical plan, accumulating cost.
type costState struct {
	c       *Catalog
	q       *query.Query
	spec    Spec
	covered map[string]bool // sources aggregated away by eager operators
	cost    float64
}

// leafEstimate prices the leaf pipeline of one occurrence and returns its
// estimated shape.
func (cs *costState) leafEstimate(ref query.RelRef) costRel {
	baseRows := float64(cs.c.Rows(ref.Base))
	card := estimate(cs.c, cs.q, ref)
	cs.cost += baseRows * costScan
	dist := make(map[string]float64, len(ref.Attrs))
	for _, a := range ref.Attrs {
		d := card // all-distinct fallback without statistics
		if col := colStats(cs.c, ref, a); col != nil {
			d = stats.DistinctAfter(col.Distinct, baseRows, card)
		}
		dist[a] = math.Min(d, card)
	}
	return costRel{card: card, dist: dist, leafCard: map[string]float64{ref.Name: card}}
}

// node walks one IR subtree.
func (cs *costState) node(n logical.Node) (costRel, error) {
	switch x := n.(type) {
	case *logical.Project:
		if j, ok := x.Input.(*logical.Join); ok {
			l, err := cs.node(j.Left)
			if err != nil {
				return costRel{}, err
			}
			r, err := cs.node(j.Right)
			if err != nil {
				return costRel{}, err
			}
			return cs.join(l, r), nil
		}
		ref, ok := scanRefUnder(x)
		if !ok {
			return costRel{}, fmt.Errorf("plan: cannot cost logical node %s", x.Label())
		}
		return cs.leafEstimate(ref), nil
	case *logical.Conf:
		return cs.conf(x)
	default:
		return costRel{}, fmt.Errorf("plan: cannot cost logical node %T", n)
	}
}

// join prices a natural equi-join under the containment-of-values
// assumption: |L ⋈ R| = |L|·|R| / Π_a max(d_L(a), d_R(a)).
func (cs *costState) join(l, r costRel) costRel {
	card := l.card * r.card
	for a, dl := range l.dist {
		if dr, shared := r.dist[a]; shared {
			card /= math.Max(math.Max(dl, dr), 1)
		}
	}
	card = math.Max(card, 1)
	cs.cost += (l.card+r.card)*costJoin + card*costMaterial

	dist := make(map[string]float64, len(l.dist)+len(r.dist))
	for a, d := range l.dist {
		dist[a] = math.Min(d, card)
	}
	for a, d := range r.dist {
		if dl, shared := dist[a]; shared {
			dist[a] = math.Min(dl, d)
		} else {
			dist[a] = math.Min(d, card)
		}
	}
	leafCard := make(map[string]float64, len(l.leafCard)+len(r.leafCard))
	for s, c := range l.leafCard {
		leafCard[s] = c
	}
	for s, c := range r.leafCard {
		leafCard[s] = c
	}
	return costRel{card: card, dist: dist, leafCard: leafCard}
}

// groupCount estimates the number of groups when grouping rel by attrs,
// with every source outside covered still contributing its own variable
// column to the group key (multiplicity mult_s ≈ rows of s per attribute
// group).
func (cs *costState) groupCount(rel costRel, attrs []string, covered map[string]bool) float64 {
	g := 1.0
	for _, a := range attrs {
		if d, ok := rel.dist[a]; ok {
			g *= math.Max(d, 1)
		}
		if g >= rel.card {
			return rel.card
		}
	}
	for s, leaf := range rel.leafCard {
		if covered != nil && covered[s] {
			continue
		}
		ref, ok := cs.q.RelByName(s)
		if !ok {
			continue
		}
		// mult_s: expected rows of s per group of the kept attributes.
		dmax := 1.0
		for _, a := range attrs {
			if ref.HasAttr(a) {
				if d, ok := rel.dist[a]; ok {
					dmax = math.Max(dmax, d)
				}
			}
		}
		g *= math.Max(leaf/dmax, 1)
		if g >= rel.card {
			return rel.card
		}
	}
	return math.Min(math.Max(g, 1), rel.card)
}

// keptAttrs lists the data attributes present in the intermediate.
func keptAttrs(rel costRel) []string {
	out := make([]string, 0, len(rel.dist))
	for a := range rel.dist {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

// conf prices a confidence-placement point.
func (cs *costState) conf(x *logical.Conf) (costRel, error) {
	rel, err := cs.node(x.Input)
	if err != nil {
		return costRel{}, err
	}
	switch {
	case x.Alg == logical.AlgSortScan && !x.Final:
		// Eager aggregation: one sort+scan pass per scheduled scan of each
		// operator, then the intermediate shrinks to its group count.
		for _, op := range x.Ops {
			passes := float64(signature.NumScans(op))
			cs.cost += passes * (sortCost(rel.card) + rel.card*costConfScan)
			for _, t := range signature.Tables(op) {
				cs.covered[t] = true
			}
		}
		g := cs.groupCount(rel, keptAttrs(rel), cs.covered)
		rel.card = g
		for a, d := range rel.dist {
			rel.dist[a] = math.Min(d, g)
		}
		return rel, nil
	case x.Alg == logical.AlgIndProject:
		// MystiQ π^ind: a sort+scan-equivalent group pass; duplicates
		// merge completely (no variable columns survive).
		cs.cost += sortCost(rel.card) + rel.card*costConfScan
		all := make(map[string]bool)
		for s := range rel.leafCard {
			all[s] = true
		}
		g := cs.groupCount(rel, x.Keep, all)
		dist := make(map[string]float64, len(x.Keep))
		for _, a := range x.Keep {
			if d, ok := rel.dist[a]; ok {
				dist[a] = math.Min(d, g)
			}
		}
		rel.card, rel.dist = g, dist
		return rel, nil
	case x.Alg == logical.AlgSortScan: // final
		passes := 1.0
		if x.Sig != nil {
			passes = float64(signature.NumScans(x.Sig))
		}
		cs.cost += passes * (sortCost(rel.card) + rel.card*costConfScan)
		return rel, nil
	default: // final lineage algorithms: OBDD, d-tree, MC, the ladder
		cs.cost += cs.lineageCost(x.Alg, rel, x.Sig != nil)
		return rel, nil
	}
}

// lineageCost prices the lineage-based confidence tiers over the
// materialized answer: collection (one sort-equivalent pass), then OBDD
// compilation — expected size ≈ clauses × signature width, penalized
// without a signature-seeded variable order — or d-tree decomposition
// (order-free: expected steps ≈ clauses × width, no signature modifier) —
// or Monte Carlo sampling with the (ε, δ) Hoeffding sample count.
func (cs *costState) lineageCost(alg logical.Alg, rel costRel, hasSig bool) float64 {
	cost := sortCost(rel.card) + rel.card*costConfScan // collect lineage
	answers := cs.groupCount(rel, cs.q.Head, nil)
	if len(cs.q.Head) == 0 {
		answers = 1
	}
	width := float64(len(cs.q.Rels))
	switch alg {
	case logical.AlgMC:
		samples := hoeffdingSamples(cs.spec)
		cost += answers * samples * width * costSampleLit
	case logical.AlgDTree:
		cost += rel.card * width * costDTreeNode
	default: // AlgOBDD, AlgLadder (optimistic: the chain usually compiles)
		nodes := rel.card * width // total clauses × width
		if !hasSig {
			nodes *= costNoSigOBDD
		}
		cost += nodes * costOBDDNode
	}
	return cost
}

// hoeffdingSamples is the per-answer sample count of the (ε, δ) bound,
// n ≥ ln(2/δ) / (2ε²), with the estimator's defaults for zero values.
func hoeffdingSamples(spec Spec) float64 {
	eps, delta := spec.MC.Epsilon, spec.MC.Delta
	if eps <= 0 {
		eps = 0.05
	}
	if delta <= 0 {
		delta = 0.01
	}
	n := math.Ceil(math.Log(2/delta) / (2 * eps * eps))
	if spec.MC.MaxSamples > 0 && float64(spec.MC.MaxSamples) < n {
		n = float64(spec.MC.MaxSamples)
	}
	return n
}

// costPlan prices one built logical plan.
func costPlan(c *Catalog, q *query.Query, spec Spec, b *built) (cost, tuples float64, err error) {
	cs := &costState{c: c, q: q, spec: spec, covered: make(map[string]bool)}
	root, ok := b.lp.Root.(*logical.Conf)
	if !ok {
		return 0, 0, fmt.Errorf("plan: logical plan for %s lacks a final confidence point", q.Name)
	}
	rel, err := cs.conf(root)
	if err != nil {
		return 0, 0, err
	}
	return cs.cost, rel.card, nil
}

// EstimateCosts prices every style for the query, marking applicability and
// Auto candidacy. The catalog is analyzed (cached) first — the estimates
// use real row counts, distinct counts and histograms.
func EstimateCosts(c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) ([]CostEstimate, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	c.Analyze()
	_, sigErr := signature.Best(q, sigma)
	hasSig := sigErr == nil

	var out []CostEstimate
	for _, style := range []Style{Lazy, Eager, Hybrid, SafeMystiQ, OBDD, DTree, MonteCarlo} {
		ce := CostEstimate{Style: style}
		switch style {
		case Lazy, Eager, Hybrid:
			if !hasSig {
				ce.Reason = "no hierarchical signature (would take the OBDD→dtree→MC fallback ladder)"
				out = append(out, ce)
				continue
			}
			ce.Applicable, ce.Candidate = true, true
		case SafeMystiQ:
			if !hasSig {
				ce.Reason = "no hierarchical signature"
				out = append(out, ce)
				continue
			}
			ce.Applicable = true
			ce.Reason = "baseline with runtime-failure modes; never auto-dispatched"
		case OBDD, DTree:
			ce.Applicable, ce.Candidate = true, true
		case MonteCarlo:
			ce.Applicable = true
			switch {
			case spec.RequireExact:
				ce.Reason = "approximate; excluded under RequireExact"
			case hasSig:
				ce.Reason = "approximate; exact styles are applicable"
			default:
				ce.Candidate = true
			}
		}
		styleSpec := spec
		styleSpec.Style = style
		styleSpec.RequireExact = false
		b, err := buildLogical(c, q, sigma, styleSpec)
		if err != nil {
			ce.Applicable, ce.Candidate = false, false
			ce.Reason = err.Error()
			out = append(out, ce)
			continue
		}
		cost, tuples, err := costPlan(c, q, styleSpec, b)
		if err != nil {
			return nil, err
		}
		ce.Cost, ce.Tuples = cost, tuples
		out = append(out, ce)
	}
	return out, nil
}

// ChooseStyle is the Auto planner's decision procedure: estimate every
// style's cost and return the cheapest candidate. On queries without a
// hierarchical signature the candidates honor the fallback ladder (OBDD
// and d-tree always, Monte Carlo only without RequireExact) — Auto never
// dispatches
// an approximate style when an exact one applies, and never Monte Carlo
// under RequireExact.
func ChooseStyle(c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (Style, []CostEstimate, error) {
	costs, err := EstimateCosts(c, q, sigma, spec)
	if err != nil {
		return 0, nil, err
	}
	best := -1
	for i, ce := range costs {
		if !ce.Candidate {
			continue
		}
		if best < 0 || ce.Cost < costs[best].Cost {
			best = i
		}
	}
	if best < 0 {
		return 0, costs, fmt.Errorf("plan: no applicable style for %s", q.Name)
	}
	return costs[best].Style, costs, nil
}

// chosenCost returns the estimated cost of the chosen style.
func chosenCost(costs []CostEstimate, chosen Style) float64 {
	for _, ce := range costs {
		if ce.Style == chosen {
			return ce.Cost
		}
	}
	return 0
}

// FormatCosts renders the per-style cost table of an Auto decision, sorted
// by the enumeration order, for EXPLAIN output and the bench tools.
func FormatCosts(costs []CostEstimate, chosen Style) string {
	var b []byte
	b = append(b, fmt.Sprintf("%-8s %-12s %-14s %s\n", "style", "est. cost", "est. tuples", "note")...)
	for _, ce := range costs {
		note := ce.Reason
		if ce.Style == chosen {
			if note != "" {
				note = "chosen; " + note
			} else {
				note = "chosen"
			}
		}
		cost := "-"
		tuples := "-"
		if ce.Applicable {
			cost = fmt.Sprintf("%.3g", ce.Cost)
			tuples = fmt.Sprintf("%.3g", ce.Tuples)
		}
		b = append(b, fmt.Sprintf("%-8s %-12s %-14s %s\n", ce.Style, cost, tuples, note)...)
	}
	return string(b)
}
