package plan

import (
	"fmt"
	"strings"

	"repro/internal/fd"
	"repro/internal/query"
)

// Explain renders the logical plan IR a style would execute for the query —
// without running it — and, for the Auto style, the cost-based decision:
// the chosen style plus the per-style cost table derived from the catalog's
// ANALYZE statistics. The output is deterministic for a fixed catalog (no
// timings, no pointers), which the golden-file tests pin.
func Explain(c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	var costs []CostEstimate
	chosen := spec.Style
	if spec.Style == Auto {
		var err error
		chosen, costs, err = ChooseStyle(c, q, sigma, spec)
		if err != nil {
			return "", err
		}
		spec.Style = chosen
	}
	b, err := buildLogical(c, q, sigma, spec)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", q)
	if costs != nil {
		fmt.Fprintf(&sb, "auto: chose %s by estimated cost\n", chosen)
	}
	sb.WriteString(b.lp.String())
	if costs != nil {
		sb.WriteString("\n\ncost-based choice (catalog analyzed):\n")
		sb.WriteString(FormatCosts(costs, chosen))
	}
	return strings.TrimRight(sb.String(), "\n"), nil
}
