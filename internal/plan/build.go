package plan

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/table"
)

// exec carries the cross-cutting execution state of one plan run: the
// cancellation context, the shared worker pool, and the execution trace
// being collected (nil when tracing is off). A serial exec (one-worker
// pool, background context) reproduces the classic single-threaded executor
// exactly.
type exec struct {
	ctx  context.Context
	pool *pool.Pool
	tr   *obs.Trace
	// mem is the run's memory governor (nil = ungoverned); sortBudget and
	// tmpDir configure the grace-mode sorts of governed hash joins.
	mem        *fault.Governor
	sortBudget int
	tmpDir     string
}

// span opens a top-level trace span, or returns nil (a no-op span) when
// tracing is off.
func (ex exec) span(name string) *obs.Span {
	if ex.tr == nil {
		return nil
	}
	return ex.tr.Root.Child(name)
}

// serialExec is the executor used by entry points that predate the parallel
// layer (Answer, tests).
func serialExec() exec {
	return exec{ctx: context.Background(), pool: pool.New(1)}
}

// parallel reports whether this run should take the partitioned paths.
func (ex exec) parallel() bool { return ex.pool.Parallel() }

// colStats returns the base-column statistics behind one occurrence
// attribute, or nil when the catalog has not been analyzed (the estimators
// then fall back to stats' default selectivity constants, the planner's
// historic 0.02/0.30). Occurrence attributes positionally rename the base
// table's data columns, so the lookup goes through the position.
func colStats(c *Catalog, ref query.RelRef, attr string) *stats.ColumnStats {
	ts := c.TableStats(ref.Base)
	if ts == nil {
		return nil
	}
	base, ok := c.tables[ref.Base]
	if !ok {
		return nil
	}
	dataIdx := base.Rel.Schema.DataIndexes()
	for i, a := range ref.Attrs {
		if a == attr && i < len(dataIdx) {
			return ts.Cols[base.Rel.Schema.Cols[dataIdx[i]].Name]
		}
	}
	return nil
}

// selSelectivity estimates the fraction of ref's rows satisfying one
// selection, histogram-based when the catalog is analyzed.
func selSelectivity(c *Catalog, ref query.RelRef, s query.Selection) float64 {
	cs := colStats(c, ref, s.Attr)
	if s.Op == engine.OpEq {
		return cs.EqSelectivity(s.Val)
	}
	return cs.RangeSelectivity(s.Op.String(), s.Val)
}

// estimate predicts the post-selection cardinality of a relation occurrence.
func estimate(c *Catalog, q *query.Query, ref query.RelRef) float64 {
	est := float64(c.Rows(ref.Base))
	for _, s := range q.Sels {
		if s.Rel != ref.Name {
			continue
		}
		est *= selSelectivity(c, ref, s)
	}
	if est < 1 {
		est = 1
	}
	return est
}

// LazyOrder picks a greedy join order: start from the smallest estimated
// relation and repeatedly join the smallest relation connected to the
// current set (falling back to the smallest remaining one for disconnected
// queries). This is the "better join order" of the paper's lazy plan
// (Fig. 7c): the selective Cust is joined before the large Item.
func LazyOrder(c *Catalog, q *query.Query) []query.RelRef {
	remaining := append([]query.RelRef(nil), q.Rels...)
	var out []query.RelRef
	attrs := make(map[string]bool)
	for len(remaining) > 0 {
		best := -1
		bestConnected := false
		var bestEst float64
		for i, r := range remaining {
			connected := len(out) == 0
			for _, a := range r.Attrs {
				if attrs[a] {
					connected = true
					break
				}
			}
			est := estimate(c, q, r)
			if best == -1 || (connected && !bestConnected) ||
				(connected == bestConnected && est < bestEst) {
				best, bestConnected, bestEst = i, connected, est
			}
		}
		r := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		out = append(out, r)
		for _, a := range r.Attrs {
			attrs[a] = true
		}
	}
	return out
}

// HierarchicalOrder derives the join order imposed by the query tree
// (deepest subtrees first), the order safe plans and the paper's eager
// plans use — e.g. Ord ⋈ Item before Cust for the Introduction's query
// (Fig. 2, Fig. 7a).
func HierarchicalOrder(q *query.Query, t *query.Tree) []query.RelRef {
	var names []string
	var walk func(n *query.Tree)
	walk = func(n *query.Tree) {
		if n.IsLeaf() {
			names = append(names, n.Leaf.Name)
			return
		}
		// Deepest child first.
		kids := append([]*query.Tree(nil), n.Children...)
		for i := 0; i < len(kids); i++ {
			deepest := i
			for j := i + 1; j < len(kids); j++ {
				if depth(kids[j]) > depth(kids[deepest]) {
					deepest = j
				}
			}
			kids[i], kids[deepest] = kids[deepest], kids[i]
			walk(kids[i])
		}
	}
	walk(t)
	out := make([]query.RelRef, 0, len(names))
	for _, n := range names {
		r, ok := q.RelByName(n)
		if !ok {
			continue
		}
		out = append(out, r)
	}
	return out
}

func depth(t *query.Tree) int {
	if t.IsLeaf() {
		return 1
	}
	d := 0
	for _, c := range t.Children {
		if cd := depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// leafWrap builds the per-tuple pipeline of one relation occurrence —
// rename → filter → project — over an arbitrary operator with the base
// table's schema. The projection keeps the occurrence's needed attributes
// plus its V/P columns; selections are applied before attributes are
// dropped. Every call builds a fresh pipeline, so instances can run
// concurrently over disjoint row chunks.
func leafWrap(c *Catalog, q *query.Query, ref query.RelRef, in engine.Operator) (engine.Operator, error) {
	op, err := c.Rename(ref, in)
	if err != nil {
		return nil, err
	}
	var preds engine.And
	s := op.Schema()
	for _, sel := range q.Sels {
		if sel.Rel != ref.Name {
			continue
		}
		idx := s.ColIndex(sel.Attr)
		if idx < 0 {
			return nil, fmt.Errorf("plan: selection attribute %s missing from %s", sel.Attr, ref.Name)
		}
		preds = append(preds, engine.Cmp{L: engine.ColRef{Idx: idx, Name: sel.Attr}, Op: sel.Op, R: engine.Const{V: sel.Val}})
	}
	if len(preds) > 0 {
		op = engine.NewFilter(op, preds)
	}
	// Project to the attributes the leaf still needs: every attribute it
	// shares with some other relation (to join with the intermediate built
	// so far, or with relations joined later) plus head attributes —
	// logical.LeafKeep, §V.B's projection rule.
	names := append(logical.LeafKeep(q, ref), "V("+ref.Name+")", "P("+ref.Name+")")
	return engine.NewColumnProject(op, names)
}

// leafPipeline builds the operator reading one relation occurrence. Under a
// multi-worker pool the scan is partitioned: the base relation's rows are
// split into chunks, each chunk runs its own rename/filter/project pipeline
// on a worker, and the chunk outputs are concatenated in row order — the
// same rows in the same order as the serial scan. Disk-resident tables
// (Catalog.BindDisk) scan their heap file through the buffer pool instead;
// the scan is not chunk-partitioned (pages arrive sequentially), so the
// pipeline streams into the enclosing collector, where the columnar tier
// decodes pages straight into column vectors unless rowExec forces rows.
func leafPipeline(ex exec, c *Catalog, q *query.Query, ref query.RelRef, rowExec bool) (engine.Operator, error) {
	base, err := c.Base(ref)
	if err != nil {
		return nil, err
	}
	wrap := func(in engine.Operator) (engine.Operator, error) { return leafWrap(c, q, ref, in) }
	if db := c.Disk(ref.Base); db != nil {
		return wrap(engine.NewHeapScan(db.File, db.Pool, base.Rel.Schema))
	}
	if ex.parallel() && base.Rel.Len() >= engine.ParallelMinRows {
		collect := engine.CollectChunksVec
		if rowExec {
			collect = engine.CollectChunks
		}
		rel, err := collect(ex.ctx, ex.pool, base.Rel, wrap)
		if err != nil {
			return nil, err
		}
		return engine.NewMemScan(rel), nil
	}
	return wrap(engine.NewMemScan(base.Rel))
}

// joinPipeline equi-joins two operators on their shared data attributes and
// projects the result to the needed attributes plus all V/P columns. Under a
// multi-worker pool the join is hash-partitioned and the partitions joined
// in parallel.
func joinPipeline(ex exec, q *query.Query, left, right engine.Operator, joined map[string]bool) (engine.Operator, error) {
	ls, rs := left.Schema(), right.Schema()
	var lk, rk []int
	for i, lc := range ls.Cols {
		if lc.Role != table.RoleData {
			continue
		}
		j := rs.ColIndex(lc.Name)
		if j >= 0 && rs.Cols[j].Role == table.RoleData {
			lk = append(lk, i)
			rk = append(rk, j)
		}
	}
	var j engine.Operator
	var err error
	switch {
	case ex.mem != nil:
		// Governed runs take the serial grace-capable hash join even under
		// a parallel pool: the partitioned join's per-partition build sides
		// are unaccounted, and the grace fallback must own the whole build.
		hj, herr := engine.NewHashJoin(left, right, lk, rk)
		if herr != nil {
			return nil, herr
		}
		hj.Mem, hj.SortBudget, hj.TmpDir = ex.mem, ex.sortBudget, ex.tmpDir
		j = hj
	case ex.parallel():
		j, err = engine.NewPartitionedHashJoin(left, right, lk, rk, ex.pool, ex.ctx)
	default:
		j, err = engine.NewHashJoin(left, right, lk, rk)
	}
	if err != nil {
		return nil, err
	}
	// Project: needed data attrs (first occurrence wins, removing the
	// duplicated join columns) + every V/P column.
	need := logical.JoinKeep(q, joined)
	js := j.Schema()
	var names []string
	seen := make(map[string]bool)
	for _, c := range js.Cols {
		switch c.Role {
		case table.RoleData:
			if need[c.Name] && !seen[c.Name] {
				names = append(names, c.Name)
				seen[c.Name] = true
			}
		default:
			names = append(names, c.Name)
		}
	}
	return engine.NewColumnProject(j, names)
}

// describeOrder renders a join order for plan explanations.
func describeOrder(refs []query.RelRef) string {
	names := make([]string, len(refs))
	for i, r := range refs {
		names[i] = r.Name
	}
	return strings.Join(names, " ⋈ ")
}
