package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/table"
)

// TestAutoBitIdenticalToChosen: an Auto run must agree bit for bit with a
// direct run of the style it reports choosing — on a hierarchical query and
// on one without a signature (lineage tiers).
func TestAutoBitIdenticalToChosen(t *testing.T) {
	for _, tc := range []struct {
		name  string
		setup func() (*Catalog, *query.Query, *fd.Set)
	}{
		{"fig1", func() (*Catalog, *query.Query, *fd.Set) {
			c, _ := fig1Catalog()
			return c, introQ(), tpchFDs()
		}},
		{"hard", func() (*Catalog, *query.Query, *fd.Set) {
			return hardDB(rand.New(rand.NewSource(2))), hardQuery(), fd.NewSet()
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cat, q, sigma := tc.setup()
			auto, err := Run(cat, q.Clone(), sigma, Spec{Style: Auto, MC: prob.MCOptions{Seed: 1}})
			if err != nil {
				t.Fatal(err)
			}
			if auto.Stats.ChosenStyle == "" || auto.Stats.EstimatedCost <= 0 {
				t.Fatalf("auto stats not populated: chosen=%q cost=%g", auto.Stats.ChosenStyle, auto.Stats.EstimatedCost)
			}
			chosen, err := ParseStyle(auto.Stats.ChosenStyle)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := Run(cat, q.Clone(), sigma, Spec{Style: chosen, MC: prob.MCOptions{Seed: 1}})
			if err != nil {
				t.Fatal(err)
			}
			if err := mustBitIdentical(auto.Rows, direct.Rows); err != nil {
				t.Fatalf("auto vs direct %s: %v", chosen, err)
			}
		})
	}
}

func mustBitIdentical(a, b *table.Relation) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("row counts %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	return nil
}

// TestAutoNeverMCUnderRequireExact: with RequireExact, Monte Carlo is never
// a candidate — on hierarchical queries (where exact styles win anyway) and
// on queries without a signature (where Auto must fall to OBDD, whose
// RequireExact semantics forbid bound-mode results at runtime).
func TestAutoNeverMCUnderRequireExact(t *testing.T) {
	hard := hardDB(rand.New(rand.NewSource(3)))
	fig1, _ := fig1Catalog()
	for _, tc := range []struct {
		name  string
		cat   *Catalog
		q     *query.Query
		sigma *fd.Set
	}{
		{"hierarchical", fig1, introQ(), tpchFDs()},
		{"no-signature", hard, hardQuery(), fd.NewSet()},
	} {
		chosen, costs, err := ChooseStyle(tc.cat, tc.q, tc.sigma, Spec{Style: Auto, RequireExact: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if chosen == MonteCarlo {
			t.Fatalf("%s: Auto chose MC under RequireExact", tc.name)
		}
		for _, ce := range costs {
			if ce.Style == MonteCarlo && ce.Candidate {
				t.Fatalf("%s: MC is a candidate under RequireExact", tc.name)
			}
		}
	}
	// Without RequireExact, the no-signature query admits MC as a
	// candidate; MystiQ must never be one.
	_, costs, err := ChooseStyle(hard, hardQuery(), fd.NewSet(), Spec{Style: Auto})
	if err != nil {
		t.Fatal(err)
	}
	mcCandidate := false
	for _, ce := range costs {
		if ce.Style == MonteCarlo {
			mcCandidate = ce.Candidate
		}
		if ce.Style == SafeMystiQ && ce.Candidate {
			t.Fatal("MystiQ must never be an Auto candidate")
		}
	}
	if !mcCandidate {
		t.Fatal("MC should be a candidate on no-signature queries without RequireExact")
	}
}

// TestAutoFallbackLadder: on a query without a hierarchical signature, Auto
// chooses a lineage tier; with one, it never chooses an approximate style
// and every exact style is a costed candidate.
func TestAutoFallbackLadder(t *testing.T) {
	hard := hardDB(rand.New(rand.NewSource(4)))
	chosen, _, err := ChooseStyle(hard, hardQuery(), fd.NewSet(), Spec{Style: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if chosen != OBDD && chosen != DTree && chosen != MonteCarlo {
		t.Fatalf("no-signature query must dispatch a lineage tier, got %v", chosen)
	}
	cat, _ := fig1Catalog()
	chosen, costs, err := ChooseStyle(cat, introQ(), tpchFDs(), Spec{Style: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if chosen == MonteCarlo {
		t.Fatalf("hierarchical query must not dispatch an approximate style, got %v", chosen)
	}
	for _, ce := range costs {
		switch ce.Style {
		case Lazy, Eager, Hybrid, OBDD, DTree:
			if !ce.Candidate || ce.Cost <= 0 {
				t.Errorf("%v should be a costed candidate: %+v", ce.Style, ce)
			}
		}
	}
}

// TestEstimateUsesStats: once the catalog is analyzed, selectivity comes
// from the per-attribute statistics instead of the historic constants.
func TestEstimateUsesStats(t *testing.T) {
	c := NewCatalog()
	pt := table.NewProbTable("W", table.DataCol("k", table.KindInt))
	for i := 0; i < 100; i++ {
		pt.MustAddRow(prob.Var(i+1), 0.5, table.Int(int64(i%10)))
	}
	c.MustAdd(pt)
	q := &query.Query{
		Name: "eq",
		Head: []string{"k"},
		Rels: []query.RelRef{query.Rel("W", "k")},
		Sels: []query.Selection{{Rel: "W", Attr: "k", Op: engine.OpEq, Val: table.Int(3)}},
	}
	// Unanalyzed: default equality selectivity 0.02 → 100·0.02 = 2.
	if got := estimate(c, q, q.Rels[0]); got != 2 {
		t.Fatalf("default estimate = %g, want 2", got)
	}
	c.Analyze()
	// Analyzed: 10 distinct values → selectivity 1/10 → 10 rows.
	if got := estimate(c, q, q.Rels[0]); got != 10 {
		t.Fatalf("stats estimate = %g, want 10", got)
	}
}
