package plan

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/signature"
	"repro/internal/table"
)

// This file lowers the logical plan IR (internal/logical) to the physical
// engine and runs it — the single execution path shared by every plan
// style. Scan/select/project/join subtrees become pipelined engine
// operators (partition-parallel under a multi-worker pool); confidence
// placement points materialize their input and run the appropriate
// algorithm: eager sort+scan aggregation steps, the final sort+scan
// operator, OBDD compilation, d-tree decomposition, Monte Carlo
// estimation, or the OBDD → d-tree → Monte Carlo fallback ladder.

// lowerState carries one run's execution bookkeeping through the lowering.
type lowerState struct {
	ex   exec
	c    *Catalog
	q    *query.Query
	spec Spec

	// cur is the runtime running signature of a staged plan: every eager
	// aggregation replaces the operator it applied by its representative
	// table, exactly as §V.B prescribes.
	cur signature.Sig

	probTime        time.Duration
	scans           int
	applied         []string
	maxIntermediate int64

	// colExec records whether any materialized subtree ran fully columnar;
	// colBatches/rowBatches accumulate the per-operator batch counters of
	// traced runs (count() wrappers) for Stats attribution.
	colExec    bool
	colBatches int64
	rowBatches int64

	// flushes are deferred trace-attribute writers for Counted wrappers
	// threaded into the pipeline: counters are only final once the
	// pipeline has drained, so materialize runs them after CollectCtx.
	flushes []func()
}

func (st *lowerState) track(rel *table.Relation) {
	if n := int64(rel.Len()); n > st.maxIntermediate {
		st.maxIntermediate = n
	}
}

// count wraps op so the rows and batches drained from it land on sp once
// the enclosing materialize finishes. A nil span returns op untouched —
// the untraced path pays nothing.
func (st *lowerState) count(op engine.Operator, sp *obs.Span) engine.Operator {
	if sp == nil {
		return op
	}
	s := &engine.OpStats{}
	st.flushes = append(st.flushes, func() {
		sp.Int("rows_out", s.Rows)
		sp.LooseInt("batches", s.Batches)
		if s.ColBatches > 0 {
			sp.LooseInt("col_batches", s.ColBatches)
		}
		st.rowBatches += s.Batches
		st.colBatches += s.ColBatches
	})
	return engine.Counted(op, s)
}

// flush runs the trace-attribute writers appended since mark — the
// wrappers belonging to the subtree a materialize call just drained.
// Writers below the mark belong to enclosing, still-undrained pipelines
// (a sibling of a nested eager placement point) and must wait for theirs.
func (st *lowerState) flush(mark int) {
	for _, f := range st.flushes[mark:] {
		f()
	}
	st.flushes = st.flushes[:mark]
}

// scanRefUnder returns the relation occurrence scanned at the bottom of a
// leaf pipeline (Project → [Select] → Scan).
func scanRefUnder(n logical.Node) (query.RelRef, bool) {
	for {
		switch x := n.(type) {
		case *logical.Scan:
			return x.Ref, true
		case *logical.Select:
			n = x.Input
		case *logical.Project:
			n = x.Input
		default:
			return query.RelRef{}, false
		}
	}
}

// joinedUnder collects the occurrence names scanned in a subtree — the
// "joined set" driving the post-join projection rule.
func joinedUnder(n logical.Node) map[string]bool {
	joined := make(map[string]bool)
	var walk func(logical.Node)
	walk = func(n logical.Node) {
		if s, ok := n.(*logical.Scan); ok {
			joined[s.Ref.Name] = true
		}
		for _, in := range n.Inputs() {
			walk(in)
		}
	}
	walk(n)
	return joined
}

// operator lowers a pipelined subtree to one engine operator, opening trace
// spans under sp (nil when tracing is off — every span call then no-ops).
// Confidence placement points inside the subtree materialize and re-enter
// the pipeline as in-memory scans.
func (st *lowerState) operator(n logical.Node, sp *obs.Span) (engine.Operator, error) {
	switch x := n.(type) {
	case *logical.Project:
		if j, ok := x.Input.(*logical.Join); ok {
			jsp := sp.Child("join")
			if jsp != nil {
				switch {
				case st.ex.mem != nil:
					jsp.LooseStr("phys", "hash(build=right, governed)")
				case st.ex.parallel():
					jsp.LooseStr("phys", "partitioned-hash")
				default:
					jsp.LooseStr("phys", "hash(build=right)")
				}
			}
			left, err := st.operator(j.Left, jsp)
			if err != nil {
				return nil, err
			}
			right, err := st.operator(j.Right, jsp)
			if err != nil {
				return nil, err
			}
			op, err := joinPipeline(st.ex, st.q, left, right, joinedUnder(x))
			if err != nil {
				return nil, err
			}
			return st.count(op, jsp), nil
		}
		ref, ok := scanRefUnder(x)
		if !ok {
			return nil, fmt.Errorf("plan: unexpected logical shape under %s", x.Label())
		}
		ssp := sp.Child("scan " + ref.Name)
		ssp.Int("base_rows", int64(st.c.Rows(ref.Base)))
		op, err := leafPipeline(st.ex, st.c, st.q, ref, st.spec.RowExec)
		if err != nil {
			return nil, err
		}
		return st.count(op, ssp), nil
	case *logical.Conf:
		rel, err := st.materializeConf(x, sp)
		if err != nil {
			return nil, err
		}
		return engine.NewMemScan(rel), nil
	default:
		return nil, fmt.Errorf("plan: cannot lower logical node %T", n)
	}
}

// materialize runs a subtree to a materialized relation.
func (st *lowerState) materialize(n logical.Node, sp *obs.Span) (*table.Relation, error) {
	if cf, ok := n.(*logical.Conf); ok && !cf.Final {
		return st.materializeConf(cf, sp)
	}
	mark := len(st.flushes)
	op, err := st.operator(n, sp)
	if err != nil {
		return nil, err
	}
	var rel *table.Relation
	if st.spec.RowExec {
		rel, err = engine.CollectCtx(st.ex.ctx, op)
	} else {
		// The columnar plug-in point: fully lowerable pipelines run as
		// column batches, mixed ones vectorize their columnar regions, and
		// the rest take the row path — identical tuples in every case.
		var columnar bool
		rel, columnar, err = engine.CollectCtxVec(st.ex.ctx, op)
		st.colExec = st.colExec || columnar
	}
	if err != nil {
		return nil, err
	}
	st.flush(mark)
	st.track(rel)
	return rel, nil
}

// materializeConf materializes an eager placement point: the input
// intermediate, with each scheduled probability-computation operator
// applied as sort+scan passes and the running signature updated with the
// operator's representative.
func (st *lowerState) materializeConf(cf *logical.Conf, sp *obs.Span) (*table.Relation, error) {
	rel, err := st.materialize(cf.Input, sp)
	if err != nil {
		return nil, err
	}
	for _, op := range cf.Ops {
		pt0 := statsNow()
		next, rep, n, err := conf.Aggregate(rel, op, st.spec.Conf)
		if err != nil {
			return nil, err
		}
		d := statsSince(pt0)
		st.probTime += d
		st.scans += n
		csp := sp.Child("conf[" + op.String() + "]")
		csp.Int("rows_in", int64(rel.Len())).Int("rows_out", int64(next.Len())).Int("scans", int64(n))
		csp.SetDur(d)
		rel = next
		st.cur = Replace(st.cur, op, signature.Table(rep))
		st.applied = append(st.applied, "["+op.String()+"]")
	}
	return rel, nil
}

// runLogical executes a built logical plan.
func runLogical(ex exec, c *Catalog, q *query.Query, b *built, spec Spec) (*Result, error) {
	if b.lp.Mode == logical.ModeProb {
		return lowerSafe(ex, c, q, b, spec)
	}
	root, ok := b.lp.Root.(*logical.Conf)
	if !ok || !root.Final {
		return nil, fmt.Errorf("plan: logical plan for %s lacks a final confidence point", q.Name)
	}
	st := &lowerState{ex: ex, c: c, q: q, spec: spec, cur: b.sig}
	answerSp := ex.span("answer: " + describeOrder(b.order))
	t0 := statsNow()
	answer, err := st.materialize(root.Input, answerSp)
	if err != nil {
		return nil, err
	}
	tupleTime := statsSince(t0) - st.probTime
	answerSp.Int("rows", int64(answer.Len()))
	if st.colExec {
		answerSp.LooseStr("exec", "columnar")
	} else {
		answerSp.LooseStr("exec", "row")
	}
	answerSp.SetDur(tupleTime)

	var res *Result
	switch root.Alg {
	case logical.AlgSortScan:
		res, err = st.finishSortScan(b, answer, tupleTime)
	case logical.AlgOBDD:
		res, err = finishOBDD(ex, q, b, spec, answer, tupleTime)
	case logical.AlgDTree:
		res, err = finishDTree(ex, q, b, spec, answer, tupleTime)
	case logical.AlgMC:
		res, err = finishMonteCarlo(ex, ex.span("conf[mc]"), q, spec, "", b.order, answer, nil, tupleTime, 0)
	case logical.AlgLadder:
		res, err = finishFallbackChain(ex, q, b, spec, answer, tupleTime)
	default:
		return nil, fmt.Errorf("plan: unknown confidence algorithm %v", root.Alg)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.ColBatches = st.colBatches
	res.Stats.RowBatches = st.rowBatches
	return res, nil
}

// finishSortScan runs the top sort+scan confidence operator over the
// materialized intermediate: the full operator when aggregation remains,
// the bare-table extraction when the eager stages already reduced the
// signature to a single representative.
func (st *lowerState) finishSortScan(b *built, rel *table.Relation, tupleTime time.Duration) (*Result, error) {
	sp := st.ex.span("conf[sort+scan]")
	pt0 := statsNow()
	var out *table.Relation
	var err error
	if bare, ok := st.cur.(signature.Table); ok {
		out, err = conf.FinalizeBare(rel, string(bare))
		if err != nil {
			return nil, err
		}
		sp.Str("final", "bare-table extraction")
	} else {
		var cstats *conf.Stats
		out, cstats, err = conf.ComputeStats(rel, st.cur, st.spec.Conf)
		if err != nil {
			return nil, err
		}
		st.scans += cstats.Scans
		sp.Int("scans", int64(cstats.Scans)).Int("sorts", int64(cstats.Sorts))
		sp.LooseInt("spilled_runs", int64(cstats.SpilledRuns))
	}
	d := statsSince(pt0)
	sp.Str("sig", st.cur.String()).Int("rows_in", int64(rel.Len())).Int("distinct", int64(out.Len()))
	sp.SetDur(d)
	st.probTime += d
	out, err = normalizeAnswer(out, st.q)
	if err != nil {
		return nil, err
	}
	planLine := fmt.Sprintf("lazy: %s; conf[%s] on top", describeOrder(b.order), st.cur)
	if b.eagerStages > 0 {
		planLine = fmt.Sprintf("%s: %s; ops %v; top conf[%s]", b.lp.Style, describeOrder(b.order), st.applied, st.cur)
	}
	return &Result{
		Rows: out,
		Stats: Stats{
			Plan:           planLine,
			Signature:      b.sig.String(),
			TupleTime:      tupleTime,
			ProbTime:       st.probTime,
			AnswerTuples:   st.maxIntermediate,
			DistinctTuples: int64(out.Len()),
			Scans:          st.scans,
		},
	}, nil
}

// finishOBDD is the OBDD style's confidence tier over the materialized
// answer: compile each answer's lineage into a reduced OBDD, exact under
// the node budget, certified bounds beyond it.
func finishOBDD(ex exec, q *query.Query, b *built, spec Spec, answer *table.Relation, tupleTime time.Duration) (*Result, error) {
	t1 := statsNow()
	out, os, err := conf.OBDD(ex.ctx, ex.pool, answer, b.sig, spec.OBDD, spec.RequireExact)
	if err != nil {
		if errors.Is(err, conf.ErrOBDDBudget) {
			return nil, fmt.Errorf("plan: %s: %w (RequireExact forbids certified bounds)", q.Name, err)
		}
		return nil, err
	}
	probTime := statsSince(t1)
	out, err = normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	return obddResult(ex.span("conf[obdd]"), q, "", b.orderNote, b.order, answer, out, os, tupleTime, probTime), nil
}

// finishFallbackChain is the exact styles' path on queries without a
// hierarchical signature: compile every answer's lineage into an OBDD under
// the node budget — the result is still exact, just computed by a different
// engine — then, if some diagram blows the budget, try order-free d-tree
// decomposition (still exact within its step budget), and only when that
// budget is exceeded too, estimate with the Monte Carlo tier. The lineage
// is collected once and shared by every rung.
func finishFallbackChain(ex exec, q *query.Query, b *built, spec Spec, answer *table.Relation, tupleTime time.Duration) (*Result, error) {
	lsp := ex.span("conf[ladder]")
	t1 := statsNow()
	l, err := conf.CollectLineage(answer)
	if err != nil {
		return nil, err
	}
	lsp.Int("answers", int64(len(l.Keys))).Int("clauses", l.Clauses).Int("vars", l.Vars).Int("dedup_rows", l.DupRows)
	out, os, err := conf.OBDDLineage(ex.ctx, ex.pool, l, nil, spec.OBDD, true)
	if err == nil {
		probTime := statsSince(t1)
		out, err = normalizeAnswer(out, q)
		if err != nil {
			return nil, err
		}
		note := fmt.Sprintf(" (fallback from %s: no hierarchical signature, lineage compiled exactly)", spec.Style)
		return obddResult(lsp.Child("obdd"), q, note, "interleaved-occurrence order", b.order, answer, out, os, tupleTime, probTime), nil
	}
	if !errors.Is(err, conf.ErrOBDDBudget) {
		return nil, err
	}
	lsp.Child("obdd").Str("outcome", "node budget exceeded")
	dout, ds, err := conf.DTreeLineage(ex.ctx, ex.pool, l, spec.DTree, true)
	if err == nil {
		probTime := statsSince(t1)
		dout, err = normalizeAnswer(dout, q)
		if err != nil {
			return nil, err
		}
		note := fmt.Sprintf(" (fallback from %s: no hierarchical signature, OBDD budget exceeded, lineage decomposed exactly)", spec.Style)
		return dtreeResult(lsp.Child("dtree"), q, note, b.order, answer, dout, ds, tupleTime, probTime), nil
	}
	if !errors.Is(err, conf.ErrDTreeBudget) {
		return nil, err
	}
	lsp.Child("dtree").Str("outcome", "step budget exceeded")
	note := fmt.Sprintf(" (fallback from %s: no hierarchical signature, OBDD and d-tree budgets exceeded)", spec.Style)
	return finishMonteCarlo(ex, lsp.Child("mc"), q, spec, note, b.order, answer, l, tupleTime, statsSince(t1))
}
