package plan

import (
	"fmt"
	"time"

	"repro/internal/conf"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// This file assembles the results of the OBDD confidence tier (lower.go):
// answer tuples are computed exactly like the lazy plan, then each distinct
// answer's lineage DNF is compiled into a reduced OBDD (internal/obdd) and
// evaluated — exact when the diagram fits the node budget, certified
// [lo, hi] bounds when it does not. The tier is both a style in its own
// right (Spec.Style = OBDD) and the second rung of the exact styles'
// fallback ladder on queries without a hierarchical signature: hierarchical
// sort+scan → OBDD → d-tree → Monte Carlo.

// obddResult assembles the Result of an OBDD run, annotating the tier's
// trace span (nil when tracing is off) with compilation detail.
func obddResult(sp *obs.Span, q *query.Query, note, orderNote string, order []query.RelRef, answer, out *table.Relation, os *conf.OBDDStats, tupleTime, probTime time.Duration) *Result {
	bounded := ""
	if os.Bounded > 0 {
		bounded = fmt.Sprintf(", %d bounded to width ≤ %.3g", os.Bounded, os.MaxWidth)
	}
	sp.Int("answers", os.OutputTuples).Int("clauses", os.Clauses).Int("vars", os.Vars).Int("dedup_rows", os.DupRows)
	sp.Int("nodes", os.Nodes).Int("memo_hits", os.MemoHits).Int("memo_misses", os.MemoMisses)
	sp.Int("exact", os.ExactAnswers).Int("bounded", os.Bounded)
	if os.Bounded > 0 {
		sp.Float("max_width", os.MaxWidth)
	}
	sp.LooseInt("hdr_recycled", os.HdrRecycled)
	sp.SetDur(probTime)
	stats := Stats{
		Plan: fmt.Sprintf("obdd%s: %s; compile lineage of %d answers (%d clauses, %d nodes, %d exact%s)",
			note, describeOrder(order), os.OutputTuples, os.Clauses, os.Nodes, os.ExactAnswers, bounded),
		Signature:      fmt.Sprintf("(OBDD over lineage; %s)", orderNote),
		TupleTime:      tupleTime,
		ProbTime:       probTime,
		AnswerTuples:   int64(answer.Len()),
		DistinctTuples: int64(out.Len()),
		Scans:          1, // the lineage-collection grouping pass
		OBDDNodes:      os.Nodes,
		MemoHits:       os.MemoHits,
		MemoMisses:     os.MemoMisses,
	}
	if os.Bounded > 0 {
		stats.Approximate = true
		stats.LowerBound = os.LowerBound
		stats.UpperBound = os.UpperBound
		stats.MaxWidth = os.MaxWidth
	}
	if os.Stopped > 0 {
		markDegraded(&stats, "deadline")
		sp.Int("deadline_stopped", os.Stopped)
	}
	return &Result{Rows: out, Stats: stats}
}
