package plan

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/conf"
	"repro/internal/fd"
	"repro/internal/query"
	"repro/internal/signature"
	"repro/internal/table"
)

// This file is the OBDD tier of the plan space: answer tuples are computed
// exactly like the lazy plan, then each distinct answer's lineage DNF is
// compiled into a reduced OBDD (internal/obdd) and evaluated — exact when
// the diagram fits the node budget, certified [lo, hi] bounds when it does
// not. It is both a style in its own right (Spec.Style = OBDD) and the
// middle rung of the exact styles' fallback chain on queries without a
// hierarchical signature: hierarchical sort+scan → OBDD-exact under budget
// → Monte Carlo.

// runOBDD executes the OBDD style. A hierarchical signature is not
// required, but when one exists it seeds the variable order (clauses
// visited root-table first), which keeps the diagrams of hierarchical
// lineage linear.
func runOBDD(ex exec, c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (*Result, error) {
	order := LazyOrder(c, q)
	t0 := time.Now()
	answer, err := answerPipeline(ex, c, q, order)
	if err != nil {
		return nil, err
	}
	tupleTime := time.Since(t0)

	var sig signature.Sig
	orderNote := "interleaved-occurrence order"
	if s, err := signature.Best(q, sigma); err == nil {
		sig = s
		orderNote = fmt.Sprintf("order from signature %s", s)
	}

	t1 := time.Now()
	out, os, err := conf.OBDD(ex.ctx, ex.pool, answer, sig, spec.OBDD, spec.RequireExact)
	if err != nil {
		if errors.Is(err, conf.ErrOBDDBudget) {
			return nil, fmt.Errorf("plan: %s: %w (RequireExact forbids certified bounds)", q.Name, err)
		}
		return nil, err
	}
	probTime := time.Since(t1)
	out, err = normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	return obddResult(q, "", orderNote, order, answer, out, os, tupleTime, probTime), nil
}

// runExactFallback is the fallback chain for exact styles on queries
// without a hierarchical signature: compile every answer's lineage into an
// OBDD under the node budget — the result is still exact, just computed by
// a different engine — and only if some diagram blows the budget, estimate
// with the Monte Carlo plan. The answer relation is materialized and its
// lineage collected once, shared by both attempts.
func runExactFallback(ex exec, c *Catalog, q *query.Query, spec Spec) (*Result, error) {
	order := LazyOrder(c, q)
	t0 := time.Now()
	answer, err := answerPipeline(ex, c, q, order)
	if err != nil {
		return nil, err
	}
	tupleTime := time.Since(t0)

	t1 := time.Now()
	l, err := conf.CollectLineage(answer)
	if err != nil {
		return nil, err
	}
	out, os, err := conf.OBDDLineage(ex.ctx, ex.pool, l, nil, spec.OBDD, true)
	if err != nil {
		if !errors.Is(err, conf.ErrOBDDBudget) {
			return nil, err
		}
		note := fmt.Sprintf(" (fallback from %s: no hierarchical signature, OBDD budget exceeded)", spec.Style)
		return finishMonteCarlo(ex, q, spec, note, order, answer, l, tupleTime, time.Since(t1))
	}
	probTime := time.Since(t1)
	out, err = normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	note := fmt.Sprintf(" (fallback from %s: no hierarchical signature, lineage compiled exactly)", spec.Style)
	return obddResult(q, note, "interleaved-occurrence order", order, answer, out, os, tupleTime, probTime), nil
}

// obddResult assembles the Result of an OBDD run.
func obddResult(q *query.Query, note, orderNote string, order []query.RelRef, answer, out *table.Relation, os *conf.OBDDStats, tupleTime, probTime time.Duration) *Result {
	bounded := ""
	if os.Bounded > 0 {
		bounded = fmt.Sprintf(", %d bounded to width ≤ %.3g", os.Bounded, os.MaxWidth)
	}
	stats := Stats{
		Plan: fmt.Sprintf("obdd%s: %s; compile lineage of %d answers (%d clauses, %d nodes, %d exact%s)",
			note, describeOrder(order), os.OutputTuples, os.Clauses, os.Nodes, os.ExactAnswers, bounded),
		Signature:      fmt.Sprintf("(OBDD over lineage; %s)", orderNote),
		TupleTime:      tupleTime,
		ProbTime:       probTime,
		AnswerTuples:   int64(answer.Len()),
		DistinctTuples: int64(out.Len()),
		OBDDNodes:      os.Nodes,
	}
	if os.Bounded > 0 {
		stats.Approximate = true
		stats.LowerBound = os.LowerBound
		stats.UpperBound = os.UpperBound
		stats.MaxWidth = os.MaxWidth
	}
	return &Result{Rows: out, Stats: stats}
}
