package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/signature"
	"repro/internal/table"
)

// fig1Catalog builds the Fig. 1 database: Cust (x1..x4), Ord (y1..y6),
// Item (z1..z6). Variable ids: x=1..4, y=11..16, z=21..26.
func fig1Catalog() (*Catalog, *prob.Assignment) {
	a := prob.NewAssignment()
	cat := NewCatalog()

	cust := table.NewProbTable("Cust", table.DataCol("ckey", table.KindInt), table.DataCol("cname", table.KindString))
	names := []string{"Joe", "Dan", "Li", "Mo"}
	for i := 0; i < 4; i++ {
		v := prob.Var(1 + i)
		p := 0.1 * float64(i+1)
		a.MustSet(v, p)
		cust.MustAddRow(v, p, table.Int(int64(i+1)), table.Str(names[i]))
	}
	cat.MustAdd(cust)

	ord := table.NewProbTable("Ord",
		table.DataCol("okey", table.KindInt), table.DataCol("ckey", table.KindInt), table.DataCol("odate", table.KindString))
	ordRows := []struct {
		okey, ckey int64
		odate      string
		p          float64
	}{
		{1, 1, "1995-01-10", 0.1}, {2, 1, "1996-01-09", 0.2}, {3, 2, "1994-11-11", 0.3},
		{4, 2, "1993-01-08", 0.4}, {5, 3, "1995-08-15", 0.5}, {6, 3, "1996-12-25", 0.6},
	}
	for i, r := range ordRows {
		v := prob.Var(11 + i)
		a.MustSet(v, r.p)
		ord.MustAddRow(v, r.p, table.Int(r.okey), table.Int(r.ckey), table.Str(r.odate))
	}
	cat.MustAdd(ord)

	item := table.NewProbTable("Item",
		table.DataCol("okey", table.KindInt), table.DataCol("discount", table.KindFloat), table.DataCol("ckey", table.KindInt))
	itemRows := []struct {
		okey int64
		disc float64
		ckey int64
		p    float64
	}{
		{1, 0.1, 1, 0.1}, {1, 0.2, 1, 0.2}, {3, 0.4, 2, 0.3},
		{3, 0.1, 2, 0.4}, {4, 0.4, 2, 0.5}, {5, 0.1, 3, 0.6},
	}
	for i, r := range itemRows {
		v := prob.Var(21 + i)
		a.MustSet(v, r.p)
		item.MustAddRow(v, r.p, table.Int(r.okey), table.Float(r.disc), table.Int(r.ckey))
	}
	cat.MustAdd(item)
	return cat, a
}

func introQ() *query.Query {
	return &query.Query{
		Name: "Q",
		Head: []string{"odate"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname"),
			query.Rel("Ord", "okey", "ckey", "odate"),
			query.Rel("Item", "okey", "discount", "ckey"),
		},
		Sels: []query.Selection{
			{Rel: "Cust", Attr: "cname", Op: engine.OpEq, Val: table.Str("Joe")},
			{Rel: "Item", Attr: "discount", Op: engine.OpGt, Val: table.Float(0)},
		},
	}
}

func tpchFDs() *fd.Set {
	s := fd.NewSet()
	s.AddKey("Cust", []string{"ckey"}, []string{"ckey", "cname"})
	s.AddKey("Ord", []string{"okey"}, []string{"okey", "ckey", "odate"})
	return s
}

// TestFig1AllStyles: every plan style computes the paper's answer —
// (1995-01-10, 0.0028) — for the Introduction's query Q.
func TestFig1AllStyles(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spec  Spec
		sigma *fd.Set
	}{
		{"lazy-noFD", Spec{Style: Lazy}, fd.NewSet()},
		{"lazy-FD", Spec{Style: Lazy}, tpchFDs()},
		{"eager-noFD", Spec{Style: Eager}, fd.NewSet()},
		{"eager-FD", Spec{Style: Eager}, tpchFDs()},
		{"hybrid-noFD", Spec{Style: Hybrid}, fd.NewSet()},
		{"hybrid-FD", Spec{Style: Hybrid}, tpchFDs()},
		{"mystiq", Spec{Style: SafeMystiQ}, fd.NewSet()},
	} {
		cat, _ := fig1Catalog()
		res, err := Run(cat, introQ(), tc.sigma, tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Rows.Len() != 1 {
			t.Fatalf("%s: got %d rows, want 1: %v", tc.name, res.Rows.Len(), res.Rows.Rows)
		}
		row := res.Rows.Rows[0]
		odate := row[res.Rows.Schema.MustColIndex("odate")].S
		c := row[res.Rows.Schema.MustColIndex(conf.ConfCol)].F
		if odate != "1995-01-10" {
			t.Errorf("%s: odate = %s", tc.name, odate)
		}
		// MystiQ's formula carries the 1.001 fudge factor: allow slack.
		eps := 1e-9
		if tc.spec.Style == SafeMystiQ {
			eps = 0.01
		}
		if !prob.ApproxEqual(c, 0.0028, eps) {
			t.Errorf("%s: conf = %g, want 0.0028", tc.name, c)
		}
	}
}

// TestDropSelectionMultipleAnswers: removing the cname selection yields one
// distinct odate per customer with orders+items; all styles agree.
func TestDropSelectionMultipleAnswers(t *testing.T) {
	q := introQ()
	q.Sels = q.Sels[1:] // keep only discount > 0
	cat, _ := fig1Catalog()
	base, err := Run(cat, q, fd.NewSet(), Spec{Style: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	if base.Rows.Len() == 0 {
		t.Fatal("expected answers")
	}
	for _, spec := range []Spec{{Style: Eager}, {Style: Hybrid}, {Style: SafeMystiQ}, {Style: Lazy}} {
		cat2, _ := fig1Catalog()
		res, err := Run(cat2, q.Clone(), tpchFDs(), spec)
		if err != nil {
			t.Fatalf("%v: %v", spec.Style, err)
		}
		if err := sameAnswers(base.Rows, res.Rows, 0.01); err != nil {
			t.Errorf("%v disagrees with lazy: %v", spec.Style, err)
		}
	}
}

// sameAnswers compares two (head..., conf) relations modulo row order.
func sameAnswers(a, b *table.Relation, eps float64) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
	key := func(r table.Tuple) string {
		parts := make([]string, len(r)-1)
		for i := 0; i < len(r)-1; i++ {
			parts[i] = r[i].String()
		}
		return strings.Join(parts, "|")
	}
	am := make(map[string]float64)
	for _, r := range a.Rows {
		am[key(r)] = r[len(r)-1].F
	}
	for _, r := range b.Rows {
		want, ok := am[key(r)]
		if !ok {
			return fmt.Errorf("unexpected tuple %v", r)
		}
		if !prob.ApproxEqual(r[len(r)-1].F, want, eps) {
			return fmt.Errorf("tuple %v: conf %g vs %g", r, r[len(r)-1].F, want)
		}
	}
	return nil
}

// TestNonHierarchicalRejected: Q' without FDs has no tractable plan; with
// the TPC-H FDs it runs and matches Q's answer (§IV: "under this FD, the
// two queries Q and Q′ have the same answer").
func TestQPrimeNeedsFDs(t *testing.T) {
	qp := &query.Query{
		Name: "Q'",
		Head: []string{"odate"},
		Rels: []query.RelRef{
			query.Rel("Cust", "ckey", "cname"),
			query.Rel("Ord", "okey", "ckey", "odate"),
			query.Rel("Item", "okey", "discount"),
		},
		Sels: []query.Selection{
			{Rel: "Cust", Attr: "cname", Op: engine.OpEq, Val: table.Str("Joe")},
			{Rel: "Item", Attr: "discount", Op: engine.OpGt, Val: table.Float(0)},
		},
	}
	cat, _ := fig1Catalog()
	if _, err := Run(cat, qp, fd.NewSet(), Spec{Style: Lazy}); err == nil {
		t.Error("Q' without FDs must be rejected as intractable")
	}
	// The Item base table of Fig. 1 has a ckey column; Q' reads it without
	// the ckey attribute. Build an Item occurrence matching Q' by renaming:
	// the third data column becomes an unused attribute name.
	qp.Rels[2] = query.Rel("Item", "okey", "discount", "itemck")
	res, err := Run(cat, qp, tpchFDs(), Spec{Style: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows.Len() != 1 || !prob.ApproxEqual(res.Rows.Rows[0][1].F, 0.0028, 1e-9) {
		t.Errorf("Q' under FDs should match Q's answer: %v", res.Rows.Rows)
	}
}

// TestRestrictExV6 reproduces Example V.6's node p: restricting the query
// signature (Cust*(Ord*Item*)*)* to {Cust, Ord} splits the invalid
// propagation into [Cust*, Ord*].
func TestRestrictExV6(t *testing.T) {
	full, err := signature.Plain(introQ())
	if err != nil {
		t.Fatal(err)
	}
	ops := Restrict(full, full, map[string]bool{"Cust": true, "Ord": true})
	if len(ops) != 2 {
		t.Fatalf("ops = %v, want [Cust*, Ord*]", ops)
	}
	got := []string{ops[0].String(), ops[1].String()}
	if got[0] != "Cust*" || got[1] != "Ord*" {
		t.Errorf("ops = %v, want [Cust* Ord*]", got)
	}
	// Restricting to {Ord, Item} keeps the propagation: minimal cover of
	// {Ord, Item} is (Ord*Item*)*, fully inside the subplan.
	ops = Restrict(full, full, map[string]bool{"Ord": true, "Item": true})
	if len(ops) != 1 || strings.ReplaceAll(ops[0].String(), " ", "") != "(Ord*Item*)*" {
		t.Errorf("ops = %v, want [(Ord*Item*)*]", ops)
	}
}

func TestReplace(t *testing.T) {
	full, err := signature.Plain(introQ())
	if err != nil {
		t.Fatal(err)
	}
	ordStar := signature.NewStar(signature.Table("Ord"))
	got := Replace(full, ordStar, signature.Table("Ord"))
	if strings.ReplaceAll(got.String(), " ", "") != "(Cust*(OrdItem*)*)*" {
		t.Errorf("Replace = %s", got)
	}
	// Replacing a missing target is the identity.
	same := Replace(full, signature.Table("Nope"), signature.Table("X"))
	if !signature.Equal(same, full) {
		t.Errorf("Replace of absent target changed the signature: %s", same)
	}
}

func TestLazyOrderPrefersSelective(t *testing.T) {
	cat, _ := fig1Catalog()
	order := LazyOrder(cat, introQ())
	if order[0].Name != "Cust" {
		t.Errorf("lazy order should start with the selective Cust, got %v", describeOrder(order))
	}
}

func TestHierarchicalOrderDeepestFirst(t *testing.T) {
	q := introQ()
	tree, err := query.TreeFor(q)
	if err != nil {
		t.Fatal(err)
	}
	order := HierarchicalOrder(q, tree)
	if len(order) != 3 || order[0].Name != "Ord" || order[1].Name != "Item" || order[2].Name != "Cust" {
		t.Errorf("hierarchical order = %s, want Ord ⋈ Item ⋈ Cust", describeOrder(order))
	}
}

// TestScanRename: aliases rename data columns positionally.
func TestScanRename(t *testing.T) {
	cat, _ := fig1Catalog()
	op, err := cat.Scan(query.Alias("Cust2", "Cust", "c2key", "c2name"))
	if err != nil {
		t.Fatal(err)
	}
	s := op.Schema()
	if s.ColIndex("c2key") != 0 || s.VarIndex("Cust2") < 0 {
		t.Errorf("alias schema = %v", s)
	}
	if _, err := cat.Scan(query.Rel("Cust", "onlyone")); err == nil {
		t.Error("attribute count mismatch must be rejected")
	}
	if _, err := cat.Scan(query.Rel("Nope", "a")); err == nil {
		t.Error("unknown base table must be rejected")
	}
}

// worldOracle evaluates q on the catalog per possible world and returns the
// exact confidence of each distinct head tuple.
func worldOracle(t *testing.T, cat *Catalog, q *query.Query, a *prob.Assignment) map[string]float64 {
	t.Helper()
	worlds, err := prob.EnumerateWorlds(a)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, w := range worlds {
		for key := range evalInWorld(t, cat, q, w.Truth) {
			out[key] += w.P
		}
	}
	return out
}

// evalInWorld evaluates the deterministic query in one world.
func evalInWorld(t *testing.T, cat *Catalog, q *query.Query, truth map[prob.Var]bool) map[string]bool {
	t.Helper()
	// Materialize world-restricted relations keyed by occurrence name.
	rels := make(map[string][]map[string]table.Value)
	for _, ref := range q.Rels {
		base, ok := cat.Table(ref.Base)
		if !ok {
			t.Fatalf("missing base %s", ref.Base)
		}
		bs := base.Rel.Schema
		vi := bs.VarIndex(ref.Base)
		dataIdx := bs.DataIndexes()
		for _, row := range base.Rel.Rows {
			if !truth[row[vi].AsVar()] {
				continue
			}
			m := make(map[string]table.Value)
			for i, j := range dataIdx {
				m[ref.Attrs[i]] = row[j]
			}
			rels[ref.Name] = append(rels[ref.Name], m)
		}
	}
	// Apply selections.
	for _, sel := range q.Sels {
		var kept []map[string]table.Value
		for _, m := range rels[sel.Rel] {
			if sel.Op.Holds(table.Compare(m[sel.Attr], sel.Val)) {
				kept = append(kept, m)
			}
		}
		rels[sel.Rel] = kept
	}
	// Nested-loop join everything.
	acc := []map[string]table.Value{{}}
	for _, ref := range q.Rels {
		var next []map[string]table.Value
		for _, partial := range acc {
			for _, m := range rels[ref.Name] {
				merged := make(map[string]table.Value, len(partial)+len(m))
				ok := true
				for k, v := range partial {
					merged[k] = v
				}
				for k, v := range m {
					if old, exists := merged[k]; exists && !table.Equal(old, v) {
						ok = false
						break
					}
					merged[k] = v
				}
				if ok {
					next = append(next, merged)
				}
			}
		}
		acc = next
	}
	out := make(map[string]bool)
	for _, m := range acc {
		parts := make([]string, len(q.Head))
		for i, h := range q.Head {
			parts[i] = m[h].String()
		}
		out[strings.Join(parts, "|")] = true
	}
	return out
}

// TestQuickPlansMatchWorldOracle: on random small databases, every plan
// style agrees with the possible-world semantics for the intro query.
func TestQuickPlansMatchWorldOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cat, a := randomSmallCatalog(r)
		q := introQ()
		q.Sels = nil // keep all tuples: more interesting lineage
		oracle := worldOracle(t, cat, q, a)
		for _, spec := range []Spec{{Style: Lazy}, {Style: Eager}, {Style: Hybrid}} {
			res, err := Run(cat, q.Clone(), tpchFDs(), spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rows.Len() != len(oracle) {
				t.Logf("seed %d %v: %d rows vs oracle %d", seed, spec.Style, res.Rows.Len(), len(oracle))
				return false
			}
			for _, row := range res.Rows.Rows {
				key := row[0].String()
				if !prob.ApproxEqual(row[1].F, oracle[key], 1e-9) {
					t.Logf("seed %d %v: tuple %s conf %g oracle %g", seed, spec.Style, key, row[1].F, oracle[key])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomSmallCatalog builds a small random Cust/Ord/Item database with
// keyed Cust (ckey) and Ord (okey), ≤ 16 variables total.
func randomSmallCatalog(r *rand.Rand) (*Catalog, *prob.Assignment) {
	a := prob.NewAssignment()
	cat := NewCatalog()
	next := prob.Var(1)
	newVar := func() prob.Var {
		v := next
		next++
		a.MustSet(v, 0.1+0.8*r.Float64())
		return v
	}
	cust := table.NewProbTable("Cust", table.DataCol("ckey", table.KindInt), table.DataCol("cname", table.KindString))
	nCust := 1 + r.Intn(2)
	for i := 0; i < nCust; i++ {
		cust.MustAddRow(newVar(), a.P(next-1), table.Int(int64(i+1)), table.Str("n"))
	}
	cat.MustAdd(cust)
	ord := table.NewProbTable("Ord",
		table.DataCol("okey", table.KindInt), table.DataCol("ckey", table.KindInt), table.DataCol("odate", table.KindString))
	nOrd := 1 + r.Intn(3)
	for i := 0; i < nOrd; i++ {
		ord.MustAddRow(newVar(), a.P(next-1), table.Int(int64(i+1)), table.Int(int64(1+r.Intn(nCust))), table.Str("d"+string(rune('0'+r.Intn(2)))))
	}
	cat.MustAdd(ord)
	item := table.NewProbTable("Item",
		table.DataCol("okey", table.KindInt), table.DataCol("discount", table.KindFloat), table.DataCol("ckey", table.KindInt))
	nItem := r.Intn(5)
	for i := 0; i < nItem; i++ {
		ok := int64(1 + r.Intn(nOrd))
		// ckey must match the order's ckey for the join to make sense.
		var ck int64
		for _, row := range ord.Rel.Rows {
			if row[0].I == ok {
				ck = row[1].I
			}
		}
		item.MustAddRow(newVar(), a.P(next-1), table.Int(ok), table.Float(0.1), table.Int(ck))
	}
	cat.MustAdd(item)
	return cat, a
}
