// Package plan builds and runs query plans for confidence computation on
// tuple-independent probabilistic databases. It implements the plan space
// of paper §V.B — lazy plans (confidence computed once, at the top), eager
// plans (probability-computation operators pushed to every table and join,
// Fig. 7a), hybrid plans (operators pushed past selected joins, Fig. 7b) —
// plus the MystiQ-style safe plans of Dalvi/Suciu (Fig. 2) as the
// state-of-the-art baseline the paper compares against, and two plan
// styles beyond the paper: the OBDD plan (obdd.go), which compiles each
// answer's lineage into a reduced ordered BDD (exact under a node budget,
// certified [lo, hi] bounds beyond it), and the Monte Carlo plan (mc.go),
// which estimates confidences with an (ε, δ) sampler.
//
// On queries without a hierarchical signature — #P-hard in general — every
// exact style falls through the chain instead of rejecting: hierarchical
// sort+scan → OBDD-exact under budget → Monte Carlo. Spec.RequireExact
// restores the paper's strict rejection.
//
// All styles lower from one shared logical plan IR (internal/logical),
// built once by Prepare and executed by the lowering in lower.go (safe.go
// for MystiQ's probability-mode plans). On top sits the cost-based
// adaptive planner (cost.go): the Auto style analyzes the catalog
// (internal/stats, cached), prices every applicable style's IR, and
// dispatches the cheapest; Explain (explain.go) renders the IR and the
// decision without running the query.
package plan

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/engine"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/table"
)

// Catalog maps base table names to tuple-independent tables. It is the
// "database" side of the planner; the sprout facade wraps it. Alongside the
// tables it caches the ANALYZE statistics the cost-based planner consumes.
type Catalog struct {
	tables map[string]*table.ProbTable
	disk   map[string]*DiskBinding

	statsMu sync.Mutex
	stats   map[string]*stats.TableStats
}

// DiskBinding marks a registered table as disk-resident: scans read its heap
// file through the shared buffer pool instead of an in-memory relation (the
// table's Rel then carries only the schema). Rows caches the file's tuple
// count so cardinality estimation needs no I/O.
type DiskBinding struct {
	File *storage.HeapFile
	Pool *storage.BufferPool
	Rows int
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*table.ProbTable)} }

// Add registers a base table.
func (c *Catalog) Add(t *table.ProbTable) error {
	if _, dup := c.tables[t.Name]; dup {
		return fmt.Errorf("plan: table %s already registered", t.Name)
	}
	c.tables[t.Name] = t
	c.statsMu.Lock()
	c.stats = nil // new table invalidates the cached ANALYZE snapshot
	c.statsMu.Unlock()
	return nil
}

// Analyze computes (or returns the cached) catalog statistics: one ANALYZE
// pass per base table. Concurrent Analyze/TableStats calls are safe with
// each other (the cache is mutex-guarded); like every other catalog read,
// they must not race with Add — the catalog is frozen while an engine
// serves it, and Add (setup time) invalidates any cached snapshot.
func (c *Catalog) Analyze() map[string]*stats.TableStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.stats == nil {
		c.stats = make(map[string]*stats.TableStats, len(c.tables))
		for name, t := range c.tables {
			if db := c.disk[name]; db != nil {
				ts, err := stats.AnalyzeHeapFile(db.File.Path(), name, t.Rel.Schema, db.Pool)
				if err == nil {
					c.stats[name] = ts
				}
				continue
			}
			c.stats[name] = stats.Analyze(t)
		}
	}
	return c.stats
}

// TableStats returns the cached statistics of a base table, or nil when the
// catalog has not been analyzed (estimators then fall back to the default
// selectivity constants).
func (c *Catalog) TableStats(name string) *stats.TableStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.stats == nil {
		return nil
	}
	return c.stats[name]
}

// BindDisk marks a registered table as disk-resident. The table must already
// be registered (its Rel supplying the schema); binding invalidates any cached
// ANALYZE snapshot, like Add.
func (c *Catalog) BindDisk(name string, b *DiskBinding) error {
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("plan: cannot bind disk storage for unknown table %s", name)
	}
	if c.disk == nil {
		c.disk = make(map[string]*DiskBinding)
	}
	c.disk[name] = b
	c.statsMu.Lock()
	c.stats = nil
	c.statsMu.Unlock()
	return nil
}

// Disk returns the disk binding of a table, or nil for in-memory tables.
func (c *Catalog) Disk(name string) *DiskBinding {
	return c.disk[name]
}

// SetStats installs a precomputed ANALYZE snapshot — e.g. the sidecar
// statistics persisted next to heap files — so the first cost-based query
// skips the ANALYZE pass over the data.
func (c *Catalog) SetStats(s map[string]*stats.TableStats) {
	c.statsMu.Lock()
	c.stats = s
	c.statsMu.Unlock()
}

// MustAdd is Add for fixtures.
func (c *Catalog) MustAdd(t *table.ProbTable) {
	if err := c.Add(t); err != nil {
		panic(err)
	}
}

// Table returns a registered base table.
func (c *Catalog) Table(name string) (*table.ProbTable, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// Names lists the registered table names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// Rows returns the cardinality of a base table (0 for unknown tables). For
// disk-bound tables the count comes from the binding — the in-memory Rel is
// schema-only.
func (c *Catalog) Rows(name string) int {
	if db := c.disk[name]; db != nil {
		return db.Rows
	}
	if t, ok := c.tables[name]; ok {
		return t.Rel.Len()
	}
	return 0
}

// Base returns the stored table behind a relation occurrence.
func (c *Catalog) Base(ref query.RelRef) (*table.ProbTable, error) {
	base, ok := c.tables[ref.Base]
	if !ok {
		return nil, fmt.Errorf("plan: unknown base table %q", ref.Base)
	}
	return base, nil
}

// Rename wraps an operator over the base table's schema with the occurrence
// renaming: data columns positionally renamed to the occurrence's attribute
// names, V/P columns renamed to the occurrence name. Renaming is what makes
// the paper's alias trick for self-joins work (two copies of Nation with
// attributes n1key/n2key, §VI on TPC-H query 7). Splitting the rename from
// the scan lets the parallel execution layer run it over row chunks of the
// base relation.
func (c *Catalog) Rename(ref query.RelRef, in engine.Operator) (engine.Operator, error) {
	bs := in.Schema()
	dataIdx := bs.DataIndexes()
	if len(ref.Attrs) != len(dataIdx) {
		return nil, fmt.Errorf("plan: occurrence %s has %d attributes but base %s has %d data columns",
			ref.Name, len(ref.Attrs), ref.Base, len(dataIdx))
	}
	cols := make([]table.Column, 0, len(dataIdx)+2)
	exprs := make([]engine.Expr, 0, len(dataIdx)+2)
	for i, j := range dataIdx {
		cols = append(cols, table.DataCol(ref.Attrs[i], bs.Cols[j].Kind))
		exprs = append(exprs, engine.ColRef{Idx: j, Name: ref.Attrs[i]})
	}
	vi, pi := bs.VarIndex(ref.Base), bs.ProbIndex(ref.Base)
	cols = append(cols, table.VarCol(ref.Name), table.ProbCol(ref.Name))
	exprs = append(exprs, engine.ColRef{Idx: vi, Name: "V"}, engine.ColRef{Idx: pi, Name: "P"})
	return engine.NewProject(in, table.NewSchema(cols...), exprs)
}

// Scan builds an operator reading one relation occurrence: a scan of the
// base table under the occurrence renaming.
func (c *Catalog) Scan(ref query.RelRef) (engine.Operator, error) {
	base, err := c.Base(ref)
	if err != nil {
		return nil, err
	}
	return c.Rename(ref, engine.NewMemScan(base.Rel))
}
