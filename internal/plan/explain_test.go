package plan

import (
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fd"
)

// Run `go test ./internal/plan -run TestExplainGolden -update` after an
// intentional planner change to rewrite the golden files.
var updateGolden = flag.Bool("update", false, "rewrite the Explain golden files")

// TestExplainGolden pins the EXPLAIN rendering — the logical plan IR of
// every style plus Auto's cost table — against golden files, so planner
// output cannot silently drift. The fixtures are fully deterministic: a
// fixed catalog (fig1 / seeded hard instance), no timings, and ANALYZE
// statistics derived from a fixed-seed reservoir.
func TestExplainGolden(t *testing.T) {
	hard := hardDB(rand.New(rand.NewSource(1)))
	cases := []struct {
		name string
		spec Spec
	}{
		{name: "lazy", spec: Spec{Style: Lazy}},
		{name: "eager", spec: Spec{Style: Eager}},
		{name: "hybrid", spec: Spec{Style: Hybrid, HybridPrefix: 2}},
		{name: "mystiq", spec: Spec{Style: SafeMystiQ}},
		{name: "obdd", spec: Spec{Style: OBDD}},
		{name: "dtree", spec: Spec{Style: DTree}},
		{name: "mc", spec: Spec{Style: MonteCarlo}},
		{name: "auto", spec: Spec{Style: Auto}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat, _ := fig1Catalog()
			got, err := Explain(cat, introQ(), tpchFDs(), tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, got)
		})
	}
	t.Run("fallback-chain", func(t *testing.T) {
		// An exact style on a query without a hierarchical signature
		// renders the OBDD→dtree→MC fallback-ladder plan.
		got, err := Explain(hard, hardQuery(), fd.NewSet(), Spec{Style: Lazy})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "fallback-chain", got)
	})
	t.Run("auto-unsafe", func(t *testing.T) {
		// Auto on the same query chooses among the lineage tiers only.
		got, err := Explain(hard, hardQuery(), fd.NewSet(), Spec{Style: Auto})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "auto-unsafe", got)
	})
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	checkGoldenAt(t, "explain", name, got)
}

// checkGoldenAt pins got against testdata/<dir>/<name>.golden, rewriting the
// file under -update.
func checkGoldenAt(t *testing.T, dir, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", dir, name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got+"\n" != string(want) {
		t.Errorf("%s drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s", name, path, got, want)
	}
}
