package plan

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/fd"
	"repro/internal/obdd"
	"repro/internal/prob"
)

// hardTruth enumerates the exact per-answer confidences of the hard query
// on a catalog instance (aligned with the plan's sorted answer order).
func hardTruth(t *testing.T, c *Catalog) []float64 {
	t.Helper()
	answer, err := Answer(c, hardQuery())
	if err != nil {
		t.Fatal(err)
	}
	l, err := conf.CollectLineage(answer)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, len(l.Keys))
	for i := range l.Keys {
		p, err := prob.ProbByWorlds(l.DNFs[i], l.Assign)
		if err != nil {
			t.Fatal(err)
		}
		truth[i] = p
	}
	return truth
}

// TestOBDDPlanExactOnHardQuery: the OBDD style computes *exact* confidences
// on randomized instances of the #P-hard pattern — the queries PR 1 could
// only estimate — matching possible-world enumeration to 1e-9.
func TestOBDDPlanExactOnHardQuery(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(61 + trial)))
		c := hardDB(rng)
		res, err := Run(c, hardQuery(), fd.NewSet(), Spec{Style: OBDD})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Stats.Approximate {
			t.Fatalf("trial %d: under-budget OBDD run must be exact: %+v", trial, res.Stats)
		}
		if !strings.Contains(res.Stats.Plan, "obdd") || res.Stats.OBDDNodes == 0 {
			t.Errorf("trial %d: stats should describe the OBDD run: %+v", trial, res.Stats)
		}
		truth := hardTruth(t, c)
		if len(truth) != res.Rows.Len() {
			t.Fatalf("trial %d: %d truths vs %d rows", trial, len(truth), res.Rows.Len())
		}
		ci := res.Rows.Schema.MustColIndex(conf.ConfCol)
		for i, want := range truth {
			if got := res.Rows.Rows[i][ci].F; !prob.ApproxEqual(got, want, 1e-9) {
				t.Errorf("trial %d answer %d: obdd %g, worlds %g", trial, i, got, want)
			}
		}
	}
}

// TestOBDDPlanBounds: a starved node budget turns the OBDD style into the
// certified-anytime mode: Stats.LowerBound ≤ every true confidence ≤
// Stats.UpperBound, each reported confidence is a bound midpoint, bounds
// tighten monotonically with the budget, and runs are deterministic.
func TestOBDDPlanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	c := hardDB(rng)
	truth := hardTruth(t, c)

	run := func(budget int) *Result {
		res, err := Run(c, hardQuery(), fd.NewSet(), Spec{Style: OBDD, OBDD: obdd.Options{NodeBudget: budget}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := run(1)
	if !res.Stats.Approximate {
		t.Fatalf("budget 1 should force bounds: %+v", res.Stats)
	}
	for i, want := range truth {
		if res.Stats.LowerBound > want+1e-9 || want > res.Stats.UpperBound+1e-9 {
			t.Errorf("answer %d: truth %g outside certified [%g, %g]",
				i, want, res.Stats.LowerBound, res.Stats.UpperBound)
		}
	}

	prevWidth := math.Inf(1)
	for _, budget := range []int{1, 2, 4, 8, 16} {
		r := run(budget)
		width := r.Stats.UpperBound - r.Stats.LowerBound
		if width > prevWidth+1e-12 {
			t.Errorf("budget %d: certified width %g loosened from %g", budget, width, prevWidth)
		}
		prevWidth = width
	}

	again := run(1)
	if again.Rows.Len() != res.Rows.Len() {
		t.Fatalf("row counts differ across identical runs: %d vs %d", res.Rows.Len(), again.Rows.Len())
	}
	ci := res.Rows.Schema.MustColIndex(conf.ConfCol)
	for i := range res.Rows.Rows {
		if res.Rows.Rows[i][ci].F != again.Rows.Rows[i][ci].F {
			t.Errorf("row %d: %g vs %g across identical runs", i, res.Rows.Rows[i][ci].F, again.Rows.Rows[i][ci].F)
		}
	}
	if again.Stats.LowerBound != res.Stats.LowerBound || again.Stats.UpperBound != res.Stats.UpperBound {
		t.Errorf("bounds must be deterministic: [%g, %g] vs [%g, %g]",
			res.Stats.LowerBound, res.Stats.UpperBound, again.Stats.LowerBound, again.Stats.UpperBound)
	}

	if _, err := Run(c, hardQuery(), fd.NewSet(), Spec{
		Style: OBDD, OBDD: obdd.Options{NodeBudget: 1}, RequireExact: true,
	}); err == nil {
		t.Error("RequireExact must reject bound-mode OBDD results")
	}
}

// TestOBDDPlanAgreesWithLazyOnHierarchical: on the paper's hierarchical
// running example the OBDD style (signature-derived variable order) returns
// the same answers as the exact sort+scan operator.
func TestOBDDPlanAgreesWithLazyOnHierarchical(t *testing.T) {
	cat, _ := fig1Catalog()
	q := introQ()
	q.Sels = q.Sels[1:] // more answers
	base, err := Run(cat, q.Clone(), tpchFDs(), Spec{Style: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cat, q.Clone(), tpchFDs(), Spec{Style: OBDD})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Approximate {
		t.Fatalf("hierarchical lineage must compile exactly: %+v", res.Stats)
	}
	if !strings.Contains(res.Stats.Signature, "signature") {
		t.Errorf("OBDD on a hierarchical query should use the signature order: %q", res.Stats.Signature)
	}
	if err := sameAnswers(base.Rows, res.Rows, 1e-9); err != nil {
		t.Error(err)
	}
}

// TestStyleNamesDerived: the ParseStyle error and StyleNames list every
// style, including new ones, without a hand-maintained literal.
func TestStyleNamesDerived(t *testing.T) {
	if got := StyleNames(); got != "lazy|eager|hybrid|mystiq|mc|obdd|dtree|auto" {
		t.Errorf("StyleNames() = %q", got)
	}
	if s, err := ParseStyle("obdd"); err != nil || s != OBDD {
		t.Errorf("ParseStyle(obdd) = %v, %v", s, err)
	}
	_, err := ParseStyle("bogus")
	if err == nil || !strings.Contains(err.Error(), StyleNames()) {
		t.Errorf("ParseStyle error should quote the derived style list: %v", err)
	}
	for _, s := range allStyles {
		if s.String() == "?" {
			t.Errorf("style %d has no name", s)
		}
	}
}
