package plan

import (
	"fmt"
	"math"
	"time"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/query"
	"repro/internal/table"
)

// runSafe evaluates q with a MystiQ-style safe plan (Fig. 2): the join
// order follows the hierarchy of the query tree (deepest subqueries first),
// every join and leaf is capped by an independent projection π^ind that
// eliminates duplicates and aggregates their probabilities, and — unlike
// SPROUT — no variable columns exist: correctness rests entirely on the
// restrictive join order guaranteeing that duplicates are independent.
// Probabilities are aggregated with MystiQ's 1-POWER(10, SUM(log10(1.001-p)))
// formula, whose runtime failures on large groups (§VII) are reproduced as
// errors.
func runSafe(ex exec, c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (*Result, error) {
	// Prefer the head-aware tree of the original query: its labels carry
	// the actual join attributes. The FD-reduct tree (used when the
	// original structure is non-hierarchical, e.g. Q18) drops attributes
	// functionally determined by the head, which is fine there because the
	// reduct keeps the join attributes that still matter.
	tree, err := query.TreeFor(q)
	if err != nil {
		tree, err = treeForOrder(q, sigma)
		if err != nil {
			return nil, fmt.Errorf("plan: no safe plan for %s: %w", q.Name, err)
		}
	}
	t0 := time.Now()
	head := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		head[h] = true
	}
	b := &safeBuilder{cat: c, q: q, head: head, ex: ex}
	op, err := b.node(tree, nil)
	if err != nil {
		return nil, err
	}
	// Final independent projection onto the head attributes.
	op, err = b.indProject(op, q.Head)
	if err != nil {
		return nil, err
	}
	rel, err := engine.CollectCtx(ex.ctx, op)
	if err != nil {
		return nil, err
	}
	// MystiQ's aggregate fails at runtime on groups of many near-certain
	// events (log-sum underflow) — surface that as an error, as in §VII.
	pi := rel.Schema.ColIndex(safeProbCol)
	for _, row := range rel.Rows {
		if math.IsNaN(row[pi].F) || math.IsInf(row[pi].F, 0) {
			return nil, fmt.Errorf("plan: MystiQ runtime error: probability aggregate under/overflowed (query %s)", q.Name)
		}
	}
	// Rename the probability column to conf for a uniform Result shape.
	out := table.NewRelation(func() *table.Schema {
		cols := append([]table.Column(nil), rel.Schema.Cols...)
		cols[pi] = table.DataCol(conf.ConfCol, table.KindFloat)
		return table.NewSchema(cols...)
	}())
	out.Rows = rel.Rows
	out, err = normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	total := time.Since(t0)
	return &Result{
		Rows: out,
		Stats: Stats{
			Plan:           fmt.Sprintf("mystiq safe plan over tree %s", tree),
			Signature:      "(safe plan; no signature)",
			TupleTime:      total,
			ProbTime:       0, // interleaved with tuple computation in safe plans
			AnswerTuples:   b.maxIntermediate,
			DistinctTuples: int64(out.Len()),
			Scans:          b.aggregations,
		},
	}, nil
}

// safeProbCol is the single probability column safe plans carry.
const safeProbCol = "P"

type safeBuilder struct {
	cat             *Catalog
	q               *query.Query
	head            map[string]bool
	ex              exec
	maxIntermediate int64
	aggregations    int
}

// node compiles a query (sub)tree into an operator whose schema is the
// node's kept attributes plus the P column.
func (b *safeBuilder) node(t *query.Tree, parentLabel []string) (engine.Operator, error) {
	if t.IsLeaf() {
		// The tree may come from an FD-reduct, whose leaves carry
		// closure-extended attribute sets; scan the original occurrence.
		ref, ok := b.q.RelByName(t.Leaf.Name)
		if !ok {
			return nil, fmt.Errorf("plan: tree leaf %s not in query", t.Leaf.Name)
		}
		return b.leaf(ref, parentLabel)
	}
	keep := b.keepAttrs(t)
	// Children in hierarchy order: deepest first, like the safe plans
	// MystiQ produces (Fig. 2 joins Ord ⋈ Item before Cust).
	kids := append([]*query.Tree(nil), t.Children...)
	for i := 0; i < len(kids); i++ {
		deepest := i
		for j := i + 1; j < len(kids); j++ {
			if depth(kids[j]) > depth(kids[deepest]) {
				deepest = j
			}
		}
		kids[i], kids[deepest] = kids[deepest], kids[i]
	}
	cur, err := b.node(kids[0], t.Label)
	if err != nil {
		return nil, err
	}
	for _, kid := range kids[1:] {
		right, err := b.node(kid, t.Label)
		if err != nil {
			return nil, err
		}
		cur, err = b.join(cur, right, keep)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// keepAttrs returns the node's label attributes plus head attributes
// available in its subtree.
func (b *safeBuilder) keepAttrs(t *query.Tree) []string {
	inSubtree := make(map[string]bool)
	var walk func(n *query.Tree)
	walk = func(n *query.Tree) {
		if n.IsLeaf() {
			if ref, ok := b.q.RelByName(n.Leaf.Name); ok {
				for _, a := range ref.Attrs {
					inSubtree[a] = true
				}
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	var keep []string
	seen := make(map[string]bool)
	add := func(a string) {
		if inSubtree[a] && !seen[a] {
			keep = append(keep, a)
			seen[a] = true
		}
	}
	if !t.IsLeaf() {
		for _, a := range t.Label {
			add(a)
		}
	} else if ref, ok := b.q.RelByName(t.Leaf.Name); ok {
		for _, a := range ref.Attrs {
			if b.head[a] {
				add(a)
			}
		}
	}
	for _, h := range b.q.Head {
		add(h)
	}
	return keep
}

// leaf compiles scan → filter → projection to kept attrs + P, followed by
// π^ind.
func (b *safeBuilder) leaf(ref query.RelRef, parentLabel []string) (engine.Operator, error) {
	op, err := b.cat.Scan(ref)
	if err != nil {
		return nil, err
	}
	s := op.Schema()
	var preds engine.And
	for _, sel := range b.q.Sels {
		if sel.Rel != ref.Name {
			continue
		}
		idx := s.ColIndex(sel.Attr)
		if idx < 0 {
			return nil, fmt.Errorf("plan: selection attribute %s missing from %s", sel.Attr, ref.Name)
		}
		preds = append(preds, engine.Cmp{L: engine.ColRef{Idx: idx, Name: sel.Attr}, Op: sel.Op, R: engine.Const{V: sel.Val}})
	}
	if len(preds) > 0 {
		op = engine.NewFilter(op, preds)
	}
	// Keep parent label attrs present in this leaf plus head attrs.
	seen := make(map[string]bool)
	var keep []string
	for _, a := range parentLabel {
		if ref.HasAttr(a) && !seen[a] {
			keep = append(keep, a)
			seen[a] = true
		}
	}
	for _, a := range ref.Attrs {
		if b.head[a] && !seen[a] {
			keep = append(keep, a)
			seen[a] = true
		}
	}
	// Drop the variable column, rename P(ref) to the bare P column: MystiQ
	// works on probabilistic tables without variable columns (§V).
	names := append(append([]string(nil), keep...), "P("+ref.Name+")")
	proj, err := engine.NewColumnProject(op, names)
	if err != nil {
		return nil, err
	}
	ps := proj.Schema()
	cols := append([]table.Column(nil), ps.Cols...)
	cols[len(cols)-1] = table.DataCol(safeProbCol, table.KindFloat)
	var exprs []engine.Expr
	for i, c := range ps.Cols {
		exprs = append(exprs, engine.ColRef{Idx: i, Name: c.Name})
	}
	renamed, err := engine.NewProject(proj, table.NewSchema(cols...), exprs)
	if err != nil {
		return nil, err
	}
	return b.indProject(renamed, keep)
}

// join combines two safe subplans: equi-join on shared attributes,
// multiply probabilities, project to keep, π^ind.
func (b *safeBuilder) join(left, right engine.Operator, keep []string) (engine.Operator, error) {
	ls, rs := left.Schema(), right.Schema()
	var lk, rk []int
	for i, lc := range ls.Cols {
		if lc.Name == safeProbCol {
			continue
		}
		j := rs.ColIndex(lc.Name)
		if j >= 0 && rs.Cols[j].Name != safeProbCol {
			lk = append(lk, i)
			rk = append(rk, j)
		}
	}
	j, err := engine.NewHashJoin(left, right, lk, rk)
	if err != nil {
		return nil, err
	}
	js := j.Schema()
	lpi := ls.ColIndex(safeProbCol)
	rpi := len(ls.Cols) + rs.ColIndex(safeProbCol)
	var exprs []engine.Expr
	var cols []table.Column
	seen := make(map[string]bool)
	for _, a := range keep {
		idx := js.ColIndex(a)
		if idx < 0 || seen[a] {
			continue
		}
		seen[a] = true
		exprs = append(exprs, engine.ColRef{Idx: idx, Name: a})
		cols = append(cols, js.Cols[idx])
	}
	exprs = append(exprs, engine.Mul{L: engine.ColRef{Idx: lpi, Name: "Pl"}, R: engine.ColRef{Idx: rpi, Name: "Pr"}})
	cols = append(cols, table.DataCol(safeProbCol, table.KindFloat))
	proj, err := engine.NewProject(j, table.NewSchema(cols...), exprs)
	if err != nil {
		return nil, err
	}
	mat, err := engine.CollectCtx(b.ex.ctx, proj)
	if err != nil {
		return nil, err
	}
	if int64(mat.Len()) > b.maxIntermediate {
		b.maxIntermediate = int64(mat.Len())
	}
	return b.indProject(engine.NewMemScan(mat), keep)
}

// indProject is MystiQ's independent projection: group by the kept
// attributes and aggregate the probabilities of the (assumed independent)
// duplicates with the log-based formula.
func (b *safeBuilder) indProject(in engine.Operator, keep []string) (engine.Operator, error) {
	b.aggregations++
	s := in.Schema()
	var groupBy []int
	for _, a := range keep {
		idx := s.ColIndex(a)
		if idx < 0 {
			return nil, fmt.Errorf("plan: π^ind attribute %s missing from %v", a, s.Names())
		}
		groupBy = append(groupBy, idx)
	}
	pi := s.ColIndex(safeProbCol)
	if pi < 0 {
		return nil, fmt.Errorf("plan: π^ind input lacks P column: %v", s.Names())
	}
	return engine.GroupSorted(in, groupBy, []engine.AggSpec{
		{Kind: engine.AggLogOr, Col: pi, Out: table.DataCol(safeProbCol, table.KindFloat)},
	}), nil
}
