package plan

import (
	"fmt"
	"math"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/logical"
	"repro/internal/query"
	"repro/internal/table"
)

// This file lowers probability-mode logical plans — the MystiQ safe plans
// of Fig. 2 (§VII), built by buildSafe — to the physical engine: the join
// order follows the hierarchy of the query tree (deepest subqueries first),
// every join and leaf is capped by an independent projection π^ind that
// eliminates duplicates and aggregates their probabilities, and — unlike
// SPROUT — no variable columns exist: correctness rests entirely on the
// restrictive join order guaranteeing that duplicates are independent.
// Probabilities are aggregated with MystiQ's 1-POWER(10, SUM(log10(1.001-p)))
// formula, whose runtime failures on large groups (§VII) are reproduced as
// errors.

// safeProbCol is the single probability column safe plans carry.
const safeProbCol = "P"

// lowerSafe executes a ModeProb logical plan.
func lowerSafe(ex exec, c *Catalog, q *query.Query, b *built, spec Spec) (*Result, error) {
	root, ok := b.lp.Root.(*logical.Conf)
	if !ok || root.Alg != logical.AlgIndProject || !root.Final {
		return nil, fmt.Errorf("plan: safe plan for %s lacks the final π^ind", q.Name)
	}
	t0 := statsNow()
	s := &safeLower{cat: c, q: q, ex: ex}
	op, err := s.node(root.Input)
	if err != nil {
		return nil, err
	}
	// Final independent projection onto the head attributes.
	op, err = s.indProject(op, root.Keep)
	if err != nil {
		return nil, err
	}
	rel, err := engine.CollectCtx(ex.ctx, op)
	if err != nil {
		return nil, err
	}
	// MystiQ's aggregate fails at runtime on groups of many near-certain
	// events (log-sum underflow) — surface that as an error, as in §VII.
	pi := rel.Schema.ColIndex(safeProbCol)
	for _, row := range rel.Rows {
		if math.IsNaN(row[pi].F) || math.IsInf(row[pi].F, 0) {
			return nil, fmt.Errorf("plan: MystiQ runtime error: probability aggregate under/overflowed (query %s)", q.Name)
		}
	}
	// Rename the probability column to conf for a uniform Result shape.
	out := table.NewRelation(func() *table.Schema {
		cols := append([]table.Column(nil), rel.Schema.Cols...)
		cols[pi] = table.DataCol(conf.ConfCol, table.KindFloat)
		return table.NewSchema(cols...)
	}())
	out.Rows = rel.Rows
	out, err = normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	total := statsSince(t0)
	if sp := ex.span("safe plan"); sp != nil {
		sp.Str("tree", b.tree.String())
		sp.Int("aggregations", int64(s.aggregations))
		sp.Int("max_intermediate", s.maxIntermediate)
		sp.Int("rows", int64(out.Len()))
		sp.SetDur(total)
	}
	return &Result{
		Rows: out,
		Stats: Stats{
			Plan:           fmt.Sprintf("mystiq safe plan over tree %s", b.tree),
			Signature:      "(safe plan; no signature)",
			TupleTime:      total,
			ProbTime:       0, // interleaved with tuple computation in safe plans
			AnswerTuples:   s.maxIntermediate,
			DistinctTuples: int64(out.Len()),
			Scans:          s.aggregations,
		},
	}, nil
}

// safeLower walks the probability-mode IR, building engine operators.
type safeLower struct {
	cat             *Catalog
	q               *query.Query
	ex              exec
	maxIntermediate int64
	aggregations    int
}

// node lowers one IR subtree to an operator whose schema is the node's kept
// attributes plus the P column.
func (s *safeLower) node(n logical.Node) (engine.Operator, error) {
	switch x := n.(type) {
	case *logical.Conf:
		in, err := s.node(x.Input)
		if err != nil {
			return nil, err
		}
		return s.indProject(in, x.Keep)
	case *logical.Project:
		if j, ok := x.Input.(*logical.Join); ok {
			left, err := s.node(j.Left)
			if err != nil {
				return nil, err
			}
			right, err := s.node(j.Right)
			if err != nil {
				return nil, err
			}
			return s.join(left, right, x.Attrs)
		}
		return s.leaf(x)
	default:
		return nil, fmt.Errorf("plan: cannot lower safe-plan node %T", n)
	}
}

// leaf lowers a leaf pipeline: scan → filter → projection to kept attrs +
// P. The variable column is dropped and P(ref) renamed to the bare P
// column: MystiQ works on probabilistic tables without variable columns
// (§V).
func (s *safeLower) leaf(p *logical.Project) (engine.Operator, error) {
	ref, ok := scanRefUnder(p)
	if !ok {
		return nil, fmt.Errorf("plan: safe-plan leaf %s has no scan", p.Label())
	}
	op, err := s.cat.Scan(ref)
	if err != nil {
		return nil, err
	}
	sc := op.Schema()
	var preds engine.And
	for _, sel := range s.q.Sels {
		if sel.Rel != ref.Name {
			continue
		}
		idx := sc.ColIndex(sel.Attr)
		if idx < 0 {
			return nil, fmt.Errorf("plan: selection attribute %s missing from %s", sel.Attr, ref.Name)
		}
		preds = append(preds, engine.Cmp{L: engine.ColRef{Idx: idx, Name: sel.Attr}, Op: sel.Op, R: engine.Const{V: sel.Val}})
	}
	if len(preds) > 0 {
		op = engine.NewFilter(op, preds)
	}
	names := append(append([]string(nil), p.Attrs...), "P("+ref.Name+")")
	proj, err := engine.NewColumnProject(op, names)
	if err != nil {
		return nil, err
	}
	ps := proj.Schema()
	cols := append([]table.Column(nil), ps.Cols...)
	cols[len(cols)-1] = table.DataCol(safeProbCol, table.KindFloat)
	var exprs []engine.Expr
	for i, c := range ps.Cols {
		exprs = append(exprs, engine.ColRef{Idx: i, Name: c.Name})
	}
	return engine.NewProject(proj, table.NewSchema(cols...), exprs)
}

// join combines two safe subplans: equi-join on shared attributes, multiply
// probabilities, project to keep, materialize.
func (s *safeLower) join(left, right engine.Operator, keep []string) (engine.Operator, error) {
	ls, rs := left.Schema(), right.Schema()
	var lk, rk []int
	for i, lc := range ls.Cols {
		if lc.Name == safeProbCol {
			continue
		}
		j := rs.ColIndex(lc.Name)
		if j >= 0 && rs.Cols[j].Name != safeProbCol {
			lk = append(lk, i)
			rk = append(rk, j)
		}
	}
	j, err := engine.NewHashJoin(left, right, lk, rk)
	if err != nil {
		return nil, err
	}
	j.Mem, j.SortBudget, j.TmpDir = s.ex.mem, s.ex.sortBudget, s.ex.tmpDir
	js := j.Schema()
	lpi := ls.ColIndex(safeProbCol)
	rpi := len(ls.Cols) + rs.ColIndex(safeProbCol)
	var exprs []engine.Expr
	var cols []table.Column
	seen := make(map[string]bool)
	for _, a := range keep {
		idx := js.ColIndex(a)
		if idx < 0 || seen[a] {
			continue
		}
		seen[a] = true
		exprs = append(exprs, engine.ColRef{Idx: idx, Name: a})
		cols = append(cols, js.Cols[idx])
	}
	exprs = append(exprs, engine.Mul{L: engine.ColRef{Idx: lpi, Name: "Pl"}, R: engine.ColRef{Idx: rpi, Name: "Pr"}})
	cols = append(cols, table.DataCol(safeProbCol, table.KindFloat))
	proj, err := engine.NewProject(j, table.NewSchema(cols...), exprs)
	if err != nil {
		return nil, err
	}
	mat, err := engine.CollectCtx(s.ex.ctx, proj)
	if err != nil {
		return nil, err
	}
	if int64(mat.Len()) > s.maxIntermediate {
		s.maxIntermediate = int64(mat.Len())
	}
	return engine.NewMemScan(mat), nil
}

// indProject is MystiQ's independent projection: group by the kept
// attributes and aggregate the probabilities of the (assumed independent)
// duplicates with the log-based formula.
func (s *safeLower) indProject(in engine.Operator, keep []string) (engine.Operator, error) {
	s.aggregations++
	sc := in.Schema()
	var groupBy []int
	for _, a := range keep {
		idx := sc.ColIndex(a)
		if idx < 0 {
			return nil, fmt.Errorf("plan: π^ind attribute %s missing from %v", a, sc.Names())
		}
		groupBy = append(groupBy, idx)
	}
	pi := sc.ColIndex(safeProbCol)
	if pi < 0 {
		return nil, fmt.Errorf("plan: π^ind input lacks P column: %v", sc.Names())
	}
	return engine.GroupSorted(in, groupBy, []engine.AggSpec{
		{Kind: engine.AggLogOr, Col: pi, Out: table.DataCol(safeProbCol, table.KindFloat)},
	}), nil
}
