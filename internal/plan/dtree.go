package plan

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/conf"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// This file assembles the results of the d-tree confidence tier (lower.go):
// answer tuples are computed exactly like the lazy plan, then each distinct
// answer's lineage DNF is decomposed into a d-tree (internal/dtree) —
// independent-AND / independent-OR decompositions, Shannon cofactoring only
// as a last resort — exact within the step budget, certified [lo, hi]
// bounds beyond it. The tier is both a style in its own right (Spec.Style =
// DTree) and the third rung of the exact styles' fallback ladder on queries
// without a hierarchical signature: hierarchical sort+scan → OBDD → d-tree
// → Monte Carlo.

// finishDTree is the DTree style's confidence tier over the materialized
// answer: decompose each answer's lineage, exact under the step budget,
// certified bounds beyond it.
func finishDTree(ex exec, q *query.Query, b *built, spec Spec, answer *table.Relation, tupleTime time.Duration) (*Result, error) {
	t1 := statsNow()
	out, ds, err := conf.DTree(ex.ctx, ex.pool, answer, spec.DTree, spec.RequireExact)
	if err != nil {
		if errors.Is(err, conf.ErrDTreeBudget) {
			return nil, fmt.Errorf("plan: %s: %w (RequireExact forbids certified bounds)", q.Name, err)
		}
		return nil, err
	}
	probTime := statsSince(t1)
	out, err = normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	return dtreeResult(ex.span("conf[dtree]"), q, "", b.order, answer, out, ds, tupleTime, probTime), nil
}

// dtreeResult assembles the Result of a d-tree run, annotating the tier's
// trace span (nil when tracing is off) with decomposition detail.
func dtreeResult(sp *obs.Span, q *query.Query, note string, order []query.RelRef, answer, out *table.Relation, ds *conf.DTreeStats, tupleTime, probTime time.Duration) *Result {
	bounded := ""
	if ds.Bounded > 0 {
		bounded = fmt.Sprintf(", %d bounded to width ≤ %.3g", ds.Bounded, ds.MaxWidth)
	}
	sp.Int("answers", ds.OutputTuples).Int("clauses", ds.Clauses).Int("vars", ds.Vars).Int("dedup_rows", ds.DupRows)
	sp.Int("steps", ds.Nodes).Int("memo_hits", ds.MemoHits).Int("memo_misses", ds.MemoMisses)
	sp.Int("exact", ds.ExactAnswers).Int("bounded", ds.Bounded)
	if ds.Bounded > 0 {
		sp.Float("max_width", ds.MaxWidth)
	}
	sp.LooseInt("hdr_recycled", ds.HdrRecycled)
	sp.SetDur(probTime)
	stats := Stats{
		Plan: fmt.Sprintf("dtree%s: %s; decompose lineage of %d answers (%d clauses, %d steps, %d exact%s)",
			note, describeOrder(order), ds.OutputTuples, ds.Clauses, ds.Nodes, ds.ExactAnswers, bounded),
		Signature:      "(d-tree over lineage; order-free decomposition)",
		TupleTime:      tupleTime,
		ProbTime:       probTime,
		AnswerTuples:   int64(answer.Len()),
		DistinctTuples: int64(out.Len()),
		Scans:          1, // the lineage-collection grouping pass
		DTreeNodes:     ds.Nodes,
		MemoHits:       ds.MemoHits,
		MemoMisses:     ds.MemoMisses,
	}
	if ds.Bounded > 0 {
		stats.Approximate = true
		stats.LowerBound = ds.LowerBound
		stats.UpperBound = ds.UpperBound
		stats.MaxWidth = ds.MaxWidth
	}
	if ds.Stopped > 0 {
		markDegraded(&stats, "deadline")
		sp.Int("deadline_stopped", ds.Stopped)
	}
	return &Result{Rows: out, Stats: stats}
}
