package plan

import (
	"repro/internal/signature"
)

// Restrict computes the probability-computation operator that may be placed
// on top of a subplan containing exactly the relations in sub (§V.B). The
// procedure follows the paper: start from the current signature, drop every
// table outside the subplan, keep the aggregation steps (starred tables),
// and split away propagation steps (concatenations) whose minimal cover in
// the full query signature is not contained in the subplan. The result is a
// list of component signatures — the operator [s1, …, sn].
func Restrict(full, cur signature.Sig, sub map[string]bool) []signature.Sig {
	pruned := prune(cur, sub)
	if pruned == nil {
		return nil
	}
	return split(pruned, full, sub)
}

// prune drops tables outside sub; empty subexpressions vanish.
func prune(s signature.Sig, sub map[string]bool) signature.Sig {
	switch x := s.(type) {
	case signature.Table:
		if sub[string(x)] {
			return x
		}
		return nil
	case signature.Star:
		inner := prune(x.Inner, sub)
		if inner == nil {
			return nil
		}
		return signature.NewStar(inner)
	case signature.Concat:
		var parts []signature.Sig
		for _, c := range x {
			if p := prune(c, sub); p != nil {
				parts = append(parts, p)
			}
		}
		if len(parts) == 0 {
			return nil
		}
		return signature.NewConcat(parts...)
	default:
		return nil
	}
}

// split decomposes a pruned signature into valid operator components: a
// concatenation (propagation step) is valid only when the minimal cover of
// its tables in the full query signature lies inside the subplan; invalid
// concatenations lose their enclosing star and decompose into their
// components, each keeping its own star (Ex. V.6: (Cust*Ord*)* at node p
// splits into [Cust*, Ord*] because Item is in the minimal cover of
// {Cust, Ord} but not in the subplan).
func split(s signature.Sig, full signature.Sig, sub map[string]bool) []signature.Sig {
	if allConcatsValid(s, full, sub) {
		return []signature.Sig{s}
	}
	switch x := s.(type) {
	case signature.Table:
		return []signature.Sig{x}
	case signature.Star:
		if c, ok := x.Inner.(signature.Concat); ok {
			var out []signature.Sig
			for _, comp := range c {
				out = append(out, split(comp, full, sub)...)
			}
			return out
		}
		return []signature.Sig{x}
	case signature.Concat:
		var out []signature.Sig
		for _, comp := range x {
			out = append(out, split(comp, full, sub)...)
		}
		return out
	default:
		return nil
	}
}

// allConcatsValid checks every concatenation node within s for propagation
// validity.
func allConcatsValid(s signature.Sig, full signature.Sig, sub map[string]bool) bool {
	switch x := s.(type) {
	case signature.Table:
		return true
	case signature.Star:
		return allConcatsValid(x.Inner, full, sub)
	case signature.Concat:
		cover, ok := signature.MinimalCover(full, signature.Tables(x))
		if !ok {
			return false
		}
		for _, t := range signature.Tables(cover) {
			if !sub[t] {
				return false
			}
		}
		for _, comp := range x {
			if !allConcatsValid(comp, full, sub) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Replace substitutes the first subexpression of s structurally equal to
// target with repl — the signature update performed on the ancestors of a
// newly inserted operator ("we replace in its signature each αi by the
// leftmost table name in αi", §V.B).
func Replace(s, target, repl signature.Sig) signature.Sig {
	if signature.Equal(s, target) {
		return repl
	}
	switch x := s.(type) {
	case signature.Star:
		return signature.NewStar(Replace(x.Inner, target, repl))
	case signature.Concat:
		parts := make([]signature.Sig, len(x))
		done := false
		for i, c := range x {
			if !done {
				nc := Replace(c, target, repl)
				if !signature.Equal(nc, c) {
					done = true
				}
				parts[i] = nc
			} else {
				parts[i] = c
			}
		}
		return signature.NewConcat(parts...)
	default:
		return s
	}
}
