package plan

import (
	"context"
	"sync/atomic"
	"time"
)

// Wall-clock access in plan is funneled through these two helpers so the
// detrand analyzer documents exactly where nondeterminism enters: execution
// phase timings reported in Stats (and recorded in traces/metrics), which
// never feed back into confidences or plan choice. New timing sites should
// call these instead of time.Now/Since directly — a direct call trips
// sproutvet's detrand check.

// statsNow is time.Now for Stats/trace phase timings only.
func statsNow() time.Time {
	return time.Now() //sproutvet:allow detrand wall-clock feeds only Stats wall-time fields, never confidences or plan choice
}

// statsSince is time.Since for Stats/trace phase timings only.
func statsSince(t0 time.Time) time.Duration {
	return time.Since(t0) //sproutvet:allow detrand wall-clock feeds only Stats wall-time fields, never confidences or plan choice
}

// watermarkProbeEvery throttles the deadline-watermark probe: the wall
// clock is read once per this many polls, so the compilation and sampling
// hot loops pay one atomic add per poll, not a clock read.
const watermarkProbeEvery = 64

// watermarkStop builds the Stop probe of a deadline-watermark run: it
// trips — and latches — once the wall clock passes ctx's deadline minus w,
// telling the OBDD/d-tree tiers to return their current certified bounds
// and the Monte Carlo sampler its running estimate, instead of letting the
// deadline kill the run with nothing to show. Returns nil (no probe) when
// w <= 0 or ctx carries no deadline. The probe is intentionally
// nondeterministic: it only ever widens reported bounds, never changes an
// exact confidence.
func watermarkStop(ctx context.Context, w time.Duration) func() bool {
	if w <= 0 {
		return nil
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	limit := deadline.Add(-w)
	var polls atomic.Int64
	var tripped atomic.Bool
	// Arm-time check: when the watermark already exceeds the remaining
	// time, every tier must stop at its first poll — without it, a small
	// compilation could finish exactly before the throttled probe's first
	// clock read, making insufficient-deadline degradation racy.
	if !time.Now().Before(limit) { //sproutvet:allow detrand the deadline watermark trades precision for timeliness by design; it can only widen certified bounds
		tripped.Store(true)
	}
	return func() bool {
		if tripped.Load() {
			return true
		}
		if polls.Add(1)%watermarkProbeEvery != 0 {
			return false
		}
		now := time.Now() //sproutvet:allow detrand the deadline watermark trades precision for timeliness by design; it can only widen certified bounds
		if now.Before(limit) {
			return false
		}
		tripped.Store(true)
		return true
	}
}
