package plan

import "time"

// Wall-clock access in plan is funneled through these two helpers so the
// detrand analyzer documents exactly where nondeterminism enters: execution
// phase timings reported in Stats (and recorded in traces/metrics), which
// never feed back into confidences or plan choice. New timing sites should
// call these instead of time.Now/Since directly — a direct call trips
// sproutvet's detrand check.

// statsNow is time.Now for Stats/trace phase timings only.
func statsNow() time.Time {
	return time.Now() //sproutvet:allow detrand wall-clock feeds only Stats wall-time fields, never confidences or plan choice
}

// statsSince is time.Since for Stats/trace phase timings only.
func statsSince(t0 time.Time) time.Duration {
	return time.Since(t0) //sproutvet:allow detrand wall-clock feeds only Stats wall-time fields, never confidences or plan choice
}
