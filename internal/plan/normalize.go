package plan

import (
	"fmt"

	"repro/internal/conf"
	"repro/internal/query"
	"repro/internal/table"
)

// normalizeAnswer reorders the columns of a computed answer to the query's
// head order followed by the conf column, so that every plan style returns
// identically shaped results regardless of its internal join order.
func normalizeAnswer(rel *table.Relation, q *query.Query) (*table.Relation, error) {
	want := append(append([]string(nil), q.Head...), conf.ConfCol)
	if len(want) != rel.Schema.Len() {
		return nil, fmt.Errorf("plan: answer schema %v does not match head %v + conf", rel.Schema.Names(), q.Head)
	}
	idx := make([]int, len(want))
	identity := true
	for i, name := range want {
		j := rel.Schema.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("plan: answer lacks column %q (has %v)", name, rel.Schema.Names())
		}
		idx[i] = j
		if j != i {
			identity = false
		}
	}
	if identity {
		return rel, nil
	}
	out := table.NewRelation(rel.Schema.Project(idx))
	out.Rows = make([]table.Tuple, len(rel.Rows))
	for i, row := range rel.Rows {
		out.Rows[i] = row.Project(idx)
	}
	return out, nil
}
