package plan

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/fd"
	"repro/internal/obdd"
	"repro/internal/pool"
	"repro/internal/prob"
	"repro/internal/query"
	"repro/internal/signature"
	"repro/internal/table"
)

// Style selects the plan family of §V.B / Fig. 7.
type Style int

// Plan styles.
const (
	// Lazy computes the answer tuples with an optimizer-chosen join order
	// and runs the confidence operator once, at the very top (Fig. 7c).
	Lazy Style = iota
	// Eager pushes probability-computation operators onto every table and
	// after every join, following the hierarchical join order (Fig. 7a).
	Eager
	// Hybrid joins a prefix of the relations, applies the valid operators
	// there, and finishes lazily (Fig. 7b).
	Hybrid
	// SafeMystiQ is the baseline: MystiQ's safe plans, evaluated without
	// variable columns (Fig. 2, §VII).
	SafeMystiQ
	// MonteCarlo computes the answer tuples lazily and estimates each
	// answer's confidence from its lineage DNF with an (ε, δ) Monte Carlo
	// sampler (naive or Karp–Luby, internal/prob). It works for every
	// conjunctive query — general conjunctive queries are #P-hard (§II) —
	// and is the last rung of the exact styles' fallback chain.
	MonteCarlo
	// OBDD computes the answer tuples lazily and compiles each answer's
	// lineage DNF into a reduced ordered binary decision diagram
	// (internal/obdd): exact confidences whenever the diagram fits the
	// node budget — including for many queries without a hierarchical
	// signature — and certified deterministic [lo, hi] bounds (reported
	// via Stats.LowerBound/UpperBound) when it does not. Exact styles try
	// this compilation before falling back to Monte Carlo.
	OBDD
)

// allStyles lists every style; String, ParseStyle and StyleNames derive
// from it so the set cannot drift across surfaces.
var allStyles = []Style{Lazy, Eager, Hybrid, SafeMystiQ, MonteCarlo, OBDD}

// styleNames aligns with the Style constants (Lazy = 0, ...).
var styleNames = [...]string{"lazy", "eager", "hybrid", "mystiq", "mc", "obdd"}

// String names the style.
func (s Style) String() string {
	if s >= 0 && int(s) < len(styleNames) {
		return styleNames[s]
	}
	return "?"
}

// StyleNames returns every style name joined by "|" — the canonical
// usage-string fragment for the command-line tools.
func StyleNames() string {
	names := make([]string, len(allStyles))
	for i, s := range allStyles {
		names[i] = s.String()
	}
	return strings.Join(names, "|")
}

// ParseStyle maps a style name (as printed by Style.String and accepted by
// the command-line tools) back to the Style.
func ParseStyle(name string) (Style, error) {
	for _, s := range allStyles {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("plan: unknown style %q (want %s)", name, StyleNames())
}

// Spec configures a plan run.
type Spec struct {
	Style Style
	// HybridPrefix is, for Hybrid, the number of relations (in lazy join
	// order) joined before the eager operator application; 0 defaults to
	// len(rels)-1 (aggregate before the last join).
	HybridPrefix int
	// Conf tunes the confidence operator's sorts.
	Conf conf.Options
	// MC tunes the Monte Carlo estimator (ε, δ, seed, method, workers) for
	// the MonteCarlo style and for the automatic fallback.
	MC prob.MCOptions
	// OBDD tunes lineage compilation (node budget, anytime target width)
	// for the OBDD style and for the exact styles' OBDD fallback tier.
	OBDD obdd.Options
	// RequireExact restores the paper's strict behaviour: exact styles
	// reject queries without a hierarchical signature instead of falling
	// through the OBDD and Monte Carlo tiers, and the OBDD style errors
	// instead of reporting certified bounds when the budget is exceeded.
	RequireExact bool
	// Workers sizes the shared worker pool driving every parallel stage of
	// the run: partitioned scans and hash-partitioned joins, the
	// partition-parallel aggregation passes of the confidence operator,
	// per-answer OBDD compilation and Monte Carlo estimation. 0 defaults to
	// GOMAXPROCS; 1 forces the classic single-threaded executor. The
	// computed confidences are bit-identical for every worker count.
	Workers int
	// Pool, when non-nil, supplies an existing worker pool instead of a
	// fresh one of Workers workers — the sprout.Engine facade passes its
	// pool here so every concurrently served query draws from one global
	// slot budget.
	Pool *pool.Pool
}

// Stats reports the execution breakdown the paper's figures use.
type Stats struct {
	Plan           string        // human-readable plan description
	Signature      string        // signature used for confidence computation
	TupleTime      time.Duration // computing + materializing answer tuples
	ProbTime       time.Duration // confidence computation
	AnswerTuples   int64         // answer tuples before duplicate elimination
	DistinctTuples int64         // distinct answer tuples
	Scans          int           // operator scans (aggregation + final)
	// Approximate marks non-exact confidences: (ε, δ) Monte Carlo
	// estimates, or OBDD bound midpoints (then LowerBound/UpperBound
	// certify the truth deterministically).
	Approximate bool
	// Samples is the total number of Monte Carlo samples drawn (0 for
	// exact plans).
	Samples int64
	// Epsilon is the weakest per-answer additive error guarantee of an
	// approximate run (0 for exact and OBDD plans — OBDD bounds are
	// deterministic, not probabilistic).
	Epsilon float64
	// OBDDNodes counts OBDD nodes built plus anytime expansion steps
	// across all answers (0 for non-OBDD plans).
	OBDDNodes int64
	// LowerBound and UpperBound certify every answer's true confidence of
	// an OBDD run that exceeded its node budget: for each answer, truth ∈
	// [LowerBound, UpperBound]. Both are 0 when unused; they differ only
	// on bounded (Approximate) OBDD results.
	LowerBound float64
	UpperBound float64
	// MaxWidth is the widest per-answer certified interval of a bounded
	// OBDD run: every reported confidence is within MaxWidth/2 of the
	// truth (0 for exact and Monte Carlo plans).
	MaxWidth float64
}

// Total returns the end-to-end wall-clock time.
func (s *Stats) Total() time.Duration { return s.TupleTime + s.ProbTime }

// Result is a computed answer: distinct head tuples plus their confidence
// in the conf column.
type Result struct {
	Rows  *table.Relation
	Stats Stats
}

// Run executes q on the catalog under the given FDs with the requested plan
// style. Exact styles use the most precise signature available (FD-refined
// when the reduct is hierarchical, plain otherwise); queries with neither —
// #P-hard in general — fall through the chain of obdd.go: OBDD compilation
// of the per-answer lineage (still exact when the diagrams fit the node
// budget), then the Monte Carlo plan, which estimates confidences instead
// of erroring out. Set spec.RequireExact to turn the fallback back into an
// error.
func Run(c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (*Result, error) {
	return RunContext(context.Background(), c, q, sigma, spec)
}

// RunContext is Run with cancellation: every pipeline, sort pass, OBDD
// compilation and Monte Carlo sampler checks ctx and aborts with ctx.Err()
// shortly after it is cancelled.
func RunContext(ctx context.Context, c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (*Result, error) {
	p, err := Prepare(c, q, sigma, spec)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx)
}

// Prepared is a query plan resolved once — validation done, style checked,
// signature computed, fallback chain chosen, worker pool pinned — and
// runnable many times, concurrently, against the (frozen) catalog. It is
// the unit the sprout.Engine facade serves.
type Prepared struct {
	c     *Catalog
	q     *query.Query
	sigma *fd.Set
	spec  Spec
	pool  *pool.Pool

	// sig is the resolved hierarchical signature of an exact style; nil
	// when the style needs none (MonteCarlo, OBDD) or none exists (the run
	// takes the fallback chain).
	sig      signature.Sig
	fallback bool
}

// Prepare resolves a plan without running it. Errors that do not depend on
// the data — invalid queries, unknown styles, RequireExact on a query
// without a hierarchical signature — surface here, once, instead of on
// every Run.
func Prepare(c *Catalog, q *query.Query, sigma *fd.Set, spec Spec) (*Prepared, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &Prepared{c: c, q: q, sigma: sigma, spec: spec, pool: pool.Get(spec.Pool, spec.Workers)}
	switch spec.Style {
	case MonteCarlo, OBDD:
		return p, nil
	case Lazy, Eager, Hybrid, SafeMystiQ:
		// Known exact styles: validated before the fallback below, so an
		// unknown style errors rather than silently estimating.
	default:
		return nil, fmt.Errorf("plan: unknown style %d", spec.Style)
	}
	sig, err := signature.Best(q, sigma)
	if err != nil {
		if spec.RequireExact {
			return nil, fmt.Errorf("plan: %s is not tractable (no hierarchical signature): %w", q.Name, err)
		}
		p.fallback = true
		return p, nil
	}
	p.sig = sig
	return p, nil
}

// Run executes the prepared plan. It is safe for concurrent use: every call
// carries its own execution state, and calls share only the worker pool and
// the read-only catalog.
func (p *Prepared) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ex := exec{ctx: ctx, pool: p.pool}
	spec := p.spec
	// Thread the run's context and pool into the operator options so every
	// tier draws from the same slot budget and honours cancellation.
	spec.Conf.Ctx, spec.Conf.Pool = ctx, p.pool
	spec.MC.Pool = p.pool
	c, q, sigma := p.c, p.q, p.sigma
	switch spec.Style {
	case MonteCarlo:
		return runMonteCarlo(ex, c, q, spec, "")
	case OBDD:
		return runOBDD(ex, c, q, sigma, spec)
	}
	if p.fallback {
		return runExactFallback(ex, c, q, spec)
	}
	sig := p.sig
	switch spec.Style {
	case Lazy:
		return runLazy(ex, c, q, sig, spec)
	case Eager:
		return runStaged(ex, c, q, sigma, sig, spec, len(q.Rels), true)
	case Hybrid:
		prefix := spec.HybridPrefix
		if prefix <= 0 || prefix > len(q.Rels) {
			prefix = len(q.Rels) - 1
		}
		return runStaged(ex, c, q, sigma, sig, spec, prefix, false)
	default: // SafeMystiQ; Prepare rejected everything else
		return runSafe(ex, c, q, sigma, spec)
	}
}

// Answer materializes the answer tuples of q under the lazy join order:
// head data columns plus the V/P column pairs of every relation — exactly
// the input the confidence operator consumes. Exposed for the benchmark
// harness (Fig. 13 measures the operator in isolation on this relation).
func Answer(c *Catalog, q *query.Query) (*table.Relation, error) {
	return answerPipeline(serialExec(), c, q, LazyOrder(c, q))
}

// answerPipeline joins the relations in the given order, returning the
// materialized answer with head data attributes and all V/P columns.
func answerPipeline(ex exec, c *Catalog, q *query.Query, order []query.RelRef) (*table.Relation, error) {
	joined := make(map[string]bool)
	var op engine.Operator
	for i, ref := range order {
		leaf, err := leafPipeline(ex, c, q, ref)
		if err != nil {
			return nil, err
		}
		joined[ref.Name] = true
		if i == 0 {
			op = leaf
			continue
		}
		op, err = joinPipeline(ex, q, op, leaf, joined)
		if err != nil {
			return nil, err
		}
	}
	return engine.CollectCtx(ex.ctx, op)
}

// runLazy is Fig. 7(c): compute all answer tuples first (greedy selective
// join order), then one confidence operator over the materialized answer.
func runLazy(ex exec, c *Catalog, q *query.Query, sig signature.Sig, spec Spec) (*Result, error) {
	order := LazyOrder(c, q)
	t0 := time.Now()
	answer, err := answerPipeline(ex, c, q, order)
	if err != nil {
		return nil, err
	}
	tupleTime := time.Since(t0)

	t1 := time.Now()
	out, cstats, err := conf.ComputeStats(answer, sig, spec.Conf)
	if err != nil {
		return nil, err
	}
	probTime := time.Since(t1)
	out, err = normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows: out,
		Stats: Stats{
			Plan:           fmt.Sprintf("lazy: %s; conf[%s] on top", describeOrder(order), sig),
			Signature:      sig.String(),
			TupleTime:      tupleTime,
			ProbTime:       probTime,
			AnswerTuples:   int64(answer.Len()),
			DistinctTuples: int64(out.Len()),
			Scans:          cstats.Scans,
		},
	}, nil
}

// runStaged implements eager and hybrid plans: relations are joined one at
// a time; after each of the first `eagerStages` intermediates (and each
// leaf, for fully eager plans), the §V.B-valid probability-computation
// operators are applied and the running signature updated. Whatever
// signature remains at the top is finished by the ordinary operator.
func runStaged(ex exec, c *Catalog, q *query.Query, sigma *fd.Set, sig signature.Sig, spec Spec, eagerStages int, hierOrder bool) (*Result, error) {
	full := sig
	cur := sig
	var order []query.RelRef
	if hierOrder {
		tree, err := treeForOrder(q, sigma)
		if err != nil {
			return nil, err
		}
		order = HierarchicalOrder(q, tree)
	} else {
		order = LazyOrder(c, q)
	}

	t0 := time.Now()
	var probTime time.Duration
	scans := 0
	var answerTuples int64
	joined := make(map[string]bool)
	var rel *table.Relation
	var applied []string

	applyOps := func() error {
		ops := Restrict(full, cur, joined)
		for _, op := range ops {
			if _, bare := op.(signature.Table); bare {
				continue
			}
			pt0 := time.Now()
			next, rep, n, err := conf.Aggregate(rel, op, spec.Conf)
			if err != nil {
				return err
			}
			probTime += time.Since(pt0)
			scans += n
			rel = next
			cur = Replace(cur, op, signature.Table(rep))
			applied = append(applied, "["+op.String()+"]")
		}
		return nil
	}

	for i, ref := range order {
		leaf, err := leafPipeline(ex, c, q, ref)
		if err != nil {
			return nil, err
		}
		joined[ref.Name] = true
		if i == 0 {
			rel, err = engine.CollectCtx(ex.ctx, leaf)
			if err != nil {
				return nil, err
			}
		} else {
			op, err := joinPipeline(ex, q, engine.NewMemScan(rel), leaf, joined)
			if err != nil {
				return nil, err
			}
			rel, err = engine.CollectCtx(ex.ctx, op)
			if err != nil {
				return nil, err
			}
		}
		if int64(rel.Len()) > answerTuples {
			answerTuples = int64(rel.Len())
		}
		if i < eagerStages {
			if err := applyOps(); err != nil {
				return nil, err
			}
		}
	}

	// Finish: whatever aggregation remains runs as the top operator.
	var out *table.Relation
	pt0 := time.Now()
	if bare, ok := cur.(signature.Table); ok {
		var err error
		out, err = conf.FinalizeBare(rel, string(bare))
		if err != nil {
			return nil, err
		}
	} else {
		var cstats *conf.Stats
		var err error
		out, cstats, err = conf.ComputeStats(rel, cur, spec.Conf)
		if err != nil {
			return nil, err
		}
		scans += cstats.Scans
	}
	probTime += time.Since(pt0)
	out, err := normalizeAnswer(out, q)
	if err != nil {
		return nil, err
	}
	total := time.Since(t0)

	styleName := "eager"
	if eagerStages < len(order) {
		styleName = fmt.Sprintf("hybrid(prefix=%d)", eagerStages)
	}
	return &Result{
		Rows: out,
		Stats: Stats{
			Plan:           fmt.Sprintf("%s: %s; ops %v; top conf[%s]", styleName, describeOrder(order), applied, cur),
			Signature:      full.String(),
			TupleTime:      total - probTime,
			ProbTime:       probTime,
			AnswerTuples:   answerTuples,
			DistinctTuples: int64(out.Len()),
			Scans:          scans,
		},
	}, nil
}

// treeForOrder returns the query tree used for hierarchy-driven join
// orders, preferring the FD-reduct tree.
func treeForOrder(q *query.Query, sigma *fd.Set) (*query.Tree, error) {
	if _, tree, err := fd.HierarchicalReduct(q, sigma); err == nil {
		return tree, nil
	}
	return query.TreeFor(q)
}
